//===- tests/dsl_analysis_test.cpp - Compiler analysis tests --------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Driver.h"

#include <gtest/gtest.h>

using namespace graphit;
using namespace graphit::dsl;

namespace {

FrontendBundle frontendForApp(const std::string &App) {
  return runFrontend(readFileOrDie(std::string(GRAPHIT_APPS_DIR) + "/" +
                                   App));
}

} // namespace

TEST(PriorityUpdateAnalysis, SSSPHasOneMinUpdate) {
  FrontendBundle B = frontendForApp("sssp.gt");
  ASSERT_TRUE(B.ok());
  const UDFInfo *Info = B.Analysis.udfInfo("updateEdge");
  ASSERT_NE(Info, nullptr);
  ASSERT_EQ(Info->Updates.size(), 1u);
  EXPECT_EQ(Info->Updates[0].Op, PriorityUpdateInfo::UpdateOp::Min);
  EXPECT_EQ(Info->Updates[0].PQName, "pq");
  EXPECT_EQ(Info->Updates[0].TargetParam, "dst");
  EXPECT_FALSE(Info->histogramEligible());
}

TEST(PriorityUpdateAnalysis, KCoreIsHistogramEligible) {
  FrontendBundle B = frontendForApp("kcore.gt");
  ASSERT_TRUE(B.ok());
  const UDFInfo *Info = B.Analysis.udfInfo("apply_f");
  ASSERT_NE(Info, nullptr);
  ASSERT_EQ(Info->Updates.size(), 1u);
  const PriorityUpdateInfo &U = Info->Updates[0];
  EXPECT_EQ(U.Op, PriorityUpdateInfo::UpdateOp::Sum);
  EXPECT_TRUE(U.IsConstantSum);
  EXPECT_EQ(U.SumConst, -1);
  EXPECT_TRUE(U.ThresholdIsCurrentPriority)
      << "threshold k comes from pq.getCurrentPriority()";
  EXPECT_TRUE(Info->histogramEligible());
}

TEST(PriorityUpdateAnalysis, NonConstantSumIsNotEligible) {
  FrontendBundle B = runFrontend(
      "const pq : priority_queue{Vertex}(int);"
      "func f(src : Vertex, dst : Vertex, w : int) "
      "  pq.updatePrioritySum(dst, 0 - w, 0); "
      "end func main() end");
  ASSERT_TRUE(B.ok()) << B.Error;
  const UDFInfo *Info = B.Analysis.udfInfo("f");
  ASSERT_NE(Info, nullptr);
  EXPECT_FALSE(Info->Updates[0].IsConstantSum);
  EXPECT_FALSE(Info->histogramEligible());
}

TEST(PriorityUpdateAnalysis, AtomicsRequiredUnderPushOnly) {
  FrontendBundle B = frontendForApp("sssp.gt");
  ASSERT_TRUE(B.ok());
  const UDFInfo *Info = B.Analysis.udfInfo("updateEdge");
  ASSERT_NE(Info, nullptr);
  EXPECT_TRUE(Info->needsAtomics(Direction::SparsePush));
  EXPECT_TRUE(Info->needsAtomics(Direction::Hybrid));
  EXPECT_FALSE(Info->needsAtomics(Direction::DensePull))
      << "Fig. 9(b): pull direction generates no destination atomics";
}

TEST(OrderedLoopAnalysis, RecognizesSSSPLoop) {
  FrontendBundle B = frontendForApp("sssp.gt");
  ASSERT_TRUE(B.ok());
  ASSERT_EQ(B.Analysis.Loops.size(), 1u);
  const OrderedLoopInfo &L = B.Analysis.Loops[0];
  EXPECT_EQ(L.PQName, "pq");
  EXPECT_EQ(L.EdgesetName, "edges");
  EXPECT_EQ(L.BucketVar, "bucket");
  EXPECT_EQ(L.UDFName, "updateEdge");
  EXPECT_EQ(L.Label, "s1");
  EXPECT_TRUE(L.StopVertexVar.empty());
  EXPECT_TRUE(L.EagerLegal);
}

TEST(OrderedLoopAnalysis, RecognizesPPSPEarlyExit) {
  FrontendBundle B = frontendForApp("ppsp.gt");
  ASSERT_TRUE(B.ok());
  ASSERT_EQ(B.Analysis.Loops.size(), 1u);
  EXPECT_EQ(B.Analysis.Loops[0].StopVertexVar, "end_vertex");
  EXPECT_TRUE(B.Analysis.Loops[0].EagerLegal);
}

TEST(OrderedLoopAnalysis, RecognizesAllShippedAppLoops) {
  for (const char *App : {"sssp.gt", "wbfs.gt", "ppsp.gt", "astar.gt",
                          "kcore.gt", "setcover.gt"}) {
    FrontendBundle B = frontendForApp(App);
    ASSERT_TRUE(B.ok()) << App;
    EXPECT_EQ(B.Analysis.Loops.size(), 1u) << App;
  }
}

TEST(OrderedLoopAnalysis, ExtraBucketUseBlocksEagerTransform) {
  // The bucket escapes into another statement: §5.2's legality check must
  // reject the eager transformation.
  FrontendBundle B = runFrontend(
      "const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);"
      "const dist : vector{Vertex}(int) = 0;"
      "const pq : priority_queue{Vertex}(int);"
      "func f(a : Vertex, b : Vertex, w : int) "
      "  pq.updatePriorityMin(b, dist[a] + w); end "
      "func main()"
      "  pq = new priority_queue{Vertex}(int)(true, \"lower_first\","
      "       dist, 0);"
      "  while (pq.finished() == false)"
      "    var bucket : vertexset{Vertex} = pq.dequeueReadySet();"
      "    edges.from(bucket).applyUpdatePriority(f);"
      "    var n : int = bucket.getVertexSetSize();"
      "    delete bucket;"
      "  end "
      "end");
  ASSERT_TRUE(B.ok()) << B.Error;
  ASSERT_EQ(B.Analysis.Loops.size(), 1u);
  EXPECT_FALSE(B.Analysis.Loops[0].EagerLegal);
}

TEST(OrderedLoopAnalysis, UnrelatedWhileLoopIgnored) {
  FrontendBundle B = runFrontend(
      "func main() var x : int = 0;"
      "  while (x < 3) x = x + 1; end "
      "end");
  ASSERT_TRUE(B.ok()) << B.Error;
  EXPECT_TRUE(B.Analysis.Loops.empty());
}
