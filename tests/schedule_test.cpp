//===- tests/schedule_test.cpp - Scheduling language unit tests -----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Schedule.h"

#include <gtest/gtest.h>

using namespace graphit;

TEST(Schedule, DefaultsMatchPaperDefaults) {
  Schedule S;
  // Table 2 defaults: eager_with_fusion is the paper's bolded default.
  EXPECT_EQ(S.Update, UpdateStrategy::EagerWithFusion);
  EXPECT_EQ(S.Dir, Direction::SparsePush);
  EXPECT_EQ(S.Par, Parallelization::DynamicVertexParallel);
  EXPECT_EQ(S.Delta, 1);
  EXPECT_TRUE(S.isEager());
}

TEST(Schedule, FluentConfigMirrorsFig8) {
  // program->configApplyPriorityUpdate("s1", "lazy")
  //        ->configApplyPriorityUpdateDelta("s1", "4")
  //        ->configApplyDirection("s1", "SparsePush")
  //        ->configApplyParallelization("s1", "dynamic-vertex-parallel");
  Schedule S;
  S.configApplyPriorityUpdate("lazy")
      .configApplyPriorityUpdateDelta(4)
      .configApplyDirection("SparsePush")
      .configApplyParallelization("dynamic-vertex-parallel");
  EXPECT_EQ(S.Update, UpdateStrategy::Lazy);
  EXPECT_EQ(S.Delta, 4);
  EXPECT_EQ(S.Dir, Direction::SparsePush);
  EXPECT_FALSE(S.isEager());
}

TEST(Schedule, AllUpdateStrategySpellings) {
  EXPECT_EQ(Schedule().configApplyPriorityUpdate("eager_with_fusion").Update,
            UpdateStrategy::EagerWithFusion);
  EXPECT_EQ(Schedule().configApplyPriorityUpdate("eager_no_fusion").Update,
            UpdateStrategy::EagerNoFusion);
  EXPECT_EQ(Schedule().configApplyPriorityUpdate("eager").Update,
            UpdateStrategy::EagerNoFusion);
  EXPECT_EQ(Schedule().configApplyPriorityUpdate("lazy").Update,
            UpdateStrategy::Lazy);
  EXPECT_EQ(
      Schedule().configApplyPriorityUpdate("lazy_constant_sum").Update,
      UpdateStrategy::LazyConstantSum);
}

TEST(Schedule, DirectionAndBucketKnobs) {
  Schedule S;
  S.configApplyDirection("DensePull")
      .configNumBuckets(64)
      .configBucketFusionThreshold(512);
  EXPECT_EQ(S.Dir, Direction::DensePull);
  EXPECT_EQ(S.NumOpenBuckets, 64);
  EXPECT_EQ(S.FusionThreshold, 512);
  S.configApplyDirection("DensePull-SparsePush");
  EXPECT_EQ(S.Dir, Direction::Hybrid);
}

TEST(Schedule, ParseRoundTrip) {
  Schedule S;
  S.configApplyPriorityUpdate("lazy_constant_sum")
      .configApplyPriorityUpdateDelta(16)
      .configBucketFusionThreshold(777)
      .configNumBuckets(32)
      .configApplyDirection("Hybrid")
      .configApplyParallelization("static-vertex-parallel");
  Schedule Parsed = Schedule::parse(S.toString());
  EXPECT_EQ(Parsed.Update, S.Update);
  EXPECT_EQ(Parsed.Delta, S.Delta);
  EXPECT_EQ(Parsed.FusionThreshold, S.FusionThreshold);
  EXPECT_EQ(Parsed.NumOpenBuckets, S.NumOpenBuckets);
  EXPECT_EQ(Parsed.Dir, S.Dir);
  EXPECT_EQ(Parsed.Par, S.Par);
  EXPECT_EQ(Parsed.toString(), S.toString());
}

TEST(Schedule, ParseCompactForms) {
  Schedule S = Schedule::parse("eager_with_fusion,delta=8192");
  EXPECT_EQ(S.Update, UpdateStrategy::EagerWithFusion);
  EXPECT_EQ(S.Delta, 8192);
  Schedule T = Schedule::parse("lazy,direction=DensePull");
  EXPECT_EQ(T.Update, UpdateStrategy::Lazy);
  EXPECT_EQ(T.Dir, Direction::DensePull);
}

TEST(Schedule, SpellingHelpers) {
  EXPECT_STREQ(updateStrategyName(UpdateStrategy::Lazy), "lazy");
  EXPECT_STREQ(directionName(Direction::Hybrid), "Hybrid");
  EXPECT_STREQ(parallelizationName(Parallelization::Serial), "serial");
}
