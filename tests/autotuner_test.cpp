//===- tests/autotuner_test.cpp - Autotuner tests -------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "autotuner/Autotuner.h"

#include "algorithms/Dijkstra.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace graphit;

TEST(TuningSpace, SizeAndEnumeration) {
  TuningSpace Space = TuningSpace::distanceSpace();
  EXPECT_EQ(Space.size(), 3 * 18 * 3 * 3 * 3);
  // Every index yields a valid, in-space schedule.
  for (int64_t I = 0; I < Space.size(); I += 97) {
    Schedule S = Space.at(I);
    EXPECT_GE(S.Delta, 1);
    EXPECT_GE(S.FusionThreshold, 100);
  }
  // Distinct indexes within one radix step differ.
  EXPECT_NE(Space.at(0).Update, Space.at(1).Update);
}

TEST(TuningSpace, PeelingSpaceFixesDelta) {
  TuningSpace Space = TuningSpace::peelingSpace();
  for (int64_t I = 0; I < Space.size(); ++I)
    EXPECT_EQ(Space.at(I).Delta, 1);
}

TEST(Autotuner, FindsKnownOptimumOfSyntheticCost) {
  // Synthetic convex-ish cost with a unique known optimum:
  // eager_with_fusion + delta=1024 + SparsePush.
  TuningSpace Space = TuningSpace::distanceSpace();
  auto Cost = [](const Schedule &S) {
    double C = 1.0;
    C += std::abs(std::log2(static_cast<double>(S.Delta)) - 10.0);
    C += S.Update == UpdateStrategy::EagerWithFusion ? 0.0 : 5.0;
    C += S.Dir == Direction::SparsePush ? 0.0 : 2.0;
    return C;
  };
  TuningOptions Options;
  Options.MaxTrials = 200; // large enough to almost surely hit optimum
  Options.TimeBudgetSeconds = 30;
  TuningResult R = autotune(Space, Cost, Options);
  EXPECT_EQ(R.Best.Update, UpdateStrategy::EagerWithFusion);
  EXPECT_EQ(R.Best.Dir, Direction::SparsePush);
  EXPECT_NEAR(std::log2(static_cast<double>(R.Best.Delta)), 10.0, 2.01);
}

TEST(Autotuner, RespectsTrialLimit) {
  TuningSpace Space = TuningSpace::distanceSpace();
  int Calls = 0;
  TuningOptions Options;
  Options.MaxTrials = 7;
  Options.RefineTop = 0;
  autotune(Space,
           [&](const Schedule &) {
             ++Calls;
             return 1.0;
           },
           Options);
  EXPECT_EQ(Calls, 7);
}

TEST(Autotuner, DeterministicForSeed) {
  TuningSpace Space = TuningSpace::distanceSpace();
  auto Cost = [](const Schedule &S) {
    return static_cast<double>(S.Delta % 7) + (S.isEager() ? 0.5 : 1.5);
  };
  TuningOptions Options;
  Options.MaxTrials = 25;
  TuningResult A = autotune(Space, Cost, Options);
  TuningResult B = autotune(Space, Cost, Options);
  EXPECT_EQ(A.Best.toString(), B.Best.toString());
  EXPECT_EQ(A.History.size(), B.History.size());
}

TEST(Autotuner, SkipsFailedMeasurements) {
  TuningSpace Space = TuningSpace::distanceSpace();
  TuningOptions Options;
  Options.MaxTrials = 30;
  TuningResult R = autotune(
      Space,
      [](const Schedule &S) {
        // Lazy runs "fail"; the tuner must still return an eager winner.
        if (!S.isEager())
          return std::numeric_limits<double>::infinity();
        return 1.0;
      },
      Options);
  EXPECT_TRUE(R.Best.isEager());
  EXPECT_TRUE(std::isfinite(R.BestSeconds));
}

TEST(Autotuner, TunesRealSSSPWithinFactorOfExhaustiveBest) {
  // Small road grid; search a trimmed space and compare against the
  // exhaustive optimum of that same space (the paper reports the tuner
  // landing within 5% of hand-tuned; we allow 2x on a tiny noisy input).
  RoadNetwork Net = roadGrid(40, 40, 77);
  BuildOptions BOpt;
  BOpt.Symmetrize = true;
  Graph G = GraphBuilder(BOpt).build(Net.NumNodes, Net.Edges);

  TuningSpace Space;
  Space.Strategies = {UpdateStrategy::EagerWithFusion,
                      UpdateStrategy::EagerNoFusion, UpdateStrategy::Lazy};
  Space.Deltas = {1, 64, 4096, 65536};
  Space.FusionThresholds = {1000};
  Space.Directions = {Direction::SparsePush};
  Space.NumBucketsChoices = {128};

  std::vector<Priority> Reference = dijkstraSSSP(G, 0);
  auto Eval = [&](const Schedule &S) {
    SSSPResult R = deltaSteppingSSSP(G, 0, S);
    EXPECT_EQ(R.Dist, Reference) << S.toString();
    return R.Stats.Seconds;
  };

  double ExhaustiveBest = std::numeric_limits<double>::infinity();
  for (int64_t I = 0; I < Space.size(); ++I)
    ExhaustiveBest = std::min(ExhaustiveBest, Eval(Space.at(I)));

  TuningOptions Options;
  Options.MaxTrials = static_cast<int>(Space.size());
  Options.TimeBudgetSeconds = 60;
  TuningResult R = autotune(Space, Eval, Options);
  EXPECT_LE(R.BestSeconds, ExhaustiveBest * 2.0 + 0.005);
}
