//===- tests/query_engine_test.cpp - Query service tests ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/QueryEngine.h"

#include "stress_harness.h"

#include "algorithms/AStar.h"
#include "algorithms/Dijkstra.h"
#include "algorithms/PPSP.h"
#include "algorithms/QueryState.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/LandmarkCache.h"
#include "service/StatePool.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

using namespace graphit;
using namespace graphit::service;
// Shared fuzz generators (tests/stress_harness.h): every suite draws
// update batches from the same canonical space.
using graphit::stress::coordinateSafeInsertBatch;
using graphit::stress::randomBatch;

namespace {

Graph roadWithCoords(Count Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

Schedule scheduleFor(int Which) {
  Schedule S;
  switch (Which % 3) {
  case 0:
    S.Update = UpdateStrategy::EagerWithFusion;
    break;
  case 1:
    S.Update = UpdateStrategy::EagerNoFusion;
    break;
  default:
    S.Update = UpdateStrategy::Lazy;
    break;
  }
  const int64_t Deltas[] = {1024, 2048, 8192};
  S.Delta = Deltas[(Which / 3) % 3];
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// DistanceState (pooled algorithm variants)
//===----------------------------------------------------------------------===//

TEST(DistanceState, PooledSSSPMatchesFreshAcrossReuse) {
  Graph G = roadWithCoords(30, 7);
  Schedule S;
  S.Delta = 2048;
  DistanceState State(G.numNodes());
  // Reuse the same state for several sources; each run must match a fresh
  // run exactly, proving the O(touched) reset leaves no residue.
  for (VertexId Src : {VertexId{0}, VertexId{451}, VertexId{0},
                       static_cast<VertexId>(G.numNodes() - 1)}) {
    deltaSteppingSSSP(G, Src, S, State);
    SSSPResult Fresh = deltaSteppingSSSP(G, Src, S);
    for (Count V = 0; V < G.numNodes(); ++V)
      ASSERT_EQ(State.dist(static_cast<VertexId>(V)), Fresh.Dist[V])
          << "src " << Src << " vertex " << V;
  }
}

TEST(DistanceState, TouchedListIsExactlyTheReachedSet) {
  Graph G = roadWithCoords(20, 3);
  Schedule S;
  S.Delta = 4096;
  DistanceState State(G.numNodes());
  deltaSteppingSSSP(G, 17, S, State);
  std::vector<uint8_t> InTouched(static_cast<size_t>(G.numNodes()), 0);
  for (Count I = 0; I < State.numTouched(); ++I) {
    VertexId V = State.touched(I);
    EXPECT_FALSE(InTouched[V]) << "duplicate touched entry " << V;
    InTouched[V] = 1;
  }
  for (Count V = 0; V < G.numNodes(); ++V)
    EXPECT_EQ(InTouched[V] != 0,
              State.dist(static_cast<VertexId>(V)) < kInfiniteDistance)
        << "vertex " << V;
}

TEST(DistanceState, PooledPPSPAndAStarMatchDijkstra) {
  Graph G = roadWithCoords(30, 11);
  DistanceState State(G.numNodes());
  SplitMix64 Rng(23);
  for (int Trial = 0; Trial < 6; ++Trial) {
    Schedule S = scheduleFor(Trial);
    auto Src = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto Dst = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Priority Exact = dijkstraPPSP(G, Src, Dst);
    EXPECT_EQ(pointToPointShortestPath(G, Src, Dst, S, State).Dist, Exact);
    EXPECT_EQ(aStarSearch(G, Src, Dst, S, State).Dist, Exact);
  }
}

//===----------------------------------------------------------------------===//
// StatePool
//===----------------------------------------------------------------------===//

TEST(StatePool, LeasesAreReused) {
  StatePool Pool(100);
  {
    StatePool::Lease A = Pool.acquire();
    StatePool::Lease B = Pool.acquire();
    EXPECT_TRUE(A);
    EXPECT_TRUE(B);
    EXPECT_EQ(Pool.created(), 2u);
  }
  EXPECT_EQ(Pool.idle(), 2u);
  StatePool::Lease C = Pool.acquire();
  EXPECT_EQ(Pool.created(), 2u) << "lease should come from the free list";
  EXPECT_EQ(Pool.idle(), 1u);
}

//===----------------------------------------------------------------------===//
// LandmarkCache (ALT)
//===----------------------------------------------------------------------===//

TEST(LandmarkCache, BoundIsAdmissibleAndConsistent) {
  Graph G = roadWithCoords(25, 31);
  Schedule S;
  S.Delta = 4096;
  LandmarkCache Cache(G, 4, S);
  ASSERT_EQ(Cache.numLandmarks(), 4);

  VertexId Target = static_cast<VertexId>(G.numNodes() / 2);
  std::vector<Priority> Exact = dijkstraSSSP(G, Target); // symmetric graph
  EXPECT_EQ(Cache.estimate(Target, Target), 0);
  for (VertexId V = 0; V < G.numNodes(); V += 7) {
    Priority H = Cache.estimate(V, Target);
    if (Exact[V] != kInfiniteDistance) {
      EXPECT_LE(H, Exact[V]) << "inadmissible at " << V;
    }
    for (WNode E : G.outNeighbors(V))
      EXPECT_LE(H, E.W + Cache.estimate(E.V, Target))
          << "inconsistent edge " << V << " -> " << E.V;
  }
}

TEST(LandmarkCache, NoDuplicateLandmarksOnDisconnectedGraphs) {
  // Two components {0,1,2} and {3,4,5}; a budget above the probe
  // component's size must stop at distinct landmarks, not re-select one
  // (each duplicate would cost a full redundant SSSP).
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(
      6, {{0, 1, 5}, {1, 2, 5}, {3, 4, 5}, {4, 5, 5}});
  LandmarkCache Cache(G, 6, Schedule{});
  EXPECT_LE(Cache.numLandmarks(), 3);
  std::vector<VertexId> L = Cache.landmarks();
  std::sort(L.begin(), L.end());
  EXPECT_TRUE(std::adjacent_find(L.begin(), L.end()) == L.end())
      << "duplicate landmark selected";
}

TEST(LandmarkCache, TightensTheCoordinateBound) {
  Graph G = roadWithCoords(30, 5);
  Schedule S;
  S.Delta = 4096;
  LandmarkCache Cache(G, 8, S);
  // The ALT bound dominates the coordinate bound by construction (max of
  // the two); verify it is strictly tighter somewhere.
  VertexId Target = 0;
  bool StrictlyTighter = false;
  for (VertexId V = 0; V < G.numNodes(); V += 13) {
    Priority HC = aStarHeuristic(G, V, Target);
    Priority HL = Cache.estimate(V, Target);
    ASSERT_GE(HL, HC);
    StrictlyTighter |= HL > HC;
  }
  EXPECT_TRUE(StrictlyTighter);
}

//===----------------------------------------------------------------------===//
// QueryEngine
//===----------------------------------------------------------------------===//

TEST(QueryEngine, MixedBatchIsBitIdenticalToSequentialRuns) {
  Graph G = roadWithCoords(40, 77);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 4;
  Opts.NumLandmarks = 4;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);

  // >= 256 randomized queries mixing all three kinds, schedules, and
  // deltas. Every result must equal the sequential fresh-state run.
  constexpr int kNumQueries = 260;
  SplitMix64 Rng(2020);
  std::vector<Query> Batch;
  for (int I = 0; I < kNumQueries; ++I) {
    Query Q;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Sched = scheduleFor(static_cast<int>(Rng.nextInt(0, 9)));
    switch (Rng.nextInt(0, 3)) {
    case 0:
      Q.Kind = QueryKind::SSSP;
      Q.CollectReached = true;
      break;
    case 1:
      Q.Kind = QueryKind::PPSP;
      break;
    default:
      Q.Kind = QueryKind::AStar;
      break;
    }
    Batch.push_back(Q);
  }

  std::vector<QueryResult> Results = Engine.runBatch(Batch);
  ASSERT_EQ(Results.size(), Batch.size());
  EXPECT_EQ(Engine.queriesServed(), static_cast<uint64_t>(kNumQueries));

  for (int I = 0; I < kNumQueries; ++I) {
    const Query &Q = Batch[I];
    const Schedule &S = *Q.Sched;
    if (Q.Kind == QueryKind::SSSP) {
      SSSPResult Ref = deltaSteppingSSSP(G, Q.Source, S);
      Count Finite = 0;
      for (Count V = 0; V < G.numNodes(); ++V)
        Finite += Ref.Dist[V] < kInfiniteDistance ? 1 : 0;
      ASSERT_EQ(static_cast<Count>(Results[I].Reached.size()), Finite)
          << "query " << I;
      for (const auto &[V, D] : Results[I].Reached)
        ASSERT_EQ(D, Ref.Dist[V]) << "query " << I << " vertex " << V;
    } else if (Q.Kind == QueryKind::PPSP) {
      PPSPResult Ref =
          pointToPointShortestPath(G, Q.Source, Q.Target, S);
      ASSERT_EQ(Results[I].Dist, Ref.Dist) << "query " << I;
    } else {
      PPSPResult Ref = aStarSearch(G, Q.Source, Q.Target, S);
      ASSERT_EQ(Results[I].Dist, Ref.Dist) << "query " << I;
    }
  }
}

TEST(QueryEngine, SubmitCollectOutOfOrder) {
  Graph G = roadWithCoords(20, 9);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);

  Query A;
  A.Kind = QueryKind::PPSP;
  A.Source = 0;
  A.Target = static_cast<VertexId>(G.numNodes() - 1);
  Query B = A;
  B.Source = static_cast<VertexId>(G.numNodes() / 2);

  uint64_t TA = Engine.submit(A);
  uint64_t TB = Engine.submit(B);
  // Collect in reverse submission order.
  QueryResult RB = Engine.collect(TB);
  QueryResult RA = Engine.collect(TA);
  EXPECT_EQ(RA.Dist, dijkstraPPSP(G, A.Source, A.Target));
  EXPECT_EQ(RB.Dist, dijkstraPPSP(G, B.Source, B.Target));
}

TEST(QueryEngine, LandmarkAStarPrunesAtLeastAsWellAsCoordinates) {
  Graph G = roadWithCoords(50, 13);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.NumLandmarks = 8;
  Opts.DefaultSchedule.Delta = 4096;
  QueryEngine Engine(G, Opts);
  ASSERT_NE(Engine.landmarks(), nullptr);

  SplitMix64 Rng(3);
  int64_t LandmarkTouched = 0, CoordTouched = 0;
  for (int Trial = 0; Trial < 6; ++Trial) {
    Query Q;
    Q.Kind = QueryKind::AStar;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    QueryResult R = Engine.runBatch({Q})[0];
    PPSPResult Coord =
        aStarSearch(G, Q.Source, Q.Target, Opts.DefaultSchedule);
    ASSERT_EQ(R.Dist, Coord.Dist);
    LandmarkTouched += R.Touched;
    CoordTouched += Coord.Stats.VerticesProcessed;
  }
  // ALT dominates the coordinate bound, so its searches must not expand
  // meaningfully more (touched counts things once; VerticesProcessed can
  // double-count re-relaxations, so allow slack).
  EXPECT_LE(LandmarkTouched, CoordTouched * 3 / 2)
      << "landmark A* expanded more than coordinate A*";
}

TEST(QueryEngine, PathExtractionReturnsTightPaths) {
  Graph G = roadWithCoords(25, 41);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.TrackParents = true;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);

  SplitMix64 Rng(8);
  for (int Trial = 0; Trial < 5; ++Trial) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.CollectPath = true;
    QueryResult R = Engine.runBatch({Q})[0];
    if (R.Dist == kInfiniteDistance) {
      EXPECT_TRUE(R.Path.empty());
      continue;
    }
    ASSERT_FALSE(R.Path.empty());
    EXPECT_EQ(R.Path.front(), Q.Source);
    EXPECT_EQ(R.Path.back(), Q.Target);
    // Every hop must be a real edge and the weights must sum to the
    // reported distance.
    Priority Sum = 0;
    for (size_t I = 0; I + 1 < R.Path.size(); ++I) {
      Weight Best = -1;
      for (WNode E : G.outNeighbors(R.Path[I]))
        if (E.V == R.Path[I + 1] && (Best < 0 || E.W < Best))
          Best = E.W;
      ASSERT_GE(Best, 0) << "missing edge on path, hop " << I;
      Sum += Best;
    }
    EXPECT_EQ(Sum, R.Dist);
  }
}

TEST(QueryEngine, MalformedQueryFailsWithoutCrashing) {
  Graph G = roadWithCoords(10, 1);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  QueryEngine Engine(G, Opts);

  Query Bad;
  Bad.Kind = QueryKind::PPSP;
  Bad.Source = 0;
  Bad.Target = static_cast<VertexId>(G.numNodes() + 5); // out of range
  uint64_t T = Engine.submit(Bad);
  QueryResult R = Engine.collect(T);
  EXPECT_TRUE(R.Failed);
  EXPECT_EQ(R.Dist, kInfiniteDistance);

  // The engine keeps serving after a rejected request.
  Query Good;
  Good.Kind = QueryKind::PPSP;
  Good.Source = 0;
  Good.Target = static_cast<VertexId>(G.numNodes() - 1);
  EXPECT_EQ(Engine.runBatch({Good})[0].Dist,
            dijkstraPPSP(G, Good.Source, Good.Target));

  // An A* query is rejected (not aborted on) when the engine has neither
  // landmarks nor coordinates to build a heuristic from.
  Graph Plain = GraphBuilder().build(4, {{0, 1, 1}, {1, 2, 1}});
  QueryEngine::Options PlainOpts;
  PlainOpts.NumWorkers = 1;
  QueryEngine PlainEngine(Plain, PlainOpts);
  Query NoHeur;
  NoHeur.Kind = QueryKind::AStar;
  NoHeur.Source = 0;
  NoHeur.Target = 2;
  EXPECT_TRUE(PlainEngine.runBatch({NoHeur})[0].Failed);
}

TEST(QueryEngine, AggregateStatsAccumulate) {
  Graph G = roadWithCoords(15, 2);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);
  std::vector<Query> Batch;
  for (int I = 0; I < 8; ++I) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = static_cast<VertexId>(I * 13 % G.numNodes());
    Q.Target = static_cast<VertexId>((I * 29 + 7) % G.numNodes());
    Batch.push_back(Q);
  }
  Engine.runBatch(Batch);
  OrderedStats Agg = Engine.aggregateStats();
  EXPECT_GT(Agg.Rounds, 0);
  EXPECT_GT(Agg.VerticesProcessed, 0);
  EXPECT_EQ(Engine.queriesServed(), 8u);
}

//===----------------------------------------------------------------------===//
// Cache-conscious layout: external-id round-trips (graph/Reorder.h)
//===----------------------------------------------------------------------===//

TEST(QueryEngine, ReorderedEngineRoundTripsExternalIds) {
  Graph G = roadWithCoords(30, 51);
  QueryEngine::Options Plain;
  Plain.NumWorkers = 1;
  Plain.TrackParents = true;
  Plain.DefaultSchedule.Delta = 2048;
  QueryEngine Reference(G, Plain);

  QueryEngine::Options Reordered = Plain;
  Reordered.NumWorkers = 2;
  Reordered.Reorder = ReorderKind::Bfs;
  QueryEngine Engine(G, Reordered);
  EXPECT_FALSE(Engine.mapping().isIdentity());

  SplitMix64 Rng(707);
  std::vector<Query> Batch;
  for (int I = 0; I < 60; ++I) {
    Query Q;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    switch (Rng.nextInt(0, 3)) {
    case 0:
      Q.Kind = QueryKind::SSSP;
      Q.CollectReached = true;
      break;
    case 1:
      Q.Kind = QueryKind::PPSP;
      Q.CollectPath = true;
      break;
    default:
      Q.Kind = QueryKind::AStar;
      Q.CollectPath = true;
      break;
    }
    Batch.push_back(Q);
  }

  std::vector<QueryResult> Got = Engine.runBatch(Batch);
  std::vector<QueryResult> Want = Reference.runBatch(Batch);
  for (size_t I = 0; I < Batch.size(); ++I) {
    const Query &Q = Batch[I];
    EXPECT_EQ(Got[I].Dist, Want[I].Dist) << "query " << I;
    // Reached lists come back in external ids, sorted, bit-identical.
    ASSERT_EQ(Got[I].Reached, Want[I].Reached) << "query " << I;
    if (Q.CollectPath && Got[I].Dist < kInfiniteDistance) {
      // Paths are verified hop-by-hop on the *original* graph: every
      // consecutive pair must be a real edge whose weights sum to the
      // reported distance (tie-broken paths may differ from Reference's).
      const std::vector<VertexId> &P = Got[I].Path;
      ASSERT_FALSE(P.empty()) << "query " << I;
      ASSERT_EQ(P.front(), Q.Source);
      ASSERT_EQ(P.back(), Q.Target);
      Priority Total = 0;
      for (size_t H = 0; H + 1 < P.size(); ++H) {
        bool Found = false;
        for (WNode E : G.outNeighbors(P[H]))
          if (E.V == P[H + 1]) {
            Total += E.W;
            Found = true;
            break;
          }
        ASSERT_TRUE(Found) << "query " << I << " hop " << H
                           << " is not an edge of the original graph";
      }
      EXPECT_EQ(Total, Got[I].Dist) << "query " << I;
    }
  }
}

TEST(QueryEngineLive, PermutedStoreMixedBatchRoundTrips) {
  // The acceptance scenario: a *live* engine over a BFS-permuted
  // SnapshotStore must round-trip external ids end to end — queries,
  // paths, and update batches — matching an identity-layout store fed the
  // same external-id traffic.
  Graph G = roadWithCoords(24, 33);
  SnapshotStore PlainStore(G);
  SnapshotStore::Options PermutedOpts;
  PermutedOpts.Reorder = ReorderKind::Bfs;
  SnapshotStore PermutedStore(G, PermutedOpts);
  EXPECT_FALSE(PermutedStore.mapping().isIdentity());

  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.TrackParents = true;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Reference(PlainStore, Opts);
  QueryEngine Engine(PermutedStore, Opts);

  SplitMix64 Rng(4242);
  for (int Round = 0; Round < 4; ++Round) {
    // External-id update batch applied to both stores, drawn from the
    // canonical fuzz space against the identity-layout store's view (the
    // permuted store's view lives in internal ids).
    std::vector<EdgeUpdate> Batch =
        randomBatch(*PlainStore.current(), 20, Rng);
    Reference.applyUpdates(Batch);
    Engine.applyUpdates(Batch);

    std::vector<Query> Queries;
    for (int I = 0; I < 30; ++I) {
      Query Q;
      Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      Q.Kind = I % 3 == 0 ? QueryKind::SSSP
                          : (I % 3 == 1 ? QueryKind::PPSP : QueryKind::AStar);
      if (Q.Kind == QueryKind::SSSP)
        Q.CollectReached = true;
      else
        Q.CollectPath = true;
      Queries.push_back(Q);
    }
    std::vector<QueryResult> Got = Engine.runBatch(Queries);
    std::vector<QueryResult> Want = Reference.runBatch(Queries);
    for (size_t I = 0; I < Queries.size(); ++I) {
      EXPECT_EQ(Got[I].Dist, Want[I].Dist)
          << "round " << Round << " query " << I;
      ASSERT_EQ(Got[I].Reached, Want[I].Reached)
          << "round " << Round << " query " << I;
      if (Queries[I].CollectPath && Got[I].Dist < kInfiniteDistance &&
          !Got[I].Path.empty()) {
        // Verify the external-id path hop-by-hop on the *plain* store's
        // current view.
        SnapshotStore::Snapshot Snap = PlainStore.current();
        Priority Total = 0;
        for (size_t H = 0; H + 1 < Got[I].Path.size(); ++H) {
          bool Found = false;
          for (WNode E : Snap->outNeighbors(Got[I].Path[H]))
            if (E.V == Got[I].Path[H + 1]) {
              Total += E.W;
              Found = true;
              break;
            }
          ASSERT_TRUE(Found) << "round " << Round << " query " << I;
        }
        EXPECT_EQ(Total, Got[I].Dist) << "round " << Round << " query " << I;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Live landmark refresh policy
//===----------------------------------------------------------------------===//

TEST(QueryEngineLive, LandmarksServeThroughIncreaseOnlyBatches) {
  Graph G = roadWithCoords(24, 61);
  SnapshotStore Store(G);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.NumLandmarks = 4;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(Store, Opts);
  ASSERT_NE(Engine.landmarks(), nullptr);
  EXPECT_TRUE(Engine.landmarksUsable());

  auto checkAStarAgainstPPSP = [&](int Tag) {
    SplitMix64 Rng(100 + Tag);
    for (int I = 0; I < 12; ++I) {
      Query A;
      A.Kind = QueryKind::AStar;
      A.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      A.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      Query P = A;
      P.Kind = QueryKind::PPSP;
      std::vector<QueryResult> R = Engine.runBatch({A, P});
      ASSERT_EQ(R[0].Dist, R[1].Dist) << "tag " << Tag << " query " << I;
    }
  };

  // Increase-only batch (weight increases + deletions): the cache keeps
  // serving — admissible bounds only get slacker when distances grow.
  std::vector<EdgeUpdate> IncreaseOnly;
  {
    SnapshotStore::Snapshot Snap = Store.current();
    SplitMix64 Rng(9);
    for (int I = 0; I < 20; ++I) {
      VertexId U = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      auto R = Snap->outNeighbors(U);
      if (R.size() == 0)
        continue;
      WNode E = *R.begin();
      if (I % 5 == 0)
        IncreaseOnly.push_back(EdgeUpdate{U, E.V, 0, UpdateKind::Delete});
      else
        IncreaseOnly.push_back(EdgeUpdate{
            U, E.V, static_cast<Weight>(E.W + 100), UpdateKind::Upsert});
    }
  }
  Engine.applyUpdates(IncreaseOnly);
  EXPECT_TRUE(Engine.landmarksUsable())
      << "increase-only batch must not retire the landmark cache";
  checkAStarAgainstPPSP(1);

  // A weight decrease breaks admissibility: the cache is retired and A*
  // falls back to the coordinate heuristic — results stay correct.
  {
    SnapshotStore::Snapshot Snap = Store.current();
    VertexId U = 0;
    while (Snap->outDegree(U) == 0)
      ++U;
    WNode E = *Snap->outNeighbors(U).begin();
    Engine.applyUpdates({EdgeUpdate{
        U, E.V, static_cast<Weight>(std::max<Weight>(1, E.W - 1)),
        UpdateKind::Upsert}});
  }
  EXPECT_FALSE(Engine.landmarksUsable())
      << "a decrease must retire the landmark cache";
  checkAStarAgainstPPSP(2);
}

TEST(QueryEngineLive, LandmarksRebuildOnCompaction) {
  Graph G = roadWithCoords(24, 62);
  SnapshotStore::Options StoreOpts;
  // Low enough that the filler batches below trip compaction, high enough
  // that the single decrease (two mirrored patch lists) does not.
  StoreOpts.CompactionThreshold = 0.01;
  StoreOpts.MinOverlayEdges = 64;
  SnapshotStore Store(G, StoreOpts);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.NumLandmarks = 3;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(Store, Opts);

  // Retire the cache with a decrease...
  SnapshotStore::Snapshot Snap = Store.current();
  VertexId U = 0;
  while (Snap->outDegree(U) == 0)
    ++U;
  WNode E = *Snap->outNeighbors(U).begin();
  Engine.applyUpdates({EdgeUpdate{
      U, E.V, static_cast<Weight>(std::max<Weight>(1, E.W / 2)),
      UpdateKind::Upsert}});
  EXPECT_FALSE(Engine.landmarksUsable());

  // ... then grow the overlay past the (tiny) threshold: the triggered
  // compaction rebuilds the cache from the fresh base, re-arming ALT.
  SplitMix64 Rng(5150);
  uint64_t Before = Store.compactions();
  for (int Round = 0; Round < 50 && Store.compactions() == Before;
       ++Round) {
    // Inserted weights must respect the generator's w >= 100 x Euclidean
    // invariant (algorithms/AStar.h) or the coordinate heuristic itself
    // becomes inadmissible; the shared generator floors every weight at
    // 100 x the coordinate-bounding-box diagonal.
    Engine.applyUpdates(coordinateSafeInsertBatch(G, 64, Rng));
  }
  ASSERT_GT(Store.compactions(), Before);
  // The engine notices the compaction on the next batch through it.
  Engine.applyUpdates({});
  EXPECT_TRUE(Engine.landmarksUsable())
      << "compaction must rebuild and re-arm the landmark cache";

  SplitMix64 Rng2(717);
  for (int I = 0; I < 8; ++I) {
    Query A;
    A.Kind = QueryKind::AStar;
    A.Source = static_cast<VertexId>(Rng2.nextInt(0, G.numNodes()));
    A.Target = static_cast<VertexId>(Rng2.nextInt(0, G.numNodes()));
    Query P = A;
    P.Kind = QueryKind::PPSP;
    std::vector<QueryResult> R = Engine.runBatch({A, P});
    ASSERT_EQ(R[0].Dist, R[1].Dist) << "query " << I;
  }
}

//===----------------------------------------------------------------------===//
// Adaptive batching (Options::MaxBatchDelayMicros)
//===----------------------------------------------------------------------===//

TEST(QueryEngineBatching, BatchedResultsBitIdenticalToUnbatched) {
  // Batching only changes *when* a worker picks tasks up, never what a
  // task computes: the same randomized mixed workload must produce
  // bit-identical distances with batching off and fully on.
  Graph G = roadWithCoords(32, 55);
  QueryEngine::Options Plain;
  Plain.NumWorkers = 2;
  Plain.DefaultSchedule.Delta = 2048;
  QueryEngine::Options Batched = Plain;
  Batched.MaxBatchDelayMicros = 1000;
  Batched.MaxBatchSize = 8;
  QueryEngine PlainEngine(G, Plain);
  QueryEngine BatchedEngine(G, Batched);

  constexpr int kNumQueries = 200;
  SplitMix64 Rng(808);
  std::vector<Query> Work;
  for (int I = 0; I < kNumQueries; ++I) {
    Query Q;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Kind = (I % 3 == 0) ? QueryKind::SSSP
                          : (I % 3 == 1 ? QueryKind::PPSP : QueryKind::AStar);
    if (Q.Kind == QueryKind::SSSP)
      Q.CollectReached = true;
    Work.push_back(Q);
  }

  std::vector<QueryResult> A = PlainEngine.runBatch(Work);
  std::vector<QueryResult> B = BatchedEngine.runBatch(Work);
  ASSERT_EQ(A.size(), B.size());
  for (int I = 0; I < kNumQueries; ++I) {
    ASSERT_EQ(A[I].Dist, B[I].Dist) << "query " << I;
    ASSERT_EQ(A[I].Reached, B[I].Reached) << "query " << I;
    ASSERT_EQ(static_cast<int>(A[I].Status), static_cast<int>(B[I].Status))
        << "query " << I;
  }
  // runBatch submits one query at a time while collecting in order, so
  // whether the window ever engaged is workload-timing dependent — but it
  // must never exceed the configured bound.
  EXPECT_LE(BatchedEngine.maxBatchWindowMicros(), 1000);
  EXPECT_EQ(PlainEngine.maxBatchWindowMicros(), 0);
}

TEST(QueryEngineBatching, WindowGrowsUnderBacklogAndCollapsesWhenDrained) {
  // Deterministic recipe: a single worker busy with a slow full-graph
  // SSSP while a burst of point queries piles up behind it. When the
  // worker comes back it must see the backlog (window grows), drain it in
  // batches, and finish with the queue empty (window collapses to 0).
  Graph G = roadWithCoords(40, 91);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.Delta = 2048;
  Opts.MaxBatchDelayMicros = 2000;
  Opts.MaxBatchSize = 8;
  QueryEngine Engine(G, Opts);

  Query Slow;
  Slow.Kind = QueryKind::SSSP;
  Slow.Source = 0;
  Slow.CollectReached = true;
  uint64_t SlowTicket = Engine.submit(Slow);
  // Wait for the worker to pick it up so the burst below queues *behind*
  // a busy worker instead of racing it.
  while (Engine.queueDepth() > 0)
    std::this_thread::yield();

  SplitMix64 Rng(19);
  std::vector<uint64_t> Tickets;
  for (int I = 0; I < 32; ++I) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Tickets.push_back(Engine.submit(Q));
  }
  (void)Engine.collect(SlowTicket);
  for (uint64_t T : Tickets)
    (void)Engine.collect(T);

  // The backlog must have engaged the window at least once (the worker
  // finished the slow query with 32 queries pending), within its bound...
  EXPECT_GT(Engine.maxBatchWindowMicros(), 0);
  EXPECT_LE(Engine.maxBatchWindowMicros(), Opts.MaxBatchDelayMicros);
  // ...and the final batch (which drained the queue) collapsed it.
  EXPECT_EQ(Engine.batchWindowMicros(), 0);
  EXPECT_EQ(Engine.queriesServed(), 33u);
}

//===----------------------------------------------------------------------===//
// Cross-engine hot-state sharing (Options::SharedHotCache)
//===----------------------------------------------------------------------===//

TEST(QueryEngineLive, SharedHotCacheServesCrossEngineHits) {
  // Two engines over one store share a hot cache: a source warmed by
  // engine A answers engine B's point queries without an engine run, at
  // the same bit-exact distances, across repaired versions.
  Graph G = roadWithCoords(24, 47);
  SnapshotStore Store(G);
  QueryEngine::Options OptsA;
  OptsA.NumWorkers = 2;
  OptsA.DefaultSchedule.Delta = 2048;
  OptsA.HotSourceCapacity = 8;
  QueryEngine A(Store, OptsA);
  ASSERT_NE(A.hotCache(), nullptr);

  QueryEngine::Options OptsB;
  OptsB.NumWorkers = 2;
  OptsB.DefaultSchedule.Delta = 2048;
  OptsB.SharedHotCache = A.hotCache();
  QueryEngine B(Store, OptsB);

  const VertexId Depot = 7;
  Query Warm;
  Warm.Kind = QueryKind::SSSP;
  Warm.Source = Depot;
  (void)A.runBatch({Warm});
  EXPECT_GE(A.hotCache()->size(), 1u);

  SplitMix64 Rng(3131);
  for (int Round = 0; Round < 3; ++Round) {
    // B's point queries from the depot must hit A's warmed state.
    uint64_t HitsBefore = B.hotHits();
    Graph Compact = Store.current()->compact();
    for (int I = 0; I < 6; ++I) {
      Query Q;
      Q.Kind = QueryKind::PPSP;
      Q.Source = Depot;
      Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
      QueryResult R = B.runBatch({Q})[0];
      PPSPResult Ref = pointToPointShortestPath(
          Compact, Q.Source, Q.Target, OptsB.DefaultSchedule);
      ASSERT_EQ(R.Dist, Ref.Dist) << "round " << Round << " query " << I;
    }
    EXPECT_GT(B.hotHits(), HitsBefore) << "round " << Round;

    // Advance the store one version *through a single engine* (the cache
    // is repaired exactly once per publish); the warm state must survive
    // via incremental repair and keep serving both engines.
    std::vector<EdgeUpdate> Batch = randomBatch(*Store.current(), 24, Rng);
    ASSERT_EQ(static_cast<int>(A.applyUpdates(Batch).Status),
              static_cast<int>(ApplyStatus::Ok));
  }
  EXPECT_GT(A.hotCache()->repairs(), 0u);
  EXPECT_EQ(A.hotRepairs(), B.hotRepairs())
      << "shared cache: both engines report the cache-wide repair count";
}

//===----------------------------------------------------------------------===//
// Importance classes: (kind × class) EWMA isolation and the feedback
// controller.
//===----------------------------------------------------------------------===//

TEST(QueryEngineClasses, EwmaIsolationAcrossImportanceClasses) {
  // Regression for the class-blind per-kind EWMA: completions in one
  // importance class must never warm (or inflate) another class's EWMA,
  // and a class whose own EWMA is cold must not be soft-water degraded
  // off the back of a different class's service times.
  Graph G = roadWithCoords(48, 59);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(256);
  Opts.AdmissionSoftWater = 2;
  QueryEngine Engine(G, Opts);

  // Warm ONLY the (PPSP, class 3) cell: importance-0 point queries at an
  // empty queue.
  for (int I = 0; I < 4; ++I) {
    Query W;
    W.Kind = QueryKind::PPSP;
    W.Source = 0;
    W.Target = static_cast<VertexId>(G.numNodes() - 1);
    W.Importance = 0;
    ASSERT_EQ(Engine.runBatch({W})[0].Status, QueryStatus::Ok);
  }
  EXPECT_GT(Engine.serviceEwmaMicros(QueryKind::PPSP, importanceClass(0)),
            0.0);
  // The premium class and the other kinds stayed cold — class isolation
  // on the warm path.
  EXPECT_EQ(Engine.serviceEwmaMicros(QueryKind::PPSP, importanceClass(3)),
            0.0);
  EXPECT_EQ(Engine.serviceEwmaMicros(QueryKind::SSSP, importanceClass(0)),
            0.0);

  // Occupy the worker, then queue deadline-less point queries past the
  // soft-water mark: class-3 traffic (warm EWMA) must be degraded;
  // class-0 traffic (cold EWMA) must NOT be — before the (kind × class)
  // split, the shared PPSP EWMA degraded both.
  Query Slow;
  Slow.Kind = QueryKind::SSSP;
  Slow.Source = 0;
  Slow.Sched = scheduleFor(0);
  Slow.Sched->configApplyPriorityUpdateDelta(1);
  Slow.Importance = 3;
  uint64_t SlowTicket = Engine.submit(Slow);
  while (Engine.queueDepth() > 0)
    std::this_thread::yield();

  std::vector<uint64_t> Bulk, Premium;
  for (int I = 0; I < 4; ++I) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = 0;
    Q.Target = static_cast<VertexId>(1 + I);
    Q.Importance = 0;
    Bulk.push_back(Engine.submit(Q));
  }
  for (int I = 0; I < 4; ++I) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = 0;
    Q.Target = static_cast<VertexId>(64 + I);
    Q.Importance = 3;
    Premium.push_back(Engine.submit(Q));
  }

  int BulkDegraded = 0;
  for (uint64_t T : Bulk)
    if (Engine.collect(T).Degraded)
      ++BulkDegraded;
  for (uint64_t T : Premium) {
    QueryResult R = Engine.collect(T);
    EXPECT_FALSE(R.Degraded)
        << "cold premium class degraded from another class's EWMA";
  }
  Engine.collect(SlowTicket);

  EXPECT_GT(BulkDegraded, 0);
  EXPECT_EQ(Engine.queriesDegradedInClass(importanceClass(3)), 0u);
  EXPECT_EQ(Engine.queriesDegradedInClass(importanceClass(0)),
            static_cast<uint64_t>(BulkDegraded));
}

TEST(QueryEngineClasses, ControllerTightensToFloorsThenRelaxesToCeilings) {
  // The AIMD loop end to end, timing-robust: class 0 carries an
  // unmeetable 1µs target, so any class-0 window is a miss and the
  // controller tightens additively until every knob pins at its floor;
  // class 1 carries an unmissable 10s target, so class-1-only traffic
  // yields all-slack windows and the controller relaxes multiplicatively
  // back to the configured ceilings. Every trace event must stay within
  // [floor, ceiling].
  Graph G = roadWithCoords(24, 67);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  Opts.MaxBatchDelayMicros = 1600;
  Opts.AdmissionHighWater = 64;
  Opts.AdmissionSoftWater = 32;
  Opts.ClassSlo[0] = 1;          // class 0: always a miss
  Opts.ClassSlo[1] = 10000000;   // class 1: always slack
  Opts.ControllerIntervalMicros = 300;
  Opts.ControllerMinSamples = 1;
  Opts.ControllerHysteresisTicks = 2;
  Opts.ControllerMinBatchDelayMicros = 200;
  Opts.ControllerMinHighWater = 16;
  Opts.ControllerMinSoftWater = 8;
  QueryEngine Engine(G, Opts);

  EXPECT_EQ(Engine.currentBatchDelayMicros(), Opts.MaxBatchDelayMicros);
  EXPECT_EQ(Engine.currentHighWater(), Opts.AdmissionHighWater);
  EXPECT_EQ(Engine.currentSoftWater(), Opts.AdmissionSoftWater);

  auto pointQuery = [&](int Importance) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = 0;
    Q.Target = static_cast<VertexId>(G.numNodes() - 1);
    Q.Importance = Importance;
    return Q;
  };

  // Phase 1: class-0 traffic (Importance 3) until the floors are reached.
  bool AtFloors = false;
  for (int I = 0; I < 4000 && !AtFloors; ++I) {
    ASSERT_EQ(Engine.runBatch({pointQuery(3)})[0].Status, QueryStatus::Ok);
    AtFloors =
        Engine.currentBatchDelayMicros() ==
            Opts.ControllerMinBatchDelayMicros &&
        Engine.currentHighWater() == Opts.ControllerMinHighWater &&
        Engine.currentSoftWater() == Opts.ControllerMinSoftWater;
  }
  EXPECT_TRUE(AtFloors) << "controller never tightened to its floors";
  EXPECT_GT(Engine.controllerTightens(), 0u);

  // Phase 2: class-1 traffic only (Importance 2) — class-0 windows go
  // empty (no evidence), class-1 windows are pure slack — until the
  // knobs relax back up to the configured ceilings.
  bool AtCeilings = false;
  for (int I = 0; I < 4000 && !AtCeilings; ++I) {
    ASSERT_EQ(Engine.runBatch({pointQuery(2)})[0].Status, QueryStatus::Ok);
    AtCeilings =
        Engine.currentBatchDelayMicros() == Opts.MaxBatchDelayMicros &&
        Engine.currentHighWater() == Opts.AdmissionHighWater &&
        Engine.currentSoftWater() == Opts.AdmissionSoftWater;
  }
  EXPECT_TRUE(AtCeilings) << "controller never relaxed to its ceilings";
  EXPECT_GT(Engine.controllerRelaxes(), 0u);

  // Every recorded knob value stayed within its configured bounds, and
  // the per-class windows the ticks saw are internally consistent.
  std::vector<ControllerEvent> Trace = Engine.controllerTrace();
  ASSERT_FALSE(Trace.empty());
  for (const ControllerEvent &Ev : Trace) {
    EXPECT_GE(Ev.BatchDelayMicros, Opts.ControllerMinBatchDelayMicros);
    EXPECT_LE(Ev.BatchDelayMicros, Opts.MaxBatchDelayMicros);
    EXPECT_GE(Ev.HighWater, Opts.ControllerMinHighWater);
    EXPECT_LE(Ev.HighWater, Opts.AdmissionHighWater);
    EXPECT_GE(Ev.SoftWater, Opts.ControllerMinSoftWater);
    EXPECT_LE(Ev.SoftWater, Opts.AdmissionSoftWater);
    EXPECT_TRUE(Ev.Action >= -1 && Ev.Action <= 1);
  }

  // Per-class served counters saw both phases; the engine-side class
  // latency snapshots hold every Ok completion.
  EXPECT_GT(Engine.queriesServedInClass(0), 0u);
  EXPECT_GT(Engine.queriesServedInClass(1), 0u);
  EXPECT_EQ(Engine.classLatencySnapshot(0).count() +
                Engine.classLatencySnapshot(1).count(),
            Engine.queriesServedInClass(0) +
                Engine.queriesServedInClass(1));
}
