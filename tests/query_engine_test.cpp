//===- tests/query_engine_test.cpp - Query service tests ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/QueryEngine.h"

#include "algorithms/AStar.h"
#include "algorithms/Dijkstra.h"
#include "algorithms/PPSP.h"
#include "algorithms/QueryState.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/LandmarkCache.h"
#include "service/StatePool.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace graphit;
using namespace graphit::service;

namespace {

Graph roadWithCoords(Count Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

Schedule scheduleFor(int Which) {
  Schedule S;
  switch (Which % 3) {
  case 0:
    S.Update = UpdateStrategy::EagerWithFusion;
    break;
  case 1:
    S.Update = UpdateStrategy::EagerNoFusion;
    break;
  default:
    S.Update = UpdateStrategy::Lazy;
    break;
  }
  const int64_t Deltas[] = {1024, 2048, 8192};
  S.Delta = Deltas[(Which / 3) % 3];
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// DistanceState (pooled algorithm variants)
//===----------------------------------------------------------------------===//

TEST(DistanceState, PooledSSSPMatchesFreshAcrossReuse) {
  Graph G = roadWithCoords(30, 7);
  Schedule S;
  S.Delta = 2048;
  DistanceState State(G.numNodes());
  // Reuse the same state for several sources; each run must match a fresh
  // run exactly, proving the O(touched) reset leaves no residue.
  for (VertexId Src : {VertexId{0}, VertexId{451}, VertexId{0},
                       static_cast<VertexId>(G.numNodes() - 1)}) {
    deltaSteppingSSSP(G, Src, S, State);
    SSSPResult Fresh = deltaSteppingSSSP(G, Src, S);
    for (Count V = 0; V < G.numNodes(); ++V)
      ASSERT_EQ(State.dist(static_cast<VertexId>(V)), Fresh.Dist[V])
          << "src " << Src << " vertex " << V;
  }
}

TEST(DistanceState, TouchedListIsExactlyTheReachedSet) {
  Graph G = roadWithCoords(20, 3);
  Schedule S;
  S.Delta = 4096;
  DistanceState State(G.numNodes());
  deltaSteppingSSSP(G, 17, S, State);
  std::vector<uint8_t> InTouched(static_cast<size_t>(G.numNodes()), 0);
  for (Count I = 0; I < State.numTouched(); ++I) {
    VertexId V = State.touched(I);
    EXPECT_FALSE(InTouched[V]) << "duplicate touched entry " << V;
    InTouched[V] = 1;
  }
  for (Count V = 0; V < G.numNodes(); ++V)
    EXPECT_EQ(InTouched[V] != 0,
              State.dist(static_cast<VertexId>(V)) < kInfiniteDistance)
        << "vertex " << V;
}

TEST(DistanceState, PooledPPSPAndAStarMatchDijkstra) {
  Graph G = roadWithCoords(30, 11);
  DistanceState State(G.numNodes());
  SplitMix64 Rng(23);
  for (int Trial = 0; Trial < 6; ++Trial) {
    Schedule S = scheduleFor(Trial);
    auto Src = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto Dst = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Priority Exact = dijkstraPPSP(G, Src, Dst);
    EXPECT_EQ(pointToPointShortestPath(G, Src, Dst, S, State).Dist, Exact);
    EXPECT_EQ(aStarSearch(G, Src, Dst, S, State).Dist, Exact);
  }
}

//===----------------------------------------------------------------------===//
// StatePool
//===----------------------------------------------------------------------===//

TEST(StatePool, LeasesAreReused) {
  StatePool Pool(100);
  {
    StatePool::Lease A = Pool.acquire();
    StatePool::Lease B = Pool.acquire();
    EXPECT_TRUE(A);
    EXPECT_TRUE(B);
    EXPECT_EQ(Pool.created(), 2u);
  }
  EXPECT_EQ(Pool.idle(), 2u);
  StatePool::Lease C = Pool.acquire();
  EXPECT_EQ(Pool.created(), 2u) << "lease should come from the free list";
  EXPECT_EQ(Pool.idle(), 1u);
}

//===----------------------------------------------------------------------===//
// LandmarkCache (ALT)
//===----------------------------------------------------------------------===//

TEST(LandmarkCache, BoundIsAdmissibleAndConsistent) {
  Graph G = roadWithCoords(25, 31);
  Schedule S;
  S.Delta = 4096;
  LandmarkCache Cache(G, 4, S);
  ASSERT_EQ(Cache.numLandmarks(), 4);

  VertexId Target = static_cast<VertexId>(G.numNodes() / 2);
  std::vector<Priority> Exact = dijkstraSSSP(G, Target); // symmetric graph
  EXPECT_EQ(Cache.estimate(Target, Target), 0);
  for (VertexId V = 0; V < G.numNodes(); V += 7) {
    Priority H = Cache.estimate(V, Target);
    if (Exact[V] != kInfiniteDistance)
      EXPECT_LE(H, Exact[V]) << "inadmissible at " << V;
    for (WNode E : G.outNeighbors(V))
      EXPECT_LE(H, E.W + Cache.estimate(E.V, Target))
          << "inconsistent edge " << V << " -> " << E.V;
  }
}

TEST(LandmarkCache, NoDuplicateLandmarksOnDisconnectedGraphs) {
  // Two components {0,1,2} and {3,4,5}; a budget above the probe
  // component's size must stop at distinct landmarks, not re-select one
  // (each duplicate would cost a full redundant SSSP).
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(
      6, {{0, 1, 5}, {1, 2, 5}, {3, 4, 5}, {4, 5, 5}});
  LandmarkCache Cache(G, 6, Schedule{});
  EXPECT_LE(Cache.numLandmarks(), 3);
  std::vector<VertexId> L = Cache.landmarks();
  std::sort(L.begin(), L.end());
  EXPECT_TRUE(std::adjacent_find(L.begin(), L.end()) == L.end())
      << "duplicate landmark selected";
}

TEST(LandmarkCache, TightensTheCoordinateBound) {
  Graph G = roadWithCoords(30, 5);
  Schedule S;
  S.Delta = 4096;
  LandmarkCache Cache(G, 8, S);
  // The ALT bound dominates the coordinate bound by construction (max of
  // the two); verify it is strictly tighter somewhere.
  VertexId Target = 0;
  bool StrictlyTighter = false;
  for (VertexId V = 0; V < G.numNodes(); V += 13) {
    Priority HC = aStarHeuristic(G, V, Target);
    Priority HL = Cache.estimate(V, Target);
    ASSERT_GE(HL, HC);
    StrictlyTighter |= HL > HC;
  }
  EXPECT_TRUE(StrictlyTighter);
}

//===----------------------------------------------------------------------===//
// QueryEngine
//===----------------------------------------------------------------------===//

TEST(QueryEngine, MixedBatchIsBitIdenticalToSequentialRuns) {
  Graph G = roadWithCoords(40, 77);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 4;
  Opts.NumLandmarks = 4;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);

  // >= 256 randomized queries mixing all three kinds, schedules, and
  // deltas. Every result must equal the sequential fresh-state run.
  constexpr int kNumQueries = 260;
  SplitMix64 Rng(2020);
  std::vector<Query> Batch;
  for (int I = 0; I < kNumQueries; ++I) {
    Query Q;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Sched = scheduleFor(static_cast<int>(Rng.nextInt(0, 9)));
    switch (Rng.nextInt(0, 3)) {
    case 0:
      Q.Kind = QueryKind::SSSP;
      Q.CollectReached = true;
      break;
    case 1:
      Q.Kind = QueryKind::PPSP;
      break;
    default:
      Q.Kind = QueryKind::AStar;
      break;
    }
    Batch.push_back(Q);
  }

  std::vector<QueryResult> Results = Engine.runBatch(Batch);
  ASSERT_EQ(Results.size(), Batch.size());
  EXPECT_EQ(Engine.queriesServed(), static_cast<uint64_t>(kNumQueries));

  for (int I = 0; I < kNumQueries; ++I) {
    const Query &Q = Batch[I];
    const Schedule &S = *Q.Sched;
    if (Q.Kind == QueryKind::SSSP) {
      SSSPResult Ref = deltaSteppingSSSP(G, Q.Source, S);
      Count Finite = 0;
      for (Count V = 0; V < G.numNodes(); ++V)
        Finite += Ref.Dist[V] < kInfiniteDistance ? 1 : 0;
      ASSERT_EQ(static_cast<Count>(Results[I].Reached.size()), Finite)
          << "query " << I;
      for (const auto &[V, D] : Results[I].Reached)
        ASSERT_EQ(D, Ref.Dist[V]) << "query " << I << " vertex " << V;
    } else if (Q.Kind == QueryKind::PPSP) {
      PPSPResult Ref =
          pointToPointShortestPath(G, Q.Source, Q.Target, S);
      ASSERT_EQ(Results[I].Dist, Ref.Dist) << "query " << I;
    } else {
      PPSPResult Ref = aStarSearch(G, Q.Source, Q.Target, S);
      ASSERT_EQ(Results[I].Dist, Ref.Dist) << "query " << I;
    }
  }
}

TEST(QueryEngine, SubmitCollectOutOfOrder) {
  Graph G = roadWithCoords(20, 9);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);

  Query A;
  A.Kind = QueryKind::PPSP;
  A.Source = 0;
  A.Target = static_cast<VertexId>(G.numNodes() - 1);
  Query B = A;
  B.Source = static_cast<VertexId>(G.numNodes() / 2);

  uint64_t TA = Engine.submit(A);
  uint64_t TB = Engine.submit(B);
  // Collect in reverse submission order.
  QueryResult RB = Engine.collect(TB);
  QueryResult RA = Engine.collect(TA);
  EXPECT_EQ(RA.Dist, dijkstraPPSP(G, A.Source, A.Target));
  EXPECT_EQ(RB.Dist, dijkstraPPSP(G, B.Source, B.Target));
}

TEST(QueryEngine, LandmarkAStarPrunesAtLeastAsWellAsCoordinates) {
  Graph G = roadWithCoords(50, 13);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.NumLandmarks = 8;
  Opts.DefaultSchedule.Delta = 4096;
  QueryEngine Engine(G, Opts);
  ASSERT_NE(Engine.landmarks(), nullptr);

  SplitMix64 Rng(3);
  int64_t LandmarkTouched = 0, CoordTouched = 0;
  for (int Trial = 0; Trial < 6; ++Trial) {
    Query Q;
    Q.Kind = QueryKind::AStar;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    QueryResult R = Engine.runBatch({Q})[0];
    PPSPResult Coord =
        aStarSearch(G, Q.Source, Q.Target, Opts.DefaultSchedule);
    ASSERT_EQ(R.Dist, Coord.Dist);
    LandmarkTouched += R.Touched;
    CoordTouched += Coord.Stats.VerticesProcessed;
  }
  // ALT dominates the coordinate bound, so its searches must not expand
  // meaningfully more (touched counts things once; VerticesProcessed can
  // double-count re-relaxations, so allow slack).
  EXPECT_LE(LandmarkTouched, CoordTouched * 3 / 2)
      << "landmark A* expanded more than coordinate A*";
}

TEST(QueryEngine, PathExtractionReturnsTightPaths) {
  Graph G = roadWithCoords(25, 41);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.TrackParents = true;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);

  SplitMix64 Rng(8);
  for (int Trial = 0; Trial < 5; ++Trial) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.Target = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Q.CollectPath = true;
    QueryResult R = Engine.runBatch({Q})[0];
    if (R.Dist == kInfiniteDistance) {
      EXPECT_TRUE(R.Path.empty());
      continue;
    }
    ASSERT_FALSE(R.Path.empty());
    EXPECT_EQ(R.Path.front(), Q.Source);
    EXPECT_EQ(R.Path.back(), Q.Target);
    // Every hop must be a real edge and the weights must sum to the
    // reported distance.
    Priority Sum = 0;
    for (size_t I = 0; I + 1 < R.Path.size(); ++I) {
      Weight Best = -1;
      for (WNode E : G.outNeighbors(R.Path[I]))
        if (E.V == R.Path[I + 1] && (Best < 0 || E.W < Best))
          Best = E.W;
      ASSERT_GE(Best, 0) << "missing edge on path, hop " << I;
      Sum += Best;
    }
    EXPECT_EQ(Sum, R.Dist);
  }
}

TEST(QueryEngine, MalformedQueryFailsWithoutCrashing) {
  Graph G = roadWithCoords(10, 1);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  QueryEngine Engine(G, Opts);

  Query Bad;
  Bad.Kind = QueryKind::PPSP;
  Bad.Source = 0;
  Bad.Target = static_cast<VertexId>(G.numNodes() + 5); // out of range
  uint64_t T = Engine.submit(Bad);
  QueryResult R = Engine.collect(T);
  EXPECT_TRUE(R.Failed);
  EXPECT_EQ(R.Dist, kInfiniteDistance);

  // The engine keeps serving after a rejected request.
  Query Good;
  Good.Kind = QueryKind::PPSP;
  Good.Source = 0;
  Good.Target = static_cast<VertexId>(G.numNodes() - 1);
  EXPECT_EQ(Engine.runBatch({Good})[0].Dist,
            dijkstraPPSP(G, Good.Source, Good.Target));

  // An A* query is rejected (not aborted on) when the engine has neither
  // landmarks nor coordinates to build a heuristic from.
  Graph Plain = GraphBuilder().build(4, {{0, 1, 1}, {1, 2, 1}});
  QueryEngine::Options PlainOpts;
  PlainOpts.NumWorkers = 1;
  QueryEngine PlainEngine(Plain, PlainOpts);
  Query NoHeur;
  NoHeur.Kind = QueryKind::AStar;
  NoHeur.Source = 0;
  NoHeur.Target = 2;
  EXPECT_TRUE(PlainEngine.runBatch({NoHeur})[0].Failed);
}

TEST(QueryEngine, AggregateStatsAccumulate) {
  Graph G = roadWithCoords(15, 2);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.Delta = 2048;
  QueryEngine Engine(G, Opts);
  std::vector<Query> Batch;
  for (int I = 0; I < 8; ++I) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = static_cast<VertexId>(I * 13 % G.numNodes());
    Q.Target = static_cast<VertexId>((I * 29 + 7) % G.numNodes());
    Batch.push_back(Q);
  }
  Engine.runBatch(Batch);
  OrderedStats Agg = Engine.aggregateStats();
  EXPECT_GT(Agg.Rounds, 0);
  EXPECT_GT(Agg.VerticesProcessed, 0);
  EXPECT_EQ(Engine.queriesServed(), 8u);
}
