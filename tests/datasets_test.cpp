//===- tests/datasets_test.cpp - Unit tests for dataset stand-ins ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Datasets.h"

#include <gtest/gtest.h>

using namespace graphit;

TEST(Datasets, NamesAndClassification) {
  EXPECT_STREQ(datasetName(DatasetId::LJ), "LJ'");
  EXPECT_STREQ(datasetName(DatasetId::RD), "RD'");
  EXPECT_FALSE(isRoadNetwork(DatasetId::TW));
  EXPECT_TRUE(isRoadNetwork(DatasetId::MA));
  EXPECT_EQ(allDatasets().size(), 8u);
  EXPECT_EQ(socialDatasets().size(), 5u);
  EXPECT_EQ(roadDatasets().size(), 3u);
}

TEST(Datasets, SmallSocialDirectedHasWeightsInRange) {
  Graph G = makeDataset(DatasetId::LJ, DatasetVariant::Directed,
                        /*ScaleFactor=*/0.02);
  EXPECT_GT(G.numNodes(), 0);
  EXPECT_GT(G.numEdges(), 0);
  EXPECT_FALSE(G.isSymmetric());
  ASSERT_TRUE(G.isWeighted());
  for (VertexId V = 0; V < std::min<Count>(G.numNodes(), 512); ++V)
    for (WNode E : G.outNeighbors(V)) {
      ASSERT_GE(E.W, 1);
      ASSERT_LT(E.W, 1000);
    }
}

TEST(Datasets, LogWeightVariantUsesSmallWeights) {
  Graph G = makeDataset(DatasetId::LJ, DatasetVariant::DirectedLogWeights,
                        0.02);
  // log2(2^13) = 13; all weights in [1, ~scale).
  for (VertexId V = 0; V < std::min<Count>(G.numNodes(), 512); ++V)
    for (WNode E : G.outNeighbors(V)) {
      ASSERT_GE(E.W, 1);
      ASSERT_LT(E.W, 32);
    }
}

TEST(Datasets, SymmetricVariantIsSymmetricUnweighted) {
  Graph G = makeDataset(DatasetId::OK, DatasetVariant::Symmetric, 0.02);
  EXPECT_TRUE(G.isSymmetric());
  EXPECT_FALSE(G.isWeighted());
}

TEST(Datasets, RoadNetworksCarryCoordinatesAndOriginalWeights) {
  Graph G = makeDataset(DatasetId::MA, DatasetVariant::Directed, 0.05);
  EXPECT_TRUE(G.isSymmetric()); // road arcs in both directions
  EXPECT_TRUE(G.isWeighted());
  EXPECT_TRUE(G.hasCoordinates());
  EXPECT_EQ(G.coordinates().size(), G.numNodes());
}

TEST(Datasets, ScaleFactorShrinksGraphs) {
  Graph Small = makeDataset(DatasetId::LJ, DatasetVariant::Directed, 0.02);
  Graph Larger = makeDataset(DatasetId::LJ, DatasetVariant::Directed, 0.08);
  EXPECT_LT(Small.numNodes(), Larger.numNodes());
}

TEST(Datasets, DeterministicAcrossCalls) {
  Graph A = makeDataset(DatasetId::WB, DatasetVariant::Directed, 0.02);
  Graph B = makeDataset(DatasetId::WB, DatasetVariant::Directed, 0.02);
  ASSERT_EQ(A.numNodes(), B.numNodes());
  ASSERT_EQ(A.numEdges(), B.numEdges());
  for (VertexId V = 0; V < A.numNodes(); V += 97) {
    ASSERT_EQ(A.outDegree(V), B.outDegree(V));
  }
}

TEST(Datasets, PickSourcesReturnsValidStartVertices) {
  Graph G = makeDataset(DatasetId::LJ, DatasetVariant::Directed, 0.02);
  std::vector<VertexId> Sources = pickSources(G, 10, 42);
  ASSERT_EQ(Sources.size(), 10u);
  for (VertexId S : Sources) {
    ASSERT_LT(S, static_cast<VertexId>(G.numNodes()));
    ASSERT_GT(G.outDegree(S), 0);
  }
  // Deterministic.
  EXPECT_EQ(Sources, pickSources(G, 10, 42));
}
