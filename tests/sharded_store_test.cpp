//===- tests/sharded_store_test.cpp - Sharded snapshot store tests --------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Covers the scale-out store: shard routing, batch semantics vs the
// unsharded store, the cross-shard version vector (per-shard bumps,
// monotonicity, no torn reads), per-shard compaction triggers folding
// into a global rebuild, and the concurrency stress — N writers on
// distinct shards racing M readers that pin snapshots mid-publish and
// mid-compaction (runs under the TSan CI job like every other test).
//
//===----------------------------------------------------------------------===//

#include "stress_harness.h"

#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/SnapshotStore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace graphit;
using namespace graphit::service;
using namespace graphit::stress;

namespace {

Graph roadGraph(Count Side, uint64_t Seed = 4242) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

int64_t checksum(const std::vector<Priority> &Dist) {
  int64_t Sum = 0;
  for (Priority P : Dist)
    if (P < kInfiniteDistance)
      Sum += P;
  return Sum;
}

Schedule eager1024() {
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  return S;
}

} // namespace

TEST(ShardedStore, ShardRoutingCoversTheUniverse) {
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 5;
  ShardedSnapshotStore Store(roadGraph(20), Opts);
  ASSERT_EQ(Store.numShards(), 5);
  const Count N = Store.numNodes();
  // Every vertex routes to exactly one in-range shard; ranges are
  // contiguous and non-decreasing.
  int Prev = 0;
  for (Count V = 0; V < N; ++V) {
    int S = Store.shardOf(static_cast<VertexId>(V));
    ASSERT_GE(S, 0);
    ASSERT_LT(S, Store.numShards());
    ASSERT_GE(S, Prev);
    Prev = S;
  }
  // Ids far past the universe (future insertions, malformed writes) clamp
  // into the last shard instead of indexing out of range.
  EXPECT_EQ(Store.shardOf(static_cast<VertexId>(N + 12345)),
            Store.numShards() - 1);
}

TEST(ShardedStore, MatchesUnshardedOnFixedBatch) {
  Graph G = roadGraph(16);
  SnapshotStore Plain(G);
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  ShardedSnapshotStore Sharded(G, Opts);

  // A handcrafted batch crossing shard boundaries: insert, delete,
  // reweight, duplicate-edge coalescing, and malformed writes.
  WNode E0 = *Plain.current()->outNeighbors(0).begin();
  const VertexId Far = static_cast<VertexId>(G.numNodes() - 1);
  WNode EF = *Plain.current()->outNeighbors(Far).begin();
  std::vector<EdgeUpdate> Batch = {
      EdgeUpdate{0, Far, 33, UpdateKind::Upsert},
      EdgeUpdate{0, E0.V, 0, UpdateKind::Delete},
      EdgeUpdate{Far, EF.V, static_cast<Weight>(EF.W * 2),
                 UpdateKind::Upsert},
      EdgeUpdate{0, Far, 44, UpdateKind::Upsert}, // coalesces with #1
      EdgeUpdate{7, 7, 3, UpdateKind::Upsert},    // self loop: skipped
      EdgeUpdate{static_cast<VertexId>(G.numNodes() + 9), 3, 1,
                 UpdateKind::Upsert},             // out of range: skipped
  };
  SnapshotStore::ApplyResult PA = Plain.applyUpdates(Batch);
  ShardedSnapshotStore::ApplyResult SA = Sharded.applyUpdates(Batch);

  ASSERT_EQ(PA.Applied.size(), SA.Applied.size());
  for (size_t I = 0; I < PA.Applied.size(); ++I) {
    EXPECT_EQ(PA.Applied[I].Src, SA.Applied[I].Src) << I;
    EXPECT_EQ(PA.Applied[I].Dst, SA.Applied[I].Dst) << I;
    EXPECT_EQ(PA.Applied[I].OldW, SA.Applied[I].OldW) << I;
    EXPECT_EQ(PA.Applied[I].NewW, SA.Applied[I].NewW) << I;
  }
  EXPECT_EQ(PA.Snap->numEdges(), SA.Snap->numEdges());

  Schedule S = eager1024();
  SSSPResult DP = deltaSteppingSSSP(*PA.Snap, 0, S);
  SSSPResult DS = deltaSteppingSSSP(*SA.Snap, 0, S);
  ASSERT_EQ(DP.Dist, DS.Dist);
}

TEST(ShardedStore, VersionVectorBumpsOnlyTouchedShards) {
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  ShardedSnapshotStore Store(roadGraph(16), Opts);
  const Count Span = Store.shardSpan();

  // A batch entirely inside shard 0 (both endpoints in its range).
  std::vector<EdgeUpdate> Local = {
      EdgeUpdate{1, static_cast<VertexId>(Span - 1), 9, UpdateKind::Upsert}};
  ShardedSnapshotStore::ApplyResult R = Store.applyUpdates(Local);
  ASSERT_EQ(R.Version, 1u);
  const std::vector<uint64_t> &SV = R.Snap->shardVersions();
  ASSERT_EQ(SV.size(), 4u);
  EXPECT_EQ(SV[0], 1u);
  EXPECT_EQ(SV[1], 0u);
  EXPECT_EQ(SV[2], 0u);
  EXPECT_EQ(SV[3], 0u);
  EXPECT_EQ(R.Snap->version(), 1u);

  // A cross-shard batch bumps both involved shards.
  VertexId InLast = static_cast<VertexId>(Store.numNodes() - 1);
  ShardedSnapshotStore::ApplyResult R2 = Store.applyUpdates(
      {EdgeUpdate{2, InLast, 11, UpdateKind::Upsert}});
  const std::vector<uint64_t> &SV2 = R2.Snap->shardVersions();
  EXPECT_EQ(SV2[0], 2u);
  EXPECT_EQ(SV2[Store.shardOf(InLast)], 1u);
  EXPECT_EQ(R2.Snap->version(), 2u);

  // An empty batch publishes a version with no shard bumps.
  ShardedSnapshotStore::ApplyResult R3 = Store.applyUpdates({});
  EXPECT_EQ(R3.Version, 3u);
  EXPECT_EQ(R3.Snap->shardVersions(), SV2);
}

TEST(ShardedStore, CompactionFoldsOverlayAndPreservesChecksums) {
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 32;
  ShardedSnapshotStore Store(roadGraph(20), Opts);

  SnapshotStore::Options Never;
  Never.CompactionThreshold = 1e9;
  SnapshotStore Reference(roadGraph(20), Never);

  Schedule S = eager1024();
  SplitMix64 Rng(31);
  DeltaGraph Ref(std::make_shared<const Graph>(roadGraph(20)));
  for (int I = 0; I < 25; ++I) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 16, Rng);
    Ref.apply(Batch);
    Reference.applyUpdates(Batch);
    ShardedSnapshotStore::ApplyResult A = Store.applyUpdates(Batch);
    EXPECT_EQ(checksum(deltaSteppingSSSP(*A.Snap, 0, S).Dist),
              checksum(deltaSteppingSSSP(*Reference.current(), 0, S).Dist))
        << "batch " << I;
  }
  EXPECT_GT(Store.compactions(), 0u);
  // The compacted composite folded every overlay into the fresh base.
  ShardedSnapshotStore::Snapshot Snap = Store.current();
  Count Overlay = 0;
  for (int Sh = 0; Sh < Snap->numShards(); ++Sh)
    Overlay += Snap->shard(Sh).overlayEdges();
  EXPECT_LT(Overlay, Snap->numEdges() / 10);
  EXPECT_EQ(Snap->numEdges(), Reference.current()->numEdges());
}

TEST(ShardedStore, PinnedReadersSurviveCompaction) {
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 3;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 32;
  ShardedSnapshotStore Store(roadGraph(16), Opts);

  Schedule S = eager1024();
  ShardedSnapshotStore::Snapshot Pinned = Store.current();
  int64_t Before = checksum(deltaSteppingSSSP(*Pinned, 0, S).Dist);

  DeltaGraph Ref(std::make_shared<const Graph>(roadGraph(16)));
  SplitMix64 Rng(77);
  while (Store.compactions() == 0) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 24, Rng);
    Ref.apply(Batch);
    Store.applyUpdates(Batch);
  }
  // The pinned pre-compaction composite still answers identically.
  EXPECT_EQ(checksum(deltaSteppingSSSP(*Pinned, 0, S).Dist), Before);
  EXPECT_EQ(Pinned->version(), 0u);
  EXPECT_GT(Store.current()->version(), Pinned->version());
}

//===----------------------------------------------------------------------===//
// Concurrency stress: writers on distinct shards + readers pinning
// mid-publish and mid-compaction. Version vectors must stay monotone and
// untorn; pinned snapshots must be internally consistent.
//===----------------------------------------------------------------------===//

TEST(ShardedStoreConcurrency, DistinctShardWritersAndPinningReaders) {
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  Opts.CompactionThreshold = 0.02; // compactions happen mid-stress
  Opts.MinOverlayEdges = 64;
  ShardedSnapshotStore Store(roadGraph(24), Opts);
  const Count Span = Store.shardSpan();
  const Count N = Store.numNodes();

  std::atomic<bool> Done{false};
  std::atomic<int> Failures{0};
  std::atomic<uint64_t> BatchesApplied{0};

  // One writer per shard, batches strictly inside its vertex range so the
  // writers' shard lock sets are disjoint (maximum publish contention,
  // zero patch contention).
  std::vector<std::thread> Writers;
  for (int W = 0; W < Store.numShards(); ++W)
    Writers.emplace_back([&, W] {
      SplitMix64 Rng(0xA1 + static_cast<uint64_t>(W) * 7919);
      Count Lo = static_cast<Count>(W) * Span;
      Count Hi = W == Store.numShards() - 1
                     ? N
                     : std::min<Count>(N, Lo + Span);
      if (Hi - Lo < 2)
        return;
      for (int I = 0; I < 60; ++I) {
        std::vector<EdgeUpdate> Batch;
        for (int U = 0; U < 6; ++U) {
          VertexId A = static_cast<VertexId>(Rng.nextInt(Lo, Hi));
          VertexId B = static_cast<VertexId>(Rng.nextInt(Lo, Hi));
          if (A == B)
            continue;
          Batch.push_back(EdgeUpdate{
              A, B,
              static_cast<Weight>(Rng.nextInt(kMinWeight, kMaxWeight)),
              Rng.nextInt(0, 5) == 0 ? UpdateKind::Delete
                                     : UpdateKind::Upsert});
        }
        ShardedSnapshotStore::ApplyResult R = Store.applyUpdates(Batch);
        if (R.Snap->shardVersions().size() !=
            static_cast<size_t>(Store.numShards()))
          ++Failures;
        ++BatchesApplied;
      }
    });

  // Readers: pin snapshots in a tight loop; assert the version vector is
  // component-wise monotone across consecutive pins (never torn), the
  // global version never regresses, every shard version is <= global,
  // and (occasionally) a pinned composite is internally consistent.
  std::vector<std::thread> Readers;
  for (int T = 0; T < 3; ++T)
    Readers.emplace_back([&, T] {
      Schedule S = eager1024();
      uint64_t PrevGlobal = 0;
      std::vector<uint64_t> PrevShard(
          static_cast<size_t>(Store.numShards()), 0);
      int Iter = 0;
      while (!Done.load()) {
        ShardedSnapshotStore::Snapshot Snap = Store.current();
        const std::vector<uint64_t> &SV = Snap->shardVersions();
        if (Snap->version() < PrevGlobal) {
          ++Failures;
          break;
        }
        for (size_t I = 0; I < SV.size(); ++I)
          if (SV[I] < PrevShard[I] || SV[I] > Snap->version()) {
            ++Failures;
            break;
          }
        PrevGlobal = Snap->version();
        PrevShard.assign(SV.begin(), SV.end());
        if (T == 0 && ++Iter % 16 == 0) {
          // Two runs over one pinned composite must agree no matter how
          // many publishes/compactions landed meanwhile.
          int64_t C1 = checksum(deltaSteppingSSSP(*Snap, 0, S).Dist);
          int64_t C2 = checksum(deltaSteppingSSSP(*Snap, 0, S).Dist);
          if (C1 != C2)
            ++Failures;
        }
      }
    });

  for (std::thread &W : Writers)
    W.join();
  Done = true;
  for (std::thread &R : Readers)
    R.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GT(BatchesApplied.load(), 0u);
  EXPECT_GE(Store.version(), BatchesApplied.load());
  EXPECT_GT(Store.compactions(), 0u);
}

TEST(ShardedStoreConcurrency, ConcurrentWritersMatchSerialReplay) {
  // Writers on disjoint shards commute: after the race, the adjacency
  // must equal a serial replay of the same per-shard batches in any
  // order (each shard's operations are internally ordered by its own
  // writer).
  Graph G = roadGraph(16);
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  Opts.CompactionThreshold = 1e9; // keep every patch visible
  ShardedSnapshotStore Store(G, Opts);
  const Count Span = Store.shardSpan();
  const Count N = Store.numNodes();

  // Pre-generate each writer's batches (deterministic).
  std::vector<std::vector<std::vector<EdgeUpdate>>> PerWriter(4);
  for (int W = 0; W < 4; ++W) {
    SplitMix64 Rng(100 + static_cast<uint64_t>(W));
    Count Lo = static_cast<Count>(W) * Span;
    Count Hi = W == 3 ? N : std::min<Count>(N, Lo + Span);
    for (int B = 0; B < 20; ++B) {
      std::vector<EdgeUpdate> Batch;
      for (int U = 0; U < 5; ++U) {
        VertexId A = static_cast<VertexId>(Rng.nextInt(Lo, Hi));
        VertexId D = static_cast<VertexId>(Rng.nextInt(Lo, Hi));
        if (A == D)
          continue;
        Batch.push_back(EdgeUpdate{
            A, D, static_cast<Weight>(Rng.nextInt(kMinWeight, kMaxWeight)),
            UpdateKind::Upsert});
      }
      PerWriter[static_cast<size_t>(W)].push_back(std::move(Batch));
    }
  }

  std::vector<std::thread> Writers;
  for (int W = 0; W < 4; ++W)
    Writers.emplace_back([&, W] {
      for (const std::vector<EdgeUpdate> &B :
           PerWriter[static_cast<size_t>(W)])
        Store.applyUpdates(B);
    });
  for (std::thread &W : Writers)
    W.join();

  // Serial replay into a reference overlay (writer order is irrelevant:
  // the shards are disjoint).
  DeltaGraph Ref(std::make_shared<const Graph>(G));
  for (int W = 0; W < 4; ++W)
    for (const std::vector<EdgeUpdate> &B :
         PerWriter[static_cast<size_t>(W)])
      Ref.apply(B);

  ShardedSnapshotStore::Snapshot Snap = Store.current();
  ASSERT_EQ(Snap->numEdges(), Ref.numEdges());
  for (Count V = 0; V < N; ++V) {
    auto A = Snap->outNeighbors(static_cast<VertexId>(V));
    auto B = Ref.outNeighbors(static_cast<VertexId>(V));
    ASSERT_EQ(A.size(), B.size()) << "vertex " << V;
    auto BI = B.begin();
    for (WNode E : A) {
      WNode Want = *BI;
      ASSERT_EQ(E.V, Want.V) << "vertex " << V;
      ASSERT_EQ(E.W, Want.W) << "vertex " << V;
      ++BI;
    }
  }
}
