//===- tests/kcore_test.cpp - k-core decomposition tests ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/KCore.h"

#include "graph/Builder.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace graphit;

namespace {

Graph symmetric(std::vector<Edge> Edges, Count N) {
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  return GraphBuilder(Options).build(N, std::move(Edges));
}

Graph symmetricRmat(int Scale, int Deg, uint64_t Seed) {
  return symmetric(rmatEdges(Scale, Deg, Seed), Count{1} << Scale);
}

struct KCoreCase {
  const char *Name;
  UpdateStrategy Update;
  HistogramMethod Histogram;
};

class KCoreStrategyTest : public ::testing::TestWithParam<KCoreCase> {};

KCoreResult runCase(const Graph &G, const KCoreCase &C) {
  Schedule S;
  S.Update = C.Update;
  S.Histogram = C.Histogram;
  return kCoreDecomposition(G, S);
}

} // namespace

TEST_P(KCoreStrategyTest, TriangleWithTail) {
  // Triangle {0,1,2} (coreness 2) with a tail 2-3-4 (coreness 1).
  Graph G = symmetric({{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 3, 1},
                       {3, 4, 1}},
                      5);
  KCoreResult R = runCase(G, GetParam());
  EXPECT_EQ(R.Coreness, (std::vector<Priority>{2, 2, 2, 1, 1}));
  EXPECT_EQ(R.MaxCore, 2);
}

TEST_P(KCoreStrategyTest, CompleteGraphIsOneCore) {
  Graph G = symmetric(completeGraphEdges(8), 8);
  KCoreResult R = runCase(G, GetParam());
  for (Count V = 0; V < 8; ++V)
    EXPECT_EQ(R.Coreness[V], 7);
}

TEST_P(KCoreStrategyTest, PathGraphIsOneCore) {
  Graph G = symmetric(pathEdges(10), 10);
  KCoreResult R = runCase(G, GetParam());
  for (Count V = 0; V < 10; ++V)
    EXPECT_EQ(R.Coreness[V], 1);
}

TEST_P(KCoreStrategyTest, IsolatedVerticesAreZeroCore) {
  Graph G = symmetric({{0, 1, 1}}, 4);
  KCoreResult R = runCase(G, GetParam());
  EXPECT_EQ(R.Coreness[0], 1);
  EXPECT_EQ(R.Coreness[1], 1);
  EXPECT_EQ(R.Coreness[2], 0);
  EXPECT_EQ(R.Coreness[3], 0);
}

TEST_P(KCoreStrategyTest, MatchesSerialOnRmat) {
  Graph G = symmetricRmat(11, 8, 45);
  KCoreResult R = runCase(G, GetParam());
  EXPECT_EQ(R.Coreness, kCoreSerial(G));
}

TEST_P(KCoreStrategyTest, MatchesSerialOnErdosRenyi) {
  Graph G = symmetric(erdosRenyiEdges(4000, 6, 8), 4000);
  KCoreResult R = runCase(G, GetParam());
  EXPECT_EQ(R.Coreness, kCoreSerial(G));
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, KCoreStrategyTest,
    ::testing::Values(
        KCoreCase{"LazyHistogramLocal", UpdateStrategy::LazyConstantSum,
                  HistogramMethod::LocalTables},
        KCoreCase{"LazyHistogramAtomic", UpdateStrategy::LazyConstantSum,
                  HistogramMethod::AtomicCounts},
        KCoreCase{"LazyPlain", UpdateStrategy::Lazy,
                  HistogramMethod::LocalTables},
        KCoreCase{"Eager", UpdateStrategy::EagerWithFusion,
                  HistogramMethod::LocalTables}),
    [](const auto &Info) { return Info.param.Name; });

//===----------------------------------------------------------------------===//
// Unordered baseline and serial oracle
//===----------------------------------------------------------------------===//

TEST(KCoreUnordered, MatchesSerial) {
  Graph G = symmetricRmat(10, 10, 91);
  EXPECT_EQ(kCoreUnordered(G).Coreness, kCoreSerial(G));
}

TEST(KCoreUnordered, ScansMoreThanOrdered) {
  // The unordered version rescans the alive set every wave; its processed
  // count must exceed the bucketed version's (Fig. 1's k-core speedup).
  Graph G = symmetricRmat(11, 12, 92);
  Schedule S;
  KCoreResult Ordered = kCoreDecomposition(G, S);
  KCoreResult Unordered = kCoreUnordered(G);
  EXPECT_EQ(Ordered.Coreness, Unordered.Coreness);
  EXPECT_GT(Unordered.Stats.VerticesProcessed,
            2 * Ordered.Stats.VerticesProcessed);
}

TEST(KCoreSerial, HandlesEmptyGraph) {
  Graph G = symmetric({}, 3);
  EXPECT_EQ(kCoreSerial(G), (std::vector<Priority>{0, 0, 0}));
}

TEST(KCore, MaxCoreIsMaxOfCoreness) {
  Graph G = symmetricRmat(10, 16, 93);
  Schedule S;
  KCoreResult R = kCoreDecomposition(G, S);
  Priority Max = 0;
  for (Priority C : R.Coreness)
    Max = std::max(Max, C);
  EXPECT_EQ(R.MaxCore, Max);
}

TEST(KCore, StatsRoundsPositive) {
  Graph G = symmetricRmat(9, 8, 94);
  Schedule S;
  KCoreResult R = kCoreDecomposition(G, S);
  EXPECT_GT(R.Stats.Rounds, 0);
  EXPECT_EQ(R.Stats.VerticesProcessed, G.numNodes());
}
