//===- tests/sssp_test.cpp - SSSP/wBFS property tests ---------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Property sweep: every (strategy x direction x delta) schedule must
// reproduce serial Dijkstra exactly, across graph families and weight
// regimes.
//
//===----------------------------------------------------------------------===//

#include "algorithms/SSSP.h"

#include "algorithms/BellmanFord.h"
#include "algorithms/Dijkstra.h"
#include "algorithms/WBFS.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace graphit;

namespace {

struct SSSPCase {
  std::string Name;
  Schedule Sched;
};

std::vector<SSSPCase> allSchedules() {
  std::vector<SSSPCase> Cases;
  for (UpdateStrategy U :
       {UpdateStrategy::EagerWithFusion, UpdateStrategy::EagerNoFusion,
        UpdateStrategy::Lazy}) {
    for (int64_t Delta : {int64_t{1}, int64_t{7}, int64_t{512}}) {
      Schedule S;
      S.Update = U;
      S.Delta = Delta;
      std::string Name = std::string(updateStrategyName(U)) + "_d" +
                         std::to_string(Delta);
      if (U == UpdateStrategy::Lazy) {
        for (Direction D : {Direction::SparsePush, Direction::DensePull,
                            Direction::Hybrid}) {
          Schedule SD = S;
          SD.Dir = D;
          Cases.push_back({Name + "_" + directionName(D), SD});
        }
      } else {
        Cases.push_back({Name, S});
      }
    }
  }
  return Cases;
}

class SSSPScheduleTest : public ::testing::TestWithParam<SSSPCase> {};

Graph rmatWeighted(int Scale, int Deg, uint64_t Seed, Weight Hi) {
  std::vector<Edge> Edges = rmatEdges(Scale, Deg, Seed);
  assignRandomWeights(Edges, 1, Hi, Seed ^ 0x9999);
  return GraphBuilder().build(Count{1} << Scale, Edges);
}

Graph roadWeighted(Count Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

} // namespace

TEST_P(SSSPScheduleTest, MatchesDijkstraOnSkewedRmat) {
  Graph G = rmatWeighted(11, 8, 42, 1000);
  SSSPResult R = deltaSteppingSSSP(G, 3, GetParam().Sched);
  EXPECT_EQ(R.Dist, dijkstraSSSP(G, 3));
}

TEST_P(SSSPScheduleTest, MatchesDijkstraOnRoadGrid) {
  Graph G = roadWeighted(30, 7);
  SSSPResult R = deltaSteppingSSSP(G, 17, GetParam().Sched);
  EXPECT_EQ(R.Dist, dijkstraSSSP(G, 17));
}

TEST_P(SSSPScheduleTest, MatchesDijkstraWithZeroWeightEdges) {
  // Zero-weight edges keep vertices inside the same bucket; the engines
  // must still terminate and produce exact distances.
  std::vector<Edge> Edges = rmatEdges(9, 6, 5);
  assignRandomWeights(Edges, 0, 20, 3);
  Graph G = GraphBuilder().build(Count{1} << 9, Edges);
  SSSPResult R = deltaSteppingSSSP(G, 1, GetParam().Sched);
  EXPECT_EQ(R.Dist, dijkstraSSSP(G, 1));
}

TEST_P(SSSPScheduleTest, DisconnectedComponentsStayInfinite) {
  // Two disjoint paths: 0-1-2 and 3-4-5.
  Graph G = GraphBuilder().build(
      6, {{0, 1, 2}, {1, 2, 2}, {3, 4, 2}, {4, 5, 2}});
  SSSPResult R = deltaSteppingSSSP(G, 0, GetParam().Sched);
  EXPECT_EQ(R.Dist[2], 4);
  EXPECT_EQ(R.Dist[3], kInfiniteDistance);
  EXPECT_EQ(R.Dist[5], kInfiniteDistance);
}

TEST_P(SSSPScheduleTest, SingleVertexAndSelfLoopFreeEdgeCases) {
  Graph G1 = GraphBuilder().build(1, {});
  EXPECT_EQ(deltaSteppingSSSP(G1, 0, GetParam().Sched).Dist[0], 0);

  Graph G2 = GraphBuilder().build(2, {});
  SSSPResult R = deltaSteppingSSSP(G2, 1, GetParam().Sched);
  EXPECT_EQ(R.Dist[0], kInfiniteDistance);
  EXPECT_EQ(R.Dist[1], 0);
}

TEST_P(SSSPScheduleTest, StarGraphOneRound) {
  Graph G = GraphBuilder().build(64, starEdges(64));
  SSSPResult R = deltaSteppingSSSP(G, 0, GetParam().Sched);
  for (VertexId V = 1; V < 64; ++V)
    EXPECT_EQ(R.Dist[V], 1);
}

INSTANTIATE_TEST_SUITE_P(Schedules, SSSPScheduleTest,
                         ::testing::ValuesIn(allSchedules()),
                         [](const auto &Info) { return Info.param.Name; });

//===----------------------------------------------------------------------===//
// Cross-variant agreement and statistics
//===----------------------------------------------------------------------===//

TEST(SSSP, EagerAndLazyAgreeOnManySources) {
  Graph G = rmatWeighted(10, 10, 77, 100);
  Schedule Eager; // default eager_with_fusion
  Schedule Lazy;
  Lazy.configApplyPriorityUpdate("lazy");
  for (VertexId Src : {0u, 5u, 99u, 511u}) {
    SSSPResult A = deltaSteppingSSSP(G, Src, Eager);
    SSSPResult B = deltaSteppingSSSP(G, Src, Lazy);
    EXPECT_EQ(A.Dist, B.Dist) << "source " << Src;
  }
}

TEST(SSSP, FusionReducesRoundsOnRoadGrid) {
  Graph G = roadWeighted(60, 13);
  Schedule Fused;
  Fused.configApplyPriorityUpdateDelta(8192);
  Schedule Plain = Fused;
  Plain.configApplyPriorityUpdate("eager_no_fusion");

  SSSPResult A = deltaSteppingSSSP(G, 0, Fused);
  SSSPResult B = deltaSteppingSSSP(G, 0, Plain);
  EXPECT_EQ(A.Dist, B.Dist);
  EXPECT_LT(A.Stats.Rounds, B.Stats.Rounds)
      << "bucket fusion must reduce global rounds on road networks";
  EXPECT_GT(A.Stats.FusedRounds, 0);
}

TEST(SSSP, StatsReportWork) {
  Graph G = rmatWeighted(10, 8, 3, 50);
  SSSPResult R = deltaSteppingSSSP(G, 0, Schedule());
  EXPECT_GT(R.Stats.Rounds, 0);
  EXPECT_GT(R.Stats.VerticesProcessed, 0);
}

//===----------------------------------------------------------------------===//
// wBFS
//===----------------------------------------------------------------------===//

TEST(WBFS, MatchesDijkstraWithLogWeights) {
  std::vector<Edge> Edges = rmatEdges(11, 8, 21);
  assignRandomWeights(Edges, 1, 11, 2); // [1, log n) regime
  Graph G = GraphBuilder().build(Count{1} << 11, Edges);
  Schedule S;
  S.Delta = 999; // must be ignored: wBFS pins delta to 1
  SSSPResult R = weightedBFS(G, 4, S);
  EXPECT_EQ(R.Dist, dijkstraSSSP(G, 4));
}

TEST(WBFS, LazyVariantAgrees) {
  std::vector<Edge> Edges = rmatEdges(10, 8, 22);
  assignRandomWeights(Edges, 1, 10, 9);
  Graph G = GraphBuilder().build(Count{1} << 10, Edges);
  Schedule S;
  S.configApplyPriorityUpdate("lazy");
  EXPECT_EQ(weightedBFS(G, 0, S).Dist, dijkstraSSSP(G, 0));
}

//===----------------------------------------------------------------------===//
// Unordered baseline (Bellman-Ford)
//===----------------------------------------------------------------------===//

TEST(BellmanFord, MatchesDijkstra) {
  Graph G = rmatWeighted(11, 8, 55, 500);
  EXPECT_EQ(bellmanFordSSSP(G, 2).Dist, dijkstraSSSP(G, 2));
}

TEST(BellmanFord, DensePullVariantMatches) {
  Graph G = rmatWeighted(10, 8, 56, 500);
  EXPECT_EQ(bellmanFordSSSP(G, 2, Direction::DensePull).Dist,
            dijkstraSSSP(G, 2));
}

TEST(BellmanFord, DoesMoreWorkThanOrderedOnRoadGrid) {
  // Fig. 1's premise: the unordered algorithm processes far more vertex
  // activations than the ordered one on high-diameter graphs. Ordered
  // uses a road-tuned delta, as the paper does (§6.2).
  Graph G = roadWeighted(100, 9);
  Schedule S;
  S.configApplyPriorityUpdateDelta(8192);
  SSSPResult Ordered = deltaSteppingSSSP(G, 0, S);
  SSSPResult Unordered = bellmanFordSSSP(G, 0);
  EXPECT_EQ(Ordered.Dist, Unordered.Dist);
  EXPECT_GT(Unordered.Stats.VerticesProcessed,
            Ordered.Stats.VerticesProcessed);
}
