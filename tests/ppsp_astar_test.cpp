//===- tests/ppsp_astar_test.cpp - PPSP and A* tests ----------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/AStar.h"
#include "algorithms/Dijkstra.h"
#include "algorithms/PPSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace graphit;

namespace {

Graph rmatWeighted(int Scale, int Deg, uint64_t Seed, Weight Hi) {
  std::vector<Edge> Edges = rmatEdges(Scale, Deg, Seed);
  assignRandomWeights(Edges, 1, Hi, Seed ^ 0xABC);
  return GraphBuilder().build(Count{1} << Scale, Edges);
}

Graph roadWithCoords(Count Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

struct StrategyCase {
  const char *Name;
  UpdateStrategy Update;
};

class PPSPStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

} // namespace

TEST_P(PPSPStrategyTest, MatchesDijkstraOnRandomPairs) {
  Graph G = rmatWeighted(11, 8, 31, 800);
  Schedule S;
  S.Update = GetParam().Update;
  S.Delta = 16;
  SplitMix64 Rng(7);
  for (int Trial = 0; Trial < 8; ++Trial) {
    auto Src = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto Dst = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    PPSPResult R = pointToPointShortestPath(G, Src, Dst, S);
    EXPECT_EQ(R.Dist, dijkstraPPSP(G, Src, Dst))
        << Src << " -> " << Dst;
  }
}

TEST_P(PPSPStrategyTest, UnreachableTargetReportsInfinite) {
  Graph G = GraphBuilder().build(4, {{0, 1, 5}});
  Schedule S;
  S.Update = GetParam().Update;
  PPSPResult R = pointToPointShortestPath(G, 0, 3, S);
  EXPECT_EQ(R.Dist, kInfiniteDistance);
}

TEST_P(PPSPStrategyTest, SourceEqualsTarget) {
  Graph G = GraphBuilder().build(3, {{0, 1, 5}, {1, 2, 5}});
  Schedule S;
  S.Update = GetParam().Update;
  EXPECT_EQ(pointToPointShortestPath(G, 1, 1, S).Dist, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PPSPStrategyTest,
    ::testing::Values(
        StrategyCase{"EagerWithFusion", UpdateStrategy::EagerWithFusion},
        StrategyCase{"EagerNoFusion", UpdateStrategy::EagerNoFusion},
        StrategyCase{"Lazy", UpdateStrategy::Lazy}),
    [](const auto &Info) { return Info.param.Name; });

//===----------------------------------------------------------------------===//
// Early exit at Δ-boundaries
//
// The stop predicate is `CurrKey * Delta >= Dist[Target]`. When the
// target's true distance lands *exactly* on a bucket boundary (dist = kΔ),
// an off-by-one in either direction would terminate one bucket early
// (wrong, possibly non-final distance) or one bucket late (missed exit).
// These are regressions for that edge, for Δ ∈ {1, 4, 17}, eager and lazy.
//===----------------------------------------------------------------------===//

namespace {

struct BoundaryCase {
  const char *Name;
  UpdateStrategy Update;
  int64_t Delta;
};

class DeltaBoundaryTest : public ::testing::TestWithParam<BoundaryCase> {};

} // namespace

TEST_P(DeltaBoundaryTest, UnitPathTargetsOnExactBucketBoundaries) {
  // Unit-weight path 0 → 1 → ... → n-1: dist(k) = k, so targets at
  // multiples of Δ sit exactly on bucket boundaries. The long tail after
  // each target would be explored by a late exit and is how we know the
  // distance is final rather than tentative.
  const int64_t Delta = GetParam().Delta;
  constexpr Count N = 120;
  Graph G = GraphBuilder().build(N, pathEdges(N));
  Schedule S;
  S.Update = GetParam().Update;
  S.Delta = Delta;
  for (int64_t Mult = 1; Mult * Delta < N; ++Mult) {
    auto Target = static_cast<VertexId>(Mult * Delta);
    PPSPResult R = pointToPointShortestPath(G, 0, Target, S);
    EXPECT_EQ(R.Dist, Mult * Delta) << "delta " << Delta << " target "
                                    << Target;
  }
}

TEST_P(DeltaBoundaryTest, RoadTargetsWhoseDistanceIsAMultipleOfDelta) {
  // On a generated road network, scan for vertices whose exact distance is
  // ≡ 0 (mod Δ) and require PPSP and A* to agree with Dijkstra on each.
  Graph G = roadWithCoords(30, 99);
  VertexId Src = 5;
  std::vector<Priority> Exact = dijkstraSSSP(G, Src);
  Schedule S;
  S.Update = GetParam().Update;
  S.Delta = GetParam().Delta;
  int Checked = 0;
  for (Count V = 0; V < G.numNodes() && Checked < 12; ++V) {
    if (Exact[V] == kInfiniteDistance || Exact[V] == 0 ||
        Exact[V] % S.Delta != 0)
      continue;
    ++Checked;
    auto Target = static_cast<VertexId>(V);
    EXPECT_EQ(pointToPointShortestPath(G, Src, Target, S).Dist, Exact[V])
        << "PPSP delta " << S.Delta << " target " << Target;
    EXPECT_EQ(aStarSearch(G, Src, Target, S).Dist, Exact[V])
        << "A* delta " << S.Delta << " target " << Target;
  }
  EXPECT_GT(Checked, 0) << "no boundary-distance targets found";
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, DeltaBoundaryTest,
    ::testing::Values(
        BoundaryCase{"EagerD1", UpdateStrategy::EagerWithFusion, 1},
        BoundaryCase{"EagerD4", UpdateStrategy::EagerWithFusion, 4},
        BoundaryCase{"EagerD17", UpdateStrategy::EagerWithFusion, 17},
        BoundaryCase{"EagerNoFusionD4", UpdateStrategy::EagerNoFusion, 4},
        BoundaryCase{"EagerNoFusionD17", UpdateStrategy::EagerNoFusion, 17},
        BoundaryCase{"LazyD1", UpdateStrategy::Lazy, 1},
        BoundaryCase{"LazyD4", UpdateStrategy::Lazy, 4},
        BoundaryCase{"LazyD17", UpdateStrategy::Lazy, 17}),
    [](const auto &Info) { return Info.param.Name; });

TEST(PPSP, EarlyExitDoesLessWorkThanFullSSSP) {
  Graph G = roadWithCoords(50, 3);
  Schedule S;
  S.Delta = 4096;
  // Nearby pair: PPSP should stop long before the full SSSP finishes.
  VertexId Src = 0, Dst = 102;
  PPSPResult P = pointToPointShortestPath(G, Src, Dst, S);
  SSSPResult Full = deltaSteppingSSSP(G, Src, S);
  EXPECT_EQ(P.Dist, Full.Dist[Dst]);
  EXPECT_LT(P.Stats.VerticesProcessed, Full.Stats.VerticesProcessed);
}

//===----------------------------------------------------------------------===//
// A*
//===----------------------------------------------------------------------===//

class AStarStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(AStarStrategyTest, ExactOnRoadNetworkPairs) {
  Graph G = roadWithCoords(40, 19);
  Schedule S;
  S.Update = GetParam().Update;
  S.Delta = 2048;
  SplitMix64 Rng(5);
  for (int Trial = 0; Trial < 8; ++Trial) {
    auto Src = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto Dst = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    PPSPResult R = aStarSearch(G, Src, Dst, S);
    EXPECT_EQ(R.Dist, dijkstraPPSP(G, Src, Dst))
        << Src << " -> " << Dst;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AStarStrategyTest,
    ::testing::Values(
        StrategyCase{"EagerWithFusion", UpdateStrategy::EagerWithFusion},
        StrategyCase{"EagerNoFusion", UpdateStrategy::EagerNoFusion},
        StrategyCase{"Lazy", UpdateStrategy::Lazy}),
    [](const auto &Info) { return Info.param.Name; });

TEST(AStar, HeuristicIsAdmissibleAndConsistent) {
  Graph G = roadWithCoords(25, 11);
  VertexId Target = static_cast<VertexId>(G.numNodes() - 1);
  std::vector<Priority> Exact = dijkstraSSSP(G, Target); // symmetric graph
  for (VertexId V = 0; V < G.numNodes(); V += 13) {
    Priority H = aStarHeuristic(G, V, Target);
    if (Exact[V] != kInfiniteDistance) {
      EXPECT_LE(H, Exact[V]) << "inadmissible at " << V;
    }
    for (WNode E : G.outNeighbors(V))
      EXPECT_LE(H, E.W + aStarHeuristic(G, E.V, Target))
          << "inconsistent edge " << V << " -> " << E.V;
  }
  EXPECT_EQ(aStarHeuristic(G, Target, Target), 0);
}

TEST(AStar, VisitsNoMoreVerticesThanPPSP) {
  Graph G = roadWithCoords(60, 23);
  Schedule S;
  S.Delta = 4096;
  // Corner-to-nearby-corner query: the heuristic should prune expansion.
  VertexId Src = 0;
  VertexId Dst = static_cast<VertexId>(G.numNodes() / 2);
  PPSPResult WithH = aStarSearch(G, Src, Dst, S);
  PPSPResult NoH = pointToPointShortestPath(G, Src, Dst, S);
  EXPECT_EQ(WithH.Dist, NoH.Dist);
  EXPECT_LE(WithH.Stats.VerticesProcessed,
            NoH.Stats.VerticesProcessed * 11 / 10)
      << "A* should not expand meaningfully more than PPSP";
}

TEST(AStar, RequiresCoordinatesIsDocumented) {
  // A graph without coordinates cannot run A*; the library aborts in that
  // case (fatalError), so here we only verify the feature probe.
  Graph G = GraphBuilder().build(2, {{0, 1, 1}});
  EXPECT_FALSE(G.hasCoordinates());
}
