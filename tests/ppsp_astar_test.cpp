//===- tests/ppsp_astar_test.cpp - PPSP and A* tests ----------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/AStar.h"
#include "algorithms/Dijkstra.h"
#include "algorithms/PPSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace graphit;

namespace {

Graph rmatWeighted(int Scale, int Deg, uint64_t Seed, Weight Hi) {
  std::vector<Edge> Edges = rmatEdges(Scale, Deg, Seed);
  assignRandomWeights(Edges, 1, Hi, Seed ^ 0xABC);
  return GraphBuilder().build(Count{1} << Scale, Edges);
}

Graph roadWithCoords(Count Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

struct StrategyCase {
  const char *Name;
  UpdateStrategy Update;
};

class PPSPStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

} // namespace

TEST_P(PPSPStrategyTest, MatchesDijkstraOnRandomPairs) {
  Graph G = rmatWeighted(11, 8, 31, 800);
  Schedule S;
  S.Update = GetParam().Update;
  S.Delta = 16;
  SplitMix64 Rng(7);
  for (int Trial = 0; Trial < 8; ++Trial) {
    auto Src = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto Dst = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    PPSPResult R = pointToPointShortestPath(G, Src, Dst, S);
    EXPECT_EQ(R.Dist, dijkstraPPSP(G, Src, Dst))
        << Src << " -> " << Dst;
  }
}

TEST_P(PPSPStrategyTest, UnreachableTargetReportsInfinite) {
  Graph G = GraphBuilder().build(4, {{0, 1, 5}});
  Schedule S;
  S.Update = GetParam().Update;
  PPSPResult R = pointToPointShortestPath(G, 0, 3, S);
  EXPECT_EQ(R.Dist, kInfiniteDistance);
}

TEST_P(PPSPStrategyTest, SourceEqualsTarget) {
  Graph G = GraphBuilder().build(3, {{0, 1, 5}, {1, 2, 5}});
  Schedule S;
  S.Update = GetParam().Update;
  EXPECT_EQ(pointToPointShortestPath(G, 1, 1, S).Dist, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PPSPStrategyTest,
    ::testing::Values(
        StrategyCase{"EagerWithFusion", UpdateStrategy::EagerWithFusion},
        StrategyCase{"EagerNoFusion", UpdateStrategy::EagerNoFusion},
        StrategyCase{"Lazy", UpdateStrategy::Lazy}),
    [](const auto &Info) { return Info.param.Name; });

TEST(PPSP, EarlyExitDoesLessWorkThanFullSSSP) {
  Graph G = roadWithCoords(50, 3);
  Schedule S;
  S.Delta = 4096;
  // Nearby pair: PPSP should stop long before the full SSSP finishes.
  VertexId Src = 0, Dst = 102;
  PPSPResult P = pointToPointShortestPath(G, Src, Dst, S);
  SSSPResult Full = deltaSteppingSSSP(G, Src, S);
  EXPECT_EQ(P.Dist, Full.Dist[Dst]);
  EXPECT_LT(P.Stats.VerticesProcessed, Full.Stats.VerticesProcessed);
}

//===----------------------------------------------------------------------===//
// A*
//===----------------------------------------------------------------------===//

class AStarStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(AStarStrategyTest, ExactOnRoadNetworkPairs) {
  Graph G = roadWithCoords(40, 19);
  Schedule S;
  S.Update = GetParam().Update;
  S.Delta = 2048;
  SplitMix64 Rng(5);
  for (int Trial = 0; Trial < 8; ++Trial) {
    auto Src = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto Dst = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    PPSPResult R = aStarSearch(G, Src, Dst, S);
    EXPECT_EQ(R.Dist, dijkstraPPSP(G, Src, Dst))
        << Src << " -> " << Dst;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AStarStrategyTest,
    ::testing::Values(
        StrategyCase{"EagerWithFusion", UpdateStrategy::EagerWithFusion},
        StrategyCase{"EagerNoFusion", UpdateStrategy::EagerNoFusion},
        StrategyCase{"Lazy", UpdateStrategy::Lazy}),
    [](const auto &Info) { return Info.param.Name; });

TEST(AStar, HeuristicIsAdmissibleAndConsistent) {
  Graph G = roadWithCoords(25, 11);
  VertexId Target = static_cast<VertexId>(G.numNodes() - 1);
  std::vector<Priority> Exact = dijkstraSSSP(G, Target); // symmetric graph
  for (VertexId V = 0; V < G.numNodes(); V += 13) {
    Priority H = aStarHeuristic(G, V, Target);
    if (Exact[V] != kInfiniteDistance) {
      EXPECT_LE(H, Exact[V]) << "inadmissible at " << V;
    }
    for (WNode E : G.outNeighbors(V))
      EXPECT_LE(H, E.W + aStarHeuristic(G, E.V, Target))
          << "inconsistent edge " << V << " -> " << E.V;
  }
  EXPECT_EQ(aStarHeuristic(G, Target, Target), 0);
}

TEST(AStar, VisitsNoMoreVerticesThanPPSP) {
  Graph G = roadWithCoords(60, 23);
  Schedule S;
  S.Delta = 4096;
  // Corner-to-nearby-corner query: the heuristic should prune expansion.
  VertexId Src = 0;
  VertexId Dst = static_cast<VertexId>(G.numNodes() / 2);
  PPSPResult WithH = aStarSearch(G, Src, Dst, S);
  PPSPResult NoH = pointToPointShortestPath(G, Src, Dst, S);
  EXPECT_EQ(WithH.Dist, NoH.Dist);
  EXPECT_LE(WithH.Stats.VerticesProcessed,
            NoH.Stats.VerticesProcessed * 11 / 10)
      << "A* should not expand meaningfully more than PPSP";
}

TEST(AStar, RequiresCoordinatesIsDocumented) {
  // A graph without coordinates cannot run A*; the library aborts in that
  // case (fatalError), so here we only verify the feature probe.
  Graph G = GraphBuilder().build(2, {{0, 1, 1}});
  EXPECT_FALSE(G.hasCoordinates());
}
