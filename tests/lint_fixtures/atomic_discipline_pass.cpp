// lint-expect: pass
//
// The same relaxation written correctly: the shared array goes through an
// Atomics.h helper inside the region; per-thread scratch declared inside
// the region and writes outside any region stay raw legitimately.
#include <vector>

void atomicWriteMin(double *Slot, double Value);

void relaxAll(std::vector<double> &Dist, const std::vector<int> &Frontier) {
  Dist[0] = 0.0; // outside any parallel region: single-threaded, fine
#pragma omp parallel
  {
    std::vector<double> LocalKeys(Frontier.size(), 0.0);
    std::vector<double> ScratchDist(Frontier.size(), 0.0);
#pragma omp for
    for (int I = 0; I < static_cast<int>(Frontier.size()); ++I) {
      LocalKeys[I] = 1.0;      // Local* naming convention: per-thread
      ScratchDist[I] = 2.0;    // declared inside the region: per-thread
      atomicWriteMin(&Dist[Frontier[static_cast<unsigned>(I)]], 1.0);
    }
  }
}
