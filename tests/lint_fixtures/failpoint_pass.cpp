// lint-expect: pass
//
// A compliant site: "snapshot.publish" is registered in
// failpoints::kAllPoints and exercised by tests/failpoint_test.cpp.
#include "support/FailPoint.h"

void publish() {
  GRAPHIT_FAIL_POINT("snapshot.publish");
}
