// lint-expect: fail(pin-escape)
//
// Segment-pointer variants of the classic pin dangles: foldRange returns
// the shared_ptr that owns the freshly folded segment, so binding a
// reference through the temporary (or stripping it with .get()) leaves a
// raw BaseSegment* alive after its owner is gone — it dangles the moment
// the next fold or snapshot retirement drops the last real reference.
#include <memory>

struct BaseSegment {
  int First = 0;
};

struct DeltaGraph {
  std::shared_ptr<const BaseSegment> foldRange(int First, int Last) const;
};

int useAfterFold(const DeltaGraph &G) {
  const BaseSegment &S = *G.foldRange(0, 64);      // owner dies at end of decl
  const BaseSegment *P = G.foldRange(0, 64).get(); // ditto
  return S.First + P->First;
}
