// lint-expect: pass
//
// The compliant shapes for segment handling: name the shared_ptr owner
// before dereferencing, or hand the owning pointer straight to
// adoptSegment so ownership transfers inside one full expression.
#include <memory>

struct BaseSegment {
  int First = 0;
};

struct DeltaGraph {
  std::shared_ptr<const BaseSegment> foldRange(int First, int Last) const;
  void adoptSegment(std::shared_ptr<const BaseSegment> Seg);
};

int useFolded(DeltaGraph &G) {
  std::shared_ptr<const BaseSegment> Seg = G.foldRange(0, 64);
  const BaseSegment &S = *Seg;
  G.adoptSegment(G.foldRange(64, 128)); // ownership transfers in-expression
  return S.First;
}
