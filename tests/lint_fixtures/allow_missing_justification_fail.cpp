// lint-expect: fail(atomic-discipline) fail(suppression)
//
// An allow() with no justification is itself an error AND does not waive
// the finding it sits on: suppressions must say why.
#include <vector>

void relax(std::vector<double> &Dist) {
#pragma omp parallel
  {
    // graphit-lint: allow(atomic-discipline)
    Dist[0] = 1.0;
  }
}
