// lint-expect: pass
//
// The compliant round loop: the bucket boundary is the safe cancellation
// point (every earlier bucket is fully drained), so polling once per
// round bounds overshoot to a single bucket.
struct BucketQueue {
  bool nextBucket();
  long currentKey();
};

struct CancelToken {
  bool expired() const;
};

long drain(BucketQueue &Queue, const CancelToken *Cancel) {
  long Sum = 0;
  while (Queue.nextBucket()) {
    if (Cancel && Cancel->expired())
      break;
    Sum += Queue.currentKey();
  }
  return Sum;
}
