// lint-expect: fail(atomic-discipline)
//
// A shared distance array written raw inside an OpenMP parallel region:
// two threads relaxing the same vertex race, and the losing write can
// resurrect a longer distance. Must go through support/Atomics.h.
#include <vector>

void relaxAll(std::vector<double> &Dist, const std::vector<int> &Frontier) {
#pragma omp parallel
  {
#pragma omp for
    for (int I = 0; I < static_cast<int>(Frontier.size()); ++I) {
      int V = Frontier[static_cast<unsigned>(I)];
      if (Dist[V] > 1.0)
        Dist[V] = 1.0; // raw racy write
    }
  }
}
