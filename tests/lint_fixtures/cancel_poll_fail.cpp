// lint-expect: fail(cancel-poll)
//
// A round loop that drains buckets without ever polling cancellation: a
// query on a continental road network would hold its state-pool lease far
// past the deadline.
struct BucketQueue {
  bool nextBucket();
  long currentKey();
};

long drain(BucketQueue &Queue) {
  long Sum = 0;
  while (Queue.nextBucket()) {
    Sum += Queue.currentKey();
  }
  return Sum;
}
