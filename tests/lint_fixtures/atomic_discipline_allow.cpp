// lint-expect: pass
//
// A raw write waived with a justified suppression: every thread writes the
// same value, so the race is benign (the idiom AStar.cpp uses for its
// budget latch).
#include <vector>

void latchBudget(std::vector<long> &BudgetKeys, long Key) {
#pragma omp parallel
  {
    // graphit-lint: allow(atomic-discipline): same-value write from every
    // thread; any interleaving stores the identical latch key.
    BudgetKeys[0] = Key;
  }
}
