// lint-expect: fail(suppression)
//
// allow() naming a rule that does not exist: almost always a typo that
// would otherwise silently waive nothing forever.
void noop();

void f() {
  // graphit-lint: allow(atomic-disciplin): typo'd rule name
  noop();
}
