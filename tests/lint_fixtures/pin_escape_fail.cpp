// lint-expect: fail(pin-escape)
//
// Two classic dangles: the shared_ptr returned by current() is a
// temporary, so the reference and the raw pointer both outlive the pin
// and read freed memory as soon as a compaction retires the snapshot.
#include <memory>

struct DeltaGraph {
  int numNodes() const;
};

struct Store {
  std::shared_ptr<const DeltaGraph> current() const;
};

int useAfterPin(const Store &S) {
  const DeltaGraph &G = *S.current();      // pin dies at end of decl
  const DeltaGraph *P = S.current().get(); // ditto
  return G.numNodes() + P->numNodes();
}
