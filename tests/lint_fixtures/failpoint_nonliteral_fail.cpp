// lint-expect: fail(failpoint-registration)
//
// A fail-point named by a runtime expression: the site set is no longer
// statically enumerable, so registration and test coverage cannot be
// checked. (support/ThreadSafety.h carries the one audited exception.)
#include "support/FailPoint.h"

void evaluateDynamic(const char *PointName) {
  GRAPHIT_FAIL_POINT(PointName);
}
