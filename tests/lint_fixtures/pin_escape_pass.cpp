// lint-expect: pass
//
// The compliant shape: name the Snapshot so the pin outlives every use;
// passing *S.current() straight into a call is also fine because the
// temporary lives to the end of the full expression.
#include <memory>

struct DeltaGraph {
  int numNodes() const;
};

struct Store {
  std::shared_ptr<const DeltaGraph> current() const;
};

int countNodes(const DeltaGraph &G);

int usePinned(const Store &S) {
  std::shared_ptr<const DeltaGraph> Snap = S.current();
  const DeltaGraph &G = *Snap;
  return G.numNodes() + countNodes(*S.current());
}
