// lint-expect: fail(failpoint-registration)
//
// A fail-point site whose name is not in failpoints::kAllPoints: the
// harness can never activate it, so the recovery path it guards is dead
// code under fault injection.
#include "support/FailPoint.h"

void publishWithGhostPoint() {
  GRAPHIT_FAIL_POINT("ghost.unregistered");
}
