//===- tests/dsl_interpreter_test.cpp - Interpreter end-to-end tests ------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The interpreter executes the shipped .gt programs against real graphs;
// results must match the hand-written library algorithms exactly, for
// both the facade (lazy) and eager execution strategies.
//
//===----------------------------------------------------------------------===//

#include "dsl/Driver.h"

#include "algorithms/AStar.h"
#include "algorithms/Dijkstra.h"
#include "algorithms/KCore.h"
#include "graph/Builder.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

using namespace graphit;
using namespace graphit::dsl;

namespace {

std::string appSource(const std::string &App) {
  return readFileOrDie(std::string(GRAPHIT_APPS_DIR) + "/" + App);
}

Graph rmatWeighted(int Scale, int Deg, uint64_t Seed, Weight Hi) {
  std::vector<Edge> Edges = rmatEdges(Scale, Deg, Seed);
  assignRandomWeights(Edges, 1, Hi, Seed ^ 0xD00D);
  return GraphBuilder().build(Count{1} << Scale, Edges);
}

Graph roadWithCoords(Count Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

InterpOptions optionsWith(const Schedule &S,
                          std::vector<std::string> Args) {
  InterpOptions O;
  O.Schedules[""] = S;
  O.Args = std::move(Args);
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// SSSP
//===----------------------------------------------------------------------===//

struct InterpCase {
  const char *Name;
  const char *Sched;
  bool ExpectEager;
};

class InterpSSSPTest : public ::testing::TestWithParam<InterpCase> {};

TEST_P(InterpSSSPTest, MatchesDijkstra) {
  Graph G = rmatWeighted(10, 8, 71, 200);
  Schedule S = Schedule::parse(GetParam().Sched);
  InterpResult R = runSource(appSource("sssp.gt"), G,
                             optionsWith(S, {"7"})); // argv[2] = source
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.UsedEagerEngine, GetParam().ExpectEager);
  ASSERT_TRUE(R.Vectors.count("dist"));
  EXPECT_EQ(R.Vectors.at("dist"), dijkstraSSSP(G, 7));
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, InterpSSSPTest,
    ::testing::Values(
        InterpCase{"EagerFusion", "eager_with_fusion,delta=8", true},
        InterpCase{"EagerNoFusion", "eager_no_fusion,delta=8", true},
        InterpCase{"LazyFacade", "lazy,delta=8", false}),
    [](const auto &Info) { return Info.param.Name; });

TEST(InterpSSSP, RoadGridEagerMatchesDijkstra) {
  Graph G = roadWithCoords(20, 41);
  InterpResult R = runSource(
      appSource("sssp.gt"), G,
      optionsWith(Schedule::parse("eager_with_fusion,delta=4096"), {"0"}));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Vectors.at("dist"), dijkstraSSSP(G, 0));
}

TEST(InterpSSSP, ReportsEngineStats) {
  Graph G = rmatWeighted(9, 6, 72, 50);
  InterpResult R = runSource(appSource("sssp.gt"), G,
                             optionsWith(Schedule(), {"0"}));
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.Stats.Rounds, 0);
}

//===----------------------------------------------------------------------===//
// wBFS
//===----------------------------------------------------------------------===//

TEST(InterpWBFS, LogWeightsDeltaOne) {
  std::vector<Edge> Edges = rmatEdges(9, 8, 73);
  assignRandomWeights(Edges, 1, 10, 5);
  Graph G = GraphBuilder().build(Count{1} << 9, Edges);
  InterpResult R = runSource(
      appSource("wbfs.gt"), G,
      optionsWith(Schedule::parse("eager_with_fusion,delta=1"), {"3"}));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Vectors.at("dist"), dijkstraSSSP(G, 3));
}

//===----------------------------------------------------------------------===//
// PPSP
//===----------------------------------------------------------------------===//

TEST(InterpPPSP, EarlyExitDistanceIsExact) {
  Graph G = rmatWeighted(10, 8, 74, 300);
  for (const char *Sched : {"eager_with_fusion,delta=16", "lazy,delta=16"}) {
    InterpResult R =
        runSource(appSource("ppsp.gt"), G,
                  optionsWith(Schedule::parse(Sched), {"2", "900"}));
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Vectors.at("dist")[900], dijkstraPPSP(G, 2, 900))
        << Sched;
  }
}

TEST(InterpPPSP, EarlyExitProcessesFewerVerticesThanFullRun) {
  Graph G = roadWithCoords(25, 42);
  Schedule S = Schedule::parse("eager_with_fusion,delta=4096");
  InterpResult Full = runSource(appSource("sssp.gt"), G,
                                optionsWith(S, {"0"}));
  InterpResult Early = runSource(appSource("ppsp.gt"), G,
                                 optionsWith(S, {"0", "26"}));
  ASSERT_TRUE(Full.Ok && Early.Ok);
  EXPECT_LT(Early.Stats.VerticesProcessed, Full.Stats.VerticesProcessed);
}

//===----------------------------------------------------------------------===//
// A*
//===----------------------------------------------------------------------===//

TEST(InterpAStar, FSpaceDistanceMatchesOracle) {
  Graph G = roadWithCoords(18, 43);
  VertexId Start = 5, End = static_cast<VertexId>(G.numNodes() - 3);
  // Heuristic vector h(v) toward End, as load_vertex_data input.
  std::vector<Priority> H(static_cast<size_t>(G.numNodes()));
  for (Count V = 0; V < G.numNodes(); ++V)
    H[V] = aStarHeuristic(G, static_cast<VertexId>(V), End);

  InterpOptions O = optionsWith(
      Schedule::parse("eager_with_fusion,delta=2048"),
      {std::to_string(Start), std::to_string(End), "hfile"});
  O.VertexData["hfile"] = H;
  InterpResult R = runSource(appSource("astar.gt"), G, O);
  ASSERT_TRUE(R.Ok) << R.Error;
  // dist(start, end) = f(end) since h(end) = 0.
  EXPECT_EQ(R.Vectors.at("f")[End], dijkstraPPSP(G, Start, End));
}

//===----------------------------------------------------------------------===//
// k-core
//===----------------------------------------------------------------------===//

TEST(InterpKCore, CorenessMatchesSerialOracle) {
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  Graph G = GraphBuilder(Options).build(Count{1} << 9,
                                        rmatEdges(9, 8, 75));
  InterpResult R = runSource(appSource("kcore.gt"), G,
                             optionsWith(Schedule::parse("lazy"), {}));
  ASSERT_TRUE(R.Ok) << R.Error;
  // The final priority vector holds the coreness.
  EXPECT_EQ(R.Vectors.at("deg"), kCoreSerial(G));
}

TEST(InterpKCore, TriangleWithTail) {
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  Graph G = GraphBuilder(Options).build(
      5, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  InterpResult R = runSource(appSource("kcore.gt"), G,
                             optionsWith(Schedule::parse("lazy"), {}));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Vectors.at("deg"),
            (std::vector<Priority>{2, 2, 2, 1, 1}));
}

//===----------------------------------------------------------------------===//
// Error paths
//===----------------------------------------------------------------------===//

TEST(Interp, ReportsFrontendErrors) {
  Graph G = GraphBuilder().build(2, {{0, 1, 1}});
  InterpResult R = runSource("func main() nope; end", G, InterpOptions());
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(Interp, ReportsMissingVertexData) {
  Graph G = roadWithCoords(5, 1);
  InterpOptions O = optionsWith(Schedule(), {"0", "1", "nosuchfile"});
  InterpResult R = runSource(appSource("astar.gt"), G, O);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("vertex data"), std::string::npos);
}
