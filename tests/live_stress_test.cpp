//===- tests/live_stress_test.cpp - Randomized differential stress -------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The randomized differential harness over the live-serving stack (see
// tests/stress_harness.h): seeded mixed update streams — edge batches,
// vertex insertion, malformed writes, duplicate-heavy batches — driven
// into the unsharded store, the sharded store, and a reference overlay,
// with bit-identity asserted across {ordering x schedule} points, repair
// vs recompute, and the QueryEngine's hot-source cache vs a cache-less
// engine. Deterministic from the printed seed (GRAPHIT_STRESS_SEED /
// GRAPHIT_STRESS_ROUNDS override; the CI stress job runs these binaries
// with a random seed and a larger budget).
//
//===----------------------------------------------------------------------===//

#include "stress_harness.h"

#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace graphit;
using namespace graphit::service;
using namespace graphit::stress;

namespace {

void runConfig(StressConfig C) {
  std::string Banner = applyStressEnv(C);
  std::printf("%s\n", Banner.c_str());
  std::string Failure = runLiveStress(C);
  ASSERT_TRUE(Failure.empty()) << Failure;
}

} // namespace

TEST(LiveStress, RoadIdentityLayouts) {
  StressConfig C;
  C.Seed = 0x51C4D5;
  runConfig(C);
}

TEST(LiveStress, RoadPermutedPlainStore) {
  StressConfig C;
  C.Seed = 0xBEEF01;
  C.PlainReorder = ReorderKind::Bfs;
  runConfig(C);
}

TEST(LiveStress, RoadPermutedShardedStore) {
  StressConfig C;
  C.Seed = 0xBEEF02;
  C.ShardedReorder = ReorderKind::Degree;
  C.NumShards = 7; // non-power-of-two shard count
  runConfig(C);
}

TEST(LiveStress, RoadBothPermutedRandomAdversarial) {
  StressConfig C;
  C.Seed = 0xBEEF03;
  C.PlainReorder = ReorderKind::Random;
  C.ShardedReorder = ReorderKind::Random;
  C.NumShards = 3;
  runConfig(C);
}

TEST(LiveStress, RoadBackgroundShardFolds) {
  // Per-shard folds on background threads: writer batches race in-flight
  // folds, so the copy-adopt-replay-swap path sees fuzzed traffic (and
  // vertex removal/growth land in the replay logs).
  StressConfig C;
  C.Seed = 0xBEEF04;
  C.ShardedBackground = true;
  runConfig(C);
}

TEST(LiveStress, DirectedRmat) {
  StressConfig C;
  C.Seed = 0xD17EC7;
  C.Symmetric = false;
  runConfig(C);
}

TEST(LiveStress, DirectedRmatPermutedSharded) {
  StressConfig C;
  C.Seed = 0xD17EC8;
  C.Symmetric = false;
  C.ShardedReorder = ReorderKind::Push;
  C.NumShards = 5;
  runConfig(C);
}

TEST(LiveStress, SingleShardDegeneratesToUnsharded) {
  StressConfig C;
  C.Seed = 0x0E0F11;
  C.NumShards = 1;
  runConfig(C);
}

//===----------------------------------------------------------------------===//
// Hot-source cache differential: an engine repairing hot states across
// versions must answer every query bit-identically to a cache-less
// engine over the same store history.
//===----------------------------------------------------------------------===//

TEST(LiveStress, HotStateRepairMatchesRecomputeServing) {
  StressConfig C;
  C.Seed = 0x407CAFE;
  std::string Banner = applyStressEnv(C);
  std::printf("%s\n", Banner.c_str());

  RoadNetwork Net = roadGrid(26, 26, 4242);
  BuildOptions BO;
  BO.Symmetrize = true;
  Graph Base =
      GraphBuilder(BO).build(Net.NumNodes, Net.Edges, std::move(Net.Coords));

  SnapshotStore HotStore(Base);
  SnapshotStore ColdStore(Base);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));

  QueryEngine::Options HotOpts;
  HotOpts.NumWorkers = 2;
  HotOpts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  HotOpts.HotSourceCapacity = 3;
  QueryEngine HotEngine(HotStore, HotOpts);

  QueryEngine::Options ColdOpts = HotOpts;
  ColdOpts.HotSourceCapacity = 0;
  QueryEngine ColdEngine(ColdStore, ColdOpts);

  SplitMix64 Rng(C.Seed);
  // Repeat sources (the serving common case) plus a rotating cold one.
  const VertexId Depots[2] = {0, 137};

  for (int Round = 0; Round < C.Rounds; ++Round) {
    std::vector<Query> Batch;
    for (VertexId Depot : Depots) {
      Query Q;
      Q.Kind = QueryKind::SSSP;
      Q.Source = Depot;
      Q.CollectReached = true;
      Batch.push_back(Q);
      Query P;
      P.Kind = QueryKind::PPSP;
      P.Source = Depot;
      P.Target = static_cast<VertexId>(Rng.nextInt(0, Ref.numNodes()));
      Batch.push_back(P);
    }
    Query Cold;
    Cold.Kind = QueryKind::SSSP;
    Cold.Source = static_cast<VertexId>(Rng.nextInt(0, Ref.numNodes()));
    Cold.CollectReached = true;
    Batch.push_back(Cold);

    std::vector<QueryResult> Hot = HotEngine.runBatch(Batch);
    std::vector<QueryResult> Want = ColdEngine.runBatch(Batch);
    for (size_t I = 0; I < Batch.size(); ++I) {
      ASSERT_FALSE(Hot[I].Failed) << "round " << Round << " query " << I;
      ASSERT_EQ(Hot[I].Dist, Want[I].Dist)
          << "round " << Round << " query " << I << " (seed 0x" << std::hex
          << C.Seed << ")";
      ASSERT_EQ(Hot[I].Reached, Want[I].Reached)
          << "round " << Round << " query " << I << " (seed 0x" << std::hex
          << C.Seed << ")";
      // Touched counts are comparable for SSSP only (a hot-served PPSP
      // reports the full solution's reach, a cold one its early exit).
      if (Batch[I].Kind == QueryKind::SSSP) {
        ASSERT_EQ(Hot[I].Touched, Want[I].Touched)
            << "round " << Round << " query " << I;
      }
    }

    std::vector<EdgeUpdate> Updates = randomBatch(Ref, 32, Rng);
    Ref.apply(Updates);
    HotEngine.applyUpdates(Updates);
    ColdEngine.applyUpdates(Updates);
  }

  // The depots must actually have been served hot and repaired, or this
  // test silently degenerated to recompute-vs-recompute.
  EXPECT_GT(HotEngine.hotHits(), 0u);
  EXPECT_GT(HotEngine.hotRepairs(), 0u);
  EXPECT_LE(HotEngine.hotStatesCached(), 3u);
}

TEST(LiveStress, HotStateAStarOnIncreaseOnlyStream) {
  // Increase-only updates (deletes + weight doublings) keep the
  // coordinate heuristic admissible, so A* answers must equal PPSP and
  // both must match the hot-served distances across versions.
  RoadNetwork Net = roadGrid(20, 20, 99);
  BuildOptions BO;
  BO.Symmetrize = true;
  Graph Base =
      GraphBuilder(BO).build(Net.NumNodes, Net.Edges, std::move(Net.Coords));
  SnapshotStore Store(Base);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  Opts.HotSourceCapacity = 2;
  QueryEngine Engine(Store, Opts);

  SplitMix64 Rng(0xA57A);
  for (int Round = 0; Round < 5; ++Round) {
    const VertexId Depot = 7;
    VertexId Target = static_cast<VertexId>(Rng.nextInt(0, Base.numNodes()));
    Query A;
    A.Kind = QueryKind::AStar;
    A.Source = Depot;
    A.Target = Target;
    Query P = A;
    P.Kind = QueryKind::PPSP;
    Query S = A;
    S.Kind = QueryKind::SSSP;
    std::vector<QueryResult> R = Engine.runBatch({S, A, P});
    ASSERT_EQ(R[0].Dist, R[2].Dist) << "round " << Round;
    ASSERT_EQ(R[1].Dist, R[2].Dist) << "round " << Round;

    // Increase-only batch against the current snapshot.
    std::vector<EdgeUpdate> Batch;
    SnapshotStore::Snapshot Snap = Store.current();
    for (int I = 0; I < 16; ++I) {
      VertexId U = static_cast<VertexId>(Rng.nextInt(0, Base.numNodes()));
      auto Range = Snap->outNeighbors(U);
      if (Range.size() == 0)
        continue;
      WNode E = *Range.begin();
      if (I % 4 == 0)
        Batch.push_back(EdgeUpdate{U, E.V, 0, UpdateKind::Delete});
      else
        Batch.push_back(EdgeUpdate{
            U, E.V, static_cast<Weight>(E.W * 2), UpdateKind::Upsert});
    }
    Engine.applyUpdates(Batch);
  }
  EXPECT_GT(Engine.hotHits(), 0u);
}

//===----------------------------------------------------------------------===//
// Fault-injection stress: the same differential harness with every
// registered fail point armed during the store-mutation phase. The
// reference DeltaGraph sees no faults, so passing rounds prove the stores
// recover *bit-identically* from injected publish/lock/compaction faults.
// These configs only bite in -DGRAPHIT_FAILPOINTS=ON builds (the CI
// `faults` job); elsewhere they skip rather than silently pass.
//===----------------------------------------------------------------------===//

TEST(LiveStressFaults, RoadConvergesThroughInjectedFaults) {
  if (!failpoints::kFailPointsEnabled)
    GTEST_SKIP() << "built without GRAPHIT_FAILPOINTS";
  StressConfig C;
  C.Seed = 0xFA17A;
  C.Rounds = 30; // >= 30 seeded fault rounds per acceptance bar
  C.InjectFaults = true;
  C.FaultProbability = 0.08;
  runConfig(C);
}

TEST(LiveStressFaults, DirectedRmatPermutedConvergesThroughInjectedFaults) {
  if (!failpoints::kFailPointsEnabled)
    GTEST_SKIP() << "built without GRAPHIT_FAILPOINTS";
  StressConfig C;
  C.Seed = 0xFA17B;
  C.Rounds = 30;
  C.Symmetric = false;
  C.ShardedReorder = ReorderKind::Degree;
  C.NumShards = 5;
  C.InjectFaults = true;
  C.FaultProbability = 0.08;
  runConfig(C);
}

TEST(LiveStressFaults, BackgroundShardFoldsConvergeThroughReplayFaults) {
  if (!failpoints::kFailPointsEnabled)
    GTEST_SKIP() << "built without GRAPHIT_FAILPOINTS";
  // Background per-shard folds under the full armed fail-point set: the
  // `compaction.replay` point only sees traffic when batches race an
  // in-flight fold, which this config makes routine. A failed fold may
  // leave a shard degraded — the differential checks prove serving stays
  // bit-identical regardless.
  StressConfig C;
  C.Seed = 0xFA17D;
  C.Rounds = 30;
  C.ShardedBackground = true;
  C.InjectFaults = true;
  C.FaultProbability = 0.08;
  runConfig(C);
}

TEST(LiveStressFaults, EverySubmitResolvesUnderFaultsAndDeadlines) {
  if (!failpoints::kFailPointsEnabled)
    GTEST_SKIP() << "built without GRAPHIT_FAILPOINTS";
  // A serving engine under injected store faults, tight deadlines, and
  // admission pressure: the one hard promise is that every submitted
  // ticket resolves with a typed status — no query may block forever and
  // no fault may escape as a crash.
  RoadNetwork Net = roadGrid(22, 22, 7);
  BuildOptions BO;
  BO.Symmetrize = true;
  Graph Base =
      GraphBuilder(BO).build(Net.NumNodes, Net.Edges, std::move(Net.Coords));
  SnapshotStore Store(Base);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));

  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  Opts.AdmissionHighWater = 8;
  Opts.AdmissionSoftWater = 4;
  QueryEngine Engine(Store, Opts);

  SplitMix64 Rng(0xFA17C);
  uint64_t Outcomes[4] = {0, 0, 0, 0};
  for (int Round = 0; Round < 30; ++Round) {
    failpoints::reseed(0xFA17C + static_cast<uint64_t>(Round));
    for (const char *P : failpoints::kAllPoints)
      failpoints::activate(P, 0.1);

    std::vector<uint64_t> Tickets;
    for (int I = 0; I < 12; ++I) {
      Query Q;
      Q.Kind = I % 3 == 0 ? QueryKind::SSSP : QueryKind::PPSP;
      Q.Source = static_cast<VertexId>(Rng.nextInt(0, Ref.numNodes()));
      Q.Target = static_cast<VertexId>(Rng.nextInt(0, Ref.numNodes()));
      Q.Importance = static_cast<int>(Rng.nextInt(0, 3));
      if (I % 4 == 1)
        Q.DeadlineMicros = 50; // aggressive: often expires queued
      Tickets.push_back(Engine.submit(Q));
    }
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 24, Rng);
    Ref.apply(Batch);
    SnapshotStore::ApplyResult AR = Engine.applyUpdates(Batch);
    ASSERT_NE(AR.Snap, nullptr);
    if (Round % 5 == 4)
      Engine.addVertices(1);

    for (uint64_t T : Tickets) {
      std::optional<QueryResult> R = Engine.tryCollect(T);
      ASSERT_TRUE(R.has_value());
      ++Outcomes[static_cast<int>(R->Status)];
      // Double collection must be a typed nullopt, not a hang or abort.
      ASSERT_FALSE(Engine.tryCollect(T).has_value());
    }
    failpoints::reset();
  }
  // Ok results must exist (the engine still serves under faults); the
  // other outcomes depend on timing and are merely allowed.
  EXPECT_GT(Outcomes[0], 0u);
  std::printf("outcomes: ok=%llu deadline=%llu shed=%llu failed=%llu "
              "(sheds=%llu degraded=%llu)\n",
              static_cast<unsigned long long>(Outcomes[0]),
              static_cast<unsigned long long>(Outcomes[1]),
              static_cast<unsigned long long>(Outcomes[2]),
              static_cast<unsigned long long>(Outcomes[3]),
              static_cast<unsigned long long>(Engine.queriesShed()),
              static_cast<unsigned long long>(Engine.queriesDegraded()));
}
