//===- tests/dsl_frontend_test.cpp - Lexer/parser/sema tests --------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "dsl/Driver.h"
#include "dsl/Lexer.h"
#include "dsl/Parser.h"
#include "dsl/Sema.h"

#include <gtest/gtest.h>

using namespace graphit;
using namespace graphit::dsl;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokenizesFig3Line) {
  std::string Error;
  std::vector<Token> Toks =
      lex("pq.updatePriorityMin(dst, dist[dst], new_dist);", Error);
  EXPECT_TRUE(Error.empty());
  ASSERT_GE(Toks.size(), 12u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Toks[0].Text, "pq");
  EXPECT_EQ(Toks[1].Kind, TokenKind::Dot);
  EXPECT_EQ(Toks[2].Text, "updatePriorityMin");
  EXPECT_EQ(Toks[3].Kind, TokenKind::LParen);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  std::string Error;
  std::vector<Token> Toks = lex("func while end vertexset myname", Error);
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwFunc);
  EXPECT_EQ(Toks[1].Kind, TokenKind::KwWhile);
  EXPECT_EQ(Toks[2].Kind, TokenKind::KwEnd);
  EXPECT_EQ(Toks[3].Kind, TokenKind::KwVertexSet);
  EXPECT_EQ(Toks[4].Kind, TokenKind::Identifier);
}

TEST(Lexer, NumbersAndOperators) {
  std::string Error;
  std::vector<Token> Toks = lex("x = 42 + 3.5 <= 7", Error);
  EXPECT_EQ(Toks[2].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[2].IntValue, 42);
  EXPECT_EQ(Toks[4].Kind, TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(Toks[4].FloatValue, 3.5);
  EXPECT_EQ(Toks[5].Kind, TokenKind::LessEq);
}

TEST(Lexer, LabelsAndStrings) {
  std::string Error;
  std::vector<Token> Toks = lex("#s1# \"lower_first\"", Error);
  EXPECT_EQ(Toks[0].Kind, TokenKind::Label);
  EXPECT_EQ(Toks[0].Text, "s1");
  EXPECT_EQ(Toks[1].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Toks[1].Text, "lower_first");
}

TEST(Lexer, CommentsAreSkipped) {
  std::string Error;
  std::vector<Token> Toks = lex("x % a comment\ny // another\nz", Error);
  ASSERT_EQ(Toks.size(), 4u); // x y z eof
  EXPECT_EQ(Toks[1].Text, "y");
  EXPECT_EQ(Toks[2].Text, "z");
}

TEST(Lexer, TracksLineNumbers) {
  std::string Error;
  std::vector<Token> Toks = lex("a\nb\n  c", Error);
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[2].Loc.Line, 3);
  EXPECT_EQ(Toks[2].Loc.Column, 3);
}

TEST(Lexer, ReportsUnterminatedString) {
  std::string Error;
  lex("\"oops", Error);
  EXPECT_FALSE(Error.empty());
}

TEST(Lexer, ReportsBadCharacter) {
  std::string Error;
  lex("a @ b", Error);
  EXPECT_NE(Error.find("unexpected character"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, ParsesFig3SSSP) {
  ParseResult R = parseProgram(readFileOrDie(
      std::string(GRAPHIT_APPS_DIR) + "/sssp.gt"));
  ASSERT_TRUE(R.ok()) << R.Error;
  const Program &P = *R.Prog;
  EXPECT_EQ(P.Elements.size(), 2u);
  EXPECT_EQ(P.Consts.size(), 3u);
  ASSERT_NE(P.findFunc("updateEdge"), nullptr);
  ASSERT_NE(P.findFunc("main"), nullptr);
  EXPECT_EQ(P.findFunc("updateEdge")->Params.size(), 3u);
}

TEST(Parser, ParsesAllShippedApps) {
  for (const char *App : {"sssp.gt", "wbfs.gt", "ppsp.gt", "astar.gt",
                          "kcore.gt", "setcover.gt"}) {
    ParseResult R = parseProgram(
        readFileOrDie(std::string(GRAPHIT_APPS_DIR) + "/" + App));
    EXPECT_TRUE(R.ok()) << App << ": " << R.Error;
  }
}

TEST(Parser, LabelAttachesToStatement) {
  ParseResult R = parseProgram(readFileOrDie(
      std::string(GRAPHIT_APPS_DIR) + "/sssp.gt"));
  ASSERT_TRUE(R.ok());
  const FuncDecl *Main = R.Prog->findFunc("main");
  const auto *Loop = dyn_cast<WhileStmt>(Main->Body.back().get());
  ASSERT_NE(Loop, nullptr);
  bool FoundLabel = false;
  for (const StmtPtr &S : Loop->Body)
    if (S->Label == "s1")
      FoundLabel = true;
  EXPECT_TRUE(FoundLabel);
}

TEST(Parser, PrecedenceAndAssociativity) {
  ParseResult R = parseProgram(
      "func main() var x : int = 1 + 2 * 3; end");
  ASSERT_TRUE(R.ok()) << R.Error;
  const auto *VD =
      cast<VarDeclStmt>(R.Prog->findFunc("main")->Body[0].get());
  const auto *Add = dyn_cast<BinaryExpr>(VD->Init.get());
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->Op, BinaryExpr::OpKind::Add);
  EXPECT_TRUE(isa<BinaryExpr>(Add->RHS.get())); // 2*3 grouped right
}

TEST(Parser, MethodChaining) {
  ParseResult R = parseProgram(
      "const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);"
      " func f(a : Vertex, b : Vertex, w : int) end "
      "func main() edges.from(edges).applyUpdatePriority(f); end");
  ASSERT_TRUE(R.ok()) << R.Error;
  const auto *ES =
      cast<ExprStmt>(R.Prog->findFunc("main")->Body[0].get());
  const auto *Apply = dyn_cast<MethodCallExpr>(ES->E.get());
  ASSERT_NE(Apply, nullptr);
  EXPECT_EQ(Apply->Method, "applyUpdatePriority");
  const auto *From = dyn_cast<MethodCallExpr>(Apply->Base.get());
  ASSERT_NE(From, nullptr);
  EXPECT_EQ(From->Method, "from");
}

TEST(Parser, ReportsMissingSemicolon) {
  ParseResult R = parseProgram("func main() var x : int = 3 end");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("';'"), std::string::npos);
}

TEST(Parser, ReportsBadTopLevel) {
  ParseResult R = parseProgram("banana");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, ReportsBadAssignmentTarget) {
  ParseResult R = parseProgram("func main() 3 = 4; end");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("assignment target"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(Sema, AcceptsAllShippedApps) {
  for (const char *App : {"sssp.gt", "wbfs.gt", "ppsp.gt", "astar.gt",
                          "kcore.gt", "setcover.gt"}) {
    FrontendBundle B = runFrontend(
        readFileOrDie(std::string(GRAPHIT_APPS_DIR) + "/" + App));
    EXPECT_TRUE(B.ok()) << App << ": " << B.Error;
  }
}

TEST(Sema, AnnotatesTypes) {
  FrontendBundle B = runFrontend(readFileOrDie(
      std::string(GRAPHIT_APPS_DIR) + "/sssp.gt"));
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(B.Sema.globalType("edges").Kind, TypeKind::EdgeSet);
  EXPECT_EQ(B.Sema.globalType("dist").Kind, TypeKind::Vector);
  EXPECT_EQ(B.Sema.globalType("pq").Kind, TypeKind::PriorityQueue);
  EXPECT_TRUE(B.Sema.globalType("edges").isWeightedEdgeSet());
}

TEST(Sema, RejectsUndeclaredIdentifier) {
  FrontendBundle B = runFrontend("func main() var x : int = nope; end");
  EXPECT_FALSE(B.ok());
  EXPECT_NE(B.Error.find("undeclared identifier"), std::string::npos);
}

TEST(Sema, RejectsDuplicateGlobals) {
  FrontendBundle B = runFrontend(
      "const a : int = 1; const a : int = 2; func main() end");
  EXPECT_FALSE(B.ok());
  EXPECT_NE(B.Error.find("duplicate"), std::string::npos);
}

TEST(Sema, RejectsNonBoolWhileCondition) {
  FrontendBundle B =
      runFrontend("func main() while 3 + 4 var y : int = 0; end end");
  EXPECT_FALSE(B.ok());
  EXPECT_NE(B.Error.find("bool"), std::string::npos);
}

TEST(Sema, RejectsUnknownPQMethod) {
  FrontendBundle B = runFrontend(
      "const pq : priority_queue{Vertex}(int);"
      "func main() pq.explode(); end");
  EXPECT_FALSE(B.ok());
  EXPECT_NE(B.Error.find("unknown priority_queue method"),
            std::string::npos);
}

TEST(Sema, RejectsWrongArityUpdate) {
  FrontendBundle B = runFrontend(
      "const pq : priority_queue{Vertex}(int);"
      "func f(a : Vertex, b : Vertex, w : int) "
      "pq.updatePriorityMin(b); end func main() end");
  EXPECT_FALSE(B.ok());
  EXPECT_NE(B.Error.find("wrong number of arguments"), std::string::npos);
}

TEST(Sema, RejectsApplyOfNonFunction) {
  FrontendBundle B = runFrontend(
      "const edges : edgeset{Edge}(Vertex, Vertex, int) = load(argv[1]);"
      "const x : int = 3;"
      "func main() edges.applyUpdatePriority(x); end");
  EXPECT_FALSE(B.ok());
  EXPECT_NE(B.Error.find("requires a function"), std::string::npos);
}
