//===- tests/reorder_test.cpp - Layout/permutation property tests ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The reordering contract: a vertex permutation is *invisible* in
// original-id space. Every mapping is a bijection, `Graph::permuted`
// preserves the adjacency structure exactly, and every algorithm —
// SSSP/wBFS/PPSP/A* (eager and lazy) and k-core — produces identical
// original-id-space results on identity, degree, BFS, push, and random
// layouts of directed and symmetric graphs. Set cover's greedy choices are
// tie-break-dependent (the cover is not a unique mathematical object), so
// it asserts validity of the mapped-back cover instead of equality.
//
//===----------------------------------------------------------------------===//

#include "graph/Reorder.h"

#include "algorithms/AStar.h"
#include "algorithms/KCore.h"
#include "algorithms/PPSP.h"
#include "algorithms/SSSP.h"
#include "algorithms/SetCover.h"
#include "algorithms/WBFS.h"
#include "graph/Builder.h"
#include "graph/Datasets.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <map>

using namespace graphit;

namespace {

Graph directedGraph() {
  std::vector<Edge> Edges = rmatEdges(10, 8, 77);
  assignRandomWeights(Edges, 1, 64, 5);
  return GraphBuilder().build(Count{1} << 10, Edges);
}

Graph symmetricRoad() {
  RoadNetwork Net = roadGrid(40, 40, 99);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, std::move(Net.Edges),
                                     std::move(Net.Coords));
}

Graph symmetricSocial() {
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  return GraphBuilder(Options).build(Count{1} << 10, rmatEdges(10, 10, 31));
}

std::vector<ReorderKind> testedKinds() {
  return {ReorderKind::None, ReorderKind::Degree, ReorderKind::Bfs,
          ReorderKind::Push, ReorderKind::Random};
}

/// Canonical edge map src -> dst -> weight in original-id space.
std::map<std::pair<VertexId, VertexId>, Weight>
edgeMap(const Graph &G, const VertexMapping &Map) {
  std::map<std::pair<VertexId, VertexId>, Weight> Edges;
  for (Count V = 0; V < G.numNodes(); ++V) {
    VertexId Ext = Map.toExternal(static_cast<VertexId>(V));
    for (WNode E : G.outNeighbors(static_cast<VertexId>(V)))
      Edges[{Ext, Map.toExternal(E.V)}] = E.W;
  }
  return Edges;
}

} // namespace

TEST(VertexMappingTest, IdentityRoundTrips) {
  VertexMapping M(100);
  EXPECT_TRUE(M.isIdentity());
  EXPECT_EQ(M.size(), 100);
  EXPECT_EQ(M.toInternal(42u), 42u);
  EXPECT_EQ(M.toExternal(7u), 7u);
}

TEST(VertexMappingTest, PermutationRoundTrips) {
  VertexMapping M =
      VertexMapping::fromInternalToExternal({3u, 1u, 0u, 2u});
  EXPECT_FALSE(M.isIdentity());
  for (VertexId V = 0; V < 4; ++V) {
    EXPECT_EQ(M.toInternal(M.toExternal(V)), V);
    EXPECT_EQ(M.toExternal(M.toInternal(V)), V);
  }
  std::vector<VertexId> Path{0u, 2u, 3u};
  std::vector<VertexId> Expected{2u, 3u, 0u};
  M.mapToInternal(Path);
  EXPECT_EQ(Path, Expected);
  M.mapToExternal(Path);
  std::vector<VertexId> Back{0u, 2u, 3u};
  EXPECT_EQ(Path, Back);
}

TEST(VertexMappingTest, EveryOrderingIsABijection) {
  for (const Graph &G :
       {directedGraph(), symmetricRoad(), symmetricSocial()}) {
    for (ReorderKind Kind : testedKinds()) {
      VertexMapping M = makeOrdering(G, Kind);
      ASSERT_EQ(M.size(), G.numNodes());
      // fromInternalToExternal aborts on non-permutations; spot-check the
      // round trip across the whole universe anyway.
      for (Count V = 0; V < G.numNodes(); ++V)
        ASSERT_EQ(M.toExternal(M.toInternal(static_cast<VertexId>(V))),
                  static_cast<VertexId>(V));
    }
  }
}

TEST(PermutedGraphTest, PreservesStructure) {
  for (const Graph &G :
       {directedGraph(), symmetricRoad(), symmetricSocial()}) {
    VertexMapping Identity(G.numNodes());
    std::map<std::pair<VertexId, VertexId>, Weight> Reference =
        edgeMap(G, Identity);
    for (ReorderKind Kind : testedKinds()) {
      VertexMapping M = makeOrdering(G, Kind);
      Graph P = G.permuted(M);
      ASSERT_EQ(P.numNodes(), G.numNodes());
      ASSERT_EQ(P.numEdges(), G.numEdges());
      ASSERT_EQ(P.isSymmetric(), G.isSymmetric());
      ASSERT_EQ(P.isWeighted(), G.isWeighted());
      ASSERT_EQ(P.hasInEdges(), G.hasInEdges());
      ASSERT_EQ(P.hasCoordinates(), G.hasCoordinates());
      ASSERT_EQ(edgeMap(P, M), Reference);
      // Degrees carry over per vertex, both directions.
      for (Count V = 0; V < G.numNodes(); ++V) {
        VertexId Int = M.toInternal(static_cast<VertexId>(V));
        ASSERT_EQ(P.outDegree(Int),
                  G.outDegree(static_cast<VertexId>(V)));
        if (G.hasInEdges()) {
          ASSERT_EQ(P.inDegree(Int), G.inDegree(static_cast<VertexId>(V)));
        }
      }
      if (G.hasCoordinates()) {
        for (Count V = 0; V < G.numNodes(); ++V) {
          VertexId Int = M.toInternal(static_cast<VertexId>(V));
          ASSERT_EQ(P.coordinates().X[Int], G.coordinates().X[V]);
          ASSERT_EQ(P.coordinates().Y[Int], G.coordinates().Y[V]);
        }
      }
    }
  }
}

TEST(PermutedGraphTest, DegreeOrderingIsDegreeDescending) {
  Graph G = directedGraph();
  VertexMapping M = makeOrdering(G, ReorderKind::Degree);
  Graph P = G.permuted(M);
  for (Count V = 0; V + 1 < P.numNodes(); ++V)
    ASSERT_GE(P.outDegree(static_cast<VertexId>(V)),
              P.outDegree(static_cast<VertexId>(V + 1)));
}

namespace {

/// Runs Fn on the graph under every ordering and checks the returned
/// per-vertex vector is identical in original-id space.
template <typename RunFn>
void expectLayoutInvariant(const Graph &G, VertexId Source, RunFn &&Run) {
  VertexMapping Identity(G.numNodes());
  std::vector<Priority> Reference = Run(G, Identity, Source);
  for (ReorderKind Kind : testedKinds()) {
    if (Kind == ReorderKind::None)
      continue;
    VertexMapping M;
    Graph P = reorderGraph(G, Kind, &M);
    std::vector<Priority> Got = Run(P, M, Source);
    ASSERT_EQ(Got.size(), Reference.size());
    for (Count V = 0; V < G.numNodes(); ++V)
      ASSERT_EQ(Got[M.toInternal(static_cast<VertexId>(V))], Reference[V])
          << "ordering " << reorderKindName(Kind) << " vertex " << V;
  }
}

Schedule eagerSchedule() {
  Schedule S;
  S.configApplyPriorityUpdateDelta(16);
  return S;
}

Schedule lazySchedule() {
  Schedule S;
  S.configApplyPriorityUpdate("lazy").configApplyPriorityUpdateDelta(16);
  return S;
}

} // namespace

TEST(LayoutInvarianceTest, SSSPEagerAndLazy) {
  for (const Graph &G : {directedGraph(), symmetricRoad()}) {
    for (const Schedule &S : {eagerSchedule(), lazySchedule()}) {
      expectLayoutInvariant(
          G, 1, [&](const Graph &GG, const VertexMapping &M, VertexId Src) {
            SSSPResult R = deltaSteppingSSSP(GG, M.toInternal(Src), S);
            return R.Dist;
          });
    }
  }
}

TEST(LayoutInvarianceTest, WeightedBFS) {
  Graph G = directedGraph();
  expectLayoutInvariant(
      G, 3, [&](const Graph &GG, const VertexMapping &M, VertexId Src) {
        return weightedBFS(GG, M.toInternal(Src), eagerSchedule()).Dist;
      });
}

TEST(LayoutInvarianceTest, PPSPAndAStar) {
  Graph G = symmetricRoad();
  const VertexId Source = 5, Target = static_cast<VertexId>(
                                          G.numNodes() - 3);
  Schedule Eager = eagerSchedule();
  Schedule Lazy = lazySchedule();

  Priority RefPPSP =
      pointToPointShortestPath(G, Source, Target, Eager).Dist;
  Priority RefAStar = aStarSearch(G, Source, Target, Eager).Dist;
  ASSERT_EQ(RefPPSP, RefAStar);

  for (ReorderKind Kind : testedKinds()) {
    VertexMapping M;
    Graph P = reorderGraph(G, Kind, &M);
    VertexId S = M.toInternal(Source), T = M.toInternal(Target);
    EXPECT_EQ(pointToPointShortestPath(P, S, T, Eager).Dist, RefPPSP)
        << reorderKindName(Kind);
    EXPECT_EQ(pointToPointShortestPath(P, S, T, Lazy).Dist, RefPPSP)
        << reorderKindName(Kind);
    EXPECT_EQ(aStarSearch(P, S, T, Eager).Dist, RefAStar)
        << reorderKindName(Kind);
  }
}

TEST(LayoutInvarianceTest, KCoreEagerAndLazy) {
  Graph G = symmetricSocial();
  for (const char *Spec : {"lazy", "eager_no_fusion"}) {
    Schedule S = Schedule::parse(Spec);
    expectLayoutInvariant(
        G, 0, [&](const Graph &GG, const VertexMapping &, VertexId) {
          return kCoreDecomposition(GG, S).Coreness;
        });
  }
}

TEST(LayoutInvarianceTest, SetCoverStaysValid) {
  // Greedy set cover's chosen sets depend on id tie-breaking, so the cover
  // itself is not layout-invariant — but the mapped-back cover must still
  // be a valid cover of the original graph, for every layout and both the
  // lazy and eager engines.
  Graph G = symmetricSocial();
  for (const char *Spec : {"lazy", "eager_no_fusion"}) {
    Schedule S = Schedule::parse(Spec);
    for (ReorderKind Kind : testedKinds()) {
      VertexMapping M;
      Graph P = reorderGraph(G, Kind, &M);
      SetCoverResult R = approxSetCover(P, S);
      EXPECT_EQ(R.CoveredElements, G.numNodes());
      std::vector<VertexId> Chosen = R.ChosenSets;
      M.mapToExternal(Chosen);
      EXPECT_TRUE(isValidCover(G, Chosen)) << reorderKindName(Kind);
    }
  }
}

TEST(ReorderOnLoadTest, DatasetAndBinaryRoundTrip) {
  // Reorder-on-load through the Datasets front door matches reordering by
  // hand.
  VertexMapping M;
  Graph R = makeDataset(DatasetId::MA, DatasetVariant::Directed,
                        ReorderKind::Bfs, &M, /*ScaleFactor=*/0.05);
  Graph Plain =
      makeDataset(DatasetId::MA, DatasetVariant::Directed, 0.05);
  ASSERT_EQ(R.numNodes(), Plain.numNodes());
  ASSERT_EQ(R.numEdges(), Plain.numEdges());
  ASSERT_EQ(edgeMap(R, M), edgeMap(Plain, VertexMapping(Plain.numNodes())));
}
