//===- tests/setcover_test.cpp - Approximate set cover tests --------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/SetCover.h"

#include "graph/Builder.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace graphit;

namespace {

Graph symmetric(std::vector<Edge> Edges, Count N) {
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  return GraphBuilder(Options).build(N, std::move(Edges));
}

} // namespace

TEST(SetCoverSerial, StarNeedsOnlyTheCenter) {
  Graph G = symmetric(starEdges(10), 10);
  SetCoverResult R = setCoverSerial(G);
  ASSERT_EQ(R.ChosenSets.size(), 1u);
  EXPECT_EQ(R.ChosenSets[0], 0u);
  EXPECT_EQ(R.CoveredElements, 10);
}

TEST(SetCoverSerial, IsolatedVerticesChooseThemselves) {
  Graph G = symmetric({{0, 1, 1}}, 4);
  SetCoverResult R = setCoverSerial(G);
  EXPECT_TRUE(isValidCover(G, R.ChosenSets));
  EXPECT_EQ(R.CoveredElements, 4);
  // 2 and 3 are isolated, so they must be in the cover.
  EXPECT_NE(std::find(R.ChosenSets.begin(), R.ChosenSets.end(), 2u),
            R.ChosenSets.end());
  EXPECT_NE(std::find(R.ChosenSets.begin(), R.ChosenSets.end(), 3u),
            R.ChosenSets.end());
}

TEST(SetCover, CoversStar) {
  Graph G = symmetric(starEdges(16), 16);
  SetCoverResult R = approxSetCover(G, Schedule());
  EXPECT_TRUE(isValidCover(G, R.ChosenSets));
  EXPECT_EQ(R.CoveredElements, 16);
  EXPECT_LE(R.ChosenSets.size(), 2u);
}

TEST(SetCover, CoversPath) {
  Graph G = symmetric(pathEdges(30), 30);
  SetCoverResult R = approxSetCover(G, Schedule());
  EXPECT_TRUE(isValidCover(G, R.ChosenSets));
  // Optimal dominating set of a 30-path is 10; greedy stays close.
  EXPECT_LE(R.ChosenSets.size(), 16u);
}

TEST(SetCover, CoversRmatWithinGreedyFactor) {
  Graph G = symmetric(rmatEdges(11, 8, 64), Count{1} << 11);
  SetCoverResult Par = approxSetCover(G, Schedule());
  SetCoverResult Ser = setCoverSerial(G);
  EXPECT_TRUE(isValidCover(G, Par.ChosenSets));
  EXPECT_EQ(Par.CoveredElements, G.numNodes());
  // Both are ~H_n-approximations; the parallel one may pay a (1+O(eps))
  // factor plus tie-breaking noise.
  EXPECT_LE(Par.ChosenSets.size(),
            Ser.ChosenSets.size() * 14 / 10 + 5);
}

TEST(SetCover, CoversRoadGrid) {
  RoadNetwork Net = roadGrid(25, 25, 31);
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
  SetCoverResult R = approxSetCover(G, Schedule());
  EXPECT_TRUE(isValidCover(G, R.ChosenSets));
  SetCoverResult Ser = setCoverSerial(G);
  EXPECT_LE(R.ChosenSets.size(), Ser.ChosenSets.size() * 14 / 10 + 5);
}

TEST(SetCover, DeterministicForFixedSeed) {
  Graph G = symmetric(rmatEdges(9, 6, 65), Count{1} << 9);
  SetCoverResult A = approxSetCover(G, Schedule(), 0.01, 7);
  SetCoverResult B = approxSetCover(G, Schedule(), 0.01, 7);
  std::sort(A.ChosenSets.begin(), A.ChosenSets.end());
  std::sort(B.ChosenSets.begin(), B.ChosenSets.end());
  EXPECT_EQ(A.ChosenSets, B.ChosenSets);
}

TEST(SetCover, ChosenSetsAreUnique) {
  Graph G = symmetric(rmatEdges(10, 6, 66), Count{1} << 10);
  SetCoverResult R = approxSetCover(G, Schedule());
  std::vector<VertexId> Sorted = R.ChosenSets;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(std::adjacent_find(Sorted.begin(), Sorted.end()),
            Sorted.end());
}

TEST(SetCover, LargerEpsilonStillCovers) {
  Graph G = symmetric(rmatEdges(10, 8, 67), Count{1} << 10);
  SetCoverResult R = approxSetCover(G, Schedule(), 0.2, 3);
  EXPECT_TRUE(isValidCover(G, R.ChosenSets));
}

TEST(SetCover, EmptyGraphProducesEmptyCover) {
  Graph G = symmetric({}, 0);
  SetCoverResult R = approxSetCover(G, Schedule());
  EXPECT_TRUE(R.ChosenSets.empty());
  EXPECT_EQ(R.CoveredElements, 0);
}

TEST(SetCover, EdgelessGraphChoosesEveryVertex) {
  Graph G = symmetric({}, 5);
  SetCoverResult R = approxSetCover(G, Schedule());
  EXPECT_TRUE(isValidCover(G, R.ChosenSets));
  EXPECT_EQ(R.ChosenSets.size(), 5u);
}
