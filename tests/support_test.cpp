//===- tests/support_test.cpp - Unit tests for src/support ----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Atomics.h"
#include "support/Bitmap.h"
#include "support/Parallel.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

using namespace graphit;

//===----------------------------------------------------------------------===//
// Atomics
//===----------------------------------------------------------------------===//

TEST(Atomics, WriteMinLowersValue) {
  int64_t X = 100;
  EXPECT_TRUE(atomicWriteMin(&X, int64_t{42}));
  EXPECT_EQ(X, 42);
}

TEST(Atomics, WriteMinRejectsLargerValue) {
  int64_t X = 10;
  EXPECT_FALSE(atomicWriteMin(&X, int64_t{42}));
  EXPECT_EQ(X, 10);
}

TEST(Atomics, WriteMinRejectsEqualValue) {
  int64_t X = 42;
  EXPECT_FALSE(atomicWriteMin(&X, int64_t{42}));
  EXPECT_EQ(X, 42);
}

TEST(Atomics, WriteMaxRaisesValue) {
  int32_t X = 5;
  EXPECT_TRUE(atomicWriteMax(&X, 9));
  EXPECT_EQ(X, 9);
  EXPECT_FALSE(atomicWriteMax(&X, 3));
  EXPECT_EQ(X, 9);
}

TEST(Atomics, CASSucceedsOnlyOnExpected) {
  uint32_t X = 7;
  EXPECT_FALSE(atomicCAS(&X, 8u, 9u));
  EXPECT_EQ(X, 7u);
  EXPECT_TRUE(atomicCAS(&X, 7u, 9u));
  EXPECT_EQ(X, 9u);
}

TEST(Atomics, FetchAddReturnsPrevious) {
  int64_t X = 3;
  EXPECT_EQ(fetchAdd(&X, int64_t{4}), 3);
  EXPECT_EQ(X, 7);
}

TEST(Atomics, ConcurrentWriteMinFindsGlobalMin) {
  // Many threads racing writeMin must end at the global minimum, and the
  // number of "true" returns must be at least 1 (the winner) and at most
  // the number of distinct improvements.
  int64_t X = 1 << 30;
  constexpr Count N = 100000;
  int64_t Wins = parallelSum(0, N, [&](Count I) {
    return atomicWriteMin(&X, static_cast<int64_t>(hash64(I) % 1000000))
               ? 1
               : 0;
  });
  int64_t Expected = 1 << 30;
  for (Count I = 0; I < N; ++I)
    Expected = std::min(Expected, static_cast<int64_t>(hash64(I) % 1000000));
  EXPECT_EQ(X, Expected);
  EXPECT_GE(Wins, 1);
}

TEST(Atomics, ConcurrentFetchAddCountsExactly) {
  int64_t X = 0;
  parallelFor(
      0, 100000, [&](Count) { fetchAdd(&X, int64_t{1}); },
      Parallelization::StaticVertexParallel);
  EXPECT_EQ(X, 100000);
}

//===----------------------------------------------------------------------===//
// Parallel primitives
//===----------------------------------------------------------------------===//

TEST(Parallel, ForVisitsEveryIndexOnce) {
  constexpr Count N = 10000;
  std::vector<int> Hits(N, 0);
  parallelFor(0, N, [&](Count I) { fetchAdd(&Hits[I], 1); });
  for (Count I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I], 1) << "index " << I;
}

TEST(Parallel, ForSerialStrategyWorks) {
  int64_t Sum = 0;
  parallelFor(
      0, 100, [&](Count I) { Sum += I; }, Parallelization::Serial);
  EXPECT_EQ(Sum, 4950);
}

TEST(Parallel, ForStaticStrategyWorks) {
  constexpr Count N = 5000;
  std::vector<int> Hits(N, 0);
  parallelFor(
      0, N, [&](Count I) { Hits[I]++; },
      Parallelization::StaticVertexParallel);
  EXPECT_EQ(std::accumulate(Hits.begin(), Hits.end(), 0), N);
}

TEST(Parallel, ForEmptyRangeIsNoop) {
  parallelFor(5, 5, [&](Count) { FAIL() << "body must not run"; });
}

TEST(Parallel, SumMatchesSerial) {
  EXPECT_EQ(parallelSum(0, 1000, [](Count I) { return I * I; }),
            332833500);
}

TEST(Parallel, MinFindsMinimum) {
  EXPECT_EQ(parallelMin(0, 1000, INT64_MAX,
                        [](Count I) { return 500 + (I - 700) * (I - 700); }),
            500);
}

TEST(Parallel, MinOfEmptyRangeIsIdentity) {
  EXPECT_EQ(parallelMin(3, 3, int64_t{77}, [](Count) { return 0; }), 77);
}

TEST(Parallel, PrefixSumSmall) {
  std::vector<int64_t> V = {3, 1, 4, 1, 5};
  EXPECT_EQ(exclusivePrefixSum(V), 14);
  EXPECT_EQ(V, (std::vector<int64_t>{0, 3, 4, 8, 9}));
}

TEST(Parallel, PrefixSumEmpty) {
  std::vector<int64_t> V;
  EXPECT_EQ(exclusivePrefixSum(V.data(), 0), 0);
}

TEST(Parallel, PrefixSumLargeMatchesSerial) {
  constexpr Count N = 1 << 17;
  std::vector<int64_t> V(N), Expected(N);
  for (Count I = 0; I < N; ++I)
    V[I] = static_cast<int64_t>(hash64(I) % 17);
  int64_t Running = 0;
  for (Count I = 0; I < N; ++I) {
    Expected[I] = Running;
    Running += V[I];
  }
  EXPECT_EQ(exclusivePrefixSum(V), Running);
  EXPECT_EQ(V, Expected);
}

TEST(Parallel, PackKeepsOrderAndFilter) {
  constexpr Count N = 100000;
  std::vector<uint32_t> In(N), Out(N);
  for (Count I = 0; I < N; ++I)
    In[I] = static_cast<uint32_t>(I);
  Count M = parallelPack(In.data(), N, Out.data(),
                         [](uint32_t X) { return X % 3 == 0; });
  ASSERT_EQ(M, (N + 2) / 3);
  for (Count I = 0; I < M; ++I)
    ASSERT_EQ(Out[I], static_cast<uint32_t>(3 * I));
}

TEST(Parallel, PackAllAndNone) {
  std::vector<uint32_t> In = {1, 2, 3}, Out(3);
  EXPECT_EQ(parallelPack(In.data(), 3, Out.data(),
                         [](uint32_t) { return true; }),
            3);
  EXPECT_EQ(parallelPack(In.data(), 3, Out.data(),
                         [](uint32_t) { return false; }),
            0);
}

TEST(Parallel, PackBlockBoundarySizes) {
  // The blocked pack splits N into getNumWorkers()*4 blocks and falls back
  // to a serial pass below a block-size floor; sizes straddling both the
  // serial/parallel switch and exact block multiples are where off-by-one
  // bugs in the two-pass offsets would hide.
  const Count NumBlocks = std::max(1, getNumWorkers() * 4);
  const Count Boundary = kPackSerialBlockFloor * NumBlocks;
  for (Count N : {Boundary - 1, Boundary, Boundary + 1, Boundary + NumBlocks,
                  2 * Boundary - 1, 2 * Boundary + 1}) {
    std::vector<uint32_t> In(static_cast<size_t>(N)),
        Out(static_cast<size_t>(N));
    std::vector<uint32_t> Expected;
    for (Count I = 0; I < N; ++I) {
      In[I] = static_cast<uint32_t>(hash64(static_cast<uint64_t>(I)));
      if (In[I] % 7 == 0)
        Expected.push_back(In[I]);
    }
    Count M = parallelPack(In.data(), N, Out.data(),
                           [](uint32_t X) { return X % 7 == 0; });
    ASSERT_EQ(M, static_cast<Count>(Expected.size())) << "N=" << N;
    Out.resize(static_cast<size_t>(M));
    EXPECT_EQ(Out, Expected) << "N=" << N;
  }
}

TEST(Parallel, PackIndexMatchesSerialAtBoundaries) {
  const Count NumBlocks = std::max(1, getNumWorkers() * 4);
  const Count Boundary = kPackSerialBlockFloor * NumBlocks;
  for (Count N : {Count{0}, Count{5}, Boundary - 1, Boundary, Boundary + 1}) {
    std::vector<uint8_t> Bits(static_cast<size_t>(std::max<Count>(N, 1)));
    std::vector<uint32_t> Expected;
    for (Count I = 0; I < N; ++I) {
      Bits[I] = hash64(static_cast<uint64_t>(I) * 31) % 5 == 0 ? 1 : 0;
      if (Bits[I])
        Expected.push_back(static_cast<uint32_t>(I));
    }
    std::vector<uint32_t> Out(static_cast<size_t>(std::max<Count>(N, 1)));
    Count M = parallelPackIndex(N, Out.data(),
                                [&](Count I) { return Bits[I] != 0; });
    ASSERT_EQ(M, static_cast<Count>(Expected.size())) << "N=" << N;
    Out.resize(static_cast<size_t>(M));
    EXPECT_EQ(Out, Expected) << "N=" << N;
  }
}

TEST(Atomics, AtomicMinLowersConcurrently) {
  int64_t Target = std::numeric_limits<int64_t>::max();
  parallelFor(
      0, 10000,
      [&](Count I) {
        atomicMin(&Target, static_cast<int64_t>(hash64(I) % 1000000) + 17);
      },
      Parallelization::StaticVertexParallel);
  int64_t Expected = std::numeric_limits<int64_t>::max();
  for (int I = 0; I < 10000; ++I)
    Expected =
        std::min(Expected, static_cast<int64_t>(hash64(I) % 1000000) + 17);
  EXPECT_EQ(Target, Expected);
}

TEST(Atomics, ExchangeReturnsPrevious) {
  int64_t X = 5;
  EXPECT_EQ(atomicExchange(&X, int64_t{9}), 5);
  EXPECT_EQ(X, 9);
}

TEST(Parallel, WorkerCountIsPositiveAndSettable) {
  int Original = getNumWorkers();
  EXPECT_GE(Original, 1);
  setNumWorkers(2);
  EXPECT_EQ(getNumWorkers(), 2);
  setNumWorkers(Original);
  EXPECT_EQ(getNumWorkers(), Original);
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, DeterministicForSameSeed) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(Random, NextIntStaysInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t X = Rng.nextInt(10, 20);
    ASSERT_GE(X, 10);
    ASSERT_LT(X, 20);
  }
}

TEST(Random, NextDoubleStaysInUnitInterval) {
  SplitMix64 Rng(9);
  for (int I = 0; I < 1000; ++I) {
    double X = Rng.nextDouble();
    ASSERT_GE(X, 0.0);
    ASSERT_LT(X, 1.0);
  }
}

TEST(Random, Hash64IsStable) {
  EXPECT_EQ(hash64(0), hash64(0));
  EXPECT_NE(hash64(0), hash64(1));
}

TEST(Random, NextIntCoversRange) {
  SplitMix64 Rng(11);
  std::set<int64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(Rng.nextInt(0, 8));
  EXPECT_EQ(Seen.size(), 8u);
}

//===----------------------------------------------------------------------===//
// Bitmap
//===----------------------------------------------------------------------===//

TEST(Bitmap, SetAndGet) {
  Bitmap Map(130);
  EXPECT_FALSE(Map.get(0));
  Map.set(0);
  Map.set(64);
  Map.set(129);
  EXPECT_TRUE(Map.get(0));
  EXPECT_TRUE(Map.get(64));
  EXPECT_TRUE(Map.get(129));
  EXPECT_FALSE(Map.get(1));
}

TEST(Bitmap, TestAndSetWinsOnce) {
  Bitmap Map(100);
  EXPECT_TRUE(Map.testAndSet(37));
  EXPECT_FALSE(Map.testAndSet(37));
  EXPECT_TRUE(Map.get(37));
}

TEST(Bitmap, ConcurrentTestAndSetHasUniqueWinners) {
  constexpr Count N = 1000;
  Bitmap Map(N);
  int64_t Wins = parallelSum(
      0, N * 64, [&](Count I) { return Map.testAndSet(I % N) ? 1 : 0; });
  EXPECT_EQ(Wins, N);
}

TEST(Bitmap, ClearResetsAllBits) {
  Bitmap Map(64);
  Map.set(3);
  Map.set(63);
  Map.clear();
  EXPECT_FALSE(Map.get(3));
  EXPECT_FALSE(Map.get(63));
}

//===----------------------------------------------------------------------===//
// Timer
//===----------------------------------------------------------------------===//

TEST(Timer, MeasuresNonNegativeMonotonicTime) {
  Timer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_GE(T.seconds(), 0.0);
}
