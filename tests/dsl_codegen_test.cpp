//===- tests/dsl_codegen_test.cpp - Code generation tests -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Checks that the three Fig. 9 code-generation variants (lazy SparsePush,
// lazy DensePull, eager) and the Fig. 10 histogram transformation are
// produced, and that generated code actually compiles against the runtime
// headers with a real C++ compiler.
//
//===----------------------------------------------------------------------===//

#include "dsl/Driver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace graphit;
using namespace graphit::dsl;

namespace {

std::string appSource(const std::string &App) {
  return readFileOrDie(std::string(GRAPHIT_APPS_DIR) + "/" + App);
}

GeneratedCode compileApp(const std::string &App, const Schedule &S) {
  ScheduleMap Map;
  Map[""] = S;
  std::string Error;
  GeneratedCode Code = compileSource(appSource(App), Map, &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  return Code;
}

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

/// Writes the generated code and checks it with `g++ -fsyntax-only`.
void expectCompiles(const GeneratedCode &Code, const std::string &Name) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "graphit_codegen_test";
  fs::create_directories(Dir);
  fs::path File = Dir / (Name + ".cpp");
  {
    std::ofstream Out(File);
    Out << Code.Cpp;
  }
  std::string Cmd = "g++ -std=c++20 -fopenmp -fsyntax-only -I" +
                    std::string(GRAPHIT_SRC_DIR) + " " + File.string() +
                    " 2> " + (Dir / (Name + ".log")).string();
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    std::ifstream Log(Dir / (Name + ".log"));
    std::string Line, All;
    while (std::getline(Log, Line))
      All += Line + "\n";
    FAIL() << "generated code failed to compile:\n"
           << All.substr(0, 4000);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Fig. 9(c): eager with fusion
//===----------------------------------------------------------------------===//

TEST(CodeGen, EagerSSSPUsesOrderedProcessOperator) {
  Schedule S = Schedule::parse("eager_with_fusion,delta=4");
  GeneratedCode Code = compileApp("sssp.gt", S);
  EXPECT_TRUE(Code.UsedEagerEngine);
  EXPECT_FALSE(Code.UsedFacadeFallback);
  EXPECT_TRUE(contains(Code.Cpp, "eagerOrderedProcess"));
  EXPECT_TRUE(contains(Code.Cpp, "atomicWriteMin"));
  EXPECT_TRUE(contains(Code.Cpp, "gen_push"));
  EXPECT_TRUE(contains(Code.Cpp, "eager_with_fusion,delta=4"));
}

TEST(CodeGen, EagerSSSPCompiles) {
  expectCompiles(compileApp("sssp.gt",
                            Schedule::parse("eager_with_fusion,delta=4")),
                 "sssp_eager");
}

//===----------------------------------------------------------------------===//
// Fig. 9(a): lazy + SparsePush
//===----------------------------------------------------------------------===//

TEST(CodeGen, LazySparsePushSSSP) {
  Schedule S = Schedule::parse("lazy,delta=4,direction=SparsePush");
  GeneratedCode Code = compileApp("sssp.gt", S);
  EXPECT_TRUE(Code.UsedLazyEngine);
  EXPECT_TRUE(contains(Code.Cpp, "LazyBucketQueue"));
  EXPECT_TRUE(contains(Code.Cpp, "tracking_var"));
  EXPECT_TRUE(contains(Code.Cpp, "atomicWriteMin"))
      << "push direction requires atomics (Fig. 9(a))";
  EXPECT_TRUE(contains(Code.Cpp, "edgeApplyOut"));
}

TEST(CodeGen, LazySparsePushCompiles) {
  expectCompiles(
      compileApp("sssp.gt", Schedule::parse("lazy,direction=SparsePush")),
      "sssp_lazy_push");
}

//===----------------------------------------------------------------------===//
// Fig. 9(b): lazy + DensePull
//===----------------------------------------------------------------------===//

TEST(CodeGen, LazyDensePullGeneratesNonAtomicPull) {
  Schedule S = Schedule::parse("lazy,delta=4,direction=DensePull");
  GeneratedCode Code = compileApp("sssp.gt", S);
  EXPECT_TRUE(Code.UsedLazyEngine);
  EXPECT_TRUE(contains(Code.Cpp, "direction=DensePull"));
  // The pull lambda performs a plain compare-and-store (no atomics).
  EXPECT_TRUE(contains(Code.Cpp, "GenPull"));
  EXPECT_TRUE(contains(Code.Cpp, "tracking_var = true"));
}

TEST(CodeGen, LazyDensePullCompiles) {
  expectCompiles(
      compileApp("sssp.gt", Schedule::parse("lazy,direction=DensePull")),
      "sssp_lazy_pull");
}

//===----------------------------------------------------------------------===//
// Fig. 10: histogram transformation for k-core
//===----------------------------------------------------------------------===//

TEST(CodeGen, KCoreHistogramEmitsTransformedFunction) {
  Schedule S = Schedule::parse("lazy_constant_sum");
  GeneratedCode Code = compileApp("kcore.gt", S);
  EXPECT_TRUE(Code.UsedHistogram);
  EXPECT_TRUE(contains(Code.Cpp, "HistogramBuffer"));
  EXPECT_TRUE(contains(Code.Cpp, "GenApplyTransformed"))
      << "the Fig. 10 transformed UDF must be emitted";
  EXPECT_TRUE(contains(Code.Cpp, "(-1) * static_cast<Priority>"))
      << "the constant -1 extracted by the analysis appears in code";
}

TEST(CodeGen, KCoreHistogramCompiles) {
  expectCompiles(compileApp("kcore.gt",
                            Schedule::parse("lazy_constant_sum")),
                 "kcore_histogram");
}

//===----------------------------------------------------------------------===//
// PPSP / A* / stop conditions
//===----------------------------------------------------------------------===//

TEST(CodeGen, PPSPEmitsEarlyExitStop) {
  GeneratedCode Code = compileApp(
      "ppsp.gt", Schedule::parse("eager_with_fusion,delta=16"));
  EXPECT_TRUE(Code.UsedEagerEngine);
  EXPECT_TRUE(contains(Code.Cpp, "end_vertex"));
  EXPECT_TRUE(contains(Code.Cpp, "GenKey * GenDelta >= GenBest"));
}

TEST(CodeGen, PPSPCompiles) {
  expectCompiles(compileApp("ppsp.gt",
                            Schedule::parse("eager_with_fusion,delta=16")),
                 "ppsp_eager");
}

TEST(CodeGen, AStarCompiles) {
  expectCompiles(compileApp("astar.gt",
                            Schedule::parse("eager_with_fusion,delta=2048")),
                 "astar_eager");
}

//===----------------------------------------------------------------------===//
// Facade fallback
//===----------------------------------------------------------------------===//

TEST(CodeGen, SetCoverFallsBackToFacade) {
  GeneratedCode Code = compileApp("setcover.gt", Schedule());
  EXPECT_TRUE(Code.UsedFacadeFallback);
  EXPECT_TRUE(contains(Code.Cpp, "PriorityQueue"));
  EXPECT_TRUE(contains(Code.Cpp, "reserve_elements")); // extern decl + call
}

TEST(CodeGen, SetCoverFacadeCompiles) {
  expectCompiles(compileApp("setcover.gt", Schedule()), "setcover_facade");
}

TEST(CodeGen, ScheduleEchoedInHeader) {
  ScheduleMap Map;
  Map["s1"] = Schedule::parse("lazy,delta=32");
  std::string Error;
  GeneratedCode Code = compileSource(appSource("sssp.gt"), Map, &Error);
  EXPECT_TRUE(contains(Code.Cpp, "#s1#: lazy,delta=32"));
}

TEST(CodeGen, PerLabelScheduleSelection) {
  // The same program under two schedules produces different engines.
  GeneratedCode Eager = compileApp("sssp.gt", Schedule::parse("eager"));
  GeneratedCode Lazy = compileApp("sssp.gt", Schedule::parse("lazy"));
  EXPECT_TRUE(Eager.UsedEagerEngine);
  EXPECT_FALSE(Eager.UsedLazyEngine);
  EXPECT_TRUE(Lazy.UsedLazyEngine);
  EXPECT_FALSE(Lazy.UsedEagerEngine);
}
