//===- tests/ordered_process_test.cpp - Eager engine unit tests -----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Exercises eagerOrderedProcess directly with a hand-rolled delta-stepping
// relaxation, independent of the algorithm layer built on top of it.
//
//===----------------------------------------------------------------------===//

#include "core/OrderedProcess.h"

#include "graph/Builder.h"
#include "graph/Generators.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <queue>

using namespace graphit;

namespace {

/// Minimal serial Dijkstra for ground truth.
std::vector<Priority> dijkstraRef(const Graph &G, VertexId Src) {
  std::vector<Priority> Dist(G.numNodes(), kInfiniteDistance);
  Dist[Src] = 0;
  using Item = std::pair<Priority, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> PQ;
  PQ.push({0, Src});
  while (!PQ.empty()) {
    auto [D, U] = PQ.top();
    PQ.pop();
    if (D > Dist[U])
      continue;
    for (WNode E : G.outNeighbors(U))
      if (D + E.W < Dist[E.V]) {
        Dist[E.V] = D + E.W;
        PQ.push({Dist[E.V], E.V});
      }
  }
  return Dist;
}

/// Runs delta-stepping through the eager engine and returns distances.
std::vector<Priority> runEager(const Graph &G, VertexId Src,
                               const Schedule &S,
                               OrderedStats *Stats = nullptr) {
  std::vector<Priority> Dist(G.numNodes(), kInfiniteDistance);
  Dist[Src] = 0;
  int64_t Delta = S.Delta;
  auto Relax = [&](VertexId U, int64_t CurrKey, auto &&Push) {
    // Relaxed atomic pre-checks: concurrent relaxations CAS these slots.
    Priority DU = atomicLoadRelaxed(&Dist[U]);
    if (DU / Delta < CurrKey)
      return; // stale entry, already settled in an earlier bucket
    for (WNode E : G.outNeighbors(U)) {
      Priority ND = DU + E.W;
      if (ND < atomicLoadRelaxed(&Dist[E.V]) &&
          atomicWriteMin(&Dist[E.V], ND))
        Push(E.V, ND / Delta);
    }
  };
  eagerOrderedProcess(G.numNodes(), G.numEdges() + 1, Src, 0, S, Relax,
                      [](int64_t) { return false; }, Stats);
  return Dist;
}

struct EagerCase {
  const char *Name;
  UpdateStrategy Update;
  int64_t Delta;
};

class EagerEngineTest : public ::testing::TestWithParam<EagerCase> {};

Schedule makeSchedule(const EagerCase &C) {
  Schedule S;
  S.Update = C.Update;
  S.Delta = C.Delta;
  return S;
}

} // namespace

TEST_P(EagerEngineTest, PathGraph) {
  Graph G = GraphBuilder().build(6, pathEdges(6));
  std::vector<Priority> Dist = runEager(G, 0, makeSchedule(GetParam()));
  for (Count V = 0; V < 6; ++V)
    EXPECT_EQ(Dist[V], V);
}

TEST_P(EagerEngineTest, DisconnectedVerticesStayInfinite) {
  Graph G = GraphBuilder().build(5, {{0, 1, 3}});
  std::vector<Priority> Dist = runEager(G, 0, makeSchedule(GetParam()));
  EXPECT_EQ(Dist[1], 3);
  EXPECT_EQ(Dist[2], kInfiniteDistance);
  EXPECT_EQ(Dist[4], kInfiniteDistance);
}

TEST_P(EagerEngineTest, SingleVertexGraph) {
  Graph G = GraphBuilder().build(1, {});
  std::vector<Priority> Dist = runEager(G, 0, makeSchedule(GetParam()));
  EXPECT_EQ(Dist[0], 0);
}

TEST_P(EagerEngineTest, MatchesDijkstraOnRmat) {
  std::vector<Edge> Edges = rmatEdges(12, 8, 77);
  assignRandomWeights(Edges, 1, 100, 7);
  Graph G = GraphBuilder().build(Count{1} << 12, Edges);
  std::vector<Priority> Expected = dijkstraRef(G, 5);
  EXPECT_EQ(runEager(G, 5, makeSchedule(GetParam())), Expected);
}

TEST_P(EagerEngineTest, MatchesDijkstraOnRoadGrid) {
  RoadNetwork Net = roadGrid(40, 40, 11);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
  std::vector<Priority> Expected = dijkstraRef(G, 0);
  EXPECT_EQ(runEager(G, 0, makeSchedule(GetParam())), Expected);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndDeltas, EagerEngineTest,
    ::testing::Values(
        EagerCase{"FusionDelta1", UpdateStrategy::EagerWithFusion, 1},
        EagerCase{"FusionDelta8", UpdateStrategy::EagerWithFusion, 8},
        EagerCase{"FusionDelta1000", UpdateStrategy::EagerWithFusion, 1000},
        EagerCase{"NoFusionDelta1", UpdateStrategy::EagerNoFusion, 1},
        EagerCase{"NoFusionDelta8", UpdateStrategy::EagerNoFusion, 8},
        EagerCase{"NoFusionDelta1000", UpdateStrategy::EagerNoFusion,
                  1000}),
    [](const auto &Info) { return Info.param.Name; });

TEST(EagerEngine, FusionReducesGlobalRounds) {
  // A long path with delta > 1 forces many same-bucket rounds that fusion
  // executes locally.
  Graph G = GraphBuilder().build(2000, pathEdges(2000));
  Schedule Fused;
  Fused.Update = UpdateStrategy::EagerWithFusion;
  Fused.Delta = 64;
  Schedule Plain = Fused;
  Plain.Update = UpdateStrategy::EagerNoFusion;

  OrderedStats FusedStats, PlainStats;
  std::vector<Priority> A = runEager(G, 0, Fused, &FusedStats);
  std::vector<Priority> B = runEager(G, 0, Plain, &PlainStats);
  EXPECT_EQ(A, B);
  EXPECT_LT(FusedStats.Rounds, PlainStats.Rounds / 4)
      << "fusion should collapse same-bucket rounds";
  EXPECT_GT(FusedStats.FusedRounds, 0);
  EXPECT_EQ(PlainStats.FusedRounds, 0);
}

TEST(EagerEngine, StopPredicateCutsExecution) {
  // Stop as soon as the current bucket's key reaches 5: distances beyond
  // that bucket must remain unsettled on a path graph with delta=1.
  Graph G = GraphBuilder().build(100, pathEdges(100));
  std::vector<Priority> Dist(G.numNodes(), kInfiniteDistance);
  Dist[0] = 0;
  Schedule S;
  S.Update = UpdateStrategy::EagerWithFusion;
  auto Relax = [&](VertexId U, int64_t CurrKey, auto &&Push) {
    if (Dist[U] < CurrKey)
      return;
    for (WNode E : G.outNeighbors(U)) {
      Priority ND = Dist[U] + E.W;
      if (ND < Dist[E.V] && atomicWriteMin(&Dist[E.V], ND))
        Push(E.V, ND);
    }
  };
  OrderedStats Stats;
  eagerOrderedProcess(G.numNodes(), G.numEdges() + 1, VertexId{0}, 0, S,
                      Relax, [](int64_t Key) { return Key >= 5; }, &Stats);
  EXPECT_EQ(Dist[4], 4);
  EXPECT_EQ(Dist[10], kInfiniteDistance);
  EXPECT_LE(Stats.Rounds, 7);
}

TEST(EagerEngine, TinyWindowSlidesAcrossWideKeyRange) {
  // A 4-bin window with delta=1 and weights up to 64 forces constant
  // overflow filing and migration while the window slides across tens of
  // thousands of distinct keys; results must match the default window.
  Count N = 2000;
  std::vector<Edge> Edges = pathEdges(N);
  for (size_t I = 0; I < Edges.size(); ++I)
    Edges[I].W = 1 + static_cast<Weight>(hash64(I) % 64);
  Graph G = GraphBuilder().build(N, Edges);
  std::vector<Priority> Expected = dijkstraRef(G, 0);

  for (UpdateStrategy U :
       {UpdateStrategy::EagerWithFusion, UpdateStrategy::EagerNoFusion}) {
    Schedule Tiny;
    Tiny.Update = U;
    Tiny.Delta = 1;
    Tiny.NumOpenBuckets = 4;
    OrderedStats Stats;
    EXPECT_EQ(runEager(G, 0, Tiny, &Stats), Expected);
    // Stats invariants: every vertex settles through a global or fused
    // round, and the totals add up.
    EXPECT_EQ(Stats.totalRounds(), Stats.Rounds + Stats.FusedRounds);
    EXPECT_GE(Stats.VerticesProcessed, N - 1);
    if (U == UpdateStrategy::EagerNoFusion) {
      EXPECT_EQ(Stats.FusedRounds, 0);
    }
  }
}

TEST(EagerEngine, WindowSizeDoesNotChangeResultsOrFusionAccounting) {
  // Bin recycling must be invisible: a window of 2 (minimum), the default
  // 128, and one larger than the whole key range produce identical
  // distances, and fusion still collapses same-bucket rounds under each.
  Graph G = GraphBuilder().build(3000, pathEdges(3000));
  std::vector<Priority> Expected = dijkstraRef(G, 0);
  for (int Buckets : {2, 128, 100000}) {
    Schedule S;
    S.Update = UpdateStrategy::EagerWithFusion;
    S.Delta = 64;
    S.NumOpenBuckets = Buckets;
    OrderedStats Stats;
    EXPECT_EQ(runEager(G, 0, S, &Stats), Expected) << Buckets;
    EXPECT_GT(Stats.FusedRounds, 0) << Buckets;
    EXPECT_LT(Stats.Rounds, 3000 / 64 + 4)
        << "fusion must keep global rounds near the bucket count";
  }
}

TEST(EagerEngine, RmatWithTinyWindowMatchesDijkstra) {
  std::vector<Edge> Edges = rmatEdges(11, 8, 99);
  assignRandomWeights(Edges, 1, 1000, 3);
  Graph G = GraphBuilder().build(Count{1} << 11, Edges);
  Schedule S;
  S.Update = UpdateStrategy::EagerWithFusion;
  S.Delta = 4;
  S.NumOpenBuckets = 3;
  EXPECT_EQ(runEager(G, 7, S), dijkstraRef(G, 7));
}

TEST(EagerEngine, VertexCountsAccumulate) {
  Graph G = GraphBuilder().build(50, pathEdges(50));
  Schedule S;
  S.Delta = 4;
  OrderedStats Stats;
  runEager(G, 0, S, &Stats);
  // Every vertex is processed at least once, via frontier or fusion.
  EXPECT_GE(Stats.VerticesProcessed, 49);
  EXPECT_GT(Stats.Seconds, 0.0);
}
