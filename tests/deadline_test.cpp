//===- tests/deadline_test.cpp - Deadlines, budgets, admission ------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Overload-safety semantics of the serving stack:
//
//  * cooperative cancellation at bucket-round boundaries — an interrupted
//    run reports exactly the *settled prefix* of the full answer
//    (differentially checked against an uninterrupted run, across
//    eager/lazy schedules and static/live/sharded views),
//  * MaxDistance budgets for point queries (deterministic early stop),
//  * QueryEngine wall-clock deadlines, typed QueryStatus outcomes,
//    tryCollect, and admission control (shed + degrade).
//
// Wall-clock tests never assert *when* a deadline fires — only that
// whatever partial result it produced is exact below its settled bound,
// a property that holds for every possible timing.
//
//===----------------------------------------------------------------------===//

#include "stress_harness.h"

#include "algorithms/AStar.h"
#include "algorithms/PPSP.h"
#include "algorithms/QueryState.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/DeltaGraph.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"
#include "support/Cancellation.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace graphit;
using namespace graphit::service;
using namespace graphit::stress;

namespace {

Graph makeRoad(int Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions O;
  O.Symmetrize = true;
  return GraphBuilder(O).build(Net.NumNodes, Net.Edges,
                               std::move(Net.Coords));
}

Schedule eager(int64_t Delta) {
  Schedule S;
  S.configApplyPriorityUpdateDelta(Delta);
  return S;
}

Schedule lazy(int64_t Delta) {
  Schedule S;
  S.configApplyPriorityUpdate("lazy").configApplyPriorityUpdateDelta(Delta);
  return S;
}

/// The settled-prefix contract, valid for ANY cancellation timing: every
/// partial distance strictly below Bound is exact, and every true
/// distance strictly below Bound was found. (Above the bound nothing is
/// promised.)
void checkSettledPrefix(const DistanceState &Partial,
                        const std::vector<Priority> &Full, Priority Bound,
                        const char *What) {
  ASSERT_EQ(Partial.numNodes(), static_cast<Count>(Full.size())) << What;
  for (Count V = 0; V < Partial.numNodes(); ++V) {
    VertexId Id = static_cast<VertexId>(V);
    if (Partial.dist(Id) < Bound) {
      EXPECT_EQ(Partial.dist(Id), Full[static_cast<size_t>(V)])
          << What << ": unsettled value reported below bound, vertex " << V;
    }
    if (Full[static_cast<size_t>(V)] < Bound) {
      EXPECT_EQ(Partial.dist(Id), Full[static_cast<size_t>(V)])
          << What << ": settled vertex missing below bound, vertex " << V;
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine-level cancellation: pre-expired tokens.
//===----------------------------------------------------------------------===//

TEST(Deadline, PreExpiredTokenStopsBeforeAnyRound) {
  Graph G = makeRoad(24, 11);
  const Schedule Scheds[2] = {eager(512), lazy(512)};
  for (const Schedule &S : Scheds) {
    CancelToken Token;
    Token.cancel();
    DistanceState State(G.numNodes());
    OrderedStats Stats = deltaSteppingSSSP(G, 0, S, State, &Token);
    EXPECT_TRUE(Stats.Cancelled);
    // Nothing beyond the seed bucket was processed: the settled bound is
    // the source's own key, i.e. no distance is promised.
    EXPECT_LE(Stats.CancelKey * S.Delta, Priority{1});
  }
}

//===----------------------------------------------------------------------===//
// Mid-run cancellation across {eager, lazy} x {Graph, DeltaGraph,
// ShardedDeltaView}: for whatever round the deadline hit, the partial
// distances below CancelKey * Delta match the full run exactly.
//===----------------------------------------------------------------------===//

TEST(Deadline, SettledPrefixMatchesFullRunAcrossEnginesAndViews) {
  Graph Base = makeRoad(40, 17);
  SnapshotStore Plain(Base);
  ShardedSnapshotStore::Options SO;
  SO.NumShards = 4;
  ShardedSnapshotStore Sharded(Base, SO);
  // Perturb both stores identically so the live views differ from the
  // static base.
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xDEAD11);
  std::vector<EdgeUpdate> Batch = randomBatch(Ref, 64, Rng);
  Ref.apply(Batch);
  Plain.applyUpdates(Batch);
  Sharded.applyUpdates(Batch);

  // Small Delta = many bucket rounds = many cancellation points.
  const Schedule Scheds[2] = {eager(8), lazy(8)};
  const char *SchedNames[2] = {"eager", "lazy"};
  const VertexId Src = 0;

  for (int SI = 0; SI < 2; ++SI) {
    const Schedule &S = Scheds[SI];
    SSSPResult FullStatic = deltaSteppingSSSP(Base, Src, S);
    SSSPResult FullLive = deltaSteppingSSSP(*Plain.current(), Src, S);
    SSSPResult FullSharded = deltaSteppingSSSP(*Sharded.current(), Src, S);

    // A spread of deadlines from "expires instantly" to "never fires":
    // each lands at a different round, and the contract must hold at all
    // of them.
    for (int64_t Micros : {0LL, 50LL, 200LL, 1000LL, 500000LL}) {
      CancelToken Token;
      Token.setDeadlineAfterMicros(Micros);

      DistanceState St(Base.numNodes());
      OrderedStats Stats = deltaSteppingSSSP(Base, Src, S, St, &Token);
      Priority Bound =
          Stats.Cancelled ? Stats.CancelKey * S.Delta : kInfiniteDistance;
      checkSettledPrefix(St, FullStatic.Dist, Bound, SchedNames[SI]);

      CancelToken Token2;
      Token2.setDeadlineAfterMicros(Micros);
      DistanceState StL(Base.numNodes());
      OrderedStats StatsL =
          deltaSteppingSSSP(*Plain.current(), Src, S, StL, &Token2);
      Priority BoundL =
          StatsL.Cancelled ? StatsL.CancelKey * S.Delta : kInfiniteDistance;
      checkSettledPrefix(StL, FullLive.Dist, BoundL, SchedNames[SI]);

      CancelToken Token3;
      Token3.setDeadlineAfterMicros(Micros);
      DistanceState StS(Base.numNodes());
      OrderedStats StatsS =
          deltaSteppingSSSP(*Sharded.current(), Src, S, StS, &Token3);
      Priority BoundS =
          StatsS.Cancelled ? StatsS.CancelKey * S.Delta : kInfiniteDistance;
      checkSettledPrefix(StS, FullSharded.Dist, BoundS, SchedNames[SI]);
    }
  }
}

//===----------------------------------------------------------------------===//
// MaxDistance budgets: deterministic early stop for point queries.
//===----------------------------------------------------------------------===//

TEST(Deadline, PointBudgetStopsAreExactOrInterrupted) {
  Graph G = makeRoad(32, 23);
  const Schedule S = eager(256);
  SSSPResult Full = deltaSteppingSSSP(G, 5, S);
  DistanceState State(G.numNodes());
  SplitMix64 Rng(0xB0D6E7);

  int Interrupted = 0, Exact = 0;
  for (int I = 0; I < 24; ++I) {
    VertexId T = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Priority Want = Full.Dist[T];
    if (Want == kInfiniteDistance)
      continue;

    // Budget past the answer: the settle check runs first, so the result
    // is exact — never spuriously interrupted.
    RunLimits Generous;
    Generous.MaxDistance = Want + 1;
    PPSPResult P1 = pointToPointShortestPath(G, 5, T, S, State, Generous);
    EXPECT_FALSE(P1.Interrupted) << "target " << T;
    EXPECT_EQ(P1.Dist, Want) << "target " << T;

    // Budget below the answer: either the run proves the target anyway
    // (settled in the final bucket) or it reports Interrupted with a
    // bound no larger than the budget rounded to the bucket grid.
    if (Want >= 2) {
      RunLimits Tight;
      Tight.MaxDistance = Want / 2;
      PPSPResult P2 = pointToPointShortestPath(G, 5, T, S, State, Tight);
      if (P2.Interrupted) {
        ++Interrupted;
        EXPECT_EQ(P2.Dist, kInfiniteDistance);
        // The settled bound is the stop key's priority: at least the
        // budget (the stop fires at the first key at/over it), and the
        // target's true distance must NOT be below it (else it would
        // have been reported).
        EXPECT_GE(P2.SettledBound, Want / 2);
        EXPECT_GE(Want, P2.SettledBound);
      } else {
        ++Exact;
        EXPECT_EQ(P2.Dist, Want);
      }
    }
  }
  // The graph is big enough that tight budgets genuinely interrupt.
  EXPECT_GT(Interrupted, 0);
}

TEST(Deadline, AStarBudgetNeverReturnsWrongAnswers) {
  Graph G = makeRoad(28, 29);
  const Schedule S = eager(256);
  DistanceState State(G.numNodes());
  SplitMix64 Rng(0xA57AB);
  for (int I = 0; I < 16; ++I) {
    VertexId Src = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    VertexId T = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    PPSPResult Ref = aStarSearch(G, Src, T, S, State);
    ASSERT_FALSE(Ref.Interrupted);

    RunLimits Tight;
    Tight.MaxDistance = Ref.Dist == kInfiniteDistance ? 64 : Ref.Dist / 2;
    if (Tight.MaxDistance < 1)
      Tight.MaxDistance = 1;
    PPSPResult P = aStarSearch(G, Src, T, S, State, nullptr, Tight);
    if (P.Interrupted)
      EXPECT_EQ(P.Dist, kInfiniteDistance) << Src << "->" << T;
    else
      EXPECT_EQ(P.Dist, Ref.Dist) << Src << "->" << T;
  }
}

//===----------------------------------------------------------------------===//
// QueryEngine: wall-clock deadlines, typed statuses, tryCollect.
//===----------------------------------------------------------------------===//

TEST(Deadline, QueryEngineDeadlineExceededReportsOnlySettledDistances) {
  Graph G = makeRoad(36, 31);
  SSSPResult Full = deltaSteppingSSSP(G, 3, eager(8));

  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(8);
  QueryEngine Engine(G, Opts);

  SplitMix64 Rng(0x0D15EA5E);
  int SawDeadline = 0;
  for (int I = 0; I < 12; ++I) {
    Query Q;
    Q.Kind = QueryKind::SSSP;
    Q.Source = 3;
    Q.CollectReached = true;
    // Mix of instantly-expiring and tight-but-possible deadlines.
    Q.DeadlineMicros = I % 2 == 0 ? 1 : 100 + Rng.nextInt(0, 400);
    QueryResult R = Engine.runBatch({Q})[0];
    if (R.Status == QueryStatus::DeadlineExceeded) {
      ++SawDeadline;
      // Every reported (vertex, distance) pair must sit strictly below
      // the settled bound and equal the full answer — the prefix
      // contract, regardless of where the clock fired.
      for (const auto &[V, D] : R.Reached) {
        EXPECT_LT(D, R.SettledBound);
        EXPECT_EQ(D, Full.Dist[V]) << "vertex " << V;
      }
      EXPECT_EQ(static_cast<Count>(R.Reached.size()), R.Touched);
    } else {
      ASSERT_EQ(R.Status, QueryStatus::Ok);
      EXPECT_EQ(R.SettledBound, kInfiniteDistance);
      EXPECT_EQ(static_cast<size_t>(R.Touched), R.Reached.size());
    }
  }
  EXPECT_GT(SawDeadline, 0) << "no deadline ever fired; tighten the test";
}

TEST(Deadline, QueryEngineLiveAndPpspDeadlines) {
  Graph Base = makeRoad(30, 37);
  SnapshotStore Store(Base);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(16);
  QueryEngine Engine(Store, Opts);

  SSSPResult Full = deltaSteppingSSSP(*Store.current(), 2, eager(16));

  // Pre-expired PPSP on the live view: typed outcome, no answer invented.
  Query P;
  P.Kind = QueryKind::PPSP;
  P.Source = 2;
  P.Target = static_cast<VertexId>(Base.numNodes() - 1);
  P.DeadlineMicros = 1;
  QueryResult RP = Engine.runBatch({P})[0];
  if (RP.Status == QueryStatus::DeadlineExceeded) {
    EXPECT_EQ(RP.Dist, kInfiniteDistance);
  } else {
    EXPECT_EQ(RP.Dist, Full.Dist[P.Target]);
  }

  // MaxDistance-budgeted PPSP through the engine: bounded run, Ok status.
  Query B;
  B.Kind = QueryKind::PPSP;
  B.Source = 2;
  B.Target = static_cast<VertexId>(Base.numNodes() - 1);
  B.MaxDistance = Full.Dist[B.Target] == kInfiniteDistance
                      ? Priority{128}
                      : Full.Dist[B.Target] / 2;
  if (B.MaxDistance < 1)
    B.MaxDistance = 1;
  QueryResult RB = Engine.runBatch({B})[0];
  EXPECT_EQ(RB.Status, QueryStatus::Ok);
  if (RB.Dist != kInfiniteDistance) {
    EXPECT_EQ(RB.Dist, Full.Dist[B.Target]);
  }
}

TEST(Deadline, TryCollectIsNonFatalAndCompatibleWithCollect) {
  Graph G = makeRoad(12, 41);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  QueryEngine Engine(G, Opts);

  Query Q;
  Q.Kind = QueryKind::SSSP;
  Q.Source = 0;
  uint64_t T1 = Engine.submit(Q);
  std::optional<QueryResult> R1 = Engine.tryCollect(T1);
  ASSERT_TRUE(R1.has_value());
  EXPECT_EQ(R1->Status, QueryStatus::Ok);

  // Already collected and never-issued tickets: typed nullopt, no abort.
  EXPECT_FALSE(Engine.tryCollect(T1).has_value());
  EXPECT_FALSE(Engine.tryCollect(99999).has_value());

  // Failed validation still resolves through tryCollect.
  Query Bad;
  Bad.Kind = QueryKind::PPSP;
  Bad.Source = 0;
  Bad.Target = static_cast<VertexId>(G.numNodes() + 17);
  std::optional<QueryResult> RBad = Engine.tryCollect(Engine.submit(Bad));
  ASSERT_TRUE(RBad.has_value());
  EXPECT_EQ(RBad->Status, QueryStatus::Failed);
  EXPECT_TRUE(RBad->Failed);
}

//===----------------------------------------------------------------------===//
// Admission control: shedding and graceful degradation.
//===----------------------------------------------------------------------===//

TEST(Deadline, AdmissionShedsLowestImportanceFirst) {
  Graph G = makeRoad(64, 43);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  Opts.AdmissionHighWater = 3;
  QueryEngine Engine(G, Opts);

  // Occupy the only worker with a long run (tiny Delta = thousands of
  // rounds), then flood the queue past the high-water mark.
  Query Slow;
  Slow.Kind = QueryKind::SSSP;
  Slow.Source = 0;
  Slow.Sched = eager(1);
  Slow.Importance = 10; // never a shed victim, even while still queued
  uint64_t SlowTicket = Engine.submit(Slow);

  std::vector<uint64_t> LowTickets;
  for (int I = 0; I < 12; ++I) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = 0;
    Q.Target = 1;
    Q.Importance = 0;
    LowTickets.push_back(Engine.submit(Q));
  }
  // A high-importance query arriving at a full queue must displace a
  // low-importance one, never be shed itself.
  Query Vip;
  Vip.Kind = QueryKind::PPSP;
  Vip.Source = 0;
  Vip.Target = 2;
  Vip.Importance = 5;
  uint64_t VipTicket = Engine.submit(Vip);

  QueryResult VipR = Engine.collect(VipTicket);
  EXPECT_NE(VipR.Status, QueryStatus::Shed);

  int Shed = 0, Ok = 0;
  for (uint64_t T : LowTickets) {
    QueryResult R = Engine.collect(T);
    (R.Status == QueryStatus::Shed ? Shed : Ok)++;
  }
  QueryResult SlowR = Engine.collect(SlowTicket);
  EXPECT_EQ(SlowR.Status, QueryStatus::Ok);

  // With a 12-deep flood against high-water 3 and a busy worker, most of
  // the flood must have been shed (typed, collectible — never dropped).
  EXPECT_GT(Shed, 0);
  EXPECT_EQ(static_cast<uint64_t>(Shed),
            Engine.queriesShed() -
                (VipR.Status == QueryStatus::Shed ? 1 : 0));
}

TEST(Deadline, SoftWaterDegradesPointQueriesInsteadOfShedding) {
  Graph G = makeRoad(48, 47);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(256);
  Opts.AdmissionSoftWater = 2;
  QueryEngine Engine(G, Opts);

  // Warm the PPSP EWMA with clean completions at an empty queue.
  for (int I = 0; I < 4; ++I) {
    Query W;
    W.Kind = QueryKind::PPSP;
    W.Source = 0;
    W.Target = static_cast<VertexId>(G.numNodes() - 1);
    ASSERT_EQ(Engine.runBatch({W})[0].Status, QueryStatus::Ok);
  }
  ASSERT_EQ(Engine.queriesDegraded(), 0u);

  // Occupy the worker, then queue point queries past the soft-water
  // mark: they acquire imposed deadlines and the Degraded mark.
  Query Slow;
  Slow.Kind = QueryKind::SSSP;
  Slow.Source = 0;
  Slow.Sched = eager(1);
  uint64_t SlowTicket = Engine.submit(Slow);
  std::vector<uint64_t> Tickets;
  for (int I = 0; I < 8; ++I) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = 0;
    Q.Target = static_cast<VertexId>(1 + I);
    Tickets.push_back(Engine.submit(Q));
  }

  int DegradedSeen = 0;
  for (uint64_t T : Tickets) {
    QueryResult R = Engine.collect(T);
    // Degraded queries may still complete (Ok) or get cut (Deadline
    // Exceeded) — both are sound; Shed must not happen (no high water).
    ASSERT_NE(R.Status, QueryStatus::Shed);
    if (R.Degraded)
      ++DegradedSeen;
  }
  Engine.collect(SlowTicket);
  EXPECT_GT(DegradedSeen, 0);
  EXPECT_EQ(static_cast<uint64_t>(DegradedSeen), Engine.queriesDegraded());
}

TEST(Deadline, AdmissionShedTieBreakIsDeterministic) {
  // The tie rule, both halves: an incomer tied with the least-important
  // pending query sheds *itself* (queued work has waited longer), and a
  // strictly more important incomer displaces the *newest* of the
  // equally-least-important pending queries (it has waited least). Both
  // single submits and runBatch funnel through the same admission path.
  Graph G = makeRoad(64, 53);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  Opts.AdmissionHighWater = 3;
  QueryEngine Engine(G, Opts);

  Query Slow;
  Slow.Kind = QueryKind::SSSP;
  Slow.Source = 0;
  Slow.Sched = eager(1);
  Slow.Importance = 10;
  uint64_t SlowTicket = Engine.submit(Slow);
  // Wait until the only worker has dequeued the slow run, so the three
  // fillers below are exactly the pending queue — deterministic state.
  while (Engine.queueDepth() > 0)
    std::this_thread::yield();

  auto mkPoint = [&](int Importance) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = 0;
    Q.Target = 1;
    Q.Importance = Importance;
    return Q;
  };
  uint64_t A = Engine.submit(mkPoint(1)); // oldest pending
  uint64_t B = Engine.submit(mkPoint(1));
  uint64_t C = Engine.submit(mkPoint(1)); // newest pending

  // Tied incomer: D itself sheds; A/B/C stay queued.
  uint64_t D = Engine.submit(mkPoint(1));
  EXPECT_EQ(Engine.collect(D).Status, QueryStatus::Shed);

  // Strictly more important incomer: the victim is C — the newest of the
  // equally-least-important pending queries — never A (the oldest).
  uint64_t E = Engine.submit(mkPoint(2));
  EXPECT_EQ(Engine.collect(C).Status, QueryStatus::Shed);
  EXPECT_NE(Engine.collect(A).Status, QueryStatus::Shed);
  EXPECT_NE(Engine.collect(B).Status, QueryStatus::Shed);
  EXPECT_NE(Engine.collect(E).Status, QueryStatus::Shed);
  EXPECT_EQ(Engine.collect(SlowTicket).Status, QueryStatus::Ok);

  // Both sheds were importance-1 queries → class 2; per-class counters
  // must agree.
  EXPECT_EQ(Engine.queriesShed(), 2u);
  EXPECT_EQ(Engine.queriesShedInClass(importanceClass(1)), 2u);
  EXPECT_EQ(Engine.queriesShedInClass(0), 0u);
}

//===----------------------------------------------------------------------===//
// Feedback controller: the deadline/bit-identity contracts hold while the
// controller is actively moving MaxBatchDelayMicros and the watermarks.
//===----------------------------------------------------------------------===//

namespace {

template <class StoreT>
void runControllerOnDifferential(StoreT &Store, const char *What) {
  using Engine = BasicQueryEngine<StoreT>;
  typename Engine::Options Opts;
  Opts.NumWorkers = 4;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(8);
  Opts.MaxBatchDelayMicros = 2000;
  Opts.MaxBatchSize = 8;
  Opts.AdmissionSoftWater = 16;
  // No high water: every submitted query must resolve Ok or
  // DeadlineExceeded, so each result is checkable against the reference.
  Opts.AdmissionHighWater = 0;
  // An unmeetable class-0 target keeps the controller tightening for the
  // whole test — knobs are in motion while the contracts are checked.
  Opts.ClassSlo[0] = 1;
  Opts.ControllerIntervalMicros = 500;
  Opts.ControllerMinSamples = 1;
  Opts.ControllerHysteresisTicks = 1;
  Opts.ControllerMinBatchDelayMicros = 0;
  Opts.ControllerMinSoftWater = 4;
  Engine E(Store, Opts);

  const Schedule S = eager(8);
  SSSPResult Full = deltaSteppingSSSP(*Store.current(), 0, S);

  SplitMix64 Rng(0xC7A1);
  int SawDeadline = 0;
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<Query> Batch;
    // Class-0 point queries (the SLO-missing traffic that drives the
    // controller) — every Ok answer must be bit-identical to the
    // reference regardless of the knob trajectory.
    for (int I = 0; I < 24; ++I) {
      Query Q;
      Q.Kind = QueryKind::PPSP;
      Q.Source = 0;
      Q.Target = static_cast<VertexId>(
          Rng.nextInt(1, Store.current()->numNodes()));
      Q.Sched = S;
      Q.Importance = 3;
      Batch.push_back(Q);
    }
    // Deadline-carrying SSSPs: the settled-prefix contract under active
    // knob movement.
    for (int I = 0; I < 4; ++I) {
      Query Q;
      Q.Kind = QueryKind::SSSP;
      Q.Source = 0;
      Q.Sched = S;
      Q.CollectReached = true;
      Q.DeadlineMicros = I % 2 == 0 ? 1 : 300;
      Q.Importance = 1;
      Batch.push_back(Q);
    }
    std::vector<QueryResult> Results = E.runBatch(Batch);
    for (size_t I = 0; I < Results.size(); ++I) {
      const QueryResult &R = Results[I];
      const Query &Q = Batch[I];
      ASSERT_NE(R.Status, QueryStatus::Failed) << What;
      ASSERT_NE(R.Status, QueryStatus::Shed) << What;
      if (Q.Kind == QueryKind::PPSP) {
        if (R.Status == QueryStatus::Ok) {
          EXPECT_EQ(R.Dist, Full.Dist[Q.Target])
              << What << ": PPSP answer diverged, target " << Q.Target;
        }
      } else if (R.Status == QueryStatus::DeadlineExceeded) {
        ++SawDeadline;
        for (const auto &[V, Dist] : R.Reached) {
          EXPECT_LT(Dist, R.SettledBound) << What;
          EXPECT_EQ(Dist, Full.Dist[V]) << What << ": vertex " << V;
        }
      } else {
        EXPECT_EQ(static_cast<size_t>(R.Touched), R.Reached.size())
            << What;
      }
    }
  }

  // The controller genuinely ran and moved knobs...
  EXPECT_GT(E.controllerTicks(), 0u) << What;
  EXPECT_GT(E.controllerTightens(), 0u) << What;
  // ...and every recorded knob value stayed inside its configured bounds.
  for (const ControllerEvent &Ev : E.controllerTrace()) {
    EXPECT_GE(Ev.BatchDelayMicros, Opts.ControllerMinBatchDelayMicros)
        << What;
    EXPECT_LE(Ev.BatchDelayMicros, Opts.MaxBatchDelayMicros) << What;
    EXPECT_GE(Ev.SoftWater, Opts.ControllerMinSoftWater) << What;
    EXPECT_LE(Ev.SoftWater, Opts.AdmissionSoftWater) << What;
    EXPECT_EQ(Ev.HighWater, 0u) << What; // disabled knob never enabled
  }
  EXPECT_GT(SawDeadline, 0) << What << ": no deadline ever fired";
}

} // namespace

TEST(Deadline, ControllerOnDifferentialAcrossStores) {
  Graph Base = makeRoad(40, 61);
  SnapshotStore Plain(Base);
  runControllerOnDifferential(Plain, "snapshot");
  ShardedSnapshotStore::Options SO;
  SO.NumShards = 4;
  ShardedSnapshotStore Sharded(Base, SO);
  runControllerOnDifferential(Sharded, "sharded");
}
