//===- tests/snapshot_store_test.cpp - Live-graph serving tests -----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Covers the live-graph serving stack: the DeltaGraph overlay (unified
// iteration, mirrored in-adjacency, compaction), the SnapshotStore
// (pinned versions across publishes, concurrent readers, synchronous and
// background compaction), incremental distance repair (bit-identical to
// full recompute on random delta batches, eager and lazy engines,
// symmetric and directed graphs), and the QueryEngine's live mode.
//
//===----------------------------------------------------------------------===//

#include "stress_harness.h"

#include "algorithms/IncrementalSSSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/DeltaGraph.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace graphit;
using namespace graphit::service;
using graphit::stress::randomBatch; // the one canonical update space

namespace {

Graph smallDirected() {
  // 0 -> 1 (w 4), 0 -> 2 (w 9), 1 -> 2 (w 3), 2 -> 3 (w 1), 1 -> 3 (w 10)
  std::vector<Edge> Edges = {
      {0, 1, 4}, {0, 2, 9}, {1, 2, 3}, {2, 3, 1}, {1, 3, 10}};
  return GraphBuilder().build(4, Edges);
}

Graph roadGraph(Count Side = 80) {
  RoadNetwork Net = roadGrid(Side, Side, 4242);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

int64_t checksum(const std::vector<Priority> &Dist) {
  int64_t Sum = 0;
  for (Priority P : Dist)
    if (P < kInfiniteDistance)
      Sum += P;
  return Sum;
}

template <typename GraphT> int64_t ssspChecksum(const GraphT &G) {
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  return checksum(deltaSteppingSSSP(G, 0, S).Dist);
}

/// Drives `repairAfterUpdates` against a full recompute over a sequence of
/// random batches and requires bit-identical distance arrays.
void checkRepairMatchesRecompute(Graph Base, VertexId Source,
                                 const Schedule &S, uint64_t Seed) {
  SnapshotStore Store(std::move(Base));
  DistanceState State(Store.current()->numNodes(), /*TrackParents=*/false);
  deltaSteppingSSSP(*Store.current(), Source, S, State);
  RepairScratch Scratch;
  SplitMix64 Rng(Seed);

  for (int Round = 0; Round < 8; ++Round) {
    // Batches big enough that updates interact (an increase invalidating
    // the tail of a tight decreased edge caught a real propagation bug).
    std::vector<EdgeUpdate> Batch =
        randomBatch(*Store.current(), 64, Rng);
    SnapshotStore::ApplyResult A = Store.applyUpdates(Batch);
    RepairStats R =
        repairAfterUpdates(*A.Snap, A.Applied, State, S, Scratch);
    (void)R;

    SSSPResult Fresh = deltaSteppingSSSP(*A.Snap, Source, S);
    ASSERT_EQ(Fresh.Dist.size(), State.distances().size());
    for (size_t V = 0; V < Fresh.Dist.size(); ++V)
      ASSERT_EQ(State.distances()[V], Fresh.Dist[V])
          << "round " << Round << " vertex " << V;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// DeltaGraph overlay
//===----------------------------------------------------------------------===//

TEST(DeltaGraph, UpsertDeleteAndMirroredInEdges) {
  auto Base = std::make_shared<const Graph>(smallDirected());
  DeltaGraph D(Base);
  EXPECT_EQ(D.numEdges(), Base->numEdges());
  EXPECT_EQ(D.overlayEdges(), 0);

  // Insert 3 -> 0, delete 0 -> 2, change 1 -> 2 to weight 5.
  std::vector<AppliedUpdate> Applied = D.apply({
      EdgeUpdate{3, 0, 2, UpdateKind::Upsert},
      EdgeUpdate{0, 2, 0, UpdateKind::Delete},
      EdgeUpdate{1, 2, 5, UpdateKind::Upsert},
  });
  ASSERT_EQ(Applied.size(), 3u);
  EXPECT_EQ(Applied[0].OldW, kAbsentEdge);
  EXPECT_EQ(Applied[0].NewW, 2);
  EXPECT_EQ(Applied[1].OldW, 9);
  EXPECT_EQ(Applied[1].NewW, kAbsentEdge);
  EXPECT_EQ(Applied[2].OldW, 3);
  EXPECT_EQ(Applied[2].NewW, 5);

  EXPECT_EQ(D.numEdges(), Base->numEdges()); // +1 insert, -1 delete
  EXPECT_EQ(D.outDegree(3), 1);
  EXPECT_EQ(D.outDegree(0), 1);
  // Unpatched vertex reads straight from base.
  EXPECT_EQ(D.outDegree(2), 1);

  // In-adjacency mirrors the patches (directed base built with in-edges).
  ASSERT_TRUE(D.hasInEdges());
  bool Saw30 = false;
  for (WNode E : D.inNeighbors(0))
    if (E.V == 3 && E.W == 2)
      Saw30 = true;
  EXPECT_TRUE(Saw30);
  Count In2 = 0;
  for (WNode E : D.inNeighbors(2)) {
    EXPECT_EQ(E.V, 1u); // 0 -> 2 deleted; only 1 -> 2 (now weight 5) left
    EXPECT_EQ(E.W, 5);
    ++In2;
  }
  EXPECT_EQ(In2, 1);

  // No-ops: delete a missing edge, upsert to the same weight.
  EXPECT_TRUE(D.apply({EdgeUpdate{0, 2, 0, UpdateKind::Delete}}).empty());
  EXPECT_TRUE(D.apply({EdgeUpdate{1, 2, 5, UpdateKind::Upsert}}).empty());
  // Malformed writes are skipped, not fatal.
  EXPECT_TRUE(D.apply({EdgeUpdate{1, 1, 5, UpdateKind::Upsert},
                       EdgeUpdate{99, 0, 1, UpdateKind::Upsert},
                       EdgeUpdate{0, 1, -3, UpdateKind::Upsert}})
                  .empty());
}

TEST(DeltaGraph, SymmetricUpdatesBothDirections) {
  auto Base = std::make_shared<const Graph>(roadGraph(12));
  DeltaGraph D(Base);
  // Pick an existing edge off vertex 0.
  WNode First = *D.outNeighbors(0).begin();
  std::vector<AppliedUpdate> Applied = D.apply(
      {EdgeUpdate{0, First.V, static_cast<Weight>(First.W + 7),
                  UpdateKind::Upsert}});
  ASSERT_EQ(Applied.size(), 2u); // both directions
  EXPECT_EQ(Applied[0].Src, 0u);
  EXPECT_EQ(Applied[1].Dst, 0u);
  // The mirror direction reads the new weight through inNeighbors (which
  // aliases outNeighbors on symmetric graphs).
  bool Saw = false;
  for (WNode E : D.outNeighbors(First.V))
    if (E.V == 0 && E.W == First.W + 7)
      Saw = true;
  EXPECT_TRUE(Saw);
  EXPECT_EQ(D.numEdges(), Base->numEdges());

  // Deleting it drops two directed edges.
  D.apply({EdgeUpdate{First.V, 0, 0, UpdateKind::Delete}});
  EXPECT_EQ(D.numEdges(), Base->numEdges() - 2);
}

TEST(DeltaGraph, CompactEquivalence) {
  auto Base = std::make_shared<const Graph>(roadGraph(20));
  DeltaGraph D(Base);
  SplitMix64 Rng(99);
  for (int I = 0; I < 6; ++I)
    D.apply(randomBatch(D, 20, Rng));

  Graph C = D.compact();
  ASSERT_EQ(C.numNodes(), D.numNodes());
  ASSERT_EQ(C.numEdges(), D.numEdges());
  EXPECT_TRUE(C.isSymmetric());
  EXPECT_TRUE(C.hasCoordinates());
  // Identical adjacency, vertex by vertex (both sides sorted by id).
  for (Count V = 0; V < C.numNodes(); ++V) {
    ASSERT_EQ(C.outDegree(static_cast<VertexId>(V)),
              D.outDegree(static_cast<VertexId>(V)));
    auto A = C.outNeighbors(static_cast<VertexId>(V)).begin();
    for (WNode E : D.outNeighbors(static_cast<VertexId>(V))) {
      WNode Got = *A;
      ASSERT_EQ(Got.V, E.V) << "vertex " << V;
      ASSERT_EQ(Got.W, E.W) << "vertex " << V;
      ++A;
    }
  }
  EXPECT_EQ(ssspChecksum(C), ssspChecksum(D));
}

//===----------------------------------------------------------------------===//
// SnapshotStore
//===----------------------------------------------------------------------===//

TEST(SnapshotStore, ReadersStayPinnedAcrossPublish) {
  SnapshotStore Store(smallDirected());
  EXPECT_EQ(Store.version(), 0u);
  SnapshotStore::Snapshot Pinned = Store.current();
  Count Deg0 = Pinned->outDegree(0);

  SnapshotStore::ApplyResult A =
      Store.applyUpdates({EdgeUpdate{0, 3, 1, UpdateKind::Upsert}});
  EXPECT_EQ(A.Version, 1u);
  EXPECT_EQ(Store.version(), 1u);

  // The pinned version is immutable; the new one sees the insert.
  EXPECT_EQ(Pinned->outDegree(0), Deg0);
  EXPECT_EQ(Store.current()->outDegree(0), Deg0 + 1);
  EXPECT_EQ(A.Snap->outDegree(0), Deg0 + 1);
}

TEST(SnapshotStore, ConcurrentReadersWhilePublishing) {
  SnapshotStore Store(roadGraph(40));
  std::atomic<bool> Done{false};
  std::atomic<int> Failures{0};

  std::vector<std::thread> Readers;
  for (int T = 0; T < 4; ++T)
    Readers.emplace_back([&] {
      Schedule S;
      S.configApplyPriorityUpdateDelta(1024);
      while (!Done.load()) {
        SnapshotStore::Snapshot Snap = Store.current();
        // A pinned version must be internally consistent: two runs over
        // it give identical results no matter how many versions the
        // writer publishes meanwhile.
        int64_t C1 = checksum(deltaSteppingSSSP(*Snap, 0, S).Dist);
        int64_t C2 = checksum(deltaSteppingSSSP(*Snap, 0, S).Dist);
        if (C1 != C2)
          ++Failures;
      }
    });

  SplitMix64 Rng(7);
  for (int I = 0; I < 40; ++I)
    Store.applyUpdates(randomBatch(*Store.current(), 10, Rng));
  Done = true;
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Store.version(), 40u);
}

TEST(SnapshotStore, SynchronousCompactionPreservesChecksums) {
  SnapshotStore::Options Opts;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 64;
  SnapshotStore Store(roadGraph(24), Opts);

  SplitMix64 Rng(31);
  bool Triggered = false;
  for (int I = 0; I < 30; ++I) {
    std::vector<EdgeUpdate> Batch = randomBatch(*Store.current(), 16, Rng);
    int64_t Before = -1;
    {
      // Checksum of what the adjacency *should* be after this batch:
      // apply to a throwaway copy of the current view.
      DeltaGraph Scratch(*Store.current());
      Scratch.apply(Batch);
      Before = ssspChecksum(Scratch);
    }
    SnapshotStore::ApplyResult A = Store.applyUpdates(Batch);
    Triggered |= A.CompactionTriggered;
    EXPECT_EQ(ssspChecksum(*A.Snap), Before) << "batch " << I;
  }
  EXPECT_TRUE(Triggered);
  EXPECT_GT(Store.compactions(), 0u);
  // Compaction folded the overlay back into a base CSR.
  EXPECT_LT(Store.current()->overlayEdges(),
            Store.current()->numEdges() / 10);
}

TEST(SnapshotStore, BackgroundCompactionReplaysConcurrentBatches) {
  SnapshotStore::Options Sync;
  Sync.CompactionThreshold = 1e9; // reference store never compacts
  SnapshotStore Reference(roadGraph(24), Sync);

  SnapshotStore::Options Opts;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 64;
  Opts.BackgroundCompaction = true;
  SnapshotStore Store(roadGraph(24), Opts);

  SplitMix64 Rng(55);
  for (int I = 0; I < 30; ++I) {
    // Same batches into both stores; the background compactor races the
    // writer and must replay whatever landed while it rebuilt.
    std::vector<EdgeUpdate> Batch = randomBatch(*Store.current(), 16, Rng);
    Reference.applyUpdates(Batch);
    Store.applyUpdates(Batch);
  }
  Store.waitForCompaction();
  EXPECT_GT(Store.compactions(), 0u);
  EXPECT_EQ(ssspChecksum(*Store.current()),
            ssspChecksum(*Reference.current()));
  EXPECT_EQ(Store.current()->numEdges(), Reference.current()->numEdges());
}

//===----------------------------------------------------------------------===//
// Incremental repair
//===----------------------------------------------------------------------===//

TEST(IncrementalRepair, MatchesRecomputeSymmetricEager) {
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  checkRepairMatchesRecompute(roadGraph(), 0, S, 1001);
}

TEST(IncrementalRepair, MatchesRecomputeSymmetricLazy) {
  Schedule S;
  S.configApplyPriorityUpdate("lazy").configApplyPriorityUpdateDelta(1024);
  checkRepairMatchesRecompute(roadGraph(), 17, S, 2002);
}

TEST(IncrementalRepair, MatchesRecomputeDirectedRmat) {
  std::vector<Edge> Edges = rmatEdges(10, 8, 321);
  assignRandomWeights(Edges, 1, 64, 11);
  Graph G = GraphBuilder().build(Count{1} << 10, Edges);
  ASSERT_TRUE(G.hasInEdges());
  Schedule S;
  S.configApplyPriorityUpdateDelta(4);
  checkRepairMatchesRecompute(std::move(G), 3, S, 3003);
}

TEST(IncrementalRepair, DeleteCanDisconnect) {
  // Path 0 -> 1 -> 2 -> 3; deleting 1 -> 2 must push 2 and 3 back to ∞.
  std::vector<Edge> Edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
  SnapshotStore Store(GraphBuilder().build(4, Edges));
  Schedule S;
  DistanceState State(4);
  deltaSteppingSSSP(*Store.current(), 0, S, State);
  ASSERT_EQ(State.dist(3), 3);

  SnapshotStore::ApplyResult A =
      Store.applyUpdates({EdgeUpdate{1, 2, 0, UpdateKind::Delete}});
  RepairScratch Scratch;
  RepairStats R = repairAfterUpdates(*A.Snap, A.Applied, State, S, Scratch);
  EXPECT_EQ(State.dist(0), 0);
  EXPECT_EQ(State.dist(1), 1);
  EXPECT_EQ(State.dist(2), kInfiniteDistance);
  EXPECT_EQ(State.dist(3), kInfiniteDistance);
  EXPECT_EQ(R.AffectedVertices, 2);
}

TEST(IncrementalRepair, DecreaseOnlySeedsWithoutInvalidation) {
  // 0 -> 1 (10), 1 -> 2 (10), 0 -> 2 (100): shortcut decrease re-routes 2.
  std::vector<Edge> Edges = {{0, 1, 10}, {1, 2, 10}, {0, 2, 100}};
  SnapshotStore Store(GraphBuilder().build(3, Edges));
  Schedule S;
  DistanceState State(3);
  deltaSteppingSSSP(*Store.current(), 0, S, State);
  ASSERT_EQ(State.dist(2), 20);

  SnapshotStore::ApplyResult A =
      Store.applyUpdates({EdgeUpdate{0, 2, 5, UpdateKind::Upsert}});
  RepairScratch Scratch;
  RepairStats R = repairAfterUpdates(*A.Snap, A.Applied, State, S, Scratch);
  EXPECT_EQ(R.AffectedVertices, 0); // pure decrease: nothing invalidated
  EXPECT_EQ(State.dist(2), 5);
}

TEST(IncrementalRepair, TouchedLogStaysResettable) {
  // After repairs (including vertices cut off to ∞), beginQuery must
  // still produce a clean slate — the touched log is a superset of the
  // finite vertices.
  SnapshotStore Store(roadGraph(16));
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  DistanceState State(Store.current()->numNodes());
  deltaSteppingSSSP(*Store.current(), 0, S, State);
  RepairScratch Scratch;
  SplitMix64 Rng(77);
  for (int I = 0; I < 4; ++I) {
    SnapshotStore::ApplyResult A =
        Store.applyUpdates(randomBatch(*Store.current(), 15, Rng));
    repairAfterUpdates(*A.Snap, A.Applied, State, S, Scratch);
  }
  // Fresh query from another source equals a from-scratch run.
  deltaSteppingSSSP(*Store.current(), 42, S, State);
  SSSPResult Fresh = deltaSteppingSSSP(*Store.current(), 42, S);
  for (size_t V = 0; V < Fresh.Dist.size(); ++V)
    ASSERT_EQ(State.distances()[V], Fresh.Dist[V]) << "vertex " << V;
}

//===----------------------------------------------------------------------===//
// QueryEngine live mode
//===----------------------------------------------------------------------===//

TEST(QueryEngineLive, QueriesTrackPublishedVersions) {
  SnapshotStore Store(roadGraph(30));
  QueryEngine::Options Opts;
  Opts.NumWorkers = 4;
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  Opts.DefaultSchedule = S;
  QueryEngine Engine(Store, Opts);
  ASSERT_TRUE(Engine.isLive());

  std::vector<std::pair<VertexId, VertexId>> Pairs =
      localGridQueryPairs(30, 30, 6, 32, 5);
  std::vector<Query> Batch;
  for (auto [Src, Dst] : Pairs) {
    Query Q;
    Q.Kind = QueryKind::PPSP;
    Q.Source = Src;
    Q.Target = Dst;
    Batch.push_back(Q);
  }

  SplitMix64 Rng(13);
  for (int Round = 0; Round < 3; ++Round) {
    std::vector<QueryResult> Results = Engine.runBatch(Batch);
    SnapshotStore::Snapshot Snap = Store.current();
    for (size_t I = 0; I < Batch.size(); ++I) {
      ASSERT_FALSE(Results[I].Failed);
      PPSPResult Direct = pointToPointShortestPath(
          *Snap, Batch[I].Source, Batch[I].Target, S);
      EXPECT_EQ(Results[I].Dist, Direct.Dist) << "query " << I;
    }
    Engine.applyUpdates(randomBatch(*Store.current(), 20, Rng));
  }
  EXPECT_EQ(Store.version(), 3u);
}

TEST(QueryEngineLive, InFlightQueriesSurviveConcurrentPublishes) {
  SnapshotStore Store(roadGraph(30));
  QueryEngine::Options Opts;
  Opts.NumWorkers = 4;
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  Opts.DefaultSchedule = S;
  QueryEngine Engine(Store, Opts);

  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    SplitMix64 Rng(21);
    while (!Done.load())
      Engine.applyUpdates(randomBatch(*Store.current(), 8, Rng));
  });

  std::vector<std::pair<VertexId, VertexId>> Pairs =
      localGridQueryPairs(30, 30, 6, 64, 9);
  for (int Round = 0; Round < 10; ++Round) {
    std::vector<Query> Batch;
    for (auto [Src, Dst] : Pairs) {
      Query Q;
      Q.Kind = QueryKind::SSSP;
      Q.Source = Src;
      Q.Target = Dst;
      Batch.push_back(Q);
    }
    std::vector<QueryResult> Results = Engine.runBatch(Batch);
    for (const QueryResult &R : Results) {
      EXPECT_FALSE(R.Failed);
      // Grid stays connected under these update mixes rarely breaks a
      // local pair; the hard guarantee is completion with a finite or
      // infinite distance, never a crash or a torn read.
      EXPECT_GE(R.Dist, 0);
    }
  }
  Done = true;
  Writer.join();
  EXPECT_GT(Store.version(), 0u);
}

//===----------------------------------------------------------------------===//
// Copy-on-write publish
//===----------------------------------------------------------------------===//

TEST(SnapshotStore, PublishSharesUntouchedPatchLists) {
  // publish() must copy O(dirty-since-last-publish), not O(V + overlay):
  // a snapshot and the writer share patch-list storage until the writer
  // dirties a list again, observable through adjacency pointer identity.
  Graph Base = roadGraph(20);
  const VertexId Far = static_cast<VertexId>(Base.numNodes() - 1);
  SnapshotStore Store(std::move(Base));

  WNode E0 = *Store.current()->outNeighbors(0).begin();
  Store.applyUpdates({EdgeUpdate{0, E0.V, static_cast<Weight>(E0.W + 10),
                                 UpdateKind::Upsert}});
  SnapshotStore::Snapshot SnapA = Store.current();
  const VertexId *ListOfZero = SnapA->outNeighbors(0).Ids;
  ASSERT_NE(ListOfZero, nullptr); // patched: served from a patch list

  // A batch touching a distant vertex publishes without copying 0's list.
  WNode EF = *Store.current()->outNeighbors(Far).begin();
  Store.applyUpdates({EdgeUpdate{Far, EF.V, static_cast<Weight>(EF.W + 10),
                                 UpdateKind::Upsert}});
  SnapshotStore::Snapshot SnapB = Store.current();
  EXPECT_EQ(SnapB->outNeighbors(0).Ids, ListOfZero)
      << "untouched patch list must be shared across publishes";

  // Re-touching vertex 0 clones its list (copy-on-write); the pinned
  // snapshots keep the exact adjacency they were published with.
  Store.applyUpdates({EdgeUpdate{0, E0.V, static_cast<Weight>(E0.W + 20),
                                 UpdateKind::Upsert}});
  SnapshotStore::Snapshot SnapC = Store.current();
  EXPECT_NE(SnapC->outNeighbors(0).Ids, ListOfZero)
      << "dirtied patch list must be cloned, not mutated in place";
  auto WeightTo = [](const SnapshotStore::Snapshot &S, VertexId U,
                     VertexId V) -> Weight {
    for (WNode E : S->outNeighbors(U))
      if (E.V == V)
        return E.W;
    return -1;
  };
  EXPECT_EQ(WeightTo(SnapA, 0, E0.V), static_cast<Weight>(E0.W + 10));
  EXPECT_EQ(WeightTo(SnapB, 0, E0.V), static_cast<Weight>(E0.W + 10));
  EXPECT_EQ(WeightTo(SnapC, 0, E0.V), static_cast<Weight>(E0.W + 20));
}
