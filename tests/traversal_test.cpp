//===- tests/traversal_test.cpp - Direction-optimized traversal tests -----===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/Traversal.h"

#include "core/Schedule.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "support/Atomics.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace graphit;

namespace {

/// One relaxation round of SSSP over a frontier under the given direction,
/// checking the returned changed-set against expectations.
struct RelaxFixture {
  explicit RelaxFixture(const Graph &Gr)
      : G(Gr), Dist(static_cast<size_t>(Gr.numNodes()), kInfiniteDistance),
        Buffers(Gr) {}

  std::vector<VertexId> run(const std::vector<VertexId> &Frontier,
                            Direction Dir) {
    auto Push = [&](VertexId S, VertexId D, Weight W) {
      return atomicWriteMin(&Dist[D], Dist[S] + W);
    };
    auto Pull = [&](VertexId S, VertexId D, Weight W) {
      Priority ND = Dist[S] + W;
      if (ND < Dist[D]) {
        Dist[D] = ND;
        return true;
      }
      return false;
    };
    std::vector<VertexId> Out = edgeApplyOut(
        G, Frontier, Dir, Parallelization::DynamicVertexParallel, Buffers,
        Push, Pull, &Stats);
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  const Graph &G;
  std::vector<Priority> Dist;
  TraversalBuffers Buffers;
  TraversalStats Stats;
};

class DirectionTest : public ::testing::TestWithParam<Direction> {};

} // namespace

TEST_P(DirectionTest, RelaxesOneHopNeighbors) {
  // 0 ->(5) 1 ->(2) 2 ; 0 ->(9) 2
  Graph G = GraphBuilder().build(3, {{0, 1, 5}, {1, 2, 2}, {0, 2, 9}});
  RelaxFixture F(G);
  F.Dist[0] = 0;
  std::vector<VertexId> Changed = F.run({0}, GetParam());
  EXPECT_EQ(Changed, (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(F.Dist[1], 5);
  EXPECT_EQ(F.Dist[2], 9);
}

TEST_P(DirectionTest, ReportsOnlyImprovedDestinations) {
  Graph G = GraphBuilder().build(3, {{0, 1, 5}, {2, 1, 5}});
  RelaxFixture F(G);
  F.Dist[0] = 0;
  F.Dist[2] = 0;
  F.Dist[1] = 3; // already better than any relaxation
  std::vector<VertexId> Changed = F.run({0, 2}, GetParam());
  EXPECT_TRUE(Changed.empty());
  EXPECT_EQ(F.Dist[1], 3);
}

TEST_P(DirectionTest, DeduplicatesDestinations) {
  // Two frontier vertices improving the same destination must produce one
  // entry.
  Graph G = GraphBuilder().build(3, {{0, 2, 7}, {1, 2, 5}});
  RelaxFixture F(G);
  F.Dist[0] = 0;
  F.Dist[1] = 0;
  std::vector<VertexId> Changed = F.run({0, 1}, GetParam());
  EXPECT_EQ(Changed, (std::vector<VertexId>{2}));
  EXPECT_EQ(F.Dist[2], 5);
}

TEST_P(DirectionTest, EmptyFrontierProducesNothing) {
  Graph G = GraphBuilder().build(2, {{0, 1, 1}});
  RelaxFixture F(G);
  EXPECT_TRUE(F.run({}, GetParam()).empty());
}

TEST_P(DirectionTest, LargeGraphRoundMatchesSerialRelaxation) {
  std::vector<Edge> Edges = rmatEdges(12, 8, 5);
  assignRandomWeights(Edges, 1, 100, 6);
  Graph G = GraphBuilder().build(Count{1} << 12, Edges);

  RelaxFixture F(G);
  std::vector<VertexId> Frontier;
  // All frontier members start at distance 0 so their values cannot change
  // mid-round; the round is then a deterministic one-hop relaxation.
  for (VertexId V = 0; V < 512; V += 3) {
    Frontier.push_back(V);
    F.Dist[V] = 0;
  }

  // Serial expectation.
  std::vector<Priority> Expected = F.Dist;
  std::vector<uint8_t> ChangedFlag(G.numNodes(), 0);
  for (VertexId S : Frontier)
    for (WNode E : G.outNeighbors(S))
      if (Expected[S] + E.W < Expected[E.V]) {
        Expected[E.V] = Expected[S] + E.W;
        ChangedFlag[E.V] = 1;
      }

  std::vector<VertexId> Changed = F.run(Frontier, GetParam());
  EXPECT_EQ(F.Dist, Expected);
  std::vector<VertexId> ExpectedChanged;
  for (Count V = 0; V < G.numNodes(); ++V)
    if (ChangedFlag[V])
      ExpectedChanged.push_back(static_cast<VertexId>(V));
  EXPECT_EQ(Changed, ExpectedChanged);
}

INSTANTIATE_TEST_SUITE_P(AllDirections, DirectionTest,
                         ::testing::Values(Direction::SparsePush,
                                           Direction::DensePull,
                                           Direction::Hybrid),
                         [](const auto &Info) {
                           return directionName(Info.param);
                         });

TEST(Traversal, StatsDistinguishSparseAndDense) {
  Graph G = GraphBuilder().build(3, {{0, 1, 5}, {1, 2, 2}});
  RelaxFixture F(G);
  F.Dist[0] = 0;
  F.run({0}, Direction::SparsePush);
  EXPECT_EQ(F.Stats.SparseRounds, 1);
  EXPECT_EQ(F.Stats.DenseRounds, 0);
  F.run({1}, Direction::DensePull);
  EXPECT_EQ(F.Stats.SparseRounds, 1);
  EXPECT_EQ(F.Stats.DenseRounds, 1);
}

TEST(Traversal, HybridPicksSparseForTinyFrontier) {
  std::vector<Edge> Edges = rmatEdges(10, 16, 4);
  Graph G = GraphBuilder().build(Count{1} << 10, Edges);
  RelaxFixture F(G);
  F.Dist[0] = 0;
  F.run({0}, Direction::Hybrid);
  EXPECT_EQ(F.Stats.SparseRounds, 1);
  EXPECT_EQ(F.Stats.DenseRounds, 0);
}
