//===- tests/stress_harness.h - Shared randomized stress harness -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared randomized workload generators and the differential stress
/// driver for the live-serving stack.
///
/// Every suite that fuzzes the update path draws from the SAME update
/// space — `randomBatch` below is the one canonical mixed batch (deletes,
/// weight doublings/halvings, fresh inserts in [kMinWeight, kMaxWeight]).
/// The per-test copies it replaced had subtly different weight ranges, so
/// a bug reachable only under one suite's distribution could hide from
/// the others.
///
/// `runLiveStress` is the differential harness proper: a seeded stream of
/// mixed update batches (optionally including vertex insertion and
/// removal/id-reuse) is fed to an unsharded `SnapshotStore`, a
/// `ShardedSnapshotStore` — the sharded side driven end to end through
/// the unified `ShardedQueryEngine` (updates, growth, vertex removal, and
/// queries all routed through the engine, hot-state repair and deadline
/// plumbing engaged) — and a plain reference `DeltaGraph`, and every
/// round cross-checks
///
///   * applied-transition streams (external-id space, record for record),
///   * SSSP distance arrays across {ordering x schedule} points
///     (eager vs lazy, identity vs permuted, sharded vs unsharded) —
///     bit-identical, as PriorityGraph's schedule-independence guarantees,
///   * engine-served query results (submit/collect) vs those distances,
///   * incrementally repaired states vs fresh recomputes,
///   * PPSP spot answers vs the reference distances.
///
/// Everything is deterministic from `StressConfig::Seed`; a failure
/// message embeds the seed so the exact stream replays.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_TESTS_STRESS_HARNESS_H
#define GRAPHIT_TESTS_STRESS_HARNESS_H

#include "graph/DeltaGraph.h"
#include "graph/Reorder.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace graphit {
namespace stress {

/// The canonical fuzzed update space: every randomized suite inserts
/// fresh edges with weights uniform in [kMinWeight, kMaxWeight] and
/// perturbs existing ones by doubling/halving (clamped at kMinWeight).
inline constexpr Weight kMinWeight = 1;
inline constexpr Weight kMaxWeight = 400;

/// Random small update batch against the current view: deletes, weight
/// doublings/halvings of existing edges, insertions of fresh edges, and
/// occasional whole-vertex detachments (every out-edge of one vertex
/// deleted at once — the same batch the stores' `removeVertex`
/// materializes, so tombstoned patch rows and their fold-time reclamation
/// see fuzzed coverage). Works over any graph-compatible view (Graph,
/// DeltaGraph, ShardedDeltaView). Ids are the view's own id space —
/// generate from an identity-layout view when the batch will be fed to
/// reordered stores.
template <typename GraphT>
std::vector<EdgeUpdate> randomBatch(const GraphT &G, Count HowMany,
                                    SplitMix64 &Rng) {
  std::vector<EdgeUpdate> Batch;
  const Count N = G.numNodes();
  if (N < 2)
    return Batch;
  while (static_cast<Count>(Batch.size()) < HowMany) {
    VertexId U = static_cast<VertexId>(Rng.nextInt(0, N));
    int Action = static_cast<int>(Rng.nextInt(0, 4));
    if (Action == 3) {
      VertexId V = static_cast<VertexId>(Rng.nextInt(0, N));
      if (U == V)
        continue;
      Batch.push_back(EdgeUpdate{
          U, V,
          static_cast<Weight>(Rng.nextInt(kMinWeight, kMaxWeight)),
          UpdateKind::Upsert});
      continue;
    }
    if (Rng.nextInt(0, 16) == 0) {
      // Vertex detachment: delete U's whole out-row in one shot.
      for (WNode E : G.outNeighbors(U))
        Batch.push_back(EdgeUpdate{U, E.V, 0, UpdateKind::Delete});
      continue;
    }
    Count Deg = G.outDegree(U);
    if (Deg == 0)
      continue;
    Count Pick = Rng.nextInt(0, Deg);
    Count I = 0;
    for (WNode E : G.outNeighbors(U)) {
      if (I++ != Pick)
        continue;
      if (Action == 0)
        Batch.push_back(EdgeUpdate{U, E.V, 0, UpdateKind::Delete});
      else if (Action == 1)
        Batch.push_back(EdgeUpdate{U, E.V,
                                   static_cast<Weight>(E.W * 2),
                                   UpdateKind::Upsert});
      else
        Batch.push_back(EdgeUpdate{
            U, E.V,
            static_cast<Weight>(std::max<Weight>(kMinWeight, E.W / 2)),
            UpdateKind::Upsert});
      break;
    }
  }
  return Batch;
}

/// Insert-only batch safe for the A* coordinate heuristic: every new
/// edge's weight clears 100 x the graph's coordinate-bounding-box
/// diagonal, so it can never undercut the Euclidean bound regardless of
/// its endpoints (graph/Generators.h invariant). Requires coordinates.
template <typename GraphT>
std::vector<EdgeUpdate> coordinateSafeInsertBatch(const GraphT &G,
                                                  Count HowMany,
                                                  SplitMix64 &Rng) {
  const Coordinates &C = G.coordinates();
  if (C.empty())
    return {};
  double MinX = C.X[0], MaxX = C.X[0], MinY = C.Y[0], MaxY = C.Y[0];
  for (size_t I = 1; I < C.X.size(); ++I) {
    MinX = std::min(MinX, C.X[I]);
    MaxX = std::max(MaxX, C.X[I]);
    MinY = std::min(MinY, C.Y[I]);
    MaxY = std::max(MaxY, C.Y[I]);
  }
  double Diag = std::hypot(MaxX - MinX, MaxY - MinY);
  Weight Floor = static_cast<Weight>(100.0 * Diag) + 1;
  std::vector<EdgeUpdate> Batch;
  const Count N = G.numNodes();
  while (static_cast<Count>(Batch.size()) < HowMany) {
    VertexId A = static_cast<VertexId>(Rng.nextInt(0, N));
    VertexId B = static_cast<VertexId>(Rng.nextInt(0, N));
    if (A == B)
      continue;
    Batch.push_back(EdgeUpdate{
        A, B, static_cast<Weight>(Floor + Rng.nextInt(0, 1000)),
        UpdateKind::Upsert});
  }
  return Batch;
}

/// One configuration point of the differential stress harness.
struct StressConfig {
  /// Workload seed. The failure string embeds it; replay by re-running
  /// with the same value (GRAPHIT_STRESS_SEED in the ctest binaries).
  uint64_t Seed = 0xC0FFEE;
  /// Update rounds (GRAPHIT_STRESS_ROUNDS scales this in CI stress runs).
  int Rounds = 8;
  /// Undirected updates per edge batch.
  Count BatchSize = 48;
  /// Shards of the sharded store under test.
  int NumShards = 4;
  /// true: symmetric road grid with coordinates (A* checked too);
  /// false: directed weighted R-MAT (in-adjacency, no coordinates).
  bool Symmetric = true;
  Count GridSide = 28; ///< symmetric case
  int RmatScale = 9;   ///< directed case: 2^Scale vertices
  /// Interleave vertex-insertion batches (every third round).
  bool InsertVertices = true;
  /// Interleave vertex removal/id-reuse rounds (every third round,
  /// offset from insertion): `removeVertex` on both stores against the
  /// equivalent delete batch on the reference, then `acquireVertex` must
  /// hand the freed id back on both — distances stay bit-identical to
  /// the never-removed (edge-deletes-only) reference throughout.
  bool RemoveVertices = true;
  /// Run the sharded store's per-shard folds on background threads
  /// (Options::BackgroundCompaction) so writer batches race in-flight
  /// folds and land in the replay logs — the only way the
  /// `compaction.replay` fail point sees fuzzed traffic.
  bool ShardedBackground = false;
  /// Layout axis of the {ordering x schedule} matrix.
  ReorderKind PlainReorder = ReorderKind::None;
  ReorderKind ShardedReorder = ReorderKind::None;
  /// Arm every registered fail point (support/FailPoint.h) with
  /// FaultProbability for the store-mutation phase of each round, reseeded
  /// deterministically from (Seed, round). The differential checks then
  /// prove the stores converge bit-identically to the fault-free reference
  /// *through* injected publish/lock/compaction faults. No-op unless the
  /// library was built with -DGRAPHIT_FAILPOINTS=ON.
  bool InjectFaults = false;
  double FaultProbability = 0.05;
};

/// Runs the differential harness; returns "" on success or a failure
/// description (with the seed) for the caller's ASSERT.
std::string runLiveStress(const StressConfig &Config);

/// Reads GRAPHIT_STRESS_SEED / GRAPHIT_STRESS_ROUNDS into \p Config (CI
/// runs the same ctest binaries with a random seed and a larger budget)
/// and returns a human-readable "seed=... rounds=..." banner the tests
/// print so failures are replayable from the log alone.
std::string applyStressEnv(StressConfig &Config);

} // namespace stress
} // namespace graphit

#endif // GRAPHIT_TESTS_STRESS_HARNESS_H
