//===- tests/latency_histogram_test.cpp - Latency histogram unit tests ----===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Locks down support/LatencyHistogram.h: the bucket layout (exact unit
// buckets below 16, 16 sub-buckets per power of two above), the
// percentile contract (bucket upper bound, never understating), merge
// associativity, and concurrent record + merge (exercised under the TSan
// CI job like every other test).
//
//===----------------------------------------------------------------------===//

#include "support/LatencyHistogram.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace graphit;

using H = LatencyHistogram;

TEST(LatencyHistogramBuckets, UnitBucketsAreExact) {
  for (uint64_t V = 0; V < H::kUnitBuckets; ++V) {
    EXPECT_EQ(H::bucketIndex(V), V);
    EXPECT_EQ(H::bucketLowerBound(V), V);
    EXPECT_EQ(H::bucketUpperBound(V), V);
  }
}

TEST(LatencyHistogramBuckets, BoundariesTileTheRange) {
  // Every bucket's bounds must be consistent with bucketIndex, and
  // consecutive buckets must tile the value space with no gap or overlap.
  for (size_t I = 0; I < H::kNumBuckets; ++I) {
    uint64_t Lo = H::bucketLowerBound(I);
    uint64_t Hi = H::bucketUpperBound(I);
    ASSERT_LE(Lo, Hi);
    EXPECT_EQ(H::bucketIndex(Lo), I);
    EXPECT_EQ(H::bucketIndex(Hi), I);
    if (I + 1 < H::kNumBuckets) {
      EXPECT_EQ(H::bucketLowerBound(I + 1), Hi + 1);
    }
  }
  EXPECT_EQ(H::bucketLowerBound(0), 0u);
}

TEST(LatencyHistogramBuckets, RelativeErrorBounded) {
  // Above the unit range, a bucket spans 2^(range) values starting at
  // (16+sub)<<range, so (upper - v) / v <= 1/16 for every v in the
  // documented domain (v < 2^63; larger values clamp to the last bucket).
  SplitMix64 Rng(0xB0CA);
  for (int T = 0; T < 10000; ++T) {
    uint64_t V = Rng.next() >> (1 + static_cast<unsigned>(Rng.nextInt(0, 60)));
    if (V == 0)
      continue;
    uint64_t Upper = H::bucketUpperBound(H::bucketIndex(V));
    ASSERT_GE(Upper, V);
    EXPECT_LE(Upper - V, V / H::kSubBuckets)
        << "value " << V << " upper " << Upper;
  }
}

TEST(LatencyHistogramPercentile, ExactOnSmallKnownDistribution) {
  // Ten observations 0..9 (all in exact unit buckets): percentile must be
  // the exact order statistic at rank ceil(P/100 * 10).
  H Hist;
  for (uint64_t V = 0; V < 10; ++V)
    Hist.record(V);
  EXPECT_EQ(Hist.count(), 10u);
  EXPECT_EQ(Hist.percentile(0), 0u);    // rank clamps to 1 -> smallest
  EXPECT_EQ(Hist.percentile(10), 0u);   // rank 1
  EXPECT_EQ(Hist.percentile(50), 4u);   // rank 5
  EXPECT_EQ(Hist.percentile(51), 5u);   // rank 6
  EXPECT_EQ(Hist.percentile(90), 8u);   // rank 9
  EXPECT_EQ(Hist.percentile(100), 9u);  // rank 10
  EXPECT_EQ(Hist.max(), 9u);
  EXPECT_DOUBLE_EQ(Hist.mean(), 4.5);
}

TEST(LatencyHistogramPercentile, NeverUnderstatesAndBoundsError) {
  // A known heavy-tailed distribution: percentile must come back at or
  // above the true order statistic and within the bucket's 1/16 relative
  // width of it.
  std::vector<uint64_t> Values;
  for (uint64_t I = 1; I <= 1000; ++I)
    Values.push_back(I * I); // 1 .. 1e6, skewed
  H Hist;
  for (uint64_t V : Values)
    Hist.record(V);
  for (double P : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    size_t Rank = static_cast<size_t>(P / 100.0 * Values.size() + 0.9999);
    uint64_t True = Values[Rank - 1]; // Values is sorted
    uint64_t Got = Hist.percentile(P);
    EXPECT_GE(Got, True) << "P" << P;
    EXPECT_LE(Got - True, True / H::kSubBuckets + 1) << "P" << P;
  }
}

TEST(LatencyHistogramPercentile, EmptyHistogramIsZero) {
  H Hist;
  EXPECT_EQ(Hist.count(), 0u);
  EXPECT_EQ(Hist.percentile(50), 0u);
  EXPECT_EQ(Hist.percentile(0), 0u);
  EXPECT_EQ(Hist.percentile(100), 0u);
  EXPECT_EQ(Hist.max(), 0u);
  EXPECT_DOUBLE_EQ(Hist.mean(), 0.0);
}

namespace {

void recordStream(H &Hist, uint64_t Seed, int N) {
  SplitMix64 Rng(Seed);
  for (int I = 0; I < N; ++I)
    Hist.record(static_cast<uint64_t>(Rng.nextInt(0, 1 << 20)));
}

} // namespace

TEST(LatencyHistogramSnapshot, EmptySnapshotAndEmptyWindowAreZero) {
  // A snapshot of an empty histogram — and a window between two
  // identical snapshots — must report percentile 0, never a bucket
  // upper bound.
  H Hist;
  H::Snapshot Empty = Hist.snapshot();
  EXPECT_EQ(Empty.count(), 0u);
  EXPECT_EQ(Empty.percentile(99), 0u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 0.0);

  for (uint64_t V = 0; V < 100; ++V)
    Hist.record(V);
  H::Snapshot Now = Hist.snapshot();
  H::Snapshot Win = H::windowSince(Now, Now);
  EXPECT_EQ(Win.count(), 0u);
  EXPECT_EQ(Win.sum(), 0u);
  EXPECT_EQ(Win.percentile(50), 0u);
  EXPECT_EQ(Win.percentile(99), 0u);
  EXPECT_DOUBLE_EQ(Win.mean(), 0.0);
}

TEST(LatencyHistogramSnapshot, WindowSeesOnlyTheDelta) {
  // Record two disjoint batches with a snapshot between: the window over
  // the second batch must reflect *only* those observations, while the
  // full histogram keeps the lifetime view.
  H Hist;
  for (int I = 0; I < 50; ++I)
    Hist.record(2); // first batch: all fast
  H::Snapshot Prev = Hist.snapshot();
  for (int I = 0; I < 50; ++I)
    Hist.record(10000); // second batch: all slow
  H::Snapshot Win = H::windowSince(Hist.snapshot(), Prev);

  EXPECT_EQ(Win.count(), 50u);
  EXPECT_EQ(Win.sum(), 50u * 10000u);
  // Every windowed observation is 10000, so even p1 is in its bucket.
  EXPECT_GE(Win.percentile(1), 10000u);
  EXPECT_LE(Win.percentile(99), 10000u + 10000u / H::kSubBuckets);
  // The lifetime histogram still sees the fast half at the median.
  EXPECT_EQ(Hist.percentile(50), 2u);
  EXPECT_EQ(Hist.count(), 100u);
}

TEST(LatencyHistogramMerge, MergeWithEmptyOperandIsIdentity) {
  // merge() with an empty source must leave counts, sum, max, and every
  // percentile unchanged — and merging *into* an empty histogram must
  // reproduce the source exactly.
  H Hist, Empty, Target;
  recordStream(Hist, 42, 10000);
  uint64_t Count = Hist.count(), Sum = Hist.sum(), Max = Hist.max();
  uint64_t P50 = Hist.percentile(50), P99 = Hist.percentile(99);

  Hist.merge(Empty);
  EXPECT_EQ(Hist.count(), Count);
  EXPECT_EQ(Hist.sum(), Sum);
  EXPECT_EQ(Hist.max(), Max);
  EXPECT_EQ(Hist.percentile(50), P50);
  EXPECT_EQ(Hist.percentile(99), P99);

  Target.merge(Hist);
  EXPECT_EQ(Target.count(), Count);
  EXPECT_EQ(Target.sum(), Sum);
  EXPECT_EQ(Target.max(), Max);
  for (size_t I = 0; I < H::kNumBuckets; ++I)
    ASSERT_EQ(Target.bucketCount(I), Hist.bucketCount(I));
}

TEST(LatencyHistogramMerge, MergeIsAssociativeAndOrderIndependent) {
  // (A + B) + C and A + (B + C), built from re-recorded identical
  // streams, must agree bucket-for-bucket.
  H A1, B1, C1, A2, B2, C2;
  recordStream(A1, 11, 5000);
  recordStream(B1, 22, 3000);
  recordStream(C1, 33, 7000);
  recordStream(A2, 11, 5000);
  recordStream(B2, 22, 3000);
  recordStream(C2, 33, 7000);

  A1.merge(B1); // A1 = A + B
  A1.merge(C1); // A1 = (A + B) + C
  B2.merge(C2); // B2 = B + C
  A2.merge(B2); // A2 = A + (B + C)

  EXPECT_EQ(A1.count(), A2.count());
  EXPECT_EQ(A1.sum(), A2.sum());
  EXPECT_EQ(A1.max(), A2.max());
  for (size_t I = 0; I < H::kNumBuckets; ++I)
    ASSERT_EQ(A1.bucketCount(I), A2.bucketCount(I)) << "bucket " << I;
  for (double P : {50.0, 95.0, 99.0})
    EXPECT_EQ(A1.percentile(P), A2.percentile(P));
}

TEST(LatencyHistogramConcurrent, SharedRecordThenMergeMatchesPerThread) {
  // N threads record the same streams twice: once all into one shared
  // histogram (concurrent fetch_adds), once into per-thread instances
  // merged afterwards. The two totals must be identical — and TSan must
  // see no races in either pattern.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  H Shared;
  std::vector<std::unique_ptr<H>> Private;
  for (int T = 0; T < kThreads; ++T)
    Private.push_back(std::make_unique<H>());

  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&, T] {
      recordStream(Shared, 100 + static_cast<uint64_t>(T), kPerThread);
      recordStream(*Private[static_cast<size_t>(T)],
                   100 + static_cast<uint64_t>(T), kPerThread);
    });
  for (std::thread &T : Threads)
    T.join();

  H Merged;
  for (int T = 0; T < kThreads; ++T)
    Merged.merge(*Private[static_cast<size_t>(T)]);

  EXPECT_EQ(Shared.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(Merged.count(), Shared.count());
  EXPECT_EQ(Merged.sum(), Shared.sum());
  EXPECT_EQ(Merged.max(), Shared.max());
  for (size_t I = 0; I < H::kNumBuckets; ++I)
    ASSERT_EQ(Merged.bucketCount(I), Shared.bucketCount(I));
}

TEST(LatencyHistogramConcurrent, MergeWhileRecordingIsConsistent) {
  // Merging from a histogram still being recorded into must yield a
  // consistent snapshot: merged count <= final count, and no crash/race.
  H Source, Sink;
  std::thread Recorder([&] { recordStream(Source, 7, 200000); });
  uint64_t MidCount = 0;
  {
    H Mid;
    Mid.merge(Source);
    MidCount = Mid.count();
  }
  Recorder.join();
  Sink.merge(Source);
  EXPECT_LE(MidCount, Source.count());
  EXPECT_EQ(Sink.count(), 200000u);
}
