//===- tests/runtime_util_test.cpp - Dedup and histogram unit tests -------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/Dedup.h"
#include "runtime/Histogram.h"
#include "support/Parallel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>

using namespace graphit;

//===----------------------------------------------------------------------===//
// DedupFlags
//===----------------------------------------------------------------------===//

TEST(Dedup, ClaimWinsExactlyOnce) {
  DedupFlags Flags(10);
  EXPECT_TRUE(Flags.claim(4));
  EXPECT_FALSE(Flags.claim(4));
  EXPECT_TRUE(Flags.isClaimed(4));
  EXPECT_FALSE(Flags.isClaimed(5));
}

TEST(Dedup, ReleaseReopensOnlyListed) {
  DedupFlags Flags(10);
  Flags.claim(1);
  Flags.claim(2);
  VertexId Ids[] = {1};
  Flags.release(Ids, 1);
  EXPECT_TRUE(Flags.claim(1));
  EXPECT_FALSE(Flags.claim(2));
}

TEST(Dedup, ReleaseAll) {
  DedupFlags Flags(5);
  for (VertexId V = 0; V < 5; ++V)
    Flags.claim(V);
  Flags.releaseAll();
  for (VertexId V = 0; V < 5; ++V)
    EXPECT_TRUE(Flags.claim(V));
}

TEST(Dedup, ConcurrentClaimHasOneWinnerPerVertex) {
  constexpr Count N = 64;
  DedupFlags Flags(N);
  int64_t Wins = parallelSum(0, N * 1000, [&](Count I) {
    return Flags.claim(static_cast<VertexId>(I % N)) ? 1 : 0;
  });
  EXPECT_EQ(Wins, N);
}

//===----------------------------------------------------------------------===//
// HistogramBuffer
//===----------------------------------------------------------------------===//

namespace {

class HistogramMethodTest
    : public ::testing::TestWithParam<HistogramMethod> {};

std::map<VertexId, uint32_t> toMap(const std::vector<VertexId> &Ids,
                                   const std::vector<uint32_t> &Counts) {
  std::map<VertexId, uint32_t> M;
  for (size_t I = 0; I < Ids.size(); ++I) {
    EXPECT_EQ(M.count(Ids[I]), 0u) << "duplicate id in histogram output";
    M[Ids[I]] = Counts[I];
  }
  return M;
}

} // namespace

TEST_P(HistogramMethodTest, CountsSmallInput) {
  HistogramBuffer H(10);
  std::vector<VertexId> Targets = {3, 1, 3, 3, 7, 1};
  std::vector<VertexId> Ids;
  std::vector<uint32_t> Counts;
  H.reduce(Targets.data(), static_cast<Count>(Targets.size()), GetParam(),
           Ids, Counts);
  auto M = toMap(Ids, Counts);
  EXPECT_EQ(M, (std::map<VertexId, uint32_t>{{1, 2}, {3, 3}, {7, 1}}));
}

TEST_P(HistogramMethodTest, EmptyInputProducesNothing) {
  HistogramBuffer H(4);
  std::vector<VertexId> Ids = {9};
  std::vector<uint32_t> Counts = {9};
  H.reduce(nullptr, 0, GetParam(), Ids, Counts);
  EXPECT_TRUE(Ids.empty());
  EXPECT_TRUE(Counts.empty());
}

TEST_P(HistogramMethodTest, LargeSkewedInputMatchesSerialCounts) {
  constexpr Count N = 1 << 14;
  constexpr Count M = 1 << 18;
  HistogramBuffer H(N);
  std::vector<VertexId> Targets(M);
  std::map<VertexId, uint32_t> Expected;
  SplitMix64 Rng(99);
  for (Count I = 0; I < M; ++I) {
    // Skewed: half the stream hits 64 hot vertices (the k-core situation).
    VertexId V = (Rng.next() & 1)
                     ? static_cast<VertexId>(Rng.nextInt(0, 64))
                     : static_cast<VertexId>(Rng.nextInt(0, N));
    Targets[I] = V;
    ++Expected[V];
  }
  std::vector<VertexId> Ids;
  std::vector<uint32_t> Counts;
  H.reduce(Targets.data(), M, GetParam(), Ids, Counts);
  EXPECT_EQ(toMap(Ids, Counts), Expected);
}

TEST_P(HistogramMethodTest, BackToBackRoundsAreIndependent) {
  HistogramBuffer H(8);
  std::vector<VertexId> Ids;
  std::vector<uint32_t> Counts;

  std::vector<VertexId> First = {1, 1, 2};
  H.reduce(First.data(), 3, GetParam(), Ids, Counts);
  auto M1 = toMap(Ids, Counts);
  EXPECT_EQ(M1, (std::map<VertexId, uint32_t>{{1, 2}, {2, 1}}));

  std::vector<VertexId> Second = {1, 5};
  H.reduce(Second.data(), 2, GetParam(), Ids, Counts);
  auto M2 = toMap(Ids, Counts);
  EXPECT_EQ(M2, (std::map<VertexId, uint32_t>{{1, 1}, {5, 1}}));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, HistogramMethodTest,
                         ::testing::Values(HistogramMethod::AtomicCounts,
                                           HistogramMethod::LocalTables),
                         [](const auto &Info) {
                           return Info.param ==
                                          HistogramMethod::AtomicCounts
                                      ? "AtomicCounts"
                                      : "LocalTables";
                         });
