//===- tests/graph_io_test.cpp - Unit tests for graph IO ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Builder.h"
#include "graph/Generators.h"
#include "graph/GraphIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace graphit;

namespace {

/// Creates a per-test temp path and removes it on destruction.
class TempFile {
public:
  explicit TempFile(const std::string &Suffix) {
    const ::testing::TestInfo *Info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    Path = std::filesystem::temp_directory_path() /
           (std::string("graphit_") + Info->test_suite_name() + "_" +
            Info->name() + Suffix);
  }
  ~TempFile() { std::filesystem::remove(Path); }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

} // namespace

TEST(GraphIO, EdgeListRoundTripWeighted) {
  TempFile File(".wel");
  std::vector<Edge> Edges = {{0, 1, 5}, {1, 2, 7}, {4, 0, 2}};
  writeEdgeList(File.str(), Edges, /*Weighted=*/true);
  EdgeListFile Loaded = readEdgeList(File.str());
  EXPECT_TRUE(Loaded.Weighted);
  EXPECT_EQ(Loaded.NumNodes, 5);
  ASSERT_EQ(Loaded.Edges.size(), 3u);
  EXPECT_EQ(Loaded.Edges[1].Src, 1u);
  EXPECT_EQ(Loaded.Edges[1].Dst, 2u);
  EXPECT_EQ(Loaded.Edges[1].W, 7);
}

TEST(GraphIO, EdgeListRoundTripUnweighted) {
  TempFile File(".el");
  std::vector<Edge> Edges = {{0, 1, 1}, {1, 2, 1}};
  writeEdgeList(File.str(), Edges, /*Weighted=*/false);
  EdgeListFile Loaded = readEdgeList(File.str());
  EXPECT_FALSE(Loaded.Weighted);
  ASSERT_EQ(Loaded.Edges.size(), 2u);
  EXPECT_EQ(Loaded.Edges[0].W, 1);
}

TEST(GraphIO, EdgeListSkipsCommentsAndBlankLines) {
  TempFile File(".el");
  {
    std::ofstream Out(File.str());
    Out << "# a comment\n\n0 1\n# another\n1 2\n";
  }
  EdgeListFile Loaded = readEdgeList(File.str());
  EXPECT_EQ(Loaded.Edges.size(), 2u);
}

TEST(GraphIO, DimacsRoundTrip) {
  TempFile File(".gr");
  std::vector<Edge> Edges = {{0, 1, 10}, {2, 0, 3}};
  writeDimacsGraph(File.str(), 3, Edges);
  EdgeListFile Loaded = readDimacsGraph(File.str());
  EXPECT_EQ(Loaded.NumNodes, 3);
  ASSERT_EQ(Loaded.Edges.size(), 2u);
  EXPECT_EQ(Loaded.Edges[0].Src, 0u);
  EXPECT_EQ(Loaded.Edges[0].Dst, 1u);
  EXPECT_EQ(Loaded.Edges[0].W, 10);
  EXPECT_EQ(Loaded.Edges[1].Src, 2u);
}

TEST(GraphIO, DimacsIgnoresComments) {
  TempFile File(".gr");
  {
    std::ofstream Out(File.str());
    Out << "c generated\np sp 2 1\nc arc next\na 1 2 4\n";
  }
  EdgeListFile Loaded = readDimacsGraph(File.str());
  EXPECT_EQ(Loaded.NumNodes, 2);
  ASSERT_EQ(Loaded.Edges.size(), 1u);
  EXPECT_EQ(Loaded.Edges[0].W, 4);
}

TEST(GraphIO, DimacsLongCommentLine) {
  // A comment longer than any internal read buffer used to split, with the
  // tail tripping fatalError("unrecognized DIMACS line").
  TempFile File(".gr");
  {
    std::ofstream Out(File.str());
    Out << "c " << std::string(10000, 'x') << "\n";
    Out << "p sp 3 2\n";
    Out << "c " << std::string(5000, 'a') << " 1 2 3\n";
    Out << "a 1 2 4\n";
    Out << "a 2 3 7\n";
  }
  EdgeListFile Loaded = readDimacsGraph(File.str());
  EXPECT_EQ(Loaded.NumNodes, 3);
  ASSERT_EQ(Loaded.Edges.size(), 2u);
  EXPECT_EQ(Loaded.Edges[1].Src, 1u);
  EXPECT_EQ(Loaded.Edges[1].Dst, 2u);
  EXPECT_EQ(Loaded.Edges[1].W, 7);
}

TEST(GraphIO, DimacsCarriageReturns) {
  TempFile File(".gr");
  {
    std::ofstream Out(File.str());
    Out << "c exported from a Windows tool\r\n"
        << "p sp 2 1\r\n"
        << "a 1 2 9\r\n"
        << "\r\n";
  }
  EdgeListFile Loaded = readDimacsGraph(File.str());
  EXPECT_EQ(Loaded.NumNodes, 2);
  ASSERT_EQ(Loaded.Edges.size(), 1u);
  EXPECT_EQ(Loaded.Edges[0].W, 9);
}

TEST(GraphIO, EdgeListLongCommentAndCrLf) {
  TempFile File(".el");
  {
    std::ofstream Out(File.str());
    Out << "# " << std::string(8192, 'c') << "\r\n0 1 5\r\n1 2 6\r\n";
  }
  EdgeListFile Loaded = readEdgeList(File.str());
  EXPECT_TRUE(Loaded.Weighted);
  ASSERT_EQ(Loaded.Edges.size(), 2u);
  EXPECT_EQ(Loaded.Edges[0].W, 5);
  EXPECT_EQ(Loaded.Edges[1].W, 6);
}

TEST(GraphIO, DimacsCoordinatesLongCommentAndCr) {
  TempFile File(".co");
  {
    std::ofstream Out(File.str());
    Out << "c " << std::string(9000, 'y') << "\n"
        << "v 1 1.25 -3.5\r\n"
        << "v 2 0.5 2.0\n";
  }
  Coordinates Loaded = readDimacsCoordinates(File.str(), 2);
  ASSERT_EQ(Loaded.size(), 2);
  EXPECT_DOUBLE_EQ(Loaded.X[0], 1.25);
  EXPECT_DOUBLE_EQ(Loaded.Y[0], -3.5);
  EXPECT_DOUBLE_EQ(Loaded.Y[1], 2.0);
}

TEST(GraphIO, DimacsCoordinatesRoundTrip) {
  TempFile File(".co");
  Coordinates Coords;
  Coords.X = {1.5, -2.25};
  Coords.Y = {0.0, 99.5};
  writeDimacsCoordinates(File.str(), Coords);
  Coordinates Loaded = readDimacsCoordinates(File.str(), 2);
  ASSERT_EQ(Loaded.size(), 2);
  EXPECT_DOUBLE_EQ(Loaded.X[1], -2.25);
  EXPECT_DOUBLE_EQ(Loaded.Y[1], 99.5);
}

TEST(GraphIO, BinaryRoundTripDirectedWeighted) {
  TempFile File(".bin");
  std::vector<Edge> Edges = rmatEdges(8, 4, 3);
  assignRandomWeights(Edges, 1, 100, 5);
  Graph G = GraphBuilder().build(Count{1} << 8, Edges);
  saveBinaryGraph(G, File.str());
  Graph Loaded = loadBinaryGraph(File.str());

  ASSERT_EQ(Loaded.numNodes(), G.numNodes());
  ASSERT_EQ(Loaded.numEdges(), G.numEdges());
  ASSERT_EQ(Loaded.isSymmetric(), G.isSymmetric());
  ASSERT_TRUE(Loaded.hasInEdges());
  for (VertexId V = 0; V < G.numNodes(); ++V) {
    ASSERT_EQ(Loaded.outDegree(V), G.outDegree(V));
    auto A = Loaded.outNeighbors(V).begin();
    for (WNode E : G.outNeighbors(V)) {
      WNode L = *A;
      ASSERT_EQ(L.V, E.V);
      ASSERT_EQ(L.W, E.W);
      ++A;
    }
  }
}

TEST(GraphIO, BinaryRoundTripSymmetricWithCoordinates) {
  TempFile File(".bin");
  RoadNetwork Net = roadGrid(10, 10, 17);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                        std::move(Net.Coords));
  saveBinaryGraph(G, File.str());
  Graph Loaded = loadBinaryGraph(File.str());
  EXPECT_TRUE(Loaded.isSymmetric());
  EXPECT_EQ(Loaded.numEdges(), G.numEdges());
  ASSERT_TRUE(Loaded.hasCoordinates());
  EXPECT_DOUBLE_EQ(Loaded.coordinates().X[5], G.coordinates().X[5]);
}
