//===- tests/vertex_subset_test.cpp - VertexSubset unit tests -------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/VertexSubset.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace graphit;

TEST(VertexSubset, EmptyHasNoMembers) {
  VertexSubset S = VertexSubset::empty(10);
  EXPECT_EQ(S.numNodes(), 10);
  EXPECT_EQ(S.size(), 0);
  EXPECT_TRUE(S.isEmpty());
  EXPECT_FALSE(S.contains(3));
}

TEST(VertexSubset, SingleContainsOnlyItsMember) {
  VertexSubset S = VertexSubset::single(10, 7);
  EXPECT_EQ(S.size(), 1);
  EXPECT_TRUE(S.contains(7));
  EXPECT_FALSE(S.contains(6));
}

TEST(VertexSubset, SparseToDenseConversion) {
  VertexSubset S = VertexSubset::fromSparse(8, {1, 3, 5});
  const std::vector<uint8_t> &D = S.dense();
  EXPECT_EQ(D, (std::vector<uint8_t>{0, 1, 0, 1, 0, 1, 0, 0}));
  EXPECT_EQ(S.size(), 3);
}

TEST(VertexSubset, DenseToSparseConversion) {
  VertexSubset S = VertexSubset::fromDense(6, {1, 0, 0, 1, 1, 0});
  EXPECT_EQ(S.size(), 3);
  std::vector<VertexId> Ids = S.sparse();
  std::sort(Ids.begin(), Ids.end());
  EXPECT_EQ(Ids, (std::vector<VertexId>{0, 3, 4}));
}

TEST(VertexSubset, DenseSparseRoundTripPreservesMembers) {
  VertexSubset S = VertexSubset::fromSparse(100, {99, 0, 42});
  EXPECT_TRUE(S.dense()[99]);
  EXPECT_TRUE(S.contains(0));
  EXPECT_TRUE(S.contains(42));
  EXPECT_FALSE(S.contains(41));
}

TEST(VertexSubset, ForEachVisitsAllMembers) {
  VertexSubset S = VertexSubset::fromSparse(10, {2, 4, 6});
  int64_t Sum = 0;
  S.forEach([&](VertexId V) { Sum += V; });
  EXPECT_EQ(Sum, 12);
}

TEST(VertexSubset, FromDenseCountsSize) {
  std::vector<uint8_t> Flags(1000, 0);
  for (int I = 0; I < 1000; I += 7)
    Flags[I] = 1;
  VertexSubset S = VertexSubset::fromDense(1000, std::move(Flags));
  EXPECT_EQ(S.size(), 143);
}
