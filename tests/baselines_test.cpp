//===- tests/baselines_test.cpp - Framework proxy tests -------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The GAPBS / Julienne / Galois comparison proxies must be *correct*
// implementations of their frameworks' strategies — Table 4 compares their
// performance, so their outputs must agree with the oracles.
//
//===----------------------------------------------------------------------===//

#include "baselines/GAPBSDeltaStepping.h"
#include "baselines/GaloisApprox.h"
#include "baselines/JulienneEngine.h"

#include "algorithms/Dijkstra.h"
#include "algorithms/KCore.h"
#include "algorithms/SetCover.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace graphit;

namespace {

Graph rmatWeighted(int Scale, int Deg, uint64_t Seed, Weight Hi) {
  std::vector<Edge> Edges = rmatEdges(Scale, Deg, Seed);
  assignRandomWeights(Edges, 1, Hi, Seed ^ 0x321);
  return GraphBuilder().build(Count{1} << Scale, Edges);
}

Graph roadWithCoords(Count Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

Graph symmetricRmat(int Scale, int Deg, uint64_t Seed) {
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = false;
  return GraphBuilder(Options).build(Count{1} << Scale,
                                     rmatEdges(Scale, Deg, Seed));
}

} // namespace

//===----------------------------------------------------------------------===//
// GAPBS proxy
//===----------------------------------------------------------------------===//

TEST(GAPBSProxy, SSSPMatchesDijkstraAcrossDeltas) {
  Graph G = rmatWeighted(11, 8, 3, 600);
  std::vector<Priority> Expected = dijkstraSSSP(G, 7);
  for (int64_t Delta : {1, 8, 2048})
    EXPECT_EQ(gapbsSSSP(G, 7, Delta).Dist, Expected) << "delta " << Delta;
}

TEST(GAPBSProxy, SSSPOnRoadGrid) {
  Graph G = roadWithCoords(35, 5);
  EXPECT_EQ(gapbsSSSP(G, 3, 8192).Dist, dijkstraSSSP(G, 3));
}

TEST(GAPBSProxy, WBFSMatches) {
  std::vector<Edge> Edges = rmatEdges(10, 8, 6);
  assignRandomWeights(Edges, 1, 10, 1);
  Graph G = GraphBuilder().build(Count{1} << 10, Edges);
  EXPECT_EQ(gapbsWBFS(G, 0).Dist, dijkstraSSSP(G, 0));
}

TEST(GAPBSProxy, PPSPAndAStarMatchOracle) {
  Graph G = roadWithCoords(30, 8);
  SplitMix64 Rng(11);
  for (int Trial = 0; Trial < 5; ++Trial) {
    auto S = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto T = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Priority Want = dijkstraPPSP(G, S, T);
    EXPECT_EQ(gapbsPPSP(G, S, T, 2048).Dist, Want);
    EXPECT_EQ(gapbsAStar(G, S, T, 2048).Dist, Want);
  }
}

TEST(GAPBSProxy, HasNoFusedRounds) {
  Graph G = roadWithCoords(40, 2);
  SSSPResult R = gapbsSSSP(G, 0, 8192);
  EXPECT_EQ(R.Stats.FusedRounds, 0);
  EXPECT_GT(R.Stats.Rounds, 0);
}

//===----------------------------------------------------------------------===//
// Julienne proxy
//===----------------------------------------------------------------------===//

TEST(JulienneProxy, SSSPMatchesDijkstra) {
  Graph G = rmatWeighted(11, 8, 13, 900);
  EXPECT_EQ(julienneSSSP(G, 2, 16).Dist, dijkstraSSSP(G, 2));
}

TEST(JulienneProxy, SSSPOnRoadGrid) {
  Graph G = roadWithCoords(30, 14);
  EXPECT_EQ(julienneSSSP(G, 1, 8192).Dist, dijkstraSSSP(G, 1));
}

TEST(JulienneProxy, WBFSMatches) {
  std::vector<Edge> Edges = rmatEdges(10, 8, 15);
  assignRandomWeights(Edges, 1, 10, 2);
  Graph G = GraphBuilder().build(Count{1} << 10, Edges);
  EXPECT_EQ(julienneWBFS(G, 5).Dist, dijkstraSSSP(G, 5));
}

TEST(JulienneProxy, PPSPAndAStarMatchOracle) {
  Graph G = roadWithCoords(25, 16);
  SplitMix64 Rng(17);
  for (int Trial = 0; Trial < 5; ++Trial) {
    auto S = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto T = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Priority Want = dijkstraPPSP(G, S, T);
    EXPECT_EQ(juliennePPSP(G, S, T, 2048).Dist, Want);
    EXPECT_EQ(julienneAStar(G, S, T, 2048).Dist, Want);
  }
}

TEST(JulienneProxy, KCoreMatchesSerial) {
  Graph G = symmetricRmat(11, 8, 18);
  EXPECT_EQ(julienneKCore(G).Coreness, kCoreSerial(G));
}

TEST(JulienneProxy, SetCoverIsValidAndNearGreedy) {
  Graph G = symmetricRmat(10, 8, 19);
  SetCoverResult Par = julienneSetCover(G);
  SetCoverResult Ser = setCoverSerial(G);
  EXPECT_TRUE(isValidCover(G, Par.ChosenSets));
  EXPECT_LE(Par.ChosenSets.size(), Ser.ChosenSets.size() * 14 / 10 + 5);
}

//===----------------------------------------------------------------------===//
// Galois proxy
//===----------------------------------------------------------------------===//

TEST(GaloisProxy, SSSPMatchesDijkstra) {
  Graph G = rmatWeighted(11, 8, 23, 700);
  EXPECT_EQ(galoisSSSP(G, 9, 16).Dist, dijkstraSSSP(G, 9));
}

TEST(GaloisProxy, SSSPOnRoadGrid) {
  Graph G = roadWithCoords(30, 24);
  EXPECT_EQ(galoisSSSP(G, 0, 8192).Dist, dijkstraSSSP(G, 0));
}

TEST(GaloisProxy, SSSPWithTinyDeltaStillExact) {
  // Approximate ordering must still converge to exact distances.
  Graph G = rmatWeighted(9, 6, 25, 100);
  EXPECT_EQ(galoisSSSP(G, 1, 1).Dist, dijkstraSSSP(G, 1));
}

TEST(GaloisProxy, PPSPAndAStarMatchOracle) {
  Graph G = roadWithCoords(25, 26);
  SplitMix64 Rng(27);
  for (int Trial = 0; Trial < 5; ++Trial) {
    auto S = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    auto T = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    Priority Want = dijkstraPPSP(G, S, T);
    EXPECT_EQ(galoisPPSP(G, S, T, 2048).Dist, Want);
    EXPECT_EQ(galoisAStar(G, S, T, 2048).Dist, Want);
  }
}

TEST(GaloisProxy, ReportsAsyncExecution) {
  Graph G = rmatWeighted(10, 8, 28, 100);
  SSSPResult R = galoisSSSP(G, 0, 8);
  EXPECT_EQ(R.Stats.Rounds, 0) << "async engine has no global rounds";
  EXPECT_GT(R.Stats.VerticesProcessed, 0);
}

TEST(GaloisProxy, RepeatedRunsAreConsistent) {
  Graph G = rmatWeighted(10, 8, 29, 300);
  std::vector<Priority> First = galoisSSSP(G, 4, 32).Dist;
  for (int Trial = 0; Trial < 3; ++Trial)
    EXPECT_EQ(galoisSSSP(G, 4, 32).Dist, First);
}
