//===- tests/bucket_model_test.cpp - Model-based bucket queue tests -------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Property test: LazyBucketQueue against a trivially correct reference
// model (a map from vertex to key), under random monotone operation
// sequences of the kind ordered algorithms produce — interleaved bulk
// updates, same-bucket re-insertions, and extractions.
//
//===----------------------------------------------------------------------===//

#include "runtime/LazyBucketQueue.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

using namespace graphit;

namespace {

/// Reference model: exact key per queued vertex.
class ModelQueue {
public:
  explicit ModelQueue(PriorityOrder Ord) : Order(Ord) {}

  void update(VertexId V, int64_t Key) { Keys[V] = Key; }

  /// Extracts the next bucket: (key, sorted members); empty when done.
  std::pair<int64_t, std::vector<VertexId>> next() {
    if (Keys.empty())
      return {0, {}};
    int64_t Best = Keys.begin()->second;
    for (const auto &[V, K] : Keys)
      if (Order == PriorityOrder::LowerFirst ? K < Best : K > Best)
        Best = K;
    std::vector<VertexId> Members;
    for (const auto &[V, K] : Keys)
      if (K == Best)
        Members.push_back(V);
    for (VertexId V : Members)
      Keys.erase(V);
    std::sort(Members.begin(), Members.end());
    return {Best, Members};
  }

  bool empty() const { return Keys.empty(); }

private:
  PriorityOrder Order;
  std::map<VertexId, int64_t> Keys;
};

struct ModelCase {
  const char *Name;
  PriorityOrder Order;
  int NumOpenBuckets;
  int64_t KeyRange;
};

class BucketModelTest : public ::testing::TestWithParam<ModelCase> {};

} // namespace

TEST_P(BucketModelTest, RandomMonotoneWorkloadMatchesModel) {
  const ModelCase &C = GetParam();
  constexpr Count N = 512;
  SplitMix64 Rng(hash64(C.KeyRange) ^ C.NumOpenBuckets);

  LazyBucketQueue Q(N, C.NumOpenBuckets, C.Order);
  ModelQueue Model(C.Order);

  // Monotone key generator: HigherFirst keys shrink, LowerFirst grow,
  // relative to the current frontier key (like real priority updates).
  int64_t Frontier = C.Order == PriorityOrder::LowerFirst ? 0 : C.KeyRange;
  auto FreshKey = [&]() {
    int64_t Offset = Rng.nextInt(0, C.KeyRange / 4 + 2);
    return C.Order == PriorityOrder::LowerFirst ? Frontier + Offset
                                                : Frontier - Offset;
  };

  // Seed.
  for (VertexId V = 0; V < 64; ++V) {
    int64_t Key = FreshKey();
    Q.insert(V, Key);
    Model.update(V, Key);
  }

  int Extractions = 0;
  while (true) {
    bool QHas = Q.nextBucket();
    auto [MKey, MMembers] = Model.next();
    if (!QHas) {
      EXPECT_TRUE(MMembers.empty()) << "model still has work";
      break;
    }
    ASSERT_FALSE(MMembers.empty()) << "queue has phantom work";
    EXPECT_EQ(Q.currentKey(), MKey);
    std::vector<VertexId> QMembers = Q.currentBucket();
    std::sort(QMembers.begin(), QMembers.end());
    ASSERT_EQ(QMembers, MMembers) << "bucket " << MKey;
    Frontier = MKey;
    ++Extractions;

    // Random follow-up updates at-or-after the current bucket, hitting
    // both extracted vertices (re-insertion) and queued ones (moves).
    // Injection stops after 60 extractions so the workload drains.
    if (Extractions % 3 == 0 && Extractions <= 60) {
      std::vector<VertexId> Ids;
      std::vector<int64_t> Keys;
      int Updates = static_cast<int>(Rng.nextInt(1, 40));
      std::vector<uint8_t> Seen(N, 0);
      for (int U = 0; U < Updates; ++U) {
        auto V = static_cast<VertexId>(Rng.nextInt(0, N));
        if (Seen[V])
          continue; // one final update per vertex per round
        Seen[V] = 1;
        int64_t Key = FreshKey();
        Ids.push_back(V);
        Keys.push_back(Key);
        Model.update(V, Key);
      }
      Q.updateBuckets(Ids.data(), Keys.data(),
                      static_cast<Count>(Ids.size()));
    }
    ASSERT_LT(Extractions, 100000) << "runaway test";
  }
  EXPECT_GT(Extractions, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, BucketModelTest,
    ::testing::Values(
        ModelCase{"LowerSmallWindow", PriorityOrder::LowerFirst, 2, 100},
        ModelCase{"LowerMediumWindow", PriorityOrder::LowerFirst, 16,
                  1000},
        ModelCase{"LowerWideKeys", PriorityOrder::LowerFirst, 8, 100000},
        ModelCase{"HigherSmallWindow", PriorityOrder::HigherFirst, 2,
                  100},
        ModelCase{"HigherMediumWindow", PriorityOrder::HigherFirst, 16,
                  1000},
        ModelCase{"HigherWideKeys", PriorityOrder::HigherFirst, 8,
                  100000}),
    [](const auto &Info) { return Info.param.Name; });
