//===- tests/lazy_bucket_queue_test.cpp - LazyBucketQueue unit tests ------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/LazyBucketQueue.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

using namespace graphit;

namespace {

std::vector<VertexId> sorted(std::vector<VertexId> V) {
  std::sort(V.begin(), V.end());
  return V;
}

} // namespace

TEST(LazyBucketQueue, EmptyQueueIsFinished) {
  LazyBucketQueue Q(10, 4, PriorityOrder::LowerFirst);
  EXPECT_FALSE(Q.nextBucket());
  EXPECT_EQ(Q.pendingEstimate(), 0);
}

TEST(LazyBucketQueue, SingleInsertExtract) {
  LazyBucketQueue Q(10, 4, PriorityOrder::LowerFirst);
  Q.insert(3, 7);
  EXPECT_EQ(Q.keyOf(3), 7);
  EXPECT_EQ(Q.pendingEstimate(), 1);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), 7);
  EXPECT_EQ(Q.currentBucket(), (std::vector<VertexId>{3}));
  EXPECT_EQ(Q.keyOf(3), LazyBucketQueue::kNoBucket);
  EXPECT_FALSE(Q.nextBucket());
}

TEST(LazyBucketQueue, ExtractsInAscendingKeyOrder) {
  LazyBucketQueue Q(100, 8, PriorityOrder::LowerFirst);
  Q.insert(0, 5);
  Q.insert(1, 2);
  Q.insert(2, 9);
  Q.insert(3, 2);
  std::vector<int64_t> Keys;
  while (Q.nextBucket())
    Keys.push_back(Q.currentKey());
  EXPECT_EQ(Keys, (std::vector<int64_t>{2, 5, 9}));
}

TEST(LazyBucketQueue, HigherFirstExtractsDescending) {
  LazyBucketQueue Q(100, 8, PriorityOrder::HigherFirst);
  Q.insert(0, 5);
  Q.insert(1, 2);
  Q.insert(2, 9);
  std::vector<int64_t> Keys;
  while (Q.nextBucket())
    Keys.push_back(Q.currentKey());
  EXPECT_EQ(Keys, (std::vector<int64_t>{9, 5, 2}));
}

TEST(LazyBucketQueue, GroupsEqualKeys) {
  LazyBucketQueue Q(10, 4, PriorityOrder::LowerFirst);
  Q.insert(1, 3);
  Q.insert(4, 3);
  Q.insert(7, 3);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(sorted(Q.currentBucket()), (std::vector<VertexId>{1, 4, 7}));
  EXPECT_FALSE(Q.nextBucket());
}

TEST(LazyBucketQueue, OverflowBucketRebucketsBeyondWindow) {
  // Window of 2 open buckets; keys far apart force overflow handling.
  LazyBucketQueue Q(10, 2, PriorityOrder::LowerFirst);
  Q.insert(0, 100);
  Q.insert(1, 5);
  Q.insert(2, 1000);
  std::vector<int64_t> Keys;
  while (Q.nextBucket())
    Keys.push_back(Q.currentKey());
  EXPECT_EQ(Keys, (std::vector<int64_t>{5, 100, 1000}));
  EXPECT_GE(Q.overflowRebuckets(), 2);
}

TEST(LazyBucketQueue, UpdateMovesVertexToNewBucket) {
  LazyBucketQueue Q(10, 8, PriorityOrder::LowerFirst);
  Q.insert(1, 6);
  Q.insert(2, 4);
  // Lower vertex 1's key before anything is extracted.
  VertexId Ids[] = {1};
  int64_t Keys[] = {4};
  Q.updateBuckets(Ids, Keys, 1);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), 4);
  EXPECT_EQ(sorted(Q.currentBucket()), (std::vector<VertexId>{1, 2}));
  // The stale entry for vertex 1 at key 6 must not resurface.
  EXPECT_FALSE(Q.nextBucket());
}

TEST(LazyBucketQueue, ReinsertionIntoCurrentBucketIsProcessedAgain) {
  // The delta-stepping pattern: processing bucket k re-inserts a vertex
  // into bucket k, which must be processed in a following round.
  LazyBucketQueue Q(10, 4, PriorityOrder::LowerFirst);
  Q.insert(1, 2);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), 2);
  Q.insert(5, 2); // same bucket as current
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), 2);
  EXPECT_EQ(Q.currentBucket(), (std::vector<VertexId>{5}));
}

TEST(LazyBucketQueue, PendingEstimateTracksContents) {
  LazyBucketQueue Q(10, 4, PriorityOrder::LowerFirst);
  Q.insert(1, 1);
  Q.insert(2, 2);
  EXPECT_EQ(Q.pendingEstimate(), 2);
  // Moving vertex 1 does not change the count.
  VertexId Ids[] = {1};
  int64_t Keys[] = {3};
  Q.updateBuckets(Ids, Keys, 1);
  EXPECT_EQ(Q.pendingEstimate(), 2);
  ASSERT_TRUE(Q.nextBucket()); // extracts {2} at key 2
  EXPECT_EQ(Q.pendingEstimate(), 1);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.pendingEstimate(), 0);
}

TEST(LazyBucketQueue, BulkParallelUpdateMatchesSerialSemantics) {
  constexpr Count N = 1 << 16;
  LazyBucketQueue Q(N, 128, PriorityOrder::LowerFirst);
  std::vector<VertexId> Ids(N);
  std::vector<int64_t> Keys(N);
  std::map<int64_t, std::set<VertexId>> Expected;
  for (Count I = 0; I < N; ++I) {
    Ids[I] = static_cast<VertexId>(I);
    Keys[I] = static_cast<int64_t>(hash64(I) % 300); // spans > window
    Expected[Keys[I]].insert(Ids[I]);
  }
  Q.updateBuckets(Ids.data(), Keys.data(), N);
  EXPECT_EQ(Q.pendingEstimate(), N);

  auto It = Expected.begin();
  while (Q.nextBucket()) {
    ASSERT_NE(It, Expected.end());
    EXPECT_EQ(Q.currentKey(), It->first);
    std::vector<VertexId> Got = sorted(Q.currentBucket());
    std::vector<VertexId> Want(It->second.begin(), It->second.end());
    EXPECT_EQ(Got, Want);
    ++It;
  }
  EXPECT_EQ(It, Expected.end());
}

TEST(LazyBucketQueue, DuplicateUpdatesAcrossCallsExtractOnce) {
  LazyBucketQueue Q(10, 4, PriorityOrder::LowerFirst);
  Q.insert(1, 3);
  // Re-insert the same vertex at a new key twice (two rounds' worth of
  // stale entries), then at its final key.
  VertexId Ids[] = {1};
  int64_t K5[] = {5};
  int64_t K4[] = {4};
  Q.updateBuckets(Ids, K5, 1);
  Q.updateBuckets(Ids, K4, 1);
  int Extractions = 0;
  while (Q.nextBucket())
    Extractions += static_cast<int>(Q.currentBucket().size());
  EXPECT_EQ(Extractions, 1);
}

TEST(LazyBucketQueue, NegativeKeysSupported) {
  LazyBucketQueue Q(10, 4, PriorityOrder::LowerFirst);
  Q.insert(1, -5);
  Q.insert(2, -1);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), -5);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), -1);
}

TEST(LazyBucketQueue, ManySparseKeysStressOverflow) {
  // Keys spaced wider than the window exercise repeated re-bucketing.
  LazyBucketQueue Q(1000, 4, PriorityOrder::LowerFirst);
  for (VertexId V = 0; V < 100; ++V)
    Q.insert(V, static_cast<int64_t>(V) * 1000);
  int64_t Prev = -1;
  Count Seen = 0;
  while (Q.nextBucket()) {
    EXPECT_GT(Q.currentKey(), Prev);
    Prev = Q.currentKey();
    Seen += static_cast<Count>(Q.currentBucket().size());
  }
  EXPECT_EQ(Seen, 100);
}

TEST(LazyBucketQueue, HigherFirstBulkCrossesOverflowRebucket) {
  // Bulk-parallel sized input (beyond the serial cutoff) under HigherFirst
  // whose keys span many windows: extraction must walk keys strictly
  // descending across repeated overflow re-buckets, and the parallel
  // winner-packing must lose nobody.
  constexpr Count N = 1 << 15;
  LazyBucketQueue Q(N, 4, PriorityOrder::HigherFirst);
  std::vector<VertexId> Ids(static_cast<size_t>(N));
  std::vector<int64_t> Keys(static_cast<size_t>(N));
  std::map<int64_t, Count> Expected;
  for (Count I = 0; I < N; ++I) {
    Ids[I] = static_cast<VertexId>(I);
    Keys[I] = static_cast<int64_t>(hash64(I) % 4000); // >> window of 4
    ++Expected[Keys[I]];
  }
  Q.updateBuckets(Ids.data(), Keys.data(), N);
  EXPECT_EQ(Q.pendingEstimate(), N);

  int64_t Prev = std::numeric_limits<int64_t>::max();
  Count Seen = 0;
  while (Q.nextBucket()) {
    EXPECT_LT(Q.currentKey(), Prev);
    Prev = Q.currentKey();
    ASSERT_EQ(static_cast<Count>(Q.currentBucket().size()),
              Expected.at(Q.currentKey()));
    Seen += static_cast<Count>(Q.currentBucket().size());
  }
  EXPECT_EQ(Seen, N);
  EXPECT_GT(Q.overflowRebuckets(), 100);
  EXPECT_EQ(Q.pendingEstimate(), 0);
}

TEST(LazyBucketQueue, FusedKeyFunctionMatchesArrayInterface) {
  // updateBucketsWith must behave exactly like updateBuckets with a
  // materialized key array, across both the serial and parallel paths.
  for (Count N : {Count{64}, Count{1} << 14}) {
    LazyBucketQueue A(N, 8, PriorityOrder::LowerFirst);
    LazyBucketQueue B(N, 8, PriorityOrder::LowerFirst);
    std::vector<VertexId> Ids(static_cast<size_t>(N));
    std::vector<int64_t> Keys(static_cast<size_t>(N));
    for (Count I = 0; I < N; ++I) {
      Ids[I] = static_cast<VertexId>(I);
      Keys[I] = static_cast<int64_t>(hash64(I * 7) % 500);
    }
    A.updateBuckets(Ids.data(), Keys.data(), N);
    B.updateBucketsWith(Ids.data(), N,
                        [&](Count, VertexId V) {
                          return static_cast<int64_t>(hash64(V * 7) % 500);
                        });
    while (true) {
      bool MoreA = A.nextBucket(), MoreB = B.nextBucket();
      ASSERT_EQ(MoreA, MoreB);
      if (!MoreA)
        break;
      EXPECT_EQ(A.currentKey(), B.currentKey());
      EXPECT_EQ(sorted(A.currentBucket()), sorted(B.currentBucket()));
    }
  }
}

TEST(LazyBucketQueue, PendingStaysExactWithDuplicatesInBulkUpdate) {
  // A vertex appearing twice in one bulk-parallel call violates the
  // at-most-once contract, but the atomic fresh-count must still keep
  // pendingEstimate consistent with extraction claims (the queue must
  // still report finished after draining).
  constexpr Count M = 1 << 14;
  constexpr Count Distinct = 1 << 10;
  LazyBucketQueue Q(Distinct, 16, PriorityOrder::LowerFirst);
  std::vector<VertexId> Ids(static_cast<size_t>(M));
  std::vector<int64_t> Keys(static_cast<size_t>(M));
  for (Count I = 0; I < M; ++I) {
    Ids[I] = static_cast<VertexId>(I % Distinct); // each vertex 16 times
    // Conflicting keys per duplicate: one nondeterministic last write wins
    // and every other copy must be rejected as stale at extraction.
    Keys[I] = static_cast<int64_t>(hash64(I) % 97);
  }
  Q.updateBuckets(Ids.data(), Keys.data(), M);
  EXPECT_EQ(Q.pendingEstimate(), Distinct);
  Count Seen = 0;
  while (Q.nextBucket())
    Seen += static_cast<Count>(Q.currentBucket().size());
  EXPECT_EQ(Seen, Distinct);
  EXPECT_EQ(Q.pendingEstimate(), 0);
}

//===----------------------------------------------------------------------===//
// LambdaBucketQueue (Julienne's original interface)
//===----------------------------------------------------------------------===//

TEST(LambdaBucketQueue, InsertAllUsesKeyFunction) {
  std::vector<int64_t> Priorities = {4, LazyBucketQueue::kNoBucket, 2, 4};
  LambdaBucketQueue Q(4, 8, PriorityOrder::LowerFirst,
                      [&](VertexId V) { return Priorities[V]; });
  Q.insertAll();
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), 2);
  EXPECT_EQ(Q.currentBucket(), (std::vector<VertexId>{2}));
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), 4);
  EXPECT_EQ(sorted(Q.currentBucket()), (std::vector<VertexId>{0, 3}));
}

TEST(LambdaBucketQueue, UpdateRecomputesThroughLambda) {
  std::vector<int64_t> Priorities = {5, 6};
  LambdaBucketQueue Q(2, 8, PriorityOrder::LowerFirst,
                      [&](VertexId V) { return Priorities[V]; });
  Q.insertAll();
  Priorities[1] = 5;
  VertexId Ids[] = {1};
  Q.updateBuckets(Ids, 1);
  ASSERT_TRUE(Q.nextBucket());
  EXPECT_EQ(Q.currentKey(), 5);
  EXPECT_EQ(sorted(Q.currentBucket()), (std::vector<VertexId>{0, 1}));
}
