//===- tests/priority_queue_test.cpp - PriorityQueue facade tests ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Drives the Table 1 programming model exactly as the paper's Fig. 3 SSSP
// does, and checks the operators' semantics in isolation.
//
//===----------------------------------------------------------------------===//

#include "core/PriorityQueue.h"

#include "graph/Builder.h"
#include "graph/Generators.h"

#include <gtest/gtest.h>

#include <queue>

using namespace graphit;

namespace {

std::vector<Priority> dijkstraRef(const Graph &G, VertexId Src) {
  std::vector<Priority> Dist(G.numNodes(), kInfiniteDistance);
  Dist[Src] = 0;
  using Item = std::pair<Priority, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> PQ;
  PQ.push({0, Src});
  while (!PQ.empty()) {
    auto [D, U] = PQ.top();
    PQ.pop();
    if (D > Dist[U])
      continue;
    for (WNode E : G.outNeighbors(U))
      if (D + E.W < Dist[E.V]) {
        Dist[E.V] = D + E.W;
        PQ.push({Dist[E.V], E.V});
      }
  }
  return Dist;
}

/// Fig. 3, line for line: the while/dequeue/applyUpdatePriority pattern.
std::vector<Priority> fig3SSSP(const Graph &G, VertexId Start,
                               const Schedule &S) {
  std::vector<Priority> Dist(G.numNodes(), kInfiniteDistance);
  Dist[Start] = 0;
  PriorityQueue PQ(/*AllowCoarsening=*/true, PriorityOrder::LowerFirst,
                   Dist, S, Start);
  while (!PQ.finished()) {
    VertexSubset Bucket = PQ.dequeueReadySet();
    applyUpdatePriority(G, Bucket,
                        [&](VertexId Src, VertexId Dst, Weight W) {
                          Priority NewDist = Dist[Src] + W;
                          PQ.updatePriorityMin(Dst, NewDist);
                        });
  }
  return Dist;
}

} // namespace

TEST(PriorityQueueOps, UpdatePriorityMinOnlyLowers) {
  std::vector<Priority> Prio = {10, 20};
  Schedule S;
  PriorityQueue PQ(false, PriorityOrder::LowerFirst, Prio, S, 0);
  PQ.updatePriorityMin(1, 25);
  EXPECT_EQ(Prio[1], 20);
  PQ.updatePriorityMin(1, 5);
  EXPECT_EQ(Prio[1], 5);
}

TEST(PriorityQueueOps, UpdatePriorityMinFromNull) {
  std::vector<Priority> Prio = {0, kNullPriority};
  Schedule S;
  PriorityQueue PQ(false, PriorityOrder::LowerFirst, Prio, S, 0);
  PQ.updatePriorityMin(1, 42);
  EXPECT_EQ(Prio[1], 42);
}

TEST(PriorityQueueOps, UpdatePriorityMaxOnlyRaises) {
  std::vector<Priority> Prio = {5, 7};
  Schedule S;
  PriorityQueue PQ(false, PriorityOrder::HigherFirst, Prio, S);
  PQ.updatePriorityMax(0, 3);
  EXPECT_EQ(Prio[0], 5);
  PQ.updatePriorityMax(0, 9);
  EXPECT_EQ(Prio[0], 9);
}

TEST(PriorityQueueOps, UpdatePrioritySumClampsAtThreshold) {
  std::vector<Priority> Prio = {10};
  Schedule S;
  PriorityQueue PQ(false, PriorityOrder::LowerFirst, Prio, S);
  PQ.updatePrioritySum(0, -3, 0);
  EXPECT_EQ(Prio[0], 7);
  PQ.updatePrioritySum(0, -100, 5); // k-core style clamp at k=5
  EXPECT_EQ(Prio[0], 5);
}

TEST(PriorityQueueOps, CoarseningDividesPriorities) {
  std::vector<Priority> Prio = {0};
  Schedule S;
  S.Delta = 8;
  PriorityQueue Coarse(true, PriorityOrder::LowerFirst, Prio, S, 0);
  EXPECT_EQ(Coarse.delta(), 8);
  EXPECT_EQ(Coarse.coarsen(17), 2);
  PriorityQueue Fine(false, PriorityOrder::LowerFirst, Prio, S, 0);
  EXPECT_EQ(Fine.delta(), 1) << "coarsening disallowed ignores Delta";
}

TEST(PriorityQueueOps, DequeueGroupsByCoarsenedBucket) {
  std::vector<Priority> Prio = {0, 3, 9, 11, kNullPriority};
  Schedule S;
  S.Delta = 4; // buckets: [0,4) -> {0,1}, [8,12) -> {2,3}
  PriorityQueue PQ(true, PriorityOrder::LowerFirst, Prio, S);
  ASSERT_FALSE(PQ.finished());

  VertexSubset B1 = PQ.dequeueReadySet();
  EXPECT_EQ(B1.size(), 2);
  EXPECT_TRUE(B1.contains(0));
  EXPECT_TRUE(B1.contains(1));
  EXPECT_EQ(PQ.getCurrentPriority(), 0);

  VertexSubset B2 = PQ.dequeueReadySet();
  EXPECT_EQ(B2.size(), 2);
  EXPECT_TRUE(B2.contains(2));
  EXPECT_TRUE(B2.contains(3));
  EXPECT_EQ(PQ.getCurrentPriority(), 8);

  EXPECT_TRUE(PQ.finished());
}

TEST(PriorityQueueOps, NullPriorityVerticesAreNotEnqueued) {
  std::vector<Priority> Prio = {kNullPriority, 1, kNullPriority};
  Schedule S;
  PriorityQueue PQ(false, PriorityOrder::LowerFirst, Prio, S);
  VertexSubset B = PQ.dequeueReadySet();
  EXPECT_EQ(B.size(), 1);
  EXPECT_TRUE(B.contains(1));
  EXPECT_TRUE(PQ.finished());
}

TEST(PriorityQueueOps, FinishedVertexTracksCurrentBucket) {
  std::vector<Priority> Prio = {0, 5, 100};
  Schedule S;
  S.Delta = 1;
  PriorityQueue PQ(true, PriorityOrder::LowerFirst, Prio, S);
  PQ.dequeueReadySet(); // bucket 0
  EXPECT_TRUE(PQ.finishedVertex(0));
  EXPECT_FALSE(PQ.finishedVertex(1));
  PQ.dequeueReadySet(); // bucket 5
  EXPECT_TRUE(PQ.finishedVertex(1));
  EXPECT_FALSE(PQ.finishedVertex(2));
}

TEST(PriorityQueueOps, HigherFirstDequeuesDescending) {
  std::vector<Priority> Prio = {2, 9, 5};
  Schedule S;
  PriorityQueue PQ(false, PriorityOrder::HigherFirst, Prio, S);
  EXPECT_TRUE(PQ.dequeueReadySet().contains(1));
  EXPECT_EQ(PQ.getCurrentPriority(), 9);
  EXPECT_TRUE(PQ.dequeueReadySet().contains(2));
  EXPECT_TRUE(PQ.dequeueReadySet().contains(0));
  EXPECT_TRUE(PQ.finished());
}

TEST(PriorityQueueOps, RoundsCountDequeues) {
  std::vector<Priority> Prio = {1, 2};
  Schedule S;
  PriorityQueue PQ(false, PriorityOrder::LowerFirst, Prio, S);
  EXPECT_EQ(PQ.rounds(), 0);
  PQ.dequeueReadySet();
  PQ.dequeueReadySet();
  EXPECT_EQ(PQ.rounds(), 2);
}

//===----------------------------------------------------------------------===//
// End-to-end: the Fig. 3 programming pattern
//===----------------------------------------------------------------------===//

class Fig3Test : public ::testing::TestWithParam<int64_t> {};

TEST_P(Fig3Test, SSSPMatchesDijkstraOnRmat) {
  std::vector<Edge> Edges = rmatEdges(11, 8, 13);
  assignRandomWeights(Edges, 1, 50, 4);
  Graph G = GraphBuilder().build(Count{1} << 11, Edges);
  Schedule S;
  S.Delta = GetParam();
  EXPECT_EQ(fig3SSSP(G, 9, S), dijkstraRef(G, 9));
}

TEST_P(Fig3Test, SSSPMatchesDijkstraOnRoadGrid) {
  RoadNetwork Net = roadGrid(25, 25, 3);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
  Schedule S;
  S.Delta = GetParam();
  EXPECT_EQ(fig3SSSP(G, 7, S), dijkstraRef(G, 7));
}

INSTANTIATE_TEST_SUITE_P(Deltas, Fig3Test,
                         ::testing::Values(1, 2, 16, 4096),
                         [](const auto &Info) {
                           return "Delta" + std::to_string(Info.param);
                         });
