//===- tests/stress_harness.cpp - Shared randomized stress harness --------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "stress_harness.h"

#include "algorithms/IncrementalSSSP.h"
#include "algorithms/PPSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"
#include "support/FailPoint.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <tuple>

using namespace graphit;
using namespace graphit::service;
using namespace graphit::stress;

namespace {

Graph makeBase(const StressConfig &C) {
  if (C.Symmetric) {
    RoadNetwork Net = roadGrid(C.GridSide, C.GridSide, 4242);
    BuildOptions O;
    O.Symmetrize = true;
    return GraphBuilder(O).build(Net.NumNodes, Net.Edges,
                                 std::move(Net.Coords));
  }
  std::vector<Edge> Edges = rmatEdges(C.RmatScale, 8, 321);
  assignRandomWeights(Edges, 1, 64, 11);
  return GraphBuilder().build(Count{1} << C.RmatScale, Edges);
}

std::vector<AppliedUpdate> toExternal(std::vector<AppliedUpdate> A,
                                      const VertexMapping &M) {
  for (AppliedUpdate &U : A) {
    U.Src = M.toExternal(U.Src);
    U.Dst = M.toExternal(U.Dst);
  }
  return A;
}

std::string describe(const AppliedUpdate &U) {
  std::ostringstream Os;
  Os << U.Src << "->" << U.Dst << " (" << U.OldW << " => " << U.NewW << ")";
  return Os.str();
}

} // namespace

std::string graphit::stress::applyStressEnv(StressConfig &C) {
  if (const char *S = std::getenv("GRAPHIT_STRESS_SEED"))
    C.Seed = std::strtoull(S, nullptr, 0);
  if (const char *R = std::getenv("GRAPHIT_STRESS_ROUNDS"))
    C.Rounds = std::max(1, std::atoi(R));
  if (const char *F = std::getenv("GRAPHIT_STRESS_FAULTS")) {
    // Probability per fail-point evaluation; any value > 0 arms injection
    // (meaningful only in -DGRAPHIT_FAILPOINTS=ON builds).
    C.FaultProbability = std::atof(F);
    C.InjectFaults = C.FaultProbability > 0.0;
  }
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "stress config: seed=0x%llx rounds=%d batch=%lld shards=%d "
                "%s insert=%d faults=%.3f",
                static_cast<unsigned long long>(C.Seed), C.Rounds,
                static_cast<long long>(C.BatchSize), C.NumShards,
                C.Symmetric ? "road" : "rmat", C.InsertVertices ? 1 : 0,
                C.InjectFaults ? C.FaultProbability : 0.0);
  return Buf;
}

std::string graphit::stress::runLiveStress(const StressConfig &C) {
  // Everything below is deterministic in C.Seed; any failure string leads
  // with the seed so the exact stream replays.
  std::ostringstream Fail;
  auto Tag = [&](int Round) -> std::ostringstream & {
    Fail << "[seed=0x" << std::hex << C.Seed << std::dec << " round="
         << Round << "] ";
    return Fail;
  };

  Graph Base = makeBase(C);
  const bool HasCoords = Base.hasCoordinates();

  SnapshotStore::Options PO;
  PO.Reorder = C.PlainReorder;
  PO.CompactionThreshold = 0.06;
  PO.MinOverlayEdges = 256;
  SnapshotStore Plain(Base, PO);

  ShardedSnapshotStore::Options SO;
  SO.NumShards = C.NumShards;
  SO.Reorder = C.ShardedReorder;
  SO.CompactionThreshold = 0.06;
  SO.MinOverlayEdges = 64;
  SO.BackgroundCompaction = C.ShardedBackground;
  ShardedSnapshotStore Sharded(Base, SO);

  // Identity-layout reference overlay: batches are generated from it (so
  // they are external-id batches), and it receives every operation the
  // stores do.
  DeltaGraph Ref(std::make_shared<const Graph>(Base));

  Schedule Eager;
  Eager.configApplyPriorityUpdateDelta(1024);
  Schedule Lazy;
  Lazy.configApplyPriorityUpdate("lazy").configApplyPriorityUpdateDelta(1024);
  Schedule Fine;
  Fine.configApplyPriorityUpdateDelta(4);
  const Schedule *Schedules[] = {&Eager, &Lazy, &Fine};
  const char *SchedNames[] = {"eager/1024", "lazy/1024", "eager/4"};

  // The sharded store is driven end to end through the unified engine:
  // updates, growth, removal, and queries all take the engine path, with
  // hot-state repair, adaptive batching, admission control, and the
  // deadline plumbing engaged (generous budgets — the *paths* run, the
  // outcomes stay deterministic).
  ShardedQueryEngine::Options EO;
  EO.NumWorkers = 2;
  EO.DefaultSchedule = Eager;
  EO.HotSourceCapacity = 4;
  EO.MaxBatchDelayMicros = 200;
  EO.AdmissionHighWater = 64; // far above the harness's queue depth
  EO.AdmissionSoftWater = 32;
  ShardedQueryEngine Engine(Sharded, EO);

  // Hot dispatcher state repaired across every version (external source
  // 0), checked bit-for-bit against a fresh recompute each round.
  const VertexId RepairSrcExt = 0;
  DistanceState Repaired(Plain.current()->numNodes());
  deltaSteppingSSSP(*Plain.current(),
                    Plain.mapping().toInternal(RepairSrcExt), Eager,
                    Repaired);
  RepairScratch Scratch;

  SplitMix64 Rng(C.Seed);

  // Fault injection: arm every registered point for the store-mutation
  // phase of the round, disarm before the reference apply and the
  // differential reads. The reference DeltaGraph has no fail-point sites,
  // so the stores must recover to *its* answers — bit-identically —
  // whatever the injected publish/lock/compaction faults did. Reseeding
  // from (Seed, Round) makes any failing schedule replay exactly.
  const bool Faults = C.InjectFaults && failpoints::kFailPointsEnabled;
  auto armFaults = [&](int RoundIdx) {
    if (!Faults)
      return;
    failpoints::reseed(C.Seed ^
                       (0x9E3779B97F4A7C15ULL *
                        static_cast<uint64_t>(RoundIdx + 1)));
    for (const char *P : failpoints::kAllPoints)
      failpoints::activate(P, C.FaultProbability);
  };
  auto disarmFaults = [&] {
    if (Faults)
      failpoints::reset();
  };

  for (int Round = 0; Round < C.Rounds; ++Round) {
    armFaults(Round);
    const bool InsertRound =
        C.InsertVertices && Round % 3 == 2 && Ref.numNodes() >= 2;
    bool RemoveRound =
        C.RemoveVertices && Round % 3 == 1 && Ref.numNodes() >= 2;
    // Removal rounds need a vertex that still has edges; the applied
    // streams come out of differently-ordered adjacency walks, so they
    // compare as sorted multisets instead of record for record.
    VertexId RemoveV = kInvalidVertex;
    if (RemoveRound) {
      for (int Try = 0; Try < 16 && RemoveV == kInvalidVertex; ++Try) {
        VertexId Cand =
            static_cast<VertexId>(Rng.nextInt(0, Ref.numNodes()));
        if (Ref.outDegree(Cand) > 0)
          RemoveV = Cand;
      }
      RemoveRound = RemoveV != kInvalidVertex;
    }

    std::vector<EdgeUpdate> Batch;
    if (InsertRound) {
      // Grow the universe by two anchored vertices, then wire each to its
      // anchor. Anchor-copied coordinates keep the Euclidean bound exact
      // (distance 0 between the endpoints of every new edge).
      const Count K = 2;
      const Count OldN = Ref.numNodes();
      Coordinates Tail;
      std::vector<VertexId> Anchors;
      for (Count I = 0; I < K; ++I) {
        VertexId A = static_cast<VertexId>(Rng.nextInt(0, OldN));
        Anchors.push_back(A);
        if (HasCoords) {
          Tail.X.push_back(Ref.coordinates().X[A]);
          Tail.Y.push_back(Ref.coordinates().Y[A]);
        }
      }
      const Coordinates *TailPtr = HasCoords ? &Tail : nullptr;
      VertexId FirstP = Plain.addVertices(K, TailPtr);
      VertexId FirstS = Engine.addVertices(K, TailPtr);
      Ref.growUniverse(OldN + K, TailPtr);
      if (FirstP != static_cast<VertexId>(OldN) ||
          FirstS != static_cast<VertexId>(OldN)) {
        Tag(Round) << "vertex insertion ids diverge: plain=" << FirstP
                   << " sharded=" << FirstS << " want=" << OldN;
        return Fail.str();
      }
      Repaired.resize(Ref.numNodes()); // growth alone changes no distance
      for (Count I = 0; I < K; ++I) {
        VertexId NewV = static_cast<VertexId>(OldN + I);
        Weight W =
            static_cast<Weight>(Rng.nextInt(kMinWeight, kMaxWeight));
        Batch.push_back(EdgeUpdate{Anchors[static_cast<size_t>(I)], NewV,
                                   W, UpdateKind::Upsert});
        Batch.push_back(EdgeUpdate{NewV, Anchors[static_cast<size_t>(I)],
                                   W, UpdateKind::Upsert});
      }
    } else if (!RemoveRound) {
      Batch = randomBatch(Ref, C.BatchSize, Rng);
      // Coalescing stress: duplicate an entry so one directed edge sees
      // several transitions inside a single batch.
      if (!Batch.empty() && Rng.nextInt(0, 2) == 0)
        Batch.push_back(
            Batch[static_cast<size_t>(Rng.nextInt(0, Batch.size()))]);
      // Malformed writes: every store must skip them identically.
      if (Rng.nextInt(0, 3) == 0) {
        Batch.push_back(EdgeUpdate{
            static_cast<VertexId>(Ref.numNodes() + 5), 0, 7,
            UpdateKind::Upsert});
        Batch.push_back(EdgeUpdate{1, 1, 3, UpdateKind::Upsert});
        Batch.push_back(EdgeUpdate{0, 2, -4, UpdateKind::Upsert});
      }
    }

    SnapshotStore::ApplyResult PA;
    ShardedSnapshotStore::ApplyResult SA;
    std::vector<AppliedUpdate> RefApplied;
    if (RemoveRound) {
      // Vertex removal + id reuse, differentially: the stores detach the
      // vertex through removeVertex; the reference applies the equivalent
      // delete batch (it never removes anything) — every check below then
      // proves a removed-and-reacquired universe is bit-identical to one
      // that only ever deleted edges.
      PA = Plain.removeVertex(RemoveV);
      SA = Engine.removeVertex(RemoveV);
      disarmFaults();
      std::vector<EdgeUpdate> Deletes;
      for (WNode E : Ref.outNeighbors(RemoveV))
        Deletes.push_back(EdgeUpdate{RemoveV, E.V, 0, UpdateKind::Delete});
      if (!Ref.isSymmetric() && Ref.hasInEdges())
        for (WNode E : Ref.inNeighbors(RemoveV))
          Deletes.push_back(EdgeUpdate{E.V, RemoveV, 0, UpdateKind::Delete});
      RefApplied = coalesceApplied(Ref.apply(Deletes));

      if (Plain.freeVertexCount() != 1 || Engine.freeVertexCount() != 1) {
        Tag(Round) << "free-list sizes after removeVertex: plain="
                   << Plain.freeVertexCount()
                   << " sharded=" << Engine.freeVertexCount() << " want=1";
        return Fail.str();
      }
      VertexId GotP = Plain.acquireVertex();
      VertexId GotS = Engine.acquireVertex();
      if (GotP != RemoveV || GotS != RemoveV) {
        Tag(Round) << "acquireVertex did not recycle the freed id: plain="
                   << GotP << " sharded=" << GotS << " want=" << RemoveV;
        return Fail.str();
      }
      if (Plain.freeVertexCount() != 0 || Engine.freeVertexCount() != 0 ||
          PA.Snap->numNodes() != Ref.numNodes()) {
        Tag(Round) << "id reuse grew the universe or leaked free ids";
        return Fail.str();
      }
    } else {
      PA = Plain.applyUpdates(Batch);
      SA = Engine.applyUpdates(Batch);
      disarmFaults();
      RefApplied = coalesceApplied(Ref.apply(Batch));
    }

    // --- Applied-transition differential (external id space) ------------
    std::vector<AppliedUpdate> PExt =
        toExternal(PA.Applied, Plain.mapping());
    std::vector<AppliedUpdate> SExt =
        toExternal(SA.Applied, Sharded.mapping());
    if (RemoveRound) {
      // A detachment enumerates each store's own (possibly permuted)
      // adjacency, so record order is layout-dependent; the coalesced
      // multiset is not.
      auto ByEdge = [](const AppliedUpdate &A, const AppliedUpdate &B) {
        return std::tie(A.Src, A.Dst, A.OldW, A.NewW) <
               std::tie(B.Src, B.Dst, B.OldW, B.NewW);
      };
      std::sort(PExt.begin(), PExt.end(), ByEdge);
      std::sort(SExt.begin(), SExt.end(), ByEdge);
      std::sort(RefApplied.begin(), RefApplied.end(), ByEdge);
    }
    if (PExt.size() != SExt.size() || PExt.size() != RefApplied.size()) {
      Tag(Round) << "applied-stream sizes diverge: plain=" << PExt.size()
                 << " sharded=" << SExt.size()
                 << " reference=" << RefApplied.size();
      return Fail.str();
    }
    for (size_t I = 0; I < PExt.size(); ++I) {
      auto Same = [](const AppliedUpdate &A, const AppliedUpdate &B) {
        return A.Src == B.Src && A.Dst == B.Dst && A.OldW == B.OldW &&
               A.NewW == B.NewW;
      };
      if (!Same(PExt[I], RefApplied[I]) || !Same(SExt[I], RefApplied[I])) {
        Tag(Round) << "applied record " << I
                   << " diverges: plain=" << describe(PExt[I])
                   << " sharded=" << describe(SExt[I])
                   << " reference=" << describe(RefApplied[I]);
        return Fail.str();
      }
    }

    // --- Structural invariants ------------------------------------------
    if (PA.Snap->numNodes() != Ref.numNodes() ||
        SA.Snap->numNodes() != Ref.numNodes() ||
        PA.Snap->numEdges() != Ref.numEdges() ||
        SA.Snap->numEdges() != Ref.numEdges()) {
      Tag(Round) << "node/edge counts diverge: plain=" << PA.Snap->numNodes()
                 << "/" << PA.Snap->numEdges()
                 << " sharded=" << SA.Snap->numNodes() << "/"
                 << SA.Snap->numEdges() << " reference=" << Ref.numNodes()
                 << "/" << Ref.numEdges();
      return Fail.str();
    }

    // --- {ordering x schedule} SSSP differential ------------------------
    const Count N = Ref.numNodes();
    VertexId Sources[2] = {RepairSrcExt,
                           static_cast<VertexId>(Rng.nextInt(0, N))};
    for (VertexId SrcExt : Sources) {
      std::vector<Priority> FirstSchedule;
      for (int SI = 0; SI < 3; ++SI) {
        const Schedule &S = *Schedules[SI];
        SSSPResult DR = deltaSteppingSSSP(Ref, SrcExt, S);
        // Schedule independence on the reference itself: every
        // {ordering x schedule} point must agree bit-for-bit.
        if (SI == 0) {
          FirstSchedule = DR.Dist;
        } else if (DR.Dist != FirstSchedule) {
          Tag(Round) << "schedule point " << SchedNames[SI]
                     << " diverges from " << SchedNames[0]
                     << " on the reference overlay (src=" << SrcExt << ")";
          return Fail.str();
        }
        SSSPResult DP = deltaSteppingSSSP(
            *PA.Snap, Plain.mapping().toInternal(SrcExt), S);
        SSSPResult DS = deltaSteppingSSSP(
            *SA.Snap, Sharded.mapping().toInternal(SrcExt), S);
        for (Count V = 0; V < N; ++V) {
          VertexId Ext = static_cast<VertexId>(V);
          Priority Want = DR.Dist[Ext];
          Priority GotP = DP.Dist[Plain.mapping().toInternal(Ext)];
          Priority GotS = DS.Dist[Sharded.mapping().toInternal(Ext)];
          if (GotP != Want || GotS != Want) {
            Tag(Round) << "SSSP(" << SchedNames[SI] << ", src=" << SrcExt
                       << ") diverges at vertex " << Ext
                       << ": plain=" << GotP << " sharded=" << GotS
                       << " reference=" << Want;
            return Fail.str();
          }
        }
      }

      // Engine-served SSSP over the sharded store: submit/collect with
      // results in external ids, cross-checked against the reference
      // distances just computed. Repeating source[0] every round drives
      // the hot-state warm/repair/hit paths.
      Query EQ;
      EQ.Kind = QueryKind::SSSP;
      EQ.Source = SrcExt;
      EQ.CollectReached = true;
      QueryResult ER = Engine.runBatch({EQ})[0];
      if (ER.Status != QueryStatus::Ok) {
        Tag(Round) << "engine SSSP (src=" << SrcExt
                   << ") resolved non-Ok: "
                   << static_cast<int>(ER.Status);
        return Fail.str();
      }
      Count Finite = 0;
      for (Count V = 0; V < N; ++V)
        if (FirstSchedule[V] != kInfiniteDistance)
          ++Finite;
      if (static_cast<Count>(ER.Reached.size()) != Finite) {
        Tag(Round) << "engine SSSP (src=" << SrcExt << ") reached "
                   << ER.Reached.size() << " vertices, reference reaches "
                   << Finite;
        return Fail.str();
      }
      for (const std::pair<VertexId, Priority> &P : ER.Reached)
        if (FirstSchedule[P.first] != P.second) {
          Tag(Round) << "engine SSSP (src=" << SrcExt
                     << ") diverges at vertex " << P.first << ": engine="
                     << P.second << " reference=" << FirstSchedule[P.first];
          return Fail.str();
        }
    }

    // --- Repaired-vs-recomputed differential ----------------------------
    repairAfterUpdates(*PA.Snap, PA.Applied, Repaired, Eager, Scratch);
    SSSPResult FreshP = deltaSteppingSSSP(
        *PA.Snap, Plain.mapping().toInternal(RepairSrcExt), Eager);
    for (Count V = 0; V < PA.Snap->numNodes(); ++V)
      if (Repaired.distances()[V] != FreshP.Dist[V]) {
        Tag(Round) << "repair diverges from recompute at internal vertex "
                   << V << ": repaired=" << Repaired.distances()[V]
                   << " fresh=" << FreshP.Dist[V];
        return Fail.str();
      }

    // --- PPSP spot checks (exact early exit vs full distances) ----------
    for (int Q = 0; Q < 3; ++Q) {
      VertexId S = static_cast<VertexId>(Rng.nextInt(0, N));
      VertexId T = static_cast<VertexId>(Rng.nextInt(0, N));
      SSSPResult DR = deltaSteppingSSSP(Ref, S, Eager);
      PPSPResult P = pointToPointShortestPath(
          *PA.Snap, Plain.mapping().toInternal(S),
          Plain.mapping().toInternal(T), Eager);
      if (P.Dist != DR.Dist[T]) {
        Tag(Round) << "PPSP(" << S << " -> " << T
                   << ") diverges: plain=" << P.Dist
                   << " reference=" << DR.Dist[T];
        return Fail.str();
      }
      // The same point query through the engine, with the deadline
      // plumbing engaged: a generous budget never fires, so the answer
      // must come back Ok and exact.
      Query EP;
      EP.Kind = QueryKind::PPSP;
      EP.Source = S;
      EP.Target = T;
      EP.DeadlineMicros = 30'000'000;
      QueryResult QR = Engine.runBatch({EP})[0];
      if (QR.Status != QueryStatus::Ok || QR.Dist != DR.Dist[T]) {
        Tag(Round) << "engine PPSP(" << S << " -> " << T
                   << ") diverges: engine=" << QR.Dist << " (status "
                   << static_cast<int>(QR.Status)
                   << ") reference=" << DR.Dist[T];
        return Fail.str();
      }
    }
  }

  // --- Hot-path determinism over the sharded engine ----------------------
  // Two same-source queries with no write in between: the second must be
  // served from the (warmed or repaired) hot state, bit-identical to the
  // first run and to the fault-free reference. Quiesce in-flight
  // background folds first — a fold publishing between the two queries
  // would (correctly) invalidate the warmed state.
  Sharded.waitForCompaction();
  {
    Query HQ;
    HQ.Kind = QueryKind::SSSP;
    HQ.Source = RepairSrcExt;
    HQ.CollectReached = true;
    QueryResult H1 = Engine.runBatch({HQ})[0];
    const uint64_t HitsBefore = Engine.hotHits();
    QueryResult H2 = Engine.runBatch({HQ})[0];
    if (Engine.hotHits() <= HitsBefore) {
      Tag(C.Rounds) << "second same-source engine SSSP missed the hot "
                       "cache (hits stayed at "
                    << HitsBefore << ")";
      return Fail.str();
    }
    SSSPResult DR = deltaSteppingSSSP(Ref, RepairSrcExt, Eager);
    if (H1.Reached != H2.Reached) {
      Tag(C.Rounds) << "hot-served SSSP diverges from the fresh run that "
                       "warmed it (src="
                    << RepairSrcExt << ")";
      return Fail.str();
    }
    for (const std::pair<VertexId, Priority> &P : H2.Reached)
      if (DR.Dist[P.first] != P.second) {
        Tag(C.Rounds) << "hot-served SSSP diverges from reference at "
                      << P.first << ": hot=" << P.second
                      << " reference=" << DR.Dist[P.first];
        return Fail.str();
      }
  }
  return "";
}
