//===- tests/graph_test.cpp - Unit tests for src/graph --------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Builder.h"
#include "graph/Generators.h"
#include "graph/Graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

using namespace graphit;

namespace {

Graph buildSmall(std::vector<Edge> Edges, Count N,
                 BuildOptions Options = BuildOptions()) {
  return GraphBuilder(Options).build(N, std::move(Edges));
}

std::multiset<std::pair<VertexId, Weight>> neighborsOf(const Graph &G,
                                                       VertexId V) {
  std::multiset<std::pair<VertexId, Weight>> Result;
  for (WNode E : G.outNeighbors(V))
    Result.insert({E.V, E.W});
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

TEST(Builder, BasicCSRShape) {
  Graph G = buildSmall({{0, 1, 5}, {0, 2, 7}, {1, 2, 1}}, 3);
  EXPECT_EQ(G.numNodes(), 3);
  EXPECT_EQ(G.numEdges(), 3);
  EXPECT_EQ(G.outDegree(0), 2);
  EXPECT_EQ(G.outDegree(1), 1);
  EXPECT_EQ(G.outDegree(2), 0);
  EXPECT_EQ(neighborsOf(G, 0),
            (std::multiset<std::pair<VertexId, Weight>>{{1, 5}, {2, 7}}));
}

TEST(Builder, InEdgesMirrorOutEdges) {
  Graph G = buildSmall({{0, 1, 5}, {2, 1, 3}}, 3);
  ASSERT_TRUE(G.hasInEdges());
  EXPECT_EQ(G.inDegree(1), 2);
  EXPECT_EQ(G.inDegree(0), 0);
  std::multiset<std::pair<VertexId, Weight>> In;
  for (WNode E : G.inNeighbors(1))
    In.insert({E.V, E.W});
  EXPECT_EQ(In,
            (std::multiset<std::pair<VertexId, Weight>>{{0, 5}, {2, 3}}));
}

TEST(Builder, SymmetrizeDoublesEdges) {
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = buildSmall({{0, 1, 5}, {1, 2, 3}}, 3, Options);
  EXPECT_TRUE(G.isSymmetric());
  EXPECT_EQ(G.numEdges(), 4);
  EXPECT_EQ(G.outDegree(1), 2);
  // In-neighbors alias out-neighbors on symmetric graphs.
  EXPECT_EQ(G.inDegree(1), 2);
}

TEST(Builder, RemovesSelfLoops) {
  Graph G = buildSmall({{0, 0, 1}, {0, 1, 2}, {1, 1, 9}}, 2);
  EXPECT_EQ(G.numEdges(), 1);
  EXPECT_EQ(G.outDegree(0), 1);
  EXPECT_EQ(G.outDegree(1), 0);
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  BuildOptions Options;
  Options.RemoveSelfLoops = false;
  Graph G = buildSmall({{0, 0, 1}, {0, 1, 2}}, 2, Options);
  EXPECT_EQ(G.numEdges(), 2);
}

TEST(Builder, DeduplicatesKeepingMinWeight) {
  Graph G = buildSmall({{0, 1, 9}, {0, 1, 4}, {0, 1, 6}}, 2);
  EXPECT_EQ(G.numEdges(), 1);
  EXPECT_EQ(neighborsOf(G, 0),
            (std::multiset<std::pair<VertexId, Weight>>{{1, 4}}));
}

TEST(Builder, KeepsParallelEdgesWhenAsked) {
  BuildOptions Options;
  Options.RemoveDuplicates = false;
  Graph G = buildSmall({{0, 1, 9}, {0, 1, 4}}, 2, Options);
  EXPECT_EQ(G.numEdges(), 2);
}

TEST(Builder, UnweightedGraphReportsUnitWeights) {
  BuildOptions Options;
  Options.Weighted = false;
  Graph G = buildSmall({{0, 1, 77}}, 2, Options);
  EXPECT_FALSE(G.isWeighted());
  for (WNode E : G.outNeighbors(0))
    EXPECT_EQ(E.W, 1);
}

TEST(Builder, AdjacencySortedById) {
  Graph G = buildSmall({{0, 3, 1}, {0, 1, 1}, {0, 2, 1}}, 4);
  std::vector<VertexId> Order;
  for (WNode E : G.outNeighbors(0))
    Order.push_back(E.V);
  EXPECT_EQ(Order, (std::vector<VertexId>{1, 2, 3}));
}

TEST(Builder, EmptyGraph) {
  Graph G = buildSmall({}, 5);
  EXPECT_EQ(G.numNodes(), 5);
  EXPECT_EQ(G.numEdges(), 0);
  for (VertexId V = 0; V < 5; ++V)
    EXPECT_EQ(G.outDegree(V), 0);
}

TEST(Builder, CoordinatesAttach) {
  Coordinates C;
  C.X = {0.0, 1.0};
  C.Y = {0.5, 1.5};
  Graph G = GraphBuilder().build(2, {{0, 1, 1}}, std::move(C));
  ASSERT_TRUE(G.hasCoordinates());
  EXPECT_DOUBLE_EQ(G.coordinates().X[1], 1.0);
}

TEST(Builder, OutDegreeSum) {
  Graph G = buildSmall({{0, 1, 1}, {0, 2, 1}, {1, 2, 1}}, 3);
  VertexId Vs[] = {0, 1};
  EXPECT_EQ(G.outDegreeSum(Vs, 2), 3);
  EXPECT_EQ(G.outDegreeSum(Vs, 0), 0);
}

TEST(Builder, SymmetrizedCopyOfDirectedGraph) {
  Graph G = buildSmall({{0, 1, 5}, {1, 2, 3}}, 3);
  Graph S = G.symmetrized();
  EXPECT_TRUE(S.isSymmetric());
  EXPECT_EQ(S.numEdges(), 4);
  EXPECT_EQ(S.outDegree(1), 2);
  // Symmetrizing a symmetric graph is the identity.
  Graph S2 = S.symmetrized();
  EXPECT_EQ(S2.numEdges(), S.numEdges());
}

//===----------------------------------------------------------------------===//
// Weights
//===----------------------------------------------------------------------===//

TEST(Weights, RandomWeightsInRangeAndDeterministic) {
  std::vector<Edge> A = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}};
  std::vector<Edge> B = A;
  assignRandomWeights(A, 1, 1000, 42);
  assignRandomWeights(B, 1, 1000, 42);
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_GE(A[I].W, 1);
    EXPECT_LT(A[I].W, 1000);
    EXPECT_EQ(A[I].W, B[I].W);
  }
}

TEST(Weights, WeightDependsOnEndpointsNotPosition) {
  std::vector<Edge> A = {{0, 1, 0}, {5, 6, 0}};
  std::vector<Edge> B = {{5, 6, 0}, {0, 1, 0}};
  assignRandomWeights(A, 1, 100, 7);
  assignRandomWeights(B, 1, 100, 7);
  EXPECT_EQ(A[0].W, B[1].W);
  EXPECT_EQ(A[1].W, B[0].W);
}

//===----------------------------------------------------------------------===//
// Generators
//===----------------------------------------------------------------------===//

TEST(Generators, PathShape) {
  Graph G = buildSmall(pathEdges(5), 5);
  EXPECT_EQ(G.numEdges(), 4);
  EXPECT_EQ(G.outDegree(0), 1);
  EXPECT_EQ(G.outDegree(4), 0);
}

TEST(Generators, CycleShape) {
  Graph G = buildSmall(cycleEdges(5), 5);
  EXPECT_EQ(G.numEdges(), 5);
  for (VertexId V = 0; V < 5; ++V)
    EXPECT_EQ(G.outDegree(V), 1);
}

TEST(Generators, StarShape) {
  Graph G = buildSmall(starEdges(6), 6);
  EXPECT_EQ(G.outDegree(0), 5);
  for (VertexId V = 1; V < 6; ++V)
    EXPECT_EQ(G.outDegree(V), 0);
}

TEST(Generators, CompleteGraphShape) {
  Graph G = buildSmall(completeGraphEdges(4), 4);
  EXPECT_EQ(G.numEdges(), 12);
  for (VertexId V = 0; V < 4; ++V)
    EXPECT_EQ(G.outDegree(V), 3);
}

TEST(Generators, BinaryTreeShape) {
  Graph G = buildSmall(binaryTreeEdges(7), 7);
  EXPECT_EQ(G.numEdges(), 6);
  EXPECT_EQ(G.outDegree(0), 2);
  EXPECT_EQ(G.outDegree(3), 0);
}

TEST(Generators, RmatDeterministicAndInRange) {
  std::vector<Edge> A = rmatEdges(10, 8, 123);
  std::vector<Edge> B = rmatEdges(10, 8, 123);
  ASSERT_EQ(A.size(), size_t{1024 * 8});
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_LT(A[I].Src, 1024u);
    ASSERT_LT(A[I].Dst, 1024u);
    ASSERT_EQ(A[I].Src, B[I].Src);
    ASSERT_EQ(A[I].Dst, B[I].Dst);
  }
}

TEST(Generators, RmatDifferentSeedsDiffer) {
  std::vector<Edge> A = rmatEdges(10, 8, 1);
  std::vector<Edge> B = rmatEdges(10, 8, 2);
  int Same = 0;
  for (size_t I = 0; I < A.size(); ++I)
    Same += (A[I].Src == B[I].Src && A[I].Dst == B[I].Dst) ? 1 : 0;
  EXPECT_LT(Same, static_cast<int>(A.size() / 10));
}

TEST(Generators, RmatIsSkewed) {
  // R-MAT with a=0.57 must concentrate degree: the top-1% of vertices
  // should hold well above 1% of the edges.
  Graph G = buildSmall(rmatEdges(12, 16, 99), Count{1} << 12);
  std::vector<Count> Degrees;
  for (VertexId V = 0; V < G.numNodes(); ++V)
    Degrees.push_back(G.outDegree(V));
  std::sort(Degrees.begin(), Degrees.end(), std::greater<>());
  Count Top1Percent = 0;
  for (Count I = 0; I < G.numNodes() / 100; ++I)
    Top1Percent += Degrees[I];
  EXPECT_GT(Top1Percent, G.numEdges() / 10);
}

TEST(Generators, ErdosRenyiShape) {
  std::vector<Edge> Edges = erdosRenyiEdges(1000, 4, 5);
  EXPECT_EQ(Edges.size(), 4000u);
  for (const Edge &E : Edges) {
    ASSERT_LT(E.Src, 1000u);
    ASSERT_LT(E.Dst, 1000u);
  }
}

TEST(Generators, RoadGridShapeAndCoordinates) {
  RoadNetwork Net = roadGrid(20, 30, 7);
  EXPECT_EQ(Net.NumNodes, 600);
  EXPECT_EQ(Net.Coords.size(), 600);
  // Roughly 2*R*C grid edges minus drops.
  EXPECT_GT(static_cast<Count>(Net.Edges.size()), 1000);
  for (const Edge &E : Net.Edges) {
    ASSERT_LT(E.Src, 600u);
    ASSERT_LT(E.Dst, 600u);
    ASSERT_GE(E.W, 1);
  }
}

TEST(Generators, RoadGridWeightsAdmissibleForAStar) {
  // Every edge weight must be >= 100 * euclidean distance between its
  // endpoints, which makes the scaled Euclidean heuristic admissible.
  RoadNetwork Net = roadGrid(15, 15, 21);
  for (const Edge &E : Net.Edges) {
    double DX = Net.Coords.X[E.Src] - Net.Coords.X[E.Dst];
    double DY = Net.Coords.Y[E.Src] - Net.Coords.Y[E.Dst];
    double Euclid = std::sqrt(DX * DX + DY * DY);
    ASSERT_GE(static_cast<double>(E.W) + 1e-9, 100.0 * Euclid)
        << E.Src << "->" << E.Dst;
  }
}

TEST(Generators, RoadGridMostlyConnected) {
  // With a 3% drop rate the giant component must cover nearly everything.
  RoadNetwork Net = roadGrid(30, 30, 3);
  BuildOptions Options;
  Options.Symmetrize = true;
  Graph G = GraphBuilder(Options).build(Net.NumNodes, Net.Edges);
  // BFS from 0.
  std::vector<char> Seen(G.numNodes(), 0);
  std::vector<VertexId> Stack = {0};
  Seen[0] = 1;
  Count Reached = 1;
  while (!Stack.empty()) {
    VertexId V = Stack.back();
    Stack.pop_back();
    for (WNode E : G.outNeighbors(V))
      if (!Seen[E.V]) {
        Seen[E.V] = 1;
        ++Reached;
        Stack.push_back(E.V);
      }
  }
  EXPECT_GT(Reached, G.numNodes() * 9 / 10);
}
