//===- tests/failpoint_test.cpp - Fault injection & recovery --------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The deterministic fault-injection layer (support/FailPoint.h) and the
// recovery paths it exists to exercise: snapshot-publish retry, strict
// all-or-nothing batches, compaction retry/fallback/watchdog with
// degraded-but-serving semantics, and state-pool growth. Most of this
// file only runs in -DGRAPHIT_FAILPOINTS=ON builds (the CI `faults`
// job); the strict-batch tests run everywhere (no faults involved).
//
//===----------------------------------------------------------------------===//

#include "stress_harness.h"

#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

using namespace graphit;
using namespace graphit::service;
using namespace graphit::stress;

namespace {

Graph makeRoad(int Side, uint64_t Seed) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions O;
  O.Symmetrize = true;
  return GraphBuilder(O).build(Net.NumNodes, Net.Edges,
                               std::move(Net.Coords));
}

/// RAII guard: whatever a test arms, the next test starts clean.
struct FailPointGuard {
  ~FailPointGuard() { failpoints::reset(); }
};

/// HowMany upserts whose endpoints both live in [Lo, Hi). In a symmetric
/// store every forward and mirror row then lands in the shards covering
/// that id range, so when [Lo, Hi) is one shard's span the batch is a
/// single-shard write — the knob the fold-isolation tests steer with.
std::vector<EdgeUpdate> shardLocalUpserts(Count Lo, Count Hi, Count HowMany,
                                          SplitMix64 &Rng) {
  std::vector<EdgeUpdate> Batch;
  while (static_cast<Count>(Batch.size()) < HowMany) {
    VertexId U = static_cast<VertexId>(Lo + Rng.nextInt(0, Hi - Lo));
    VertexId V = static_cast<VertexId>(Lo + Rng.nextInt(0, Hi - Lo));
    if (U == V)
      continue;
    Batch.push_back(EdgeUpdate{
        U, V, static_cast<Weight>(Rng.nextInt(kMinWeight, kMaxWeight)),
        UpdateKind::Upsert});
  }
  return Batch;
}

#define SKIP_WITHOUT_FAILPOINTS()                                            \
  do {                                                                       \
    if (!failpoints::kFailPointsEnabled)                                     \
      GTEST_SKIP() << "built without GRAPHIT_FAILPOINTS";                    \
  } while (0)

} // namespace

//===----------------------------------------------------------------------===//
// Registry semantics: determinism, fire caps, env parsing.
//===----------------------------------------------------------------------===//

TEST(FailPoint, SeededStreamReplaysBitIdentically) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  auto Sample = [](uint64_t Seed) {
    failpoints::reset();
    failpoints::reseed(Seed);
    failpoints::activate("snapshot.publish", 0.5);
    std::vector<bool> Fired;
    for (int I = 0; I < 64; ++I) {
      try {
        failpoints::evaluate("snapshot.publish");
        Fired.push_back(false);
      } catch (const failpoints::FailPointError &) {
        Fired.push_back(true);
      }
    }
    return Fired;
  };
  std::vector<bool> A = Sample(42), B = Sample(42), C = Sample(43);
  EXPECT_EQ(A, B) << "same seed must replay the same fault schedule";
  EXPECT_NE(A, C) << "different seeds must diverge";
  int Fires = 0;
  for (bool F : A)
    Fires += F ? 1 : 0;
  EXPECT_GT(Fires, 8);
  EXPECT_LT(Fires, 56);
}

TEST(FailPoint, MaxFiresCapsAndFireCountTracks) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  failpoints::reseed(7);
  failpoints::activate("shard.lock", 1.0, /*MaxFires=*/3);
  int Threw = 0;
  for (int I = 0; I < 10; ++I) {
    try {
      failpoints::evaluate("shard.lock");
    } catch (const failpoints::FailPointError &) {
      ++Threw;
    }
  }
  EXPECT_EQ(Threw, 3);
  EXPECT_EQ(failpoints::fireCount("shard.lock"), 3u);
  // Unarmed points never fire.
  EXPECT_EQ(failpoints::fireCount("compaction.rebuild"), 0u);
}

TEST(FailPoint, ConfigureFromEnvParsesSchedules) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  ::setenv("GRAPHIT_FAILPOINTS",
           " snapshot.publish = 1.0 * 2 , compaction.rebuild=sleep(1) ", 1);
  ::setenv("GRAPHIT_FAILPOINTS_SEED", "1234", 1);
  std::string Banner = failpoints::configureFromEnv();
  ::unsetenv("GRAPHIT_FAILPOINTS");
  ::unsetenv("GRAPHIT_FAILPOINTS_SEED");
  EXPECT_NE(Banner.find("snapshot.publish"), std::string::npos) << Banner;

  int Threw = 0;
  for (int I = 0; I < 5; ++I) {
    try {
      failpoints::evaluate("snapshot.publish");
    } catch (const failpoints::FailPointError &) {
      ++Threw;
    }
  }
  EXPECT_EQ(Threw, 2) << "p=1.0 capped at 2 fires";
  // Sleep-mode points delay but never throw.
  EXPECT_NO_THROW(failpoints::evaluate("compaction.rebuild"));
  EXPECT_GE(failpoints::fireCount("compaction.rebuild"), 1u);
}

//===----------------------------------------------------------------------===//
// Recovery paths, unsharded store.
//===----------------------------------------------------------------------===//

TEST(FailPoint, PublishRetriesThroughInjectedFaults) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 3);
  SnapshotStore Faulty(Base);
  SnapshotStore Clean(Base);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA0);

  failpoints::reseed(0xFA0);
  failpoints::activate("snapshot.publish", 0.4);
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 24, Rng);
    Ref.apply(Batch);
    SnapshotStore::ApplyResult FR = Faulty.applyUpdates(Batch);
    failpoints::deactivate("snapshot.publish"); // clean store sees none
    SnapshotStore::ApplyResult CR = Clean.applyUpdates(Batch);
    failpoints::activate("snapshot.publish", 0.4);
    ASSERT_EQ(FR.Status, ApplyStatus::Ok);
    ASSERT_EQ(FR.Version, CR.Version) << "round " << Round;
    ASSERT_EQ(FR.Applied.size(), CR.Applied.size()) << "round " << Round;
    ASSERT_EQ(FR.Snap->numEdges(), Ref.numEdges()) << "round " << Round;
  }
  failpoints::reset();
  // Served distances converge bit-identically to the fault-free stores.
  SSSPResult F = deltaSteppingSSSP(*Faulty.current(), 0,
                                   Schedule().configApplyPriorityUpdateDelta(1024));
  SSSPResult W = deltaSteppingSSSP(Ref, 0,
                                   Schedule().configApplyPriorityUpdateDelta(1024));
  EXPECT_EQ(F.Dist, W.Dist);
}

TEST(FailPoint, SyncCompactionFailureDegradesButKeepsServing) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 5);
  SnapshotStore::Options Opts;
  Opts.CompactionThreshold = 0.01; // trip quickly
  Opts.MinOverlayEdges = 8;
  SnapshotStore Store(Base, Opts);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA1);

  failpoints::reseed(0xFA1);
  failpoints::activate("compaction.rebuild", 1.0);
  bool SawError = false;
  for (int Round = 0; Round < 4; ++Round) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 64, Rng);
    Ref.apply(Batch);
    SnapshotStore::ApplyResult R = Store.applyUpdates(Batch);
    ASSERT_EQ(R.Status, ApplyStatus::Ok);
    SawError |= !R.CompactionError.empty();
  }
  EXPECT_TRUE(SawError) << "compaction failure was never surfaced";
  EXPECT_TRUE(Store.degraded());
  EXPECT_FALSE(Store.lastError().empty());
  EXPECT_EQ(Store.compactions(), 0u);

  // Degraded-but-serving: answers stay exact over the overlay.
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  SSSPResult Got = deltaSteppingSSSP(*Store.current(), 0, S);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, S);
  EXPECT_EQ(Got.Dist, Want.Dist);

  // Disarm: the next tripped compaction succeeds and clears the flag.
  failpoints::deactivate("compaction.rebuild");
  std::vector<EdgeUpdate> Batch = randomBatch(Ref, 64, Rng);
  Ref.apply(Batch);
  SnapshotStore::ApplyResult R = Store.applyUpdates(Batch);
  ASSERT_EQ(R.Status, ApplyStatus::Ok);
  EXPECT_GT(Store.compactions(), 0u);
  EXPECT_FALSE(Store.degraded());
  EXPECT_TRUE(Store.lastError().empty());
}

TEST(FailPoint, BackgroundCompactionRetriesThenFallsBack) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 7);
  SnapshotStore::Options Opts;
  Opts.BackgroundCompaction = true;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 8;
  Opts.CompactionRetryLimit = 2;
  Opts.CompactionBackoffMillis = 1;
  Opts.CompactionWatchdogMillis = 2000;
  SnapshotStore Store(Base, Opts);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA2);

  failpoints::reseed(0xFA2);
  failpoints::activate("compaction.rebuild", 1.0);
  // Trip a background compaction; it must give up after bounded retries
  // and leave the pre-compaction overlay serving (no stall, no crash).
  for (int Round = 0; Round < 3; ++Round) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 64, Rng);
    Ref.apply(Batch);
    ASSERT_EQ(Store.applyUpdates(Batch).Status, ApplyStatus::Ok);
  }
  ASSERT_TRUE(Store.waitForCompactionFor(10000))
      << "fold wedged: watchdog/retry bound did not release the store";
  EXPECT_TRUE(Store.degraded());
  EXPECT_EQ(Store.compactions(), 0u);

  // The failure surfaces exactly once on the next writer call.
  failpoints::deactivate("compaction.rebuild");
  std::vector<EdgeUpdate> Batch = randomBatch(Ref, 8, Rng);
  Ref.apply(Batch);
  SnapshotStore::ApplyResult R = Store.applyUpdates(Batch);
  EXPECT_FALSE(R.CompactionError.empty());

  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  Store.waitForCompaction();
  SSSPResult Got = deltaSteppingSSSP(*Store.current(), 0, S);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, S);
  EXPECT_EQ(Got.Dist, Want.Dist);
}

TEST(FailPoint, BackgroundCompactionReplayWindowSurvivesDelays) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 9);
  SnapshotStore::Options Opts;
  Opts.BackgroundCompaction = true;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 8;
  SnapshotStore Store(Base, Opts);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA3);

  // Widen the rebuild phase so writer batches land in the replay window
  // while the fold is mid-flight — the exact race the replay machinery
  // exists for, now schedulable on demand.
  failpoints::reseed(0xFA3);
  failpoints::activateDelay("compaction.rebuild", 30);
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 48, Rng);
    Ref.apply(Batch);
    ASSERT_EQ(Store.applyUpdates(Batch).Status, ApplyStatus::Ok);
  }
  failpoints::reset();
  Store.waitForCompaction();
  EXPECT_FALSE(Store.degraded());
  EXPECT_GT(Store.compactions(), 0u);

  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  SSSPResult Got = deltaSteppingSSSP(*Store.current(), 0, S);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, S);
  EXPECT_EQ(Got.Dist, Want.Dist);
}

TEST(FailPoint, ReplayFaultsRetryFromFreshOverlay) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 9);
  SnapshotStore::Options Opts;
  Opts.BackgroundCompaction = true;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 8;
  SnapshotStore Store(Base, Opts);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA4);

  // Widen the rebuild so writer batches land in the replay window, then
  // make the first two replay attempts throw ("compaction.replay" fires
  // once per attempt at the first op). Each retry restarts from a fresh
  // overlay over the rebuilt base, so the third attempt must converge to
  // the same adjacency a fault-free fold produces.
  failpoints::reseed(0xFA4);
  failpoints::activateDelay("compaction.rebuild", 30);
  failpoints::activate("compaction.replay", 1.0, /*MaxFires=*/2);
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 48, Rng);
    Ref.apply(Batch);
    ASSERT_EQ(Store.applyUpdates(Batch).Status, ApplyStatus::Ok);
  }
  failpoints::reset();
  Store.waitForCompaction();
  EXPECT_FALSE(Store.degraded());
  EXPECT_GT(Store.compactions(), 0u);

  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  SSSPResult Got = deltaSteppingSSSP(*Store.current(), 0, S);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, S);
  EXPECT_EQ(Got.Dist, Want.Dist);
}

//===----------------------------------------------------------------------===//
// Recovery paths, sharded store + query engine.
//===----------------------------------------------------------------------===//

TEST(FailPoint, ShardLockAcquisitionRetriesThroughFaults) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 13);
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  ShardedSnapshotStore Store(Base, Opts);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA4);

  failpoints::reseed(0xFA4);
  failpoints::activate("shard.lock", 0.3);
  for (int Round = 0; Round < 6; ++Round) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 32, Rng);
    Ref.apply(Batch);
    ShardedSnapshotStore::ApplyResult R = Store.applyUpdates(Batch);
    ASSERT_EQ(R.Status, ApplyStatus::Ok) << "round " << Round;
  }
  EXPECT_GT(failpoints::fireCount("shard.lock"), 0u)
      << "faults were armed but the lock path never hit one";
  failpoints::reset();

  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  SSSPResult Got = deltaSteppingSSSP(*Store.current(), 0, S);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, S);
  EXPECT_EQ(Got.Dist, Want.Dist);
}

TEST(FailPoint, ShardFoldFailureDegradesOnlyThatShard) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 17); // 256 nodes -> span 64 at 4 shards
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 8;
  ShardedSnapshotStore Store(Base, Opts);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA6);
  const Count Span = Store.shardSpan();
  ASSERT_EQ(Span, Count{64});

  auto Feed = [&](int S) {
    std::vector<EdgeUpdate> Batch =
        shardLocalUpserts(S * Span, (S + 1) * Span, 24, Rng);
    Ref.apply(Batch);
    ASSERT_EQ(Store.applyUpdates(Batch).Status, ApplyStatus::Ok);
  };

  // Shard 1's inline fold trips and fails; no other shard may notice.
  failpoints::reseed(0xFA6);
  failpoints::activate("compaction.rebuild", 1.0);
  Feed(1);
  EXPECT_TRUE(Store.shardDegraded(1));
  EXPECT_TRUE(Store.degraded());
  EXPECT_FALSE(Store.lastError().empty());
  for (int S : {0, 2, 3}) {
    EXPECT_FALSE(Store.shardDegraded(S)) << "shard " << S;
    EXPECT_EQ(Store.shardFolds(S), 0u) << "shard " << S;
  }
  EXPECT_EQ(Store.compactions(), 0u);

  // With shard 1 still degraded (faults now off), shard 3 folds fine:
  // degradation is per-shard state, not a store-wide stall.
  failpoints::deactivate("compaction.rebuild");
  Feed(3);
  EXPECT_GT(Store.shardFolds(3), 0u);
  EXPECT_TRUE(Store.shardDegraded(1));
  EXPECT_TRUE(Store.degraded()) << "shard 1 has not recovered yet";

  // Degraded-but-serving: the un-folded overlay answers bit-identically.
  Schedule Sch;
  Sch.configApplyPriorityUpdateDelta(1024);
  SSSPResult Got = deltaSteppingSSSP(*Store.current(), 0, Sch);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, Sch);
  EXPECT_EQ(Got.Dist, Want.Dist);

  // Shard 1's next tripped fold succeeds — only then does the store-wide
  // flag clear.
  Feed(1);
  EXPECT_FALSE(Store.shardDegraded(1));
  EXPECT_FALSE(Store.degraded());
  EXPECT_TRUE(Store.lastError().empty());
  EXPECT_GT(Store.shardFolds(1), 0u);
}

TEST(FailPoint, BackgroundShardReplayFaultsIsolateAndRecover) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(16, 19);
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 4;
  Opts.BackgroundCompaction = true;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 8;
  Opts.CompactionRetryLimit = 1;
  ShardedSnapshotStore Store(Base, Opts);
  DeltaGraph Ref(std::make_shared<const Graph>(Base));
  SplitMix64 Rng(0xFA7);
  const Count Span = Store.shardSpan();

  // Widen phase 1 of shard 2's background fold so the follow-up batches
  // land in its replay log (Compacting is set before the trigger batch
  // returns, so the recording is deterministic), then fail every replay
  // attempt: the fold gives up and degrades shard 2 alone, while its
  // writer — which has all the rows — keeps serving.
  failpoints::reseed(0xFA7);
  failpoints::activateDelay("compaction.rebuild", 30);
  failpoints::activate("compaction.replay", 1.0);
  for (int I = 0; I < 4; ++I) {
    std::vector<EdgeUpdate> Batch =
        shardLocalUpserts(2 * Span, 3 * Span, 24, Rng);
    Ref.apply(Batch);
    ASSERT_EQ(Store.applyUpdates(Batch).Status, ApplyStatus::Ok);
  }
  Store.waitForCompaction();
  EXPECT_GT(failpoints::fireCount("compaction.replay"), 0u)
      << "no batch landed in the replay window; widen the delay";
  EXPECT_TRUE(Store.shardDegraded(2));
  for (int S : {0, 1, 3})
    EXPECT_FALSE(Store.shardDegraded(S)) << "shard " << S;
  EXPECT_TRUE(Store.degraded());

  Schedule Sch;
  Sch.configApplyPriorityUpdateDelta(1024);
  SSSPResult Got = deltaSteppingSSSP(*Store.current(), 0, Sch);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, Sch);
  EXPECT_EQ(Got.Dist, Want.Dist);

  // Clean faults: the next tripped fold replays fine and recovers the
  // shard — per-shard recovery needs no store-wide rebuild.
  failpoints::reset();
  std::vector<EdgeUpdate> Batch =
      shardLocalUpserts(2 * Span, 3 * Span, 24, Rng);
  Ref.apply(Batch);
  ASSERT_EQ(Store.applyUpdates(Batch).Status, ApplyStatus::Ok);
  Store.waitForCompaction();
  EXPECT_FALSE(Store.shardDegraded(2));
  EXPECT_FALSE(Store.degraded());
  EXPECT_GT(Store.shardFolds(2), 0u);
  Got = deltaSteppingSSSP(*Store.current(), 0, Sch);
  Want = deltaSteppingSSSP(Ref, 0, Sch);
  EXPECT_EQ(Got.Dist, Want.Dist);
}

TEST(FailPoint, StatePoolGrowthRetriesInsideAddVertices) {
  SKIP_WITHOUT_FAILPOINTS();
  FailPointGuard Guard;
  Graph Base = makeRoad(12, 15);
  SnapshotStore Store(Base);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 1;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  QueryEngine Engine(Store, Opts);

  failpoints::reseed(0xFA5);
  failpoints::activate("statepool.grow", 0.7);
  VertexId First = Engine.addVertices(2);
  failpoints::reset();
  EXPECT_EQ(static_cast<Count>(First), Base.numNodes());

  // The grown id is immediately usable end to end.
  std::vector<EdgeUpdate> Wire = {
      EdgeUpdate{0, First, 5, UpdateKind::Upsert},
      EdgeUpdate{First, 0, 5, UpdateKind::Upsert}};
  Engine.applyUpdates(Wire);
  Query Q;
  Q.Kind = QueryKind::PPSP;
  Q.Source = 0;
  Q.Target = First;
  QueryResult R = Engine.runBatch({Q})[0];
  EXPECT_EQ(R.Status, QueryStatus::Ok);
  EXPECT_EQ(R.Dist, Priority{5});
}

//===----------------------------------------------------------------------===//
// Strict all-or-nothing batches (no faults; runs in every build).
//===----------------------------------------------------------------------===//

TEST(FailPoint, StrictBatchesRejectAtomicallyAndBitCompatibly) {
  Graph Base = makeRoad(14, 21);
  SnapshotStore::Options PO;
  PO.StrictBatches = true;
  SnapshotStore Plain(Base, PO);
  ShardedSnapshotStore::Options SO;
  SO.StrictBatches = true;
  SO.NumShards = 3;
  ShardedSnapshotStore Sharded(Base, SO);

  // A good prefix plus one malformed record: strict mode must apply
  // nothing and publish nothing, identically in both stores.
  std::vector<EdgeUpdate> Poisoned = {
      EdgeUpdate{0, 1, 9, UpdateKind::Upsert},
      EdgeUpdate{1, 2, 9, UpdateKind::Upsert},
      EdgeUpdate{3, 3, 4, UpdateKind::Upsert}, // self-loop: malformed
  };
  const uint64_t PV = Plain.version(), SV = Sharded.version();
  SnapshotStore::ApplyResult PR = Plain.applyUpdates(Poisoned);
  ShardedSnapshotStore::ApplyResult SR = Sharded.applyUpdates(Poisoned);
  EXPECT_EQ(PR.Status, ApplyStatus::RejectedBatch);
  EXPECT_EQ(SR.Status, ApplyStatus::RejectedBatch);
  EXPECT_FALSE(PR.Error.empty());
  EXPECT_EQ(PR.Error, SR.Error) << "rejection must be bit-compatible";
  EXPECT_TRUE(PR.Applied.empty());
  EXPECT_EQ(Plain.version(), PV) << "no version may publish on rejection";
  EXPECT_EQ(Sharded.version(), SV);
  // The good prefix must NOT have leaked into the overlay.
  bool Found = false;
  for (WNode E : Plain.current()->outNeighbors(0))
    Found |= E.V == 1 && E.W == 9;
  EXPECT_FALSE(Found) << "rejected batch partially applied";

  // A clean batch then applies normally.
  std::vector<EdgeUpdate> Good = {EdgeUpdate{0, 1, 9, UpdateKind::Upsert}};
  EXPECT_EQ(Plain.applyUpdates(Good).Status, ApplyStatus::Ok);
  EXPECT_EQ(Sharded.applyUpdates(Good).Status, ApplyStatus::Ok);
  EXPECT_EQ(Plain.version(), PV + 1);
  EXPECT_EQ(Sharded.version(), SV + 1);
}

TEST(FailPoint, DefaultModeStillSkipsMalformedRecords) {
  // The historical contract — skip bad records, apply the rest — is load
  // bearing (the stress harness feeds malformed writes to all stores and
  // expects identical skips), so strict mode must stay opt-in.
  Graph Base = makeRoad(10, 27);
  SnapshotStore Store(Base);
  std::vector<EdgeUpdate> Mixed = {
      EdgeUpdate{0, 1, 9, UpdateKind::Upsert},
      EdgeUpdate{2, 2, 4, UpdateKind::Upsert}, // skipped
  };
  SnapshotStore::ApplyResult R = Store.applyUpdates(Mixed);
  EXPECT_EQ(R.Status, ApplyStatus::Ok);
  // The symmetric store applies the one valid upsert as a forward +
  // reverse pair; the self-loop contributes nothing.
  EXPECT_EQ(R.Applied.size(), 2u);
  for (const AppliedUpdate &A : R.Applied)
    EXPECT_NE(A.Src, VertexId{2});
}
