//===- tests/vertex_insertion_test.cpp - Live vertex insertion ------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Edge cases of the appendable-tail vertex universe: insertion into an
// empty graph, insert-then-query (unreachable until seeded), insertion
// under a permuted store (external-id round-trips through the identity
// tail), insertion followed by compaction (synchronous and background
// replay), and hot-state/pooled-state resizing in the QueryEngine.
//
//===----------------------------------------------------------------------===//

#include "stress_harness.h"

#include "algorithms/IncrementalSSSP.h"
#include "algorithms/SSSP.h"
#include "graph/Builder.h"
#include "graph/Generators.h"
#include "service/QueryEngine.h"
#include "service/SnapshotStore.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace graphit;
using namespace graphit::service;
using namespace graphit::stress;

namespace {

Graph roadGraph(Count Side, uint64_t Seed = 4242) {
  RoadNetwork Net = roadGrid(Side, Side, Seed);
  BuildOptions Options;
  Options.Symmetrize = true;
  return GraphBuilder(Options).build(Net.NumNodes, Net.Edges,
                                     std::move(Net.Coords));
}

} // namespace

//===----------------------------------------------------------------------===//
// DeltaGraph tail region
//===----------------------------------------------------------------------===//

TEST(VertexInsertion, TailVerticesStartEmptyAndMirrorInEdges) {
  // Directed base with incoming adjacency.
  std::vector<Edge> Edges = {{0, 1, 4}, {1, 2, 3}};
  auto Base = std::make_shared<const Graph>(GraphBuilder().build(3, Edges));
  DeltaGraph D(Base);
  ASSERT_TRUE(D.hasInEdges());

  VertexId V3 = D.addVertex();
  EXPECT_EQ(V3, 3u);
  EXPECT_EQ(D.numNodes(), 4);
  EXPECT_EQ(D.tailNodes(), 1);
  EXPECT_EQ(D.outDegree(V3), 0);
  EXPECT_EQ(D.inDegree(V3), 0);
  EXPECT_EQ(D.outNeighbors(V3).size(), 0);
  EXPECT_EQ(D.inNeighbors(V3).size(), 0);

  // Edges touching the tail vertex apply like any other, including the
  // mirrored in-adjacency both ways.
  std::vector<AppliedUpdate> A = D.apply({
      EdgeUpdate{2, V3, 7, UpdateKind::Upsert},
      EdgeUpdate{V3, 0, 2, UpdateKind::Upsert},
  });
  ASSERT_EQ(A.size(), 2u);
  EXPECT_EQ(D.outDegree(V3), 1);
  EXPECT_EQ(D.inDegree(V3), 1);
  bool SawMirror = false;
  for (WNode E : D.inNeighbors(0))
    if (E.V == V3 && E.W == 2)
      SawMirror = true;
  EXPECT_TRUE(SawMirror);

  // The universe check tracks the tail: an edge to a not-yet-inserted id
  // is still rejected.
  EXPECT_TRUE(D.apply({EdgeUpdate{0, 9, 1, UpdateKind::Upsert}}).empty());

  // Compaction folds the tail into the fresh base.
  Graph C = D.compact();
  EXPECT_EQ(C.numNodes(), 4);
  EXPECT_EQ(C.numEdges(), D.numEdges());
  EXPECT_EQ(C.outDegree(3), 1);
}

TEST(VertexInsertion, CoordinatesExtendCopyOnGrow) {
  Graph G = roadGraph(6);
  auto Base = std::make_shared<const Graph>(G);
  DeltaGraph D(Base);
  ASSERT_TRUE(D.hasCoordinates());
  double X0 = D.coordinates().X[0], Y0 = D.coordinates().Y[0];

  VertexId V = D.addVertex(X0 + 0.5, Y0 + 0.25);
  EXPECT_EQ(D.coordinates().size(), D.numNodes());
  EXPECT_DOUBLE_EQ(D.coordinates().X[V], X0 + 0.5);
  EXPECT_DOUBLE_EQ(D.coordinates().Y[V], Y0 + 0.25);
  // The base graph's coordinates are untouched (copy-on-grow).
  EXPECT_EQ(Base->coordinates().size(), Base->numNodes());

  Graph C = D.compact();
  ASSERT_TRUE(C.hasCoordinates());
  EXPECT_EQ(C.coordinates().size(), C.numNodes());
  EXPECT_DOUBLE_EQ(C.coordinates().X[V], X0 + 0.5);
}

//===----------------------------------------------------------------------===//
// Insertion into an empty graph
//===----------------------------------------------------------------------===//

TEST(VertexInsertion, IntoEmptyGraph) {
  SnapshotStore Store(GraphBuilder().build(0, {}));
  EXPECT_EQ(Store.numNodes(), 0);

  VertexId First = Store.addVertices(3);
  EXPECT_EQ(First, 0u);
  EXPECT_EQ(Store.numNodes(), 3);
  EXPECT_EQ(Store.version(), 1u);

  SnapshotStore::ApplyResult A = Store.applyUpdates({
      EdgeUpdate{0, 1, 5, UpdateKind::Upsert},
      EdgeUpdate{1, 2, 7, UpdateKind::Upsert},
  });
  ASSERT_EQ(A.Applied.size(), 2u);

  // GraphBuilder marks an edgeless build unweighted, so a store seeded
  // from an empty graph serves unit weights: distances are hop counts.
  EXPECT_FALSE(A.Snap->isWeighted());
  Schedule S;
  SSSPResult D = deltaSteppingSSSP(*A.Snap, 0, S);
  EXPECT_EQ(D.Dist[0], 0);
  EXPECT_EQ(D.Dist[1], 1);
  EXPECT_EQ(D.Dist[2], 2);

  // Sharded flavor of the same scenario.
  ShardedSnapshotStore::Options Opts;
  Opts.NumShards = 2;
  ShardedSnapshotStore Sharded(GraphBuilder().build(0, {}), Opts);
  EXPECT_EQ(Sharded.addVertices(3), 0u);
  ShardedSnapshotStore::ApplyResult SA = Sharded.applyUpdates({
      EdgeUpdate{0, 1, 5, UpdateKind::Upsert},
      EdgeUpdate{1, 2, 7, UpdateKind::Upsert},
  });
  SSSPResult DS = deltaSteppingSSSP(*SA.Snap, 0, S);
  EXPECT_EQ(DS.Dist, D.Dist);
}

//===----------------------------------------------------------------------===//
// Insert then query: unreachable until an edge batch seeds it
//===----------------------------------------------------------------------===//

TEST(VertexInsertion, InsertThenQueryUnreachableThenSeeded) {
  Graph G = roadGraph(10);
  SnapshotStore Store(G);
  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  Opts.HotSourceCapacity = 2;
  QueryEngine Engine(Store, Opts);

  // Warm a hot source, then grow the universe through the engine.
  Query Warm;
  Warm.Kind = QueryKind::SSSP;
  Warm.Source = 0;
  ASSERT_FALSE(Engine.runBatch({Warm})[0].Failed);

  VertexId NewV = Engine.addVertices(1);
  EXPECT_EQ(NewV, static_cast<VertexId>(G.numNodes()));

  // Queries to/from the new id are accepted immediately; it is simply
  // unreachable (and reaches only itself) until an edge seeds it.
  Query To;
  To.Kind = QueryKind::PPSP;
  To.Source = 0;
  To.Target = NewV;
  Query From;
  From.Kind = QueryKind::SSSP;
  From.Source = NewV;
  From.CollectReached = true;
  std::vector<QueryResult> R = Engine.runBatch({To, From});
  ASSERT_FALSE(R[0].Failed);
  ASSERT_FALSE(R[1].Failed);
  EXPECT_EQ(R[0].Dist, kInfiniteDistance);
  ASSERT_EQ(R[1].Reached.size(), 1u); // the source itself
  EXPECT_EQ(R[1].Reached[0].first, NewV);

  // Seed it next to vertex 0 and re-query: finite both ways, and the
  // repaired hot state agrees with a fresh recompute.
  Engine.applyUpdates({EdgeUpdate{0, NewV, 42, UpdateKind::Upsert}});
  std::vector<QueryResult> R2 = Engine.runBatch({To, Warm});
  EXPECT_EQ(R2[0].Dist, 42);

  SnapshotStore::Snapshot Snap = Store.current();
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  SSSPResult Fresh = deltaSteppingSSSP(*Snap, 0, S);
  EXPECT_EQ(Fresh.Dist[NewV], 42);
  EXPECT_GT(Engine.hotRepairs(), 0u);
}

//===----------------------------------------------------------------------===//
// Insertion under a permuted store: external-id round-trips
//===----------------------------------------------------------------------===//

TEST(VertexInsertion, UnderPermutedStoreRoundTripsExternalIds) {
  Graph G = roadGraph(12);
  SnapshotStore Plain(G);
  SnapshotStore::Options PermutedOpts;
  PermutedOpts.Reorder = ReorderKind::Bfs;
  SnapshotStore Permuted(G, PermutedOpts);
  ASSERT_FALSE(Permuted.mapping().isIdentity());

  QueryEngine::Options Opts;
  Opts.NumWorkers = 2;
  Opts.TrackParents = true;
  Opts.DefaultSchedule.configApplyPriorityUpdateDelta(1024);
  QueryEngine Reference(Plain, Opts);
  QueryEngine Engine(Permuted, Opts);

  // Insert the same two vertices into both stores; the new external ids
  // are identical (identity tail), and the mapping passes them through.
  VertexId A = Reference.addVertices(2);
  VertexId B = Engine.addVertices(2);
  ASSERT_EQ(A, B);
  ASSERT_EQ(A, static_cast<VertexId>(G.numNodes()));
  EXPECT_EQ(Permuted.mapping().toInternal(A), A);
  EXPECT_EQ(Permuted.mapping().toExternal(A), A);

  // External-id traffic naming old and new ids lands identically.
  std::vector<EdgeUpdate> Wire = {
      EdgeUpdate{5, A, 9, UpdateKind::Upsert},
      EdgeUpdate{A, static_cast<VertexId>(A + 1), 4, UpdateKind::Upsert},
      EdgeUpdate{static_cast<VertexId>(A + 1), 17, 6, UpdateKind::Upsert},
  };
  Reference.applyUpdates(Wire);
  Engine.applyUpdates(Wire);

  std::vector<Query> Queries;
  for (VertexId Src : {VertexId{5}, A}) {
    Query Q;
    Q.Kind = QueryKind::SSSP;
    Q.Source = Src;
    Q.CollectReached = true;
    Queries.push_back(Q);
    Query P;
    P.Kind = QueryKind::PPSP;
    P.Source = Src;
    P.Target = 17;
    P.CollectPath = true;
    Queries.push_back(P);
  }
  std::vector<QueryResult> Got = Engine.runBatch(Queries);
  std::vector<QueryResult> Want = Reference.runBatch(Queries);
  for (size_t I = 0; I < Queries.size(); ++I) {
    ASSERT_FALSE(Got[I].Failed) << I;
    EXPECT_EQ(Got[I].Dist, Want[I].Dist) << I;
    EXPECT_EQ(Got[I].Reached, Want[I].Reached) << I;
  }
}

//===----------------------------------------------------------------------===//
// Insertion followed by compaction
//===----------------------------------------------------------------------===//

TEST(VertexInsertion, SurvivesSynchronousCompaction) {
  SnapshotStore::Options Opts;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 32;
  SnapshotStore Store(roadGraph(10), Opts);
  const Count BaseN = Store.numNodes();

  VertexId NewV = Store.addVertices(1);
  Store.applyUpdates({EdgeUpdate{0, NewV, 3, UpdateKind::Upsert},
                      EdgeUpdate{NewV, 5, 4, UpdateKind::Upsert}});

  // Pile on batches until compaction folds the tail into the base.
  DeltaGraph Ref(std::make_shared<const Graph>(roadGraph(10)));
  Ref.growUniverse(BaseN + 1);
  Ref.apply({EdgeUpdate{0, NewV, 3, UpdateKind::Upsert},
             EdgeUpdate{NewV, 5, 4, UpdateKind::Upsert}});
  SplitMix64 Rng(55);
  while (Store.compactions() == 0) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 16, Rng);
    Ref.apply(Batch);
    Store.applyUpdates(Batch);
  }
  SnapshotStore::Snapshot Snap = Store.current();
  EXPECT_EQ(Snap->numNodes(), BaseN + 1);
  EXPECT_EQ(Snap->tailNodes(), 0); // folded into the base
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  SSSPResult Got = deltaSteppingSSSP(*Snap, 0, S);
  SSSPResult Want = deltaSteppingSSSP(Ref, 0, S);
  EXPECT_EQ(Got.Dist, Want.Dist);
}

TEST(VertexInsertion, BackgroundCompactionReplaysGrowth) {
  // The replay fix under test: growth + batches referencing the new ids
  // land while the background compactor rebuilds from a pre-growth
  // snapshot; the replay must re-grow before re-applying or the edges
  // would be range-rejected.
  SnapshotStore::Options Sync;
  Sync.CompactionThreshold = 1e9;
  SnapshotStore Reference(roadGraph(12), Sync);

  SnapshotStore::Options Opts;
  Opts.CompactionThreshold = 0.01;
  Opts.MinOverlayEdges = 32;
  Opts.BackgroundCompaction = true;
  SnapshotStore Store(roadGraph(12), Opts);

  DeltaGraph Ref(std::make_shared<const Graph>(roadGraph(12)));
  SplitMix64 Rng(77);
  for (int I = 0; I < 12; ++I) {
    std::vector<EdgeUpdate> Batch = randomBatch(Ref, 24, Rng);
    Ref.apply(Batch);
    Reference.applyUpdates(Batch);
    SnapshotStore::ApplyResult A = Store.applyUpdates(Batch);
    if (A.CompactionTriggered) {
      // Race the compactor: grow and wire the fresh vertex immediately.
      VertexId NewV = Store.addVertices(1);
      Reference.addVertices(1);
      Ref.growUniverse(Ref.numNodes() + 1);
      std::vector<EdgeUpdate> Wire = {
          EdgeUpdate{3, NewV, 9, UpdateKind::Upsert}};
      Store.applyUpdates(Wire);
      Reference.applyUpdates(Wire);
      Ref.apply(Wire);
    }
  }
  Store.waitForCompaction();
  ASSERT_GT(Store.compactions(), 0u);

  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  SnapshotStore::Snapshot Got = Store.current();
  SnapshotStore::Snapshot Want = Reference.current();
  ASSERT_EQ(Got->numNodes(), Want->numNodes());
  ASSERT_EQ(Got->numEdges(), Want->numEdges());
  SSSPResult DG = deltaSteppingSSSP(*Got, 3, S);
  SSSPResult DW = deltaSteppingSSSP(*Want, 3, S);
  EXPECT_EQ(DG.Dist, DW.Dist);
}

//===----------------------------------------------------------------------===//
// Incremental repair across insertion
//===----------------------------------------------------------------------===//

TEST(VertexInsertion, RepairSeedsInsertedVertices) {
  SnapshotStore Store(roadGraph(10));
  Schedule S;
  S.configApplyPriorityUpdateDelta(1024);
  DistanceState State(Store.numNodes());
  deltaSteppingSSSP(*Store.current(), 0, S, State);
  RepairScratch Scratch;

  VertexId NewV = Store.addVertices(1);
  State.resize(Store.numNodes()); // growth alone changes no distance

  SnapshotStore::ApplyResult A = Store.applyUpdates(
      {EdgeUpdate{1, NewV, 6, UpdateKind::Upsert},
       EdgeUpdate{NewV, 2, 1, UpdateKind::Upsert}});
  repairAfterUpdates(*A.Snap, A.Applied, State, S, Scratch);

  SSSPResult Fresh = deltaSteppingSSSP(*A.Snap, 0, S);
  ASSERT_EQ(Fresh.Dist.size(), State.distances().size());
  for (size_t V = 0; V < Fresh.Dist.size(); ++V)
    ASSERT_EQ(State.distances()[V], Fresh.Dist[V]) << "vertex " << V;
  EXPECT_LT(State.dist(NewV), kInfiniteDistance);
}
