//===- autotuner/Autotuner.cpp - Schedule autotuning ----------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "autotuner/Autotuner.h"

#include "support/Abort.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace graphit;

int64_t TuningSpace::size() const {
  return static_cast<int64_t>(Strategies.size()) *
         static_cast<int64_t>(Deltas.size()) *
         static_cast<int64_t>(FusionThresholds.size()) *
         static_cast<int64_t>(Directions.size()) *
         static_cast<int64_t>(NumBucketsChoices.size()) *
         static_cast<int64_t>(std::max<size_t>(Orderings.size(), 1));
}

Schedule TuningSpace::at(int64_t I) const {
  if (I < 0 || I >= size())
    fatalError("TuningSpace::at out of range");
  Schedule S;
  S.Update = Strategies[I % Strategies.size()];
  I /= static_cast<int64_t>(Strategies.size());
  S.Delta = Deltas[I % Deltas.size()];
  I /= static_cast<int64_t>(Deltas.size());
  S.FusionThreshold = FusionThresholds[I % FusionThresholds.size()];
  I /= static_cast<int64_t>(FusionThresholds.size());
  S.Dir = Directions[I % Directions.size()];
  I /= static_cast<int64_t>(Directions.size());
  S.NumOpenBuckets = NumBucketsChoices[I % NumBucketsChoices.size()];
  return S;
}

ReorderKind TuningSpace::orderingAt(int64_t I) const {
  if (I < 0 || I >= size())
    fatalError("TuningSpace::orderingAt out of range");
  if (Orderings.empty())
    return ReorderKind::None;
  // The ordering is the outermost mixed-radix digit, above every
  // schedule dimension.
  int64_t ScheduleCombos =
      size() / static_cast<int64_t>(Orderings.size());
  return Orderings[static_cast<size_t>(I / ScheduleCombos)];
}

TuningSpace TuningSpace::distanceSpace() {
  TuningSpace Space;
  Space.Strategies = {UpdateStrategy::EagerWithFusion,
                      UpdateStrategy::EagerNoFusion, UpdateStrategy::Lazy};
  for (int Exp = 0; Exp <= 17; Exp += 1)
    Space.Deltas.push_back(int64_t{1} << Exp);
  Space.FusionThresholds = {100, 1000, 10000};
  Space.Directions = {Direction::SparsePush, Direction::DensePull,
                      Direction::Hybrid};
  Space.NumBucketsChoices = {32, 128, 512};
  return Space;
}

TuningSpace TuningSpace::distanceLayoutSpace() {
  TuningSpace Space = distanceSpace();
  // Random is the adversarial baseline, not a candidate layout.
  Space.Orderings = {ReorderKind::None, ReorderKind::Degree,
                     ReorderKind::Bfs, ReorderKind::Push};
  return Space;
}

TuningSpace TuningSpace::peelingSpace() {
  TuningSpace Space;
  Space.Strategies = {UpdateStrategy::LazyConstantSum, UpdateStrategy::Lazy,
                      UpdateStrategy::EagerNoFusion};
  Space.Deltas = {1}; // no priority coarsening for k-core/SetCover (§2)
  Space.FusionThresholds = {1000};
  Space.Directions = {Direction::SparsePush};
  Space.NumBucketsChoices = {32, 128, 512};
  return Space;
}

TuningResult graphit::autotuneLayout(const TuningSpace &Space,
                                     const LayoutEvalFn &Eval,
                                     const TuningOptions &Options) {
  if (Space.size() <= 0)
    fatalError("autotune: empty tuning space");
  Timer Clock;
  TuningResult R;
  R.BestSeconds = std::numeric_limits<double>::infinity();

  SplitMix64 Rng(Options.Seed);
  std::set<int64_t> Tried;
  int64_t SpaceSize = Space.size();
  int Trials = std::max(1, Options.MaxTrials);

  auto Measure = [&](ReorderKind Ordering, const Schedule &S) {
    double Seconds = Eval(Ordering, S);
    ++R.Evaluated;
    if (!std::isfinite(Seconds))
      return;
    R.History.push_back(TuningSample{S, Ordering, Seconds});
    if (Seconds < R.BestSeconds) {
      R.BestSeconds = Seconds;
      R.Best = S;
      R.BestOrdering = Ordering;
    }
  };

  // Phase 1: seeded random sampling without replacement.
  for (int T = 0; T < Trials; ++T) {
    if (T > 0 && Clock.seconds() > Options.TimeBudgetSeconds)
      break;
    if (static_cast<int64_t>(Tried.size()) >= SpaceSize)
      break;
    int64_t Pick;
    do {
      Pick = Rng.nextInt(0, SpaceSize);
    } while (!Tried.insert(Pick).second);
    Measure(Space.orderingAt(Pick), Space.at(Pick));
  }

  // Phase 2: successive-halving style refinement — re-measure the leaders
  // so the winner is not a fluke of one noisy run.
  std::vector<TuningSample> Ranked = R.History;
  std::sort(Ranked.begin(), Ranked.end(),
            [](const TuningSample &A, const TuningSample &B) {
              return A.Seconds < B.Seconds;
            });
  int Leaders = std::min<int>(Options.RefineTop,
                              static_cast<int>(Ranked.size()));
  for (int L = 0; L < Leaders; ++L) {
    for (int Rep = 0; Rep < Options.RefineRepeats; ++Rep) {
      if (Clock.seconds() > Options.TimeBudgetSeconds)
        break;
      Measure(Ranked[L].Ordering, Ranked[L].Sched);
    }
  }

  R.ElapsedSeconds = Clock.seconds();
  return R;
}

TuningResult graphit::autotune(const TuningSpace &Space, const EvalFn &Eval,
                               const TuningOptions &Options) {
  // Schedule-only search: collapse the layout dimension so samples are
  // never spent distinguishing configurations the oracle cannot tell
  // apart.
  TuningSpace ScheduleOnly = Space;
  ScheduleOnly.Orderings = {ReorderKind::None};
  return autotuneLayout(
      ScheduleOnly,
      [&Eval](ReorderKind, const Schedule &S) { return Eval(S); }, Options);
}
