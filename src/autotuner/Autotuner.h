//===- autotuner/Autotuner.h - Schedule autotuning --------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner of §5.3: a stochastic search over the scheduling space
/// (bucket-update strategy x Δ x direction x fusion threshold x open
/// buckets) under a time budget. The paper builds on OpenTuner; this
/// reproduction uses seeded random sampling with a successive-halving
/// refinement of the leaders — the same "try many schedules, spend more
/// time on promising ones" structure, self-contained.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_AUTOTUNER_AUTOTUNER_H
#define GRAPHIT_AUTOTUNER_AUTOTUNER_H

#include "core/Schedule.h"
#include "graph/Reorder.h"

#include <functional>
#include <string>
#include <vector>

namespace graphit {

/// The cross-product search space. Empty dimensions are illegal.
///
/// GraphIt's thesis is that data layout is a tuning dimension like any
/// other: `Orderings` adds the vertex layout (graph/Reorder.h) to the
/// cross product. It defaults to {None} so schedule-only searches are
/// unchanged; `autotuneLayout` searches the full {ordering × schedule}
/// space.
struct TuningSpace {
  std::vector<UpdateStrategy> Strategies;
  std::vector<int64_t> Deltas;
  std::vector<int64_t> FusionThresholds;
  std::vector<Direction> Directions;
  std::vector<int> NumBucketsChoices;
  std::vector<ReorderKind> Orderings{ReorderKind::None};

  /// Number of distinct configurations in the space (schedules ×
  /// orderings).
  int64_t size() const;

  /// The I-th schedule under mixed-radix enumeration (the ordering is the
  /// outermost digit; see orderingAt).
  Schedule at(int64_t I) const;

  /// The I-th configuration's vertex ordering.
  ReorderKind orderingAt(int64_t I) const;

  /// The space the paper's experiments search for distance algorithms:
  /// all four strategies, Δ in powers of two up to 2^17, both
  /// directions, a few thresholds/bucket counts (~10^3-10^6 combinations
  /// depending on trimming).
  static TuningSpace distanceSpace();

  /// distanceSpace() with every lightweight ordering (minus the
  /// adversarial Random) as a layout dimension.
  static TuningSpace distanceLayoutSpace();

  /// Space for peeling algorithms (no coarsening: Δ fixed at 1).
  static TuningSpace peelingSpace();
};

/// Tuning knobs for the search itself.
struct TuningOptions {
  double TimeBudgetSeconds = 60.0; ///< hard wall-clock budget
  int MaxTrials = 40;              ///< distinct schedules to sample
  int RefineTop = 3;               ///< leaders re-measured for stability
  int RefineRepeats = 2;           ///< extra measurements per leader
  uint64_t Seed = 0x5EED;
};

/// One measurement: configuration and its (best observed) cost in seconds.
struct TuningSample {
  Schedule Sched;
  ReorderKind Ordering = ReorderKind::None;
  double Seconds = 0.0;
};

/// Search outcome.
struct TuningResult {
  Schedule Best;
  ReorderKind BestOrdering = ReorderKind::None;
  double BestSeconds = 0.0;
  int Evaluated = 0;
  double ElapsedSeconds = 0.0;
  std::vector<TuningSample> History; ///< in evaluation order
};

/// Cost oracle: runs the algorithm under a schedule, returns seconds.
/// Infinite/NaN results are treated as failures and skipped.
using EvalFn = std::function<double(const Schedule &)>;

/// Layout-aware cost oracle: runs the algorithm under (ordering,
/// schedule). The oracle owns the reordered graphs — typically built once
/// per ordering and cached, since many schedules share each layout.
using LayoutEvalFn =
    std::function<double(ReorderKind, const Schedule &)>;

/// Runs the search over schedules only (Orderings in \p Space are
/// ignored). Always evaluates at least one schedule.
TuningResult autotune(const TuningSpace &Space, const EvalFn &Eval,
                      const TuningOptions &Options = TuningOptions());

/// Runs the search over the full {ordering × schedule} cross product.
TuningResult autotuneLayout(const TuningSpace &Space,
                            const LayoutEvalFn &Eval,
                            const TuningOptions &Options = TuningOptions());

} // namespace graphit

#endif // GRAPHIT_AUTOTUNER_AUTOTUNER_H
