//===- service/Store.h - The Store concept ----------------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *Store* concept: the writer/publisher surface a live store must
/// expose for `BasicQueryEngine` (service/QueryEngine.h) to serve it.
/// `SnapshotStore` and `ShardedSnapshotStore` both model it, so one engine
/// template covers single-writer and sharded multi-writer serving — pooled
/// states, landmarks, hot-state sharing, admission control and deadlines
/// included.
///
/// A model of Store provides:
///
///  * `Snapshot` — a `shared_ptr<const View>` pinning one published
///    version; `View` is any graph the algorithm layer accepts
///    (`DeltaGraph`, `ShardedDeltaView`, ...). Pinned views are immutable.
///  * `ApplyResult` — the batch outcome carrying `Status`, `Error`,
///    `CompactionError`, `Version`, coalesced `Applied` transitions, the
///    pre-pinned `Snap`, and `CompactionTriggered`.
///  * read side: `current()`, `currentVersioned()`, `version()`,
///    `numNodes()`, `mapping()`, `compactions()`, `degraded()`,
///    `lastError()` — all thread-safe against concurrent writers.
///  * write side: `applyUpdates(batch)`, `addVertices(n, coords)`,
///    `removeVertex(id)`, `acquireVertex(coords)`, `freeVertexCount()`,
///    `waitForCompaction()`.
///
/// The check is a C++17 detection-idiom trait (`is_store_v`), promoted to
/// a real `concept` when compiled under C++20 — the engine static_asserts
/// it, so plugging in a type missing part of the surface fails with one
/// readable diagnostic instead of a page of member-lookup errors.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SERVICE_STORE_H
#define GRAPHIT_SERVICE_STORE_H

#include "graph/Graph.h"

#include <type_traits>
#include <utility>
#include <vector>

namespace graphit {

struct EdgeUpdate;
class VertexMapping;

namespace detail {

/// Detection idiom: `StoreSurface<void, S>` is well-formed only when every
/// expression the engine issues against a store compiles for `S`.
template <typename, typename S> struct StoreSurface : std::false_type {};

template <typename S>
struct StoreSurface<
    std::void_t<
        typename S::Snapshot, typename S::ApplyResult,
        decltype(std::declval<const S &>().current()),
        decltype(std::declval<const S &>().currentVersioned()),
        decltype(std::declval<const S &>().version()),
        decltype(std::declval<const S &>().numNodes()),
        decltype(std::declval<const S &>().mapping()),
        decltype(std::declval<const S &>().compactions()),
        decltype(std::declval<const S &>().degraded()),
        decltype(std::declval<const S &>().lastError()),
        decltype(std::declval<S &>().applyUpdates(
            std::declval<const std::vector<EdgeUpdate> &>())),
        decltype(std::declval<S &>().addVertices(
            std::declval<Count>(),
            std::declval<const Coordinates *>())),
        decltype(std::declval<S &>().removeVertex(std::declval<VertexId>())),
        decltype(std::declval<S &>().acquireVertex(
            std::declval<const Coordinates *>())),
        decltype(std::declval<const S &>().freeVertexCount()),
        decltype(std::declval<S &>().waitForCompaction())>,
    S>
    : std::conjunction<
          std::is_same<typename S::ApplyResult,
                       decltype(std::declval<S &>().applyUpdates(
                           std::declval<const std::vector<EdgeUpdate> &>()))>,
          std::is_same<typename S::Snapshot,
                       decltype(std::declval<const S &>().current())>,
          std::is_same<std::pair<typename S::Snapshot, uint64_t>,
                       decltype(std::declval<const S &>().currentVersioned())>,
          std::is_same<const VertexMapping &,
                       decltype(std::declval<const S &>().mapping())>> {};

} // namespace detail

/// True when \p S models the Store concept above.
template <typename S>
inline constexpr bool is_store_v = detail::StoreSurface<void, S>::value;

#if defined(__cpp_concepts) && __cpp_concepts >= 201907L
/// The same surface as a real concept (C++20 and later): identical
/// membership to `is_store_v`, but usable in requires-clauses.
template <typename S>
concept Store = is_store_v<S>;
#endif

} // namespace graphit

#endif // GRAPHIT_SERVICE_STORE_H
