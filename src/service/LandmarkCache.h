//===- service/LandmarkCache.h - ALT landmark heuristic ---------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ALT (A*, Landmarks, Triangle inequality) heuristic of Goldberg &
/// Harrelson, precomputed once per graph snapshot and shared read-only by
/// every concurrent query.
///
/// A set of landmarks L is chosen by farthest-point sampling and the full
/// distance vector d(l, ·) is computed for each. The triangle inequality
/// d(l, t) <= d(l, v) + d(v, t) gives the admissible bound
///
///     h(v) = max over l of ( d(l, t) - d(l, v) )+
///
/// which is also consistent (each term changes by at most w(u,v) along an
/// edge, and max preserves that), so it plugs straight into the A*
/// heuristic hook of the ordered engine. On graphs with coordinates the
/// bound is combined with the coordinate heuristic by max — the max of two
/// admissible, consistent bounds is again admissible and consistent, and
/// landmarks are often much tighter along road corridors.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SERVICE_LANDMARKCACHE_H
#define GRAPHIT_SERVICE_LANDMARKCACHE_H

#include "algorithms/AStar.h"
#include "core/Schedule.h"
#include "graph/Graph.h"

#include <memory>
#include <vector>

namespace graphit {
namespace service {

/// Precomputed landmark distances + the ALT lower bound. Immutable after
/// construction; safe to share across threads.
class LandmarkCache : public AStarHeuristic {
public:
  /// Picks \p NumLandmarks landmarks by farthest-point sampling (seeded by
  /// a probe SSSP from vertex \p ProbeStart) and runs one Δ-stepping SSSP
  /// per landmark under schedule \p S.
  LandmarkCache(const Graph &G, int NumLandmarks, const Schedule &S,
                VertexId ProbeStart = 0);

  /// Owning variant for caches whose graph has no other holder — the live
  /// QueryEngine builds one from a compacted snapshot and keeps the
  /// compacted CSR alive exactly as long as the cache.
  LandmarkCache(std::shared_ptr<const Graph> GPtr, int NumLandmarks,
                const Schedule &S, VertexId ProbeStart = 0);

  /// The ALT bound, combined with the coordinate bound when available.
  /// h(Target, Target) == 0; pairs unreachable from some landmark are
  /// handled conservatively (see kUnreachableBound).
  Priority estimate(VertexId V, VertexId Target) const override;

  /// Per-query snapshot of the target-side landmark distances. `estimate`
  /// runs once per edge relaxation, and the d(l, Target) terms are
  /// constant for a whole query — gathering them from K separate
  /// |V|-sized vectors on every call is pure cache-miss traffic. Build
  /// one of these per query (QueryEngine::runOne does) so the hot loop
  /// reads a small contiguous array plus the unavoidable d(l, V) loads.
  class TargetBound : public AStarHeuristic {
  public:
    TargetBound(const LandmarkCache &Cache, VertexId Target);
    Priority estimate(VertexId V, VertexId Target) const override;

  private:
    const LandmarkCache &Cache;
    std::vector<Priority> TargetDist; ///< d(l, Target) per landmark
  };

  /// Convenience factory for the snapshot above.
  TargetBound boundFor(VertexId Target) const {
    return TargetBound(*this, Target);
  }

  int numLandmarks() const { return static_cast<int>(Landmarks.size()); }
  const std::vector<VertexId> &landmarks() const { return Landmarks; }

  /// d(landmark L, V) as precomputed.
  Priority landmarkDist(int L, VertexId V) const {
    return DistFrom[static_cast<size_t>(L)][V];
  }

  /// Bound returned when a landmark proves the target unreachable from V
  /// (the landmark reaches V but not the target, so no V → target path
  /// exists). Large enough to prune, small enough that dist + h never
  /// overflows the engine's key space.
  static constexpr Priority kUnreachableBound = kInfiniteDistance / 2;

private:
  /// Shared core of `estimate` / `TargetBound::estimate`: \p TargetDist
  /// points at the per-landmark d(l, Target) values (snapshotted or
  /// gathered by the caller).
  Priority estimateWith(const Priority *TargetDist, VertexId V,
                        VertexId Target) const;

  const Graph &G;
  std::shared_ptr<const Graph> Owned; ///< set by the owning constructor
  bool UseCoordinates;
  std::vector<VertexId> Landmarks;
  std::vector<std::vector<Priority>> DistFrom; ///< [landmark][vertex]
};

} // namespace service
} // namespace graphit

#endif // GRAPHIT_SERVICE_LANDMARKCACHE_H
