//===- service/SnapshotStore.cpp - Versioned live-graph snapshots ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/SnapshotStore.h"

#include "support/FailPoint.h"

#include <chrono>
#include <unordered_map>
#include <utility>

using namespace graphit;
using namespace graphit::service;

namespace {

/// Bounded retries for snapshot publication. Publication allocates (the
/// overlay copy), so a transient failure — or the `snapshot.publish` fail
/// point — is retried; read-side state mutates only after the fallible
/// part succeeded, so a failed attempt changes nothing.
constexpr int kPublishRetryLimit = 64;

/// Describes the first malformed record of a strict-mode rejected batch.
std::string describeRejected(const EdgeUpdate &U, size_t Index) {
  return "rejected batch: malformed update #" + std::to_string(Index) +
         " (" + std::to_string(U.Src) + " -> " + std::to_string(U.Dst) +
         ", w=" + std::to_string(U.W) + ")";
}

} // namespace

SnapshotStore::SnapshotStore(Graph Base, Options O) : Opts(O) {
  // Reorder-on-load before the base CSR is frozen (no-op move for None).
  Writer = DeltaGraph(std::make_shared<const Graph>(
      reorderLoadedGraph(std::move(Base), Opts.Reorder, &Map,
                         /*Seed=*/0x0EDE5, Opts.ReorderSourceHint)));
  Current = std::make_shared<const DeltaGraph>(Writer);
}

SnapshotStore::~SnapshotStore() {
  waitForCompaction();
  if (Compactor.joinable())
    Compactor.join();
}

SnapshotStore::Snapshot SnapshotStore::current() const {
  MutexLock Lock(ReadMu);
  return Current;
}

std::pair<SnapshotStore::Snapshot, uint64_t>
SnapshotStore::currentVersioned() const {
  MutexLock Lock(ReadMu);
  return {Current, Version};
}

uint64_t SnapshotStore::version() const {
  MutexLock Lock(ReadMu);
  return Version;
}

uint64_t SnapshotStore::compactions() const {
  MutexLock Lock(ReadMu);
  return Compactions;
}

Count SnapshotStore::numNodes() const {
  MutexLock Lock(ReadMu);
  return Current->numNodes();
}

void SnapshotStore::publish() {
  // Caller holds WriteMu (REQUIRES(WriteMu) on the declaration): Writer is
  // stable, so copying it into an immutable snapshot and swapping the
  // publish pointer is the entire read-side critical section.
  for (int Attempt = 0;; ++Attempt) {
    try {
      GRAPHIT_FAIL_POINT("snapshot.publish");
      auto Snap = std::make_shared<const DeltaGraph>(Writer);
      MutexLock Lock(ReadMu);
      Current = std::move(Snap);
      ++Version;
      return;
    } catch (const std::exception &) {
      if (Attempt >= kPublishRetryLimit)
        throw;
    }
  }
}

void SnapshotStore::noteCompactionFailure(const std::string &Message) {
  PendingError = Message; // WriteMu held by the caller
  MutexLock Lock(ReadMu);
  Degraded = true;
  LastError = Message;
}

bool SnapshotStore::degraded() const {
  MutexLock Lock(ReadMu);
  return Degraded;
}

std::string SnapshotStore::lastError() const {
  MutexLock Lock(ReadMu);
  return LastError;
}

SnapshotStore::ApplyResult
SnapshotStore::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  MutexLock WriterLock(WriteMu);
  ApplyResult R;

  // Surface a background-compaction failure exactly once, on the first
  // writer call after it happened (the sticky form stays in lastError()).
  if (!PendingError.empty()) {
    R.CompactionError = std::move(PendingError);
    PendingError.clear();
  }

  // Reordered stores translate the batch into internal (layout) ids; the
  // snapshots, applied transitions, and any repaired distance states all
  // live in that space. Out-of-range endpoints pass through untranslated —
  // DeltaGraph::apply skips them like any other malformed write.
  const std::vector<EdgeUpdate> *Apply = &Batch;
  std::vector<EdgeUpdate> Translated;
  if (!Map.isIdentity()) {
    Translated = Batch;
    const Count N = Map.size();
    for (EdgeUpdate &U : Translated) {
      if (static_cast<Count>(U.Src) < N)
        U.Src = Map.toInternal(U.Src);
      if (static_cast<Count>(U.Dst) < N)
        U.Dst = Map.toInternal(U.Dst);
    }
    Apply = &Translated;
  }

  // Strict mode: a poisoned batch is all-or-nothing. Validation runs
  // before any mutation, so a rejection leaves the writer untouched and
  // publishes no version — the caller gets a typed error plus the
  // unchanged current snapshot.
  if (Opts.StrictBatches) {
    const Count N = Writer.numNodes();
    for (size_t I = 0; I < Apply->size(); ++I) {
      if (!DeltaGraph::validUpdate((*Apply)[I], N)) {
        R.Status = ApplyStatus::RejectedBatch;
        R.Error = describeRejected((*Apply)[I], I);
        MutexLock Lock(ReadMu);
        R.Version = Version;
        R.Snap = Current;
        return R;
      }
    }
  }

  R.Applied = coalesceApplied(Writer.apply(*Apply));

  if (CompactionRunning)
    Replay.push_back(ReplayOp{*Apply, 0, nullptr});

  // Compaction bookkeeping before publishing, so a synchronous compaction
  // is part of the same published version.
  const Count Overlay = Writer.overlayEdges();
  const bool OverThreshold =
      Overlay >= Opts.MinOverlayEdges &&
      static_cast<double>(Overlay) >
          Opts.CompactionThreshold *
              static_cast<double>(Writer.base().numEdges());
  if (OverThreshold && !CompactionRunning) {
    R.CompactionTriggered = true;
    if (!Opts.BackgroundCompaction) {
      try {
        GRAPHIT_FAIL_POINT("compaction.rebuild");
        Writer = DeltaGraph(std::make_shared<const Graph>(Writer.compact()));
        MutexLock Lock(ReadMu);
        ++Compactions;
        Degraded = false;
        LastError.clear();
      } catch (const std::exception &E) {
        // Failed fold: the un-compacted overlay keeps serving and the
        // next threshold trip retries. Surfaced on this very result (the
        // pending slot is cleared so it is not reported twice).
        noteCompactionFailure(std::string("compaction failed: ") + E.what());
        R.CompactionError = std::move(PendingError);
        PendingError.clear();
      }
    } else {
      if (Compactor.joinable())
        Compactor.join(); // previous compactor already finished
      CompactionRunning = true;
      Replay.clear();
      // Pin the writer's exact content for the compactor; readers are
      // unaffected (they pin published versions).
      Snapshot Pinned = std::make_shared<const DeltaGraph>(Writer);
      Compactor = std::thread([this, Pinned = std::move(Pinned)]() mutable {
        compactorBody(std::move(Pinned));
      });
    }
  }

  publish();
  {
    MutexLock Lock(ReadMu);
    R.Version = Version;
    R.Snap = Current;
  }
  return R;
}

void SnapshotStore::compactorBody(Snapshot Pinned) {
  // Nothing may escape this thread (an uncaught exception would
  // std::terminate the process): every fallible step runs under a catch,
  // and any terminal failure downgrades to "keep serving the
  // pre-compaction state, surface the error on the next writer call".
  using SteadyClock = std::chrono::steady_clock;
  const bool HasWatchdog = Opts.CompactionWatchdogMillis > 0;
  const SteadyClock::time_point Watchdog =
      SteadyClock::now() +
      std::chrono::milliseconds(HasWatchdog ? Opts.CompactionWatchdogMillis
                                            : 0);
  auto watchdogExpired = [&] {
    return HasWatchdog && SteadyClock::now() >= Watchdog;
  };

  // Phase 1: the expensive O(V + E) rebuild, with no lock held. Bounded
  // retries with exponential backoff absorb transient faults (allocation
  // failure, injected fail points); the watchdog caps the total budget so
  // a repeatedly failing fold can never wedge writers or shutdown.
  std::string Err;
  std::shared_ptr<const Graph> NewBase;
  int64_t BackoffMillis = std::max<int64_t>(Opts.CompactionBackoffMillis, 1);
  for (int Attempt = 0;; ++Attempt) {
    try {
      GRAPHIT_FAIL_POINT("compaction.rebuild");
      NewBase = std::make_shared<const Graph>(Pinned->compact());
      break;
    } catch (const std::exception &E) {
      Err = E.what();
    } catch (...) {
      Err = "unknown compaction error";
    }
    if (Attempt >= Opts.CompactionRetryLimit || watchdogExpired())
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMillis));
    BackoffMillis *= 2;
  }
  Pinned.reset();

  MutexLock WriterLock(WriteMu);
  // Phase 2: replay the writer-side operations accepted while we were
  // compacting onto the new base. Upsert/delete/growth semantics are
  // deterministic, so the result equals the writer's current adjacency
  // with an (almost) empty overlay. Universe growth replays too —
  // otherwise a later batch referencing the new ids would be
  // range-rejected. Each retry restarts from a fresh overlay over the
  // rebuilt base, so a half-replayed attempt can never leak; no backoff
  // here — WriteMu is held and sleeping would block writers.
  bool Ok = false;
  if (NewBase) {
    for (int Attempt = 0; !Ok; ++Attempt) {
      try {
        DeltaGraph Rebuilt(NewBase);
        for (const ReplayOp &Op : Replay) {
          GRAPHIT_FAIL_POINT("compaction.replay");
          if (Op.GrowTo > 0)
            Rebuilt.growUniverse(Op.GrowTo, Op.TailCoords.get());
          else
            Rebuilt.apply(Op.Batch);
        }
        Writer = std::move(Rebuilt);
        Ok = true;
      } catch (const std::exception &E) {
        Err = E.what();
      } catch (...) {
        Err = "unknown compaction error";
      }
      if (!Ok && (Attempt >= Opts.CompactionRetryLimit || watchdogExpired()))
        break;
    }
  }

  Replay.clear();
  CompactionRunning = false;
  if (Ok) {
    {
      MutexLock Lock(ReadMu);
      ++Compactions;
      Degraded = false;
      LastError.clear();
    }
    try {
      publish();
    } catch (...) {
      // Publication failed terminally: the compacted writer state is
      // intact and the next writer call publishes it — readers just keep
      // the previous version a little longer.
    }
  } else {
    // Fallback: the pre-compaction writer (already holding every replayed
    // batch) stays authoritative and published — serving never stalls on
    // the wedged fold. The failure is surfaced on the next writer call.
    noteCompactionFailure("background compaction failed: " + Err);
  }
  CompactionCv.notify_all();
}

void SnapshotStore::waitForCompaction() {
  // Explicit wait loop (not the predicate-lambda overload): the analysis
  // is intra-procedural, so the guarded CompactionRunning read stays in a
  // scope where WriteMu is visibly held.
  MutexLock WriterLock(WriteMu);
  while (CompactionRunning)
    CompactionCv.wait(WriterLock.native());
}

bool SnapshotStore::waitForCompactionFor(int64_t TimeoutMillis) {
  MutexLock WriterLock(WriteMu);
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(TimeoutMillis);
  while (CompactionRunning) {
    if (CompactionCv.wait_until(WriterLock.native(), Deadline) ==
        std::cv_status::timeout)
      return !CompactionRunning;
  }
  return true;
}

VertexId SnapshotStore::addVertices(Count HowMany,
                                    const Coordinates *TailCoords) {
  MutexLock WriterLock(WriteMu);
  VertexId First = static_cast<VertexId>(Writer.numNodes());
  if (HowMany <= 0)
    return First; // nothing to grow; no version published
  const Count GrowTo = Writer.numNodes() + HowMany;
  Writer.growUniverse(GrowTo, TailCoords);
  if (CompactionRunning)
    Replay.push_back(ReplayOp{
        {},
        GrowTo,
        TailCoords ? std::make_shared<Coordinates>(*TailCoords) : nullptr});
  publish();
  return First;
}

SnapshotStore::ApplyResult SnapshotStore::removeVertex(VertexId External) {
  MutexLock WriterLock(WriteMu);
  ApplyResult R;
  if (!PendingError.empty()) {
    R.CompactionError = std::move(PendingError);
    PendingError.clear();
  }
  VertexId V = External;
  if (!Map.isIdentity() && static_cast<Count>(V) < Map.size())
    V = Map.toInternal(V);
  if (static_cast<Count>(V) >= Writer.numNodes()) {
    MutexLock Lock(ReadMu);
    R.Version = Version;
    R.Snap = Current; // out-of-range id: no-op, nothing published
    return R;
  }

  // Materialize the incident edges first (the neighbor ranges point into
  // the rows being deleted), then push them through the normal batch path
  // so the Applied transitions, replay recording, and publish are exactly
  // what the equivalent delete batch would produce. Symmetric graphs
  // detach both directions from the out-row alone; directed graphs with
  // incoming adjacency also delete the in-edges. The id stays in the
  // universe as an isolated vertex.
  std::vector<EdgeUpdate> Deletes;
  for (WNode E : Writer.outNeighbors(V))
    Deletes.push_back(EdgeUpdate{V, E.V, 0, UpdateKind::Delete});
  if (!Writer.isSymmetric() && Writer.hasInEdges())
    for (WNode E : Writer.inNeighbors(V))
      Deletes.push_back(EdgeUpdate{E.V, V, 0, UpdateKind::Delete});

  R.Applied = coalesceApplied(Writer.apply(Deletes));
  if (CompactionRunning)
    Replay.push_back(ReplayOp{std::move(Deletes), 0, nullptr});
  publish();
  MutexLock Lock(ReadMu);
  R.Version = Version;
  R.Snap = Current;
  Map.recordFreed(External);
  return R;
}

VertexId SnapshotStore::acquireVertex(const Coordinates *OneCoord) {
  {
    MutexLock Lock(ReadMu);
    VertexId Freed = 0;
    if (Map.takeFreed(Freed))
      return Freed; // already an isolated in-universe vertex; no publish
  }
  return addVertices(1, OneCoord);
}

Count SnapshotStore::freeVertexCount() const {
  MutexLock Lock(ReadMu);
  return Map.freeCount();
}

//===----------------------------------------------------------------------===//
// ShardedSnapshotStore
//===----------------------------------------------------------------------===//

ShardedSnapshotStore::ShardedSnapshotStore(Graph Base, Options O)
    : Opts(O) {
  this->Opts.NumShards = std::max(1, Opts.NumShards);
  auto BasePtr = std::make_shared<const Graph>(
      reorderLoadedGraph(std::move(Base), Opts.Reorder, &Map,
                         /*Seed=*/0x0EDE5, Opts.ReorderSourceHint));
  Shift =
      ShardedDeltaView::shiftFor(BasePtr->numNodes(), this->Opts.NumShards);
  Symmetric = BasePtr->isSymmetric();
  MirrorsIn = !Symmetric && BasePtr->hasInEdges();
  Shards.reserve(static_cast<size_t>(this->Opts.NumShards));
  std::vector<std::shared_ptr<const DeltaGraph>> Snaps;
  for (int S = 0; S < this->Opts.NumShards; ++S) {
    auto Sh = std::make_unique<Shard>();
    Sh->Writer = DeltaGraph(BasePtr);
    Snaps.push_back(std::make_shared<const DeltaGraph>(Sh->Writer));
    Shards.push_back(std::move(Sh));
  }
  ShardVersions.assign(Shards.size(), 0);
  auto View = std::make_shared<ShardedDeltaView>(std::move(Snaps), Shift);
  View->setVersions(0, ShardVersions);
  Cur = std::move(View);
}

ShardedSnapshotStore::~ShardedSnapshotStore() {
  waitForCompaction();
  for (auto &ShPtr : Shards) {
    std::thread Done;
    {
      MutexLock Lock(ShPtr->Mu);
      Done = std::move(ShPtr->Compactor);
    }
    if (Done.joinable())
      Done.join();
  }
}

void ShardedSnapshotStore::waitForCompaction() {
  // One shard at a time — never two shard locks at once, even here.
  for (auto &ShPtr : Shards) {
    MutexLock Lock(ShPtr->Mu);
    while (ShPtr->Compacting)
      ShPtr->FoldCv.wait(Lock.native());
  }
}

uint64_t ShardedSnapshotStore::shardFolds(int S) const {
  Shard &Sh = *Shards[static_cast<size_t>(S)];
  MutexLock Lock(Sh.Mu);
  return Sh.Folds;
}

bool ShardedSnapshotStore::shardDegraded(int S) const {
  Shard &Sh = *Shards[static_cast<size_t>(S)];
  MutexLock Lock(Sh.Mu);
  return Sh.Degraded;
}

uint64_t ShardedSnapshotStore::reclaimedTombstones() const {
  uint64_t Total = 0;
  for (auto &ShPtr : Shards) {
    MutexLock Lock(ShPtr->Mu);
    Total += ShPtr->Writer.reclaimedTombstones();
  }
  return Total;
}

ShardedSnapshotStore::Snapshot ShardedSnapshotStore::current() const {
  MutexLock Lock(ReadMu);
  return Cur;
}

std::pair<ShardedSnapshotStore::Snapshot, uint64_t>
ShardedSnapshotStore::currentVersioned() const {
  MutexLock Lock(ReadMu);
  return {Cur, Version};
}

uint64_t ShardedSnapshotStore::version() const {
  MutexLock Lock(ReadMu);
  return Version;
}

Count ShardedSnapshotStore::numNodes() const {
  MutexLock Lock(ReadMu);
  return Cur->numNodes();
}

uint64_t ShardedSnapshotStore::compactions() const {
  MutexLock Lock(ReadMu);
  return Compactions;
}

std::vector<Mutex *>
ShardedSnapshotStore::shardMutexes(const std::vector<int> &ShardIds) {
  std::vector<Mutex *> Mus;
  Mus.reserve(ShardIds.size());
  for (int S : ShardIds)
    Mus.push_back(&Shards[static_cast<size_t>(S)]->Mu);
  return Mus;
}

int ShardedSnapshotStore::shardOf(VertexId V) const {
  Count S = static_cast<Count>(V) >> Shift;
  return static_cast<int>(
      std::min<Count>(S, static_cast<Count>(Shards.size()) - 1));
}

bool ShardedSnapshotStore::degraded() const {
  MutexLock Lock(ReadMu);
  return Degraded;
}

std::string ShardedSnapshotStore::lastError() const {
  MutexLock Lock(ReadMu);
  return LastError;
}

ShardedSnapshotStore::ApplyResult
ShardedSnapshotStore::publishLocked(const std::vector<int> &Touched,
                                    std::vector<AppliedUpdate> Applied,
                                    bool CompactionTriggered) {
  // Caller holds the writer mutex of every shard in Touched, so copying
  // those writers into immutable snapshots here is race-free; untouched
  // shards keep the pointers of the previous composite (read under ReadMu,
  // which also makes the version vector update atomic with the swap).
  ApplyResult R;
  R.Applied = std::move(Applied);
  R.CompactionTriggered = CompactionTriggered;
  MutexLock Lock(ReadMu);
  if (!PendingError.empty()) {
    R.CompactionError = std::move(PendingError);
    PendingError.clear();
  }
  // Publication is all-or-nothing: every fallible step (the snapshot
  // copies and the composite view — plus the snapshot.publish fail point)
  // runs before any version state mutates, with bounded retries, so a
  // failed attempt leaves versions, the composite, and DirtySince
  // untouched.
  std::shared_ptr<ShardedDeltaView> View;
  for (int Attempt = 0;; ++Attempt) {
    try {
      GRAPHIT_FAIL_POINT("snapshot.publish");
      std::vector<std::shared_ptr<const DeltaGraph>> Snaps = Cur->shards();
      for (int S : Touched)
        Snaps[static_cast<size_t>(S)] = std::make_shared<const DeltaGraph>(
            Shards[static_cast<size_t>(S)]->Writer);
      View = std::make_shared<ShardedDeltaView>(std::move(Snaps), Shift);
      break;
    } catch (const std::exception &) {
      if (Attempt >= kPublishRetryLimit)
        throw;
    }
  }
  for (int S : Touched) {
    ++ShardVersions[static_cast<size_t>(S)];
    Shards[static_cast<size_t>(S)]->DirtySince = Version + 1;
  }
  ++Version;
  View->setVersions(Version, ShardVersions);
  Cur = std::move(View);
  R.Version = Version;
  R.Snap = Cur;
  // Only the caller that flips the pending flag runs the compaction; a
  // trigger firing while one is pending has already been absorbed.
  R.CompactionTriggered = CompactionTriggered && !CompactionPending;
  if (R.CompactionTriggered)
    CompactionPending = true;
  return R;
}

ShardedSnapshotStore::ApplyResult
ShardedSnapshotStore::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  // Reordered stores translate into internal ids, exactly like the
  // unsharded store (out-of-range endpoints pass through untranslated and
  // are skipped by the validity test below).
  const std::vector<EdgeUpdate> *Apply = &Batch;
  std::vector<EdgeUpdate> Translated;
  if (!Map.isIdentity()) {
    Translated = Batch;
    const Count N = Map.size();
    for (EdgeUpdate &U : Translated) {
      if (static_cast<Count>(U.Src) < N)
        U.Src = Map.toInternal(U.Src);
      if (static_cast<Count>(U.Dst) < N)
        U.Dst = Map.toInternal(U.Dst);
    }
    Apply = &Translated;
  }

  // Involved shards: shard(src) always (out-adjacency); shard(dst) when a
  // mirror or symmetric reverse edge will land there. Computed without any
  // lock — shardOf clamps arbitrary ids, and the universe size is only
  // read once a shard lock pins it.
  const bool NeedDst = Symmetric || MirrorsIn;
  std::vector<int> Touched;
  Touched.reserve(Apply->size() * (NeedDst ? 2 : 1));
  for (const EdgeUpdate &U : *Apply) {
    Touched.push_back(shardOf(U.Src));
    if (NeedDst)
      Touched.push_back(shardOf(U.Dst));
  }
  std::sort(Touched.begin(), Touched.end());
  Touched.erase(std::unique(Touched.begin(), Touched.end()), Touched.end());

  // Lock involved shards in ascending order (deadlock-free total order),
  // held through the publish so versions of one shard can never regress.
  // A simulated acquisition failure (the `shard.lock` fail point) makes
  // DynamicLockSet release everything taken and retry the whole set.
  DynamicLockSet ShardLocks(shardMutexes(Touched), "shard.lock");

  // Strict mode: validate the whole batch against the pinned universe
  // size before mutating any shard, so a poisoned batch rejects
  // atomically — bit-compatible with the unsharded store (same batches
  // rejected, no version published).
  if (Opts.StrictBatches && !Touched.empty()) {
    const Count N =
        Shards[static_cast<size_t>(Touched.front())]->Writer.numNodes();
    for (size_t I = 0; I < Apply->size(); ++I) {
      if (!DeltaGraph::validUpdate((*Apply)[I], N)) {
        ApplyResult R;
        R.Status = ApplyStatus::RejectedBatch;
        R.Error = describeRejected((*Apply)[I], I);
        {
          MutexLock Lock(ReadMu);
          R.Version = Version;
          R.Snap = Cur;
        }
        return R; // ShardLocks releases on scope exit

      }
    }
  }

  // Shards whose overlay actually changed: the version-vector contract is
  // "bump exactly when that shard changed", so a locked shard that only
  // saw no-ops (same-weight upserts, deletes of missing edges, malformed
  // writes) is neither re-snapshotted nor bumped.
  std::vector<int> Dirty;
  std::vector<AppliedUpdate> Applied;
  bool LegacyTrigger = false;
  std::vector<int> TriggeredShards;
  if (!Touched.empty()) {
    const Count N =
        Shards[static_cast<size_t>(Touched.front())]->Writer.numNodes();
    Applied.reserve(Apply->size() * (Symmetric ? 2 : 1));
    for (const EdgeUpdate &U : *Apply) {
      if (!DeltaGraph::validUpdate(U, N))
        continue; // malformed write: skip, don't take the store down
      applyRowLocked(U, Applied, Dirty);
    }
    std::sort(Dirty.begin(), Dirty.end());
    Dirty.erase(std::unique(Dirty.begin(), Dirty.end()), Dirty.end());
    // Per-shard compaction triggers, measured against the shard's slice
    // of the shared base. In incremental mode each tripped shard is
    // absorbed into at most one queued fold (FoldScheduled); the legacy
    // mode keeps the one-global-fold absorption in publishLocked.
    const Count BaseSlice =
        Shards[static_cast<size_t>(Touched.front())]->Writer.base().numEdges() /
        static_cast<Count>(Shards.size());
    for (int S : Dirty) {
      Shard &Sh = *Shards[static_cast<size_t>(S)];
      const Count Overlay = Sh.Writer.overlayEdges();
      if (Overlay >= Opts.MinOverlayEdges &&
          static_cast<double>(Overlay) >
              Opts.CompactionThreshold * static_cast<double>(BaseSlice)) {
        if (Opts.LegacyGlobalRebuild) {
          LegacyTrigger = true;
        } else if (!Sh.FoldScheduled && !Sh.Compacting) {
          Sh.FoldScheduled = true;
          TriggeredShards.push_back(S);
        }
      }
    }
  }

  ApplyResult R =
      publishLocked(Dirty, coalesceApplied(Applied), LegacyTrigger);

  ShardLocks.release();

  if (Opts.LegacyGlobalRebuild) {
    if (R.CompactionTriggered)
      compactAllGlobal();
  } else {
    // Incremental per-shard folds, each under exactly one shard lock.
    // Synchronous folds publish their own (later) version; background
    // folds publish when the fold thread finishes — either way this
    // batch's snapshot is the pre-fold one, as with the unsharded
    // store's background compaction.
    for (int S : TriggeredShards) {
      if (Opts.BackgroundCompaction)
        foldShardAsync(S);
      else
        compactShard(S);
    }
    R.CompactionTriggered = !TriggeredShards.empty();
  }
  return R;
}

void ShardedSnapshotStore::applyRowLocked(const EdgeUpdate &U,
                                          std::vector<AppliedUpdate> &Applied,
                                          std::vector<int> &Dirty) {
  // Caller holds the writer lock of every shard U touches. Every
  // effective row op lands in the replay log of a shard whose background
  // fold is in flight, so the folded copy converges to the writer.
  auto Record = [&](int S, ShardOp::Kind K, const EdgeUpdate &Row) {
    Shard &Sh = *Shards[static_cast<size_t>(S)];
    if (Sh.Compacting)
      Sh.Replay.push_back(ShardOp{K, Row, 0, nullptr});
  };
  const int SrcS = shardOf(U.Src);
  DeltaGraph &SrcW = Shards[static_cast<size_t>(SrcS)]->Writer;
  AppliedUpdate A = SrcW.applyShardOut(U.Src, U.Dst, U.W, U.Kind);
  if (A.OldW != kAbsentEdge || A.NewW != kAbsentEdge) {
    Applied.push_back(A);
    Dirty.push_back(SrcS);
    Record(SrcS, ShardOp::Kind::Out, U);
    if (MirrorsIn) {
      const int DstS = shardOf(U.Dst);
      Shards[static_cast<size_t>(DstS)]->Writer.applyShardInMirror(
          U.Src, U.Dst, U.W, U.Kind);
      Dirty.push_back(DstS);
      Record(DstS, ShardOp::Kind::InMirror, U);
    }
  }
  if (Symmetric) {
    const int DstS = shardOf(U.Dst);
    DeltaGraph &DstW = Shards[static_cast<size_t>(DstS)]->Writer;
    AppliedUpdate B = DstW.applyShardOut(U.Dst, U.Src, U.W, U.Kind);
    if (B.OldW != kAbsentEdge || B.NewW != kAbsentEdge) {
      Applied.push_back(B);
      Dirty.push_back(DstS);
      Record(DstS, ShardOp::Kind::Out, EdgeUpdate{U.Dst, U.Src, U.W, U.Kind});
    }
  }
}

VertexId ShardedSnapshotStore::addVertices(Count HowMany,
                                           const Coordinates *TailCoords) {
  // Universe growth is store-wide state: every shard's overlay must agree
  // on the node count (range checks, coordinate extents), so insertion
  // takes every shard lock. It is the rare, heavyweight operation of the
  // write path — edge batches on disjoint shards stay concurrent.
  std::vector<int> All(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    All[I] = static_cast<int>(I);
  DynamicLockSet ShardLocks(shardMutexes(All), "shard.lock");
  VertexId First = static_cast<VertexId>(Shards.front()->Writer.numNodes());
  if (HowMany > 0) {
    const Count GrowTo = static_cast<Count>(First) + HowMany;
    std::shared_ptr<const Coordinates> Tail =
        TailCoords ? std::make_shared<Coordinates>(*TailCoords) : nullptr;
    for (auto &S : Shards) {
      S->Writer.growUniverse(GrowTo, TailCoords);
      // Growth replays onto any in-flight fold copy, or later replayed
      // batches referencing the new ids would be range-rejected.
      if (S->Compacting)
        S->Replay.push_back(
            ShardOp{ShardOp::Kind::Grow, EdgeUpdate{}, GrowTo, Tail});
    }
    publishLocked(All, {}, false);
  }
  return First;
}

std::pair<Count, Count> ShardedSnapshotStore::shardRangeFor(int S,
                                                            Count N) const {
  const uint64_t Span = static_cast<uint64_t>(shardSpan());
  const Count First = static_cast<Count>(
      std::min<uint64_t>(static_cast<uint64_t>(S) * Span, N));
  const Count Next =
      S + 1 == numShards()
          ? N
          : static_cast<Count>(
                std::min<uint64_t>(static_cast<uint64_t>(First) + Span, N));
  return {First, Next - First};
}

void ShardedSnapshotStore::noteShardFoldOk(Shard &Sh) {
  ++Sh.Folds;
  int Delta = 0;
  if (Sh.Degraded) {
    Sh.Degraded = false;
    Delta = 1;
  }
  MutexLock Lock(ReadMu);
  ++Compactions;
  DegradedShards -= Delta;
  if (DegradedShards <= 0) {
    DegradedShards = 0;
    Degraded = false;
    LastError.clear();
  }
}

void ShardedSnapshotStore::noteShardFoldFailure(Shard &Sh, int S,
                                                const std::string &Why) {
  const std::string Message =
      "shard " + std::to_string(S) + " compaction failed: " + Why;
  int Delta = 0;
  if (!Sh.Degraded) {
    Sh.Degraded = true;
    Delta = 1;
  }
  MutexLock Lock(ReadMu);
  DegradedShards += Delta;
  Degraded = true;
  LastError = Message;
  PendingError = Message;
}

void ShardedSnapshotStore::compactShard(int S) {
  Shard &Sh = *Shards[static_cast<size_t>(S)];
  // Exactly one shard writer lock for the whole fold — the incremental
  // compaction guarantee. Everything below nests only ReadMu inside it,
  // the same order publishLocked always uses.
  MutexLock Lock(Sh.Mu);
  if (Sh.Compacting)
    return; // the in-flight background fold already covers this shard
  const std::pair<Count, Count> Range =
      shardRangeFor(S, Sh.Writer.numNodes());
  try {
    GRAPHIT_FAIL_POINT("compaction.rebuild");
    Sh.Writer.compactRange(Range.first, Range.second);
  } catch (const std::exception &E) {
    noteShardFoldFailure(Sh, S, E.what());
    Sh.FoldScheduled = false;
    return;
  }
  noteShardFoldOk(Sh);
  try {
    publishLocked({S}, {}, false);
  } catch (...) {
    // Terminal publish failure: the folded writer is intact; the next
    // publish touching this shard carries it — readers just keep the
    // previous version a little longer.
  }
  Sh.FoldScheduled = false;
}

void ShardedSnapshotStore::foldShardAsync(int S) {
  Shard &Sh = *Shards[static_cast<size_t>(S)];
  MutexLock Lock(Sh.Mu);
  if (Sh.Compacting) {
    Sh.FoldScheduled = false; // defensive: the running fold covers it
    return;
  }
  if (Sh.Compactor.joinable())
    Sh.Compactor.join(); // previous fold thread already finished
  try {
    // Pin the writer's exact content for the fold thread; readers are
    // unaffected (they pin published composites).
    auto Pinned = std::make_shared<const DeltaGraph>(Sh.Writer);
    Sh.Replay.clear();
    Sh.Compacting = true;
    Sh.Compactor = std::thread([this, S, Pinned = std::move(Pinned)]() mutable {
      foldShardBody(S, std::move(Pinned));
    });
  } catch (const std::exception &E) {
    Sh.Compacting = false;
    Sh.FoldScheduled = false;
    noteShardFoldFailure(Sh, S, E.what());
  }
}

void ShardedSnapshotStore::foldShardBody(
    int S, std::shared_ptr<const DeltaGraph> Pinned) {
  // Nothing may escape this thread (an uncaught exception would
  // std::terminate). Phase 1 folds the pinned copy's range into a segment
  // with *no lock held*; phase 2 re-acquires only this shard's Mu, adopts
  // the segment onto a copy of the pinned state, replays the row ops
  // recorded meanwhile, and atomically swaps the result in. A terminal
  // failure degrades this shard only — every other shard keeps serving
  // and folding.
  Shard &Sh = *Shards[static_cast<size_t>(S)];
  const std::pair<Count, Count> Range = shardRangeFor(S, Pinned->numNodes());

  std::string Err;
  std::shared_ptr<const BaseSegment> Seg;
  for (int Attempt = 0;; ++Attempt) {
    try {
      GRAPHIT_FAIL_POINT("compaction.rebuild");
      Seg = Pinned->foldRange(Range.first, Range.second);
      break;
    } catch (const std::exception &E) {
      Err = E.what();
    } catch (...) {
      Err = "unknown compaction error";
    }
    if (Attempt >= Opts.CompactionRetryLimit)
      break;
  }

  MutexLock Lock(Sh.Mu);
  bool Ok = false;
  if (Seg) {
    // Copy-adopt-replay-swap: each retry restarts from a fresh copy of
    // the pinned state, so a half-replayed attempt can never leak into
    // the serving writer.
    for (int Attempt = 0; !Ok; ++Attempt) {
      try {
        DeltaGraph Folded(*Pinned);
        Folded.adoptSegment(Seg);
        for (const ShardOp &Op : Sh.Replay) {
          GRAPHIT_FAIL_POINT("compaction.replay");
          switch (Op.Op) {
          case ShardOp::Kind::Out:
            Folded.applyShardOut(Op.U.Src, Op.U.Dst, Op.U.W, Op.U.Kind);
            break;
          case ShardOp::Kind::InMirror:
            Folded.applyShardInMirror(Op.U.Src, Op.U.Dst, Op.U.W, Op.U.Kind);
            break;
          case ShardOp::Kind::Grow:
            Folded.growUniverse(Op.GrowTo, Op.TailCoords.get());
            break;
          }
        }
        Sh.Writer = std::move(Folded);
        Ok = true;
      } catch (const std::exception &E) {
        Err = E.what();
      } catch (...) {
        Err = "unknown compaction error";
      }
      if (!Ok && Attempt >= Opts.CompactionRetryLimit)
        break;
    }
  }
  Pinned.reset();
  Sh.Replay.clear();
  Sh.Compacting = false;
  Sh.FoldScheduled = false;
  if (Ok) {
    noteShardFoldOk(Sh);
    try {
      publishLocked({S}, {}, false);
    } catch (...) {
      // As in compactShard: the folded writer is intact either way.
    }
  } else {
    noteShardFoldFailure(Sh, S, Err);
  }
  Sh.FoldCv.notify_all();
}

void ShardedSnapshotStore::compactAll() {
  // Deprecated as a global fold: a tripped trigger now folds only its own
  // shard, and this entry point just walks the incremental path shard by
  // shard — never holding more than one shard lock at a time.
  for (int S = 0; S < numShards(); ++S)
    compactShard(S);
}

void ShardedSnapshotStore::compactAllGlobal() {
  // Legacy store-wide rebuild (Options::LegacyGlobalRebuild): one global
  // compaction at a time; a trigger that fires while another compaction
  // is pending was already absorbed by the CompactionPending flag in
  // publishLocked.
  MutexLock CompactGuard(CompactMu);
  std::vector<int> All(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    All[I] = static_cast<int>(I);
  DynamicLockSet ShardLocks(shardMutexes(All), "shard.lock");

  // Fold every shard's overlay into a fresh shared base. The expensive
  // O(V + E) rebuild runs under the shard locks — the sharded store
  // trades the unsharded store's background-compaction machinery for
  // per-shard write concurrency the rest of the time. A failed fold
  // (transient allocation fault, injected fail point) downgrades to
  // "keep serving the overlays": the writers are only replaced after the
  // rebuild fully succeeded, the next trigger retries, and the error is
  // surfaced on the next apply.
  try {
    GRAPHIT_FAIL_POINT("compaction.rebuild");
    std::vector<std::shared_ptr<const DeltaGraph>> Raw;
    Raw.reserve(Shards.size());
    for (auto &S : Shards)
      Raw.push_back(std::make_shared<const DeltaGraph>(S->Writer));
    ShardedDeltaView Whole(std::move(Raw), Shift);
    auto NewBase = std::make_shared<const Graph>(Whole.compact());
    for (auto &S : Shards)
      S->Writer = DeltaGraph(NewBase);

    {
      MutexLock Lock(ReadMu);
      ++Compactions;
      CompactionPending = false;
      Degraded = false;
      LastError.clear();
    }
    publishLocked(All, {}, false);
  } catch (const std::exception &E) {
    MutexLock Lock(ReadMu);
    CompactionPending = false; // a later trigger may retry
    Degraded = true;
    LastError = std::string("compaction failed: ") + E.what();
    PendingError = LastError;
  }
}

ShardedSnapshotStore::ApplyResult
ShardedSnapshotStore::removeVertex(VertexId External) {
  VertexId V = External;
  if (!Map.isIdentity() && static_cast<Count>(V) < Map.size())
    V = Map.toInternal(V);

  // Detaching reaches into the shard of every neighbor, so removal takes
  // all shard locks — the rare heavyweight write, like addVertices. (The
  // one-shard-lock guarantee is about compaction, which never detaches.)
  std::vector<int> All(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    All[I] = static_cast<int>(I);
  DynamicLockSet ShardLocks(shardMutexes(All), "shard.lock");

  const Count N = Shards.front()->Writer.numNodes();
  if (static_cast<Count>(V) >= N) {
    ApplyResult R;
    MutexLock Lock(ReadMu);
    R.Version = Version;
    R.Snap = Cur;
    return R; // out-of-range id: no-op, nothing published
  }

  DeltaGraph &Owner = Shards[static_cast<size_t>(shardOf(V))]->Writer;
  std::vector<EdgeUpdate> Deletes;
  for (WNode E : Owner.outNeighbors(V))
    Deletes.push_back(EdgeUpdate{V, E.V, 0, UpdateKind::Delete});
  if (MirrorsIn)
    for (WNode E : Owner.inNeighbors(V))
      Deletes.push_back(EdgeUpdate{E.V, V, 0, UpdateKind::Delete});

  // Same per-row machinery as the batch path: bit-compatible Applied
  // coalescing, replay recording for any shard whose fold is in flight.
  std::vector<int> Dirty;
  std::vector<AppliedUpdate> Applied;
  for (const EdgeUpdate &U : Deletes)
    applyRowLocked(U, Applied, Dirty);
  std::sort(Dirty.begin(), Dirty.end());
  Dirty.erase(std::unique(Dirty.begin(), Dirty.end()), Dirty.end());

  ApplyResult R = publishLocked(Dirty, coalesceApplied(Applied), false);
  ShardLocks.release();
  MutexLock Lock(ReadMu);
  Map.recordFreed(External);
  return R;
}

VertexId ShardedSnapshotStore::acquireVertex(const Coordinates *OneCoord) {
  {
    MutexLock Lock(ReadMu);
    VertexId Freed = 0;
    if (Map.takeFreed(Freed))
      return Freed; // already an isolated in-universe vertex; no publish
  }
  return addVertices(1, OneCoord);
}

Count ShardedSnapshotStore::freeVertexCount() const {
  MutexLock Lock(ReadMu);
  return Map.freeCount();
}
