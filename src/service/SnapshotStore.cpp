//===- service/SnapshotStore.cpp - Versioned live-graph snapshots ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/SnapshotStore.h"

#include <unordered_map>
#include <utility>

using namespace graphit;
using namespace graphit::service;

SnapshotStore::SnapshotStore(Graph Base, Options Opts) : Opts(Opts) {
  // Reorder-on-load before the base CSR is frozen (no-op move for None).
  Writer = DeltaGraph(std::make_shared<const Graph>(
      reorderLoadedGraph(std::move(Base), Opts.Reorder, &Map,
                         /*Seed=*/0x0EDE5, Opts.ReorderSourceHint)));
  Current = std::make_shared<const DeltaGraph>(Writer);
}

SnapshotStore::~SnapshotStore() {
  waitForCompaction();
  if (Compactor.joinable())
    Compactor.join();
}

SnapshotStore::Snapshot SnapshotStore::current() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Current;
}

std::pair<SnapshotStore::Snapshot, uint64_t>
SnapshotStore::currentVersioned() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return {Current, Version};
}

uint64_t SnapshotStore::version() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Version;
}

uint64_t SnapshotStore::compactions() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Compactions;
}

Count SnapshotStore::numNodes() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Current->numNodes();
}

void SnapshotStore::publish(std::unique_lock<std::mutex> &) {
  // Caller holds WriteMu (asserted by the parameter): Writer is stable, so
  // copying it into an immutable snapshot and swapping the publish pointer
  // is the entire read-side critical section.
  auto Snap = std::make_shared<const DeltaGraph>(Writer);
  std::lock_guard<std::mutex> Lock(ReadMu);
  Current = std::move(Snap);
  ++Version;
}

SnapshotStore::ApplyResult
SnapshotStore::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  std::unique_lock<std::mutex> WriterLock(WriteMu);
  ApplyResult R;

  // Reordered stores translate the batch into internal (layout) ids; the
  // snapshots, applied transitions, and any repaired distance states all
  // live in that space. Out-of-range endpoints pass through untranslated —
  // DeltaGraph::apply skips them like any other malformed write.
  const std::vector<EdgeUpdate> *Apply = &Batch;
  std::vector<EdgeUpdate> Translated;
  if (!Map.isIdentity()) {
    Translated = Batch;
    const Count N = Map.size();
    for (EdgeUpdate &U : Translated) {
      if (static_cast<Count>(U.Src) < N)
        U.Src = Map.toInternal(U.Src);
      if (static_cast<Count>(U.Dst) < N)
        U.Dst = Map.toInternal(U.Dst);
    }
    Apply = &Translated;
  }
  R.Applied = coalesceApplied(Writer.apply(*Apply));

  if (CompactionRunning)
    Replay.push_back(ReplayOp{*Apply, 0, nullptr});

  // Compaction bookkeeping before publishing, so a synchronous compaction
  // is part of the same published version.
  const Count Overlay = Writer.overlayEdges();
  const bool OverThreshold =
      Overlay >= Opts.MinOverlayEdges &&
      static_cast<double>(Overlay) >
          Opts.CompactionThreshold *
              static_cast<double>(Writer.base().numEdges());
  if (OverThreshold && !CompactionRunning) {
    R.CompactionTriggered = true;
    if (!Opts.BackgroundCompaction) {
      Writer = DeltaGraph(std::make_shared<const Graph>(Writer.compact()));
      std::lock_guard<std::mutex> Lock(ReadMu);
      ++Compactions;
    } else {
      if (Compactor.joinable())
        Compactor.join(); // previous compactor already finished
      CompactionRunning = true;
      Replay.clear();
      // Pin the writer's exact content for the compactor; readers are
      // unaffected (they pin published versions).
      Snapshot Pinned = std::make_shared<const DeltaGraph>(Writer);
      Compactor = std::thread([this, Pinned = std::move(Pinned)]() mutable {
        compactorBody(std::move(Pinned));
      });
    }
  }

  publish(WriterLock);
  {
    std::lock_guard<std::mutex> Lock(ReadMu);
    R.Version = Version;
    R.Snap = Current;
  }
  return R;
}

void SnapshotStore::compactorBody(Snapshot Pinned) {
  // The expensive O(V + E) rebuild happens with no lock held.
  auto NewBase = std::make_shared<const Graph>(Pinned->compact());
  Pinned.reset();

  std::unique_lock<std::mutex> WriterLock(WriteMu);
  DeltaGraph Rebuilt(std::move(NewBase));
  // Writer-side operations accepted while we were compacting: replay them
  // onto the new base. Upsert/delete/growth semantics are deterministic,
  // so the result equals the writer's current adjacency with an (almost)
  // empty overlay. Universe growth replays too — otherwise a later batch
  // referencing the new ids would be range-rejected.
  for (const ReplayOp &Op : Replay) {
    if (Op.GrowTo > 0)
      Rebuilt.growUniverse(Op.GrowTo, Op.TailCoords.get());
    else
      Rebuilt.apply(Op.Batch);
  }
  Replay.clear();
  Writer = std::move(Rebuilt);
  CompactionRunning = false;
  {
    std::lock_guard<std::mutex> Lock(ReadMu);
    ++Compactions;
  }
  publish(WriterLock);
  CompactionCv.notify_all();
}

void SnapshotStore::waitForCompaction() {
  std::unique_lock<std::mutex> WriterLock(WriteMu);
  CompactionCv.wait(WriterLock, [&] { return !CompactionRunning; });
}

VertexId SnapshotStore::addVertices(Count HowMany,
                                    const Coordinates *TailCoords) {
  std::unique_lock<std::mutex> WriterLock(WriteMu);
  VertexId First = static_cast<VertexId>(Writer.numNodes());
  if (HowMany <= 0)
    return First; // nothing to grow; no version published
  const Count GrowTo = Writer.numNodes() + HowMany;
  Writer.growUniverse(GrowTo, TailCoords);
  if (CompactionRunning)
    Replay.push_back(ReplayOp{
        {},
        GrowTo,
        TailCoords ? std::make_shared<Coordinates>(*TailCoords) : nullptr});
  publish(WriterLock);
  return First;
}

//===----------------------------------------------------------------------===//
// ShardedSnapshotStore
//===----------------------------------------------------------------------===//

ShardedSnapshotStore::ShardedSnapshotStore(Graph Base, Options Opts)
    : Opts(Opts) {
  this->Opts.NumShards = std::max(1, Opts.NumShards);
  auto BasePtr = std::make_shared<const Graph>(
      reorderLoadedGraph(std::move(Base), Opts.Reorder, &Map,
                         /*Seed=*/0x0EDE5, Opts.ReorderSourceHint));
  Shift =
      ShardedDeltaView::shiftFor(BasePtr->numNodes(), this->Opts.NumShards);
  Symmetric = BasePtr->isSymmetric();
  MirrorsIn = !Symmetric && BasePtr->hasInEdges();
  Shards.reserve(static_cast<size_t>(this->Opts.NumShards));
  std::vector<std::shared_ptr<const DeltaGraph>> Snaps;
  for (int S = 0; S < this->Opts.NumShards; ++S) {
    auto Sh = std::make_unique<Shard>();
    Sh->Writer = DeltaGraph(BasePtr);
    Snaps.push_back(std::make_shared<const DeltaGraph>(Sh->Writer));
    Shards.push_back(std::move(Sh));
  }
  ShardVersions.assign(Shards.size(), 0);
  auto View = std::make_shared<ShardedDeltaView>(std::move(Snaps), Shift);
  View->setVersions(0, ShardVersions);
  Cur = std::move(View);
}

ShardedSnapshotStore::Snapshot ShardedSnapshotStore::current() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Cur;
}

std::pair<ShardedSnapshotStore::Snapshot, uint64_t>
ShardedSnapshotStore::currentVersioned() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return {Cur, Version};
}

uint64_t ShardedSnapshotStore::version() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Version;
}

Count ShardedSnapshotStore::numNodes() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Cur->numNodes();
}

uint64_t ShardedSnapshotStore::compactions() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Compactions;
}

int ShardedSnapshotStore::shardOf(VertexId V) const {
  Count S = static_cast<Count>(V) >> Shift;
  return static_cast<int>(
      std::min<Count>(S, static_cast<Count>(Shards.size()) - 1));
}

ShardedSnapshotStore::ApplyResult
ShardedSnapshotStore::publishLocked(const std::vector<int> &Touched,
                                    std::vector<AppliedUpdate> Applied,
                                    bool CompactionTriggered) {
  // Caller holds the writer mutex of every shard in Touched, so copying
  // those writers into immutable snapshots here is race-free; untouched
  // shards keep the pointers of the previous composite (read under ReadMu,
  // which also makes the version vector update atomic with the swap).
  ApplyResult R;
  R.Applied = std::move(Applied);
  R.CompactionTriggered = CompactionTriggered;
  std::lock_guard<std::mutex> Lock(ReadMu);
  std::vector<std::shared_ptr<const DeltaGraph>> Snaps = Cur->shards();
  for (int S : Touched) {
    Snaps[static_cast<size_t>(S)] =
        std::make_shared<const DeltaGraph>(Shards[static_cast<size_t>(S)]->Writer);
    ++ShardVersions[static_cast<size_t>(S)];
    Shards[static_cast<size_t>(S)]->DirtySince = Version + 1;
  }
  ++Version;
  auto View = std::make_shared<ShardedDeltaView>(std::move(Snaps), Shift);
  View->setVersions(Version, ShardVersions);
  Cur = std::move(View);
  R.Version = Version;
  R.Snap = Cur;
  // Only the caller that flips the pending flag runs the compaction; a
  // trigger firing while one is pending has already been absorbed.
  R.CompactionTriggered = CompactionTriggered && !CompactionPending;
  if (R.CompactionTriggered)
    CompactionPending = true;
  return R;
}

ShardedSnapshotStore::ApplyResult
ShardedSnapshotStore::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  // Reordered stores translate into internal ids, exactly like the
  // unsharded store (out-of-range endpoints pass through untranslated and
  // are skipped by the validity test below).
  const std::vector<EdgeUpdate> *Apply = &Batch;
  std::vector<EdgeUpdate> Translated;
  if (!Map.isIdentity()) {
    Translated = Batch;
    const Count N = Map.size();
    for (EdgeUpdate &U : Translated) {
      if (static_cast<Count>(U.Src) < N)
        U.Src = Map.toInternal(U.Src);
      if (static_cast<Count>(U.Dst) < N)
        U.Dst = Map.toInternal(U.Dst);
    }
    Apply = &Translated;
  }

  // Involved shards: shard(src) always (out-adjacency); shard(dst) when a
  // mirror or symmetric reverse edge will land there. Computed without any
  // lock — shardOf clamps arbitrary ids, and the universe size is only
  // read once a shard lock pins it.
  const bool NeedDst = Symmetric || MirrorsIn;
  std::vector<int> Touched;
  Touched.reserve(Apply->size() * (NeedDst ? 2 : 1));
  for (const EdgeUpdate &U : *Apply) {
    Touched.push_back(shardOf(U.Src));
    if (NeedDst)
      Touched.push_back(shardOf(U.Dst));
  }
  std::sort(Touched.begin(), Touched.end());
  Touched.erase(std::unique(Touched.begin(), Touched.end()), Touched.end());

  // Lock involved shards in ascending order (deadlock-free total order),
  // held through the publish so versions of one shard can never regress.
  for (int S : Touched)
    Shards[static_cast<size_t>(S)]->Mu.lock();

  // Shards whose overlay actually changed: the version-vector contract is
  // "bump exactly when that shard changed", so a locked shard that only
  // saw no-ops (same-weight upserts, deletes of missing edges, malformed
  // writes) is neither re-snapshotted nor bumped.
  std::vector<int> Dirty;
  std::vector<AppliedUpdate> Applied;
  bool Trigger = false;
  if (!Touched.empty()) {
    const Count N =
        Shards[static_cast<size_t>(Touched.front())]->Writer.numNodes();
    Applied.reserve(Apply->size() * (Symmetric ? 2 : 1));
    for (const EdgeUpdate &U : *Apply) {
      if (!DeltaGraph::validUpdate(U, N))
        continue; // malformed write: skip, don't take the store down
      DeltaGraph &SrcW = Shards[static_cast<size_t>(shardOf(U.Src))]->Writer;
      AppliedUpdate A = SrcW.applyShardOut(U.Src, U.Dst, U.W, U.Kind);
      if (A.OldW != kAbsentEdge || A.NewW != kAbsentEdge) {
        Applied.push_back(A);
        Dirty.push_back(shardOf(U.Src));
        if (MirrorsIn) {
          Shards[static_cast<size_t>(shardOf(U.Dst))]
              ->Writer.applyShardInMirror(U.Src, U.Dst, U.W, U.Kind);
          Dirty.push_back(shardOf(U.Dst));
        }
      }
      if (Symmetric) {
        DeltaGraph &DstW =
            Shards[static_cast<size_t>(shardOf(U.Dst))]->Writer;
        AppliedUpdate B = DstW.applyShardOut(U.Dst, U.Src, U.W, U.Kind);
        if (B.OldW != kAbsentEdge || B.NewW != kAbsentEdge) {
          Applied.push_back(B);
          Dirty.push_back(shardOf(U.Dst));
        }
      }
    }
    std::sort(Dirty.begin(), Dirty.end());
    Dirty.erase(std::unique(Dirty.begin(), Dirty.end()), Dirty.end());
    // Per-shard compaction triggers, measured against the shard's slice
    // of the shared base.
    const Count BaseSlice =
        Shards[static_cast<size_t>(Touched.front())]->Writer.base().numEdges() /
        static_cast<Count>(Shards.size());
    for (int S : Dirty) {
      const Count Overlay =
          Shards[static_cast<size_t>(S)]->Writer.overlayEdges();
      if (Overlay >= Opts.MinOverlayEdges &&
          static_cast<double>(Overlay) >
              Opts.CompactionThreshold * static_cast<double>(BaseSlice))
        Trigger = true;
    }
  }

  ApplyResult R =
      publishLocked(Dirty, coalesceApplied(std::move(Applied)), Trigger);

  for (auto It = Touched.rbegin(); It != Touched.rend(); ++It)
    Shards[static_cast<size_t>(*It)]->Mu.unlock();

  if (R.CompactionTriggered)
    compactAll();
  return R;
}

VertexId ShardedSnapshotStore::addVertices(Count HowMany,
                                           const Coordinates *TailCoords) {
  // Universe growth is store-wide state: every shard's overlay must agree
  // on the node count (range checks, coordinate extents), so insertion
  // takes every shard lock. It is the rare, heavyweight operation of the
  // write path — edge batches on disjoint shards stay concurrent.
  for (auto &S : Shards)
    S->Mu.lock();
  VertexId First = static_cast<VertexId>(Shards.front()->Writer.numNodes());
  if (HowMany > 0) {
    const Count GrowTo = static_cast<Count>(First) + HowMany;
    for (auto &S : Shards)
      S->Writer.growUniverse(GrowTo, TailCoords);
    std::vector<int> All(Shards.size());
    for (size_t I = 0; I < Shards.size(); ++I)
      All[I] = static_cast<int>(I);
    publishLocked(All, {}, false);
  }
  for (auto It = Shards.rbegin(); It != Shards.rend(); ++It)
    (*It)->Mu.unlock();
  return First;
}

void ShardedSnapshotStore::compactAll() {
  // One global compaction at a time; a trigger that fires while another
  // compaction is pending was already absorbed by the CompactionPending
  // flag in publishLocked.
  std::lock_guard<std::mutex> CompactGuard(CompactMu);
  for (auto &S : Shards)
    S->Mu.lock();

  // Fold every shard's overlay into a fresh shared base. The expensive
  // O(V + E) rebuild runs under the shard locks — the sharded store
  // trades the unsharded store's background-compaction machinery for
  // per-shard write concurrency the rest of the time.
  std::vector<std::shared_ptr<const DeltaGraph>> Raw;
  Raw.reserve(Shards.size());
  for (auto &S : Shards)
    Raw.push_back(std::make_shared<const DeltaGraph>(S->Writer));
  ShardedDeltaView Whole(std::move(Raw), Shift);
  auto NewBase = std::make_shared<const Graph>(Whole.compact());
  for (auto &S : Shards)
    S->Writer = DeltaGraph(NewBase);

  {
    std::lock_guard<std::mutex> Lock(ReadMu);
    ++Compactions;
    CompactionPending = false;
  }
  std::vector<int> All(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    All[I] = static_cast<int>(I);
  publishLocked(All, {}, false);

  for (auto It = Shards.rbegin(); It != Shards.rend(); ++It)
    (*It)->Mu.unlock();
}
