//===- service/SnapshotStore.cpp - Versioned live-graph snapshots ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/SnapshotStore.h"

#include "support/FailPoint.h"

#include <chrono>
#include <unordered_map>
#include <utility>

using namespace graphit;
using namespace graphit::service;

namespace {

/// Bounded retries for snapshot publication. Publication allocates (the
/// overlay copy), so a transient failure — or the `snapshot.publish` fail
/// point — is retried; read-side state mutates only after the fallible
/// part succeeded, so a failed attempt changes nothing.
constexpr int kPublishRetryLimit = 64;

/// Describes the first malformed record of a strict-mode rejected batch.
std::string describeRejected(const EdgeUpdate &U, size_t Index) {
  return "rejected batch: malformed update #" + std::to_string(Index) +
         " (" + std::to_string(U.Src) + " -> " + std::to_string(U.Dst) +
         ", w=" + std::to_string(U.W) + ")";
}

} // namespace

SnapshotStore::SnapshotStore(Graph Base, Options O) : Opts(O) {
  // Reorder-on-load before the base CSR is frozen (no-op move for None).
  Writer = DeltaGraph(std::make_shared<const Graph>(
      reorderLoadedGraph(std::move(Base), Opts.Reorder, &Map,
                         /*Seed=*/0x0EDE5, Opts.ReorderSourceHint)));
  Current = std::make_shared<const DeltaGraph>(Writer);
}

SnapshotStore::~SnapshotStore() {
  waitForCompaction();
  if (Compactor.joinable())
    Compactor.join();
}

SnapshotStore::Snapshot SnapshotStore::current() const {
  MutexLock Lock(ReadMu);
  return Current;
}

std::pair<SnapshotStore::Snapshot, uint64_t>
SnapshotStore::currentVersioned() const {
  MutexLock Lock(ReadMu);
  return {Current, Version};
}

uint64_t SnapshotStore::version() const {
  MutexLock Lock(ReadMu);
  return Version;
}

uint64_t SnapshotStore::compactions() const {
  MutexLock Lock(ReadMu);
  return Compactions;
}

Count SnapshotStore::numNodes() const {
  MutexLock Lock(ReadMu);
  return Current->numNodes();
}

void SnapshotStore::publish() {
  // Caller holds WriteMu (REQUIRES(WriteMu) on the declaration): Writer is
  // stable, so copying it into an immutable snapshot and swapping the
  // publish pointer is the entire read-side critical section.
  for (int Attempt = 0;; ++Attempt) {
    try {
      GRAPHIT_FAIL_POINT("snapshot.publish");
      auto Snap = std::make_shared<const DeltaGraph>(Writer);
      MutexLock Lock(ReadMu);
      Current = std::move(Snap);
      ++Version;
      return;
    } catch (const std::exception &) {
      if (Attempt >= kPublishRetryLimit)
        throw;
    }
  }
}

void SnapshotStore::noteCompactionFailure(const std::string &Message) {
  PendingError = Message; // WriteMu held by the caller
  MutexLock Lock(ReadMu);
  Degraded = true;
  LastError = Message;
}

bool SnapshotStore::degraded() const {
  MutexLock Lock(ReadMu);
  return Degraded;
}

std::string SnapshotStore::lastError() const {
  MutexLock Lock(ReadMu);
  return LastError;
}

SnapshotStore::ApplyResult
SnapshotStore::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  MutexLock WriterLock(WriteMu);
  ApplyResult R;

  // Surface a background-compaction failure exactly once, on the first
  // writer call after it happened (the sticky form stays in lastError()).
  if (!PendingError.empty()) {
    R.CompactionError = std::move(PendingError);
    PendingError.clear();
  }

  // Reordered stores translate the batch into internal (layout) ids; the
  // snapshots, applied transitions, and any repaired distance states all
  // live in that space. Out-of-range endpoints pass through untranslated —
  // DeltaGraph::apply skips them like any other malformed write.
  const std::vector<EdgeUpdate> *Apply = &Batch;
  std::vector<EdgeUpdate> Translated;
  if (!Map.isIdentity()) {
    Translated = Batch;
    const Count N = Map.size();
    for (EdgeUpdate &U : Translated) {
      if (static_cast<Count>(U.Src) < N)
        U.Src = Map.toInternal(U.Src);
      if (static_cast<Count>(U.Dst) < N)
        U.Dst = Map.toInternal(U.Dst);
    }
    Apply = &Translated;
  }

  // Strict mode: a poisoned batch is all-or-nothing. Validation runs
  // before any mutation, so a rejection leaves the writer untouched and
  // publishes no version — the caller gets a typed error plus the
  // unchanged current snapshot.
  if (Opts.StrictBatches) {
    const Count N = Writer.numNodes();
    for (size_t I = 0; I < Apply->size(); ++I) {
      if (!DeltaGraph::validUpdate((*Apply)[I], N)) {
        R.Status = ApplyStatus::RejectedBatch;
        R.Error = describeRejected((*Apply)[I], I);
        MutexLock Lock(ReadMu);
        R.Version = Version;
        R.Snap = Current;
        return R;
      }
    }
  }

  R.Applied = coalesceApplied(Writer.apply(*Apply));

  if (CompactionRunning)
    Replay.push_back(ReplayOp{*Apply, 0, nullptr});

  // Compaction bookkeeping before publishing, so a synchronous compaction
  // is part of the same published version.
  const Count Overlay = Writer.overlayEdges();
  const bool OverThreshold =
      Overlay >= Opts.MinOverlayEdges &&
      static_cast<double>(Overlay) >
          Opts.CompactionThreshold *
              static_cast<double>(Writer.base().numEdges());
  if (OverThreshold && !CompactionRunning) {
    R.CompactionTriggered = true;
    if (!Opts.BackgroundCompaction) {
      try {
        GRAPHIT_FAIL_POINT("compaction.rebuild");
        Writer = DeltaGraph(std::make_shared<const Graph>(Writer.compact()));
        MutexLock Lock(ReadMu);
        ++Compactions;
        Degraded = false;
        LastError.clear();
      } catch (const std::exception &E) {
        // Failed fold: the un-compacted overlay keeps serving and the
        // next threshold trip retries. Surfaced on this very result (the
        // pending slot is cleared so it is not reported twice).
        noteCompactionFailure(std::string("compaction failed: ") + E.what());
        R.CompactionError = std::move(PendingError);
        PendingError.clear();
      }
    } else {
      if (Compactor.joinable())
        Compactor.join(); // previous compactor already finished
      CompactionRunning = true;
      Replay.clear();
      // Pin the writer's exact content for the compactor; readers are
      // unaffected (they pin published versions).
      Snapshot Pinned = std::make_shared<const DeltaGraph>(Writer);
      Compactor = std::thread([this, Pinned = std::move(Pinned)]() mutable {
        compactorBody(std::move(Pinned));
      });
    }
  }

  publish();
  {
    MutexLock Lock(ReadMu);
    R.Version = Version;
    R.Snap = Current;
  }
  return R;
}

void SnapshotStore::compactorBody(Snapshot Pinned) {
  // Nothing may escape this thread (an uncaught exception would
  // std::terminate the process): every fallible step runs under a catch,
  // and any terminal failure downgrades to "keep serving the
  // pre-compaction state, surface the error on the next writer call".
  using SteadyClock = std::chrono::steady_clock;
  const bool HasWatchdog = Opts.CompactionWatchdogMillis > 0;
  const SteadyClock::time_point Watchdog =
      SteadyClock::now() +
      std::chrono::milliseconds(HasWatchdog ? Opts.CompactionWatchdogMillis
                                            : 0);
  auto watchdogExpired = [&] {
    return HasWatchdog && SteadyClock::now() >= Watchdog;
  };

  // Phase 1: the expensive O(V + E) rebuild, with no lock held. Bounded
  // retries with exponential backoff absorb transient faults (allocation
  // failure, injected fail points); the watchdog caps the total budget so
  // a repeatedly failing fold can never wedge writers or shutdown.
  std::string Err;
  std::shared_ptr<const Graph> NewBase;
  int64_t BackoffMillis = std::max<int64_t>(Opts.CompactionBackoffMillis, 1);
  for (int Attempt = 0;; ++Attempt) {
    try {
      GRAPHIT_FAIL_POINT("compaction.rebuild");
      NewBase = std::make_shared<const Graph>(Pinned->compact());
      break;
    } catch (const std::exception &E) {
      Err = E.what();
    } catch (...) {
      Err = "unknown compaction error";
    }
    if (Attempt >= Opts.CompactionRetryLimit || watchdogExpired())
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMillis));
    BackoffMillis *= 2;
  }
  Pinned.reset();

  MutexLock WriterLock(WriteMu);
  // Phase 2: replay the writer-side operations accepted while we were
  // compacting onto the new base. Upsert/delete/growth semantics are
  // deterministic, so the result equals the writer's current adjacency
  // with an (almost) empty overlay. Universe growth replays too —
  // otherwise a later batch referencing the new ids would be
  // range-rejected. Each retry restarts from a fresh overlay over the
  // rebuilt base, so a half-replayed attempt can never leak; no backoff
  // here — WriteMu is held and sleeping would block writers.
  bool Ok = false;
  if (NewBase) {
    for (int Attempt = 0; !Ok; ++Attempt) {
      try {
        DeltaGraph Rebuilt(NewBase);
        for (const ReplayOp &Op : Replay) {
          GRAPHIT_FAIL_POINT("compaction.replay");
          if (Op.GrowTo > 0)
            Rebuilt.growUniverse(Op.GrowTo, Op.TailCoords.get());
          else
            Rebuilt.apply(Op.Batch);
        }
        Writer = std::move(Rebuilt);
        Ok = true;
      } catch (const std::exception &E) {
        Err = E.what();
      } catch (...) {
        Err = "unknown compaction error";
      }
      if (!Ok && (Attempt >= Opts.CompactionRetryLimit || watchdogExpired()))
        break;
    }
  }

  Replay.clear();
  CompactionRunning = false;
  if (Ok) {
    {
      MutexLock Lock(ReadMu);
      ++Compactions;
      Degraded = false;
      LastError.clear();
    }
    try {
      publish();
    } catch (...) {
      // Publication failed terminally: the compacted writer state is
      // intact and the next writer call publishes it — readers just keep
      // the previous version a little longer.
    }
  } else {
    // Fallback: the pre-compaction writer (already holding every replayed
    // batch) stays authoritative and published — serving never stalls on
    // the wedged fold. The failure is surfaced on the next writer call.
    noteCompactionFailure("background compaction failed: " + Err);
  }
  CompactionCv.notify_all();
}

void SnapshotStore::waitForCompaction() {
  // Explicit wait loop (not the predicate-lambda overload): the analysis
  // is intra-procedural, so the guarded CompactionRunning read stays in a
  // scope where WriteMu is visibly held.
  MutexLock WriterLock(WriteMu);
  while (CompactionRunning)
    CompactionCv.wait(WriterLock.native());
}

bool SnapshotStore::waitForCompactionFor(int64_t TimeoutMillis) {
  MutexLock WriterLock(WriteMu);
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(TimeoutMillis);
  while (CompactionRunning) {
    if (CompactionCv.wait_until(WriterLock.native(), Deadline) ==
        std::cv_status::timeout)
      return !CompactionRunning;
  }
  return true;
}

VertexId SnapshotStore::addVertices(Count HowMany,
                                    const Coordinates *TailCoords) {
  MutexLock WriterLock(WriteMu);
  VertexId First = static_cast<VertexId>(Writer.numNodes());
  if (HowMany <= 0)
    return First; // nothing to grow; no version published
  const Count GrowTo = Writer.numNodes() + HowMany;
  Writer.growUniverse(GrowTo, TailCoords);
  if (CompactionRunning)
    Replay.push_back(ReplayOp{
        {},
        GrowTo,
        TailCoords ? std::make_shared<Coordinates>(*TailCoords) : nullptr});
  publish();
  return First;
}

//===----------------------------------------------------------------------===//
// ShardedSnapshotStore
//===----------------------------------------------------------------------===//

ShardedSnapshotStore::ShardedSnapshotStore(Graph Base, Options O)
    : Opts(O) {
  this->Opts.NumShards = std::max(1, Opts.NumShards);
  auto BasePtr = std::make_shared<const Graph>(
      reorderLoadedGraph(std::move(Base), Opts.Reorder, &Map,
                         /*Seed=*/0x0EDE5, Opts.ReorderSourceHint));
  Shift =
      ShardedDeltaView::shiftFor(BasePtr->numNodes(), this->Opts.NumShards);
  Symmetric = BasePtr->isSymmetric();
  MirrorsIn = !Symmetric && BasePtr->hasInEdges();
  Shards.reserve(static_cast<size_t>(this->Opts.NumShards));
  std::vector<std::shared_ptr<const DeltaGraph>> Snaps;
  for (int S = 0; S < this->Opts.NumShards; ++S) {
    auto Sh = std::make_unique<Shard>();
    Sh->Writer = DeltaGraph(BasePtr);
    Snaps.push_back(std::make_shared<const DeltaGraph>(Sh->Writer));
    Shards.push_back(std::move(Sh));
  }
  ShardVersions.assign(Shards.size(), 0);
  auto View = std::make_shared<ShardedDeltaView>(std::move(Snaps), Shift);
  View->setVersions(0, ShardVersions);
  Cur = std::move(View);
}

ShardedSnapshotStore::Snapshot ShardedSnapshotStore::current() const {
  MutexLock Lock(ReadMu);
  return Cur;
}

std::pair<ShardedSnapshotStore::Snapshot, uint64_t>
ShardedSnapshotStore::currentVersioned() const {
  MutexLock Lock(ReadMu);
  return {Cur, Version};
}

uint64_t ShardedSnapshotStore::version() const {
  MutexLock Lock(ReadMu);
  return Version;
}

Count ShardedSnapshotStore::numNodes() const {
  MutexLock Lock(ReadMu);
  return Cur->numNodes();
}

uint64_t ShardedSnapshotStore::compactions() const {
  MutexLock Lock(ReadMu);
  return Compactions;
}

std::vector<Mutex *>
ShardedSnapshotStore::shardMutexes(const std::vector<int> &ShardIds) {
  std::vector<Mutex *> Mus;
  Mus.reserve(ShardIds.size());
  for (int S : ShardIds)
    Mus.push_back(&Shards[static_cast<size_t>(S)]->Mu);
  return Mus;
}

int ShardedSnapshotStore::shardOf(VertexId V) const {
  Count S = static_cast<Count>(V) >> Shift;
  return static_cast<int>(
      std::min<Count>(S, static_cast<Count>(Shards.size()) - 1));
}

bool ShardedSnapshotStore::degraded() const {
  MutexLock Lock(ReadMu);
  return Degraded;
}

std::string ShardedSnapshotStore::lastError() const {
  MutexLock Lock(ReadMu);
  return LastError;
}

ShardedSnapshotStore::ApplyResult
ShardedSnapshotStore::publishLocked(const std::vector<int> &Touched,
                                    std::vector<AppliedUpdate> Applied,
                                    bool CompactionTriggered) {
  // Caller holds the writer mutex of every shard in Touched, so copying
  // those writers into immutable snapshots here is race-free; untouched
  // shards keep the pointers of the previous composite (read under ReadMu,
  // which also makes the version vector update atomic with the swap).
  ApplyResult R;
  R.Applied = std::move(Applied);
  R.CompactionTriggered = CompactionTriggered;
  MutexLock Lock(ReadMu);
  if (!PendingError.empty()) {
    R.CompactionError = std::move(PendingError);
    PendingError.clear();
  }
  // Publication is all-or-nothing: every fallible step (the snapshot
  // copies and the composite view — plus the snapshot.publish fail point)
  // runs before any version state mutates, with bounded retries, so a
  // failed attempt leaves versions, the composite, and DirtySince
  // untouched.
  std::shared_ptr<ShardedDeltaView> View;
  for (int Attempt = 0;; ++Attempt) {
    try {
      GRAPHIT_FAIL_POINT("snapshot.publish");
      std::vector<std::shared_ptr<const DeltaGraph>> Snaps = Cur->shards();
      for (int S : Touched)
        Snaps[static_cast<size_t>(S)] = std::make_shared<const DeltaGraph>(
            Shards[static_cast<size_t>(S)]->Writer);
      View = std::make_shared<ShardedDeltaView>(std::move(Snaps), Shift);
      break;
    } catch (const std::exception &) {
      if (Attempt >= kPublishRetryLimit)
        throw;
    }
  }
  for (int S : Touched) {
    ++ShardVersions[static_cast<size_t>(S)];
    Shards[static_cast<size_t>(S)]->DirtySince = Version + 1;
  }
  ++Version;
  View->setVersions(Version, ShardVersions);
  Cur = std::move(View);
  R.Version = Version;
  R.Snap = Cur;
  // Only the caller that flips the pending flag runs the compaction; a
  // trigger firing while one is pending has already been absorbed.
  R.CompactionTriggered = CompactionTriggered && !CompactionPending;
  if (R.CompactionTriggered)
    CompactionPending = true;
  return R;
}

ShardedSnapshotStore::ApplyResult
ShardedSnapshotStore::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  // Reordered stores translate into internal ids, exactly like the
  // unsharded store (out-of-range endpoints pass through untranslated and
  // are skipped by the validity test below).
  const std::vector<EdgeUpdate> *Apply = &Batch;
  std::vector<EdgeUpdate> Translated;
  if (!Map.isIdentity()) {
    Translated = Batch;
    const Count N = Map.size();
    for (EdgeUpdate &U : Translated) {
      if (static_cast<Count>(U.Src) < N)
        U.Src = Map.toInternal(U.Src);
      if (static_cast<Count>(U.Dst) < N)
        U.Dst = Map.toInternal(U.Dst);
    }
    Apply = &Translated;
  }

  // Involved shards: shard(src) always (out-adjacency); shard(dst) when a
  // mirror or symmetric reverse edge will land there. Computed without any
  // lock — shardOf clamps arbitrary ids, and the universe size is only
  // read once a shard lock pins it.
  const bool NeedDst = Symmetric || MirrorsIn;
  std::vector<int> Touched;
  Touched.reserve(Apply->size() * (NeedDst ? 2 : 1));
  for (const EdgeUpdate &U : *Apply) {
    Touched.push_back(shardOf(U.Src));
    if (NeedDst)
      Touched.push_back(shardOf(U.Dst));
  }
  std::sort(Touched.begin(), Touched.end());
  Touched.erase(std::unique(Touched.begin(), Touched.end()), Touched.end());

  // Lock involved shards in ascending order (deadlock-free total order),
  // held through the publish so versions of one shard can never regress.
  // A simulated acquisition failure (the `shard.lock` fail point) makes
  // DynamicLockSet release everything taken and retry the whole set.
  DynamicLockSet ShardLocks(shardMutexes(Touched), "shard.lock");

  // Strict mode: validate the whole batch against the pinned universe
  // size before mutating any shard, so a poisoned batch rejects
  // atomically — bit-compatible with the unsharded store (same batches
  // rejected, no version published).
  if (Opts.StrictBatches && !Touched.empty()) {
    const Count N =
        Shards[static_cast<size_t>(Touched.front())]->Writer.numNodes();
    for (size_t I = 0; I < Apply->size(); ++I) {
      if (!DeltaGraph::validUpdate((*Apply)[I], N)) {
        ApplyResult R;
        R.Status = ApplyStatus::RejectedBatch;
        R.Error = describeRejected((*Apply)[I], I);
        {
          MutexLock Lock(ReadMu);
          R.Version = Version;
          R.Snap = Cur;
        }
        return R; // ShardLocks releases on scope exit

      }
    }
  }

  // Shards whose overlay actually changed: the version-vector contract is
  // "bump exactly when that shard changed", so a locked shard that only
  // saw no-ops (same-weight upserts, deletes of missing edges, malformed
  // writes) is neither re-snapshotted nor bumped.
  std::vector<int> Dirty;
  std::vector<AppliedUpdate> Applied;
  bool Trigger = false;
  if (!Touched.empty()) {
    const Count N =
        Shards[static_cast<size_t>(Touched.front())]->Writer.numNodes();
    Applied.reserve(Apply->size() * (Symmetric ? 2 : 1));
    for (const EdgeUpdate &U : *Apply) {
      if (!DeltaGraph::validUpdate(U, N))
        continue; // malformed write: skip, don't take the store down
      DeltaGraph &SrcW = Shards[static_cast<size_t>(shardOf(U.Src))]->Writer;
      AppliedUpdate A = SrcW.applyShardOut(U.Src, U.Dst, U.W, U.Kind);
      if (A.OldW != kAbsentEdge || A.NewW != kAbsentEdge) {
        Applied.push_back(A);
        Dirty.push_back(shardOf(U.Src));
        if (MirrorsIn) {
          Shards[static_cast<size_t>(shardOf(U.Dst))]
              ->Writer.applyShardInMirror(U.Src, U.Dst, U.W, U.Kind);
          Dirty.push_back(shardOf(U.Dst));
        }
      }
      if (Symmetric) {
        DeltaGraph &DstW =
            Shards[static_cast<size_t>(shardOf(U.Dst))]->Writer;
        AppliedUpdate B = DstW.applyShardOut(U.Dst, U.Src, U.W, U.Kind);
        if (B.OldW != kAbsentEdge || B.NewW != kAbsentEdge) {
          Applied.push_back(B);
          Dirty.push_back(shardOf(U.Dst));
        }
      }
    }
    std::sort(Dirty.begin(), Dirty.end());
    Dirty.erase(std::unique(Dirty.begin(), Dirty.end()), Dirty.end());
    // Per-shard compaction triggers, measured against the shard's slice
    // of the shared base.
    const Count BaseSlice =
        Shards[static_cast<size_t>(Touched.front())]->Writer.base().numEdges() /
        static_cast<Count>(Shards.size());
    for (int S : Dirty) {
      const Count Overlay =
          Shards[static_cast<size_t>(S)]->Writer.overlayEdges();
      if (Overlay >= Opts.MinOverlayEdges &&
          static_cast<double>(Overlay) >
              Opts.CompactionThreshold * static_cast<double>(BaseSlice))
        Trigger = true;
    }
  }

  ApplyResult R =
      publishLocked(Dirty, coalesceApplied(Applied), Trigger);

  ShardLocks.release();

  if (R.CompactionTriggered)
    compactAll();
  return R;
}

VertexId ShardedSnapshotStore::addVertices(Count HowMany,
                                           const Coordinates *TailCoords) {
  // Universe growth is store-wide state: every shard's overlay must agree
  // on the node count (range checks, coordinate extents), so insertion
  // takes every shard lock. It is the rare, heavyweight operation of the
  // write path — edge batches on disjoint shards stay concurrent.
  std::vector<int> All(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    All[I] = static_cast<int>(I);
  DynamicLockSet ShardLocks(shardMutexes(All), "shard.lock");
  VertexId First = static_cast<VertexId>(Shards.front()->Writer.numNodes());
  if (HowMany > 0) {
    const Count GrowTo = static_cast<Count>(First) + HowMany;
    for (auto &S : Shards)
      S->Writer.growUniverse(GrowTo, TailCoords);
    publishLocked(All, {}, false);
  }
  return First;
}

void ShardedSnapshotStore::compactAll() {
  // One global compaction at a time; a trigger that fires while another
  // compaction is pending was already absorbed by the CompactionPending
  // flag in publishLocked.
  MutexLock CompactGuard(CompactMu);
  std::vector<int> All(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    All[I] = static_cast<int>(I);
  DynamicLockSet ShardLocks(shardMutexes(All), "shard.lock");

  // Fold every shard's overlay into a fresh shared base. The expensive
  // O(V + E) rebuild runs under the shard locks — the sharded store
  // trades the unsharded store's background-compaction machinery for
  // per-shard write concurrency the rest of the time. A failed fold
  // (transient allocation fault, injected fail point) downgrades to
  // "keep serving the overlays": the writers are only replaced after the
  // rebuild fully succeeded, the next trigger retries, and the error is
  // surfaced on the next apply.
  try {
    GRAPHIT_FAIL_POINT("compaction.rebuild");
    std::vector<std::shared_ptr<const DeltaGraph>> Raw;
    Raw.reserve(Shards.size());
    for (auto &S : Shards)
      Raw.push_back(std::make_shared<const DeltaGraph>(S->Writer));
    ShardedDeltaView Whole(std::move(Raw), Shift);
    auto NewBase = std::make_shared<const Graph>(Whole.compact());
    for (auto &S : Shards)
      S->Writer = DeltaGraph(NewBase);

    {
      MutexLock Lock(ReadMu);
      ++Compactions;
      CompactionPending = false;
      Degraded = false;
      LastError.clear();
    }
    publishLocked(All, {}, false);
  } catch (const std::exception &E) {
    MutexLock Lock(ReadMu);
    CompactionPending = false; // a later trigger may retry
    Degraded = true;
    LastError = std::string("compaction failed: ") + E.what();
    PendingError = LastError;
  }
}
