//===- service/SnapshotStore.cpp - Versioned live-graph snapshots ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/SnapshotStore.h"

#include <unordered_map>
#include <utility>

using namespace graphit;
using namespace graphit::service;

SnapshotStore::SnapshotStore(Graph Base, Options Opts) : Opts(Opts) {
  // Reorder-on-load before the base CSR is frozen (no-op move for None).
  Writer = DeltaGraph(std::make_shared<const Graph>(
      reorderLoadedGraph(std::move(Base), Opts.Reorder, &Map,
                         /*Seed=*/0x0EDE5, Opts.ReorderSourceHint)));
  Current = std::make_shared<const DeltaGraph>(Writer);
}

SnapshotStore::~SnapshotStore() {
  waitForCompaction();
  if (Compactor.joinable())
    Compactor.join();
}

SnapshotStore::Snapshot SnapshotStore::current() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Current;
}

std::pair<SnapshotStore::Snapshot, uint64_t>
SnapshotStore::currentVersioned() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return {Current, Version};
}

uint64_t SnapshotStore::version() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Version;
}

uint64_t SnapshotStore::compactions() const {
  std::lock_guard<std::mutex> Lock(ReadMu);
  return Compactions;
}

void SnapshotStore::publish(std::unique_lock<std::mutex> &) {
  // Caller holds WriteMu (asserted by the parameter): Writer is stable, so
  // copying it into an immutable snapshot and swapping the publish pointer
  // is the entire read-side critical section.
  auto Snap = std::make_shared<const DeltaGraph>(Writer);
  std::lock_guard<std::mutex> Lock(ReadMu);
  Current = std::move(Snap);
  ++Version;
}

namespace {

/// Coalesces the raw per-application transition records of one batch into
/// at most one record per directed edge: first old weight → last new
/// weight. Multiple updates of one edge inside a batch would otherwise
/// hand repair an intermediate "old" weight and break its tightness test.
std::vector<AppliedUpdate>
coalesce(std::vector<AppliedUpdate> Raw) {
  std::unordered_map<uint64_t, size_t> Index;
  std::vector<AppliedUpdate> Out;
  Out.reserve(Raw.size());
  for (const AppliedUpdate &A : Raw) {
    uint64_t Key = (static_cast<uint64_t>(A.Src) << 32) | A.Dst;
    auto [It, Fresh] = Index.emplace(Key, Out.size());
    if (Fresh) {
      Out.push_back(A);
      continue;
    }
    Out[It->second].NewW = A.NewW; // keep the first OldW, take the last NewW
  }
  // Drop net no-ops (e.g. delete then re-insert at the old weight).
  size_t Keep = 0;
  for (const AppliedUpdate &A : Out)
    if (A.OldW != A.NewW)
      Out[Keep++] = A;
  Out.resize(Keep);
  return Out;
}

} // namespace

SnapshotStore::ApplyResult
SnapshotStore::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  std::unique_lock<std::mutex> WriterLock(WriteMu);
  ApplyResult R;

  // Reordered stores translate the batch into internal (layout) ids; the
  // snapshots, applied transitions, and any repaired distance states all
  // live in that space. Out-of-range endpoints pass through untranslated —
  // DeltaGraph::apply skips them like any other malformed write.
  const std::vector<EdgeUpdate> *Apply = &Batch;
  std::vector<EdgeUpdate> Translated;
  if (!Map.isIdentity()) {
    Translated = Batch;
    const Count N = Map.size();
    for (EdgeUpdate &U : Translated) {
      if (static_cast<Count>(U.Src) < N)
        U.Src = Map.toInternal(U.Src);
      if (static_cast<Count>(U.Dst) < N)
        U.Dst = Map.toInternal(U.Dst);
    }
    Apply = &Translated;
  }
  R.Applied = coalesce(Writer.apply(*Apply));

  if (CompactionRunning)
    Replay.push_back(*Apply);

  // Compaction bookkeeping before publishing, so a synchronous compaction
  // is part of the same published version.
  const Count Overlay = Writer.overlayEdges();
  const bool OverThreshold =
      Overlay >= Opts.MinOverlayEdges &&
      static_cast<double>(Overlay) >
          Opts.CompactionThreshold *
              static_cast<double>(Writer.base().numEdges());
  if (OverThreshold && !CompactionRunning) {
    R.CompactionTriggered = true;
    if (!Opts.BackgroundCompaction) {
      Writer = DeltaGraph(std::make_shared<const Graph>(Writer.compact()));
      std::lock_guard<std::mutex> Lock(ReadMu);
      ++Compactions;
    } else {
      if (Compactor.joinable())
        Compactor.join(); // previous compactor already finished
      CompactionRunning = true;
      Replay.clear();
      // Pin the writer's exact content for the compactor; readers are
      // unaffected (they pin published versions).
      Snapshot Pinned = std::make_shared<const DeltaGraph>(Writer);
      Compactor = std::thread([this, Pinned = std::move(Pinned)]() mutable {
        compactorBody(std::move(Pinned));
      });
    }
  }

  publish(WriterLock);
  {
    std::lock_guard<std::mutex> Lock(ReadMu);
    R.Version = Version;
    R.Snap = Current;
  }
  return R;
}

void SnapshotStore::compactorBody(Snapshot Pinned) {
  // The expensive O(V + E) rebuild happens with no lock held.
  auto NewBase = std::make_shared<const Graph>(Pinned->compact());
  Pinned.reset();

  std::unique_lock<std::mutex> WriterLock(WriteMu);
  DeltaGraph Rebuilt(std::move(NewBase));
  // Batches accepted while we were compacting: replay them onto the new
  // base. Upsert/delete semantics are deterministic, so the result equals
  // the writer's current adjacency with an (almost) empty overlay.
  for (const std::vector<EdgeUpdate> &B : Replay)
    Rebuilt.apply(B);
  Replay.clear();
  Writer = std::move(Rebuilt);
  CompactionRunning = false;
  {
    std::lock_guard<std::mutex> Lock(ReadMu);
    ++Compactions;
  }
  publish(WriterLock);
  CompactionCv.notify_all();
}

void SnapshotStore::waitForCompaction() {
  std::unique_lock<std::mutex> WriterLock(WriteMu);
  CompactionCv.wait(WriterLock, [&] { return !CompactionRunning; });
}
