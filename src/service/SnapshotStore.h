//===- service/SnapshotStore.h - Versioned live-graph snapshots -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned snapshot store behind live-graph serving: readers pin
/// immutable, refcounted graph versions while writers apply batched edge
/// updates and publish new ones — queries never block on writes and writes
/// never block on queries.
///
///  * A *snapshot* is a `shared_ptr<const DeltaGraph>` (base CSR + patch
///    overlay, graph/DeltaGraph.h). Pinning is one refcount; a query holds
///    its snapshot for its lifetime and is immune to later publishes.
///  * `applyUpdates` mutates the writer's private overlay, coalesces the
///    per-edge transitions (old → new weight across the whole batch, the
///    form incremental repair consumes), and publishes a copy as the next
///    version. Writers are serialized; readers only ever touch published
///    copies.
///  * Once the overlay exceeds `CompactionThreshold × base edges`, it is
///    compacted into a fresh base CSR — synchronously by default, or on a
///    background thread (`Options::BackgroundCompaction`) that rebuilds
///    from a pinned snapshot while the writer keeps accepting batches;
///    the intervening batches are replayed onto the new base before it is
///    published. Old versions stay alive until their last reader unpins.
///
/// The vertex universe *grows*: `addVertices` appends fresh ids at the
/// tail (DeltaGraph's appendable tail region) and publishes the grown
/// universe as the next version; pooled query states resize lazily
/// (`DistanceState::resize`). Under a reordered layout, tail ids map to
/// themselves in both id spaces (VertexMapping's identity tail).
///
/// `ShardedSnapshotStore` (below) is the scale-out variant: the update
/// stream is partitioned by vertex-range shard, each shard with its own
/// writer mutex, patch overlay, and compaction trigger, so writers on
/// distinct shards only contend on the final (cheap) composite publish —
/// and compaction is per-shard and *incremental* (DeltaGraph segments),
/// so a fold costs O(shard) under one shard lock, not O(V + E) under all.
/// Readers pin one `ShardedDeltaView` — a consistent cross-shard version
/// vector — and run the templated engines directly over it.
///
/// Operator documentation (compaction failure semantics, option tables
/// for both stores) lives in docs/serving.md; the tables are kept in
/// sync with this header by scripts/check_docs.py (the `docs_check`
/// ctest entry).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SERVICE_SNAPSHOTSTORE_H
#define GRAPHIT_SERVICE_SNAPSHOTSTORE_H

#include "graph/DeltaGraph.h"
#include "graph/Reorder.h"
#include "support/ThreadSafety.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace graphit {
namespace service {

/// Batch-level outcome of an applyUpdates call (both stores).
enum class ApplyStatus : uint8_t {
  Ok,
  /// Strict mode only: the batch contained a malformed update, nothing
  /// was applied, and no version was published (`Snap` is the unchanged
  /// current version). The offending record is described in `Error`.
  RejectedBatch,
};

/// Versioned publisher of `DeltaGraph` snapshots over one base graph.
class SnapshotStore {
public:
  /// A pinned, immutable graph version. Holding it keeps the version (and
  /// its base CSR) alive regardless of later publishes or compactions.
  using Snapshot = std::shared_ptr<const DeltaGraph>;

  struct Options {
    Options() {} // usable as a `{}` default argument under GCC 12
    /// Compact once overlayEdges() exceeds this fraction of the base
    /// graph's edges ...
    double CompactionThreshold = 0.10;
    /// ... and at least this many edges (tiny graphs aren't worth it).
    Count MinOverlayEdges = 1 << 12;
    /// Compact on a background thread instead of inside applyUpdates.
    bool BackgroundCompaction = false;
    /// Cache-conscious layout: permute the base graph on construction
    /// (graph/Reorder.h) and serve the permuted CSR internally. Callers
    /// keep speaking original ids: update batches are translated on the
    /// way in (`mapping()` translates results on the way out).
    ReorderKind Reorder = ReorderKind::None;
    /// Root hint for the Bfs ordering (see makeOrdering) in *original* id
    /// space — align with the dominant query source when known.
    VertexId ReorderSourceHint = 0;
    /// All-or-nothing batches: reject a batch containing any malformed
    /// update with a typed error (`ApplyStatus::RejectedBatch`) instead
    /// of skipping the bad records and applying the rest.
    bool StrictBatches = false;
    /// Bounded retries for a failed compaction rebuild or replay
    /// (transient faults — allocation failure, injected fail points).
    int CompactionRetryLimit = 3;
    /// Backoff before the first background-rebuild retry, doubling per
    /// retry.
    int64_t CompactionBackoffMillis = 10;
    /// Watchdog: total wall-clock budget for one background compaction,
    /// retries and backoff included; 0 disables. On expiry the fold is
    /// abandoned and the pre-compaction state keeps serving (degraded,
    /// error surfaced on the next writer call) — a wedged fold can never
    /// stall serving or shutdown indefinitely.
    int64_t CompactionWatchdogMillis = 0;
  };

  struct ApplyResult {
    /// Batch-level outcome; everything below `Applied` is meaningful only
    /// for Ok.
    ApplyStatus Status = ApplyStatus::Ok;
    /// Human-readable description of the rejected record (strict mode).
    std::string Error;
    /// Non-empty when a compaction failure is being surfaced: either the
    /// failure of this call's synchronous compaction, or — exactly once —
    /// a background-compaction failure that happened since the previous
    /// writer call. The store keeps serving its un-compacted overlay
    /// either way (see degraded()).
    std::string CompactionError;
    /// Version published for this batch.
    uint64_t Version = 0;
    /// Directed, batch-coalesced transitions (at most one per directed
    /// edge: the first old weight to the last new weight), ready for
    /// `repairAfterUpdates`. Empty records (no net change) are dropped.
    /// In *internal* (layout) id space when the store reorders — the same
    /// space the snapshots and any pooled distance states live in;
    /// translate through `mapping()` for display.
    std::vector<AppliedUpdate> Applied;
    /// The published snapshot, pre-pinned for the caller.
    Snapshot Snap;
    /// True if this batch tripped the compaction threshold (with
    /// background compaction the rebuilt base publishes later).
    bool CompactionTriggered = false;
  };

  explicit SnapshotStore(Graph Base, Options Opts = {});
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore &) = delete;
  SnapshotStore &operator=(const SnapshotStore &) = delete;

  /// The latest published version. Thread-safe, never blocks on writers
  /// beyond the publish pointer swap.
  Snapshot current() const;

  /// The latest published version together with its version number, read
  /// atomically (a separate current() + version() pair can tear across a
  /// concurrent publish). Consumers that cache auxiliary structures per
  /// version (the QueryEngine's live landmark cache) need the pair.
  std::pair<Snapshot, uint64_t> currentVersioned() const;

  /// Monotonic version counter (0 = the seed base graph).
  uint64_t version() const;

  /// External-to-internal vertex-id mapping (identity unless
  /// `Options::Reorder` was set). Queries and update batches arrive in
  /// external ids; snapshots, applied transitions, and distance states
  /// live in internal ids.
  const VertexMapping &mapping() const { return Map; }

  /// Applies \p Batch and publishes the next version. Serialized across
  /// callers; concurrent readers keep their pinned versions.
  ApplyResult applyUpdates(const std::vector<EdgeUpdate> &Batch);

  /// Grows the vertex universe by \p HowMany fresh vertices and publishes
  /// the next version. \returns the first new id — ids are contiguous and
  /// identical in external and internal space (the tail sits past any
  /// reorder permutation). New vertices start with empty adjacency; on
  /// coordinate-bearing graphs \p TailCoords may supply one (X, Y) per
  /// new vertex (see DeltaGraph::growUniverse for the A* contract).
  VertexId addVertices(Count HowMany,
                       const Coordinates *TailCoords = nullptr);

  /// --- Vertex deletion and id reuse --------------------------------------
  ///
  /// The universe never shrinks (distance states, snapshots and engines
  /// all index by vertex id), but ids *recycle*: `removeVertex` deletes
  /// every incident edge of \p External (publishing the batch like any
  /// other applyUpdates — the Applied records feed incremental repair) and
  /// pushes the id onto the mapping's free list; `acquireVertex` pops a
  /// freed id if one exists — handing back an isolated, in-universe vertex
  /// at zero growth cost — and only grows the universe when the free list
  /// is empty. A removed vertex keeps serving as an isolated vertex, so
  /// distances stay bit-identical to a universe that merely deleted the
  /// same edges; its tombstoned patch row is reclaimed by the next fold
  /// covering it (`DeltaGraph::reclaimedTombstones`).
  ///
  /// On directed graphs without incoming adjacency the store cannot
  /// enumerate in-edges, so only the out-edges are deleted; symmetric and
  /// in-edge-carrying graphs detach fully. A reused id keeps its old
  /// coordinates — callers wiring it back into a coordinate-bearing graph
  /// must pick weights respecting the A* floor of the *existing*
  /// coordinates (or route only PPSP/SSSP at it).
  ApplyResult removeVertex(VertexId External);
  VertexId acquireVertex(const Coordinates *OneCoord = nullptr);
  /// Freed ids awaiting reuse.
  Count freeVertexCount() const;

  /// Vertex universe of the latest published version. Thread-safe.
  Count numNodes() const;

  /// Compactions performed so far.
  uint64_t compactions() const;

  /// Blocks until no background compaction is in flight (its rebuilt base
  /// is published). No-op in synchronous mode.
  void waitForCompaction();

  /// Bounded wait; returns false if a compaction is still in flight after
  /// \p TimeoutMillis.
  bool waitForCompactionFor(int64_t TimeoutMillis);

  /// Degraded-but-serving: the last compaction failed (after retries /
  /// watchdog) and its overlay has not been folded since. Queries keep
  /// running over the un-compacted snapshots. Cleared by the next
  /// successful compaction.
  bool degraded() const;

  /// The last compaction failure message ("" when none). Sticky until the
  /// next successful compaction; independent of the one-shot
  /// ApplyResult::CompactionError surfacing.
  std::string lastError() const;

private:
  /// Copies the writer overlay into an immutable snapshot and swaps the
  /// publish pointer (the entire read-side critical section). The
  /// REQUIRES contract replaces the old pass-the-unique-lock-as-proof
  /// parameter: the analysis now verifies every caller actually holds
  /// WriteMu.
  void publish() REQUIRES(WriteMu);
  void compactorBody(Snapshot Pinned) EXCLUDES(WriteMu);
  /// Records a failed compaction: marks the store degraded, keeps the
  /// sticky LastError, and queues the one-shot PendingError for the next
  /// writer call.
  void noteCompactionFailure(const std::string &Message) REQUIRES(WriteMu);

  /// Writers always nest the read lock inside the write lock (publish,
  /// failure notes); the analysis owns that ordering.
  Mutex WriteMu ACQUIRED_BEFORE(ReadMu);
  /// Guards the publish pointer, version counter, and health flags.
  mutable Mutex ReadMu;

  Snapshot Current GUARDED_BY(ReadMu);
  uint64_t Version GUARDED_BY(ReadMu) = 0;
  bool Degraded GUARDED_BY(ReadMu) = false;
  std::string LastError GUARDED_BY(ReadMu);
  uint64_t Compactions GUARDED_BY(ReadMu) = 0;
  /// Permutation tables immutable after construction (read lock-free by
  /// the translate paths); only the freed-id list mutates, under ReadMu.
  VertexMapping Map;

  std::condition_variable CompactionCv;
  DeltaGraph Writer GUARDED_BY(WriteMu);
  Options Opts; ///< immutable after construction
  bool CompactionRunning GUARDED_BY(WriteMu) = false;
  /// One-shot surfacing on the next writer call.
  std::string PendingError GUARDED_BY(WriteMu);
  std::thread Compactor GUARDED_BY(WriteMu);
  /// One writer-side operation recorded while a background compaction
  /// runs, replayed onto the rebuilt base before it replaces the writer
  /// overlay. Either an edge batch or a universe growth — growth must
  /// replay too, or batches referencing the new ids would be range-
  /// rejected against the pre-growth rebuild.
  struct ReplayOp {
    std::vector<EdgeUpdate> Batch;
    Count GrowTo = 0; ///< 0 = edge batch; else grow universe to this size
    std::shared_ptr<const Coordinates> TailCoords;
  };
  std::vector<ReplayOp> Replay GUARDED_BY(WriteMu);
};

/// Scale-out snapshot store: the vertex universe is partitioned into
/// contiguous ranges (one per shard; see ShardedDeltaView::shiftFor), and
/// each shard owns a private `DeltaGraph` overlay over the shared base
/// CSR plus its own writer mutex and compaction counter. A batch locks
/// only the shards its endpoints touch — the directed edge (u, v) patches
/// shard(u)'s out-adjacency and shard(v)'s in-adjacency (on symmetric
/// graphs, the reverse edge is shard(v)'s own out-edge) — so writers on
/// disjoint shard sets apply concurrently and only serialize on the final
/// composite pointer swap.
///
/// Readers pin a `ShardedDeltaView` snapshot carrying the cross-shard
/// version vector: per-shard versions bump exactly when that shard's
/// overlay changed, the global version on every publish, and a pinned
/// composite is immutable — so two pins can be compared component-wise
/// (monotone, never torn; the concurrency stress test asserts this).
///
/// Compaction is *per shard and incremental*: a shard that trips its
/// trigger folds its own vertex range — patches included — into a fresh
/// `BaseSegment` (DeltaGraph::compactRange) while every other shard keeps
/// serving its existing rows. The fold costs O(shard), holds exactly one
/// shard writer lock (never more — asserted by the fault-isolation stress
/// schedule), and can run on a background thread per shard
/// (`Options::BackgroundCompaction`): the fold works off a pinned copy,
/// batches accepted meanwhile are recorded in a shard-local replay log
/// and re-applied onto the folded copy before it atomically replaces the
/// writer. A failed fold degrades only that shard; the others keep
/// folding. The legacy all-locks O(V + E) global rebuild survives behind
/// `Options::LegacyGlobalRebuild` as the bench baseline. Batch-level
/// semantics (applied-update coalescing, malformed-write skipping, vertex
/// insertion) are bit-compatible with `SnapshotStore`; the stress harness
/// differentially asserts it.
class ShardedSnapshotStore {
public:
  using Snapshot = std::shared_ptr<const ShardedDeltaView>;

  struct Options {
    Options() {} // usable as a `{}` default argument under GCC 12
    /// Vertex-range shards (writer concurrency). Clamped to >= 1.
    int NumShards = 8;
    /// Per-shard compaction trigger, measured against the shard's slice
    /// of the base edges (see SnapshotStore::Options).
    double CompactionThreshold = 0.10;
    Count MinOverlayEdges = 1 << 12;
    /// Cache-conscious layout, as in SnapshotStore::Options.
    ReorderKind Reorder = ReorderKind::None;
    VertexId ReorderSourceHint = 0;
    /// All-or-nothing batches, as in SnapshotStore::Options (semantics
    /// are bit-compatible: same batches rejected, same versions
    /// published).
    bool StrictBatches = false;
    /// Fold a tripped shard on its own background thread (pin + replay,
    /// as in SnapshotStore) instead of inline in the triggering apply.
    bool BackgroundCompaction = false;
    /// Bounded retries for a failed shard fold or replay (transient
    /// faults — allocation failure, injected fail points).
    int CompactionRetryLimit = 3;
    /// Compatibility/baseline mode: a tripped trigger schedules the old
    /// store-wide rebuild (all shard locks, one O(V + E) fold) instead of
    /// the per-shard incremental fold. Exists so benches can measure the
    /// win; leave off in production.
    bool LegacyGlobalRebuild = false;
  };

  struct ApplyResult {
    /// Batch-level outcome (see SnapshotStore::ApplyResult).
    ApplyStatus Status = ApplyStatus::Ok;
    std::string Error;
    /// One-shot surfacing of a global-compaction failure (the sharded
    /// store compacts inline, so this reports the failure of a fold
    /// triggered by this or an earlier batch; serving continues over the
    /// un-compacted overlays either way).
    std::string CompactionError;
    uint64_t Version = 0;
    /// Batch-coalesced directed transitions, byte-identical to what the
    /// unsharded store returns for the same batch (internal id space).
    std::vector<AppliedUpdate> Applied;
    Snapshot Snap;
    bool CompactionTriggered = false;
  };

  explicit ShardedSnapshotStore(Graph Base, Options Opts = {});
  ~ShardedSnapshotStore();

  ShardedSnapshotStore(const ShardedSnapshotStore &) = delete;
  ShardedSnapshotStore &operator=(const ShardedSnapshotStore &) = delete;

  Snapshot current() const;
  std::pair<Snapshot, uint64_t> currentVersioned() const;
  uint64_t version() const;
  Count numNodes() const;
  const VertexMapping &mapping() const { return Map; }

  /// Applies \p Batch and publishes the next version. Callers whose
  /// batches touch disjoint shard sets run concurrently.
  ApplyResult applyUpdates(const std::vector<EdgeUpdate> &Batch);

  /// Grows the universe (all shards in lockstep; tail ids clamp into the
  /// last shard) and publishes. See SnapshotStore::addVertices.
  VertexId addVertices(Count HowMany,
                       const Coordinates *TailCoords = nullptr);

  /// Vertex deletion and id reuse — see the SnapshotStore block comment;
  /// semantics are bit-compatible. Detaching may touch arbitrary neighbor
  /// shards, so removeVertex takes every shard lock (the rare heavyweight
  /// write, like addVertices); the one-shard-lock guarantee is about
  /// *compaction*, which never detaches.
  ApplyResult removeVertex(VertexId External);
  VertexId acquireVertex(const Coordinates *OneCoord = nullptr);
  Count freeVertexCount() const;

  uint64_t compactions() const;

  /// Blocks until no background shard fold is in flight. No-op in
  /// synchronous mode.
  void waitForCompaction();

  /// Degraded-but-serving / sticky failure message, as in SnapshotStore.
  /// The store is degraded while *any* shard's last fold failed; each
  /// shard clears its own flag at its next successful fold.
  bool degraded() const;
  std::string lastError() const;

  int numShards() const { return static_cast<int>(Shards.size()); }
  /// The shard owning vertex \p V (internal id space).
  int shardOf(VertexId V) const;
  /// Vertices per shard (power-of-two span; the last shard also owns the
  /// remainder and any inserted tail).
  Count shardSpan() const { return Count{1} << Shift; }

  /// Per-shard observability: successful incremental folds, the shard's
  /// degraded flag, and (summed across shards) tombstoned patch rows
  /// reclaimed by folds.
  uint64_t shardFolds(int S) const;
  bool shardDegraded(int S) const;
  uint64_t reclaimedTombstones() const;

private:
  /// One writer-side mutation recorded while this shard's background fold
  /// is in flight, replayed onto the folded copy before it replaces the
  /// writer (the sharded analogue of SnapshotStore::ReplayOp — but
  /// element-wise: a batch interleaves out-rows, in-mirrors, and
  /// symmetric reverse rows across shards, so each shard logs exactly the
  /// per-row calls it received).
  struct ShardOp {
    enum class Kind : uint8_t { Out, InMirror, Grow };
    Kind Op = Kind::Out;
    EdgeUpdate U; ///< internal-id row op (Out / InMirror)
    Count GrowTo = 0;
    std::shared_ptr<const Coordinates> TailCoords;
  };

  struct Shard {
    /// Writer lock for this shard's overlay. The fields below are
    /// protected by it, but intentionally carry no GUARDED_BY: shard
    /// locks are acquired as a *runtime-sized* ascending set (see
    /// `DynamicLockSet` in support/ThreadSafety.h), which is beyond what
    /// the static analysis can express — the one audited helper confines
    /// the unanalyzable part, and everything above it stays annotated.
    Mutex Mu;
    DeltaGraph Writer;
    uint64_t DirtySince = 0; ///< diagnostic: last version this shard changed
    /// Incremental-compaction state (all under Mu). The fold thread takes
    /// only *this* shard's Mu — cross-shard lock coupling in a fold path
    /// is a bug (the fault-isolation stress schedule would deadlock).
    bool Compacting = false;    ///< background fold in flight
    bool FoldScheduled = false; ///< trigger absorbed, fold queued/running
    uint64_t Folds = 0;         ///< successful incremental folds
    bool Degraded = false;      ///< last fold failed, not refolded since
    std::vector<ShardOp> Replay;
    std::thread Compactor;
    std::condition_variable FoldCv;
  };

  /// The writer mutexes of \p ShardIds in the same order — \p ShardIds
  /// must already be the sorted-ascending, deduplicated lock order that
  /// `DynamicLockSet` requires.
  std::vector<Mutex *> shardMutexes(const std::vector<int> &ShardIds);

  /// Publishes a new composite from the current shard writers. Caller
  /// holds the Mu of every shard in \p Touched (sorted) via a
  /// DynamicLockSet; bumps their shard versions and the global version.
  ApplyResult publishLocked(const std::vector<int> &Touched,
                            std::vector<AppliedUpdate> Applied,
                            bool CompactionTriggered) EXCLUDES(ReadMu);
  /// Applies one validated update's rows to the owning shard writers
  /// (out, in-mirror, symmetric reverse), collecting Applied transitions
  /// and dirty shard ids, and recording replay ops into any shard whose
  /// background fold is in flight. Caller holds the locks of every shard
  /// the update touches.
  void applyRowLocked(const EdgeUpdate &U, std::vector<AppliedUpdate> &Applied,
                      std::vector<int> &Dirty);
  /// The vertex range shard \p S owns under a universe of \p N vertices:
  /// {first, count}. The last shard runs through N (remainder + inserted
  /// tail); shards past the universe get an empty range.
  std::pair<Count, Count> shardRangeFor(int S, Count N) const;
  /// Synchronous incremental fold of shard \p S: takes that one shard
  /// lock, folds its range into a fresh segment in O(shard), publishes.
  void compactShard(int S) EXCLUDES(ReadMu);
  /// Background variant: pins the shard writer, spawns the fold thread.
  void foldShardAsync(int S) EXCLUDES(ReadMu);
  void foldShardBody(int S, std::shared_ptr<const DeltaGraph> Pinned)
      EXCLUDES(ReadMu);
  /// Fold health bookkeeping; both require the shard's Mu (unannotated —
  /// see Shard).
  void noteShardFoldOk(Shard &Sh) EXCLUDES(ReadMu);
  void noteShardFoldFailure(Shard &Sh, int S, const std::string &Why)
      EXCLUDES(ReadMu);
  /// Deprecated: a tripped trigger now folds only its own shard; this
  /// loops compactShard over all shards (tests / operator-forced fold).
  /// The old all-locks global rebuild lives in compactAllGlobal, kept
  /// solely for Options::LegacyGlobalRebuild.
  void compactAll() EXCLUDES(ReadMu);
  void compactAllGlobal() EXCLUDES(ReadMu);

  /// Guards the composite pointer, version vector, and health flags.
  mutable Mutex ReadMu;
  Snapshot Cur GUARDED_BY(ReadMu);
  std::vector<uint64_t> ShardVersions GUARDED_BY(ReadMu);
  uint64_t Version GUARDED_BY(ReadMu) = 0;
  bool Degraded GUARDED_BY(ReadMu) = false;
  std::string LastError GUARDED_BY(ReadMu);
  /// One-shot surfacing on the next apply.
  std::string PendingError GUARDED_BY(ReadMu);
  /// Shards whose last fold failed (keeps `Degraded` exact without
  /// touching other shards' locks from a fold path).
  int DegradedShards GUARDED_BY(ReadMu) = 0;
  /// Permutation tables immutable after construction; only the freed-id
  /// list mutates, under ReadMu (as in SnapshotStore).
  VertexMapping Map;

  Options Opts;           ///< immutable after construction
  int Shift = 0;          ///< immutable after construction
  bool Symmetric = false; ///< immutable after construction
  bool MirrorsIn = false; ///< directed base carrying incoming adjacency
  std::vector<std::unique_ptr<Shard>> Shards;
  Mutex CompactMu; ///< serializes legacy global compactions
  bool CompactionPending GUARDED_BY(ReadMu) = false;
  uint64_t Compactions GUARDED_BY(ReadMu) = 0;
};

} // namespace service
} // namespace graphit

#endif // GRAPHIT_SERVICE_SNAPSHOTSTORE_H
