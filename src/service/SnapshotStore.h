//===- service/SnapshotStore.h - Versioned live-graph snapshots -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned snapshot store behind live-graph serving: readers pin
/// immutable, refcounted graph versions while writers apply batched edge
/// updates and publish new ones — queries never block on writes and writes
/// never block on queries.
///
///  * A *snapshot* is a `shared_ptr<const DeltaGraph>` (base CSR + patch
///    overlay, graph/DeltaGraph.h). Pinning is one refcount; a query holds
///    its snapshot for its lifetime and is immune to later publishes.
///  * `applyUpdates` mutates the writer's private overlay, coalesces the
///    per-edge transitions (old → new weight across the whole batch, the
///    form incremental repair consumes), and publishes a copy as the next
///    version. Writers are serialized; readers only ever touch published
///    copies.
///  * Once the overlay exceeds `CompactionThreshold × base edges`, it is
///    compacted into a fresh base CSR — synchronously by default, or on a
///    background thread (`Options::BackgroundCompaction`) that rebuilds
///    from a pinned snapshot while the writer keeps accepting batches;
///    the intervening batches are replayed onto the new base before it is
///    published. Old versions stay alive until their last reader unpins.
///
/// The vertex universe is fixed (pooled query states are sized once);
/// updates are edge-level.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SERVICE_SNAPSHOTSTORE_H
#define GRAPHIT_SERVICE_SNAPSHOTSTORE_H

#include "graph/DeltaGraph.h"
#include "graph/Reorder.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace graphit {
namespace service {

/// Versioned publisher of `DeltaGraph` snapshots over one base graph.
class SnapshotStore {
public:
  /// A pinned, immutable graph version. Holding it keeps the version (and
  /// its base CSR) alive regardless of later publishes or compactions.
  using Snapshot = std::shared_ptr<const DeltaGraph>;

  struct Options {
    Options() {} // usable as a `{}` default argument under GCC 12
    /// Compact once overlayEdges() exceeds this fraction of the base
    /// graph's edges ...
    double CompactionThreshold = 0.10;
    /// ... and at least this many edges (tiny graphs aren't worth it).
    Count MinOverlayEdges = 1 << 12;
    /// Compact on a background thread instead of inside applyUpdates.
    bool BackgroundCompaction = false;
    /// Cache-conscious layout: permute the base graph on construction
    /// (graph/Reorder.h) and serve the permuted CSR internally. Callers
    /// keep speaking original ids: update batches are translated on the
    /// way in (`mapping()` translates results on the way out).
    ReorderKind Reorder = ReorderKind::None;
    /// Root hint for the Bfs ordering (see makeOrdering) in *original* id
    /// space — align with the dominant query source when known.
    VertexId ReorderSourceHint = 0;
  };

  struct ApplyResult {
    /// Version published for this batch.
    uint64_t Version = 0;
    /// Directed, batch-coalesced transitions (at most one per directed
    /// edge: the first old weight to the last new weight), ready for
    /// `repairAfterUpdates`. Empty records (no net change) are dropped.
    /// In *internal* (layout) id space when the store reorders — the same
    /// space the snapshots and any pooled distance states live in;
    /// translate through `mapping()` for display.
    std::vector<AppliedUpdate> Applied;
    /// The published snapshot, pre-pinned for the caller.
    Snapshot Snap;
    /// True if this batch tripped the compaction threshold (with
    /// background compaction the rebuilt base publishes later).
    bool CompactionTriggered = false;
  };

  explicit SnapshotStore(Graph Base, Options Opts = {});
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore &) = delete;
  SnapshotStore &operator=(const SnapshotStore &) = delete;

  /// The latest published version. Thread-safe, never blocks on writers
  /// beyond the publish pointer swap.
  Snapshot current() const;

  /// The latest published version together with its version number, read
  /// atomically (a separate current() + version() pair can tear across a
  /// concurrent publish). Consumers that cache auxiliary structures per
  /// version (the QueryEngine's live landmark cache) need the pair.
  std::pair<Snapshot, uint64_t> currentVersioned() const;

  /// Monotonic version counter (0 = the seed base graph).
  uint64_t version() const;

  /// External-to-internal vertex-id mapping (identity unless
  /// `Options::Reorder` was set). Queries and update batches arrive in
  /// external ids; snapshots, applied transitions, and distance states
  /// live in internal ids.
  const VertexMapping &mapping() const { return Map; }

  /// Applies \p Batch and publishes the next version. Serialized across
  /// callers; concurrent readers keep their pinned versions.
  ApplyResult applyUpdates(const std::vector<EdgeUpdate> &Batch);

  /// Compactions performed so far.
  uint64_t compactions() const;

  /// Blocks until no background compaction is in flight (its rebuilt base
  /// is published). No-op in synchronous mode.
  void waitForCompaction();

private:
  void publish(std::unique_lock<std::mutex> &WriterLock);
  void compactorBody(Snapshot Pinned);

  mutable std::mutex ReadMu; ///< guards Current + Version
  Snapshot Current;
  uint64_t Version = 0;
  VertexMapping Map; ///< immutable after construction

  std::mutex WriteMu; ///< serializes writers and compaction hand-off
  std::condition_variable CompactionCv;
  DeltaGraph Writer;
  Options Opts;
  uint64_t Compactions = 0;
  bool CompactionRunning = false;
  std::thread Compactor;
  /// Batches applied while a background compaction runs; replayed onto
  /// the rebuilt base before it replaces the writer overlay.
  std::vector<std::vector<EdgeUpdate>> Replay;
};

} // namespace service
} // namespace graphit

#endif // GRAPHIT_SERVICE_SNAPSHOTSTORE_H
