//===- service/QueryEngine.h - Concurrent batched query serving -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query-serving layer over the ordered engines: a pool of worker
/// threads executes batches of concurrent SSSP/PPSP/A* queries against a
/// shared immutable graph snapshot.
///
/// What makes serving different from the paper's single-run setting:
///
///  * every worker owns a pooled `DistanceState` (epoch-versioned
///    distance/parent arrays), so a query pays O(touched) setup instead of
///    the O(V) infinity-fill a fresh run pays;
///  * an optional `LandmarkCache` (ALT) sharpens the A* bound beyond the
///    coordinate heuristic, shared read-only by all workers;
///  * each query runs through the ordinary ordered engine — eager with
///    fusion, eager, or lazy, selectable per query — one engine run per
///    query, many queries in flight.
///
/// The O(touched) setup applies to the eager engines (distance array and
/// the O(E) frontier buffer are pooled). Lazy-schedule queries reuse the
/// pooled distance array but still construct their bucket queue and
/// traversal buffers per run (O(V)); serve latency-sensitive point
/// queries with an eager schedule.
///
/// The API is submit/collect (tickets) with a `runBatch` convenience;
/// results are bit-identical to sequential per-query runs (shortest-path
/// distances are unique, and the early-exit predicates are exact).
///
/// The engine is a template over the *Store* concept (service/Store.h):
/// `BasicQueryEngine<SnapshotStore>` (aliased `QueryEngine`) serves the
/// single-writer store, `BasicQueryEngine<ShardedSnapshotStore>` (aliased
/// `ShardedQueryEngine`) the sharded multi-writer store — one serving
/// implementation, every feature (pooled states, landmarks, hot-state
/// repair and sharing, admission control, deadlines) available over both.
///
/// The operator's guide to the serving tier — every Options knob, the
/// deadline/settled-prefix contract, admission control, adaptive
/// batching, and hot-state sharing — is docs/serving.md; the options
/// tables there are kept in sync with this header by scripts/check_docs.py
/// (the `docs_check` ctest entry).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SERVICE_QUERYENGINE_H
#define GRAPHIT_SERVICE_QUERYENGINE_H

#include "algorithms/IncrementalSSSP.h"
#include "algorithms/PPSP.h"
#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"
#include "service/HotStateCache.h"
#include "service/LandmarkCache.h"
#include "service/SnapshotStore.h"
#include "service/StatePool.h"
#include "service/Store.h"
#include "support/Cancellation.h"
#include "support/LatencyHistogram.h"
#include "support/ThreadSafety.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace graphit {
namespace service {

/// Which algorithm a query runs.
enum class QueryKind { SSSP, PPSP, AStar };

/// How a query's lifetime ended. Anything but `Ok` is a *typed, non-fatal*
/// outcome — overload and expiry are expected operating conditions for a
/// serving process, never reasons to crash or to block a caller forever.
enum class QueryStatus : uint8_t {
  Ok,               ///< ran to completion (possibly budget-bounded)
  DeadlineExceeded, ///< interrupted at a round boundary; partial results
  Shed,             ///< rejected by admission control without running
  Failed,           ///< malformed request (out-of-range source/target)
};

/// Importance classes tracked for per-class SLOs, counters, and the
/// degradation EWMA. Queries map to a class through importanceClass():
/// class 0 is the *most* important tier (the ops "tier-0" convention),
/// class kNumImportanceClasses-1 the least. `Query::Importance` keeps its
/// historical meaning (higher = more important, sheds last).
inline constexpr int kNumImportanceClasses = 4;

/// Importance → class index. Importance saturates at
/// kNumImportanceClasses-1, so every importance above that shares class 0
/// and negatives clamp into the least-important class.
inline int importanceClass(int Importance) {
  if (Importance < 0)
    Importance = 0;
  if (Importance >= kNumImportanceClasses)
    Importance = kNumImportanceClasses - 1;
  return kNumImportanceClasses - 1 - Importance;
}

/// One feedback-controller tick, exported through controllerTrace() so
/// benches and tests can print or assert on the trajectory: the windowed
/// per-class p99s the tick observed, the knob values *after* its action,
/// and the action itself.
struct ControllerEvent {
  uint64_t Tick = 0;            ///< 1-based tick ordinal
  int Action = 0;               ///< -1 tightened, 0 held, +1 relaxed
  int64_t BatchDelayMicros = 0; ///< knob values after the action
  uint64_t HighWater = 0;
  uint64_t SoftWater = 0;
  /// Windowed p99 per class since the previous tick (0 = no samples).
  std::array<uint64_t, kNumImportanceClasses> WindowP99Micros{};
  /// Windowed Ok completions per class since the previous tick.
  std::array<uint64_t, kNumImportanceClasses> WindowCount{};
};

/// One point(-to-point) query against the engine's graph snapshot.
struct Query {
  QueryKind Kind = QueryKind::PPSP;
  VertexId Source = 0;
  /// Required for PPSP/A*; ignored for SSSP.
  VertexId Target = kInvalidVertex;
  /// Per-query schedule override; the engine default applies when absent.
  std::optional<Schedule> Sched;
  /// SSSP only: return the (vertex, distance) pairs of every reached
  /// vertex, sorted by vertex id (O(touched log touched) extra work).
  bool CollectReached = false;
  /// PPSP/A* with parent tracking enabled: return the shortest path.
  bool CollectPath = false;
  /// Wall-clock deadline in microseconds, measured from submit() (so time
  /// spent queued counts). 0 = none. An expired query resolves with
  /// `QueryStatus::DeadlineExceeded` and only *settled* partial results —
  /// the engines check the clock once per bucket round, so enforcement
  /// granularity is one round, not one edge relaxation.
  int64_t DeadlineMicros = 0;
  /// PPSP/A* only: stop once every distance below this bound is settled
  /// (the target, if closer, is still reported exactly). A budget stop is
  /// a normal `Ok` completion with `SettledBound` set.
  Priority MaxDistance = kInfiniteDistance;
  /// Admission priority under overload: past the high-water mark the
  /// engine sheds the lowest-importance work first (ties shed the
  /// incoming query). Irrelevant until `Options::AdmissionHighWater`.
  int Importance = 0;
};

/// Result of one query.
struct QueryResult {
  /// How the query ended; see QueryStatus. `DeadlineExceeded` still
  /// carries valid partial results (everything below `SettledBound`).
  QueryStatus Status = QueryStatus::Ok;
  /// True when the query was rejected without running (out-of-range
  /// source/target); every other field is then default-valued. A malformed
  /// request must not take down a serving process. (Mirrors
  /// `Status == QueryStatus::Failed`; kept for existing callers.)
  bool Failed = false;
  /// True when admission control degraded this query (imposed a deadline
  /// derived from recent service times) because the engine was past the
  /// soft-water mark. The result may still be complete (`Ok`).
  bool Degraded = false;
  /// When the run was interrupted (deadline) or budget-bounded
  /// (MaxDistance): every true distance strictly below this bound is
  /// settled and exact; Reached/Touched/Dist are filtered to it.
  /// kInfiniteDistance for an ordinary complete run.
  Priority SettledBound = kInfiniteDistance;
  /// PPSP/A*: the target distance (kInfiniteDistance if unreachable).
  /// SSSP: kInfiniteDistance (per-vertex distances via Reached).
  Priority Dist = kInfiniteDistance;
  OrderedStats Stats;
  /// Vertices the query improved (== vertices at finite distance).
  Count Touched = 0;
  /// See Query::CollectReached.
  std::vector<std::pair<VertexId, Priority>> Reached;
  /// See Query::CollectPath: source → target vertex chain. Empty if the
  /// target is unreachable, the path was not requested, or no hop-by-hop
  /// verifiable path could be reconstructed (possible on directed graphs
  /// without incoming adjacency, where a concurrency-stale parent pointer
  /// cannot be repaired by a predecessor scan).
  std::vector<VertexId> Path;
};

/// Thread-pool query engine over one immutable graph snapshot — or, in
/// *live mode*, over any model of the Store concept (service/Store.h;
/// `SnapshotStore` and `ShardedSnapshotStore` both qualify): each query
/// pins the latest published version for its lifetime, and
/// `applyUpdates()` publishes the next version without blocking in-flight
/// queries (they finish on the version they pinned). The graph / store
/// (and any landmark cache) must outlive the engine.
template <class StoreT>
class BasicQueryEngine {
  static_assert(is_store_v<StoreT>,
                "BasicQueryEngine requires a type modeling the Store "
                "concept (see service/Store.h)");

public:
  struct Options {
    Options() {} // usable as a `{}` default argument under GCC 12
    /// Worker threads; 0 = hardware concurrency.
    int NumWorkers = 0;
    /// Schedule for queries that don't carry their own.
    Schedule DefaultSchedule;
    /// Landmarks to precompute for the ALT A* bound; 0 disables the cache
    /// (A* then uses the coordinate heuristic).
    int NumLandmarks = 0;
    /// Maintain parent arrays so queries can return paths.
    bool TrackParents = false;
    /// OpenMP threads *inside* each query's engine run. Serving many
    /// concurrent queries usually wants 1 (parallelism across queries,
    /// not within them); large single queries may want more.
    int OmpThreadsPerQuery = 1;
    /// Fixed-graph mode only: permute the served graph into this
    /// cache-conscious layout at construction (graph/Reorder.h). Queries,
    /// paths, and reached lists keep speaking the caller's original ids —
    /// the engine translates at its boundary. Live mode inherits the
    /// layout (and mapping) of the SnapshotStore instead.
    ReorderKind Reorder = ReorderKind::None;
    /// Root hint for the Bfs ordering, in original ids (see makeOrdering).
    VertexId ReorderSourceHint = 0;
    /// Live mode: keep up to this many *hot source states* — complete
    /// SSSP solutions keyed by (source, version) in an LRU — and, on
    /// `applyUpdates`, repair them via incremental SSSP (O(affected))
    /// instead of discarding. Queries from a hot source (the serving
    /// common case: the same depots asked again every version) are
    /// answered straight from the repaired state; an SSSP query from a
    /// cold source warms it. 0 disables the cache. Ignored when
    /// `SharedHotCache` is set.
    ///
    /// The repair protocol tracks versions one publish at a time, so a
    /// *background* compaction (whose rebuilt base publishes its own
    /// version outside applyUpdates) invalidates the cache until the
    /// sources are re-warmed — pair the hot cache with synchronous
    /// compaction (the store default) for uninterrupted repair.
    int HotSourceCapacity = 0;
    /// Live mode: serve hot states out of this *shared* cache instead of
    /// a private one, so several engines over the same store share warm
    /// sources — a PPSP warm miss on one engine hits a state another
    /// engine computed. All sharing engines must route every update batch
    /// through engine applyUpdates against the same store (the cache
    /// tracks store versions one publish at a time, exactly like the
    /// private cache). Overrides `HotSourceCapacity` when set.
    std::shared_ptr<HotStateCache> SharedHotCache;
    /// Adaptive batch formation (0 disables, the default): when the
    /// pending queue stays non-empty, each worker's batch-formation
    /// window doubles (from a ~50µs floor) up to this many microseconds,
    /// letting it drain several queued queries and publish their results
    /// under one lock acquisition; the moment a worker sees the queue
    /// drained the window collapses back to zero, so an idle engine adds
    /// no latency. Bounds the extra p99 a queued query can pay to one
    /// window. See batchWindowMicros()/maxBatchWindowMicros().
    int64_t MaxBatchDelayMicros = 0;
    /// Largest number of queries one worker runs per formed batch.
    int MaxBatchSize = 16;
    /// Admission control: when the pending queue holds at least this many
    /// queries, submitting one more sheds the lowest-importance pending
    /// query (or the incoming one, on ties) as `QueryStatus::Shed` —
    /// typed, immediate, never silent. 0 disables shedding (unbounded
    /// queue, the historical behavior).
    size_t AdmissionHighWater = 0;
    /// Graceful degradation: when the pending queue holds at least this
    /// many queries, PPSP/A* queries *without their own deadline* get one
    /// imposed — `DegradeFactor` × the EWMA of recent same-kind service
    /// times, floored at `DegradeFloorMicros` — and their results are
    /// marked `Degraded`. Bounded work under pressure beats shedding;
    /// SSSP is exempt (its full solution is what warms the hot cache).
    /// 0 disables degradation.
    size_t AdmissionSoftWater = 0;
    /// Fraction of the recent same-kind service time a degraded query is
    /// allowed (see AdmissionSoftWater).
    double DegradeFactor = 0.5;
    /// Lower bound for an imposed degraded deadline, so cold EWMAs never
    /// degrade queries into zero-work rejections.
    int64_t DegradeFloorMicros = 500;
    /// Per-class p99 latency targets in microseconds, indexed by
    /// importance class (importanceClass(); class 0 = most important).
    /// 0 = no target for that class. A target does two things: soft-water
    /// degradation clamps the imposed deadline to the class target (never
    /// below DegradeFloorMicros), and the feedback controller treats a
    /// targeted class's windowed p99 above its target as an SLO miss.
    std::array<int64_t, kNumImportanceClasses> ClassSlo = {};
    /// Feedback-controller cadence in microseconds; 0 disables the
    /// controller (knobs stay at their configured values). Worker-driven:
    /// ticks piggyback on result publication — no extra thread — so a
    /// fully idle engine ticks only when traffic resumes. Each tick reads
    /// per-class windowed p99s (LatencyHistogram snapshot deltas) and
    /// moves MaxBatchDelayMicros and the admission watermarks AIMD-style:
    /// additive tighten while any targeted class misses its SLO,
    /// multiplicative relax toward the configured values when every
    /// targeted class has slack.
    int64_t ControllerIntervalMicros = 0;
    /// Windowed observations a class needs before its p99 counts as
    /// evidence (for a miss or for slack); thinner windows hold.
    uint64_t ControllerMinSamples = 16;
    /// A targeted class has *slack* when its windowed p99 is below this
    /// fraction of its SLO. Between slack and the SLO is the dead band —
    /// no action — which is what makes the controller settle instead of
    /// oscillating around the target.
    double ControllerSlackFraction = 0.7;
    /// Consecutive all-slack ticks required before each relax step.
    int ControllerHysteresisTicks = 2;
    /// Floor the controller may tighten MaxBatchDelayMicros down to; the
    /// configured value is the matching ceiling. A knob configured 0
    /// (feature disabled) is never controller-enabled.
    int64_t ControllerMinBatchDelayMicros = 0;
    /// Floor for AdmissionHighWater under controller tightening.
    size_t ControllerMinHighWater = 16;
    /// Floor for AdmissionSoftWater under controller tightening.
    size_t ControllerMinSoftWater = 8;
  };

  BasicQueryEngine(const Graph &G, Options Opts = {});

  /// Live mode: queries run against `Store.current()`, pinned per query.
  /// With `Options::NumLandmarks > 0` the engine builds an ALT cache from
  /// a compacted copy of the construction-time version and *keeps serving
  /// it through increase-only batches* — weight increases and deletions
  /// only grow true distances, so bounds computed on an older version stay
  /// admissible (and consistent) on newer ones. The first batch containing
  /// an insert or a weight decrease retires the cache (A* falls back to
  /// the coordinate heuristic, or plain PPSP without coordinates), and
  /// every compaction rebuilds it from the freshly compacted base. The
  /// policy tracks batches applied through `applyUpdates` on this engine —
  /// route updates through the engine, not the store, when landmarks are
  /// enabled.
  BasicQueryEngine(StoreT &Store, Options Opts = {});

  ~BasicQueryEngine();

  BasicQueryEngine(const BasicQueryEngine &) = delete;
  BasicQueryEngine &operator=(const BasicQueryEngine &) = delete;

  /// Enqueues \p Q; returns a ticket for collect(). Thread-safe. A query
  /// with an out-of-range source/target is not enqueued: its ticket
  /// resolves immediately to a result with `Failed == true`.
  uint64_t submit(Query Q);

  /// Blocks until the query behind \p Ticket finishes and returns its
  /// result. Each ticket may be collected exactly once; collecting an
  /// unknown or already-collected ticket is a fatal error (it would
  /// otherwise block forever). Thread-safe.
  QueryResult collect(uint64_t Ticket);

  /// Non-fatal sibling of collect(): returns std::nullopt for an unknown
  /// or already-collected ticket instead of aborting. A valid ticket
  /// still blocks until its query finishes — under deadlines and
  /// admission control every submitted query resolves (Ok,
  /// DeadlineExceeded, Shed, or Failed), so the wait is bounded.
  /// Thread-safe.
  std::optional<QueryResult> tryCollect(uint64_t Ticket);

  /// Submits the whole batch and collects the results in input order.
  std::vector<QueryResult> runBatch(const std::vector<Query> &Batch);

  /// Live mode only: applies \p Batch through the snapshot store and
  /// publishes the next version. In-flight queries keep the versions they
  /// pinned; queries submitted after this call see the new one. With a
  /// hot-source cache (`Options::HotSourceCapacity`), every cached state
  /// is repaired to the new version before this returns — repeat-source
  /// queries pay O(affected) per version instead of a fresh run.
  typename StoreT::ApplyResult
  applyUpdates(const std::vector<EdgeUpdate> &Batch);

  /// Live mode only: grows the vertex universe through the store (see
  /// SnapshotStore::addVertices) and threads the growth through the
  /// engine — pooled states and hot states resize, submit() accepts the
  /// new ids, and the landmark cache (sized to the old universe) is
  /// retired until the next compaction rebuilds it. Route insertions
  /// through the engine, not the store, exactly like update batches.
  VertexId addVertices(Count HowMany,
                       const Coordinates *TailCoords = nullptr);

  /// Live mode only: detaches \p External (deletes every incident edge
  /// through the store — see Store::removeVertex) and recycles its id.
  /// Deletions only grow true distances, so the landmark cache stays
  /// admissible; hot states are repaired from the batch's applied
  /// transitions exactly like applyUpdates. The vertex stays in-universe
  /// (isolated), so in-flight and future queries naming it stay valid.
  typename StoreT::ApplyResult removeVertex(VertexId External);

  /// Live mode only: pops a freed id (zero-growth reuse) or grows the
  /// universe by one through addVertices — pooled states, hot states and
  /// submit() validation all track the growth. See Store::acquireVertex
  /// for the reused-coordinate caveat.
  VertexId acquireVertex(const Coordinates *OneCoord = nullptr);

  /// Freed ids awaiting reuse in the underlying store (live mode; 0 in
  /// fixed-graph mode).
  Count freeVertexCount() const;

  /// True when serving a live store rather than a fixed graph.
  bool isLive() const { return Store != nullptr; }

  /// Hot-source cache counters (live mode; all 0 when disabled).
  /// hotHits() counts *this engine's* cache hits; hotRepairs() and
  /// hotStatesCached() report the backing cache, which is shared-wide
  /// when `Options::SharedHotCache` is set.
  uint64_t hotHits() const;
  uint64_t hotRepairs() const;
  size_t hotStatesCached() const;

  /// The backing hot-state cache (null when disabled) — hand it to other
  /// engines' `Options::SharedHotCache` to share warm sources.
  std::shared_ptr<HotStateCache> hotCache() const { return HotCache; }

  /// Current adaptive batch-formation window (µs); 0 whenever the queue
  /// was last seen drained (see Options::MaxBatchDelayMicros).
  int64_t batchWindowMicros() const;
  /// High-water mark of the window over the engine's lifetime — shows
  /// whether batching ever engaged, without racing its collapse.
  int64_t maxBatchWindowMicros() const;

  /// The ALT cache (null when Options::NumLandmarks == 0). In live mode
  /// the returned snapshot is the *current* cache — it stays valid after a
  /// rebuild retires it from serving.
  std::shared_ptr<const LandmarkCache> landmarks() const;

  /// Live mode: true while the landmark cache is admissible for new
  /// queries (no insert/decrease since its build). Fixed-graph caches are
  /// always usable.
  bool landmarksUsable() const;

  /// The external-to-internal id mapping in effect (identity unless the
  /// engine or its store reorders).
  const VertexMapping &mapping() const { return *Map; }

  /// Aggregate engine counters over all completed queries.
  OrderedStats aggregateStats() const;
  /// Queries completed so far.
  uint64_t queriesServed() const;
  /// Queries rejected by admission control (Status == Shed).
  uint64_t queriesShed() const;
  /// Queries that resolved DeadlineExceeded (expired queued or mid-run).
  uint64_t deadlinesExceeded() const;
  /// Queries admission control degraded (imposed deadline); counted
  /// whether or not the imposed deadline ended up firing.
  uint64_t queriesDegraded() const;

  /// Per-importance-class views of the counters above (Class =
  /// importanceClass(Importance); out-of-range clamps). The class-less
  /// getters are the sums of these.
  uint64_t queriesServedInClass(int Class) const;
  uint64_t queriesShedInClass(int Class) const;
  uint64_t deadlinesExceededInClass(int Class) const;
  uint64_t queriesDegradedInClass(int Class) const;

  /// The degradation EWMA for one (kind, class) cell, in microseconds
  /// (0 until the first un-degraded Ok completion of that cell). Split by
  /// class so a flood of slow traffic in one class cannot poison the
  /// imposed deadlines of another — the class-isolation regression test
  /// reads this directly.
  double serviceEwmaMicros(QueryKind Kind, int Class) const;

  /// Point-in-time copy of one class's end-to-end latency histogram
  /// (Ok completions, submit → publish, microseconds). What the
  /// controller windows; exported for benches and tests.
  LatencyHistogram::Snapshot classLatencySnapshot(int Class) const;

  /// Feedback-controller observability (all 0 / empty / the configured
  /// knob values while the controller is disabled).
  uint64_t controllerTicks() const;
  uint64_t controllerTightens() const;
  uint64_t controllerRelaxes() const;
  /// The knob values currently in force (equal to the configured
  /// Options while the controller is off or has never acted).
  int64_t currentBatchDelayMicros() const;
  size_t currentHighWater() const;
  size_t currentSoftWater() const;
  /// The most recent controller ticks, oldest first (bounded history —
  /// see kControllerTraceCap in QueryEngine.cpp).
  std::vector<ControllerEvent> controllerTrace() const;

  /// Pending (not yet running) queries right now.
  size_t queueDepth() const;
  /// Worker threads in the pool.
  int numWorkers() const { return static_cast<int>(Workers.size()); }

private:
  struct Task {
    uint64_t Ticket;
    Query Q;
    /// submit() time; deadlines are measured from here so queueing delay
    /// counts against the budget.
    std::chrono::steady_clock::time_point Enqueued;
    /// Effective deadline (the query's own, or one imposed by soft-water
    /// degradation); 0 = none.
    int64_t DeadlineMicros = 0;
    bool Degraded = false;
    /// importanceClass(Q.Importance), computed once at submit.
    int Class = 0;
  };

  void startWorkers();
  void workerLoop();
  /// Worker-driven feedback controller: runs at most one tick per
  /// Options::ControllerIntervalMicros, called from result publication.
  /// No-op while the controller is disabled.
  void maybeControllerTick();
  QueryResult runOne(const Query &Q, DistanceState &State,
                     const CancelToken *Cancel) const;
  template <typename GraphT>
  QueryResult runOneOn(const GraphT &G, const Query &Q, DistanceState &State,
                       uint64_t SnapVersion,
                       const CancelToken *Cancel) const;

  /// Serves \p QI from a hot source state if one exists at exactly the
  /// pinned version \p Ver (distances are unique, so a repaired state
  /// answers SSSP/PPSP/A* queries bit-identically to a fresh run; the
  /// `Touched` counter reports the full solution's reach, which for
  /// PPSP/A* differs from an early-exited fresh run's engine counter).
  /// The copy-out runs lock-free on an immutable shared_ptr snapshot —
  /// repair never mutates a state a reader still references (it clones).
  /// \returns false on miss; results are in internal id space.
  bool serveFromHot(const Query &QI, uint64_t Ver, QueryResult &R) const;

  /// The landmark cache to use for a query pinned at \p SnapVersion, or
  /// null when none is admissible for that version.
  std::shared_ptr<const LandmarkCache>
  landmarksFor(uint64_t SnapVersion) const;

  /// Live mode: refreshes landmark bookkeeping for one applied batch
  /// (invalidate on insert/decrease, rebuild after compaction). Takes
  /// LandmarkMu only for the final flag and pointer swaps — the expensive
  /// cache rebuild runs with no lock that a query ever touches.
  void noteAppliedBatch(const typename StoreT::ApplyResult &R,
                        bool WasAdmissible) REQUIRES(LandmarkWriterMu);

  const Graph *StaticG = nullptr;   ///< fixed-graph mode
  StoreT *Store = nullptr;          ///< live mode
  /// Vertex universe for request validation; grows on addVertices (fixed
  /// graphs never grow). Atomic: submit() races engine-routed insertion.
  std::atomic<Count> NumNodes;
  bool HasCoordinates;              ///< A* feasibility (base coordinates)
  Options Opts;
  std::unique_ptr<Graph> OwnedG;    ///< fixed-graph mode, reordered layout
  VertexMapping OwnMap;             ///< fixed-graph mode mapping storage
  const VertexMapping *Map;         ///< mapping in effect (never null)
  StatePool Pool;

  /// Landmark state. The cheap flag/pointer fields are guarded by
  /// LandmarkMu (queries take it for a few loads per A* run, in fixed and
  /// live mode alike — uncontended in fixed mode, where nothing mutates
  /// after construction); LandmarkWriterMu serializes applyUpdates end to
  /// end so admissibility tracking observes batches in order and cache
  /// rebuilds (K full SSSPs) never run under a lock a query waits on. The
  /// writer lock nests strictly outside the flag lock — the
  /// ACQUIRED_BEFORE edge makes the analysis, not a comment, own that
  /// ordering. (The hot cache's internal locks are leaves reached from
  /// under LandmarkWriterMu via applyUpdates → repairAll.)
  mutable Mutex LandmarkMu;
  Mutex LandmarkWriterMu ACQUIRED_BEFORE(LandmarkMu);
  std::shared_ptr<const LandmarkCache> Landmarks GUARDED_BY(LandmarkMu);
  bool LandmarksAdmissible GUARDED_BY(LandmarkMu) = false;
  /// Version the cache was built on.
  uint64_t LandmarkVersion GUARDED_BY(LandmarkMu) = 0;
  uint64_t SeenCompactions GUARDED_BY(LandmarkWriterMu) = 0;

  /// Hot source states: a striped (source, version)-keyed cache of warm
  /// SSSP solutions, private to this engine unless the caller passed
  /// `Options::SharedHotCache`. All synchronization lives inside the
  /// cache (brief stripe locks; copy-outs are lock-free on shared_ptr
  /// snapshots). Null when the hot cache is disabled or in fixed-graph
  /// mode.
  std::shared_ptr<HotStateCache> HotCache;
  /// This engine's own hit count (the cache's hits() aggregates every
  /// sharing engine). Atomic: workers serve hits from const runOne.
  mutable std::atomic<uint64_t> HotHits_{0};

  /// The queue mutex. Never nested with the landmark or hot-state locks:
  /// workers drop it before running a query and re-take it to publish the
  /// result.
  mutable Mutex Mu;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  std::deque<Task> Pending GUARDED_BY(Mu);
  std::unordered_map<uint64_t, QueryResult> Finished GUARDED_BY(Mu);
  /// Issued, not yet collected.
  std::unordered_set<uint64_t> Outstanding GUARDED_BY(Mu);
  uint64_t NextTicket GUARDED_BY(Mu) = 1;
  uint64_t Served GUARDED_BY(Mu) = 0;
  OrderedStats Aggregate GUARDED_BY(Mu);
  bool ShuttingDown GUARDED_BY(Mu) = false;

  /// Adaptive batch formation (Options::MaxBatchDelayMicros): the
  /// current per-engine formation window in microseconds. Doubles (from
  /// a ~50µs floor) whenever a worker finishes forming a batch and the
  /// queue is still non-empty; collapses to 0 the moment a worker drains
  /// it, so batching only ever delays queries that would have queued
  /// anyway. BatchWindowMax_ is the lifetime high-water mark (tests
  /// observe it without racing the collapse).
  int64_t BatchWindow_ GUARDED_BY(Mu) = 0;
  int64_t BatchWindowMax_ GUARDED_BY(Mu) = 0;

  /// Overload-behavior counters, split by importance class (the
  /// aggregate getters sum them), and the (kind × class) EWMA of service
  /// times (microseconds; 0 until the first completed query of that
  /// cell). The EWMA only samples un-degraded Ok completions so imposed
  /// deadlines can't feed back into ever-shrinking budgets — and it is
  /// split by class so one slow class can't poison another's imposed
  /// deadlines.
  uint64_t Sheds_[kNumImportanceClasses] GUARDED_BY(Mu) = {};
  uint64_t DeadlineExceeded_[kNumImportanceClasses] GUARDED_BY(Mu) = {};
  uint64_t Degraded_[kNumImportanceClasses] GUARDED_BY(Mu) = {};
  uint64_t ServedClass_[kNumImportanceClasses] GUARDED_BY(Mu) = {};
  /// Indexed [QueryKind][importance class].
  double EwmaMicros[3][kNumImportanceClasses] GUARDED_BY(Mu) = {};

  /// Per-class end-to-end latency (Ok completions, submit → publish).
  /// Lock-free histograms: workers record outside Mu; the controller and
  /// the public snapshot getter read via relaxed snapshots.
  LatencyHistogram ClassLatency_[kNumImportanceClasses];

  /// Feedback-controller state (Options::ControllerIntervalMicros). The
  /// Cur* knobs are the values actually enforced by submit() and the
  /// batch-formation loop; they start at the configured Options values
  /// and stay there while the controller is off.
  int64_t CurBatchDelay_ GUARDED_BY(Mu) = 0;
  size_t CurHighWater_ GUARDED_BY(Mu) = 0;
  size_t CurSoftWater_ GUARDED_BY(Mu) = 0;
  std::chrono::steady_clock::time_point CtlNextTick_ GUARDED_BY(Mu);
  /// Previous tick's per-class snapshots; windowSince() against these
  /// yields the per-interval view without resetting live histograms.
  LatencyHistogram::Snapshot CtlPrev_[kNumImportanceClasses]
      GUARDED_BY(Mu);
  int CtlSlackStreak_ GUARDED_BY(Mu) = 0;
  uint64_t CtlTicks_ GUARDED_BY(Mu) = 0;
  uint64_t CtlTightens_ GUARDED_BY(Mu) = 0;
  uint64_t CtlRelaxes_ GUARDED_BY(Mu) = 0;
  std::deque<ControllerEvent> CtlTrace_ GUARDED_BY(Mu);

  std::vector<std::thread> Workers;
};

/// The two stores every serving feature is built and tested against. The
/// engine template is explicitly instantiated for exactly these in
/// QueryEngine.cpp; a custom store needs its own explicit instantiation
/// (or the definitions pulled into a header).
extern template class BasicQueryEngine<SnapshotStore>;
extern template class BasicQueryEngine<ShardedSnapshotStore>;

/// The historical name: the engine over the single-writer store.
using QueryEngine = BasicQueryEngine<SnapshotStore>;
/// The engine over the sharded multi-writer store.
using ShardedQueryEngine = BasicQueryEngine<ShardedSnapshotStore>;

} // namespace service
} // namespace graphit

#endif // GRAPHIT_SERVICE_QUERYENGINE_H
