//===- service/LandmarkCache.cpp - ALT landmark heuristic -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/LandmarkCache.h"

#include "algorithms/SSSP.h"
#include "support/Abort.h"
#include "support/Parallel.h"

#include <algorithm>

using namespace graphit;
using namespace graphit::service;

LandmarkCache::LandmarkCache(std::shared_ptr<const Graph> GPtr,
                             int NumLandmarks, const Schedule &S,
                             VertexId ProbeStart)
    : LandmarkCache(*GPtr, NumLandmarks, S, ProbeStart) {
  Owned = std::move(GPtr);
}

LandmarkCache::LandmarkCache(const Graph &Gr, int NumLandmarks,
                             const Schedule &S, VertexId ProbeStart)
    : G(Gr), UseCoordinates(Gr.hasCoordinates()) {
  Count N = G.numNodes();
  if (N == 0 || NumLandmarks <= 0)
    return;
  // Cap: more landmarks than this stops paying for itself long before
  // (each adds a full SSSP of preprocessing and two loads per estimate),
  // and estimate()'s stack snapshot is sized for it.
  NumLandmarks = static_cast<int>(
      std::min<Count>(std::min(NumLandmarks, 64), N));

  // Farthest-point sampling. A probe SSSP finds a peripheral first
  // landmark; afterwards each landmark's real distance vector doubles as
  // the sampling metric (min over chosen landmarks, maximized).
  std::vector<Priority> MinDist(static_cast<size_t>(N),
                                kInfiniteDistance);
  // Distance 0 is excluded so an already-chosen landmark (MinDist == 0)
  // can never be picked again: on a disconnected graph the probe's
  // component runs out of candidates before the budget does, and without
  // this the sampler would re-select the same vertex and burn a full
  // redundant SSSP per duplicate. Exhaustion returns kInvalidVertex and
  // stops the loop (components unreachable from the probe get no
  // landmarks — their pairs simply fall back to the coordinate bound).
  auto FarthestFinite = [&](const std::vector<Priority> &D) {
    VertexId Best = kInvalidVertex;
    Priority BestDist = 0;
    for (Count V = 0; V < N; ++V)
      if (D[V] < kInfiniteDistance && D[V] > BestDist) {
        BestDist = D[V];
        Best = static_cast<VertexId>(V);
      }
    return Best;
  };

  SSSPResult Probe = deltaSteppingSSSP(G, ProbeStart, S);
  VertexId Next = FarthestFinite(Probe.Dist);
  if (Next == kInvalidVertex)
    Next = ProbeStart; // isolated start: fall back to the probe vertex

  for (int L = 0; L < NumLandmarks; ++L) {
    SSSPResult R = deltaSteppingSSSP(G, Next, S);
    Landmarks.push_back(Next);
    DistFrom.push_back(std::move(R.Dist));
    const std::vector<Priority> &D = DistFrom.back();
    parallelFor(
        0, N, [&](Count V) { MinDist[V] = std::min(MinDist[V], D[V]); },
        Parallelization::StaticVertexParallel);
    Next = FarthestFinite(MinDist);
    if (Next == kInvalidVertex)
      break; // graph smaller than the landmark budget
  }
}

Priority LandmarkCache::estimateWith(const Priority *TargetDist, VertexId V,
                                     VertexId Target) const {
  Priority Best =
      UseCoordinates ? aStarHeuristic(G, V, Target) : Priority{0};
  for (size_t L = 0; L < DistFrom.size(); ++L) {
    Priority DT = TargetDist[L];
    Priority DV = DistFrom[L][V];
    if (DT >= kInfiniteDistance) {
      // The landmark reaches V but not Target: any V → Target path would
      // extend a landmark → Target path, so none exists.
      if (DV < kInfiniteDistance)
        return kUnreachableBound;
      continue; // landmark reaches neither; no information
    }
    if (DV >= kInfiniteDistance)
      continue; // no bound from this landmark
    Best = std::max(Best, DT - DV);
  }
  return Best;
}

Priority LandmarkCache::estimate(VertexId V, VertexId Target) const {
  Priority TargetDist[64];
  size_t K = std::min<size_t>(DistFrom.size(), 64);
  for (size_t L = 0; L < K; ++L)
    TargetDist[L] = DistFrom[L][Target];
  return estimateWith(TargetDist, V, Target);
}

LandmarkCache::TargetBound::TargetBound(const LandmarkCache &C,
                                        VertexId Target)
    : Cache(C) {
  TargetDist.reserve(C.DistFrom.size());
  for (const std::vector<Priority> &D : C.DistFrom)
    TargetDist.push_back(D[Target]);
}

Priority LandmarkCache::TargetBound::estimate(VertexId V,
                                              VertexId Target) const {
  return Cache.estimateWith(TargetDist.data(), V, Target);
}
