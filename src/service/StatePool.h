//===- service/StatePool.h - Reusable query-state pool ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe pool of `DistanceState` objects (algorithms/QueryState.h).
/// Each state is a few arrays of length |V|; allocating and
/// infinity-filling them per query is exactly the O(V) setup cost the
/// pooled algorithm variants eliminate, so states are built once and
/// leased out. The QueryEngine leases one state per worker thread for the
/// worker's lifetime; standalone callers (examples, tests) can lease
/// ad hoc.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SERVICE_STATEPOOL_H
#define GRAPHIT_SERVICE_STATEPOOL_H

#include "algorithms/QueryState.h"
#include "support/FailPoint.h"
#include "support/ThreadSafety.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <vector>

namespace graphit {
namespace service {

/// Mutex-guarded free list of `DistanceState`s for one graph size.
/// `acquire` pops a pooled state (or builds one on first use); the
/// returned Lease gives it back on destruction. States come back dirty —
/// the next `beginQuery` on them is what pays the O(touched) reset.
class StatePool {
public:
  StatePool(Count N, bool WithParents = false)
      : NumNodes(N), TrackParents(WithParents) {}

  StatePool(const StatePool &) = delete;
  StatePool &operator=(const StatePool &) = delete;

  /// RAII lease: owns a DistanceState until destruction, then returns it
  /// to the pool. Movable, not copyable.
  class Lease {
  public:
    Lease() = default;
    Lease(StatePool *P, std::unique_ptr<DistanceState> S)
        : Owner(P), State(std::move(S)) {}
    Lease(Lease &&O) noexcept = default;
    Lease &operator=(Lease &&O) noexcept {
      release();
      Owner = O.Owner;
      State = std::move(O.State);
      O.Owner = nullptr;
      return *this;
    }
    ~Lease() { release(); }

    explicit operator bool() const { return State != nullptr; }
    DistanceState &get() { return *State; }
    DistanceState *operator->() { return State.get(); }

  private:
    void release() {
      if (Owner && State)
        Owner->giveBack(std::move(State));
      Owner = nullptr;
    }
    StatePool *Owner = nullptr;
    std::unique_ptr<DistanceState> State;
  };

  /// Leases a state, building one if the free list is empty. Pooled
  /// states may predate a `grow()` — they are resized on the way out, so
  /// every lease is sized for the current universe.
  Lease acquire() {
    Count WantNodes;
    std::unique_ptr<DistanceState> S;
    {
      MutexLock Guard(Mu);
      WantNodes = NumNodes;
      if (!Free.empty()) {
        S = std::move(Free.back());
        Free.pop_back();
      } else {
        ++Created;
      }
    }
    // Construction and post-grow resizing happen outside the lock: the
    // arrays are |V|-sized.
    if (S) {
      S->resize(WantNodes);
      return Lease(this, std::move(S));
    }
    return Lease(this,
                 std::make_unique<DistanceState>(WantNodes, TrackParents));
  }

  /// Live-graph vertex insertion grew the universe: states leased from
  /// now on cover \p NewNumNodes vertices. Already-leased states are the
  /// holder's responsibility (`DistanceState::resize` is cheap and
  /// grow-only). Never shrinks.
  void grow(Count NewNumNodes) {
    GRAPHIT_FAIL_POINT("statepool.grow");
    MutexLock Guard(Mu);
    NumNodes = std::max(NumNodes, NewNumNodes);
  }

  /// States currently sitting in the free list.
  size_t idle() const {
    MutexLock Guard(Mu);
    return Free.size();
  }

  /// Total states ever built (allocation high-water mark).
  size_t created() const {
    MutexLock Guard(Mu);
    return Created;
  }

private:
  friend class Lease;
  void giveBack(std::unique_ptr<DistanceState> S) {
    MutexLock Guard(Mu);
    Free.push_back(std::move(S));
  }

  mutable Mutex Mu;
  std::vector<std::unique_ptr<DistanceState>> Free GUARDED_BY(Mu);
  size_t Created GUARDED_BY(Mu) = 0;
  Count NumNodes GUARDED_BY(Mu);
  bool TrackParents; ///< immutable after construction
};

} // namespace service
} // namespace graphit

#endif // GRAPHIT_SERVICE_STATEPOOL_H
