//===- service/HotStateCache.h - Shared hot-source state cache --*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A striped, version-tagged cache of warm `DistanceState`s keyed by
/// source vertex, shareable across `QueryEngine` instances so a PPSP warm
/// miss on one engine can hit a state another engine computed.
///
/// Each cached state is published behind a `shared_ptr<DistanceState>`:
/// readers (`lookup`) take a reference under a brief stripe lock and then
/// copy answers out lock-free, while the single repair writer
/// (`repairAll`, called once per applied update batch) mutates a state in
/// place only when it holds the *sole* reference — otherwise it clones
/// first (`DistanceState` is plain vectors, so copies are cheap relative
/// to a recompute) and republishes the repaired clone. A keep-newer
/// version guard on every publish makes concurrent install/repair races
/// converge on the newest version instead of resurrecting stale states.
///
/// Lock ordering: stripe locks are leaves — nothing is acquired under
/// them. `RepairMu` (serializes repair/grow passes and guards the shared
/// scratch) is acquired before stripe locks, never the reverse.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SERVICE_HOTSTATECACHE_H
#define GRAPHIT_SERVICE_HOTSTATECACHE_H

#include "algorithms/IncrementalSSSP.h"
#include "algorithms/QueryState.h"
#include "core/Schedule.h"
#include "graph/DeltaGraph.h"
#include "support/ThreadSafety.h"
#include "support/Types.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace graphit {

/// Striped shared cache of warm single-source distance states.
///
/// Thread-safe: any number of engines/workers may call `lookup`,
/// `install`, and `takeSlot` concurrently; `repairAll`/`growAll` are
/// serialized against each other internally and safe against concurrent
/// readers. States handed out by `lookup` are immutable snapshots — a
/// later repair that finds the state still referenced clones instead of
/// mutating it, so a reader's copy-out never races a write.
class HotStateCache {
public:
  /// \p Capacity is the total number of cached states across all
  /// stripes; each stripe evicts LRU locally once its share is full.
  explicit HotStateCache(size_t Capacity)
      : Capacity_(Capacity ? Capacity : 1),
        Stripes(stripeCountFor(Capacity_)) {
    size_t Base = Capacity_ / Stripes.size();
    size_t Extra = Capacity_ % Stripes.size();
    for (size_t I = 0; I < Stripes.size(); ++I)
      Stripes[I].Capacity = Base + (I < Extra ? 1 : 0);
  }

  HotStateCache(const HotStateCache &) = delete;
  HotStateCache &operator=(const HotStateCache &) = delete;

  /// Returns the cached state for \p Source if one exists at exactly
  /// snapshot \p Version, bumping its LRU clock; nullptr otherwise. The
  /// returned state is safe to read without any lock.
  std::shared_ptr<const DistanceState> lookup(VertexId Source,
                                              uint64_t Version) {
    Stripe &S = stripeFor(Source);
    MutexLock Lock(S.Mu);
    auto It = S.Map.find(Source);
    if (It == S.Map.end() || !It->second.State ||
        It->second.Version != Version)
      return nullptr;
    It->second.LastUsed = ++S.Tick;
    Hits_.fetch_add(1, std::memory_order_relaxed);
    return It->second.State;
  }

  /// Publishes a freshly computed \p State for \p Source at \p Version.
  /// Keep-newer guard: a slot already holding an equal-or-newer version
  /// wins and \p State is dropped. Evicts the stripe's LRU entry when
  /// over capacity.
  void install(VertexId Source, uint64_t Version,
               std::shared_ptr<DistanceState> State) {
    Stripe &S = stripeFor(Source);
    MutexLock Lock(S.Mu);
    Entry &E = S.Map[Source];
    if (E.State && E.Version >= Version)
      return;
    E.State = std::move(State);
    E.Version = Version;
    E.LastUsed = ++S.Tick;
    evictOverCapacity(S);
  }

  /// Reclaims a state allocation for the cold path: if \p Source's
  /// stripe is at capacity, the LRU victim is evicted and its state
  /// returned for reuse iff nothing else still references it. Returns
  /// nullptr when the stripe has room or the victim is still shared —
  /// callers then allocate fresh.
  std::shared_ptr<DistanceState> takeSlot(VertexId Source) {
    Stripe &S = stripeFor(Source);
    MutexLock Lock(S.Mu);
    if (S.Map.size() < S.Capacity)
      return nullptr;
    auto Victim = S.Map.end();
    for (auto It = S.Map.begin(); It != S.Map.end(); ++It)
      if (Victim == S.Map.end() ||
          It->second.LastUsed < Victim->second.LastUsed)
        Victim = It;
    if (Victim == S.Map.end())
      return nullptr;
    std::shared_ptr<DistanceState> Out = std::move(Victim->second.State);
    S.Map.erase(Victim);
    if (Out && Out.use_count() == 1)
      return Out;
    return nullptr; // still referenced by a reader; let it expire there
  }

  /// Brings every cached state forward to snapshot \p NewVersion after an
  /// applied update batch: entries at exactly NewVersion-1 are repaired
  /// incrementally (O(affected) via repairAfterUpdates), entries already
  /// at NewVersion are kept, anything older is dropped. Repair happens
  /// outside the stripe locks; a state still referenced by a reader is
  /// cloned so the reader's snapshot stays immutable.
  template <typename GraphT>
  void repairAll(const GraphT &G, const std::vector<AppliedUpdate> &Applied,
                 uint64_t NewVersion, const Schedule &Sched) {
    MutexLock RepairLock(RepairMu);
    for (Stripe &S : Stripes) {
      // Detach repairable entries under the stripe lock; once detached,
      // no new references can appear, so a use_count of 1 is stable.
      std::vector<std::pair<VertexId, std::shared_ptr<DistanceState>>>
          Work;
      {
        MutexLock Lock(S.Mu);
        for (auto It = S.Map.begin(); It != S.Map.end();) {
          if (It->second.Version == NewVersion) {
            ++It;
          } else if (It->second.State &&
                     It->second.Version + 1 == NewVersion) {
            Work.emplace_back(It->first, std::move(It->second.State));
            It = S.Map.erase(It);
          } else {
            It = S.Map.erase(It);
          }
        }
      }
      for (auto &[Source, St] : Work) {
        (void)Source;
        if (St.use_count() != 1)
          St = std::make_shared<DistanceState>(*St); // reader holds a ref
        St->resize(G.numNodes());
        repairAfterUpdates(G, Applied, *St, Sched, Scratch);
        Repairs_.fetch_add(1, std::memory_order_relaxed);
      }
      {
        MutexLock Lock(S.Mu);
        for (auto &[Source, St] : Work) {
          Entry &E = S.Map[Source];
          if (E.State && E.Version >= NewVersion)
            continue; // a concurrent install already published newer
          E.State = std::move(St);
          E.Version = NewVersion;
          E.LastUsed = ++S.Tick;
        }
        evictOverCapacity(S);
      }
    }
  }

  /// Brings cached states forward across a vertex insertion to
  /// \p NewVersion: states at exactly NewVersion-1 are grown to
  /// \p NewNodes entries in place (sole owner) or via clone (shared);
  /// anything older is dropped.
  void growAll(size_t NewNodes, uint64_t NewVersion) {
    MutexLock RepairLock(RepairMu);
    for (Stripe &S : Stripes) {
      MutexLock Lock(S.Mu);
      for (auto It = S.Map.begin(); It != S.Map.end();) {
        Entry &E = It->second;
        if (E.Version == NewVersion) {
          ++It;
          continue;
        }
        if (!E.State || E.Version + 1 != NewVersion) {
          It = S.Map.erase(It);
          continue;
        }
        // Map lookups require this stripe lock, so a use_count of 1
        // here means no reader can gain a reference concurrently.
        if (E.State.use_count() != 1)
          E.State = std::make_shared<DistanceState>(*E.State);
        E.State->resize(NewNodes);
        E.Version = NewVersion;
        ++It;
      }
    }
  }

  /// Drops every cached entry (used when a store compaction or rebuild
  /// invalidates incremental repair continuity).
  void clear() {
    for (Stripe &S : Stripes) {
      MutexLock Lock(S.Mu);
      S.Map.clear();
    }
  }

  /// Number of successful version-matched lookups since construction.
  uint64_t hits() const { return Hits_.load(std::memory_order_relaxed); }

  /// Number of incremental state repairs performed by repairAll.
  uint64_t repairs() const {
    return Repairs_.load(std::memory_order_relaxed);
  }

  /// Current number of cached states across all stripes.
  size_t size() const {
    size_t N = 0;
    for (const Stripe &S : Stripes) {
      MutexLock Lock(S.Mu);
      N += S.Map.size();
    }
    return N;
  }

  /// Total capacity across all stripes.
  size_t capacity() const { return Capacity_; }

private:
  struct Entry {
    std::shared_ptr<DistanceState> State;
    uint64_t Version = 0;
    uint64_t LastUsed = 0;
  };

  struct Stripe {
    mutable Mutex Mu;
    std::unordered_map<VertexId, Entry> Map GUARDED_BY(Mu);
    uint64_t Tick GUARDED_BY(Mu) = 0;
    size_t Capacity = 1; // set once at construction, then read-only
  };

  /// Largest power of two <= max(1, Capacity / 4), clamped to 16, so
  /// small caches (the tests use capacities 2..3) stay single-striped
  /// with strict global LRU while large shared caches spread contention.
  static size_t stripeCountFor(size_t Capacity) {
    size_t Want = Capacity / 4;
    size_t N = 1;
    while (N * 2 <= Want && N < 16)
      N *= 2;
    return N;
  }

  Stripe &stripeFor(VertexId Source) {
    return Stripes[static_cast<size_t>(Source) & (Stripes.size() - 1)];
  }

  void evictOverCapacity(Stripe &S) REQUIRES(S.Mu) {
    while (S.Map.size() > S.Capacity) {
      auto Victim = S.Map.end();
      for (auto It = S.Map.begin(); It != S.Map.end(); ++It)
        if (Victim == S.Map.end() ||
            It->second.LastUsed < Victim->second.LastUsed)
          Victim = It;
      S.Map.erase(Victim);
    }
  }

  const size_t Capacity_;
  std::vector<Stripe> Stripes;
  /// Serializes repairAll/growAll passes and guards the shared repair
  /// scratch. Acquired before stripe locks, never the reverse.
  Mutex RepairMu;
  RepairScratch Scratch GUARDED_BY(RepairMu);
  std::atomic<uint64_t> Hits_{0};
  std::atomic<uint64_t> Repairs_{0};
};

} // namespace graphit

#endif // GRAPHIT_SERVICE_HOTSTATECACHE_H
