//===- service/QueryEngine.cpp - Concurrent batched query serving ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/QueryEngine.h"

#include "algorithms/AStar.h"
#include "algorithms/SSSP.h"
#include "support/Abort.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <chrono>
#include <omp.h>

using namespace graphit;
using namespace graphit::service;

namespace {
/// Bounded feedback-controller history kept for controllerTrace().
constexpr size_t kControllerTraceCap = 256;

/// Clamps a caller-supplied class index into range (the public per-class
/// getters accept anything).
int clampClass(int C) {
  if (C < 0)
    return 0;
  if (C >= kNumImportanceClasses)
    return kNumImportanceClasses - 1;
  return C;
}
} // namespace

template <class StoreT>
void BasicQueryEngine<StoreT>::startWorkers() {
  {
    // The controlled knobs start at (and, with the controller off, stay
    // at) their configured values; the configured values remain the
    // ceilings the controller may relax back to.
    MutexLock Lock(Mu);
    CurBatchDelay_ = Opts.MaxBatchDelayMicros;
    CurHighWater_ = Opts.AdmissionHighWater;
    CurSoftWater_ = Opts.AdmissionSoftWater;
    if (Opts.ControllerIntervalMicros > 0)
      CtlNextTick_ =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(Opts.ControllerIntervalMicros);
  }
  int N = Opts.NumWorkers > 0
              ? Opts.NumWorkers
              : static_cast<int>(std::thread::hardware_concurrency());
  N = std::max(N, 1);
  Workers.reserve(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

template <class StoreT>
BasicQueryEngine<StoreT>::BasicQueryEngine(const Graph &G, Options O)
    : StaticG(&G), NumNodes(G.numNodes()),
      HasCoordinates(G.hasCoordinates()), Opts(O), OwnMap(G.numNodes()),
      Map(&OwnMap), Pool(G.numNodes(), O.TrackParents) {
  if (Opts.Reorder != ReorderKind::None) {
    // Serve a cache-conscious layout internally; the boundary translation
    // in runOne keeps callers in original-id space.
    OwnedG = std::make_unique<Graph>(reorderGraph(
        G, Opts.Reorder, &OwnMap, /*Seed=*/0x0EDE5, Opts.ReorderSourceHint));
    StaticG = OwnedG.get();
  }
  if (Opts.NumLandmarks > 0) {
    Landmarks = std::make_shared<LandmarkCache>(
        *StaticG, Opts.NumLandmarks, Opts.DefaultSchedule);
    LandmarksAdmissible = true;
  }
  startWorkers();
}

template <class StoreT>
BasicQueryEngine<StoreT>::BasicQueryEngine(StoreT &S, Options O)
    : Store(&S), NumNodes(S.current()->numNodes()),
      HasCoordinates(S.current()->hasCoordinates()), Opts(O),
      Map(&S.mapping()), Pool(NumNodes, O.TrackParents) {
  if (Opts.SharedHotCache)
    HotCache = Opts.SharedHotCache;
  else if (Opts.HotSourceCapacity > 0)
    HotCache = std::make_shared<HotStateCache>(
        static_cast<size_t>(Opts.HotSourceCapacity));
  if (Opts.NumLandmarks > 0) {
    // Build the ALT cache from a compacted copy of the current version.
    // It keeps serving through increase-only batches (admissibility is
    // preserved when true distances can only grow) and is rebuilt on
    // compaction; see the constructor contract in the header.
    auto [Snap, Ver] = S.currentVersioned();
    Landmarks = std::make_shared<LandmarkCache>(
        std::make_shared<const Graph>(Snap->compact()), Opts.NumLandmarks,
        Opts.DefaultSchedule);
    LandmarksAdmissible = true;
    LandmarkVersion = Ver;
    SeenCompactions = S.compactions();
  }
  startWorkers();
}

template <class StoreT>
void BasicQueryEngine<StoreT>::noteAppliedBatch(
    const typename StoreT::ApplyResult &R, bool WasAdmissible) {
  // Exact admissibility test on the coalesced transitions: an insert
  // (OldW absent) or a strict decrease shrinks some true distance, which
  // can push it below a landmark bound. Deletes and increases only grow
  // distances — every previously-computed lower bound still holds.
  bool Breaking = false;
  for (const AppliedUpdate &A : R.Applied) {
    if (A.OldW == kAbsentEdge ||
        (A.NewW != kAbsentEdge && A.NewW < A.OldW)) {
      Breaking = true;
      break;
    }
  }

  // Rebuild on compaction: the freshly compacted base *is* the current
  // adjacency, so a cache built from it is admissible from this version
  // forward regardless of the history that triggered the compaction. The
  // K-SSSP build runs with only LandmarkWriterMu held (no other writer
  // can publish meanwhile) — queries keep serving on the old flag/cache.
  std::shared_ptr<const LandmarkCache> Rebuilt;
  uint64_t RebuiltVersion = 0;
  if (Store->compactions() != SeenCompactions) {
    SeenCompactions = Store->compactions();
    auto [Snap, Ver] = Store->currentVersioned();
    Rebuilt = std::make_shared<LandmarkCache>(
        std::make_shared<const Graph>(Snap->compact()), Opts.NumLandmarks,
        Opts.DefaultSchedule);
    RebuiltVersion = Ver;
  }

  MutexLock Guard(LandmarkMu);
  LandmarksAdmissible = WasAdmissible && !Breaking;
  if (Rebuilt) {
    Landmarks = std::move(Rebuilt);
    LandmarkVersion = RebuiltVersion;
    LandmarksAdmissible = true;
  }
}

template <class StoreT>
typename StoreT::ApplyResult
BasicQueryEngine<StoreT>::applyUpdates(const std::vector<EdgeUpdate> &Batch) {
  if (!Store)
    fatalError("QueryEngine::applyUpdates: engine serves a fixed graph");
  typename StoreT::ApplyResult R;
  if (Opts.NumLandmarks <= 0) {
    R = Store->applyUpdates(Batch);
  } else {
    // LandmarkWriterMu serializes writers end to end so admissibility
    // tracking observes batches in order; queries never touch it. The
    // conservative pre-invalidation (under the cheap LandmarkMu) closes
    // the window in which a query could pin the just-published (possibly
    // bound-breaking) version while still reading "admissible" — a batch
    // that proves to be increase-only restores the flag afterwards.
    MutexLock WriterGuard(LandmarkWriterMu);
    bool MaybeBreaking = false;
    for (const EdgeUpdate &U : Batch)
      if (U.Kind == UpdateKind::Upsert) {
        MaybeBreaking = true; // maybe an insert/decrease: assume so
        break;
      }
    bool WasAdmissible;
    {
      MutexLock Guard(LandmarkMu);
      WasAdmissible = LandmarksAdmissible;
      if (MaybeBreaking)
        LandmarksAdmissible = false;
    }
    R = Store->applyUpdates(Batch);
    noteAppliedBatch(R, WasAdmissible);
  }
  // A rejected strict batch published nothing: hot states are still at
  // the current version and stay serveable — repairing (which expects to
  // advance exactly one version) would wrongly drop them all.
  if (HotCache && R.Status == ApplyStatus::Ok)
    HotCache->repairAll(*R.Snap, R.Applied, R.Version,
                        Opts.DefaultSchedule);
  return R;
}

template <class StoreT>
VertexId BasicQueryEngine<StoreT>::addVertices(Count HowMany,
                                  const Coordinates *TailCoords) {
  if (!Store)
    fatalError("QueryEngine::addVertices: engine serves a fixed graph");
  // Serialize with landmark-tracked update batches so the retirement
  // below observes a consistent order (uncontended when landmarks are
  // off).
  MutexLock WriterGuard(LandmarkWriterMu);
  VertexId First = Store->addVertices(HowMany, TailCoords);
  if (HowMany <= 0)
    return First;
  const uint64_t NewVersion = Store->version();
  const Count NewNodes = Store->numNodes();

  if (Opts.NumLandmarks > 0) {
    // Landmark arrays are sized to the old universe: an estimate() for a
    // tail vertex would index out of bounds, so retire the cache. The
    // next compaction rebuilds it over the grown universe (the usual
    // rebuild path re-arms serving).
    MutexLock Guard(LandmarkMu);
    LandmarksAdmissible = false;
  }

  NumNodes.store(NewNodes, std::memory_order_relaxed);
  // Pool growth is a fail-point site (statepool.grow): a transient fault
  // must not leave the pool sized below the already-published universe,
  // so retry until it lands — the operation itself is idempotent.
  for (int Attempt = 0;; ++Attempt) {
    try {
      Pool.grow(NewNodes);
      break;
    } catch (const std::exception &) {
      if (Attempt >= 256)
        fatalError("QueryEngine::addVertices: state pool growth kept "
                   "failing");
    }
  }

  // Pure growth publishes a version whose distances are unchanged (new
  // vertices are unreachable until an edge batch seeds them): resize and
  // re-tag cached states instead of repairing.
  if (HotCache)
    HotCache->growAll(NewNodes, NewVersion);
  return First;
}

template <class StoreT>
bool BasicQueryEngine<StoreT>::serveFromHot(const Query &QI, uint64_t Ver,
                               QueryResult &R) const {
  std::shared_ptr<const DistanceState> St = HotCache->lookup(QI.Source, Ver);
  if (!St)
    return false;
  HotHits_.fetch_add(1, std::memory_order_relaxed);

  // The copy-out runs with no lock: the state is an immutable published
  // snapshot (repair clones instead of mutating anything a reader holds).
  if (QI.Target != kInvalidVertex)
    R.Dist = St->dist(QI.Target);
  // After repairs the touched log is a superset of the finite vertices
  // (a vertex cut off by deletions stays logged): filter on finiteness so
  // Touched/Reached match what a fresh run reports.
  Count Finite = 0;
  const Count Logged = St->numTouched();
  if (QI.CollectReached)
    R.Reached.reserve(static_cast<size_t>(Logged));
  for (Count I = 0; I < Logged; ++I) {
    VertexId V = St->touched(I);
    Priority D = St->dist(V);
    if (D >= kInfiniteDistance)
      continue;
    ++Finite;
    if (QI.CollectReached)
      R.Reached.emplace_back(V, D);
  }
  R.Touched = Finite;
  if (QI.CollectReached)
    std::sort(R.Reached.begin(), R.Reached.end());
  return true;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::hotHits() const {
  return HotHits_.load(std::memory_order_relaxed);
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::hotRepairs() const {
  return HotCache ? HotCache->repairs() : 0;
}

template <class StoreT>
size_t BasicQueryEngine<StoreT>::hotStatesCached() const {
  return HotCache ? HotCache->size() : 0;
}

template <class StoreT>
int64_t BasicQueryEngine<StoreT>::batchWindowMicros() const {
  MutexLock Lock(Mu);
  return BatchWindow_;
}

template <class StoreT>
int64_t BasicQueryEngine<StoreT>::maxBatchWindowMicros() const {
  MutexLock Lock(Mu);
  return BatchWindowMax_;
}

template <class StoreT> BasicQueryEngine<StoreT>::~BasicQueryEngine() {
  {
    MutexLock Lock(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::submit(Query Q) {
  // Malformed requests must not abort a serving process: reject them as
  // an immediately-collectible failed result. SSSP may omit the target
  // (kInvalidVertex); any *present* target must be in range, and A* needs
  // a heuristic to exist (landmarks or coordinates).
  bool TargetOk = Q.Kind == QueryKind::SSSP && Q.Target == kInvalidVertex
                      ? true
                      : static_cast<Count>(Q.Target) < NumNodes;
  // A* needs some heuristic configured. A live engine whose landmark cache
  // has lapsed (and that lacks coordinates) still accepts the query and
  // degrades to plain PPSP in runOneOn — same answers, no pruning.
  bool HeurOk = Q.Kind != QueryKind::AStar || Opts.NumLandmarks > 0 ||
                HasCoordinates;
  bool Valid =
      static_cast<Count>(Q.Source) < NumNodes && TargetOk && HeurOk;
  const int Class = importanceClass(Q.Importance);
  const auto Now = std::chrono::steady_clock::now();
  uint64_t Ticket;
  bool Enqueued = false;
  bool Resolved = false; // a ticket (this one or a victim's) was finished
  {
    MutexLock Lock(Mu);
    Ticket = NextTicket++;
    Outstanding.insert(Ticket);
    if (!Valid) {
      QueryResult R;
      R.Status = QueryStatus::Failed;
      R.Failed = true;
      Finished.emplace(Ticket, std::move(R));
      Resolved = true;
    } else {
      // Admission control: past the high-water mark, something must give —
      // shed the lowest-importance pending query, or the incoming one when
      // nothing queued is strictly less important (ties shed the incomer:
      // queued work has already waited). Among equally-least-important
      // *pending* queries the same rationale picks the newest — it has
      // waited least — so the scan keeps updating on ties. Shedding is
      // typed and immediate, never a silent drop — the victim's ticket
      // resolves Shed right here. `runBatch` funnels through this exact
      // path, so single submits and batches shed identically.
      if (CurHighWater_ > 0 && Pending.size() >= CurHighWater_) {
        auto Victim = Pending.end();
        int MinImportance = Q.Importance;
        for (auto It = Pending.begin(); It != Pending.end(); ++It)
          if (It->Q.Importance < MinImportance ||
              (Victim != Pending.end() &&
               It->Q.Importance == MinImportance)) {
            MinImportance = It->Q.Importance;
            Victim = It;
          }
        QueryResult R;
        R.Status = QueryStatus::Shed;
        Resolved = true;
        if (Victim == Pending.end()) {
          ++Sheds_[Class];
          Finished.emplace(Ticket, std::move(R));
          Valid = false; // incoming query sheds; nothing to enqueue
        } else {
          ++Sheds_[Victim->Class];
          Finished.emplace(Victim->Ticket, std::move(R));
          Pending.erase(Victim);
        }
      }

      if (Valid) {
        Task T{Ticket, std::move(Q), Now, 0, false, Class};
        T.DeadlineMicros = T.Q.DeadlineMicros;
        // Graceful degradation: under moderate pressure, bound PPSP/A*
        // queries that brought no deadline of their own. A class with a
        // p99 target gets the target itself as its budget — the SLO is
        // the class's latency contract, known a priori, so imposition
        // does not wait for a warm EWMA (and must not hand a premium
        // class the tiny EWMA-derived budget meant for bulk traffic).
        // SLO-less classes fall back to a fraction of the recent service
        // time *of their own (kind, class) cell* — a slow class must not
        // shrink another class's budget. Bounded answers for everyone
        // beat full answers for some and Shed for the rest.
        if (CurSoftWater_ > 0 && Pending.size() >= CurSoftWater_ &&
            T.Q.Kind != QueryKind::SSSP && T.DeadlineMicros <= 0) {
          const int64_t Slo = Opts.ClassSlo[static_cast<size_t>(T.Class)];
          if (Slo > 0) {
            T.DeadlineMicros = std::max(Opts.DegradeFloorMicros, Slo);
            T.Degraded = true;
            ++Degraded_[T.Class];
          } else {
            const double Ewma =
                EwmaMicros[static_cast<int>(T.Q.Kind)][T.Class];
            if (Ewma > 0.0) {
              T.DeadlineMicros = std::max(
                  Opts.DegradeFloorMicros,
                  static_cast<int64_t>(Ewma * Opts.DegradeFactor));
              T.Degraded = true;
              ++Degraded_[T.Class];
            }
          }
        }
        Pending.push_back(std::move(T));
        Enqueued = true;
      }
    }
  }
  if (Enqueued)
    WorkCv.notify_one();
  if (Resolved)
    DoneCv.notify_all();
  return Ticket;
}

template <class StoreT>
QueryResult BasicQueryEngine<StoreT>::collect(uint64_t Ticket) {
  MutexLock Lock(Mu);
  // An unknown or already-collected ticket would block forever below —
  // that is a caller bug, so fail fast instead of wedging the thread. The
  // ticket is claimed (erased) before waiting so a concurrent second
  // collect of the same ticket trips this guard instead of deadlocking.
  if (Outstanding.erase(Ticket) == 0)
    fatalError("QueryEngine::collect: unknown or already-collected ticket");
  while (Finished.count(Ticket) == 0)
    DoneCv.wait(Lock.native());
  auto It = Finished.find(Ticket);
  QueryResult R = std::move(It->second);
  Finished.erase(It);
  return R;
}

template <class StoreT>
std::optional<QueryResult>
BasicQueryEngine<StoreT>::tryCollect(uint64_t Ticket) {
  MutexLock Lock(Mu);
  // Same claim-then-wait protocol as collect(), but an unknown or
  // already-collected ticket is a recoverable nullopt — a server loop
  // handling retried or duplicated client requests shouldn't die for it.
  if (Outstanding.erase(Ticket) == 0)
    return std::nullopt;
  while (Finished.count(Ticket) == 0)
    DoneCv.wait(Lock.native());
  auto It = Finished.find(Ticket);
  QueryResult R = std::move(It->second);
  Finished.erase(It);
  return R;
}

template <class StoreT>
std::vector<QueryResult>
BasicQueryEngine<StoreT>::runBatch(const std::vector<Query> &Batch) {
  std::vector<uint64_t> Tickets;
  Tickets.reserve(Batch.size());
  for (const Query &Q : Batch)
    Tickets.push_back(submit(Q));
  std::vector<QueryResult> Results;
  Results.reserve(Batch.size());
  for (uint64_t T : Tickets)
    Results.push_back(collect(T));
  return Results;
}

template <class StoreT>
OrderedStats BasicQueryEngine<StoreT>::aggregateStats() const {
  MutexLock Lock(Mu);
  return Aggregate;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::queriesServed() const {
  MutexLock Lock(Mu);
  return Served;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::queriesShed() const {
  MutexLock Lock(Mu);
  uint64_t Total = 0;
  for (uint64_t C : Sheds_)
    Total += C;
  return Total;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::deadlinesExceeded() const {
  MutexLock Lock(Mu);
  uint64_t Total = 0;
  for (uint64_t C : DeadlineExceeded_)
    Total += C;
  return Total;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::queriesDegraded() const {
  MutexLock Lock(Mu);
  uint64_t Total = 0;
  for (uint64_t C : Degraded_)
    Total += C;
  return Total;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::queriesServedInClass(int Class) const {
  MutexLock Lock(Mu);
  return ServedClass_[clampClass(Class)];
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::queriesShedInClass(int Class) const {
  MutexLock Lock(Mu);
  return Sheds_[clampClass(Class)];
}

template <class StoreT>
uint64_t
BasicQueryEngine<StoreT>::deadlinesExceededInClass(int Class) const {
  MutexLock Lock(Mu);
  return DeadlineExceeded_[clampClass(Class)];
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::queriesDegradedInClass(int Class) const {
  MutexLock Lock(Mu);
  return Degraded_[clampClass(Class)];
}

template <class StoreT>
double BasicQueryEngine<StoreT>::serviceEwmaMicros(QueryKind Kind,
                                                   int Class) const {
  MutexLock Lock(Mu);
  return EwmaMicros[static_cast<int>(Kind)][clampClass(Class)];
}

template <class StoreT>
LatencyHistogram::Snapshot
BasicQueryEngine<StoreT>::classLatencySnapshot(int Class) const {
  // Lock-free: the histograms are relaxed atomics, no Mu needed.
  return ClassLatency_[clampClass(Class)].snapshot();
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::controllerTicks() const {
  MutexLock Lock(Mu);
  return CtlTicks_;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::controllerTightens() const {
  MutexLock Lock(Mu);
  return CtlTightens_;
}

template <class StoreT>
uint64_t BasicQueryEngine<StoreT>::controllerRelaxes() const {
  MutexLock Lock(Mu);
  return CtlRelaxes_;
}

template <class StoreT>
int64_t BasicQueryEngine<StoreT>::currentBatchDelayMicros() const {
  MutexLock Lock(Mu);
  return CurBatchDelay_;
}

template <class StoreT>
size_t BasicQueryEngine<StoreT>::currentHighWater() const {
  MutexLock Lock(Mu);
  return CurHighWater_;
}

template <class StoreT>
size_t BasicQueryEngine<StoreT>::currentSoftWater() const {
  MutexLock Lock(Mu);
  return CurSoftWater_;
}

template <class StoreT>
std::vector<ControllerEvent>
BasicQueryEngine<StoreT>::controllerTrace() const {
  MutexLock Lock(Mu);
  return std::vector<ControllerEvent>(CtlTrace_.begin(), CtlTrace_.end());
}

template <class StoreT>
size_t BasicQueryEngine<StoreT>::queueDepth() const {
  MutexLock Lock(Mu);
  return Pending.size();
}

template <class StoreT>
void BasicQueryEngine<StoreT>::workerLoop() {
  // Per-thread OpenMP ICV: each query's engine run forks this many
  // threads. Serving throughput wants 1 (queries are the parallelism);
  // the knob exists for few-but-huge query mixes.
  omp_set_num_threads(std::max(1, Opts.OmpThreadsPerQuery));
  StatePool::Lease State = Pool.acquire();

  // Smallest non-zero formation window: far below a query's service time,
  // so the first adaptation step costs next to nothing.
  constexpr int64_t kBatchWindowFloorMicros = 50;

  struct Done {
    uint64_t Ticket;
    QueryKind Kind;
    bool Degraded;
    int Class;
    std::chrono::steady_clock::time_point Enqueued;
    double Micros;
    QueryResult R;
  };
  std::vector<Task> Batch;
  std::vector<Done> Results;

  while (true) {
    Batch.clear();
    Results.clear();
    {
      MutexLock Lock(Mu);
      // Explicit wait loop (not the predicate overload): the guarded
      // fields are read in this function's scope, where the analysis can
      // see the lock held.
      while (!ShuttingDown && Pending.empty())
        WorkCv.wait(Lock.native());
      if (Pending.empty())
        return; // shutting down, queue drained
      Batch.push_back(std::move(Pending.front()));
      Pending.pop_front();

      // Adaptive batch formation: with a non-zero window (the engine saw
      // backlog recently), greedily drain the queue up to MaxBatchSize,
      // then hold the window open for stragglers. With the window at 0 —
      // always, when MaxBatchDelayMicros is off — this worker takes
      // exactly one task, the historical behavior, and sibling workers
      // pick up the rest of the queue in parallel.
      const size_t MaxBatch =
          static_cast<size_t>(std::max(1, Opts.MaxBatchSize));
      if (CurBatchDelay_ > 0 && BatchWindow_ > 0) {
        while (Batch.size() < MaxBatch && !Pending.empty()) {
          Batch.push_back(std::move(Pending.front()));
          Pending.pop_front();
        }
        const auto Until =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(BatchWindow_);
        while (Batch.size() < MaxBatch && !ShuttingDown) {
          if (!Pending.empty()) {
            Batch.push_back(std::move(Pending.front()));
            Pending.pop_front();
            continue;
          }
          if (WorkCv.wait_until(Lock.native(), Until) ==
              std::cv_status::timeout)
            break;
        }
      }
      if (CurBatchDelay_ > 0) {
        // Grow the window while backlog persists (each batch still left
        // the queue non-empty); collapse it the moment the queue drains
        // so idle-engine latency stays untouched. The cap is the
        // *controlled* delay — under controller tightening the window
        // shrinks with it.
        if (!Pending.empty()) {
          BatchWindow_ = std::min(
              CurBatchDelay_,
              std::max(int64_t{2} * BatchWindow_, kBatchWindowFloorMicros));
          BatchWindowMax_ = std::max(BatchWindowMax_, BatchWindow_);
        } else {
          BatchWindow_ = 0;
        }
      }
    }

    // Run every task in the batch outside the lock, then publish all the
    // results under one acquisition — amortizing the lock and the wakeup
    // is where batching pays.
    for (Task &T : Batch) {
      CancelToken Token;
      const CancelToken *Cancel = nullptr;
      if (T.DeadlineMicros > 0) {
        Token.setDeadline(T.Enqueued +
                          std::chrono::microseconds(T.DeadlineMicros));
        Cancel = &Token;
      }

      const auto Start = std::chrono::steady_clock::now();
      QueryResult R;
      if (Cancel && Token.expired()) {
        // Expired while queued: resolve deterministically before touching
        // any snapshot or hot state. Nothing was settled.
        R.Status = QueryStatus::DeadlineExceeded;
        R.SettledBound = 0;
      } else {
        R = runOne(T.Q, State.get(), Cancel);
      }
      R.Degraded = T.Degraded;
      const double Micros =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - Start)
              .count();
      Results.push_back(Done{T.Ticket, T.Q.Kind, T.Degraded, T.Class,
                             T.Enqueued, Micros, std::move(R)});
    }

    // Per-class end-to-end latency (submit → publish, the quantity the
    // class SLOs target): recorded lock-free before taking Mu.
    const auto PubTime = std::chrono::steady_clock::now();
    for (Done &D : Results)
      if (D.R.Status == QueryStatus::Ok)
        ClassLatency_[D.Class].record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                PubTime - D.Enqueued)
                .count()));

    {
      MutexLock Lock(Mu);
      for (Done &D : Results) {
        Aggregate.merge(D.R.Stats);
        ++Served;
        ++ServedClass_[D.Class];
        if (D.R.Status == QueryStatus::DeadlineExceeded)
          ++DeadlineExceeded_[D.Class];
        // The admission EWMA samples only clean, un-degraded completions
        // — cut-short runs would drag imposed deadlines toward zero —
        // and only its own (kind, class) cell, so a slow class cannot
        // poison another's imposed deadlines.
        if (D.R.Status == QueryStatus::Ok && !D.Degraded) {
          double &Ewma = EwmaMicros[static_cast<int>(D.Kind)][D.Class];
          Ewma = Ewma == 0.0 ? D.Micros : 0.8 * Ewma + 0.2 * D.Micros;
        }
        Finished.emplace(D.Ticket, std::move(D.R));
      }
    }
    DoneCv.notify_all();
    maybeControllerTick();
  }
}

template <class StoreT>
void BasicQueryEngine<StoreT>::maybeControllerTick() {
  if (Opts.ControllerIntervalMicros <= 0)
    return;
  const auto Now = std::chrono::steady_clock::now();
  MutexLock Lock(Mu);
  if (Now < CtlNextTick_)
    return;
  // Exactly one publisher wins each interval: the deadline moved before
  // any other worker re-checks it under Mu.
  CtlNextTick_ =
      Now + std::chrono::microseconds(Opts.ControllerIntervalMicros);
  ++CtlTicks_;

  // Windowed per-class p99 since the previous tick, via snapshot deltas —
  // no reset of histograms that workers are concurrently recording into.
  ControllerEvent E;
  E.Tick = CtlTicks_;
  bool AnyMiss = false;
  bool SawEvidence = false; // ≥1 targeted class with a thick-enough window
  bool AllSlack = true;     // every such class comfortably under target
  for (int C = 0; C < kNumImportanceClasses; ++C) {
    LatencyHistogram::Snapshot Cur = ClassLatency_[C].snapshot();
    LatencyHistogram::Snapshot Win =
        LatencyHistogram::windowSince(Cur, CtlPrev_[C]);
    CtlPrev_[C] = Cur;
    E.WindowCount[static_cast<size_t>(C)] = Win.count();
    E.WindowP99Micros[static_cast<size_t>(C)] = Win.percentile(99);
    const int64_t Slo = Opts.ClassSlo[static_cast<size_t>(C)];
    if (Slo <= 0)
      continue;
    if (Win.count() < Opts.ControllerMinSamples)
      continue; // thin window: evidence for neither a miss nor slack
    SawEvidence = true;
    const uint64_t P99 = E.WindowP99Micros[static_cast<size_t>(C)];
    if (P99 > static_cast<uint64_t>(Slo))
      AnyMiss = true;
    else if (static_cast<double>(P99) >=
             Opts.ControllerSlackFraction * static_cast<double>(Slo))
      AllSlack = false; // dead band: under target but not slack
  }

  // AIMD with hysteresis and a dead band: a miss tightens additively at
  // once; relaxing needs ControllerHysteresisTicks consecutive all-slack
  // ticks and then doubles toward the configured ceilings; the dead band
  // (and hitting a floor/ceiling) holds. Settling is structural — every
  // trajectory ends pinned in the dead band or at a bound. Knobs whose
  // configured value is 0 (feature off) are never touched.
  int Action = 0;
  if (AnyMiss) {
    CtlSlackStreak_ = 0;
    if (Opts.MaxBatchDelayMicros > 0) {
      const int64_t Step =
          std::max<int64_t>(Opts.MaxBatchDelayMicros / 8, 1);
      const int64_t Floor = std::min(Opts.ControllerMinBatchDelayMicros,
                                     Opts.MaxBatchDelayMicros);
      const int64_t Next = std::max(Floor, CurBatchDelay_ - Step);
      if (Next != CurBatchDelay_) {
        CurBatchDelay_ = Next;
        Action = -1;
      }
      // An already-grown formation window must shrink with its cap.
      BatchWindow_ = std::min(BatchWindow_, CurBatchDelay_);
    }
    if (Opts.AdmissionHighWater > 0) {
      const size_t Step = std::max<size_t>(Opts.AdmissionHighWater / 8, 1);
      const size_t Floor =
          std::min(Opts.ControllerMinHighWater, Opts.AdmissionHighWater);
      const size_t Next =
          CurHighWater_ > Floor + Step ? CurHighWater_ - Step : Floor;
      if (Next != CurHighWater_) {
        CurHighWater_ = Next;
        Action = -1;
      }
    }
    if (Opts.AdmissionSoftWater > 0) {
      const size_t Step = std::max<size_t>(Opts.AdmissionSoftWater / 8, 1);
      const size_t Floor =
          std::min(Opts.ControllerMinSoftWater, Opts.AdmissionSoftWater);
      const size_t Next =
          CurSoftWater_ > Floor + Step ? CurSoftWater_ - Step : Floor;
      if (Next != CurSoftWater_) {
        CurSoftWater_ = Next;
        Action = -1;
      }
    }
    if (Action == -1)
      ++CtlTightens_;
  } else if (SawEvidence && AllSlack) {
    if (++CtlSlackStreak_ >=
        std::max(Opts.ControllerHysteresisTicks, 1)) {
      CtlSlackStreak_ = 0;
      if (Opts.MaxBatchDelayMicros > 0) {
        const int64_t Seed =
            std::max<int64_t>(Opts.MaxBatchDelayMicros / 8, 1);
        const int64_t Next =
            std::min(Opts.MaxBatchDelayMicros,
                     std::max(CurBatchDelay_ * 2, Seed));
        if (Next != CurBatchDelay_) {
          CurBatchDelay_ = Next;
          Action = 1;
        }
      }
      if (Opts.AdmissionHighWater > 0) {
        const size_t Next =
            std::min(Opts.AdmissionHighWater,
                     std::max<size_t>(CurHighWater_ * 2, 1));
        if (Next != CurHighWater_) {
          CurHighWater_ = Next;
          Action = 1;
        }
      }
      if (Opts.AdmissionSoftWater > 0) {
        const size_t Next =
            std::min(Opts.AdmissionSoftWater,
                     std::max<size_t>(CurSoftWater_ * 2, 1));
        if (Next != CurSoftWater_) {
          CurSoftWater_ = Next;
          Action = 1;
        }
      }
      if (Action == 1)
        ++CtlRelaxes_;
    }
  } else {
    // Dead band or thin windows: hold, and require the slack run to be
    // consecutive.
    CtlSlackStreak_ = 0;
  }

  E.Action = Action;
  E.BatchDelayMicros = CurBatchDelay_;
  E.HighWater = CurHighWater_;
  E.SoftWater = CurSoftWater_;
  CtlTrace_.push_back(E);
  if (CtlTrace_.size() > kControllerTraceCap)
    CtlTrace_.pop_front();
}

namespace {

/// Walks the parent chain target → source, verifying each hop against the
/// final distances (under concurrent relaxation a stored parent can lag
/// the final distance) and repairing bad hops by scanning the vertex's
/// in-neighbors for a predecessor on a true shortest path.
template <typename GraphT>
std::vector<VertexId> extractPath(const GraphT &G, DistanceState &State,
                                  VertexId Source, VertexId Target) {
  auto HopIsTight = [&](VertexId P, VertexId V) {
    if (P == kInvalidVertex)
      return false;
    for (WNode E : G.outNeighbors(P))
      if (E.V == V && State.dist(P) + E.W == State.dist(V))
        return true;
    return false;
  };
  auto FindPredecessor = [&](VertexId V) -> VertexId {
    if (!G.hasInEdges())
      return kInvalidVertex;
    for (WNode E : G.inNeighbors(V))
      if (State.dist(E.V) + E.W == State.dist(V))
        return E.V;
    return kInvalidVertex;
  };

  std::vector<VertexId> Path;
  VertexId V = Target;
  Path.push_back(V);
  Count Guard = 0;
  while (V != Source) {
    VertexId P = State.parent(V);
    if (!HopIsTight(P, V))
      P = FindPredecessor(V);
    if (P == kInvalidVertex || ++Guard > G.numNodes())
      return {}; // no verifiable path (or a cycle — corrupt state)
    Path.push_back(P);
    V = P;
  }
  std::reverse(Path.begin(), Path.end());
  return Path;
}

} // namespace

template <class StoreT>
std::shared_ptr<const LandmarkCache>
BasicQueryEngine<StoreT>::landmarks() const {
  // Fixed-graph mode never mutates the cache after construction, but the
  // "immutable, read without the lock" special case was exactly the kind
  // of tribal-knowledge contract the thread-safety analysis exists to
  // retire: the lock is uncontended there, so take it unconditionally.
  MutexLock Guard(LandmarkMu);
  return Landmarks;
}

template <class StoreT>
bool BasicQueryEngine<StoreT>::landmarksUsable() const {
  // Both modes set LandmarksAdmissible with the cache (fixed-graph caches
  // are built admissible and never lapse), so one guarded read serves
  // both.
  MutexLock Guard(LandmarkMu);
  return Landmarks != nullptr && LandmarksAdmissible;
}

template <class StoreT>
std::shared_ptr<const LandmarkCache>
BasicQueryEngine<StoreT>::landmarksFor(uint64_t SnapVersion) const {
  // Fixed-graph queries pass SnapVersion 0 and the cache is built at
  // version 0 admissible, so the live-mode predicate below degenerates to
  // "return the cache" — no special case needed.
  MutexLock Guard(LandmarkMu);
  // Admissible means "for every version from the cache's build through
  // the latest published". The query's pinned version is at most the
  // latest; requiring it to be at least the build version rules out a
  // long-pinned older snapshot meeting a cache rebuilt after decreases.
  if (Landmarks && LandmarksAdmissible && SnapVersion >= LandmarkVersion)
    return Landmarks;
  return nullptr;
}

template <class StoreT>
QueryResult BasicQueryEngine<StoreT>::runOne(const Query &Q,
                                             DistanceState &State,
                                             const CancelToken *Cancel) const {
  // Translate endpoints into the internal layout; results are translated
  // back below, so callers only ever see original ids.
  Query QI = Q;
  if (!Map->isIdentity()) {
    QI.Source = Map->toInternal(Q.Source);
    if (QI.Target != kInvalidVertex)
      QI.Target = Map->toInternal(Q.Target);
  }

  QueryResult R;
  if (Store) {
    // Pin the latest version for this query's whole lifetime: concurrent
    // applyUpdates() publishes the next version, it never mutates ours.
    auto [Snap, Ver] = Store->currentVersioned();
    // Path extraction wants a private parent array, so CollectPath
    // queries bypass the shared hot states; a PPSP/A* with
    // CollectReached does too (its fresh-run reach is the early-exited
    // search, not the full solution a hot state holds). Serving a *hit*
    // under a deadline is fine (it's an O(touched) copy-out, no engine
    // run), but a deadline-carrying run must not *warm* the cache — a
    // cancelled run would install a partial solution that repair would
    // then propagate as if complete.
    const bool HotEligible =
        HotCache != nullptr && !QI.CollectPath &&
        (QI.Kind == QueryKind::SSSP || !QI.CollectReached);
    if (HotEligible && serveFromHot(QI, Ver, R)) {
      // Served from the repaired hot state: bit-identical distances, no
      // engine run.
    } else if (HotEligible && QI.Kind == QueryKind::SSSP && !Cancel) {
      // Cold SSSP source: warm the cache by running into a cache-owned
      // state (full solution, repairable on the next applyUpdates). The
      // state storage is recycled from the LRU victim when the cache is
      // full and nothing else still references it, so steady-state
      // misses usually allocate nothing.
      std::shared_ptr<DistanceState> HotState =
          HotCache->takeSlot(QI.Source);
      if (HotState)
        HotState->resize(Snap->numNodes());
      else
        HotState = std::make_shared<DistanceState>(Snap->numNodes(),
                                                   Opts.TrackParents);
      R = runOneOn(*Snap, QI, *HotState, Ver, nullptr);
      HotCache->install(QI.Source, Ver, std::move(HotState));
    } else {
      // Vertex insertion may have outgrown a pooled worker state.
      State.resize(Snap->numNodes());
      R = runOneOn(*Snap, QI, State, Ver, Cancel);
    }
  } else {
    R = runOneOn(*StaticG, QI, State, 0, Cancel);
  }

  if (!Map->isIdentity()) {
    for (std::pair<VertexId, Priority> &P : R.Reached)
      P.first = Map->toExternal(P.first);
    std::sort(R.Reached.begin(), R.Reached.end()); // keep the sorted contract
    Map->mapToExternal(R.Path);
  }
  return R;
}

template <class StoreT>
template <typename GraphT>
QueryResult BasicQueryEngine<StoreT>::runOneOn(
    const GraphT &G, const Query &Q, DistanceState &State,
    uint64_t SnapVersion, const CancelToken *Cancel) const {
  const Schedule &S = Q.Sched ? *Q.Sched : Opts.DefaultSchedule;
  RunLimits Limits;
  Limits.Cancel = Cancel;
  Limits.MaxDistance = Q.MaxDistance;
  QueryResult R;
  // When the run stops early (deadline or MaxDistance budget), only
  // distances strictly below this bound are provably exact; everything
  // reported is filtered to it below.
  bool Interrupted = false;
  Priority SettledBound = kInfiniteDistance;

  switch (Q.Kind) {
  case QueryKind::SSSP:
    R.Stats = deltaSteppingSSSP(G, Q.Source, S, State, Cancel);
    if (R.Stats.Cancelled) {
      Interrupted = true;
      SettledBound = R.Stats.CancelKey * S.Delta;
    }
    break;
  case QueryKind::PPSP: {
    PPSPResult P =
        pointToPointShortestPath(G, Q.Source, Q.Target, S, State, Limits);
    R.Dist = P.Dist;
    R.Stats = P.Stats;
    Interrupted = P.Interrupted;
    SettledBound = P.SettledBound;
    break;
  }
  case QueryKind::AStar: {
    PPSPResult P;
    if (std::shared_ptr<const LandmarkCache> L = landmarksFor(SnapVersion)) {
      // Snapshot the target-side landmark distances once per query; the
      // per-relaxation estimate then avoids K scattered |V|-vector reads.
      LandmarkCache::TargetBound Bound = L->boundFor(Q.Target);
      P = aStarSearch(G, Q.Source, Q.Target, S, State, &Bound, Limits);
    } else if (HasCoordinates) {
      P = aStarSearch(G, Q.Source, Q.Target, S, State, nullptr, Limits);
    } else {
      // Landmarks lapsed and there is no coordinate bound: degrade to
      // plain PPSP (identical answers, no pruning) rather than fail.
      P = pointToPointShortestPath(G, Q.Source, Q.Target, S, State, Limits);
    }
    R.Dist = P.Dist;
    R.Stats = P.Stats;
    Interrupted = P.Interrupted;
    SettledBound = P.SettledBound;
    break;
  }
  }

  if (Interrupted) {
    R.SettledBound = SettledBound;
    // A deadline stop is the DeadlineExceeded outcome; a MaxDistance
    // budget stop is a normal completion of the bounded search the
    // caller asked for.
    R.Status = R.Stats.Cancelled ? QueryStatus::DeadlineExceeded
                                 : QueryStatus::Ok;
  }

  R.Touched = State.numTouched();
  if (Q.Kind == QueryKind::SSSP && Q.Target != kInvalidVertex) {
    // submit() range-checked the target; report it only when provably
    // settled (always, unless interrupted).
    Priority D = State.dist(Q.Target);
    R.Dist = D < SettledBound ? D : kInfiniteDistance;
  }

  if (Interrupted) {
    // Report only the settled prefix: vertices at tentative distances at
    // or above the bound might still improve had the run continued.
    Count Settled = 0;
    for (Count I = 0; I < R.Touched; ++I)
      if (State.dist(State.touched(I)) < SettledBound)
        ++Settled;
    R.Touched = Settled;
  }

  if (Q.CollectReached) {
    R.Reached.reserve(static_cast<size_t>(R.Touched));
    const Count Logged = State.numTouched();
    for (Count I = 0; I < Logged; ++I) {
      VertexId V = State.touched(I);
      Priority D = State.dist(V);
      if (D < SettledBound)
        R.Reached.emplace_back(V, D);
    }
    std::sort(R.Reached.begin(), R.Reached.end());
  }

  // Path extraction also requires a settled target (an interrupted run's
  // tentative parent chain can dead-end or detour).
  if (Q.CollectPath && State.tracksParents() &&
      Q.Target != kInvalidVertex && State.dist(Q.Target) < SettledBound)
    R.Path = extractPath(G, State, Q.Source, Q.Target);

  return R;
}

template <class StoreT>
typename StoreT::ApplyResult
BasicQueryEngine<StoreT>::removeVertex(VertexId External) {
  if (!Store)
    fatalError("QueryEngine::removeVertex: engine serves a fixed graph");
  typename StoreT::ApplyResult R;
  if (Opts.NumLandmarks <= 0) {
    R = Store->removeVertex(External);
  } else {
    // A detachment batch is pure deletions: true distances only grow, so
    // every landmark bound stays admissible and no pre-invalidation is
    // needed. Serialize with the other writers all the same so
    // admissibility tracking observes batches in order (and a fold the
    // deletions trigger still rebuilds the cache).
    MutexLock WriterGuard(LandmarkWriterMu);
    bool WasAdmissible;
    {
      MutexLock Guard(LandmarkMu);
      WasAdmissible = LandmarksAdmissible;
    }
    R = Store->removeVertex(External);
    noteAppliedBatch(R, WasAdmissible);
  }
  // Hot states repair from the Applied transitions exactly like an
  // ordinary delete batch (an out-of-range no-op published nothing and
  // repairAll keeps same-version entries untouched).
  if (HotCache && R.Status == ApplyStatus::Ok)
    HotCache->repairAll(*R.Snap, R.Applied, R.Version,
                        Opts.DefaultSchedule);
  return R;
}

template <class StoreT>
VertexId BasicQueryEngine<StoreT>::acquireVertex(const Coordinates *OneCoord) {
  if (!Store)
    fatalError("QueryEngine::acquireVertex: engine serves a fixed graph");
  // Serialize with engine-routed growth so the before/after universe
  // comparison below cannot interleave with a concurrent addVertices.
  MutexLock WriterGuard(LandmarkWriterMu);
  const Count Before = Store->numNodes();
  VertexId Id = Store->acquireVertex(OneCoord);
  const Count NewNodes = Store->numNodes();
  if (NewNodes == Before)
    return Id; // recycled a freed id: in-universe already, nothing grew

  // The free list was empty and the store grew the universe by one:
  // mirror addVertices' bookkeeping (it could not run here — it takes
  // LandmarkWriterMu itself).
  const uint64_t NewVersion = Store->version();
  if (Opts.NumLandmarks > 0) {
    MutexLock Guard(LandmarkMu);
    LandmarksAdmissible = false; // arrays sized to the old universe
  }
  NumNodes.store(NewNodes, std::memory_order_relaxed);
  for (int Attempt = 0;; ++Attempt) {
    try {
      Pool.grow(NewNodes);
      break;
    } catch (const std::exception &) {
      if (Attempt >= 256)
        fatalError("QueryEngine::acquireVertex: state pool growth kept "
                   "failing");
    }
  }
  if (HotCache)
    HotCache->growAll(NewNodes, NewVersion);
  return Id;
}

template <class StoreT>
Count BasicQueryEngine<StoreT>::freeVertexCount() const {
  return Store ? Store->freeVertexCount() : 0;
}

// The serving tier is compiled here once per supported store; the header
// declares these as extern (see the Store concept in service/Store.h).
namespace graphit {
namespace service {
template class BasicQueryEngine<SnapshotStore>;
template class BasicQueryEngine<ShardedSnapshotStore>;
} // namespace service
} // namespace graphit
