//===- support/Abort.h - Fatal errors and unreachable marks -----*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-terminating error reporting for programmatic errors, in the
/// spirit of `report_fatal_error` / `llvm_unreachable`.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_ABORT_H
#define GRAPHIT_SUPPORT_ABORT_H

#include <cstdio>
#include <cstdlib>

namespace graphit {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that must be diagnosed even in release builds.
[[noreturn]] inline void fatalError(const char *Message) {
  std::fprintf(stderr, "graphit fatal error: %s\n", Message);
  std::abort();
}

} // namespace graphit

/// Marks a point in control flow that must never execute.
#define GRAPHIT_UNREACHABLE(MSG) ::graphit::fatalError("unreachable: " MSG)

#endif // GRAPHIT_SUPPORT_ABORT_H
