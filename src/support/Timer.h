//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal monotonic wall-clock timer used by the benchmark harness and by
/// per-run statistics.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_TIMER_H
#define GRAPHIT_SUPPORT_TIMER_H

#include <chrono>

namespace graphit {

/// Monotonic stopwatch. Construction starts the clock.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the clock.
  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace graphit

#endif // GRAPHIT_SUPPORT_TIMER_H
