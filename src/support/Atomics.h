//===- support/Atomics.h - Lock-free update primitives ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic read-modify-write primitives the generated code in the paper
/// relies on: compare-and-swap, `atomicWriteMin`/`atomicWriteMax` (the
/// `writeMin` of Fig. 2), and fetch-and-add. All operate on plain scalars so
/// the same arrays can also be accessed non-atomically on pull-direction
/// traversals (Fig. 9(b)).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_ATOMICS_H
#define GRAPHIT_SUPPORT_ATOMICS_H

#include <atomic>
#include <type_traits>

namespace graphit {

namespace detail {
template <typename T> std::atomic<T> &asAtomic(T &Ref) {
  static_assert(std::is_trivially_copyable_v<T>,
                "atomic view requires a trivially copyable type");
  static_assert(sizeof(std::atomic<T>) == sizeof(T),
                "atomic view requires layout-compatible std::atomic");
  return reinterpret_cast<std::atomic<T> &>(Ref);
}
} // namespace detail

/// Atomically sets `*Target = Desired` if it still equals \p Expected.
/// \returns true on success.
template <typename T> bool atomicCAS(T *Target, T Expected, T Desired) {
  return detail::asAtomic(*Target).compare_exchange_strong(
      Expected, Desired, std::memory_order_acq_rel,
      std::memory_order_acquire);
}

/// Atomically lowers `*Target` to \p Value if `Value < *Target`.
/// \returns true iff this call lowered the stored value.
template <typename T> bool atomicWriteMin(T *Target, T Value) {
  T Current = detail::asAtomic(*Target).load(std::memory_order_relaxed);
  while (Value < Current) {
    if (detail::asAtomic(*Target).compare_exchange_weak(
            Current, Value, std::memory_order_acq_rel,
            std::memory_order_acquire))
      return true;
  }
  return false;
}

/// Atomically raises `*Target` to \p Value if `Value > *Target`.
/// \returns true iff this call raised the stored value.
template <typename T> bool atomicWriteMax(T *Target, T Value) {
  T Current = detail::asAtomic(*Target).load(std::memory_order_relaxed);
  while (Value > Current) {
    if (detail::asAtomic(*Target).compare_exchange_weak(
            Current, Value, std::memory_order_acq_rel,
            std::memory_order_acquire))
      return true;
  }
  return false;
}

/// Atomically lowers `*Target` to \p Value if `Value < *Target`, without
/// reporting whether it did. This is the reduction primitive of the eager
/// engine's next-bucket proposal (it replaces the former `omp critical`
/// section): every thread publishes its candidate and nobody needs the
/// outcome.
template <typename T> void atomicMin(T *Target, T Value) {
  (void)atomicWriteMin(Target, Value);
}

/// Atomically stores \p Value and \returns the previous value.
template <typename T> T atomicExchange(T *Target, T Value) {
  return detail::asAtomic(*Target).exchange(Value,
                                            std::memory_order_acq_rel);
}

/// Atomically adds \p Delta to `*Target`. \returns the previous value.
template <typename T> T fetchAdd(T *Target, T Delta) {
  return detail::asAtomic(*Target).fetch_add(Delta,
                                             std::memory_order_acq_rel);
}

/// Atomic load with acquire semantics.
template <typename T> T atomicLoad(const T *Target) {
  return detail::asAtomic(*const_cast<T *>(Target))
      .load(std::memory_order_acquire);
}

/// Atomic load with relaxed ordering: the data-race-free form of the "read
/// then maybe CAS" pre-check pattern. Compiles to a plain load on x86, so
/// hot-path pre-checks (`if (Dist[v] <= nd) skip`) cost nothing extra while
/// remaining well-defined (and TSan-clean) against a concurrent CAS.
template <typename T> T atomicLoadRelaxed(const T *Target) {
  return detail::asAtomic(*const_cast<T *>(Target))
      .load(std::memory_order_relaxed);
}

/// Atomic store with relaxed ordering, for single-writer slots that other
/// threads may concurrently read atomically (publication happens at the
/// next barrier, not through this store).
template <typename T> void atomicStoreRelaxed(T *Target, T Value) {
  detail::asAtomic(*Target).store(Value, std::memory_order_relaxed);
}

/// Atomic store with release semantics.
template <typename T> void atomicStore(T *Target, T Value) {
  detail::asAtomic(*Target).store(Value, std::memory_order_release);
}

} // namespace graphit

#endif // GRAPHIT_SUPPORT_ATOMICS_H
