//===- support/Bitmap.h - Concurrent bitmap ---------------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size bitmap with an atomic test-and-set, used for visited flags
/// and deduplication in parallel traversals.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_BITMAP_H
#define GRAPHIT_SUPPORT_BITMAP_H

#include "support/Atomics.h"
#include "support/Types.h"

#include <cassert>
#include <vector>

namespace graphit {

/// Fixed-size bitmap. `set`/`get` are plain accesses; `testAndSet` is atomic
/// and safe to race.
class Bitmap {
public:
  explicit Bitmap(Count N) : NumBits(N), Words((N + kBits - 1) / kBits, 0) {}

  /// Number of bits the map holds.
  Count size() const { return NumBits; }

  /// Non-atomic read of bit \p I.
  bool get(Count I) const {
    assert(I >= 0 && I < NumBits && "bit index out of range");
    return (Words[I / kBits] >> (I % kBits)) & 1ULL;
  }

  /// Non-atomic set of bit \p I.
  void set(Count I) {
    assert(I >= 0 && I < NumBits && "bit index out of range");
    Words[I / kBits] |= 1ULL << (I % kBits);
  }

  /// Atomically sets bit \p I. \returns true iff this call flipped it from
  /// 0 to 1 (i.e. the caller "won" the bit).
  bool testAndSet(Count I) {
    assert(I >= 0 && I < NumBits && "bit index out of range");
    uint64_t Mask = 1ULL << (I % kBits);
    uint64_t Prev = detail::asAtomic(Words[I / kBits])
                        .fetch_or(Mask, std::memory_order_acq_rel);
    return (Prev & Mask) == 0;
  }

  /// Clears all bits (not thread-safe).
  void clear() { std::fill(Words.begin(), Words.end(), 0); }

private:
  static constexpr Count kBits = 64;
  Count NumBits;
  std::vector<uint64_t> Words;
};

} // namespace graphit

#endif // GRAPHIT_SUPPORT_BITMAP_H
