//===- support/Parallel.h - OpenMP parallel primitives ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin OpenMP wrappers used throughout the runtime: parallel loops with the
/// paper's load-balance strategies, parallel prefix sums, reductions, and
/// filter/pack. Keeping them here lets the generated code (and the hand
/// written algorithms that stand in for generated code) stay terse.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_PARALLEL_H
#define GRAPHIT_SUPPORT_PARALLEL_H

#include "support/Atomics.h"
#include "support/TSanAnnotate.h"
#include "support/Types.h"

#include <algorithm>
#include <cassert>
#include <omp.h>
#include <vector>

namespace graphit {

/// Load-balance strategy for parallel vertex loops, mirroring the
/// `configApplyParallelization` options of the scheduling language.
enum class Parallelization {
  Serial,                ///< Run on the calling thread.
  StaticVertexParallel,  ///< `schedule(static)`.
  DynamicVertexParallel, ///< `schedule(dynamic, 64)` (the paper's default).
};

/// \returns the number of threads parallel regions will use.
int getNumWorkers();

/// Caps the number of threads used by subsequent parallel regions.
/// Used by the scalability benchmarks (Fig. 11).
void setNumWorkers(int NumWorkers);

/// Grain size under dynamic scheduling; matches `schedule(dynamic, 64)` in
/// the paper's generated code (Fig. 9(c), line 15).
inline constexpr int kDynamicGrain = 64;

/// Below this trip count a parallel region costs more than it saves; the
/// loop runs inline on the calling thread. Ordered algorithms hit this
/// constantly (road-network buckets hold a handful of vertices).
inline constexpr Count kSerialGrain = 512;

/// Runs `Fn(I)` for every I in [Begin, End) using the requested strategy.
template <typename Fn>
void parallelFor(Count Begin, Count End, Fn &&Body,
                 Parallelization Strategy =
                     Parallelization::DynamicVertexParallel) {
  assert(Begin <= End && "parallelFor got an inverted range");
  if (End - Begin < kSerialGrain)
    Strategy = Parallelization::Serial;
  if (Strategy == Parallelization::Serial) {
    for (Count I = Begin; I < End; ++I)
      Body(I);
    return;
  }
  int Tag = 0;
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
    if (Strategy == Parallelization::StaticVertexParallel) {
#pragma omp for schedule(static) nowait
      for (Count I = Begin; I < End; ++I)
        Body(I);
    } else {
#pragma omp for schedule(dynamic, kDynamicGrain) nowait
      for (Count I = Begin; I < End; ++I)
        Body(I);
    }
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);
}

/// Sums `Fn(I)` over [Begin, End) in parallel. Merged with one atomic add
/// per thread rather than an OpenMP `reduction` clause, whose libgomp-side
/// combine is invisible to ThreadSanitizer.
template <typename Fn>
int64_t parallelSum(Count Begin, Count End, Fn &&Body) {
  int64_t Total = 0;
  GRAPHIT_OMP_REGION_ENTER(&Total);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Total);
    int64_t Mine = 0;
#pragma omp for schedule(static) nowait
    for (Count I = Begin; I < End; ++I)
      Mine += Body(I);
    fetchAdd(&Total, Mine);
    GRAPHIT_OMP_REGION_END(&Total);
  }
  GRAPHIT_OMP_REGION_EXIT(&Total);
  return Total;
}

/// Minimum of `Fn(I)` over [Begin, End) in parallel; \p Identity is returned
/// for an empty range.
template <typename Fn>
int64_t parallelMin(Count Begin, Count End, int64_t Identity, Fn &&Body) {
  int64_t Result = Identity;
  GRAPHIT_OMP_REGION_ENTER(&Result);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Result);
    int64_t Mine = Identity;
#pragma omp for schedule(static) nowait
    for (Count I = Begin; I < End; ++I)
      Mine = std::min(Mine, static_cast<int64_t>(Body(I)));
    atomicMin(&Result, Mine);
    GRAPHIT_OMP_REGION_END(&Result);
  }
  GRAPHIT_OMP_REGION_EXIT(&Result);
  return Result;
}

/// Exclusive prefix sum of \p Values in place; \returns the grand total.
/// Two-pass blocked algorithm, O(n) work.
int64_t exclusivePrefixSum(int64_t *Values, Count N);

/// Exclusive prefix sum over a vector, returning the total.
inline int64_t exclusivePrefixSum(std::vector<int64_t> &Values) {
  return exclusivePrefixSum(Values.data(),
                            static_cast<Count>(Values.size()));
}

/// Per-block trip count below which the blocked pack kernel falls back to
/// one sequential pass (two parallel passes cost more than they save).
inline constexpr Count kPackSerialBlockFloor = 2048;

namespace detail {

/// Shared kernel of `parallelPack` / `parallelPackIndex`: writes
/// `Get(I)` for every index I in [0, N) with `Keep(I)`, order-preserving,
/// using a blocked count / prefix-sum / scatter scheme.
template <typename OutT, typename KeepIdxFn, typename GetFn>
Count packImpl(Count N, OutT *Out, KeepIdxFn &&Keep, GetFn &&Get) {
  int NumBlocks = std::max(1, getNumWorkers() * 4);
  Count BlockSize = (N + NumBlocks - 1) / NumBlocks;
  if (BlockSize < kPackSerialBlockFloor) {
    Count M = 0;
    for (Count I = 0; I < N; ++I)
      if (Keep(I))
        Out[M++] = Get(I);
    return M;
  }
  std::vector<int64_t> BlockCounts(NumBlocks + 1, 0);
  int Tag = 0;
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
#pragma omp for schedule(static, 1) nowait
    for (int B = 0; B < NumBlocks; ++B) {
      Count Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
      int64_t Kept = 0;
      for (Count I = Lo; I < Hi; ++I)
        Kept += Keep(I) ? 1 : 0;
      BlockCounts[B] = Kept;
    }
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);
  int64_t Total = exclusivePrefixSum(BlockCounts.data(), NumBlocks + 1);
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
#pragma omp for schedule(static, 1) nowait
    for (int B = 0; B < NumBlocks; ++B) {
      Count Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
      Count Pos = BlockCounts[B];
      for (Count I = Lo; I < Hi; ++I)
        if (Keep(I))
          Out[Pos++] = Get(I);
    }
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);
  return Total;
}

} // namespace detail

/// Parallel filter: copies every element of [In, In+N) for which
/// `Keep(Element)` holds into \p Out (preserving order) and returns the
/// number of kept elements. \p Out must have room for N elements.
template <typename T, typename KeepFn>
Count parallelPack(const T *In, Count N, T *Out, KeepFn &&Keep) {
  return detail::packImpl(
      N, Out, [&](Count I) { return Keep(In[I]); },
      [&](Count I) { return In[I]; });
}

/// Parallel index filter: writes every index I in [0, N) for which
/// `Keep(I)` holds into \p Out (ascending) and returns how many were
/// written. \p Out must have room for N elements. The index-based twin of
/// `parallelPack`, for packing positions of set bits out of a dense map.
template <typename OutT, typename KeepFn>
Count parallelPackIndex(Count N, OutT *Out, KeepFn &&Keep) {
  return detail::packImpl(N, Out, Keep,
                          [](Count I) { return static_cast<OutT>(I); });
}

} // namespace graphit

#endif // GRAPHIT_SUPPORT_PARALLEL_H
