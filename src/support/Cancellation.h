//===- support/Cancellation.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for the ordered engines.
///
/// The bucket-round structure of ordered processing gives a natural
/// cancellation point: between rounds every priority strictly below the
/// next bucket key (times Delta) is provably settled, so an interrupted
/// run can report an exact prefix of the final answer rather than an
/// arbitrary tentative state. `CancelToken` carries both a manual flag
/// and an optional wall-clock deadline; the engines poll it once per
/// round (O(1) amortized — never inside the per-edge hot loop), and the
/// eager engine latches the decision in its single-thread bookkeeping
/// block so every OpenMP thread observes the same verdict at the same
/// barrier (a raw clock read in the loop condition would let threads
/// disagree and deadlock).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_CANCELLATION_H
#define GRAPHIT_SUPPORT_CANCELLATION_H

#include "support/Types.h"

#include <atomic>
#include <chrono>

namespace graphit {

/// Shared cancellation token. One writer may `cancel()` at any time (or
/// arm a deadline up front); the engines poll `expired()` at round
/// boundaries. Polling is a relaxed atomic load plus, when a deadline is
/// armed, one steady_clock read — cheap enough for once-per-round use
/// and exactly zero when no token is passed.
class CancelToken {
public:
  CancelToken() = default;

  /// Arms a wall-clock deadline; the token reports expired once
  /// steady_clock passes it.
  void setDeadline(std::chrono::steady_clock::time_point At) {
    Deadline = At;
    HasDeadline = true;
  }

  /// Convenience: deadline \p Micros microseconds from now (<= 0 expires
  /// immediately).
  void setDeadlineAfterMicros(int64_t Micros) {
    setDeadline(std::chrono::steady_clock::now() +
                std::chrono::microseconds(Micros));
  }

  /// Requests cancellation manually (thread-safe, idempotent).
  void cancel() { Cancelled.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the armed deadline.
  bool expired() const {
    if (Cancelled.load(std::memory_order_relaxed))
      return true;
    return HasDeadline && std::chrono::steady_clock::now() >= Deadline;
  }

private:
  std::atomic<bool> Cancelled{false};
  bool HasDeadline = false; ///< set-before-share, read-only afterwards
  std::chrono::steady_clock::time_point Deadline{};
};

/// Per-run resource limits threaded through the pooled algorithm entry
/// points. Default-constructed limits are inert and add no cost.
struct RunLimits {
  /// Cooperative cancellation token (deadline and/or manual), or nullptr.
  const CancelToken *Cancel = nullptr;
  /// Priority-space search budget for point-to-point queries: the run
  /// stops once the bucket lower bound reaches this value, reporting
  /// only provably settled results. kInfiniteDistance disables it.
  Priority MaxDistance = kInfiniteDistance;

  bool active() const {
    return Cancel != nullptr || MaxDistance != kInfiniteDistance;
  }
};

} // namespace graphit

#endif // GRAPHIT_SUPPORT_CANCELLATION_H
