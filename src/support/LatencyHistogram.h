//===- support/LatencyHistogram.h - Lock-free latency histogram -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free, fixed-bucket, log-scale latency histogram for recording
/// per-query end-to-end latencies on the serving hot path.
///
/// The bucket layout is HDR-style: values below 16 get exact unit buckets
/// (sub-microsecond precision where it matters for assertions), and every
/// power-of-two range above that is split into 16 sub-buckets, so the
/// relative quantization error is bounded by 2^-4 ≈ 6.25% everywhere.
/// The bucket count is a small compile-time constant (~1 KB of counters),
/// so instances are cheap enough to keep one per recording thread.
///
/// Concurrency model:
///
///  * `record` is lock-free and wait-free on the fast path — one relaxed
///    `fetch_add` per counter. Many threads may record into the same
///    instance concurrently (the service bench instead keeps one
///    histogram per collector thread and merges at the end, which is the
///    cheapest pattern).
///  * `merge` adds another histogram's counters into this one with
///    relaxed loads; merging while the source is still being recorded
///    into yields a *consistent-per-bucket* snapshot (no torn counters,
///    each bucket is atomically read), which is what a progress report
///    wants. Merge-after-quiesce is exact.
///  * `percentile`/`count`/`mean`/`max` take a relaxed snapshot the same
///    way.
///
/// `percentile(P)` returns the *upper bound* of the bucket containing the
/// P-th percentile observation, so the reported value never understates
/// the true latency and is exact for values below 16.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_LATENCYHISTOGRAM_H
#define GRAPHIT_SUPPORT_LATENCYHISTOGRAM_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace graphit {

class LatencyHistogram {
public:
  /// Sub-bucket resolution: each power-of-two range above `kUnitBuckets`
  /// is split into 2^kSubBucketBits buckets.
  static constexpr uint64_t kSubBucketBits = 4;
  static constexpr uint64_t kSubBuckets = uint64_t{1} << kSubBucketBits;
  /// Values below this get exact unit buckets (index == value).
  static constexpr uint64_t kUnitBuckets = kSubBuckets;
  /// Ranges cover bit positions kSubBucketBits .. 62 (values < 2^63).
  static constexpr size_t kNumRanges = 63 - kSubBucketBits;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kUnitBuckets + kNumRanges * kSubBuckets);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram &) = delete;
  LatencyHistogram &operator=(const LatencyHistogram &) = delete;

  /// Bucket index for \p Value: exact below kUnitBuckets, then 16
  /// sub-buckets per power of two. Values at or above 2^63 clamp into the
  /// last bucket.
  static size_t bucketIndex(uint64_t Value) {
    if (Value < kUnitBuckets)
      return static_cast<size_t>(Value);
    uint64_t K = highestBit(Value); // >= kSubBucketBits
    if (K >= 63)
      return kNumBuckets - 1;
    uint64_t Sub = (Value >> (K - kSubBucketBits)) - kSubBuckets;
    return static_cast<size_t>(kUnitBuckets +
                               (K - kSubBucketBits) * kSubBuckets + Sub);
  }

  /// Smallest value mapping to bucket \p Index.
  static uint64_t bucketLowerBound(size_t Index) {
    if (Index < kUnitBuckets)
      return Index;
    uint64_t Range = (Index - kUnitBuckets) / kSubBuckets;
    uint64_t Sub = (Index - kUnitBuckets) % kSubBuckets;
    return (kSubBuckets + Sub) << Range;
  }

  /// Largest value mapping to bucket \p Index (what percentile reports).
  static uint64_t bucketUpperBound(size_t Index) {
    if (Index < kUnitBuckets)
      return Index;
    uint64_t Range = (Index - kUnitBuckets) / kSubBuckets;
    return bucketLowerBound(Index) + ((uint64_t{1} << Range) - 1);
  }

  /// Records one observation (microseconds by convention, but any
  /// non-negative integer unit works). Lock-free; safe to call
  /// concurrently with any other member.
  void record(uint64_t Value) {
    Counts[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
    Count_.fetch_add(1, std::memory_order_relaxed);
    Sum_.fetch_add(Value, std::memory_order_relaxed);
    uint64_t Prev = Max_.load(std::memory_order_relaxed);
    while (Prev < Value &&
           !Max_.compare_exchange_weak(Prev, Value,
                                       std::memory_order_relaxed))
      ;
  }

  /// Adds \p Other's counters into this histogram (relaxed per-bucket
  /// snapshot of the source; exact when the source has quiesced).
  void merge(const LatencyHistogram &Other) {
    for (size_t I = 0; I < kNumBuckets; ++I) {
      uint64_t C = Other.Counts[I].load(std::memory_order_relaxed);
      if (C)
        Counts[I].fetch_add(C, std::memory_order_relaxed);
    }
    Count_.fetch_add(Other.Count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    Sum_.fetch_add(Other.Sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    uint64_t OtherMax = Other.Max_.load(std::memory_order_relaxed);
    uint64_t Prev = Max_.load(std::memory_order_relaxed);
    while (Prev < OtherMax &&
           !Max_.compare_exchange_weak(Prev, OtherMax,
                                       std::memory_order_relaxed))
      ;
  }

  /// A plain, copyable point-in-time copy of the counters. Two snapshots
  /// of the same histogram subtract into a *windowed* view through
  /// `windowSince`, which is how the QueryEngine controller reads
  /// per-class latency over its last control interval without resetting
  /// a histogram recorders are still writing into (`reset` is not
  /// concurrency-safe; snapshot deltas are).
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> Counts{};
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Max = 0;

    /// Same contract as LatencyHistogram::percentile on the snapshot's
    /// buckets — in particular, **0 when the snapshot (or window) holds
    /// no observations**, never a bucket upper bound.
    uint64_t percentile(double P) const {
      return percentileFromCounts(Counts, P);
    }
    uint64_t count() const { return Count; }
    uint64_t sum() const { return Sum; }
    uint64_t max() const { return Max; }
    double mean() const {
      return Count == 0 ? 0.0
                        : static_cast<double>(Sum) /
                              static_cast<double>(Count);
    }
  };

  /// Relaxed per-bucket copy of the live counters (same consistency as
  /// `merge` from a still-recording source: no torn buckets, exact after
  /// quiesce). Safe to call concurrently with `record`.
  Snapshot snapshot() const {
    Snapshot S;
    for (size_t I = 0; I < kNumBuckets; ++I)
      S.Counts[I] = Counts[I].load(std::memory_order_relaxed);
    S.Count = Count_.load(std::memory_order_relaxed);
    S.Sum = Sum_.load(std::memory_order_relaxed);
    S.Max = Max_.load(std::memory_order_relaxed);
    return S;
  }

  /// Observations recorded between \p Prev and \p Now — two snapshots of
  /// the *same* histogram with Prev taken earlier. Per-field saturating
  /// subtraction (a concurrent recorder can make independently-loaded
  /// counters appear momentarily inconsistent; the window never
  /// underflows). `Max` carries Now's lifetime max — a per-window max is
  /// not recoverable from monotone counters.
  static Snapshot windowSince(const Snapshot &Now, const Snapshot &Prev) {
    Snapshot W;
    for (size_t I = 0; I < kNumBuckets; ++I)
      W.Counts[I] =
          Now.Counts[I] >= Prev.Counts[I] ? Now.Counts[I] - Prev.Counts[I]
                                          : 0;
    W.Count = Now.Count >= Prev.Count ? Now.Count - Prev.Count : 0;
    W.Sum = Now.Sum >= Prev.Sum ? Now.Sum - Prev.Sum : 0;
    W.Max = Now.Max;
    return W;
  }

  /// Upper bound of the bucket holding the \p P-th percentile observation
  /// (P in [0, 100]; rank = ceil(P/100 × count), clamped to at least 1).
  /// 0 when empty. Exact for observations below kUnitBuckets; within
  /// 2^-kSubBucketBits relative error above.
  uint64_t percentile(double P) const {
    std::array<uint64_t, kNumBuckets> Snap;
    for (size_t I = 0; I < kNumBuckets; ++I)
      Snap[I] = Counts[I].load(std::memory_order_relaxed);
    return percentileFromCounts(Snap, P);
  }

  /// Observations recorded so far.
  uint64_t count() const { return Count_.load(std::memory_order_relaxed); }

  /// Sum of all recorded values (mean() = sum / count).
  uint64_t sum() const { return Sum_.load(std::memory_order_relaxed); }

  double mean() const {
    uint64_t C = Count_.load(std::memory_order_relaxed);
    return C == 0 ? 0.0
                  : static_cast<double>(
                        Sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(C);
  }

  /// Largest value recorded (exact, not bucket-quantized). 0 when empty.
  uint64_t max() const { return Max_.load(std::memory_order_relaxed); }

  /// Count in one bucket (for tests and custom reports).
  uint64_t bucketCount(size_t Index) const {
    return Counts[Index].load(std::memory_order_relaxed);
  }

  /// Zeroes every counter. NOT safe against concurrent record/merge —
  /// quiesce recorders first (per-round reuse in a single-threaded
  /// reporting loop is the intended use).
  void reset() {
    for (size_t I = 0; I < kNumBuckets; ++I)
      Counts[I].store(0, std::memory_order_relaxed);
    Count_.store(0, std::memory_order_relaxed);
    Sum_.store(0, std::memory_order_relaxed);
    Max_.store(0, std::memory_order_relaxed);
  }

private:
  /// Shared ceil-rank percentile over a plain bucket array (the live
  /// histogram and Snapshot both delegate here). 0 when the buckets hold
  /// no observations.
  static uint64_t
  percentileFromCounts(const std::array<uint64_t, kNumBuckets> &Snap,
                       double P) {
    uint64_t Total = 0;
    for (size_t I = 0; I < kNumBuckets; ++I)
      Total += Snap[I];
    if (Total == 0)
      return 0;
    if (P < 0.0)
      P = 0.0;
    if (P > 100.0)
      P = 100.0;
    uint64_t Rank = static_cast<uint64_t>(P / 100.0 *
                                          static_cast<double>(Total));
    if (static_cast<double>(Rank) * 100.0 <
        P * static_cast<double>(Total))
      ++Rank; // ceil
    if (Rank < 1)
      Rank = 1;
    uint64_t Seen = 0;
    for (size_t I = 0; I < kNumBuckets; ++I) {
      Seen += Snap[I];
      if (Seen >= Rank)
        return bucketUpperBound(I);
    }
    return bucketUpperBound(kNumBuckets - 1);
  }

  /// Position of the highest set bit (undefined for 0; callers guarantee
  /// Value >= kUnitBuckets here).
  static uint64_t highestBit(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
    return 63 - static_cast<uint64_t>(__builtin_clzll(V));
#else
    uint64_t K = 0;
    while (V >>= 1)
      ++K;
    return K;
#endif
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> Counts{};
  std::atomic<uint64_t> Count_{0};
  std::atomic<uint64_t> Sum_{0};
  std::atomic<uint64_t> Max_{0};
};

} // namespace graphit

#endif // GRAPHIT_SUPPORT_LATENCYHISTOGRAM_H
