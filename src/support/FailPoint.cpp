//===- support/FailPoint.cpp - Deterministic fault injection --------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#if GRAPHIT_FAILPOINTS

#include "support/Random.h"
#include "support/ThreadSafety.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace graphit {
namespace failpoints {
namespace {

struct PointConfig {
  double Probability = 0.0; ///< throw-mode fire probability
  int64_t SleepMillis = 0;  ///< > 0: sleep instead of throwing
  uint64_t MaxFires = 0;    ///< 0 = unlimited
  uint64_t Fires = 0;
};

struct Registry {
  Mutex Mu;
  std::map<std::string, PointConfig> Points GUARDED_BY(Mu);
  SplitMix64 Rng GUARDED_BY(Mu){0x5EEDF417ULL};
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

void evaluate(const char *Name) {
  Registry &R = registry();
  int64_t SleepMillis = -1;
  {
    MutexLock Lock(R.Mu);
    if (R.Points.empty())
      return;
    auto It = R.Points.find(Name);
    if (It == R.Points.end())
      return;
    PointConfig &P = It->second;
    if (P.MaxFires != 0 && P.Fires >= P.MaxFires)
      return;
    if (P.SleepMillis <= 0 && R.Rng.nextDouble() >= P.Probability)
      return;
    ++P.Fires;
    SleepMillis = P.SleepMillis;
  }
  if (SleepMillis > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(SleepMillis));
    return;
  }
  throw FailPointError(Name);
}

void activate(const std::string &Name, double Probability,
              uint64_t MaxFires) {
  Registry &R = registry();
  MutexLock Lock(R.Mu);
  PointConfig &P = R.Points[Name];
  P.Probability = Probability;
  P.SleepMillis = 0;
  P.MaxFires = MaxFires;
  P.Fires = 0;
}

void activateDelay(const std::string &Name, int64_t Millis) {
  Registry &R = registry();
  MutexLock Lock(R.Mu);
  PointConfig &P = R.Points[Name];
  P.Probability = 0.0;
  P.SleepMillis = Millis;
  P.MaxFires = 0;
  P.Fires = 0;
}

void deactivate(const std::string &Name) {
  Registry &R = registry();
  MutexLock Lock(R.Mu);
  R.Points.erase(Name);
}

void reset() {
  Registry &R = registry();
  MutexLock Lock(R.Mu);
  R.Points.clear();
}

void reseed(uint64_t Seed) {
  Registry &R = registry();
  MutexLock Lock(R.Mu);
  R.Rng = SplitMix64(Seed);
  for (auto &Entry : R.Points)
    Entry.second.Fires = 0;
}

uint64_t fireCount(const std::string &Name) {
  Registry &R = registry();
  MutexLock Lock(R.Mu);
  auto It = R.Points.find(Name);
  return It == R.Points.end() ? 0 : It->second.Fires;
}

std::string configureFromEnv() {
  // Both reads happen once at startup before any worker thread exists.
  const char *Spec = std::getenv("GRAPHIT_FAILPOINTS"); // NOLINT(concurrency-mt-unsafe)
  if (!Spec || !*Spec)
    return std::string();
  if (const char *SeedStr = std::getenv("GRAPHIT_FAILPOINTS_SEED")) // NOLINT(concurrency-mt-unsafe)
    reseed(std::strtoull(SeedStr, nullptr, 10));

  // Grammar: comma-separated `name=P[*N]` or `name=sleep(MS)`; the
  // pseudo-name `all` targets every registered point.
  std::string Armed = "failpoints:";
  std::string Input(Spec);
  size_t Pos = 0;
  while (Pos < Input.size()) {
    size_t End = Input.find(',', Pos);
    if (End == std::string::npos)
      End = Input.size();
    std::string Item = Input.substr(Pos, End - Pos);
    Pos = End + 1;
    // Point names and schedule values never contain whitespace, so strip
    // any the shell preserved (" name = 1.0 * 2 " parses like "name=1.0*2").
    Item.erase(std::remove_if(
                   Item.begin(), Item.end(),
                   [](unsigned char C) { return std::isspace(C) != 0; }),
               Item.end());
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      continue;
    std::string Name = Item.substr(0, Eq);
    std::string Value = Item.substr(Eq + 1);
    auto armOne = [&](const std::string &Target) {
      if (Value.rfind("sleep(", 0) == 0) {
        activateDelay(Target,
                      std::strtoll(Value.c_str() + 6, nullptr, 10));
        return;
      }
      char *Rest = nullptr;
      double Prob = std::strtod(Value.c_str(), &Rest);
      uint64_t MaxFires = 0;
      if (Rest && *Rest == '*')
        MaxFires = std::strtoull(Rest + 1, nullptr, 10);
      activate(Target, Prob, MaxFires);
    };
    if (Name == "all") {
      for (const char *P : kAllPoints)
        armOne(P);
    } else {
      armOne(Name);
    }
    Armed += " " + Name + "=" + Value;
  }
  return Armed;
}

} // namespace failpoints
} // namespace graphit

#endif // GRAPHIT_FAILPOINTS
