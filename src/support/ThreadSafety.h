//===- support/ThreadSafety.h - Compile-time lock contracts -----*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang thread-safety annotations plus the annotated lock primitives the
/// serving stack is written against.
///
/// The concurrency contracts of `src/service/` — which mutex guards which
/// field, which functions require a lock already held, in which order the
/// QueryEngine's four mutexes nest — used to live in comments and in the
/// TSan job's ability to catch a violation at runtime. This header turns
/// them into compile-time facts: under Clang, `-Wthread-safety` (and the
/// `analyze` CI gate's `-Werror=thread-safety-analysis`) rejects any
/// access to a `GUARDED_BY` field without its mutex, any call to a
/// `REQUIRES` function without the capability, and any acquisition that
/// contradicts a declared `ACQUIRED_BEFORE` order. Under GCC (which has
/// no such analysis) every macro expands to nothing and `Mutex` /
/// `MutexLock` compile to exactly the `std::mutex` / RAII-guard code they
/// wrap — zero behavioral or performance difference.
///
/// libstdc++'s `std::mutex` and `std::lock_guard` carry no annotations,
/// so the analysis cannot see acquisitions made through them. The
/// annotated wrappers below are therefore mandatory in annotated code:
///
///  * `Mutex` — a `CAPABILITY`-annotated `std::mutex`.
///  * `MutexLock` — a `SCOPED_CAPABILITY` RAII guard over a `Mutex`,
///    exposing the underlying `std::unique_lock` for
///    `std::condition_variable` waits (the capability is held whenever a
///    wait's predicate runs, so guarded reads inside wait loops analyze
///    correctly).
///  * `DynamicLockSet` — RAII over a *runtime-sized, ascending-ordered*
///    set of mutexes (the sharded store's per-shard writer locks). A
///    dynamically sized lock set is beyond any static analysis, so this
///    one audited helper is the single place the analysis is switched
///    off; everything layered on top of it stays fully analyzed.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_THREADSAFETY_H
#define GRAPHIT_SUPPORT_THREADSAFETY_H

#include "support/FailPoint.h"

#include <mutex>
#include <vector>

// ---------------------------------------------------------------------------
// Attribute macros (the canonical set from the Clang thread-safety docs).
// No-ops on compilers without the attribute family (GCC, MSVC).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define GRAPHIT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GRAPHIT_THREAD_ANNOTATION
#define GRAPHIT_THREAD_ANNOTATION(x) // no-op on non-Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define CAPABILITY(x) GRAPHIT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY GRAPHIT_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the given mutex.
#define GUARDED_BY(x) GRAPHIT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the given mutex.
#define PT_GUARDED_BY(x) GRAPHIT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a lock-ordering edge: this mutex is always acquired before
/// the listed ones. The analysis owns the ordering instead of a comment.
#define ACQUIRED_BEFORE(...) GRAPHIT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GRAPHIT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held on entry (and does not release).
#define REQUIRES(...) GRAPHIT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...)                                                   \
  GRAPHIT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define ACQUIRE(...) GRAPHIT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...)                                                    \
  GRAPHIT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GRAPHIT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...)                                                    \
  GRAPHIT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...)                                                       \
  GRAPHIT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define EXCLUDES(...) GRAPHIT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the capability is held.
#define ASSERT_CAPABILITY(x) GRAPHIT_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) GRAPHIT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Forbidden in
/// src/service/ (the analyze gate's contract); uses elsewhere carry an
/// inline justification comment.
#define NO_THREAD_SAFETY_ANALYSIS                                              \
  GRAPHIT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace graphit {

// ---------------------------------------------------------------------------
// Annotated lock primitives.
// ---------------------------------------------------------------------------

/// An annotated `std::mutex`. Same cost, same semantics; the capability
/// annotation is what lets `-Wthread-safety` connect acquisitions to the
/// `GUARDED_BY` fields they protect.
class CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() ACQUIRE() { M.lock(); }
  void unlock() RELEASE() { M.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return M.try_lock(); }

  /// The wrapped mutex, for `std::condition_variable` interop only (a
  /// wait must temporarily release the *native* lock). Never lock or
  /// unlock through this directly — that would bypass the analysis.
  std::mutex &native() { return M; }

private:
  std::mutex M;
};

/// RAII guard over a `Mutex`: acquires on construction, releases on
/// destruction. Holds a `std::unique_lock` internally so condition
/// variables can wait through `native()`; the capability is held at every
/// point a wait predicate runs, so guarded reads in wait loops are
/// correctly accepted by the analysis.
class SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) ACQUIRE(M) : Inner(M.native()) {}
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;
  ~MutexLock() RELEASE() {}

  /// The owned `std::unique_lock`, for `Cv.wait(Lock.native())` /
  /// `wait_until` only. A wait re-acquires before returning, so the
  /// scoped capability stays truthful across it.
  std::unique_lock<std::mutex> &native() { return Inner; }

private:
  std::unique_lock<std::mutex> Inner;
};

/// RAII over a runtime-sized set of mutexes, acquired in the caller's
/// (ascending, deduplicated) order — the deadlock-free total order the
/// sharded store locks its shards in. An optional fail point is evaluated
/// before each acquisition; a simulated acquisition failure releases
/// every lock already taken and retries the whole set from scratch, so
/// partial lock sets never leak and the ascending order is preserved
/// across retries.
///
/// A dynamically sized lock set cannot be expressed to the thread-safety
/// analysis (capabilities are static expressions), so this constructor /
/// destructor pair is the one audited place the analysis is disabled.
/// Callers get leak-proof scoped acquisition with no annotation escapes
/// of their own.
class DynamicLockSet {
public:
  /// \p Ordered must be sorted ascending by address-stable caller order
  /// (shard index) and duplicate-free.
  explicit DynamicLockSet(std::vector<Mutex *> Ordered,
                          const char *FailPointName = nullptr)
      NO_THREAD_SAFETY_ANALYSIS // justified: runtime-sized lock set; the
                                // static analysis cannot name N mutexes.
      : Locks(std::move(Ordered)) {
    for (;;) {
      size_t Taken = 0;
      try {
        for (; Taken < Locks.size(); ++Taken) {
          if (FailPointName)
            // graphit-lint: allow(failpoint-registration): forwards the
            // caller's already-registered site name (e.g. "shard.lock").
            GRAPHIT_FAIL_POINT(FailPointName);
          Locks[Taken]->lock();
        }
        return;
      } catch (const failpoints::FailPointError &) {
        while (Taken > 0)
          Locks[--Taken]->unlock();
      }
    }
  }

  DynamicLockSet(const DynamicLockSet &) = delete;
  DynamicLockSet &operator=(const DynamicLockSet &) = delete;

  /// Releases the whole set early, in reverse order (idempotent; the
  /// destructor then does nothing). For callers that must drop the shard
  /// locks before invoking something that re-acquires them, e.g. global
  /// compaction after a triggering apply.
  void release() NO_THREAD_SAFETY_ANALYSIS { // justified: see ctor
    for (size_t I = Locks.size(); I > 0; --I)
      Locks[I - 1]->unlock();
    Locks.clear();
  }

  ~DynamicLockSet() { release(); }

private:
  std::vector<Mutex *> Locks;
};

} // namespace graphit

#endif // GRAPHIT_SUPPORT_THREADSAFETY_H
