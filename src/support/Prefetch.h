//===- support/Prefetch.h - Software prefetch hints -------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable software-prefetch wrappers for the relax hot loops. The access
/// pattern there is "walk a contiguous adjacency row, load one scattered
/// distance word per edge" — the adjacency stream the hardware prefetcher
/// handles, the scattered loads it cannot. Issuing a prefetch for the
/// distance word of the neighbor a few edges ahead overlaps that miss with
/// the current edge's work.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_PREFETCH_H
#define GRAPHIT_SUPPORT_PREFETCH_H

namespace graphit {

/// How many edges ahead the relax loops prefetch the destination's
/// distance word. Far enough to cover a cache miss at typical per-edge
/// cost, near enough that the line is still resident when the loop
/// arrives (and that short adjacency rows still issue some prefetches).
inline constexpr long kPrefetchDistance = 8;

/// Hints that \p Addr will be read soon. No-op where unsupported.
inline void prefetchRead(const void *Addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(Addr, /*rw=*/0, /*locality=*/3);
#else
  (void)Addr;
#endif
}

/// Hints that \p Addr will be written soon (read-for-ownership).
inline void prefetchWrite(const void *Addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(Addr, /*rw=*/1, /*locality=*/3);
#else
  (void)Addr;
#endif
}

} // namespace graphit

#endif // GRAPHIT_SUPPORT_PREFETCH_H
