//===- support/Casting.h - LLVM-style RTTI helpers --------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled `isa<> / cast<> / dyn_cast<>` in the style of LLVM's
/// Support/Casting.h, driven by a static `classof(const Base *)` on each
/// derived class. Used by the DSL's AST hierarchy; no vtables or
/// `dynamic_cast` required.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_CASTING_H
#define GRAPHIT_SUPPORT_CASTING_H

#include <cassert>

namespace graphit {

/// True if \p Node is an instance of To (or a subclass), per To::classof.
template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa<> on a null pointer");
  return To::classof(Node);
}

/// Checked downcast; asserts on mismatch.
template <typename To, typename From> To *cast(From *Node) {
  assert(isa<To>(Node) && "cast<> type mismatch");
  return static_cast<To *>(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast<> type mismatch");
  return static_cast<const To *>(Node);
}

/// Checking downcast; returns null on mismatch.
template <typename To, typename From> To *dyn_cast(From *Node) {
  return Node && To::classof(Node) ? static_cast<To *>(Node) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast(const From *Node) {
  return Node && To::classof(Node) ? static_cast<const To *>(Node)
                                   : nullptr;
}

} // namespace graphit

#endif // GRAPHIT_SUPPORT_CASTING_H
