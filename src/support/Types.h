//===- support/Types.h - Fundamental scalar types ---------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fundamental integer types shared across the whole library.
///
/// Vertex identifiers are 32-bit (the paper's largest graph has 125M
/// vertices), edge offsets are 64-bit, and both edge weights and priorities
/// are 64-bit so that path lengths and coarsened priorities never overflow.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_TYPES_H
#define GRAPHIT_SUPPORT_TYPES_H

#include <cstdint>
#include <limits>

namespace graphit {

/// Identifier of a vertex: a dense index in [0, numNodes).
using VertexId = uint32_t;

/// Signed 64-bit count of vertices or edges.
using Count = int64_t;

/// Edge weight. Signed so that weight arithmetic can be checked; the ordered
/// algorithms require non-negative weights.
using Weight = int32_t;

/// A priority value, e.g. a tentative shortest-path distance or a vertex
/// degree. Also the domain of bucket keys after priority coarsening.
using Priority = int64_t;

/// Sentinel for "no priority assigned yet" (the paper's null priority).
inline constexpr Priority kNullPriority =
    std::numeric_limits<Priority>::max();

/// Sentinel for an invalid vertex.
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel distance for unreached vertices (a very large value that still
/// survives `x + maxWeight` without overflow).
inline constexpr Priority kInfiniteDistance =
    std::numeric_limits<Priority>::max() / 4;

} // namespace graphit

#endif // GRAPHIT_SUPPORT_TYPES_H
