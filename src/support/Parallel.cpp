//===- support/Parallel.cpp - OpenMP parallel primitives ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include "support/TSanAnnotate.h"

#include <omp.h>

using namespace graphit;

#ifdef GRAPHIT_TSAN_ENABLED
// Pairing address for the pre-region sync gate (see TSanAnnotate.h).
extern "C" char GraphitTsanRegionGate;
char GraphitTsanRegionGate = 0;
#endif

int graphit::getNumWorkers() { return omp_get_max_threads(); }

void graphit::setNumWorkers(int NumWorkers) {
  omp_set_num_threads(NumWorkers);
}

int64_t graphit::exclusivePrefixSum(int64_t *Values, Count N) {
  if (N == 0)
    return 0;
  if (N < 4096) {
    int64_t Running = 0;
    for (Count I = 0; I < N; ++I) {
      int64_t V = Values[I];
      Values[I] = Running;
      Running += V;
    }
    return Running;
  }

  int NumBlocks = std::max(1, getNumWorkers() * 4);
  Count BlockSize = (N + NumBlocks - 1) / NumBlocks;
  std::vector<int64_t> BlockTotals(NumBlocks, 0);
  int Tag = 0;
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
#pragma omp for schedule(static, 1) nowait
    for (int B = 0; B < NumBlocks; ++B) {
      Count Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
      int64_t Sum = 0;
      for (Count I = Lo; I < Hi; ++I)
        Sum += Values[I];
      BlockTotals[B] = Sum;
    }
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);
  int64_t Running = 0;
  for (int B = 0; B < NumBlocks; ++B) {
    int64_t V = BlockTotals[B];
    BlockTotals[B] = Running;
    Running += V;
  }
  GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&Tag);
#pragma omp for schedule(static, 1) nowait
    for (int B = 0; B < NumBlocks; ++B) {
      Count Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
      int64_t Prefix = BlockTotals[B];
      for (Count I = Lo; I < Hi; ++I) {
        int64_t V = Values[I];
        Values[I] = Prefix;
        Prefix += V;
      }
    }
    GRAPHIT_OMP_REGION_END(&Tag);
  }
  GRAPHIT_OMP_REGION_EXIT(&Tag);
  return Running;
}
