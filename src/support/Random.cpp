//===- support/Random.cpp - Deterministic pseudo-random numbers -----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

uint64_t graphit::hash64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}
