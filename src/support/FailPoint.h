//===- support/FailPoint.h - Deterministic fault injection ------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, compile-time-gated fault injection for the serving
/// stack.
///
/// A fail point is a named site in runtime code (snapshot publish, shard
/// lock acquisition, compaction rebuild/replay, state-pool growth) where
/// a transient fault can be injected on demand. Sites are spelled
///
///   GRAPHIT_FAIL_POINT("snapshot.publish");
///
/// and cost exactly nothing unless the library is configured with
/// -DGRAPHIT_FAILPOINTS=ON (the macro then calls into a mutex-guarded
/// registry; otherwise it expands to an empty inline function the
/// compiler deletes). An active point either throws `FailPointError`
/// with a configured probability — drawn from a seeded SplitMix64 stream
/// so a failing schedule replays bit-identically — or sleeps for a fixed
/// delay (to widen race windows deterministically).
///
/// Activation is programmatic (`failpoints::activate`) or environmental:
///
///   GRAPHIT_FAILPOINTS="snapshot.publish=0.2,shard.lock=0.5*3,
///                       compaction.rebuild=sleep(50),all=0.1"
///   GRAPHIT_FAILPOINTS_SEED=12345
///
/// `name=P` fires with probability P in [0,1]; `*N` caps total fires;
/// `sleep(MS)` delays instead of throwing; `all=` applies to every
/// registered point name.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_FAILPOINT_H
#define GRAPHIT_SUPPORT_FAILPOINT_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace graphit {
namespace failpoints {

/// The exception an armed fail point throws. Sites that inject faults
/// catch this (or std::exception) and exercise their recovery path.
class FailPointError : public std::runtime_error {
public:
  explicit FailPointError(const std::string &Point)
      : std::runtime_error("fail point fired: " + Point) {}
};

/// Names of every registered injection site, for "activate everything"
/// loops in the stress harness and tests.
inline constexpr const char *kAllPoints[] = {
    "snapshot.publish",   "shard.lock",     "compaction.rebuild",
    "compaction.replay",  "statepool.grow",
};

#if GRAPHIT_FAILPOINTS

inline constexpr bool kFailPointsEnabled = true;

/// Evaluates the named point: throws FailPointError or sleeps when the
/// point is active and its dice roll fires; no-op otherwise.
void evaluate(const char *Name);

/// Arms \p Name to throw with probability \p Probability per evaluation;
/// \p MaxFires caps total fires (0 = unlimited).
void activate(const std::string &Name, double Probability,
              uint64_t MaxFires = 0);

/// Arms \p Name to sleep \p Millis per evaluation instead of throwing
/// (for widening race windows, e.g. the compaction replay gap).
void activateDelay(const std::string &Name, int64_t Millis);

/// Disarms one point / every point.
void deactivate(const std::string &Name);
void reset();

/// Reseeds the deterministic dice stream (also clears per-point fire
/// counters so a schedule replays exactly).
void reseed(uint64_t Seed);

/// Times the named point has fired (thrown or slept) since last reseed.
uint64_t fireCount(const std::string &Name);

/// Parses GRAPHIT_FAILPOINTS / GRAPHIT_FAILPOINTS_SEED from the
/// environment. Returns a human-readable description of what was armed
/// ("" when the variable is unset) so harnesses can log the schedule.
std::string configureFromEnv();

#else

inline constexpr bool kFailPointsEnabled = false;

inline void evaluate(const char *) {}
inline void activate(const std::string &, double, uint64_t = 0) {}
inline void activateDelay(const std::string &, int64_t) {}
inline void deactivate(const std::string &) {}
inline void reset() {}
inline void reseed(uint64_t) {}
inline uint64_t fireCount(const std::string &) { return 0; }
inline std::string configureFromEnv() { return std::string(); }

#endif // GRAPHIT_FAILPOINTS

} // namespace failpoints
} // namespace graphit

/// The injection-site macro. Always compiles (so recovery paths that
/// catch FailPointError never need #if guards); resolves to a deleted
/// empty call when fail points are compiled out.
#define GRAPHIT_FAIL_POINT(NAME) ::graphit::failpoints::evaluate(NAME)

#endif // GRAPHIT_SUPPORT_FAILPOINT_H
