//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic PRNG. Every generator in the repository is
/// seeded explicitly so that datasets, weights, and experiments are exactly
/// reproducible across runs and thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_RANDOM_H
#define GRAPHIT_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace graphit {

/// SplitMix64: tiny, fast, and statistically solid enough for workload
/// generation. Also usable as a stateless hash via `hash64`.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// \returns the next 64 random bits.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform integer in [Lo, Hi). Requires Lo < Hi.
  int64_t nextInt(int64_t Lo, int64_t Hi) {
    assert(Lo < Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi - Lo);
    return Lo + static_cast<int64_t>(next() % Span);
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

/// Stateless 64-bit mix of \p X (one SplitMix64 step). Handy for building
/// per-index random values that are independent of iteration order.
uint64_t hash64(uint64_t X);

} // namespace graphit

#endif // GRAPHIT_SUPPORT_RANDOM_H
