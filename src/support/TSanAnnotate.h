//===- support/TSanAnnotate.h - ThreadSanitizer HB annotations --*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Happens-before annotations that make OpenMP fork/join and barrier
/// synchronization visible to ThreadSanitizer.
///
/// GCC's libgomp is not TSan-instrumented: its barriers and join points
/// synchronize through futexes TSan cannot see, so every value handed
/// across a barrier — including the results of a plain `omp parallel for`
/// — is reported as a race. Blanket-suppressing libgomp frames would also
/// hide *real* races inside parallel regions, so instead each parallel
/// primitive in this codebase publishes the edges itself:
///
///   GRAPHIT_TSAN_RELEASE(tag)  before a synchronization point (worker
///                              done, pre-barrier)
///   GRAPHIT_TSAN_ACQUIRE(tag)  after it (caller resumes, post-barrier)
///   GRAPHIT_OMP_BARRIER(tag)   an `omp barrier` with edges on both sides
///
/// The annotations pair by address; a stack variable scoped to the region
/// is the usual tag. They expand to nothing outside TSan builds, and they
/// never *hide* a race between concurrently running iterations — edges are
/// only added where libgomp really synchronizes.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_SUPPORT_TSANANNOTATE_H
#define GRAPHIT_SUPPORT_TSANANNOTATE_H

#if defined(__SANITIZE_THREAD__)
#define GRAPHIT_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GRAPHIT_TSAN_ENABLED 1
#endif
#endif

#ifdef GRAPHIT_TSAN_ENABLED

#include <cstddef>
#include <omp.h>

extern "C" {
void AnnotateHappensBefore(const char *File, int Line,
                           const volatile void *Addr);
void AnnotateHappensAfter(const char *File, int Line,
                          const volatile void *Addr);
void AnnotateIgnoreWritesBegin(const char *File, int Line);
void AnnotateIgnoreWritesEnd(const char *File, int Line);

/// Global gate tag for the pre-region sync round (defined in Parallel.cpp).
extern char GraphitTsanRegionGate;
}

#define GRAPHIT_TSAN_RELEASE(Addr)                                            \
  AnnotateHappensBefore(__FILE__, __LINE__, (const volatile void *)(Addr))
#define GRAPHIT_TSAN_ACQUIRE(Addr)                                            \
  AnnotateHappensAfter(__FILE__, __LINE__, (const volatile void *)(Addr))

// Immediately before `#pragma omp parallel`. Closes the two TSan blind
// spots of the closure handoff:
//
//  1. The compiler stores the region's closure struct (shared-variable
//     addresses, loop bounds) into the caller's frame *at the pragma*, and
//     each worker's prologue loads it through a restrict pointer *before*
//     any statement of ours runs — libgomp's team wake-up is invisible to
//     TSan, so those loads would pair with whatever unrelated write last
//     landed on the recycled stack slots. A preliminary *capture-free*
//     parallel round gives every pool thread an acquire on a global gate
//     (no closure, so nothing in it can race); the caller's release before
//     it covers all of the caller's — and transitively all previous
//     workers' — earlier writes.
//  2. The closure stores themselves still follow that release, so the
//     caller ignores its own writes across the handoff; the master ends
//     the ignore as its first in-region statement (REGION_BEGIN), leaving
//     only the closure stores in the window.
#define GRAPHIT_OMP_REGION_ENTER(Addr)                                        \
  do {                                                                        \
    GRAPHIT_TSAN_RELEASE(Addr);                                               \
    GRAPHIT_TSAN_RELEASE(&GraphitTsanRegionGate);                             \
    _Pragma("omp parallel")                                                   \
    { GRAPHIT_TSAN_ACQUIRE(&GraphitTsanRegionGate); }                         \
    AnnotateIgnoreWritesBegin(__FILE__, __LINE__);                            \
  } while (0)

// First statement inside the region body. The master (the encountering
// thread) stops ignoring writes — only the closure stores fall inside the
// ignore window — and every thread acquires the caller's published state.
#define GRAPHIT_OMP_REGION_BEGIN(Addr)                                        \
  do {                                                                        \
    if (omp_get_thread_num() == 0)                                            \
      AnnotateIgnoreWritesEnd(__FILE__, __LINE__);                            \
    GRAPHIT_TSAN_ACQUIRE(Addr);                                               \
  } while (0)

// Last statement inside the region body: publish this thread's writes for
// the caller to acquire after the (TSan-invisible) join barrier.
#define GRAPHIT_OMP_REGION_END(Addr) GRAPHIT_TSAN_RELEASE(Addr)

// Immediately after the region: acquire every worker's published writes.
#define GRAPHIT_OMP_REGION_EXIT(Addr) GRAPHIT_TSAN_ACQUIRE(Addr)

#else

// Consume the tag expression so tag variables don't trip -Wunused in
// regular builds; no code is generated.
#define GRAPHIT_TSAN_RELEASE(Addr) ((void)(Addr))
#define GRAPHIT_TSAN_ACQUIRE(Addr) ((void)(Addr))
#define GRAPHIT_OMP_REGION_ENTER(Addr) ((void)(Addr))
#define GRAPHIT_OMP_REGION_BEGIN(Addr) ((void)(Addr))
#define GRAPHIT_OMP_REGION_END(Addr) ((void)(Addr))
#define GRAPHIT_OMP_REGION_EXIT(Addr) ((void)(Addr))

#endif

/// An `omp barrier` every thread passes, with the happens-before edges TSan
/// needs on both sides (all pre-barrier writes visible to all threads after
/// it).
#define GRAPHIT_OMP_BARRIER(Addr)                                             \
  do {                                                                        \
    GRAPHIT_TSAN_RELEASE(Addr);                                               \
    _Pragma("omp barrier");                                                   \
    GRAPHIT_TSAN_ACQUIRE(Addr);                                               \
  } while (0)

#endif // GRAPHIT_SUPPORT_TSANANNOTATE_H
