//===- algorithms/KCore.h - k-core decomposition ----------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// k-core decomposition by parallel peeling (§6.1): every vertex's coreness
/// (the largest k such that it belongs to the k-core) is computed by
/// repeatedly removing the minimum-degree bucket. Priorities are induced
/// degrees; they change by -1 per removed neighbor, which is exactly the
/// constant-sum pattern the `lazy_constant_sum` histogram schedule
/// accelerates (Fig. 10). Priority coarsening is NOT applicable (§2).
///
/// Strategies: `lazy_constant_sum` (default, Julienne-style histogram),
/// `lazy` (per-edge atomic decrements), and `eager` (thread-local degree
/// buckets — included because Table 7 quantifies how much slower it is than
/// lazy for k-core's many redundant updates).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_KCORE_H
#define GRAPHIT_ALGORITHMS_KCORE_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"

#include <vector>

namespace graphit {

/// Result of k-core decomposition.
struct KCoreResult {
  std::vector<Priority> Coreness;
  Priority MaxCore = 0;
  OrderedStats Stats;
};

/// Ordered parallel k-core under schedule \p S. Requires a symmetric graph.
KCoreResult kCoreDecomposition(const Graph &G, const Schedule &S);

/// Unordered baseline (Fig. 1): wave-based peeling that rescans the alive
/// set for vertices of degree <= k instead of bucketing by degree.
KCoreResult kCoreUnordered(const Graph &G);

/// Serial Batagelj-Zaversnik peeling; the correctness oracle.
std::vector<Priority> kCoreSerial(const Graph &G);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_KCORE_H
