//===- algorithms/PPSP.cpp - Point-to-point shortest path -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/PPSP.h"

#include "algorithms/DistanceEngine.h"
#include "algorithms/QueryState.h"
#include "graph/DeltaGraph.h"

using namespace graphit;

namespace {

/// Shared PPSP core over a caller-provided distance array.
template <typename GraphT, typename TouchFn>
PPSPResult ppspRun(const GraphT &G, VertexId Source, VertexId Target,
                   const Schedule &S, std::vector<Priority> &Dist,
                   TouchFn &&Touch,
                   std::vector<VertexId> *FrontierScratch = nullptr,
                   const RunLimits &Limits = RunLimits{}) {
  const int64_t Delta = S.Delta;
  const Priority Budget = Limits.MaxDistance;
  // When the distance budget stops the run, every thread observes the same
  // round-stable CurrKey and stores the same value — the relaxed atomic
  // keeps the benign multi-writer pattern well-defined.
  int64_t BudgetKey = kMaxEagerKey;
  // Stop once the current bucket's lower bound iΔ reaches the tentative
  // distance of the target: no later bucket can improve it. The budget
  // check is second so a settled target always reports as a normal stop.
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    if (Best != kInfiniteDistance && CurrKey * Delta >= Best)
      return true;
    if (CurrKey * Delta >= Budget) {
      atomicStoreRelaxed(&BudgetKey, CurrKey);
      return true;
    }
    return false;
  };
  OrderedStats Stats = detail::distanceOrderedRun(
      G, Source, Dist, S, [](VertexId) { return Priority{0}; }, Stop,
      std::forward<TouchFn>(Touch), FrontierScratch, Limits.Cancel);
  return detail::interruptiblePointResult(Dist[Target], Stats, Delta,
                                          atomicLoadRelaxed(&BudgetKey));
}

template <typename GraphT>
PPSPResult ppspFresh(const GraphT &G, VertexId Source, VertexId Target,
                     const Schedule &S) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  return ppspRun(G, Source, Target, S, Dist, detail::NoTouchFn{});
}

template <typename GraphT>
PPSPResult ppspPooled(const GraphT &G, VertexId Source, VertexId Target,
                      const Schedule &S, DistanceState &State,
                      const RunLimits &Limits) {
  State.beginQuery(Source);
  return ppspRun(
      G, Source, Target, S, State.distances(),
      [&State](VertexId V, VertexId From) {
        State.recordImprovement(V, From);
      },
      &State.frontierScratch(), Limits);
}

} // namespace

PPSPResult graphit::pointToPointShortestPath(const Graph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S) {
  return ppspFresh(G, Source, Target, S);
}

PPSPResult graphit::pointToPointShortestPath(const Graph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S,
                                             DistanceState &State,
                                             const RunLimits &Limits) {
  return ppspPooled(G, Source, Target, S, State, Limits);
}

PPSPResult graphit::pointToPointShortestPath(const DeltaGraph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S) {
  return ppspFresh(G, Source, Target, S);
}

PPSPResult graphit::pointToPointShortestPath(const DeltaGraph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S,
                                             DistanceState &State,
                                             const RunLimits &Limits) {
  return ppspPooled(G, Source, Target, S, State, Limits);
}

PPSPResult graphit::pointToPointShortestPath(const ShardedDeltaView &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S) {
  return ppspFresh(G, Source, Target, S);
}

PPSPResult graphit::pointToPointShortestPath(const ShardedDeltaView &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S,
                                             DistanceState &State,
                                             const RunLimits &Limits) {
  return ppspPooled(G, Source, Target, S, State, Limits);
}
