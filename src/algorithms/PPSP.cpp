//===- algorithms/PPSP.cpp - Point-to-point shortest path -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/PPSP.h"

#include "algorithms/DistanceEngine.h"

using namespace graphit;

PPSPResult graphit::pointToPointShortestPath(const Graph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  const int64_t Delta = S.Delta;
  // Stop once the current bucket's lower bound iΔ reaches the tentative
  // distance of the target: no later bucket can improve it.
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrKey * Delta >= Best;
  };
  OrderedStats Stats = detail::distanceOrderedRun(
      G, Source, Dist, S, [](VertexId) { return Priority{0}; }, Stop);
  return PPSPResult{Dist[Target], Stats};
}
