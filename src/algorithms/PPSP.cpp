//===- algorithms/PPSP.cpp - Point-to-point shortest path -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/PPSP.h"

#include "algorithms/DistanceEngine.h"
#include "algorithms/QueryState.h"

using namespace graphit;

namespace {

/// Shared PPSP core over a caller-provided distance array.
template <typename TouchFn>
PPSPResult ppspRun(const Graph &G, VertexId Source, VertexId Target,
                   const Schedule &S, std::vector<Priority> &Dist,
                   TouchFn &&Touch,
                   std::vector<VertexId> *FrontierScratch = nullptr) {
  const int64_t Delta = S.Delta;
  // Stop once the current bucket's lower bound iΔ reaches the tentative
  // distance of the target: no later bucket can improve it.
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrKey * Delta >= Best;
  };
  OrderedStats Stats = detail::distanceOrderedRun(
      G, Source, Dist, S, [](VertexId) { return Priority{0}; }, Stop,
      std::forward<TouchFn>(Touch), FrontierScratch);
  return PPSPResult{Dist[Target], Stats};
}

} // namespace

PPSPResult graphit::pointToPointShortestPath(const Graph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  return ppspRun(G, Source, Target, S, Dist, detail::NoTouchFn{});
}

PPSPResult graphit::pointToPointShortestPath(const Graph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S,
                                             DistanceState &State) {
  State.beginQuery(Source);
  return ppspRun(
      G, Source, Target, S, State.distances(),
      [&State](VertexId V, VertexId From) {
        State.recordImprovement(V, From);
      },
      &State.frontierScratch());
}
