//===- algorithms/PPSP.cpp - Point-to-point shortest path -----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/PPSP.h"

#include "algorithms/DistanceEngine.h"
#include "algorithms/QueryState.h"
#include "graph/DeltaGraph.h"

using namespace graphit;

namespace {

/// Shared PPSP core over a caller-provided distance array.
template <typename GraphT, typename TouchFn>
PPSPResult ppspRun(const GraphT &G, VertexId Source, VertexId Target,
                   const Schedule &S, std::vector<Priority> &Dist,
                   TouchFn &&Touch,
                   std::vector<VertexId> *FrontierScratch = nullptr) {
  const int64_t Delta = S.Delta;
  // Stop once the current bucket's lower bound iΔ reaches the tentative
  // distance of the target: no later bucket can improve it.
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrKey * Delta >= Best;
  };
  OrderedStats Stats = detail::distanceOrderedRun(
      G, Source, Dist, S, [](VertexId) { return Priority{0}; }, Stop,
      std::forward<TouchFn>(Touch), FrontierScratch);
  return PPSPResult{Dist[Target], Stats};
}

template <typename GraphT>
PPSPResult ppspFresh(const GraphT &G, VertexId Source, VertexId Target,
                     const Schedule &S) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  return ppspRun(G, Source, Target, S, Dist, detail::NoTouchFn{});
}

template <typename GraphT>
PPSPResult ppspPooled(const GraphT &G, VertexId Source, VertexId Target,
                      const Schedule &S, DistanceState &State) {
  State.beginQuery(Source);
  return ppspRun(
      G, Source, Target, S, State.distances(),
      [&State](VertexId V, VertexId From) {
        State.recordImprovement(V, From);
      },
      &State.frontierScratch());
}

} // namespace

PPSPResult graphit::pointToPointShortestPath(const Graph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S) {
  return ppspFresh(G, Source, Target, S);
}

PPSPResult graphit::pointToPointShortestPath(const Graph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S,
                                             DistanceState &State) {
  return ppspPooled(G, Source, Target, S, State);
}

PPSPResult graphit::pointToPointShortestPath(const DeltaGraph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S) {
  return ppspFresh(G, Source, Target, S);
}

PPSPResult graphit::pointToPointShortestPath(const DeltaGraph &G,
                                             VertexId Source,
                                             VertexId Target,
                                             const Schedule &S,
                                             DistanceState &State) {
  return ppspPooled(G, Source, Target, S, State);
}
