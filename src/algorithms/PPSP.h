//===- algorithms/PPSP.h - Point-to-point shortest path ---------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point-to-point shortest path (§6.1): Δ-stepping with priority
/// coarsening, terminating early once the algorithm enters iteration i with
/// iΔ ≥ the best distance already found for the destination — at that point
/// the destination's distance is final.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_PPSP_H
#define GRAPHIT_ALGORITHMS_PPSP_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"
#include "support/Cancellation.h"

namespace graphit {

/// Result of a point-to-point query.
struct PPSPResult {
  Priority Dist = kInfiniteDistance; ///< kInfiniteDistance if unreachable
  OrderedStats Stats;
  /// True when the run stopped early — deadline/cancellation or a
  /// RunLimits::MaxDistance budget — before the target was provably
  /// settled. Dist is then kInfiniteDistance even though a tentative
  /// finite value may exist: only provable answers are reported. A run
  /// whose token fired after the target settled is NOT interrupted (the
  /// answer is exact either way).
  bool Interrupted = false;
  /// When Interrupted: every true distance strictly below this bound was
  /// settled when the run stopped (kInfiniteDistance otherwise).
  Priority SettledBound = kInfiniteDistance;
};

/// Shortest-path distance from \p Source to \p Target with early exit.
PPSPResult pointToPointShortestPath(const Graph &G, VertexId Source,
                                    VertexId Target, const Schedule &S);

class DistanceState;
class DeltaGraph;
class ShardedDeltaView;

/// Pooled-state variant (O(touched) setup; see algorithms/QueryState.h).
/// Calls `State.beginQuery(Source)` itself. \p Limits optionally bounds
/// the run (cooperative cancellation and/or a distance budget), both
/// checked only at bucket-round boundaries.
PPSPResult pointToPointShortestPath(const Graph &G, VertexId Source,
                                    VertexId Target, const Schedule &S,
                                    DistanceState &State,
                                    const RunLimits &Limits = RunLimits{});

/// Live-graph variants over a delta-overlay snapshot view
/// (graph/DeltaGraph.h).
PPSPResult pointToPointShortestPath(const DeltaGraph &G, VertexId Source,
                                    VertexId Target, const Schedule &S);
PPSPResult pointToPointShortestPath(const DeltaGraph &G, VertexId Source,
                                    VertexId Target, const Schedule &S,
                                    DistanceState &State,
                                    const RunLimits &Limits = RunLimits{});

/// Sharded composite view (graph/DeltaGraph.h ShardedDeltaView): per-vertex
/// reads route to the owning shard's overlay; the algorithm core is shared.
PPSPResult pointToPointShortestPath(const ShardedDeltaView &G,
                                    VertexId Source, VertexId Target,
                                    const Schedule &S);
PPSPResult pointToPointShortestPath(const ShardedDeltaView &G,
                                    VertexId Source, VertexId Target,
                                    const Schedule &S, DistanceState &State,
                                    const RunLimits &Limits = RunLimits{});

namespace detail {

/// Maps a point query's raw outcome to its result, shared by the PPSP and
/// A* cores. \p BudgetKey is the round key at which a
/// RunLimits::MaxDistance budget stopped the run (kMaxEagerKey if it did
/// not). A run that was cancelled or budget-stopped reports the target's
/// distance only if it is provably settled — strictly below the stop
/// key's priority bound — and flags itself Interrupted otherwise.
inline PPSPResult interruptiblePointResult(Priority TargetDist,
                                           const OrderedStats &Stats,
                                           int64_t Delta,
                                           int64_t BudgetKey) {
  PPSPResult R;
  R.Stats = Stats;
  const bool BudgetStop = BudgetKey != kMaxEagerKey;
  if (!Stats.Cancelled && !BudgetStop) {
    R.Dist = TargetDist;
    return R;
  }
  const int64_t StopKey = Stats.Cancelled ? Stats.CancelKey : BudgetKey;
  const Priority Bound = StopKey * Delta;
  if (TargetDist != kInfiniteDistance && TargetDist < Bound) {
    R.Dist = TargetDist; // settled before the interruption: exact anyway
    return R;
  }
  R.Interrupted = true;
  R.SettledBound = Bound;
  return R;
}

} // namespace detail

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_PPSP_H
