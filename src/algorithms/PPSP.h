//===- algorithms/PPSP.h - Point-to-point shortest path ---------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point-to-point shortest path (§6.1): Δ-stepping with priority
/// coarsening, terminating early once the algorithm enters iteration i with
/// iΔ ≥ the best distance already found for the destination — at that point
/// the destination's distance is final.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_PPSP_H
#define GRAPHIT_ALGORITHMS_PPSP_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"

namespace graphit {

/// Result of a point-to-point query.
struct PPSPResult {
  Priority Dist = kInfiniteDistance; ///< kInfiniteDistance if unreachable
  OrderedStats Stats;
};

/// Shortest-path distance from \p Source to \p Target with early exit.
PPSPResult pointToPointShortestPath(const Graph &G, VertexId Source,
                                    VertexId Target, const Schedule &S);

class DistanceState;
class DeltaGraph;

/// Pooled-state variant (O(touched) setup; see algorithms/QueryState.h).
/// Calls `State.beginQuery(Source)` itself.
PPSPResult pointToPointShortestPath(const Graph &G, VertexId Source,
                                    VertexId Target, const Schedule &S,
                                    DistanceState &State);

/// Live-graph variants over a delta-overlay snapshot view
/// (graph/DeltaGraph.h).
PPSPResult pointToPointShortestPath(const DeltaGraph &G, VertexId Source,
                                    VertexId Target, const Schedule &S);
PPSPResult pointToPointShortestPath(const DeltaGraph &G, VertexId Source,
                                    VertexId Target, const Schedule &S,
                                    DistanceState &State);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_PPSP_H
