//===- algorithms/IncrementalSSSP.h - Incremental distance repair -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental SSSP/PPSP repair for live graphs: given the delta batch
/// that produced a new snapshot version (graph/DeltaGraph.h) and a pooled
/// `DistanceState` holding a *complete* SSSP solution for the previous
/// version, patch the distances in O(affected region) instead of
/// recomputing from scratch — with results bit-identical to a full
/// recompute (shortest-path distances are unique).
///
/// The classic affected-set scheme, mapped onto the ordered runtime:
///
///  1. *Invalidate.* A deleted or weight-increased edge (u,v) that was
///     tight (dist(v) == dist(u) + oldW) may have carried v's shortest
///     path; v and everything reachable from it along tight edges joins
///     the affected set (every edge of a shortest path is tight, so this
///     set over-approximates the vertices whose distance can grow — safe,
///     they are recomputed below). Affected distances are reset to ∞.
///  2. *Seed.* Every affected vertex is re-relaxed from its unaffected
///     in-neighbors (the boundary of the affected region); every inserted
///     or weight-decreased edge relaxes its head. The vertices whose
///     tentative distance improved become seeds.
///  3. *Settle.* The seeds are pushed into the eager or lazy bucket queue
///     at their coarsened keys (`distanceOrderedSeededRun`) and the
///     ordinary Δ-stepping engine runs to quiescence — the same machinery
///     as a fresh query, just started mid-flight at the affected boundary.
///
/// After repair the state's touched log is a *superset* of the finite
/// vertices (a vertex cut off by deletions stays logged); the next
/// `beginQuery` still resets exactly the right slots. PPSP over a live
/// graph is served by repairing the source's full SSSP state and reading
/// `State.dist(target)`.
///
/// Repair needs incoming adjacency to scan the affected boundary; on
/// graphs built without it (and for affected sets so large that repair
/// would cost more than a fresh run) it falls back to a full recompute —
/// same results, `RepairStats::RecomputeFallback` set.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_INCREMENTALSSSP_H
#define GRAPHIT_ALGORITHMS_INCREMENTALSSSP_H

#include "algorithms/DistanceEngine.h"
#include "algorithms/QueryState.h"
#include "graph/DeltaGraph.h"
#include "support/Abort.h"

#include <unordered_map>
#include <vector>

namespace graphit {

/// Work counters for one repair call.
struct RepairStats {
  /// Vertices invalidated by the affected-set sweep.
  Count AffectedVertices = 0;
  /// Vertices seeded into the bucket queue (affected boundary + decrease
  /// heads whose tentative distance improved).
  Count SeedVertices = 0;
  /// True when repair degenerated to a full recompute (no in-adjacency,
  /// or the affected set crossed the recompute threshold).
  bool RecomputeFallback = false;
  /// Engine counters of the settle phase (or of the fallback run).
  OrderedStats Engine;
};

/// Reusable O(V) mark space for the affected-set sweep, epoch-stamped so
/// consecutive repairs pay O(affected), not O(V). Pool one per worker
/// alongside its DistanceState.
class RepairScratch {
public:
  void ensure(Count NumNodes) {
    if (static_cast<Count>(Mark.size()) != NumNodes) {
      Mark.assign(static_cast<size_t>(NumNodes), 0);
      Epoch = 0;
    }
  }

  /// Reserves two fresh epochs (affected, seeded) and returns the first.
  uint32_t takeEpochPair() {
    if (Epoch >= 0xfffffffdu) { // wrap: clear once per ~2 billion repairs
      std::fill(Mark.begin(), Mark.end(), 0u);
      Epoch = 0;
    }
    Epoch += 2;
    return Epoch - 1;
  }

  std::vector<uint32_t> Mark;

private:
  uint32_t Epoch = 0;
};

/// Repairs \p State (a complete SSSP solution for the pre-delta graph,
/// produced by the pooled `deltaSteppingSSSP` with no early exit) so it
/// holds the exact distances on \p G, the post-delta view. \p Delta is the
/// directed transition list `DeltaGraph::apply` / the snapshot store
/// returned for the batch — at most one record per directed edge
/// (coalesced old→new weights). Works on `Graph` and `DeltaGraph` alike.
template <typename GraphT>
RepairStats repairAfterUpdates(const GraphT &G,
                               const std::vector<AppliedUpdate> &Delta,
                               DistanceState &State, const Schedule &S,
                               RepairScratch &Scratch) {
  RepairStats R;
  const Count N = G.numNodes();
  // A state larger than the graph is fine (it was grown for a newer
  // universe while this repair targets an older pinned view; the extra
  // slots stay at infinity). Smaller would index out of bounds.
  if (State.numNodes() < N)
    fatalError("repairAfterUpdates: state sized for a smaller graph "
               "(resize it after vertex insertion)");
  const VertexId Source = State.source();
  if (Source == kInvalidVertex)
    fatalError("repairAfterUpdates: state holds no query");
  std::vector<Priority> &Dist = State.distances();

  Scratch.ensure(N);
  const uint32_t AffectedEpoch = Scratch.takeEpochPair();
  const uint32_t SeedEpoch = AffectedEpoch + 1;

  // Phase 1a: initial affected set — tight deleted/increased edges. The
  // source is never affected: its distance is 0 by definition.
  std::vector<VertexId> Affected;
  auto MarkAffected = [&](VertexId V) {
    if (V == Source || Scratch.Mark[V] == AffectedEpoch)
      return;
    Scratch.Mark[V] = AffectedEpoch;
    Affected.push_back(V);
  };
  for (const AppliedUpdate &U : Delta) {
    const bool Increase =
        U.OldW != kAbsentEdge && (U.NewW == kAbsentEdge || U.NewW > U.OldW);
    if (!Increase)
      continue;
    Priority DS = Dist[U.Src];
    if (DS < kInfiniteDistance && Dist[U.Dst] == DS + U.OldW)
      MarkAffected(U.Dst);
  }

  // Phase 1b: propagate along tight out-edges while old distances are
  // still in place. Tightness is a statement about the *pre-delta* graph,
  // so edges this batch touched must be tested with their old weight: a
  // decreased edge that was tight at its old weight still carried its
  // head's shortest path (the new-weight test would miss it), and an
  // inserted edge can never be old-tight. Deleted tight edges are already
  // in the initial set above. Unchanged edges keep their weight across
  // versions, so the post-delta adjacency is the right one to walk.
  std::unordered_map<uint64_t, Weight> OldWeightOf;
  OldWeightOf.reserve(Delta.size());
  for (const AppliedUpdate &U : Delta)
    OldWeightOf.emplace((static_cast<uint64_t>(U.Src) << 32) | U.Dst,
                        U.OldW);
  for (size_t I = 0; I < Affected.size(); ++I) {
    VertexId V = Affected[I];
    Priority DV = Dist[V];
    if (DV >= kInfiniteDistance)
      continue;
    for (WNode E : G.outNeighbors(V)) {
      Weight W = E.W;
      auto It =
          OldWeightOf.find((static_cast<uint64_t>(V) << 32) | E.V);
      if (It != OldWeightOf.end()) {
        if (It->second == kAbsentEdge)
          continue; // inserted this batch: cannot carry an old path
        W = It->second;
      }
      if (Dist[E.V] == DV + W)
        MarkAffected(E.V);
    }
  }
  R.AffectedVertices = static_cast<Count>(Affected.size());

  // Fallback before any distance is clobbered: boundary seeding needs
  // in-edges, and past ~a quarter of the graph a fresh run is cheaper
  // than invalidate + boundary scan + settle.
  if ((!Affected.empty() && !G.hasInEdges()) ||
      R.AffectedVertices > N / 4) {
    R.RecomputeFallback = true;
    State.beginQuery(Source);
    R.Engine = detail::distanceOrderedRun(
        G, Source, State.distances(), S,
        [](VertexId) { return Priority{0}; }, [](int64_t) { return false; },
        [&State](VertexId V, VertexId From) {
          State.recordImprovement(V, From);
        },
        &State.frontierScratch());
    return R;
  }

  for (VertexId V : Affected)
    Dist[V] = kInfiniteDistance;

  // Phase 2: seed. Serial — the affected region is small by construction
  // (that is the point of taking this path instead of the fallback).
  std::vector<VertexId> Seeds;
  auto RelaxSeed = [&](VertexId V, Priority ND, VertexId From) {
    if (ND >= Dist[V])
      return;
    Dist[V] = ND;
    State.recordImprovement(V, From);
    if (Scratch.Mark[V] != SeedEpoch) {
      Scratch.Mark[V] = SeedEpoch;
      Seeds.push_back(V);
    }
  };
  for (VertexId V : Affected)
    for (WNode E : G.inNeighbors(V)) {
      Priority DU = Dist[E.V];
      if (DU < kInfiniteDistance)
        RelaxSeed(V, DU + E.W, E.V);
    }
  for (const AppliedUpdate &U : Delta) {
    const bool Decrease =
        U.NewW != kAbsentEdge && (U.OldW == kAbsentEdge || U.NewW < U.OldW);
    if (!Decrease)
      continue;
    Priority DS = Dist[U.Src];
    if (DS < kInfiniteDistance)
      RelaxSeed(U.Dst, DS + U.NewW, U.Src);
  }
  R.SeedVertices = static_cast<Count>(Seeds.size());

  // Phase 3: settle from the seeds through the ordinary ordered engine.
  R.Engine = detail::distanceOrderedSeededRun(
      G, Seeds, Dist, S,
      [&State](VertexId V, VertexId From) {
        State.recordImprovement(V, From);
      },
      &State.frontierScratch());
  return R;
}

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_INCREMENTALSSSP_H
