//===- algorithms/AStar.h - A* search on road networks ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A* point-to-point search (§6.1): Δ-stepping where a vertex's priority is
/// the *estimated* total path length dist(v) + h(v), with h a
/// coordinate-based lower bound on the remaining distance. The paper runs
/// A* on the road networks, which carry longitude/latitude per vertex.
///
/// Our road generator guarantees every edge weight is at least
/// 100 x the Euclidean length of the edge (graph/Generators.h), so
/// h(v) = floor(50 x euclidean(v, target)) is both admissible and strictly
/// consistent (the factor-2 slack absorbs integer rounding; see
/// DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_ASTAR_H
#define GRAPHIT_ALGORITHMS_ASTAR_H

#include "algorithms/PPSP.h"

namespace graphit {

class DistanceState;

/// Pluggable admissible-heuristic hook for A*. Implementations must return
/// a lower bound on the remaining distance to \p Target that is also
/// consistent (h(u) <= w(u,v) + h(v) along every edge); the service
/// layer's ALT landmark cache plugs in through this interface.
class AStarHeuristic {
public:
  virtual ~AStarHeuristic() = default;
  virtual Priority estimate(VertexId V, VertexId Target) const = 0;
};

/// A* from \p Source to \p Target. Requires `G.hasCoordinates()`.
PPSPResult aStarSearch(const Graph &G, VertexId Source, VertexId Target,
                       const Schedule &S);

/// Pooled-state variant (O(touched) setup; see algorithms/QueryState.h).
/// Calls `State.beginQuery(Source)` itself. With a null \p Heur the
/// coordinate heuristic is used (requires `G.hasCoordinates()`); otherwise
/// \p Heur supplies the bound and coordinates are not required. \p Limits
/// optionally bounds the run (cooperative cancellation and/or a distance
/// budget), checked only at bucket-round boundaries.
PPSPResult aStarSearch(const Graph &G, VertexId Source, VertexId Target,
                       const Schedule &S, DistanceState &State,
                       const AStarHeuristic *Heur = nullptr,
                       const RunLimits &Limits = RunLimits{});

/// Live-graph variant over a delta-overlay snapshot view
/// (graph/DeltaGraph.h). The coordinate heuristic reads the base graph's
/// coordinates; it stays admissible as long as every live insert/decrease
/// respects the generator's weight ≥ 100 × Euclidean-length invariant
/// (deletions and weight increases can never break admissibility).
PPSPResult aStarSearch(const DeltaGraph &G, VertexId Source,
                       VertexId Target, const Schedule &S,
                       DistanceState &State,
                       const AStarHeuristic *Heur = nullptr,
                       const RunLimits &Limits = RunLimits{});

/// Sharded composite view (graph/DeltaGraph.h ShardedDeltaView); the
/// coordinate heuristic reads the store-wide coordinate table via shard 0.
PPSPResult aStarSearch(const ShardedDeltaView &G, VertexId Source,
                       VertexId Target, const Schedule &S,
                       DistanceState &State,
                       const AStarHeuristic *Heur = nullptr,
                       const RunLimits &Limits = RunLimits{});

/// The coordinate heuristic used by `aStarSearch`, exposed for tests:
/// floor(50 x euclidean distance to target).
Priority aStarHeuristic(const Graph &G, VertexId V, VertexId Target);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_ASTAR_H
