//===- algorithms/BellmanFord.cpp - Unordered SSSP baseline ---------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/BellmanFord.h"

#include "support/Atomics.h"
#include "support/Timer.h"

using namespace graphit;

SSSPResult graphit::bellmanFordSSSP(const Graph &G, VertexId Source,
                                    Direction Dir) {
  SSSPResult R;
  R.Dist.assign(static_cast<size_t>(G.numNodes()), kInfiniteDistance);
  R.Dist[Source] = 0;
  std::vector<Priority> &Dist = R.Dist;

  Timer Clock;
  TraversalBuffers Buffers(G);
  std::vector<VertexId> Frontier = {Source};

  auto Push = [&](VertexId S, VertexId D, Weight W) {
    return atomicWriteMin(&Dist[D], atomicLoadRelaxed(&Dist[S]) + W);
  };
  auto Pull = [&](VertexId S, VertexId D, Weight W) {
    Priority ND = atomicLoad(&Dist[S]) + W;
    if (ND < Dist[D]) {
      // D is thread-owned in a pull round but read concurrently as a
      // source by other threads.
      atomicStoreRelaxed(&Dist[D], ND);
      return true;
    }
    return false;
  };

  while (!Frontier.empty()) {
    ++R.Stats.Rounds;
    R.Stats.VerticesProcessed += static_cast<int64_t>(Frontier.size());
    const std::vector<VertexId> &Changed =
        edgeApplyOut(G, Frontier, Dir,
                     Parallelization::DynamicVertexParallel, Buffers, Push,
                     Pull);
    Frontier.assign(Changed.begin(), Changed.end());
    if (R.Stats.Rounds > G.numNodes() + 1)
      fatalError("bellmanFordSSSP: negative cycle or corrupt state");
  }
  R.Stats.Seconds = Clock.seconds();
  return R;
}
