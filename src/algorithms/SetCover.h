//===- algorithms/SetCover.h - Approximate set cover ------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Approximate (unweighted) set cover by bucketed parallel greedy
/// (§6.1, following Blelloch et al. and Julienne): sets are bucketed by
/// their current coverage (cost per element with unit costs), the highest
/// bucket is processed first, and a nearly-independent subset of it is
/// committed each round through randomized reservations on the elements.
///
/// Instance encoding, as in Julienne's graph benchmarks: on a symmetric
/// graph, every vertex is both an element and a set covering its closed
/// neighborhood {v} ∪ N(v); the returned cover is a dominating set.
///
/// Priorities move in one direction only (coverage shrinks), the queue is
/// HigherFirst, and priority coarsening is not applicable (§2); buckets are
/// logarithmic in the coverage, with ε controlling both the bucket ratio
/// and the commit threshold (approximation factor (1+O(ε))·H_n).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_SETCOVER_H
#define GRAPHIT_ALGORITHMS_SETCOVER_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"

#include <vector>

namespace graphit {

/// Result of a set-cover run.
struct SetCoverResult {
  std::vector<VertexId> ChosenSets; ///< the cover (a dominating set)
  Count CoveredElements = 0;        ///< always numNodes() on success
  OrderedStats Stats;
};

/// Parallel bucketed greedy set cover. Requires a symmetric graph.
/// \p Epsilon controls bucket granularity and the commit threshold.
SetCoverResult approxSetCover(const Graph &G, const Schedule &S,
                              double Epsilon = 0.01, uint64_t Seed = 42);

/// Serial lazy-evaluation greedy (the exact H_n-approximation oracle).
SetCoverResult setCoverSerial(const Graph &G);

/// True iff \p Chosen covers every vertex of \p G (closed neighborhoods).
bool isValidCover(const Graph &G, const std::vector<VertexId> &Chosen);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_SETCOVER_H
