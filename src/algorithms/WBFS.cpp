//===- algorithms/WBFS.cpp - Weighted breadth-first search ----------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/WBFS.h"

using namespace graphit;

SSSPResult graphit::weightedBFS(const Graph &G, VertexId Source,
                                Schedule S) {
  S.Delta = 1; // wBFS is Δ-stepping with Δ fixed to 1 (§6.1)
  return deltaSteppingSSSP(G, Source, S);
}
