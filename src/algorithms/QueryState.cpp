//===- algorithms/QueryState.cpp - Reusable per-query state ---------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/QueryState.h"

#include "support/Parallel.h"

#include <algorithm>

using namespace graphit;

DistanceState::DistanceState(Count NumNodes, bool WithParents)
    : Dist(static_cast<size_t>(NumNodes), kInfiniteDistance),
      Parent(WithParents ? static_cast<size_t>(NumNodes) : 0,
             kInvalidVertex),
      Stamp(static_cast<size_t>(NumNodes), 0),
      Touched(static_cast<size_t>(NumNodes)), TrackParents(WithParents) {}

void DistanceState::resize(Count NewNumNodes) {
  if (NewNumNodes <= numNodes())
    return;
  size_t N = static_cast<size_t>(NewNumNodes);
  Dist.resize(N, kInfiniteDistance);
  if (TrackParents)
    Parent.resize(N, kInvalidVertex);
  // Stamp 0 can never alias the live epoch: beginQuery keeps Epoch >= 1
  // once any query ran, and with Epoch == 0 no improvement has been
  // recorded yet.
  Stamp.resize(N, 0);
  Touched.resize(N);
}

void DistanceState::beginQuery(VertexId Source) {
  // O(touched): only the slots the previous query dirtied are reset.
  parallelFor(
      0, NumTouched,
      [&](Count I) {
        VertexId V = Touched[static_cast<size_t>(I)];
        Dist[V] = kInfiniteDistance;
        if (TrackParents)
          Parent[V] = kInvalidVertex;
      },
      Parallelization::StaticVertexParallel);
  NumTouched = 0;

  ++Epoch;
  if (Epoch == 0) {
    // The 32-bit epoch wrapped (once per ~4 billion queries): a vertex
    // last stamped exactly 2^32 queries ago would alias the new epoch and
    // silently skip the touched log, so clear all stamps once.
    std::fill(Stamp.begin(), Stamp.end(), 0u);
    Epoch = 1;
  }
  ++QueriesBegun;

  Source_ = Source;
  Dist[Source] = 0;
  recordImprovement(Source, Source);
}
