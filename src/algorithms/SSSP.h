//===- algorithms/SSSP.h - Δ-stepping shortest paths ------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-source shortest paths with Δ-stepping (Fig. 3/5/6/7 of the
/// paper), the running example of the whole paper. The schedule selects
/// eager (with/without bucket fusion) or lazy bucket updates, the traversal
/// direction, and the coarsening factor Δ.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_SSSP_H
#define GRAPHIT_ALGORITHMS_SSSP_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"
#include "support/Cancellation.h"

#include <vector>

namespace graphit {

/// Result of a single-source distance computation. Unreached vertices hold
/// kInfiniteDistance.
struct SSSPResult {
  std::vector<Priority> Dist;
  OrderedStats Stats;
};

/// Δ-stepping SSSP from \p Source under schedule \p S. Requires
/// non-negative edge weights.
SSSPResult deltaSteppingSSSP(const Graph &G, VertexId Source,
                             const Schedule &S);

class DistanceState;
class DeltaGraph;

/// Pooled-state variant: runs over caller-owned, reusable state instead of
/// allocating a fresh distance array (O(touched) setup instead of O(V);
/// see algorithms/QueryState.h). Calls `State.beginQuery(Source)` itself;
/// distances live in \p State afterwards.
///
/// \p Cancel optionally interrupts the run at a bucket-round boundary;
/// the returned stats then carry `Cancelled` and `CancelKey`, and every
/// distance strictly below `CancelKey * S.Delta` in the state is exact
/// (the settled prefix of the full answer).
OrderedStats deltaSteppingSSSP(const Graph &G, VertexId Source,
                               const Schedule &S, DistanceState &State,
                               const CancelToken *Cancel = nullptr);

/// Live-graph variants over a delta-overlay snapshot view
/// (graph/DeltaGraph.h): identical semantics, unified neighbor iteration
/// through the overlay.
SSSPResult deltaSteppingSSSP(const DeltaGraph &G, VertexId Source,
                             const Schedule &S);
OrderedStats deltaSteppingSSSP(const DeltaGraph &G, VertexId Source,
                               const Schedule &S, DistanceState &State,
                               const CancelToken *Cancel = nullptr);

class ShardedDeltaView;

/// Scale-out variants over a sharded store's published composite view
/// (graph/DeltaGraph.h ShardedDeltaView): per-vertex reads route to the
/// owning shard's overlay; results are bit-identical to running over an
/// equivalent single overlay (the stress harness asserts exactly that).
SSSPResult deltaSteppingSSSP(const ShardedDeltaView &G, VertexId Source,
                             const Schedule &S);
OrderedStats deltaSteppingSSSP(const ShardedDeltaView &G, VertexId Source,
                               const Schedule &S, DistanceState &State,
                               const CancelToken *Cancel = nullptr);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_SSSP_H
