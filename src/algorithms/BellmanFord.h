//===- algorithms/BellmanFord.h - Unordered SSSP baseline -------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frontier-based Bellman-Ford: the *unordered* SSSP the paper compares
/// against (Fig. 1, Table 4's "GraphIt (unordered)" and Ligra rows). Every
/// round relaxes all out-edges of every active vertex regardless of
/// priority — massive redundant work on high-diameter graphs, which is
/// precisely the effect Fig. 1 quantifies.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_BELLMANFORD_H
#define GRAPHIT_ALGORITHMS_BELLMANFORD_H

#include "algorithms/SSSP.h"
#include "runtime/Traversal.h"

namespace graphit {

/// Unordered SSSP from \p Source (frontier-based Bellman-Ford).
/// \p Dir selects the traversal direction, as in the unordered GraphIt.
SSSPResult bellmanFordSSSP(const Graph &G, VertexId Source,
                           Direction Dir = Direction::SparsePush);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_BELLMANFORD_H
