//===- algorithms/KCore.cpp - k-core decomposition ------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/KCore.h"

#include "runtime/Dedup.h"
#include "runtime/Histogram.h"
#include "runtime/LazyBucketQueue.h"
#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/TSanAnnotate.h"
#include "support/Timer.h"

#include <algorithm>
#include <omp.h>

using namespace graphit;

namespace {

void requireSymmetric(const Graph &G) {
  if (!G.isSymmetric())
    fatalError("k-core requires a symmetric graph (Table 3)");
}

/// Atomically lowers Deg[U] by one, clamping at \p Floor (the current core
/// k; Table 1's updatePrioritySum min threshold). \returns true iff the
/// stored value changed.
bool decrementClamped(Priority *Slot, Priority Floor) {
  while (true) {
    Priority Current = atomicLoad(Slot);
    Priority Next = std::max(Current - 1, Floor);
    if (Next == Current)
      return false;
    if (atomicCAS(Slot, Current, Next))
      return true;
  }
}

//===----------------------------------------------------------------------===//
// Lazy peeling (with and without the constant-sum histogram)
//===----------------------------------------------------------------------===//

KCoreResult kCoreLazy(const Graph &G, const Schedule &S,
                      bool UseHistogram) {
  Count N = G.numNodes();
  KCoreResult R;
  R.Coreness.assign(static_cast<size_t>(N), 0);

  Timer Clock;
  std::vector<Priority> Deg(static_cast<size_t>(N));
  std::vector<uint8_t> Done(static_cast<size_t>(N), 0);
  LazyBucketQueue Queue(N, S.NumOpenBuckets, PriorityOrder::LowerFirst);
  {
    std::vector<VertexId> Ids(static_cast<size_t>(N));
    parallelFor(
        0, N,
        [&](Count V) {
          Deg[V] = G.outDegree(static_cast<VertexId>(V));
          Ids[V] = static_cast<VertexId>(V);
        },
        Parallelization::StaticVertexParallel);
    Queue.updateBucketsWith(Ids.data(), N,
                            [&](Count, VertexId V) { return Deg[V]; });
  }

  HistogramBuffer Hist(N);
  DedupFlags Changed(N);
  std::vector<int64_t> Offsets;
  std::vector<VertexId> Targets, Compact, UniqueIds, ChangedIds;
  std::vector<uint32_t> Counts;
  std::vector<std::vector<VertexId>> PerThread(
      static_cast<size_t>(omp_get_max_threads()));

  // graphit-lint: allow(cancel-poll): k-core is batch analytics, not a
  // served query; the API takes no CancelToken and rounds are bounded by
  // the degeneracy, so there is no deadline to honor mid-run.
  while (Queue.nextBucket()) {
    int64_t K = Queue.currentKey();
    R.MaxCore = std::max<Priority>(R.MaxCore, K);
    ++R.Stats.Rounds;
    const std::vector<VertexId> &Bucket = Queue.currentBucket();
    Count B = static_cast<Count>(Bucket.size());
    R.Stats.VerticesProcessed += B;

    // Finalize the extracted bucket: coreness = current k.
    parallelFor(
        0, B,
        [&](Count I) {
          R.Coreness[Bucket[I]] = K;
          Done[Bucket[I]] = 1;
        },
        Parallelization::StaticVertexParallel);

    // Gather the not-yet-finalized neighbors (with duplicates).
    Offsets.resize(static_cast<size_t>(B) + 1);
    parallelFor(
        0, B, [&](Count I) { Offsets[I] = G.outDegree(Bucket[I]); },
        Parallelization::StaticVertexParallel);
    Offsets[B] = 0;
    int64_t Total = exclusivePrefixSum(Offsets.data(), B + 1);
    Targets.resize(static_cast<size_t>(Total));
    parallelFor(0, B, [&](Count I) {
      int64_t Pos = Offsets[I];
      for (WNode E : G.outNeighbors(Bucket[I]))
        Targets[static_cast<size_t>(Pos++)] =
            Done[E.V] ? kInvalidVertex : E.V;
    });
    Compact.resize(static_cast<size_t>(Total));
    Count M = parallelPack(Targets.data(), Total, Compact.data(),
                           [](VertexId V) { return V != kInvalidVertex; });

    if (UseHistogram) {
      // One update per distinct neighbor, carrying the count (Fig. 10);
      // the bucket move reads the freshly written degree inline.
      Hist.reduce(Compact.data(), M, S.Histogram, UniqueIds, Counts);
      Count U = static_cast<Count>(UniqueIds.size());
      parallelFor(
          0, U,
          [&](Count I) {
            VertexId V = UniqueIds[I];
            Deg[V] = std::max<Priority>(Deg[V] - Counts[I], K);
          },
          Parallelization::StaticVertexParallel);
      Queue.updateBucketsWith(UniqueIds.data(), U,
                              [&](Count, VertexId V) { return Deg[V]; });
      continue;
    }

    // Plain lazy: one atomic decrement per edge occurrence.
    ChangedIds.clear();
    if (M < 4096) {
      for (Count I = 0; I < M; ++I) {
        VertexId V = Compact[I];
        if (decrementClamped(&Deg[V], K) && Changed.claim(V))
          ChangedIds.push_back(V);
      }
    } else {
      for (std::vector<VertexId> &L : PerThread)
        L.clear();
      int Tag = 0;
      GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
      {
        GRAPHIT_OMP_REGION_BEGIN(&Tag);
        std::vector<VertexId> &Mine =
            PerThread[static_cast<size_t>(omp_get_thread_num())];
#pragma omp for schedule(static) nowait
        for (Count I = 0; I < M; ++I) {
          VertexId V = Compact[I];
          if (decrementClamped(&Deg[V], K) && Changed.claim(V))
            Mine.push_back(V);
        }
        GRAPHIT_OMP_REGION_END(&Tag);
      }
      GRAPHIT_OMP_REGION_EXIT(&Tag);
      for (const std::vector<VertexId> &L : PerThread)
        ChangedIds.insert(ChangedIds.end(), L.begin(), L.end());
    }
    Count U = static_cast<Count>(ChangedIds.size());
    Changed.release(ChangedIds.data(), U);
    Queue.updateBucketsWith(ChangedIds.data(), U,
                            [&](Count, VertexId V) { return Deg[V]; });
  }

  R.Stats.OverflowRebuckets = Queue.overflowRebuckets();
  R.Stats.Seconds = Clock.seconds();
  return R;
}

//===----------------------------------------------------------------------===//
// Eager peeling (thread-local degree buckets)
//===----------------------------------------------------------------------===//

KCoreResult kCoreEager(const Graph &G) {
  Count N = G.numNodes();
  KCoreResult R;
  R.Coreness.assign(static_cast<size_t>(N), 0);

  Timer Clock;
  std::vector<Priority> Deg(static_cast<size_t>(N));
  std::vector<uint8_t> Done(static_cast<size_t>(N), 0);
  parallelFor(
      0, N,
      [&](Count V) { Deg[V] = G.outDegree(static_cast<VertexId>(V)); },
      Parallelization::StaticVertexParallel);

  int64_t SharedMin[2] = {0, kMaxEagerKey};
  SharedMin[0] = kMaxEagerKey;
  int64_t Rounds = 0, Processed = 0, MaxCore = 0;

  int SyncTag = 0;
  GRAPHIT_OMP_REGION_ENTER(&SyncTag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&SyncTag);
    std::vector<std::vector<VertexId>> Bins;
    auto Push = [&Bins](VertexId V, int64_t Key) {
      if (static_cast<size_t>(Key) >= Bins.size())
        Bins.resize(static_cast<size_t>(Key) + 1);
      Bins[static_cast<size_t>(Key)].push_back(V);
    };

    // Initial distribution: each thread buckets a static chunk by degree.
#pragma omp for schedule(static)
    for (Count V = 0; V < N; ++V)
      Push(static_cast<VertexId>(V), Deg[V]);

    int64_t ScanFrom = 0;
    int64_t LocalProcessed = 0;
    int64_t LocalMaxCore = 0;
    int64_t Iter = 0;
    while (true) {
      // Propose the smallest non-empty local bin. Degrees only move down
      // to the current k, so the scan cursor never needs to back up.
      int64_t &CurrMin = SharedMin[Iter & 1];
      int64_t &NextMin = SharedMin[(Iter + 1) & 1];
      int64_t My = kMaxEagerKey;
      for (int64_t B = ScanFrom;
           B < static_cast<int64_t>(Bins.size()); ++B) {
        if (!Bins[static_cast<size_t>(B)].empty()) {
          My = B;
          break;
        }
      }
      if (My != kMaxEagerKey)
        // Lock-free fold of the proposals (was an `omp critical`, whose
        // libgomp lock both serializes the threads and is invisible to
        // ThreadSanitizer).
        atomicMin(&CurrMin, My);
      GRAPHIT_OMP_BARRIER(&SyncTag);
      int64_t K = CurrMin;
      if (K == kMaxEagerKey)
        break;
#pragma omp single nowait
      {
        ++Rounds;
        NextMin = kMaxEagerKey;
      }
      ScanFrom = K;

      // Drain the local bucket for k. Pushes land only in this thread's
      // bins, so local emptiness is global per-thread completion.
      while (static_cast<size_t>(K) < Bins.size() &&
             !Bins[static_cast<size_t>(K)].empty()) {
        std::vector<VertexId> Drain =
            std::move(Bins[static_cast<size_t>(K)]);
        Bins[static_cast<size_t>(K)].clear();
        for (VertexId V : Drain) {
          if (atomicLoadRelaxed(&Done[V]) || atomicLoad(&Deg[V]) != K)
            continue; // stale entry
          if (!atomicCAS<uint8_t>(&Done[V], 0, 1))
            continue; // duplicate claim
          R.Coreness[V] = K;
          LocalMaxCore = std::max(LocalMaxCore, K);
          ++LocalProcessed;
          for (WNode E : G.outNeighbors(V)) {
            if (atomicLoadRelaxed(&Done[E.V]))
              continue;
            if (decrementClamped(&Deg[E.V], K))
              Push(E.V, atomicLoad(&Deg[E.V]));
          }
        }
      }
      ++Iter;
      GRAPHIT_OMP_BARRIER(&SyncTag);
    }
    fetchAdd(&Processed, LocalProcessed);
    atomicWriteMax(&MaxCore, LocalMaxCore);
    GRAPHIT_OMP_REGION_END(&SyncTag);
  }
  GRAPHIT_OMP_REGION_EXIT(&SyncTag);

  R.MaxCore = MaxCore;
  R.Stats.Rounds = Rounds;
  R.Stats.VerticesProcessed = Processed;
  R.Stats.Seconds = Clock.seconds();
  return R;
}

} // namespace

KCoreResult graphit::kCoreDecomposition(const Graph &G, const Schedule &S) {
  requireSymmetric(G);
  switch (S.Update) {
  case UpdateStrategy::LazyConstantSum:
    return kCoreLazy(G, S, /*UseHistogram=*/true);
  case UpdateStrategy::Lazy:
    return kCoreLazy(G, S, /*UseHistogram=*/false);
  case UpdateStrategy::EagerWithFusion:
  case UpdateStrategy::EagerNoFusion:
    return kCoreEager(G);
  }
  GRAPHIT_UNREACHABLE("bad UpdateStrategy");
}

KCoreResult graphit::kCoreUnordered(const Graph &G) {
  requireSymmetric(G);
  Count N = G.numNodes();
  KCoreResult R;
  R.Coreness.assign(static_cast<size_t>(N), 0);

  Timer Clock;
  std::vector<Priority> Deg(static_cast<size_t>(N));
  parallelFor(
      0, N,
      [&](Count V) { Deg[V] = G.outDegree(static_cast<VertexId>(V)); },
      Parallelization::StaticVertexParallel);

  // Ligra-style unordered peeling: every wave filters the FULL vertex set
  // (a vertexFilter over [0, n)), with no bucketing and no compaction —
  // the redundant scans that Fig. 1 charges to the unordered algorithm.
  std::vector<VertexId> Wave(static_cast<size_t>(N));
  std::vector<VertexId> AllVertices(static_cast<size_t>(N));
  parallelFor(
      0, N, [&](Count V) { AllVertices[V] = static_cast<VertexId>(V); },
      Parallelization::StaticVertexParallel);

  Count Remaining = N;
  Priority K = 0;
  while (Remaining > 0) {
    Count WaveSize =
        parallelPack(AllVertices.data(), N, Wave.data(), [&](VertexId V) {
          return Deg[V] >= 0 && Deg[V] <= K;
        });
    ++R.Stats.Rounds;
    R.Stats.VerticesProcessed += N; // full rescans every wave
    if (WaveSize == 0) {
      ++K;
      continue;
    }
    parallelFor(0, WaveSize, [&](Count I) {
      VertexId V = Wave[I];
      R.Coreness[V] = K;
      // Removed marker; atomic because a neighbor in the same wave may be
      // concurrently reading/decrementing this slot.
      atomicStoreRelaxed(&Deg[V], Priority{-1});
      for (WNode E : G.outNeighbors(V))
        if (atomicLoad(&Deg[E.V]) > K)
          fetchAdd(&Deg[E.V], Priority{-1});
    });
    Remaining -= WaveSize;
    R.MaxCore = std::max(R.MaxCore, K);
  }
  R.Stats.Seconds = Clock.seconds();
  return R;
}

std::vector<Priority> graphit::kCoreSerial(const Graph &G) {
  requireSymmetric(G);
  Count N = G.numNodes();
  std::vector<Priority> Deg(static_cast<size_t>(N));
  Priority MaxDeg = 0;
  for (Count V = 0; V < N; ++V) {
    Deg[V] = G.outDegree(static_cast<VertexId>(V));
    MaxDeg = std::max(MaxDeg, Deg[V]);
  }

  // Batagelj-Zaversnik bin-sort peeling.
  std::vector<Count> Bin(static_cast<size_t>(MaxDeg) + 2, 0);
  for (Count V = 0; V < N; ++V)
    ++Bin[Deg[V]];
  Count Start = 0;
  for (Priority D = 0; D <= MaxDeg; ++D) {
    Count C = Bin[D];
    Bin[D] = Start;
    Start += C;
  }
  std::vector<VertexId> Vert(static_cast<size_t>(N));
  std::vector<Count> Pos(static_cast<size_t>(N));
  for (Count V = 0; V < N; ++V) {
    Pos[V] = Bin[Deg[V]];
    Vert[Pos[V]] = static_cast<VertexId>(V);
    ++Bin[Deg[V]];
  }
  for (Priority D = MaxDeg; D >= 1; --D)
    Bin[D] = Bin[D - 1];
  Bin[0] = 0;

  for (Count I = 0; I < N; ++I) {
    VertexId V = Vert[I];
    for (WNode E : G.outNeighbors(V)) {
      VertexId U = E.V;
      if (Deg[U] <= Deg[V])
        continue;
      // Swap U with the first vertex of its bin, then shrink the bin.
      Count DU = Deg[U], PU = Pos[U];
      Count PW = Bin[DU];
      VertexId W = Vert[PW];
      if (U != W) {
        Pos[U] = PW;
        Pos[W] = PU;
        Vert[PU] = W;
        Vert[PW] = U;
      }
      ++Bin[DU];
      --Deg[U];
    }
  }
  return Deg; // degree at removal time == coreness
}
