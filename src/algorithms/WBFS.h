//===- algorithms/WBFS.h - Weighted breadth-first search --------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Weighted BFS (§6.1): the special case of Δ-stepping for graphs with
/// small positive integer weights, with Δ fixed to 1 (following
/// Julienne). The paper benchmarks it on social/web graphs with weights in
/// [1, log n).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_WBFS_H
#define GRAPHIT_ALGORITHMS_WBFS_H

#include "algorithms/SSSP.h"

namespace graphit {

/// wBFS from \p Source: Δ-stepping with Δ = 1 regardless of `S.Delta`.
SSSPResult weightedBFS(const Graph &G, VertexId Source, Schedule S);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_WBFS_H
