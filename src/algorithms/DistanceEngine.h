//===- algorithms/DistanceEngine.h - Shared Δ-stepping core -----*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution core shared by the four distance-style ordered algorithms
/// (SSSP, wBFS, PPSP, A*). Each is Δ-stepping with a different priority
/// function and stop condition:
///
///   SSSP : priority = dist(v),          no early stop
///   wBFS : same, Δ fixed to 1
///   PPSP : same, stop when iΔ ≥ dist(target)
///   A*   : priority = dist(v) + h(v),   stop when iΔ ≥ dist(target)
///
/// This header corresponds to the code the GraphIt compiler *generates* for
/// those programs: `distanceOrderedRun` dispatches on the schedule to the
/// eager engine (with or without bucket fusion, §5.2) or to the lazy
/// bucket-update loop with direction-optimized traversal (§5.1).
///
/// Everything is generic over the graph type: `Graph` (immutable CSR) and
/// `DeltaGraph` (delta-overlay snapshot view, graph/DeltaGraph.h) run
/// through the same code. `distanceOrderedSeededRun` is the multi-source
/// variant incremental repair uses to settle an affected region from its
/// boundary instead of re-running from the original source.
///
/// It is an internal header of the algorithms library, not public API.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_DISTANCEENGINE_H
#define GRAPHIT_ALGORITHMS_DISTANCEENGINE_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"
#include "runtime/LazyBucketQueue.h"
#include "runtime/Traversal.h"
#include "support/Atomics.h"
#include "support/Prefetch.h"
#include "support/Timer.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace graphit {
namespace detail {

/// Default (no-op) improvement observer for `distanceOrderedRun`.
struct NoTouchFn {
  void operator()(VertexId, VertexId) const {}
};

/// Priority -> bucket-key coarsening. Δ is a power of two in practically
/// every schedule (the autotuner space is all powers of two), and the
/// coarsening runs once per relaxation *and* once per push on the hottest
/// path — a runtime integer division there costs tens of cycles per edge
/// that a shift does not. Priorities are non-negative, so the shift is
/// exact.
struct PriorityCoarsener {
  int64_t Delta;
  int Shift; ///< log2(Delta) when Delta is a power of two, else -1

  static PriorityCoarsener of(int64_t Delta) {
    const bool Pow2 = Delta > 0 && (Delta & (Delta - 1)) == 0;
    return PriorityCoarsener{Delta,
                             Pow2 ? __builtin_ctzll(
                                        static_cast<uint64_t>(Delta))
                                  : -1};
  }

  int64_t key(Priority P) const {
    return Shift >= 0 ? (P >> Shift) : (P / Delta);
  }
};

/// The eager engine's relaxation closure over a distance array: re-checks
/// staleness against the current bucket key, CASes improvements in, and
/// pushes improved neighbors at their coarsened key.
template <typename GraphT, typename HeurFn, typename TouchFn>
auto makeEagerRelax(const GraphT &G, std::vector<Priority> &Dist,
                    const int64_t Delta, HeurFn &Heur, TouchFn &Touch) {
  const PriorityCoarsener C = PriorityCoarsener::of(Delta);
  // Single-threaded runs (serving mode pins OmpThreadsPerQuery=1; small
  // machines) take a non-atomic fast path: an uncontended lock-prefixed
  // CAS still costs ~20 cycles per successful relaxation, which is a
  // double-digit share of a road SSSP. The flag is fixed at closure
  // creation — the engine's parallel region uses the same ICV.
  const bool Concurrent = omp_get_max_threads() > 1;
  return [&G, &Dist, C, &Heur, &Touch, Concurrent](VertexId U,
                                                   int64_t CurrKey,
                                                   auto &&Push) {
    // Relaxed atomic loads: other threads CAS these slots concurrently;
    // the pre-check needs no ordering (atomicWriteMin re-validates) but
    // a plain load would be a data race.
    Priority DU = Concurrent ? atomicLoadRelaxed(&Dist[U]) : Dist[U];
    if (C.key(DU + Heur(U)) < CurrKey)
      return; // stale: settled in an earlier bucket
    auto R = G.outNeighbors(U);
    const Count Deg = R.size();
    for (Count I = 0; I < Deg; ++I) {
      // The adjacency row streams; the destination's distance word is the
      // scattered load. Prefetch it a few edges ahead so the miss overlaps
      // the CAS/push work of the current edge.
      if (I + kPrefetchDistance < Deg)
        prefetchWrite(&Dist[R.id(I + kPrefetchDistance)]);
      VertexId V = R.id(I);
      Priority ND = DU + R.weight(I);
      bool Improved;
      if (Concurrent) {
        Improved =
            ND < atomicLoadRelaxed(&Dist[V]) && atomicWriteMin(&Dist[V], ND);
      } else {
        Improved = ND < Dist[V];
        if (Improved)
          Dist[V] = ND;
      }
      if (Improved) {
        Touch(V, U);
        int64_t Key = C.key(ND + Heur(V));
        Push(V, std::max(Key, CurrKey));
      }
    }
  };
}

/// The lazy bucket-update drain loop (Fig. 5 / Fig. 9(a)-(b)) over an
/// already-seeded queue.
template <typename GraphT, typename HeurFn, typename StopFn,
          typename TouchFn>
void lazyDistanceLoop(const GraphT &G, LazyBucketQueue &Queue,
                      std::vector<Priority> &Dist, const Schedule &S,
                      HeurFn &Heur, StopFn &Stop, TouchFn &Touch,
                      OrderedStats &Stats,
                      const CancelToken *Cancel = nullptr) {
  const PriorityCoarsener C = PriorityCoarsener::of(S.Delta);
  Timer Clock;
  TraversalBuffers Buffers(G);

  // See makeEagerRelax: single-threaded runs skip the atomic RMW cost.
  const bool Concurrent = omp_get_max_threads() > 1;
  auto Push = [&](VertexId Sv, VertexId Dv, Weight W) {
    if (!Concurrent) {
      Priority ND = Dist[Sv] + W;
      if (ND < Dist[Dv]) {
        Dist[Dv] = ND;
        Touch(Dv, Sv);
        return true;
      }
      return false;
    }
    Priority ND = atomicLoadRelaxed(&Dist[Sv]) + W;
    if (ND < atomicLoadRelaxed(&Dist[Dv]) && atomicWriteMin(&Dist[Dv], ND)) {
      Touch(Dv, Sv);
      return true;
    }
    return false;
  };
  auto Pull = [&](VertexId Sv, VertexId Dv, Weight W) {
    Priority ND = atomicLoad(&Dist[Sv]) + W;
    if (ND < Dist[Dv]) {
      // Dv is owned by this thread during a pull round, but other threads
      // read it concurrently as a source — store atomically (relaxed).
      atomicStoreRelaxed(&Dist[Dv], ND);
      Touch(Dv, Sv);
      return true;
    }
    return false;
  };

  while (Queue.nextBucket()) {
    int64_t CurrKey = Queue.currentKey();
    // The control loop is sequential (parallelism lives inside
    // edgeApplyOut), so the bucket boundary is a safe cancellation point:
    // every bucket before CurrKey is fully drained, making CurrKey * Δ
    // the settled prefix bound.
    if (Cancel && Cancel->expired()) {
      Stats.Cancelled = true;
      Stats.CancelKey = CurrKey;
      break;
    }
    if (Stop(CurrKey))
      break;
    ++Stats.Rounds;
    const std::vector<VertexId> &Bucket = Queue.currentBucket();
    Stats.VerticesProcessed += static_cast<int64_t>(Bucket.size());

    // Fused handoff (§5.1): the changed destinations scatter straight into
    // buckets, computing each key inline from the priority vector — no
    // second (vertices, keys) array pair and no separate key-fill pass.
    // The prefetch hook pulls the distance word of the edge a block ahead
    // (the only scattered load in Push/Pull) into cache early — exclusive
    // for push destinations (about to be CAS-ed), shared for pull sources
    // (read by many destination owners in the same round).
    const std::vector<VertexId> &Changed = edgeApplyOut(
        G, Bucket, S.Dir, S.Par, Buffers, Push, Pull, /*Stats=*/nullptr,
        [&](VertexId V, bool IsPull) {
          if (IsPull)
            prefetchRead(&Dist[V]);
          else
            prefetchWrite(&Dist[V]);
        });
    Queue.updateBucketsWith(
        Changed.data(), static_cast<Count>(Changed.size()),
        [&](Count, VertexId V) {
          return std::max(C.key(Dist[V] + Heur(V)), CurrKey);
        });
  }
  Stats.OverflowRebuckets = Queue.overflowRebuckets();
  Stats.Seconds = Clock.seconds();
}

/// Runs the ordered distance computation. \p Dist must be initialized
/// (kInfiniteDistance everywhere except the source). \p Heur maps a vertex
/// to an admissible, consistent lower bound on its remaining distance
/// (return 0 for plain SSSP). \p Stop is evaluated on round-stable state at
/// bucket boundaries with the current bucket key. \p Touch is invoked as
/// `Touch(V, U)` after every successful relaxation that lowered `Dist[V]`
/// via the edge (U, V); it may run concurrently from many threads and must
/// synchronize internally (the QueryEngine's pooled state uses it to log
/// touched vertices and parents; the default is a no-op).
/// \p FrontierScratch optionally reuses the eager engine's O(E) frontier
/// buffer across runs (see eagerOrderedProcess).
template <typename GraphT, typename HeurFn, typename StopFn,
          typename TouchFn = NoTouchFn>
OrderedStats distanceOrderedRun(const GraphT &G, VertexId Source,
                                std::vector<Priority> &Dist,
                                const Schedule &S, HeurFn &&Heur,
                                StopFn &&Stop, TouchFn &&Touch = TouchFn{},
                                std::vector<VertexId> *FrontierScratch =
                                    nullptr,
                                const CancelToken *Cancel = nullptr) {
  OrderedStats Stats;
  const int64_t Delta = S.Delta;
  if (Dist[Source] != 0)
    fatalError("distanceOrderedRun: source distance must start at 0");

  if (S.isEager()) {
    auto Relax = makeEagerRelax(G, Dist, Delta, Heur, Touch);
    eagerOrderedProcess(G.numNodes(), G.numEdges() + 1, Source,
                        Heur(Source) / Delta, S, Relax, Stop, &Stats,
                        FrontierScratch,
                        [&G, &Dist](VertexId V) {
                          prefetchWrite(&Dist[V]);
                          G.prefetchOutRow(V);
                        },
                        Cancel);
    return Stats;
  }

  // Lazy bucket update (Fig. 5 / Fig. 9(a)-(b)).
  LazyBucketQueue Queue(G.numNodes(), S.NumOpenBuckets,
                        PriorityOrder::LowerFirst);
  Queue.insert(Source, Heur(Source) / Delta);
  lazyDistanceLoop(G, Queue, Dist, S, Heur, Stop, Touch, Stats, Cancel);
  return Stats;
}

/// Multi-source variant for incremental repair: \p Seeds are vertices
/// whose tentative distance in \p Dist was just lowered (by a boundary
/// re-relaxation or a decreased edge); the engine settles everything
/// reachable from them, leaving exact distances. No heuristic, no early
/// stop — repair serves SSSP-complete states. Runs to quiescence in
/// O(affected region), not O(V + E).
template <typename GraphT, typename TouchFn = NoTouchFn>
OrderedStats distanceOrderedSeededRun(const GraphT &G,
                                      const std::vector<VertexId> &Seeds,
                                      std::vector<Priority> &Dist,
                                      const Schedule &S,
                                      TouchFn &&Touch = TouchFn{},
                                      std::vector<VertexId> *FrontierScratch =
                                          nullptr) {
  OrderedStats Stats;
  const int64_t Delta = S.Delta;
  auto Heur = [](VertexId) { return Priority{0}; };
  auto Stop = [](int64_t) { return false; };
  if (Seeds.empty())
    return Stats;

  if (S.isEager()) {
    auto Relax = makeEagerRelax(G, Dist, Delta, Heur, Touch);
    std::vector<std::pair<VertexId, int64_t>> SeedKeys;
    SeedKeys.reserve(Seeds.size());
    for (VertexId V : Seeds)
      SeedKeys.push_back({V, Dist[V] / Delta});
    eagerOrderedProcessSeeds(
        G.numNodes(), G.numEdges() + static_cast<Count>(Seeds.size()) + 1,
        SeedKeys.data(), static_cast<Count>(SeedKeys.size()), S, Relax,
        Stop, &Stats, FrontierScratch, [&G, &Dist](VertexId V) {
          prefetchWrite(&Dist[V]);
          G.prefetchOutRow(V);
        });
    return Stats;
  }

  LazyBucketQueue Queue(G.numNodes(), S.NumOpenBuckets,
                        PriorityOrder::LowerFirst);
  for (VertexId V : Seeds)
    Queue.insert(V, Dist[V] / Delta);
  lazyDistanceLoop(G, Queue, Dist, S, Heur, Stop, Touch, Stats);
  return Stats;
}

/// Shared result container for the distance family.
struct DistanceRun {
  std::vector<Priority> Dist;
  OrderedStats Stats;
};

/// Convenience wrapper: allocate/initialize distances and run.
template <typename GraphT, typename HeurFn, typename StopFn>
DistanceRun runDistanceAlgorithm(const GraphT &G, VertexId Source,
                                 const Schedule &S, HeurFn &&Heur,
                                 StopFn &&Stop) {
  DistanceRun R;
  R.Dist.assign(static_cast<size_t>(G.numNodes()), kInfiniteDistance);
  R.Dist[Source] = 0;
  R.Stats = distanceOrderedRun(G, Source, R.Dist, S,
                               std::forward<HeurFn>(Heur),
                               std::forward<StopFn>(Stop));
  return R;
}

} // namespace detail
} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_DISTANCEENGINE_H
