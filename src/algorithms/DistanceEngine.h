//===- algorithms/DistanceEngine.h - Shared Δ-stepping core -----*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution core shared by the four distance-style ordered algorithms
/// (SSSP, wBFS, PPSP, A*). Each is Δ-stepping with a different priority
/// function and stop condition:
///
///   SSSP : priority = dist(v),          no early stop
///   wBFS : same, Δ fixed to 1
///   PPSP : same, stop when iΔ ≥ dist(target)
///   A*   : priority = dist(v) + h(v),   stop when iΔ ≥ dist(target)
///
/// This header corresponds to the code the GraphIt compiler *generates* for
/// those programs: `distanceOrderedRun` dispatches on the schedule to the
/// eager engine (with or without bucket fusion, §5.2) or to the lazy
/// bucket-update loop with direction-optimized traversal (§5.1).
///
/// Everything is generic over the graph type: `Graph` (immutable CSR) and
/// `DeltaGraph` (delta-overlay snapshot view, graph/DeltaGraph.h) run
/// through the same code. `distanceOrderedSeededRun` is the multi-source
/// variant incremental repair uses to settle an affected region from its
/// boundary instead of re-running from the original source.
///
/// It is an internal header of the algorithms library, not public API.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_DISTANCEENGINE_H
#define GRAPHIT_ALGORITHMS_DISTANCEENGINE_H

#include "core/OrderedProcess.h"
#include "core/Schedule.h"
#include "graph/Graph.h"
#include "runtime/LazyBucketQueue.h"
#include "runtime/Traversal.h"
#include "support/Atomics.h"
#include "support/Timer.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace graphit {
namespace detail {

/// Default (no-op) improvement observer for `distanceOrderedRun`.
struct NoTouchFn {
  void operator()(VertexId, VertexId) const {}
};

/// The eager engine's relaxation closure over a distance array: re-checks
/// staleness against the current bucket key, CASes improvements in, and
/// pushes improved neighbors at their coarsened key.
template <typename GraphT, typename HeurFn, typename TouchFn>
auto makeEagerRelax(const GraphT &G, std::vector<Priority> &Dist,
                    const int64_t Delta, HeurFn &Heur, TouchFn &Touch) {
  return [&G, &Dist, Delta, &Heur, &Touch](VertexId U, int64_t CurrKey,
                                           auto &&Push) {
    // Relaxed atomic loads: other threads CAS these slots concurrently;
    // the pre-check needs no ordering (atomicWriteMin re-validates) but
    // a plain load would be a data race.
    Priority DU = atomicLoadRelaxed(&Dist[U]);
    if ((DU + Heur(U)) / Delta < CurrKey)
      return; // stale: settled in an earlier bucket
    for (WNode E : G.outNeighbors(U)) {
      Priority ND = DU + E.W;
      if (ND < atomicLoadRelaxed(&Dist[E.V]) &&
          atomicWriteMin(&Dist[E.V], ND)) {
        Touch(E.V, U);
        int64_t Key = (ND + Heur(E.V)) / Delta;
        Push(E.V, std::max(Key, CurrKey));
      }
    }
  };
}

/// The lazy bucket-update drain loop (Fig. 5 / Fig. 9(a)-(b)) over an
/// already-seeded queue.
template <typename GraphT, typename HeurFn, typename StopFn,
          typename TouchFn>
void lazyDistanceLoop(const GraphT &G, LazyBucketQueue &Queue,
                      std::vector<Priority> &Dist, const Schedule &S,
                      HeurFn &Heur, StopFn &Stop, TouchFn &Touch,
                      OrderedStats &Stats) {
  const int64_t Delta = S.Delta;
  Timer Clock;
  TraversalBuffers Buffers(G);

  auto Push = [&](VertexId Sv, VertexId Dv, Weight W) {
    Priority ND = atomicLoadRelaxed(&Dist[Sv]) + W;
    if (ND < atomicLoadRelaxed(&Dist[Dv]) && atomicWriteMin(&Dist[Dv], ND)) {
      Touch(Dv, Sv);
      return true;
    }
    return false;
  };
  auto Pull = [&](VertexId Sv, VertexId Dv, Weight W) {
    Priority ND = atomicLoad(&Dist[Sv]) + W;
    if (ND < Dist[Dv]) {
      // Dv is owned by this thread during a pull round, but other threads
      // read it concurrently as a source — store atomically (relaxed).
      atomicStoreRelaxed(&Dist[Dv], ND);
      Touch(Dv, Sv);
      return true;
    }
    return false;
  };

  while (Queue.nextBucket()) {
    int64_t CurrKey = Queue.currentKey();
    if (Stop(CurrKey))
      break;
    ++Stats.Rounds;
    const std::vector<VertexId> &Bucket = Queue.currentBucket();
    Stats.VerticesProcessed += static_cast<int64_t>(Bucket.size());

    // Fused handoff (§5.1): the changed destinations scatter straight into
    // buckets, computing each key inline from the priority vector — no
    // second (vertices, keys) array pair and no separate key-fill pass.
    const std::vector<VertexId> &Changed =
        edgeApplyOut(G, Bucket, S.Dir, S.Par, Buffers, Push, Pull);
    Queue.updateBucketsWith(
        Changed.data(), static_cast<Count>(Changed.size()),
        [&](Count, VertexId V) {
          return std::max((Dist[V] + Heur(V)) / Delta, CurrKey);
        });
  }
  Stats.OverflowRebuckets = Queue.overflowRebuckets();
  Stats.Seconds = Clock.seconds();
}

/// Runs the ordered distance computation. \p Dist must be initialized
/// (kInfiniteDistance everywhere except the source). \p Heur maps a vertex
/// to an admissible, consistent lower bound on its remaining distance
/// (return 0 for plain SSSP). \p Stop is evaluated on round-stable state at
/// bucket boundaries with the current bucket key. \p Touch is invoked as
/// `Touch(V, U)` after every successful relaxation that lowered `Dist[V]`
/// via the edge (U, V); it may run concurrently from many threads and must
/// synchronize internally (the QueryEngine's pooled state uses it to log
/// touched vertices and parents; the default is a no-op).
/// \p FrontierScratch optionally reuses the eager engine's O(E) frontier
/// buffer across runs (see eagerOrderedProcess).
template <typename GraphT, typename HeurFn, typename StopFn,
          typename TouchFn = NoTouchFn>
OrderedStats distanceOrderedRun(const GraphT &G, VertexId Source,
                                std::vector<Priority> &Dist,
                                const Schedule &S, HeurFn &&Heur,
                                StopFn &&Stop, TouchFn &&Touch = TouchFn{},
                                std::vector<VertexId> *FrontierScratch =
                                    nullptr) {
  OrderedStats Stats;
  const int64_t Delta = S.Delta;
  if (Dist[Source] != 0)
    fatalError("distanceOrderedRun: source distance must start at 0");

  if (S.isEager()) {
    auto Relax = makeEagerRelax(G, Dist, Delta, Heur, Touch);
    eagerOrderedProcess(G.numNodes(), G.numEdges() + 1, Source,
                        Heur(Source) / Delta, S, Relax, Stop, &Stats,
                        FrontierScratch);
    return Stats;
  }

  // Lazy bucket update (Fig. 5 / Fig. 9(a)-(b)).
  LazyBucketQueue Queue(G.numNodes(), S.NumOpenBuckets,
                        PriorityOrder::LowerFirst);
  Queue.insert(Source, Heur(Source) / Delta);
  lazyDistanceLoop(G, Queue, Dist, S, Heur, Stop, Touch, Stats);
  return Stats;
}

/// Multi-source variant for incremental repair: \p Seeds are vertices
/// whose tentative distance in \p Dist was just lowered (by a boundary
/// re-relaxation or a decreased edge); the engine settles everything
/// reachable from them, leaving exact distances. No heuristic, no early
/// stop — repair serves SSSP-complete states. Runs to quiescence in
/// O(affected region), not O(V + E).
template <typename GraphT, typename TouchFn = NoTouchFn>
OrderedStats distanceOrderedSeededRun(const GraphT &G,
                                      const std::vector<VertexId> &Seeds,
                                      std::vector<Priority> &Dist,
                                      const Schedule &S,
                                      TouchFn &&Touch = TouchFn{},
                                      std::vector<VertexId> *FrontierScratch =
                                          nullptr) {
  OrderedStats Stats;
  const int64_t Delta = S.Delta;
  auto Heur = [](VertexId) { return Priority{0}; };
  auto Stop = [](int64_t) { return false; };
  if (Seeds.empty())
    return Stats;

  if (S.isEager()) {
    auto Relax = makeEagerRelax(G, Dist, Delta, Heur, Touch);
    std::vector<std::pair<VertexId, int64_t>> SeedKeys;
    SeedKeys.reserve(Seeds.size());
    for (VertexId V : Seeds)
      SeedKeys.push_back({V, Dist[V] / Delta});
    eagerOrderedProcessSeeds(
        G.numNodes(), G.numEdges() + static_cast<Count>(Seeds.size()) + 1,
        SeedKeys.data(), static_cast<Count>(SeedKeys.size()), S, Relax,
        Stop, &Stats, FrontierScratch);
    return Stats;
  }

  LazyBucketQueue Queue(G.numNodes(), S.NumOpenBuckets,
                        PriorityOrder::LowerFirst);
  for (VertexId V : Seeds)
    Queue.insert(V, Dist[V] / Delta);
  lazyDistanceLoop(G, Queue, Dist, S, Heur, Stop, Touch, Stats);
  return Stats;
}

/// Shared result container for the distance family.
struct DistanceRun {
  std::vector<Priority> Dist;
  OrderedStats Stats;
};

/// Convenience wrapper: allocate/initialize distances and run.
template <typename GraphT, typename HeurFn, typename StopFn>
DistanceRun runDistanceAlgorithm(const GraphT &G, VertexId Source,
                                 const Schedule &S, HeurFn &&Heur,
                                 StopFn &&Stop) {
  DistanceRun R;
  R.Dist.assign(static_cast<size_t>(G.numNodes()), kInfiniteDistance);
  R.Dist[Source] = 0;
  R.Stats = distanceOrderedRun(G, Source, R.Dist, S,
                               std::forward<HeurFn>(Heur),
                               std::forward<StopFn>(Stop));
  return R;
}

} // namespace detail
} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_DISTANCEENGINE_H
