//===- algorithms/Dijkstra.cpp - Serial reference shortest paths ----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/Dijkstra.h"

#include <cstddef>
#include <queue>

using namespace graphit;

namespace {

using HeapItem = std::pair<Priority, VertexId>;
using MinHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

} // namespace

std::vector<Priority> graphit::dijkstraSSSP(const Graph &G,
                                            VertexId Source) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  MinHeap Heap;
  Heap.push({0, Source});
  while (!Heap.empty()) {
    auto [D, U] = Heap.top();
    Heap.pop();
    if (D > Dist[U])
      continue; // stale heap entry
    for (WNode E : G.outNeighbors(U)) {
      if (D + E.W < Dist[E.V]) {
        Dist[E.V] = D + E.W;
        Heap.push({Dist[E.V], E.V});
      }
    }
  }
  return Dist;
}

Priority graphit::dijkstraPPSP(const Graph &G, VertexId Source,
                               VertexId Target) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  MinHeap Heap;
  Heap.push({0, Source});
  while (!Heap.empty()) {
    auto [D, U] = Heap.top();
    Heap.pop();
    if (U == Target)
      return D;
    if (D > Dist[U])
      continue;
    for (WNode E : G.outNeighbors(U)) {
      if (D + E.W < Dist[E.V]) {
        Dist[E.V] = D + E.W;
        Heap.push({Dist[E.V], E.V});
      }
    }
  }
  return kInfiniteDistance;
}
