//===- algorithms/SetCover.cpp - Approximate set cover --------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/SetCover.h"

#include "runtime/LazyBucketQueue.h"
#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Parallel.h"
#include "support/Random.h"
#include "support/TSanAnnotate.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <omp.h>
#include <queue>

using namespace graphit;

namespace {

constexpr uint64_t kMaxRank = std::numeric_limits<uint64_t>::max();

/// Coverage of set \p V: the uncovered vertices of its closed neighborhood.
Count countUncovered(const Graph &G, const std::vector<uint8_t> &Uncovered,
                     VertexId V) {
  Count C = Uncovered[V] ? 1 : 0;
  for (WNode E : G.outNeighbors(V))
    C += Uncovered[E.V] ? 1 : 0;
  return C;
}

/// Applies \p Body to each member of V's closed neighborhood.
template <typename Fn>
void forClosedNeighborhood(const Graph &G, VertexId V, Fn &&Body) {
  Body(V);
  for (WNode E : G.outNeighbors(V))
    Body(E.V);
}

} // namespace

bool graphit::isValidCover(const Graph &G,
                           const std::vector<VertexId> &Chosen) {
  std::vector<uint8_t> Covered(static_cast<size_t>(G.numNodes()), 0);
  for (VertexId S : Chosen)
    forClosedNeighborhood(G, S, [&](VertexId E) { Covered[E] = 1; });
  for (Count V = 0; V < G.numNodes(); ++V)
    if (!Covered[V])
      return false;
  return true;
}

SetCoverResult graphit::approxSetCover(const Graph &G, const Schedule &S,
                                       double Epsilon, uint64_t Seed) {
  if (!G.isSymmetric())
    fatalError("set cover requires a symmetric graph (Table 3)");
  if (Epsilon <= 0.0 || Epsilon >= 1.0)
    fatalError("approxSetCover: epsilon must be in (0, 1)");

  Count N = G.numNodes();
  SetCoverResult R;
  if (N == 0)
    return R;

  Timer Clock;
  const double LogBase = std::log1p(Epsilon);
  auto BucketOf = [&](Count Coverage) -> int64_t {
    // Coverage >= 1; bucket = floor(log_{1+eps}(coverage)).
    return static_cast<int64_t>(std::floor(
        std::log(static_cast<double>(Coverage)) / LogBase + 1e-12));
  };
  auto BucketFloor = [&](int64_t B) -> Count {
    return static_cast<Count>(
        std::ceil(std::pow(1.0 + Epsilon, static_cast<double>(B)) - 1e-9));
  };

  std::vector<uint8_t> Uncovered(static_cast<size_t>(N), 1);
  std::vector<uint64_t> Reserver(static_cast<size_t>(N), kMaxRank);
  std::vector<Count> Coverage(static_cast<size_t>(N), 0);
  Count NumUncovered = N;

  LazyBucketQueue Queue(N, S.NumOpenBuckets, PriorityOrder::HigherFirst);
  {
    std::vector<VertexId> Ids(static_cast<size_t>(N));
    parallelFor(
        0, N, [&](Count V) { Ids[V] = static_cast<VertexId>(V); },
        Parallelization::StaticVertexParallel);
    Queue.updateBucketsWith(Ids.data(), N, [&](Count, VertexId V) {
      return BucketOf(G.outDegree(V) + 1);
    });
  }

  std::vector<uint8_t> Won(static_cast<size_t>(N), 0);
  std::vector<VertexId> Requeue;
  std::vector<std::vector<VertexId>> ChosenPerThread(
      static_cast<size_t>(omp_get_max_threads()));
  int64_t RoundSalt = 0;

  auto RankOf = [&](VertexId V) {
    return (hash64(Seed ^ static_cast<uint64_t>(RoundSalt) ^ V)
            << 32) |
           V; // unique per vertex; re-randomized every round
  };

  // graphit-lint: allow(cancel-poll): set cover is batch analytics, not a
  // served query; the API takes no CancelToken and the loop terminates
  // once every element is covered, so there is no deadline to honor.
  while (NumUncovered > 0 && Queue.nextBucket()) {
    ++R.Stats.Rounds;
    ++RoundSalt;
    int64_t B = Queue.currentKey();
    const std::vector<VertexId> &Cands = Queue.currentBucket();
    Count M = static_cast<Count>(Cands.size());
    R.Stats.VerticesProcessed += M;

    // Recompute true coverage; classify candidates.
    parallelFor(0, M, [&](Count I) {
      Coverage[Cands[I]] = countUncovered(G, Uncovered, Cands[I]);
    });

    // Reservation: every still-valid candidate stamps its rank on its
    // uncovered elements (lower rank wins).
    parallelFor(0, M, [&](Count I) {
      VertexId V = Cands[I];
      if (Coverage[V] <= 0 || BucketOf(Coverage[V]) != B)
        return;
      uint64_t Rank = RankOf(V);
      forClosedNeighborhood(G, V, [&](VertexId E) {
        if (atomicLoadRelaxed(&Uncovered[E]))
          atomicWriteMin(&Reserver[E], Rank);
      });
    });

    // Commit: a candidate joins the cover if it won nearly its claimed
    // coverage (the bucket's lower bound, shaved by epsilon).
    Count NewlyCovered = 0;
    const Count Threshold = std::max<Count>(
        1, static_cast<Count>(std::ceil(
               (1.0 - Epsilon) * static_cast<double>(BucketFloor(B)))));
    int Tag = 0;
    GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
    {
      GRAPHIT_OMP_REGION_BEGIN(&Tag);
      std::vector<VertexId> &Mine =
          ChosenPerThread[static_cast<size_t>(omp_get_thread_num())];
      Count MyCovered = 0;
#pragma omp for schedule(dynamic, kDynamicGrain) nowait
      for (Count I = 0; I < M; ++I) {
        VertexId V = Cands[I];
        if (Coverage[V] <= 0 || BucketOf(Coverage[V]) != B)
          continue;
        uint64_t Rank = RankOf(V);
        Count Wins = 0;
        // Elements are claimed exclusively through Reserver (one winning
        // rank per element), but neighbors' claims interleave — all
        // Uncovered traffic in this region must be atomic.
        forClosedNeighborhood(G, V, [&](VertexId E) {
          if (atomicLoadRelaxed(&Uncovered[E]) && Reserver[E] == Rank)
            ++Wins;
        });
        if (Wins < Threshold)
          continue;
        Won[V] = 1;
        Mine.push_back(V);
        forClosedNeighborhood(G, V, [&](VertexId E) {
          if (atomicLoadRelaxed(&Uncovered[E]) && Reserver[E] == Rank) {
            atomicStoreRelaxed(&Uncovered[E], uint8_t{0});
            ++MyCovered;
          }
        });
      }
      fetchAdd(&NewlyCovered, MyCovered);
      GRAPHIT_OMP_REGION_END(&Tag);
    }
    GRAPHIT_OMP_REGION_EXIT(&Tag);
    NumUncovered -= NewlyCovered;

    // Reset reservations and requeue losers/demoted candidates. Elements
    // shared by two candidates are written concurrently (same value).
    parallelFor(0, M, [&](Count I) {
      forClosedNeighborhood(G, Cands[I], [&](VertexId E) {
        atomicStoreRelaxed(&Reserver[E], kMaxRank);
      });
    });
    Requeue.clear();
    for (Count I = 0; I < M; ++I) {
      VertexId V = Cands[I];
      if (Won[V]) {
        Won[V] = 0;
        continue;
      }
      if (Coverage[V] <= 0)
        continue; // covers nothing anymore; never needed
      Requeue.push_back(V);
    }
    Queue.updateBucketsWith(
        Requeue.data(), static_cast<Count>(Requeue.size()),
        [&](Count, VertexId V) { return std::min(B, BucketOf(Coverage[V])); });
  }

  for (const std::vector<VertexId> &L : ChosenPerThread)
    R.ChosenSets.insert(R.ChosenSets.end(), L.begin(), L.end());
  R.CoveredElements = N - NumUncovered;
  R.Stats.OverflowRebuckets = Queue.overflowRebuckets();
  R.Stats.Seconds = Clock.seconds();
  return R;
}

SetCoverResult graphit::setCoverSerial(const Graph &G) {
  if (!G.isSymmetric())
    fatalError("set cover requires a symmetric graph (Table 3)");
  Count N = G.numNodes();
  SetCoverResult R;
  if (N == 0)
    return R;

  Timer Clock;
  std::vector<uint8_t> Uncovered(static_cast<size_t>(N), 1);
  Count NumUncovered = N;

  // Lazy-evaluation greedy: pop the stalest max, recount, reinsert if the
  // count dropped; otherwise commit. Exactly the serial greedy order.
  using Item = std::pair<Count, VertexId>;
  std::priority_queue<Item> Heap;
  for (Count V = 0; V < N; ++V)
    Heap.push({G.outDegree(static_cast<VertexId>(V)) + 1,
               static_cast<VertexId>(V)});

  while (NumUncovered > 0 && !Heap.empty()) {
    auto [Claimed, V] = Heap.top();
    Heap.pop();
    Count Actual = countUncovered(G, Uncovered, V);
    if (Actual <= 0)
      continue;
    if (Actual < Claimed) {
      Heap.push({Actual, V});
      continue;
    }
    R.ChosenSets.push_back(V);
    forClosedNeighborhood(G, V, [&](VertexId E) {
      if (Uncovered[E]) {
        Uncovered[E] = 0;
        --NumUncovered;
      }
    });
    ++R.Stats.Rounds;
  }
  R.CoveredElements = N - NumUncovered;
  R.Stats.Seconds = Clock.seconds();
  return R;
}
