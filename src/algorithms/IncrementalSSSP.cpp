//===- algorithms/IncrementalSSSP.cpp - Incremental distance repair -------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Repair is a header template (algorithms/IncrementalSSSP.h) so it runs
// over both `Graph` and the `DeltaGraph` snapshot view; this translation
// unit anchors the library and verifies the header is self-contained.
//
//===----------------------------------------------------------------------===//

#include "algorithms/IncrementalSSSP.h"
