//===- algorithms/AStar.cpp - A* search on road networks ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/AStar.h"

#include "algorithms/DistanceEngine.h"
#include "algorithms/QueryState.h"
#include "support/Abort.h"

#include <cmath>

using namespace graphit;

namespace {

/// Shared A* core over a caller-provided distance array. \p Heur is any
/// admissible, consistent remaining-distance bound with h(target) = 0.
template <typename HeurFn, typename TouchFn>
PPSPResult aStarRun(const Graph &G, VertexId Source, VertexId Target,
                    const Schedule &S, std::vector<Priority> &Dist,
                    HeurFn &&Heur, TouchFn &&Touch,
                    std::vector<VertexId> *FrontierScratch = nullptr) {
  const int64_t Delta = S.Delta;
  // h(target) = 0, so the PPSP stop condition transfers to f-space
  // unchanged: buckets at key i hold f >= iΔ >= dist(target) = f(target).
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrKey * Delta >= Best;
  };
  OrderedStats Stats = detail::distanceOrderedRun(
      G, Source, Dist, S, std::forward<HeurFn>(Heur), Stop,
      std::forward<TouchFn>(Touch), FrontierScratch);
  return PPSPResult{Dist[Target], Stats};
}

} // namespace

Priority graphit::aStarHeuristic(const Graph &G, VertexId V,
                                 VertexId Target) {
  const Coordinates &C = G.coordinates();
  double DX = C.X[V] - C.X[Target];
  double DY = C.Y[V] - C.Y[Target];
  // Edge weights are >= 100 x Euclidean length; the factor 50 leaves slack
  // so the floor-rounded heuristic stays consistent:
  //   h(u) - h(v) <= 50 e(u,v) + 1 <= 100 e(u,v) <= w(u,v)
  // (edge lengths are >= 0.02 units by construction).
  return static_cast<Priority>(std::floor(50.0 * std::sqrt(DX * DX +
                                                           DY * DY)));
}

PPSPResult graphit::aStarSearch(const Graph &G, VertexId Source,
                                VertexId Target, const Schedule &S) {
  if (!G.hasCoordinates())
    fatalError("aStarSearch: graph has no coordinates");
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  auto Heur = [&](VertexId V) { return aStarHeuristic(G, V, Target); };
  return aStarRun(G, Source, Target, S, Dist, Heur, detail::NoTouchFn{});
}

PPSPResult graphit::aStarSearch(const Graph &G, VertexId Source,
                                VertexId Target, const Schedule &S,
                                DistanceState &State,
                                const AStarHeuristic *Heur) {
  if (!Heur && !G.hasCoordinates())
    fatalError("aStarSearch: graph has no coordinates and no heuristic");
  State.beginQuery(Source);
  auto Touch = [&State](VertexId V, VertexId From) {
    State.recordImprovement(V, From);
  };
  if (Heur)
    return aStarRun(
        G, Source, Target, S, State.distances(),
        [&](VertexId V) { return Heur->estimate(V, Target); }, Touch,
        &State.frontierScratch());
  return aStarRun(
      G, Source, Target, S, State.distances(),
      [&](VertexId V) { return aStarHeuristic(G, V, Target); }, Touch,
      &State.frontierScratch());
}
