//===- algorithms/AStar.cpp - A* search on road networks ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/AStar.h"

#include "algorithms/DistanceEngine.h"
#include "algorithms/QueryState.h"
#include "graph/DeltaGraph.h"
#include "support/Abort.h"

#include <cmath>

using namespace graphit;

namespace {

/// Shared A* core over a caller-provided distance array. \p Heur is any
/// admissible, consistent remaining-distance bound with h(target) = 0.
template <typename GraphT, typename HeurFn, typename TouchFn>
PPSPResult aStarRun(const GraphT &G, VertexId Source, VertexId Target,
                    const Schedule &S, std::vector<Priority> &Dist,
                    HeurFn &&Heur, TouchFn &&Touch,
                    std::vector<VertexId> *FrontierScratch = nullptr,
                    const RunLimits &Limits = RunLimits{}) {
  const int64_t Delta = S.Delta;
  const Priority Budget = Limits.MaxDistance;
  int64_t BudgetKey = kMaxEagerKey; // see ppspRun: benign same-value writes
  // h(target) = 0, so the PPSP stop condition transfers to f-space
  // unchanged: buckets at key i hold f >= iΔ >= dist(target) = f(target).
  // The budget bounds f, which lower-bounds the true distance, so a
  // budget stop still reports a sound settled prefix.
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    if (Best != kInfiniteDistance && CurrKey * Delta >= Best)
      return true;
    if (CurrKey * Delta >= Budget) {
      atomicStoreRelaxed(&BudgetKey, CurrKey);
      return true;
    }
    return false;
  };
  OrderedStats Stats = detail::distanceOrderedRun(
      G, Source, Dist, S, std::forward<HeurFn>(Heur), Stop,
      std::forward<TouchFn>(Touch), FrontierScratch, Limits.Cancel);
  return detail::interruptiblePointResult(Dist[Target], Stats, Delta,
                                          atomicLoadRelaxed(&BudgetKey));
}

/// The one definition of the coordinate bound, shared by every entry
/// point (Graph, DeltaGraph, pooled, fresh). Edge weights are >= 100 x
/// Euclidean length; the factor 50 leaves slack so the floor-rounded
/// heuristic stays consistent:
///   h(u) - h(v) <= 50 e(u,v) + 1 <= 100 e(u,v) <= w(u,v)
/// (edge lengths are >= 0.02 units by construction).
Priority coordinateBound(const Coordinates &C, VertexId V, VertexId Target) {
  double DX = C.X[V] - C.X[Target];
  double DY = C.Y[V] - C.Y[Target];
  return static_cast<Priority>(std::floor(50.0 * std::sqrt(DX * DX +
                                                           DY * DY)));
}

} // namespace

Priority graphit::aStarHeuristic(const Graph &G, VertexId V,
                                 VertexId Target) {
  return coordinateBound(G.coordinates(), V, Target);
}

PPSPResult graphit::aStarSearch(const Graph &G, VertexId Source,
                                VertexId Target, const Schedule &S) {
  if (!G.hasCoordinates())
    fatalError("aStarSearch: graph has no coordinates");
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  auto Heur = [&](VertexId V) { return aStarHeuristic(G, V, Target); };
  return aStarRun(G, Source, Target, S, Dist, Heur, detail::NoTouchFn{});
}

namespace {

template <typename GraphT>
PPSPResult aStarPooled(const GraphT &G, VertexId Source, VertexId Target,
                       const Schedule &S, DistanceState &State,
                       const AStarHeuristic *Heur, const RunLimits &Limits) {
  if (!Heur && !G.hasCoordinates())
    fatalError("aStarSearch: graph has no coordinates and no heuristic");
  State.beginQuery(Source);
  auto Touch = [&State](VertexId V, VertexId From) {
    State.recordImprovement(V, From);
  };
  if (Heur)
    return aStarRun(
        G, Source, Target, S, State.distances(),
        [&](VertexId V) { return Heur->estimate(V, Target); }, Touch,
        &State.frontierScratch(), Limits);
  const Coordinates &C = G.coordinates();
  return aStarRun(
      G, Source, Target, S, State.distances(),
      [&](VertexId V) { return coordinateBound(C, V, Target); }, Touch,
      &State.frontierScratch(), Limits);
}

} // namespace

PPSPResult graphit::aStarSearch(const Graph &G, VertexId Source,
                                VertexId Target, const Schedule &S,
                                DistanceState &State,
                                const AStarHeuristic *Heur,
                                const RunLimits &Limits) {
  return aStarPooled(G, Source, Target, S, State, Heur, Limits);
}

PPSPResult graphit::aStarSearch(const DeltaGraph &G, VertexId Source,
                                VertexId Target, const Schedule &S,
                                DistanceState &State,
                                const AStarHeuristic *Heur,
                                const RunLimits &Limits) {
  return aStarPooled(G, Source, Target, S, State, Heur, Limits);
}

PPSPResult graphit::aStarSearch(const ShardedDeltaView &G, VertexId Source,
                                VertexId Target, const Schedule &S,
                                DistanceState &State,
                                const AStarHeuristic *Heur,
                                const RunLimits &Limits) {
  return aStarPooled(G, Source, Target, S, State, Heur, Limits);
}
