//===- algorithms/AStar.cpp - A* search on road networks ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/AStar.h"

#include "algorithms/DistanceEngine.h"
#include "support/Abort.h"

#include <cmath>

using namespace graphit;

Priority graphit::aStarHeuristic(const Graph &G, VertexId V,
                                 VertexId Target) {
  const Coordinates &C = G.coordinates();
  double DX = C.X[V] - C.X[Target];
  double DY = C.Y[V] - C.Y[Target];
  // Edge weights are >= 100 x Euclidean length; the factor 50 leaves slack
  // so the floor-rounded heuristic stays consistent:
  //   h(u) - h(v) <= 50 e(u,v) + 1 <= 100 e(u,v) <= w(u,v)
  // (edge lengths are >= 0.02 units by construction).
  return static_cast<Priority>(std::floor(50.0 * std::sqrt(DX * DX +
                                                           DY * DY)));
}

PPSPResult graphit::aStarSearch(const Graph &G, VertexId Source,
                                VertexId Target, const Schedule &S) {
  if (!G.hasCoordinates())
    fatalError("aStarSearch: graph has no coordinates");
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  Dist[Source] = 0;
  const int64_t Delta = S.Delta;
  auto Heur = [&](VertexId V) { return aStarHeuristic(G, V, Target); };
  // h(target) = 0, so the PPSP stop condition transfers to f-space
  // unchanged: buckets at key i hold f >= iΔ >= dist(target) = f(target).
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrKey * Delta >= Best;
  };
  OrderedStats Stats =
      detail::distanceOrderedRun(G, Source, Dist, S, Heur, Stop);
  return PPSPResult{Dist[Target], Stats};
}
