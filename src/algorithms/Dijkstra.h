//===- algorithms/Dijkstra.h - Serial reference shortest paths --*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serial binary-heap Dijkstra, used as the correctness oracle for every
/// parallel shortest-path variant in the test suite, and as the
/// work-optimal serial lower bound in benchmark sanity checks.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_DIJKSTRA_H
#define GRAPHIT_ALGORITHMS_DIJKSTRA_H

#include "graph/Graph.h"

#include <vector>

namespace graphit {

/// Exact single-source distances from \p Source (serial).
std::vector<Priority> dijkstraSSSP(const Graph &G, VertexId Source);

/// Exact point-to-point distance with early heap exit (serial).
Priority dijkstraPPSP(const Graph &G, VertexId Source, VertexId Target);

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_DIJKSTRA_H
