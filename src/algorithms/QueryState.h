//===- algorithms/QueryState.h - Reusable per-query state -------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Caller-owned, reusable state for the distance family (SSSP, PPSP, A*).
///
/// A fresh query pays O(V) just to fill the distance array with infinity —
/// on a road network that costs more than a nearby point-to-point query
/// itself. `DistanceState` amortizes it: the arrays are allocated and
/// initialized once, every query logs the vertices it improves
/// (epoch-stamped, so each vertex is logged at most once per query), and
/// the next `beginQuery` resets exactly those — O(touched), not O(V).
///
/// The pooled overloads of `deltaSteppingSSSP` / `pointToPointShortestPath`
/// / `aStarSearch` take a `DistanceState &` instead of allocating
/// internally; `service/QueryEngine` keeps one state per worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_ALGORITHMS_QUERYSTATE_H
#define GRAPHIT_ALGORITHMS_QUERYSTATE_H

#include "support/Atomics.h"
#include "support/Types.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphit {

/// Epoch-versioned distance/parent arrays plus a touched-vertex log.
///
/// Usage per query:
///   State.beginQuery(Source);            // O(touched by previous query)
///   ... run an engine over State.distances(), calling
///       State.recordImprovement(V, U) after each successful relaxation ...
///   State.dist(V) / State.parent(V) / touched list are then valid until
///   the next beginQuery.
///
/// `recordImprovement` is safe to call concurrently from many threads;
/// everything else is single-threaded (one query owns the state at a time).
class DistanceState {
public:
  /// Allocates state for \p NumNodes vertices; distances start at
  /// kInfiniteDistance. With \p TrackParents, a parent array is maintained
  /// for path reconstruction.
  explicit DistanceState(Count NumNodes, bool TrackParents = false);

  Count numNodes() const { return static_cast<Count>(Dist.size()); }
  bool tracksParents() const { return TrackParents; }

  /// Prepares for a new query from \p Source: resets every vertex touched
  /// by the previous query back to infinity, bumps the epoch, and seeds
  /// `Dist[Source] = 0` (logging the source as touched).
  void beginQuery(VertexId Source);

  /// Grows the state to \p NewNumNodes vertices (live-graph vertex
  /// insertion). Appended slots start untouched at infinity, so a held
  /// solution stays valid — an inserted vertex is unreachable until an
  /// edge batch seeds it (incremental repair then picks it up like any
  /// other improved vertex). Shrinking is not supported (no-op).
  void resize(Count NewNumNodes);

  /// Records that `Dist[V]` was lowered via the edge (\p From, V). Called
  /// concurrently from the relaxation inner loop: the first improvement of
  /// V this epoch appends V to the touched log (exactly once, via an
  /// atomic epoch-stamp exchange); every improvement updates the parent.
  void recordImprovement(VertexId V, VertexId From) {
    if (TrackParents)
      atomicStoreRelaxed(&Parent[V], From);
    uint32_t Cur = Epoch;
    if (atomicLoadRelaxed(&Stamp[V]) != Cur &&
        atomicExchange(&Stamp[V], Cur) != Cur)
      Touched[static_cast<size_t>(fetchAdd(&NumTouched, Count{1}))] = V;
  }

  /// The distance array the engine runs over.
  std::vector<Priority> &distances() { return Dist; }
  Priority dist(VertexId V) const { return Dist[V]; }

  /// Parent of \p V on some shortest-path improvement chain, or
  /// kInvalidVertex if untouched. Under concurrent relaxation the stored
  /// parent is the *last successful improvement's* source, which can lag
  /// the final distance — verify `dist(parent) + w == dist(v)` when
  /// reconstructing paths (service/QueryEngine::extractPath does).
  VertexId parent(VertexId V) const {
    return TrackParents ? Parent[V] : kInvalidVertex;
  }

  /// Vertices improved by the current query, in first-touch order
  /// (nondeterministic across runs; contents are exactly the vertices with
  /// finite distance).
  Count numTouched() const { return NumTouched; }
  VertexId touched(Count I) const { return Touched[static_cast<size_t>(I)]; }

  /// Queries served by this state so far (epoch counter).
  uint64_t queriesBegun() const { return QueriesBegun; }

  /// Source vertex of the current query (kInvalidVertex before the first
  /// beginQuery). Incremental repair re-anchors on it.
  VertexId source() const { return Source_; }

  /// Caller-owned scratch for the eager engine's shared frontier (grown
  /// once to O(E) and reused, instead of value-initialized per run).
  std::vector<VertexId> &frontierScratch() { return FrontierScratch; }

private:
  std::vector<Priority> Dist;
  std::vector<VertexId> Parent;  ///< empty unless TrackParents
  std::vector<uint32_t> Stamp;   ///< epoch stamp per vertex
  std::vector<VertexId> Touched; ///< capacity NumNodes; first NumTouched valid
  std::vector<VertexId> FrontierScratch; ///< eager engine frontier reuse
  Count NumTouched = 0;
  uint32_t Epoch = 0;
  uint64_t QueriesBegun = 0;
  VertexId Source_ = kInvalidVertex;
  bool TrackParents;
};

} // namespace graphit

#endif // GRAPHIT_ALGORITHMS_QUERYSTATE_H
