//===- algorithms/SSSP.cpp - Δ-stepping shortest paths --------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "algorithms/SSSP.h"

#include "algorithms/DistanceEngine.h"
#include "algorithms/QueryState.h"
#include "graph/DeltaGraph.h"

using namespace graphit;

namespace {

template <typename GraphT>
SSSPResult ssspFresh(const GraphT &G, VertexId Source, const Schedule &S) {
  detail::DistanceRun R = detail::runDistanceAlgorithm(
      G, Source, S, [](VertexId) { return Priority{0}; },
      [](int64_t) { return false; });
  return SSSPResult{std::move(R.Dist), R.Stats};
}

template <typename GraphT>
OrderedStats ssspPooled(const GraphT &G, VertexId Source, const Schedule &S,
                        DistanceState &State,
                        const CancelToken *Cancel = nullptr) {
  State.beginQuery(Source);
  return detail::distanceOrderedRun(
      G, Source, State.distances(), S, [](VertexId) { return Priority{0}; },
      [](int64_t) { return false; },
      [&State](VertexId V, VertexId From) {
        State.recordImprovement(V, From);
      },
      &State.frontierScratch(), Cancel);
}

} // namespace

SSSPResult graphit::deltaSteppingSSSP(const Graph &G, VertexId Source,
                                      const Schedule &S) {
  return ssspFresh(G, Source, S);
}

OrderedStats graphit::deltaSteppingSSSP(const Graph &G, VertexId Source,
                                        const Schedule &S,
                                        DistanceState &State,
                                        const CancelToken *Cancel) {
  return ssspPooled(G, Source, S, State, Cancel);
}

SSSPResult graphit::deltaSteppingSSSP(const DeltaGraph &G, VertexId Source,
                                      const Schedule &S) {
  return ssspFresh(G, Source, S);
}

OrderedStats graphit::deltaSteppingSSSP(const DeltaGraph &G,
                                        VertexId Source, const Schedule &S,
                                        DistanceState &State,
                                        const CancelToken *Cancel) {
  return ssspPooled(G, Source, S, State, Cancel);
}

SSSPResult graphit::deltaSteppingSSSP(const ShardedDeltaView &G,
                                      VertexId Source, const Schedule &S) {
  return ssspFresh(G, Source, S);
}

OrderedStats graphit::deltaSteppingSSSP(const ShardedDeltaView &G,
                                        VertexId Source, const Schedule &S,
                                        DistanceState &State,
                                        const CancelToken *Cancel) {
  return ssspPooled(G, Source, S, State, Cancel);
}
