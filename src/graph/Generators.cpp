//===- graph/Generators.cpp - Synthetic graph generators ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"

#include "support/Abort.h"
#include "support/Parallel.h"
#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace graphit;

std::vector<Edge> graphit::rmatEdges(int Scale, int AvgDegree, uint64_t Seed,
                                     double A, double B, double C) {
  if (Scale <= 0 || Scale > 30)
    fatalError("rmatEdges: scale out of range");
  if (A + B + C >= 1.0)
    fatalError("rmatEdges: quadrant probabilities must sum below 1");
  Count N = Count{1} << Scale;
  Count M = N * AvgDegree;
  std::vector<Edge> Edges(static_cast<size_t>(M));

  parallelFor(
      0, M,
      [&](Count I) {
        SplitMix64 Rng(hash64(Seed ^ static_cast<uint64_t>(I)));
        VertexId Src = 0, Dst = 0;
        for (int Level = 0; Level < Scale; ++Level) {
          double R = Rng.nextDouble();
          Src <<= 1;
          Dst <<= 1;
          if (R < A) {
            // top-left quadrant: neither bit set
          } else if (R < A + B) {
            Dst |= 1;
          } else if (R < A + B + C) {
            Src |= 1;
          } else {
            Src |= 1;
            Dst |= 1;
          }
        }
        // Random id permutation so degree is uncorrelated with vertex id
        // (GAPBS does the same for its Kronecker inputs).
        Src = static_cast<VertexId>(hash64(Seed ^ Src) % N);
        Dst = static_cast<VertexId>(hash64(Seed ^ Dst) % N);
        Edges[I] = Edge{Src, Dst, 1};
      },
      Parallelization::StaticVertexParallel);
  return Edges;
}

std::vector<Edge> graphit::erdosRenyiEdges(Count NumNodes, int AvgDegree,
                                           uint64_t Seed) {
  assert(NumNodes > 0 && "need at least one vertex");
  Count M = NumNodes * AvgDegree;
  std::vector<Edge> Edges(static_cast<size_t>(M));
  parallelFor(
      0, M,
      [&](Count I) {
        SplitMix64 Rng(hash64(Seed ^ static_cast<uint64_t>(I * 2 + 1)));
        Edges[I] = Edge{
            static_cast<VertexId>(Rng.nextInt(0, NumNodes)),
            static_cast<VertexId>(Rng.nextInt(0, NumNodes)), 1};
      },
      Parallelization::StaticVertexParallel);
  return Edges;
}

RoadNetwork graphit::roadGrid(Count Rows, Count Cols, uint64_t Seed,
                              double DropFraction,
                              double DiagonalFraction) {
  if (Rows < 2 || Cols < 2)
    fatalError("roadGrid: need at least a 2x2 grid");
  RoadNetwork Net;
  Net.NumNodes = Rows * Cols;
  Net.Coords.X.resize(static_cast<size_t>(Net.NumNodes));
  Net.Coords.Y.resize(static_cast<size_t>(Net.NumNodes));

  auto IdOf = [Cols](Count R, Count C) {
    return static_cast<VertexId>(R * Cols + C);
  };

  // Jittered intersection coordinates (unit spacing, +-0.3 displacement).
  parallelFor(
      0, Net.NumNodes,
      [&](Count V) {
        Count R = V / Cols, C = V % Cols;
        SplitMix64 Rng(hash64(Seed ^ (0x1000000ULL + V)));
        Net.Coords.X[V] = static_cast<double>(C) +
                          (Rng.nextDouble() - 0.5) * 0.6;
        Net.Coords.Y[V] = static_cast<double>(R) +
                          (Rng.nextDouble() - 0.5) * 0.6;
      },
      Parallelization::StaticVertexParallel);

  auto EdgeWeight = [&](VertexId U, VertexId V, SplitMix64 &Rng) {
    double DX = Net.Coords.X[U] - Net.Coords.X[V];
    double DY = Net.Coords.Y[U] - Net.Coords.Y[V];
    double Dist = std::sqrt(DX * DX + DY * DY);
    // Road-class heterogeneity: most segments are fast (stretch near 1),
    // a long tail is up to 5x slower (local roads). Weights never drop
    // below 100 x Euclidean length, preserving A* admissibility, and the
    // variance makes hop-optimal and weight-optimal paths diverge — the
    // regime where unordered Bellman-Ford does redundant work (Fig. 1).
    double R = Rng.nextDouble();
    double Stretch = 1.0 + 4.0 * R * R;
    return static_cast<Weight>(
        std::max(1.0, std::ceil(100.0 * Dist * Stretch)));
  };

  // Grid edges, thinned by DropFraction to make the network irregular.
  for (Count R = 0; R < Rows; ++R) {
    for (Count C = 0; C < Cols; ++C) {
      VertexId U = IdOf(R, C);
      SplitMix64 Rng(hash64(Seed ^ (0x2000000ULL + U)));
      if (C + 1 < Cols && Rng.nextDouble() >= DropFraction) {
        VertexId V = IdOf(R, C + 1);
        Net.Edges.push_back(Edge{U, V, EdgeWeight(U, V, Rng)});
      }
      if (R + 1 < Rows && Rng.nextDouble() >= DropFraction) {
        VertexId V = IdOf(R + 1, C);
        Net.Edges.push_back(Edge{U, V, EdgeWeight(U, V, Rng)});
      }
      if (R + 1 < Rows && C + 1 < Cols &&
          Rng.nextDouble() < DiagonalFraction) {
        VertexId V = IdOf(R + 1, C + 1);
        Net.Edges.push_back(Edge{U, V, EdgeWeight(U, V, Rng)});
      }
    }
  }
  return Net;
}

std::vector<std::pair<VertexId, VertexId>>
graphit::localGridQueryPairs(Count Rows, Count Cols, Count Window,
                             Count HowMany, uint64_t Seed) {
  assert(Rows > 0 && Cols > 0 && Window > 0 && "degenerate grid");
  SplitMix64 Rng(Seed);
  std::vector<std::pair<VertexId, VertexId>> Pairs;
  Pairs.reserve(static_cast<size_t>(HowMany));
  for (Count I = 0; I < HowMany; ++I) {
    Count SR = Rng.nextInt(0, Rows), SC = Rng.nextInt(0, Cols);
    Count TR = std::min(
        Rows - 1,
        std::max<Count>(0, SR + Rng.nextInt(-Window, Window + 1)));
    Count TC = std::min(
        Cols - 1,
        std::max<Count>(0, SC + Rng.nextInt(-Window, Window + 1)));
    Pairs.emplace_back(static_cast<VertexId>(SR * Cols + SC),
                       static_cast<VertexId>(TR * Cols + TC));
  }
  return Pairs;
}

std::vector<Edge> graphit::pathEdges(Count NumNodes) {
  std::vector<Edge> Edges;
  for (Count I = 0; I + 1 < NumNodes; ++I)
    Edges.push_back(Edge{static_cast<VertexId>(I),
                         static_cast<VertexId>(I + 1), 1});
  return Edges;
}

std::vector<Edge> graphit::cycleEdges(Count NumNodes) {
  std::vector<Edge> Edges = pathEdges(NumNodes);
  if (NumNodes > 1)
    Edges.push_back(Edge{static_cast<VertexId>(NumNodes - 1), 0, 1});
  return Edges;
}

std::vector<Edge> graphit::starEdges(Count NumNodes) {
  std::vector<Edge> Edges;
  for (Count I = 1; I < NumNodes; ++I)
    Edges.push_back(Edge{0, static_cast<VertexId>(I), 1});
  return Edges;
}

std::vector<Edge> graphit::completeGraphEdges(Count NumNodes) {
  std::vector<Edge> Edges;
  for (Count U = 0; U < NumNodes; ++U)
    for (Count V = 0; V < NumNodes; ++V)
      if (U != V)
        Edges.push_back(Edge{static_cast<VertexId>(U),
                             static_cast<VertexId>(V), 1});
  return Edges;
}

std::vector<Edge> graphit::binaryTreeEdges(Count NumNodes) {
  std::vector<Edge> Edges;
  for (Count I = 1; I < NumNodes; ++I)
    Edges.push_back(Edge{static_cast<VertexId>((I - 1) / 2),
                         static_cast<VertexId>(I), 1});
  return Edges;
}
