//===- graph/Generators.h - Synthetic graph generators ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic graph generators. These stand in for the paper's
/// datasets (Table 3), which are multi-gigabyte downloads unavailable here:
///
///  * `rmat` reproduces the skewed-degree, low-diameter regime of the social
///    and web graphs (LiveJournal/Orkut/Twitter/Friendster/WebGraph);
///  * `roadGrid` reproduces the bounded-degree, high-diameter regime of the
///    road networks (Massachusetts/Germany/RoadUSA), including per-vertex
///    coordinates (for A*) and Euclidean-lower-bounded weights so the A*
///    heuristic remains admissible;
///  * the small fixtures (`path`, `cycle`, `star`, `completeGraph`,
///    `binaryTree`) are for unit tests.
///
/// All generators take an explicit seed and are reproducible across runs
/// and thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_GENERATORS_H
#define GRAPHIT_GRAPH_GENERATORS_H

#include "graph/Graph.h"

#include <utility>
#include <vector>

namespace graphit {

/// Kronecker/R-MAT edge list: 2^Scale vertices, AvgDegree * 2^Scale edges.
/// (A, B, C) are the standard R-MAT quadrant probabilities (D = 1-A-B-C).
/// Vertex ids are randomly permuted so degree does not correlate with id.
std::vector<Edge> rmatEdges(int Scale, int AvgDegree, uint64_t Seed,
                            double A = 0.57, double B = 0.19,
                            double C = 0.19);

/// Uniformly random directed edge list (Erdos-Renyi G(n, m) flavor).
std::vector<Edge> erdosRenyiEdges(Count NumNodes, int AvgDegree,
                                  uint64_t Seed);

/// Result of the road-network generator: an undirected edge list with
/// Euclidean-derived weights plus planar coordinates.
struct RoadNetwork {
  Count NumNodes = 0;
  std::vector<Edge> Edges; ///< one record per undirected edge
  Coordinates Coords;
};

/// Perturbed-lattice road network on Rows x Cols intersections. Grid edges
/// are kept with probability 1-DropFraction; DiagonalFraction of vertices
/// gain one diagonal shortcut. Edge weight = ceil(100 * euclidean * U[1,1.2])
/// >= 100 * euclidean, so h(v) = floor(100 * euclidean(v, target)) is an
/// admissible A* heuristic.
RoadNetwork roadGrid(Count Rows, Count Cols, uint64_t Seed,
                     double DropFraction = 0.03,
                     double DiagonalFraction = 0.05);

/// Samples \p HowMany (source, target) intersection pairs on a
/// Rows x Cols `roadGrid`: sources uniform, targets clamped to a
/// `Window`-cell box around the source. This is the locally-distributed
/// query mix a routing service sees; shared by the query-serving bench
/// and example so the workload shape cannot drift between them.
std::vector<std::pair<VertexId, VertexId>>
localGridQueryPairs(Count Rows, Count Cols, Count Window, Count HowMany,
                    uint64_t Seed);

/// Path 0 - 1 - ... - (n-1), unit weights, directed forward.
std::vector<Edge> pathEdges(Count NumNodes);
/// Cycle over n vertices, unit weights, directed forward.
std::vector<Edge> cycleEdges(Count NumNodes);
/// Star: center 0 points at all other vertices.
std::vector<Edge> starEdges(Count NumNodes);
/// Complete directed graph (every ordered pair), unit weights.
std::vector<Edge> completeGraphEdges(Count NumNodes);
/// Complete binary tree rooted at 0, edges parent->child, unit weights.
std::vector<Edge> binaryTreeEdges(Count NumNodes);

} // namespace graphit

#endif // GRAPHIT_GRAPH_GENERATORS_H
