//===- graph/Builder.h - Edge-list to CSR construction ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds immutable CSR `Graph`s from edge lists: optional symmetrization
/// (Table 3 symmetrizes inputs for k-core and SetCover), self-loop removal,
/// duplicate-edge elimination (keeping the minimum weight), and parallel
/// counting-sort CSR construction.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_BUILDER_H
#define GRAPHIT_GRAPH_BUILDER_H

#include "graph/Graph.h"

#include <vector>

namespace graphit {

/// Options controlling CSR construction.
struct BuildOptions {
  /// Insert the reverse of every edge, producing an undirected graph.
  bool Symmetrize = false;
  /// Drop (v, v) edges.
  bool RemoveSelfLoops = true;
  /// Collapse parallel edges, keeping the smallest weight.
  bool RemoveDuplicates = true;
  /// Also build incoming adjacency (implied for symmetric graphs; required
  /// by DensePull traversal on directed graphs).
  bool BuildInEdges = true;
  /// Store edge weights. When false the graph is unweighted.
  bool Weighted = true;
};

/// Turns edge lists into `Graph`s.
class GraphBuilder {
public:
  explicit GraphBuilder(BuildOptions O = BuildOptions()) : Options(O) {}

  /// Builds a CSR graph over \p NumNodes vertices from \p Edges.
  /// Vertex ids in the list must be < NumNodes.
  Graph build(Count NumNodes, std::vector<Edge> Edges) const;

  /// Builds and attaches \p Coords (consumed by A*).
  Graph build(Count NumNodes, std::vector<Edge> Edges,
              Coordinates Coords) const;

private:
  BuildOptions Options;
};

/// Assigns uniformly random integer weights in [Lo, Hi) to \p Edges,
/// deterministically from \p Seed. This reproduces the paper's weight
/// regimes: [1, 1000) for social graphs and [1, log n) for wBFS inputs.
void assignRandomWeights(std::vector<Edge> &Edges, Weight Lo, Weight Hi,
                         uint64_t Seed);

} // namespace graphit

#endif // GRAPHIT_GRAPH_BUILDER_H
