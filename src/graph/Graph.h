//===- graph/Graph.h - Compressed sparse row graphs -------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory graph representation shared by every algorithm: a CSR
/// (compressed sparse row) adjacency structure with optional integer edge
/// weights, optional incoming adjacency (needed by pull-direction
/// traversals, Fig. 9(b)), and optional per-vertex coordinates (needed by
/// the A* heuristic).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_GRAPH_H
#define GRAPHIT_GRAPH_GRAPH_H

#include "support/Types.h"

#include <cassert>
#include <vector>

namespace graphit {

/// A directed edge with weight, used by builders and generators.
struct Edge {
  VertexId Src = 0;
  VertexId Dst = 0;
  Weight W = 1;
};

/// Destination/weight pair stored in adjacency arrays; `WNode` in the
/// paper's generated code.
struct WNode {
  VertexId V;
  Weight W;
};

/// Planar vertex coordinates (longitude/latitude or synthetic x/y), consumed
/// by the A* distance heuristic.
struct Coordinates {
  std::vector<double> X;
  std::vector<double> Y;

  bool empty() const { return X.empty(); }
  Count size() const { return static_cast<Count>(X.size()); }
};

/// Immutable CSR graph. Construct through `GraphBuilder` (graph/Builder.h).
///
/// For symmetric graphs the incoming adjacency aliases the outgoing one and
/// costs no extra memory.
class Graph {
public:
  Graph() = default;

  /// Number of vertices.
  Count numNodes() const { return NumNodes; }
  /// Number of directed edges.
  Count numEdges() const { return NumEdges; }
  /// True if built as a symmetric (undirected) graph.
  bool isSymmetric() const { return Symmetric; }
  /// True if the graph carries per-edge weights (otherwise weight()==1).
  bool isWeighted() const { return !OutWeights.empty(); }
  /// True if incoming adjacency is available (always true for symmetric).
  bool hasInEdges() const { return Symmetric || !InOffsets.empty(); }
  /// True if per-vertex coordinates are attached.
  bool hasCoordinates() const { return !Coords.empty(); }

  Count outDegree(VertexId V) const {
    assert(V < NumNodes && "vertex out of range");
    return OutOffsets[V + 1] - OutOffsets[V];
  }

  Count inDegree(VertexId V) const {
    assert(hasInEdges() && "graph built without incoming adjacency");
    if (Symmetric)
      return outDegree(V);
    return InOffsets[V + 1] - InOffsets[V];
  }

  /// Lightweight range of WNode for range-for iteration.
  struct NeighborRange {
    const VertexId *Ids;
    const Weight *Weights; // null for unweighted graphs
    Count N;

    struct Iterator {
      const VertexId *Ids;
      const Weight *Weights;
      Count I;
      WNode operator*() const {
        return WNode{Ids[I], Weights ? Weights[I] : Weight{1}};
      }
      Iterator &operator++() {
        ++I;
        return *this;
      }
      bool operator!=(const Iterator &O) const { return I != O.I; }
    };
    Iterator begin() const { return Iterator{Ids, Weights, 0}; }
    Iterator end() const { return Iterator{Ids, Weights, N}; }
    Count size() const { return N; }
  };

  /// Outgoing neighbors of \p V with weights.
  NeighborRange outNeighbors(VertexId V) const {
    assert(V < NumNodes && "vertex out of range");
    Count Lo = OutOffsets[V];
    return NeighborRange{OutNeighbors_.data() + Lo,
                         OutWeights.empty() ? nullptr
                                            : OutWeights.data() + Lo,
                         OutOffsets[V + 1] - Lo};
  }

  /// Incoming neighbors of \p V with weights. For symmetric graphs this is
  /// the same adjacency as outNeighbors().
  NeighborRange inNeighbors(VertexId V) const {
    if (Symmetric)
      return outNeighbors(V);
    assert(hasInEdges() && "graph built without incoming adjacency");
    Count Lo = InOffsets[V];
    return NeighborRange{InNeighbors_.data() + Lo,
                         InWeights.empty() ? nullptr : InWeights.data() + Lo,
                         InOffsets[V + 1] - Lo};
  }

  /// Per-vertex coordinates; empty() unless the generator/loader attached
  /// them.
  const Coordinates &coordinates() const { return Coords; }

  /// Sum of out-degrees over a set of vertices; used by the direction
  /// optimization to estimate frontier work.
  int64_t outDegreeSum(const VertexId *Vs, Count N) const;

  /// \returns a symmetrized copy of this graph (used for k-core/SetCover on
  /// directed inputs, per Table 3's caption).
  Graph symmetrized() const;

private:
  friend class GraphBuilder;
  friend Graph loadBinaryGraph(const char *Path);

  Count NumNodes = 0;
  Count NumEdges = 0;
  bool Symmetric = false;

  std::vector<int64_t> OutOffsets{0};
  std::vector<VertexId> OutNeighbors_;
  std::vector<Weight> OutWeights;

  std::vector<int64_t> InOffsets;
  std::vector<VertexId> InNeighbors_;
  std::vector<Weight> InWeights;

  Coordinates Coords;
};

} // namespace graphit

#endif // GRAPHIT_GRAPH_GRAPH_H
