//===- graph/Graph.h - Compressed sparse row graphs -------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory graph representation shared by every algorithm: a CSR
/// (compressed sparse row) adjacency structure with optional integer edge
/// weights, optional incoming adjacency (needed by pull-direction
/// traversals, Fig. 9(b)), and optional per-vertex coordinates (needed by
/// the A* heuristic).
///
/// Weighted adjacency is stored *interleaved* — one contiguous array of
/// (neighbor, weight) pairs per direction — so a relax loop walks a single
/// stream instead of two parallel arrays (one hardware prefetch stream and
/// half the cache lines per scattered row). Unweighted adjacency stays a
/// packed id array. `NeighborRange` abstracts over both layouts (and over
/// `DeltaGraph`'s split patch lists) with a stride.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_GRAPH_H
#define GRAPHIT_GRAPH_GRAPH_H

#include "support/Prefetch.h"
#include "support/Types.h"

#include <cassert>
#include <vector>

namespace graphit {

/// A directed edge with weight, used by builders and generators.
struct Edge {
  VertexId Src = 0;
  VertexId Dst = 0;
  Weight W = 1;
};

/// Destination/weight pair stored in adjacency arrays; `WNode` in the
/// paper's generated code. For weighted graphs this is also the in-memory
/// adjacency element (interleaved layout), so it must stay exactly two
/// 32-bit words with the id first.
struct WNode {
  VertexId V;
  Weight W;
};

static_assert(sizeof(WNode) == sizeof(VertexId) + sizeof(Weight),
              "WNode must be packed: NeighborRange strides across it");

/// Deterministic adjacency-row order: by neighbor id, then weight.
/// `GraphBuilder` and `Graph::permuted` must both sort rows with exactly
/// this comparator so built and permuted graphs share one layout.
inline bool adjacencyRowLess(const WNode &A, const WNode &B) {
  return A.V != B.V ? A.V < B.V : A.W < B.W;
}

/// Planar vertex coordinates (longitude/latitude or synthetic x/y), consumed
/// by the A* distance heuristic.
struct Coordinates {
  std::vector<double> X;
  std::vector<double> Y;

  bool empty() const { return X.empty(); }
  Count size() const { return static_cast<Count>(X.size()); }
};

class VertexMapping; // graph/Reorder.h

/// Immutable CSR graph. Construct through `GraphBuilder` (graph/Builder.h).
///
/// For symmetric graphs the incoming adjacency aliases the outgoing one and
/// costs no extra memory.
class Graph {
public:
  Graph() = default;

  /// Number of vertices.
  Count numNodes() const { return NumNodes; }
  /// Number of directed edges.
  Count numEdges() const { return NumEdges; }
  /// True if built as a symmetric (undirected) graph.
  bool isSymmetric() const { return Symmetric; }
  /// True if the graph carries per-edge weights (otherwise weight()==1).
  bool isWeighted() const { return Weighted; }
  /// True if incoming adjacency is available (always true for symmetric).
  bool hasInEdges() const { return Symmetric || !InOffsets.empty(); }
  /// True if per-vertex coordinates are attached.
  bool hasCoordinates() const { return !Coords.empty(); }

  Count outDegree(VertexId V) const {
    assert(V < NumNodes && "vertex out of range");
    return OutOffsets[V + 1] - OutOffsets[V];
  }

  Count inDegree(VertexId V) const {
    assert(hasInEdges() && "graph built without incoming adjacency");
    if (Symmetric)
      return outDegree(V);
    return InOffsets[V + 1] - InOffsets[V];
  }

  /// Lightweight range of WNode for range-for iteration, generic over the
  /// two physical layouts:
  ///
  ///  * split — `Ids` (and optionally `Weights`) are packed arrays, the
  ///    layout of unweighted graphs and `DeltaGraph` patch lists;
  ///  * packed — `Packed` points at interleaved (id, weight) pairs, the
  ///    layout of weighted CSR adjacency.
  ///
  /// The layout test is a pointer null-check — one perfectly-predicted
  /// branch per access with constant-scale indexing on both sides (a
  /// runtime stride would put an integer multiply in every hot loop).
  /// `id(I)`/`weight(I)` give indexed access for loops that look ahead
  /// (software prefetch of the I+k-th neighbor's distance word).
  struct NeighborRange {
    const VertexId *Ids;   ///< split layout ids (null when packed)
    const Weight *Weights; ///< split layout weights; null -> weight 1
    Count N;
    const WNode *Packed = nullptr; ///< interleaved layout

    VertexId id(Count I) const { return Packed ? Packed[I].V : Ids[I]; }
    Weight weight(Count I) const {
      if (Packed)
        return Packed[I].W;
      return Weights ? Weights[I] : Weight{1};
    }

    struct Iterator {
      const VertexId *Ids;
      const Weight *Weights;
      const WNode *Packed;
      Count I;
      WNode operator*() const {
        if (Packed)
          return Packed[I];
        return WNode{Ids[I], Weights ? Weights[I] : Weight{1}};
      }
      Iterator &operator++() {
        ++I;
        return *this;
      }
      bool operator!=(const Iterator &O) const { return I != O.I; }
    };
    Iterator begin() const { return Iterator{Ids, Weights, Packed, 0}; }
    Iterator end() const { return Iterator{Ids, Weights, Packed, N}; }
    Count size() const { return N; }
  };

  /// Outgoing neighbors of \p V with weights.
  NeighborRange outNeighbors(VertexId V) const {
    assert(V < NumNodes && "vertex out of range");
    int64_t Lo = OutOffsets[V];
    Count Deg = OutOffsets[V + 1] - Lo;
    if (Weighted)
      return NeighborRange{nullptr, nullptr, Deg, OutAdj.data() + Lo};
    return NeighborRange{OutIds.data() + Lo, nullptr, Deg};
  }

  /// Incoming neighbors of \p V with weights. For symmetric graphs this is
  /// the same adjacency as outNeighbors().
  NeighborRange inNeighbors(VertexId V) const {
    if (Symmetric)
      return outNeighbors(V);
    assert(hasInEdges() && "graph built without incoming adjacency");
    int64_t Lo = InOffsets[V];
    Count Deg = InOffsets[V + 1] - Lo;
    if (Weighted)
      return NeighborRange{nullptr, nullptr, Deg, InAdj.data() + Lo};
    return NeighborRange{InIds.data() + Lo, nullptr, Deg};
  }

  /// Per-vertex coordinates; empty() unless the generator/loader attached
  /// them.
  const Coordinates &coordinates() const { return Coords; }

  /// Prefetches the out-adjacency row of \p V: the offsets word, and —
  /// reading the offset, which a longer-lookahead caller has usually
  /// already pulled in — the head of the row itself. Used by the eager
  /// engine's frontier lookahead so a vertex's row is in flight before its
  /// relaxation starts.
  void prefetchOutRow(VertexId V) const {
    prefetchRead(&OutOffsets[V]);
    int64_t Lo = OutOffsets[V];
    if (Weighted)
      prefetchRead(OutAdj.data() + Lo);
    else if (!OutIds.empty())
      prefetchRead(OutIds.data() + Lo);
  }

  /// Sum of out-degrees over a set of vertices; used by the direction
  /// optimization to estimate frontier work.
  int64_t outDegreeSum(const VertexId *Vs, Count N) const;

  /// \returns a symmetrized copy of this graph (used for k-core/SetCover on
  /// directed inputs, per Table 3's caption).
  Graph symmetrized() const;

  /// \returns this graph rebuilt under \p Map (graph/Reorder.h): vertex
  /// `Map.toExternal(n)` of this graph becomes vertex `n` of the result,
  /// with out-/in-adjacency, weights, and coordinates carried over and each
  /// adjacency row re-sorted by new neighbor id (the same deterministic
  /// layout GraphBuilder produces). O(V + E) parallel.
  Graph permuted(const VertexMapping &Map) const;

private:
  friend class GraphBuilder;
  friend Graph loadBinaryGraph(const char *Path);

  Count NumNodes = 0;
  Count NumEdges = 0;
  bool Symmetric = false;
  bool Weighted = false;

  std::vector<int64_t> OutOffsets{0};
  std::vector<VertexId> OutIds; ///< unweighted layout
  std::vector<WNode> OutAdj;    ///< weighted (interleaved) layout

  std::vector<int64_t> InOffsets;
  std::vector<VertexId> InIds;
  std::vector<WNode> InAdj;

  Coordinates Coords;
};

} // namespace graphit

#endif // GRAPHIT_GRAPH_GRAPH_H
