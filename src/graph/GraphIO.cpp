//===- graph/GraphIO.cpp - Graph loading and saving -----------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/GraphIO.h"

#include "graph/Builder.h"
#include "support/Abort.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace graphit;

namespace {

struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

FileHandle openOrDie(const std::string &Path, const char *Mode) {
  FileHandle F(std::fopen(Path.c_str(), Mode));
  if (!F) {
    std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
    fatalError("file open failed");
  }
  return F;
}

void noteEndpoint(EdgeListFile &File, VertexId V) {
  if (static_cast<Count>(V) + 1 > File.NumNodes)
    File.NumNodes = static_cast<Count>(V) + 1;
}

/// Reads one whole line of arbitrary length into \p Line (no fixed-buffer
/// truncation: a long DIMACS comment used to split at 255 bytes and the
/// tail then parsed as a bogus record). Strips the trailing newline and
/// any carriage return (CRLF files are common for downloaded datasets).
/// \returns false at end of file with nothing read.
bool readLine(std::FILE *F, std::string &Line) {
  Line.clear();
  char Buf[4096];
  bool ReadAny = false;
  while (std::fgets(Buf, sizeof(Buf), F)) {
    ReadAny = true;
    Line += Buf;
    if (!Line.empty() && Line.back() == '\n')
      break;
  }
  if (!ReadAny)
    return false;
  while (!Line.empty() && (Line.back() == '\n' || Line.back() == '\r'))
    Line.pop_back();
  return true;
}

} // namespace

EdgeListFile graphit::readEdgeList(const std::string &Path) {
  FileHandle F = openOrDie(Path, "r");
  EdgeListFile Result;
  std::string Line;
  while (readLine(F.get(), Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    uint64_t Src, Dst;
    long long W;
    int Fields = std::sscanf(Line.c_str(), "%" SCNu64 " %" SCNu64 " %lld",
                             &Src, &Dst, &W);
    if (Fields < 2)
      fatalError("malformed edge list line");
    Edge E;
    E.Src = static_cast<VertexId>(Src);
    E.Dst = static_cast<VertexId>(Dst);
    E.W = Fields >= 3 ? static_cast<Weight>(W) : Weight{1};
    if (Fields >= 3)
      Result.Weighted = true;
    noteEndpoint(Result, E.Src);
    noteEndpoint(Result, E.Dst);
    Result.Edges.push_back(E);
  }
  return Result;
}

void graphit::writeEdgeList(const std::string &Path,
                            const std::vector<Edge> &Edges, bool Weighted) {
  FileHandle F = openOrDie(Path, "w");
  for (const Edge &E : Edges) {
    if (Weighted)
      std::fprintf(F.get(), "%u %u %d\n", E.Src, E.Dst, E.W);
    else
      std::fprintf(F.get(), "%u %u\n", E.Src, E.Dst);
  }
}

EdgeListFile graphit::readDimacsGraph(const std::string &Path) {
  FileHandle F = openOrDie(Path, "r");
  EdgeListFile Result;
  Result.Weighted = true;
  std::string Line;
  while (readLine(F.get(), Line)) {
    if (Line.empty() || Line[0] == 'c')
      continue;
    if (Line[0] == 'p') {
      long long N = 0, M = 0;
      if (std::sscanf(Line.c_str(), "p sp %lld %lld", &N, &M) != 2)
        fatalError("malformed DIMACS problem line");
      Result.NumNodes = N;
      Result.Edges.reserve(static_cast<size_t>(M));
      continue;
    }
    if (Line[0] == 'a') {
      uint64_t Src, Dst;
      long long W;
      if (std::sscanf(Line.c_str(), "a %" SCNu64 " %" SCNu64 " %lld", &Src,
                      &Dst, &W) != 3)
        fatalError("malformed DIMACS arc line");
      if (Src == 0 || Dst == 0)
        fatalError("DIMACS vertices are 1-indexed");
      Edge E{static_cast<VertexId>(Src - 1),
             static_cast<VertexId>(Dst - 1), static_cast<Weight>(W)};
      noteEndpoint(Result, E.Src);
      noteEndpoint(Result, E.Dst);
      Result.Edges.push_back(E);
      continue;
    }
    fatalError("unrecognized DIMACS line");
  }
  return Result;
}

void graphit::writeDimacsGraph(const std::string &Path, Count NumNodes,
                               const std::vector<Edge> &Edges) {
  FileHandle F = openOrDie(Path, "w");
  std::fprintf(F.get(), "p sp %lld %lld\n",
               static_cast<long long>(NumNodes),
               static_cast<long long>(Edges.size()));
  for (const Edge &E : Edges)
    std::fprintf(F.get(), "a %u %u %d\n", E.Src + 1, E.Dst + 1, E.W);
}

Coordinates graphit::readDimacsCoordinates(const std::string &Path,
                                           Count NumNodes) {
  FileHandle F = openOrDie(Path, "r");
  Coordinates Coords;
  Coords.X.assign(static_cast<size_t>(NumNodes), 0.0);
  Coords.Y.assign(static_cast<size_t>(NumNodes), 0.0);
  std::string Line;
  while (readLine(F.get(), Line)) {
    if (Line.empty() || Line[0] != 'v')
      continue;
    uint64_t Id;
    double X, Y;
    if (std::sscanf(Line.c_str(), "v %" SCNu64 " %lf %lf", &Id, &X, &Y) != 3)
      fatalError("malformed DIMACS coordinate line");
    if (Id == 0 || static_cast<Count>(Id) > NumNodes)
      fatalError("DIMACS coordinate vertex out of range");
    Coords.X[Id - 1] = X;
    Coords.Y[Id - 1] = Y;
  }
  return Coords;
}

void graphit::writeDimacsCoordinates(const std::string &Path,
                                     const Coordinates &Coords) {
  FileHandle F = openOrDie(Path, "w");
  for (Count I = 0; I < Coords.size(); ++I)
    std::fprintf(F.get(), "v %lld %.9f %.9f\n",
                 static_cast<long long>(I + 1), Coords.X[I], Coords.Y[I]);
}

namespace {

constexpr uint64_t kBinaryMagic = 0x4752495447524448ULL; // "GRITGRDH"

template <typename T>
void writeVec(std::FILE *F, const std::vector<T> &V) {
  uint64_t N = V.size();
  std::fwrite(&N, sizeof(N), 1, F);
  if (N)
    std::fwrite(V.data(), sizeof(T), N, F);
}

template <typename T> std::vector<T> readVec(std::FILE *F) {
  uint64_t N = 0;
  if (std::fread(&N, sizeof(N), 1, F) != 1)
    fatalError("truncated binary graph");
  std::vector<T> V(N);
  if (N && std::fread(V.data(), sizeof(T), N, F) != N)
    fatalError("truncated binary graph");
  return V;
}

} // namespace

void graphit::saveBinaryGraph(const Graph &G, const std::string &Path) {
  FileHandle F = openOrDie(Path, "wb");
  std::fwrite(&kBinaryMagic, sizeof(kBinaryMagic), 1, F.get());
  uint64_t Header[3] = {static_cast<uint64_t>(G.numNodes()),
                        static_cast<uint64_t>(G.numEdges()),
                        static_cast<uint64_t>(G.isSymmetric())};
  std::fwrite(Header, sizeof(Header), 1, F.get());
  // Round-trip through the public API to avoid friending IO internals for
  // writes; reconstruct the flat arrays.
  std::vector<int64_t> OutOffsets(G.numNodes() + 1, 0);
  std::vector<VertexId> OutNeighbors;
  std::vector<Weight> OutWeights;
  OutNeighbors.reserve(static_cast<size_t>(G.numEdges()));
  for (Count V = 0; V < G.numNodes(); ++V) {
    OutOffsets[V + 1] = OutOffsets[V] + G.outDegree(static_cast<VertexId>(V));
    for (WNode E : G.outNeighbors(static_cast<VertexId>(V))) {
      OutNeighbors.push_back(E.V);
      if (G.isWeighted())
        OutWeights.push_back(E.W);
    }
  }
  writeVec(F.get(), OutOffsets);
  writeVec(F.get(), OutNeighbors);
  writeVec(F.get(), OutWeights);
  writeVec(F.get(), G.coordinates().X);
  writeVec(F.get(), G.coordinates().Y);
}

Graph graphit::loadBinaryGraph(const char *Path) {
  FileHandle F = openOrDie(Path, "rb");
  uint64_t Magic = 0;
  if (std::fread(&Magic, sizeof(Magic), 1, F.get()) != 1 ||
      Magic != kBinaryMagic)
    fatalError("not a graphit binary graph");
  uint64_t Header[3];
  if (std::fread(Header, sizeof(Header), 1, F.get()) != 1)
    fatalError("truncated binary graph");

  std::vector<int64_t> OutOffsets = readVec<int64_t>(F.get());
  std::vector<VertexId> OutNeighbors = readVec<VertexId>(F.get());
  std::vector<Weight> OutWeights = readVec<Weight>(F.get());
  Coordinates Coords;
  Coords.X = readVec<double>(F.get());
  Coords.Y = readVec<double>(F.get());

  // Rebuild through the CSR fields directly (friend access). The on-disk
  // format keeps split id/weight arrays for compatibility; weighted graphs
  // are interleaved into the in-memory (id, weight) layout here.
  Graph G;
  G.NumNodes = static_cast<Count>(Header[0]);
  G.NumEdges = static_cast<Count>(Header[1]);
  G.Symmetric = Header[2] != 0;
  G.Weighted = !OutWeights.empty();
  G.OutOffsets = std::move(OutOffsets);
  if (G.Weighted) {
    if (OutWeights.size() != OutNeighbors.size())
      fatalError("binary graph: weight count != neighbor count");
    G.OutAdj.resize(OutNeighbors.size());
    for (size_t I = 0; I < OutNeighbors.size(); ++I)
      G.OutAdj[I] = WNode{OutNeighbors[I], OutWeights[I]};
  } else {
    G.OutIds = std::move(OutNeighbors);
  }
  G.Coords = std::move(Coords);
  if (!G.Symmetric) {
    // Rebuild incoming adjacency from the edge list.
    std::vector<Edge> Edges;
    Edges.reserve(static_cast<size_t>(G.NumEdges));
    for (Count V = 0; V < G.NumNodes; ++V)
      for (WNode E : G.outNeighbors(static_cast<VertexId>(V)))
        Edges.push_back(Edge{static_cast<VertexId>(V), E.V, E.W});
    BuildOptions Options;
    Options.RemoveSelfLoops = false;
    Options.RemoveDuplicates = false;
    Options.Weighted = G.Weighted;
    Graph Rebuilt = GraphBuilder(Options).build(G.NumNodes, std::move(Edges));
    G.InOffsets = std::move(Rebuilt.InOffsets);
    G.InIds = std::move(Rebuilt.InIds);
    G.InAdj = std::move(Rebuilt.InAdj);
  }
  return G;
}

Graph graphit::loadBinaryGraphReordered(const std::string &Path,
                                        ReorderKind Reorder,
                                        VertexMapping *MapOut,
                                        VertexId SourceHint) {
  return reorderLoadedGraph(loadBinaryGraph(Path), Reorder, MapOut,
                            /*Seed=*/0x0EDE5, SourceHint);
}
