//===- graph/Graph.cpp - Compressed sparse row graphs ---------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include "graph/Builder.h"
#include "support/Parallel.h"

using namespace graphit;

int64_t Graph::outDegreeSum(const VertexId *Vs, Count N) const {
  if (N < 2048) {
    int64_t Sum = 0;
    for (Count I = 0; I < N; ++I)
      Sum += outDegree(Vs[I]);
    return Sum;
  }
  return parallelSum(0, N, [&](Count I) { return outDegree(Vs[I]); });
}

Graph Graph::symmetrized() const {
  if (Symmetric)
    return *this;
  std::vector<Edge> Edges;
  Edges.reserve(static_cast<size_t>(NumEdges));
  for (VertexId U = 0; U < static_cast<VertexId>(NumNodes); ++U)
    for (WNode E : outNeighbors(U))
      Edges.push_back(Edge{U, E.V, E.W});
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = isWeighted();
  Graph Result = GraphBuilder(Options).build(NumNodes, std::move(Edges));
  Result.Coords = Coords;
  return Result;
}
