//===- graph/Graph.cpp - Compressed sparse row graphs ---------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Graph.h"

#include "graph/Builder.h"
#include "graph/Reorder.h"
#include "support/Abort.h"
#include "support/Parallel.h"

#include <algorithm>

using namespace graphit;

int64_t Graph::outDegreeSum(const VertexId *Vs, Count N) const {
  if (N < 2048) {
    int64_t Sum = 0;
    for (Count I = 0; I < N; ++I)
      Sum += outDegree(Vs[I]);
    return Sum;
  }
  return parallelSum(0, N, [&](Count I) { return outDegree(Vs[I]); });
}

Graph Graph::symmetrized() const {
  if (Symmetric)
    return *this;
  std::vector<Edge> Edges;
  Edges.reserve(static_cast<size_t>(NumEdges));
  for (VertexId U = 0; U < static_cast<VertexId>(NumNodes); ++U)
    for (WNode E : outNeighbors(U))
      Edges.push_back(Edge{U, E.V, E.W});
  BuildOptions Options;
  Options.Symmetrize = true;
  Options.Weighted = isWeighted();
  Graph Result = GraphBuilder(Options).build(NumNodes, std::move(Edges));
  Result.Coords = Coords;
  return Result;
}

Graph Graph::permuted(const VertexMapping &Map) const {
  if (Map.size() != NumNodes)
    fatalError("Graph::permuted: mapping sized for a different graph");
  if (Map.isIdentity())
    return *this;

  Graph R;
  R.NumNodes = NumNodes;
  R.NumEdges = NumEdges;
  R.Symmetric = Symmetric;
  R.Weighted = Weighted;

  auto BuildDirection = [&](bool Out, std::vector<int64_t> &NewOff,
                            std::vector<VertexId> &NewIds,
                            std::vector<WNode> &NewAdj) {
    NewOff.assign(static_cast<size_t>(NumNodes) + 1, 0);
    parallelFor(
        0, NumNodes,
        [&](Count I) {
          VertexId Old = Map.toExternal(static_cast<VertexId>(I));
          NewOff[I] = Out ? outDegree(Old) : inDegree(Old);
        },
        Parallelization::StaticVertexParallel);
    NewOff[NumNodes] = 0;
    int64_t M = exclusivePrefixSum(NewOff.data(), NumNodes + 1);
    if (Weighted)
      NewAdj.resize(static_cast<size_t>(M));
    else
      NewIds.resize(static_cast<size_t>(M));
    parallelFor(0, NumNodes, [&](Count I) {
      VertexId Old = Map.toExternal(static_cast<VertexId>(I));
      NeighborRange Rg = Out ? outNeighbors(Old) : inNeighbors(Old);
      int64_t Base = NewOff[I];
      for (Count J = 0; J < Rg.size(); ++J) {
        VertexId NewNbr = Map.toInternal(Rg.id(J));
        if (Weighted)
          NewAdj[static_cast<size_t>(Base + J)] = WNode{NewNbr, Rg.weight(J)};
        else
          NewIds[static_cast<size_t>(Base + J)] = NewNbr;
      }
      // Re-sort each row by new neighbor id: the same deterministic layout
      // GraphBuilder produces, independent of the permutation applied.
      if (Weighted)
        std::sort(NewAdj.begin() + Base, NewAdj.begin() + Base + Rg.size(),
                  adjacencyRowLess);
      else
        std::sort(NewIds.begin() + Base, NewIds.begin() + Base + Rg.size());
    });
  };

  BuildDirection(true, R.OutOffsets, R.OutIds, R.OutAdj);
  if (!Symmetric && hasInEdges())
    BuildDirection(false, R.InOffsets, R.InIds, R.InAdj);

  if (hasCoordinates()) {
    R.Coords.X.resize(static_cast<size_t>(NumNodes));
    R.Coords.Y.resize(static_cast<size_t>(NumNodes));
    parallelFor(
        0, NumNodes,
        [&](Count I) {
          VertexId Old = Map.toExternal(static_cast<VertexId>(I));
          R.Coords.X[I] = Coords.X[Old];
          R.Coords.Y[I] = Coords.Y[Old];
        },
        Parallelization::StaticVertexParallel);
  }
  return R;
}
