//===- graph/GraphIO.h - Graph loading and saving ---------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File formats for graph exchange:
///
///  * plain edge lists: `.el` (src dst) and `.wel` (src dst weight), one
///    edge per line, `#` comments;
///  * DIMACS shortest-path format: `.gr` arcs and `.co` coordinates (the
///    format RoadUSA ships in);
///  * a fast binary CSR snapshot for benchmark reuse.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_GRAPHIO_H
#define GRAPHIT_GRAPH_GRAPHIO_H

#include "graph/Graph.h"
#include "graph/Reorder.h"

#include <string>
#include <vector>

namespace graphit {

/// Parsed edge-list file: edges plus the implied vertex count
/// (1 + max endpoint id).
struct EdgeListFile {
  Count NumNodes = 0;
  std::vector<Edge> Edges;
  bool Weighted = false;
};

/// Reads a `.el`/`.wel` edge list. Aborts the process on malformed input
/// (these are trusted local files in this repository).
EdgeListFile readEdgeList(const std::string &Path);

/// Writes \p Edges as `.wel` when \p Weighted, else `.el`.
void writeEdgeList(const std::string &Path, const std::vector<Edge> &Edges,
                   bool Weighted);

/// Reads a DIMACS `.gr` file (`p sp N M` header, `a u v w` arcs,
/// 1-indexed vertices).
EdgeListFile readDimacsGraph(const std::string &Path);

/// Writes DIMACS `.gr`.
void writeDimacsGraph(const std::string &Path, Count NumNodes,
                      const std::vector<Edge> &Edges);

/// Reads a DIMACS `.co` coordinate file (`v id x y`, 1-indexed).
Coordinates readDimacsCoordinates(const std::string &Path, Count NumNodes);

/// Writes DIMACS `.co`.
void writeDimacsCoordinates(const std::string &Path,
                            const Coordinates &Coords);

/// Saves the full CSR image (fast reload for benchmarks).
void saveBinaryGraph(const Graph &G, const std::string &Path);

/// Loads a CSR image produced by `saveBinaryGraph`.
Graph loadBinaryGraph(const char *Path);
inline Graph loadBinaryGraph(const std::string &Path) {
  return loadBinaryGraph(Path.c_str());
}

/// Reorder-on-load: loads the CSR image and rebuilds it in the \p Reorder
/// layout (graph/Reorder.h); \p MapOut, when non-null, receives the
/// external<->internal mapping. Binary images keep their original ids on
/// disk — the layout is a load-time decision, not a file property.
Graph loadBinaryGraphReordered(const std::string &Path, ReorderKind Reorder,
                               VertexMapping *MapOut = nullptr,
                               VertexId SourceHint = 0);

} // namespace graphit

#endif // GRAPHIT_GRAPH_GRAPHIO_H
