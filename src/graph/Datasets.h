//===- graph/Datasets.h - Paper dataset stand-ins ---------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named synthetic stand-ins for the paper's datasets (Table 3). The real
/// graphs (LiveJournal, Orkut, Twitter, Friendster, WebGraph, and the
/// OpenStreetMap/DIMACS road networks) are multi-gigabyte downloads that are
/// unavailable in this environment; DESIGN.md §2-3 documents why these
/// generators preserve the regimes that drive the paper's results.
///
/// Scales are laptop-sized by default and multiplied by the `GRAPHIT_SCALE`
/// environment variable (a float) so the same binaries serve as smoke tests
/// and longer experiments.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_DATASETS_H
#define GRAPHIT_GRAPH_DATASETS_H

#include "graph/Graph.h"
#include "graph/Reorder.h"

#include <string>
#include <vector>

namespace graphit {

/// The eight datasets of Table 3 (primes mark synthetic stand-ins).
enum class DatasetId { LJ, OK, TW, FT, WB, MA, GE, RD };

/// Which prepared variant of a dataset an experiment needs. Mirrors the
/// caption of Table 4: social/web graphs carry U[1,1000) weights for
/// SSSP/PPSP and [1, log n) weights for wBFS; k-core/SetCover use the
/// symmetrized graphs; road networks always use their original
/// (Euclidean-derived) weights.
enum class DatasetVariant {
  Directed,           ///< directed, U[1,1000) weights (roads: original)
  DirectedLogWeights, ///< directed, [1, log n) weights (wBFS regime)
  Symmetric,          ///< symmetrized, unweighted (k-core / SetCover)
};

/// \returns the dataset's short display name ("LJ'", ..., "RD'").
const char *datasetName(DatasetId Id);

/// True for the road networks (MA', GE', RD').
bool isRoadNetwork(DatasetId Id);

/// \returns the generated graph for (\p Id, \p Variant).
/// \p ScaleFactor multiplies vertex counts (values < 1 shrink the inputs);
/// when <= 0 it is taken from the GRAPHIT_SCALE environment variable
/// (default 1.0).
Graph makeDataset(DatasetId Id, DatasetVariant Variant,
                  double ScaleFactor = 0.0);

/// Reorder-on-load variant: generates the dataset and rebuilds it in the
/// \p Reorder layout (graph/Reorder.h). \p MapOut, when non-null, receives
/// the external<->internal mapping so callers can translate ids. Road
/// datasets pay off under Bfs — root it at the dominant query source via
/// \p SourceHint (original-id space; see makeOrdering) — RMAT stand-ins
/// under Degree/Push; see the README's "Memory layout & reordering" table.
Graph makeDataset(DatasetId Id, DatasetVariant Variant, ReorderKind Reorder,
                  VertexMapping *MapOut, double ScaleFactor = 0.0,
                  VertexId SourceHint = 0);

/// All datasets, in Table 3 order.
std::vector<DatasetId> allDatasets();
/// The social/web datasets (LJ', OK', TW', FT', WB').
std::vector<DatasetId> socialDatasets();
/// The road datasets (MA', GE', RD').
std::vector<DatasetId> roadDatasets();

/// Reads GRAPHIT_SCALE (default 1.0, clamped to [0.01, 64]).
double datasetScaleFromEnv();

/// Deterministic "random" start vertices with non-zero out-degree, used for
/// the averaged-over-10-sources methodology of Table 4.
std::vector<VertexId> pickSources(const Graph &G, int HowMany,
                                  uint64_t Seed);

} // namespace graphit

#endif // GRAPHIT_GRAPH_DATASETS_H
