//===- graph/DeltaGraph.h - Delta-CSR overlay over a base graph -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mutable view over an immutable CSR base: edge insertions, deletions and
/// weight changes are absorbed into per-vertex *patch lists* (a vertex whose
/// adjacency changed owns a private, sorted replacement list; every other
/// vertex reads straight from the base CSR). Iteration is unified —
/// `outNeighbors`/`inNeighbors` return the same `Graph::NeighborRange` the
/// base graph returns, so every engine templated over the graph type runs
/// unmodified against a delta view.
///
/// This is the representation behind live-graph serving
/// (service/SnapshotStore.h): writers mutate a private `DeltaGraph`,
/// publish immutable copies of it as refcounted snapshot versions, and
/// compact the overlay back into a fresh CSR (`compact()`) once it exceeds
/// a threshold. The overlay's read cost is one array lookup per vertex on
/// top of CSR, so queries on a lightly-patched view run at base speed.
///
/// The vertex universe *grows at the tail*: `growUniverse`/`addVertex`
/// append fresh vertices with ids >= the base graph's node count. Tail
/// vertices start with empty adjacency (they read from a patch list or
/// nowhere, never from the base CSR) and fold into the base like any other
/// patch on `compact()`. Self-loops and out-of-range endpoints are still
/// rejected per update, not fatally.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_DELTAGRAPH_H
#define GRAPHIT_GRAPH_DELTAGRAPH_H

#include "graph/Graph.h"

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

namespace graphit {

/// Sentinel weight meaning "edge absent" in `AppliedUpdate`. Real weights
/// are non-negative (the ordered algorithms require it).
inline constexpr Weight kAbsentEdge = -1;

/// One requested edge mutation. `Upsert` inserts the edge if absent and
/// overwrites its weight if present; `Delete` removes it if present (and is
/// a no-op otherwise). On symmetric graphs each update is applied to both
/// directions.
enum class UpdateKind { Upsert, Delete };
struct EdgeUpdate {
  VertexId Src = 0;
  VertexId Dst = 0;
  Weight W = 1;
  UpdateKind Kind = UpdateKind::Upsert;
};

/// One *directed* edge transition that actually happened, in terms the
/// incremental-repair algorithms consume: `OldW == kAbsentEdge` means the
/// edge was inserted, `NewW == kAbsentEdge` means it was deleted, and
/// otherwise its weight changed from OldW to NewW. Symmetric updates yield
/// two records (one per direction); no-ops (delete of a missing edge,
/// upsert to the same weight) yield none.
struct AppliedUpdate {
  VertexId Src = 0;
  VertexId Dst = 0;
  Weight OldW = kAbsentEdge;
  Weight NewW = kAbsentEdge;
};

/// An immutable, densely-packed CSR segment covering one contiguous vertex
/// range `[First, First + NumVerts)` — the unit of *incremental* compaction.
/// `DeltaGraph::foldRange` snapshots a range's current adjacency (patches
/// included) into a segment; `adoptSegment` then re-points that range's
/// base-row reads at the segment and drops the folded patch lists. Other
/// ranges keep reading the original base CSR untouched, which is what lets
/// a sharded store fold one shard in O(shard) instead of rebuilding the
/// whole O(V + E) base.
///
/// Segments are always held by `shared_ptr` (snapshot copies share them);
/// never let a raw `BaseSegment*` escape a pinned snapshot — the linter's
/// pin-escape rule enforces this.
struct BaseSegment {
  Count First = 0;    ///< first vertex id the segment covers
  Count NumVerts = 0; ///< contiguous vertices covered
  /// Dense out-CSR for the range: row V lives at
  /// `[OutOffsets[V - First], OutOffsets[V - First + 1])`.
  std::vector<uint64_t> OutOffsets; ///< NumVerts + 1 entries
  std::vector<VertexId> OutIds;
  std::vector<Weight> OutWs; ///< parallel to OutIds; empty when unweighted
  /// In-adjacency rows, present only when the owning graph mirrors
  /// incoming edges (directed graphs built with in-edges).
  std::vector<uint64_t> InOffsets;
  std::vector<VertexId> InIds;
  std::vector<Weight> InWs;
};

/// Base CSR + per-vertex patch lists with unified neighbor iteration.
///
/// Copyable with copy-on-write sharing: a copy shares the (immutable)
/// base, the patch lists, and the paged slot index, so publishing a
/// snapshot version costs O(patched-vertex pointers + V/pageSize page
/// pointers) — not O(V + overlay) deep data. The writer clones a patch
/// list (or a slot page) only when it is about to mutate one that a live
/// snapshot still references, so per publish window only the
/// dirty-since-last-publish lists are ever deep-copied.
///
/// Concurrency contract: all copies of a given writer and all mutations of
/// it are serialized by the owner (SnapshotStore holds its writer mutex
/// across both). Snapshots may be *read and released* from any thread —
/// releasing only decrements refcounts, which can make a `use_count()`
/// observed by the serialized writer stale-high, never stale-low, so the
/// worst case is one unnecessary clone.
class DeltaGraph {
public:
  DeltaGraph() = default;
  explicit DeltaGraph(std::shared_ptr<const Graph> Base);

  /// --- Graph-compatible read interface (see graph/Graph.h) -------------
  Count numNodes() const { return BaseNodes + TailNodes; }
  Count numEdges() const { return NumEdges; }
  bool isSymmetric() const { return BasePtr->isSymmetric(); }
  bool isWeighted() const { return BasePtr->isWeighted(); }
  bool hasInEdges() const { return BasePtr->hasInEdges(); }
  bool hasCoordinates() const { return BasePtr->hasCoordinates(); }
  const Coordinates &coordinates() const {
    return ExtCoords ? *ExtCoords : BasePtr->coordinates();
  }

  Count outDegree(VertexId V) const {
    uint32_t Slot = OutSlot.get(V);
    if (Slot == kNoSlot)
      return baseOutRow(V).size();
    return static_cast<Count>(OutPatches[Slot]->Ids.size());
  }

  Count inDegree(VertexId V) const {
    if (isSymmetric())
      return outDegree(V);
    uint32_t Slot = InSlot.get(V);
    if (Slot == kNoSlot)
      return baseInRow(V).size();
    return static_cast<Count>(InPatches[Slot]->Ids.size());
  }

  Graph::NeighborRange outNeighbors(VertexId V) const {
    uint32_t Slot = OutSlot.get(V);
    if (Slot == kNoSlot)
      return baseOutRow(V);
    return rangeOf(*OutPatches[Slot]);
  }

  Graph::NeighborRange inNeighbors(VertexId V) const {
    if (isSymmetric())
      return outNeighbors(V);
    uint32_t Slot = InSlot.get(V);
    if (Slot == kNoSlot)
      return baseInRow(V);
    return rangeOf(*InPatches[Slot]);
  }

  /// Sum of out-degrees over a vertex set (direction optimization).
  int64_t outDegreeSum(const VertexId *Vs, Count N) const;

  /// Frontier-lookahead prefetch (see Graph::prefetchOutRow). Patched
  /// vertices live in small per-vertex lists; only the base-CSR path is
  /// worth hinting.
  void prefetchOutRow(VertexId V) const {
    if (OutSlot.get(V) == kNoSlot && SegSlot.get(V) == kNoSlot &&
        V < static_cast<VertexId>(BaseNodes))
      BasePtr->prefetchOutRow(V);
  }

  /// --- Delta interface --------------------------------------------------

  /// Applies \p Batch in order and returns the directed transitions that
  /// took effect (see AppliedUpdate). Invalid requests — out-of-range
  /// endpoints, self loops, negative upsert weights — are skipped: a
  /// serving system must survive malformed writes. Writer-side only; not
  /// thread-safe against readers of the *same* object (publish a copy).
  std::vector<AppliedUpdate> apply(const std::vector<EdgeUpdate> &Batch);

  /// True when \p U would be applied (in-range endpoints, no self loop,
  /// non-negative upsert weight) against a universe of \p NumNodes
  /// vertices. The per-update skip test `apply` uses, exposed so sharded
  /// callers routing directed halves to different overlays apply exactly
  /// the same policy.
  static bool validUpdate(const EdgeUpdate &U, Count NumNodes) {
    if (static_cast<Count>(U.Src) >= NumNodes ||
        static_cast<Count>(U.Dst) >= NumNodes || U.Src == U.Dst)
      return false;
    return U.Kind != UpdateKind::Upsert || U.W >= 0;
  }

  /// --- Shard-local application (service/SnapshotStore.h sharding) -------
  ///
  /// A sharded store partitions vertices across overlays: the directed
  /// edge (Src, Dst) lives in shard(Src)'s out-adjacency and shard(Dst)'s
  /// in-adjacency. These entry points apply exactly one side, so each
  /// shard's overlay only ever patches its own vertices. Callers are
  /// responsible for validity checks (`validUpdate`) and for routing both
  /// sides; `apply` remains the single-overlay equivalent.

  /// Out-adjacency side only (no in-mirror). Bumps the edge and overlay
  /// counters exactly like `apply` does for the directed edge.
  AppliedUpdate applyShardOut(VertexId Src, VertexId Dst, Weight W,
                              UpdateKind Kind) {
    return applyDirectedOut(Src, Dst, W, Kind);
  }

  /// In-adjacency mirror side only. No-op on symmetric graphs (the
  /// reverse direction is routed as its own out-edge) and on graphs
  /// without incoming adjacency.
  void applyShardInMirror(VertexId Src, VertexId Dst, Weight W,
                          UpdateKind Kind) {
    mirrorIn(Src, Dst, W, Kind);
  }

  /// --- Vertex insertion -------------------------------------------------

  /// Grows the vertex universe to \p NewNumNodes; the fresh ids are
  /// `[numNodes(), NewNumNodes)`, appended at the tail with empty
  /// adjacency. On coordinate-bearing graphs, \p TailCoords may supply
  /// one (X, Y) per appended vertex (in append order); absent entries
  /// default to (0, 0) — callers relying on the A* coordinate bound must
  /// supply coordinates that keep the weight >= 100 x Euclidean contract
  /// (graph/Generators.h), exactly as they must for live edge inserts.
  void growUniverse(Count NewNumNodes, const Coordinates *TailCoords = nullptr);

  /// Appends one vertex (see growUniverse) and returns its id.
  VertexId addVertex();
  /// Appends one vertex with coordinates (coordinate-bearing graphs).
  VertexId addVertex(double X, double Y);

  /// Vertices appended past the base graph (ids >= base().numNodes()).
  Count tailNodes() const { return TailNodes; }

  /// Edges currently resident in patch lists (the overlay size the
  /// compaction threshold is measured against).
  Count overlayEdges() const { return OverlayEdges; }
  /// Vertices owning a live patch list (free-listed slots excluded).
  Count patchedVertices() const {
    return static_cast<Count>(OutPatches.size() - FreeOutSlots.size());
  }

  const Graph &base() const { return *BasePtr; }
  std::shared_ptr<const Graph> basePtr() const { return BasePtr; }

  /// --- Incremental (range) compaction ------------------------------------
  ///
  /// `foldRange` snapshots the *current* adjacency of a vertex range into
  /// a fresh immutable BaseSegment — read-only, so it can run on a pinned
  /// copy while the writer keeps mutating. `adoptSegment` installs a
  /// segment: every covered vertex's base-row reads re-route to the
  /// segment, its patch lists are dropped (their slots recycled), and the
  /// overlay counter shrinks by the folded patch edges. The caller must
  /// guarantee the segment equals the adopted-onto graph's current
  /// adjacency over the range (fold in place under the writer lock, or
  /// fold a pinned copy and replay the ops that landed since) — adoption
  /// therefore never changes `numEdges()`. O(range), not O(V + E), and the
  /// shared monolithic base CSR is never replaced, so sibling shard
  /// overlays are unaffected.
  std::shared_ptr<const BaseSegment> foldRange(Count First,
                                               Count NumVerts) const;
  void adoptSegment(std::shared_ptr<const BaseSegment> Seg);
  /// foldRange + adoptSegment in place (the synchronous in-lock fold).
  void compactRange(Count First, Count NumVerts) {
    adoptSegment(foldRange(First, NumVerts));
  }

  /// Base segments currently installed.
  Count numSegments() const { return static_cast<Count>(Segs.size()); }
  /// Isolated (fully tombstoned) vertices whose empty patch rows were
  /// reclaimed by segment adoption — deleted-vertex rows folding away.
  Count reclaimedTombstones() const { return ReclaimedTombstones; }

  /// Merges base + overlay into a fresh immutable CSR (same adjacency,
  /// deterministically sorted like GraphBuilder output). O(V + E).
  Graph compact() const;

private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  struct Patch {
    std::vector<VertexId> Ids; ///< sorted by neighbor id
    std::vector<Weight> Ws;    ///< parallel to Ids; empty when unweighted
  };

  /// Paged per-vertex slot index with copy-on-write pages. A copy shares
  /// every page (O(V / kPageSize) pointer copies); the serialized writer
  /// clones a page before the first write that would be visible to a
  /// sharing snapshot. Unmapped pages read as all-kNoSlot, so untouched
  /// regions of a lightly-patched graph cost one pointer load + branch on
  /// the read path and no memory at all.
  class PagedSlots {
  public:
    static constexpr int kPageBits = 12;
    static constexpr size_t kPageSize = size_t{1} << kPageBits;

    void init(Count NumNodes) {
      Pages.assign((static_cast<size_t>(NumNodes) + kPageSize - 1) /
                       kPageSize,
                   nullptr);
    }
    /// Universe growth: appends unmapped (all-kNoSlot) pages. The page
    /// vector itself is per-copy (only the pages are shared), so growing
    /// the writer never perturbs a published snapshot.
    void grow(Count NumNodes) {
      size_t Want =
          (static_cast<size_t>(NumNodes) + kPageSize - 1) / kPageSize;
      if (Want > Pages.size())
        Pages.resize(Want, nullptr);
    }
    bool empty() const { return Pages.empty(); }

    uint32_t get(VertexId V) const {
      const PagePtr &P = Pages[V >> kPageBits];
      return P ? (*P)[V & (kPageSize - 1)] : kNoSlot;
    }

    void set(VertexId V, uint32_t S) {
      PagePtr &P = Pages[V >> kPageBits];
      if (!P) {
        P = std::make_shared<Page>();
        P->fill(kNoSlot);
      } else if (P.use_count() > 1) {
        P = std::make_shared<Page>(*P); // shared with a snapshot: clone
      }
      (*P)[V & (kPageSize - 1)] = S;
    }

  private:
    using Page = std::array<uint32_t, kPageSize>;
    using PagePtr = std::shared_ptr<Page>;
    std::vector<PagePtr> Pages;
  };

  Graph::NeighborRange rangeOf(const Patch &P) const {
    return Graph::NeighborRange{P.Ids.data(),
                                isWeighted() ? P.Ws.data() : nullptr,
                                static_cast<Count>(P.Ids.size())};
  }

  /// The *writable* patch list for \p V in the given direction: created by
  /// copying the current adjacency on first touch, cloned from the shared
  /// list on the first touch after a publish (copy-on-write).
  Patch &patchFor(VertexId V, bool Out);

  /// The base-layer row for \p V with segment indirection: an installed
  /// segment's row wins, then the monolithic base CSR, then empty (tail
  /// vertices never folded into a segment).
  Graph::NeighborRange baseOutRow(VertexId V) const {
    uint32_t Seg = SegSlot.get(V);
    if (Seg != kNoSlot)
      return segRow(*Segs[Seg], V, /*Out=*/true);
    return V < static_cast<VertexId>(BaseNodes)
               ? BasePtr->outNeighbors(V)
               : Graph::NeighborRange{nullptr, nullptr, 0};
  }
  Graph::NeighborRange baseInRow(VertexId V) const {
    uint32_t Seg = SegSlot.get(V);
    if (Seg != kNoSlot)
      return segRow(*Segs[Seg], V, /*Out=*/false);
    return V < static_cast<VertexId>(BaseNodes)
               ? BasePtr->inNeighbors(V)
               : Graph::NeighborRange{nullptr, nullptr, 0};
  }
  Graph::NeighborRange segRow(const BaseSegment &S, VertexId V,
                              bool Out) const {
    const size_t R = static_cast<size_t>(V) - static_cast<size_t>(S.First);
    const std::vector<uint64_t> &Offs = Out ? S.OutOffsets : S.InOffsets;
    const std::vector<VertexId> &Ids = Out ? S.OutIds : S.InIds;
    const std::vector<Weight> &Ws = Out ? S.OutWs : S.InWs;
    const size_t B = static_cast<size_t>(Offs[R]);
    const size_t E = static_cast<size_t>(Offs[R + 1]);
    return Graph::NeighborRange{Ids.data() + B,
                                isWeighted() ? Ws.data() + B : nullptr,
                                static_cast<Count>(E - B)};
  }

  /// Drops the patch slot for \p V in one direction (segment adoption has
  /// absorbed it). Recycles the slot index and, for the out direction,
  /// returns the folded patch length so the caller can shrink the overlay
  /// counter.
  Count clearPatchSlot(VertexId V, bool Out);

  /// Applies one directed mutation to the out-adjacency (bumping NumEdges
  /// and the overlay counter). In-adjacency mirroring is the caller's job:
  /// `applyDirected` pairs it with mirrorIn() on this overlay, sharded
  /// stores route the mirror to the destination's shard. \returns the
  /// transition, or kAbsentEdge/kAbsentEdge when nothing changed.
  AppliedUpdate applyDirectedOut(VertexId Src, VertexId Dst, Weight W,
                                 UpdateKind Kind);
  /// applyDirectedOut + in-mirror on this same overlay (the single-overlay
  /// composition `apply` uses).
  AppliedUpdate applyDirected(VertexId Src, VertexId Dst, Weight W,
                              UpdateKind Kind);
  void mirrorIn(VertexId Src, VertexId Dst, Weight W, UpdateKind Kind);

  std::shared_ptr<const Graph> BasePtr;
  PagedSlots OutSlot; ///< per-vertex patch index or kNoSlot
  PagedSlots InSlot;  ///< directed graphs with in-edges only
  PagedSlots SegSlot; ///< per-vertex index into Segs, or kNoSlot
  std::vector<std::shared_ptr<Patch>> OutPatches;
  std::vector<std::shared_ptr<Patch>> InPatches;
  /// Installed base segments. The vector is per-copy (a re-fold replaces
  /// the writer's entry without perturbing published snapshots, which hold
  /// their own vector); the segments themselves are shared immutably.
  std::vector<std::shared_ptr<const BaseSegment>> Segs;
  std::vector<uint32_t> FreeOutSlots; ///< recycled patch indices
  std::vector<uint32_t> FreeInSlots;
  Count ReclaimedTombstones = 0; ///< empty patch rows folded away
  /// Tail coordinates (copy-on-grow): set once a vertex is appended to a
  /// coordinate-bearing graph; shared by snapshot copies.
  std::shared_ptr<const Coordinates> ExtCoords;
  Count BaseNodes = 0;   ///< base().numNodes(), cached off the hot path
  Count TailNodes = 0;   ///< vertices appended past the base
  bool MirrorsIn = false; ///< maintain in-adjacency patches (directed+in)
  Count NumEdges = 0;
  Count OverlayEdges = 0;
};

/// Coalesces raw per-application transition records of one batch into at
/// most one record per directed edge: first old weight -> last new weight,
/// with net no-ops dropped. Multiple updates of one edge inside a batch
/// would otherwise hand incremental repair an intermediate "old" weight
/// and break its tightness test. Shared by the snapshot stores.
std::vector<AppliedUpdate>
coalesceApplied(const std::vector<AppliedUpdate> &Raw);

/// A read-only composite over per-shard `DeltaGraph` overlays: vertex V's
/// adjacency is served by shard `shardOf(V)`, so engines templated over
/// the graph type run unmodified against a sharded store's published
/// version. All shard overlays share one base CSR and one universe size
/// (the sharded store grows / compacts them in lockstep); the view just
/// routes per-vertex reads.
///
/// Vertex-range sharding: shard(V) = min(V >> Shift, S-1) with
/// 2^Shift >= ceil(baseNodes / S). Vertices inserted after construction
/// (ids past the base range) clamp into the last shard.
class ShardedDeltaView {
public:
  ShardedDeltaView() = default;
  ShardedDeltaView(std::vector<std::shared_ptr<const DeltaGraph>> Parts,
                   int ShardShift)
      : Shards(std::move(Parts)), Shift(ShardShift) {
    const DeltaGraph &S0 = *Shards.front();
    NumNodes = S0.numNodes();
    const Count BaseEdges = S0.base().numEdges();
    NumEdges = 0;
    for (const std::shared_ptr<const DeltaGraph> &S : Shards)
      NumEdges += S->numEdges() - BaseEdges;
    NumEdges += BaseEdges;
  }

  int numShards() const { return static_cast<int>(Shards.size()); }
  int shardOf(VertexId V) const {
    Count S = static_cast<Count>(V) >> Shift;
    return static_cast<int>(
        std::min<Count>(S, static_cast<Count>(Shards.size()) - 1));
  }
  const DeltaGraph &shard(int S) const { return *Shards[S]; }
  const std::vector<std::shared_ptr<const DeltaGraph>> &shards() const {
    return Shards;
  }
  int shardShift() const { return Shift; }

  /// --- Version metadata (filled by the owning sharded store) -----------
  ///
  /// The cross-shard version vector this composite was published with:
  /// `shardVersions()[s]` bumps exactly when shard s's overlay changed,
  /// `version()` on every publish. A pinned view is immutable, so two
  /// pins compare component-wise — monotone, never torn.
  void setVersions(uint64_t GlobalVersion,
                   std::vector<uint64_t> PerShardVersions) {
    Version_ = GlobalVersion;
    ShardVersions_ = std::move(PerShardVersions);
  }
  uint64_t version() const { return Version_; }
  const std::vector<uint64_t> &shardVersions() const {
    return ShardVersions_;
  }

  /// Shift such that ceil(NumNodes / NumShards) vertices fit per shard
  /// (power-of-two span, so shardOf is a shift + clamp).
  static int shiftFor(Count NumNodes, int NumShards) {
    Count Span = (NumNodes + NumShards - 1) / NumShards;
    int Shift = 0;
    while ((Count{1} << Shift) < std::max<Count>(Span, 1))
      ++Shift;
    return Shift;
  }

  /// --- Graph-compatible read interface ---------------------------------
  Count numNodes() const { return NumNodes; }
  Count numEdges() const { return NumEdges; }
  bool isSymmetric() const { return Shards.front()->isSymmetric(); }
  bool isWeighted() const { return Shards.front()->isWeighted(); }
  bool hasInEdges() const { return Shards.front()->hasInEdges(); }
  bool hasCoordinates() const { return Shards.front()->hasCoordinates(); }
  /// Coordinates are shared store-wide state, not per-shard (every shard
  /// extends its copy in lockstep on vertex insertion); shard 0's are
  /// authoritative.
  const Coordinates &coordinates() const {
    return Shards.front()->coordinates();
  }

  Count outDegree(VertexId V) const { return at(V).outDegree(V); }
  Count inDegree(VertexId V) const { return at(V).inDegree(V); }
  Graph::NeighborRange outNeighbors(VertexId V) const {
    return at(V).outNeighbors(V);
  }
  Graph::NeighborRange inNeighbors(VertexId V) const {
    return at(V).inNeighbors(V);
  }
  int64_t outDegreeSum(const VertexId *Vs, Count N) const {
    int64_t Sum = 0;
    for (Count I = 0; I < N; ++I)
      Sum += outDegree(Vs[I]);
    return Sum;
  }
  void prefetchOutRow(VertexId V) const { at(V).prefetchOutRow(V); }

  /// Merges every shard's overlay + the shared base into one fresh CSR
  /// (same deterministic layout as DeltaGraph::compact). O(V + E).
  Graph compact() const;

private:
  const DeltaGraph &at(VertexId V) const { return *Shards[shardOf(V)]; }

  std::vector<std::shared_ptr<const DeltaGraph>> Shards;
  int Shift = 0;
  Count NumNodes = 0;
  Count NumEdges = 0;
  uint64_t Version_ = 0;
  std::vector<uint64_t> ShardVersions_;
};

} // namespace graphit

#endif // GRAPHIT_GRAPH_DELTAGRAPH_H
