//===- graph/DeltaGraph.h - Delta-CSR overlay over a base graph -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mutable view over an immutable CSR base: edge insertions, deletions and
/// weight changes are absorbed into per-vertex *patch lists* (a vertex whose
/// adjacency changed owns a private, sorted replacement list; every other
/// vertex reads straight from the base CSR). Iteration is unified —
/// `outNeighbors`/`inNeighbors` return the same `Graph::NeighborRange` the
/// base graph returns, so every engine templated over the graph type runs
/// unmodified against a delta view.
///
/// This is the representation behind live-graph serving
/// (service/SnapshotStore.h): writers mutate a private `DeltaGraph`,
/// publish immutable copies of it as refcounted snapshot versions, and
/// compact the overlay back into a fresh CSR (`compact()`) once it exceeds
/// a threshold. The overlay's read cost is one array lookup per vertex on
/// top of CSR, so queries on a lightly-patched view run at base speed.
///
/// The vertex universe is fixed at construction (no vertex insertion —
/// ids are dense and sized into every pooled query state); self-loops and
/// out-of-range endpoints are rejected per update, not fatally.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_DELTAGRAPH_H
#define GRAPHIT_GRAPH_DELTAGRAPH_H

#include "graph/Graph.h"

#include <array>
#include <memory>
#include <vector>

namespace graphit {

/// Sentinel weight meaning "edge absent" in `AppliedUpdate`. Real weights
/// are non-negative (the ordered algorithms require it).
inline constexpr Weight kAbsentEdge = -1;

/// One requested edge mutation. `Upsert` inserts the edge if absent and
/// overwrites its weight if present; `Delete` removes it if present (and is
/// a no-op otherwise). On symmetric graphs each update is applied to both
/// directions.
enum class UpdateKind { Upsert, Delete };
struct EdgeUpdate {
  VertexId Src = 0;
  VertexId Dst = 0;
  Weight W = 1;
  UpdateKind Kind = UpdateKind::Upsert;
};

/// One *directed* edge transition that actually happened, in terms the
/// incremental-repair algorithms consume: `OldW == kAbsentEdge` means the
/// edge was inserted, `NewW == kAbsentEdge` means it was deleted, and
/// otherwise its weight changed from OldW to NewW. Symmetric updates yield
/// two records (one per direction); no-ops (delete of a missing edge,
/// upsert to the same weight) yield none.
struct AppliedUpdate {
  VertexId Src = 0;
  VertexId Dst = 0;
  Weight OldW = kAbsentEdge;
  Weight NewW = kAbsentEdge;
};

/// Base CSR + per-vertex patch lists with unified neighbor iteration.
///
/// Copyable with copy-on-write sharing: a copy shares the (immutable)
/// base, the patch lists, and the paged slot index, so publishing a
/// snapshot version costs O(patched-vertex pointers + V/pageSize page
/// pointers) — not O(V + overlay) deep data. The writer clones a patch
/// list (or a slot page) only when it is about to mutate one that a live
/// snapshot still references, so per publish window only the
/// dirty-since-last-publish lists are ever deep-copied.
///
/// Concurrency contract: all copies of a given writer and all mutations of
/// it are serialized by the owner (SnapshotStore holds its writer mutex
/// across both). Snapshots may be *read and released* from any thread —
/// releasing only decrements refcounts, which can make a `use_count()`
/// observed by the serialized writer stale-high, never stale-low, so the
/// worst case is one unnecessary clone.
class DeltaGraph {
public:
  DeltaGraph() = default;
  explicit DeltaGraph(std::shared_ptr<const Graph> Base);

  /// --- Graph-compatible read interface (see graph/Graph.h) -------------
  Count numNodes() const { return BasePtr->numNodes(); }
  Count numEdges() const { return NumEdges; }
  bool isSymmetric() const { return BasePtr->isSymmetric(); }
  bool isWeighted() const { return BasePtr->isWeighted(); }
  bool hasInEdges() const { return BasePtr->hasInEdges(); }
  bool hasCoordinates() const { return BasePtr->hasCoordinates(); }
  const Coordinates &coordinates() const { return BasePtr->coordinates(); }

  Count outDegree(VertexId V) const {
    uint32_t Slot = OutSlot.get(V);
    if (Slot == kNoSlot)
      return BasePtr->outDegree(V);
    return static_cast<Count>(OutPatches[Slot]->Ids.size());
  }

  Count inDegree(VertexId V) const {
    if (isSymmetric())
      return outDegree(V);
    uint32_t Slot = InSlot.get(V);
    if (Slot == kNoSlot)
      return BasePtr->inDegree(V);
    return static_cast<Count>(InPatches[Slot]->Ids.size());
  }

  Graph::NeighborRange outNeighbors(VertexId V) const {
    uint32_t Slot = OutSlot.get(V);
    if (Slot == kNoSlot)
      return BasePtr->outNeighbors(V);
    return rangeOf(*OutPatches[Slot]);
  }

  Graph::NeighborRange inNeighbors(VertexId V) const {
    if (isSymmetric())
      return outNeighbors(V);
    uint32_t Slot = InSlot.get(V);
    if (Slot == kNoSlot)
      return BasePtr->inNeighbors(V);
    return rangeOf(*InPatches[Slot]);
  }

  /// Sum of out-degrees over a vertex set (direction optimization).
  int64_t outDegreeSum(const VertexId *Vs, Count N) const;

  /// Frontier-lookahead prefetch (see Graph::prefetchOutRow). Patched
  /// vertices live in small per-vertex lists; only the base-CSR path is
  /// worth hinting.
  void prefetchOutRow(VertexId V) const {
    if (OutSlot.get(V) == kNoSlot)
      BasePtr->prefetchOutRow(V);
  }

  /// --- Delta interface --------------------------------------------------

  /// Applies \p Batch in order and returns the directed transitions that
  /// took effect (see AppliedUpdate). Invalid requests — out-of-range
  /// endpoints, self loops, negative upsert weights — are skipped: a
  /// serving system must survive malformed writes. Writer-side only; not
  /// thread-safe against readers of the *same* object (publish a copy).
  std::vector<AppliedUpdate> apply(const std::vector<EdgeUpdate> &Batch);

  /// Edges currently resident in patch lists (the overlay size the
  /// compaction threshold is measured against).
  Count overlayEdges() const { return OverlayEdges; }
  /// Vertices owning a patch list.
  Count patchedVertices() const {
    return static_cast<Count>(OutPatches.size());
  }

  const Graph &base() const { return *BasePtr; }
  std::shared_ptr<const Graph> basePtr() const { return BasePtr; }

  /// Merges base + overlay into a fresh immutable CSR (same adjacency,
  /// deterministically sorted like GraphBuilder output). O(V + E).
  Graph compact() const;

private:
  static constexpr uint32_t kNoSlot = 0xffffffffu;

  struct Patch {
    std::vector<VertexId> Ids; ///< sorted by neighbor id
    std::vector<Weight> Ws;    ///< parallel to Ids; empty when unweighted
  };

  /// Paged per-vertex slot index with copy-on-write pages. A copy shares
  /// every page (O(V / kPageSize) pointer copies); the serialized writer
  /// clones a page before the first write that would be visible to a
  /// sharing snapshot. Unmapped pages read as all-kNoSlot, so untouched
  /// regions of a lightly-patched graph cost one pointer load + branch on
  /// the read path and no memory at all.
  class PagedSlots {
  public:
    static constexpr int kPageBits = 12;
    static constexpr size_t kPageSize = size_t{1} << kPageBits;

    void init(Count NumNodes) {
      Pages.assign((static_cast<size_t>(NumNodes) + kPageSize - 1) /
                       kPageSize,
                   nullptr);
    }
    bool empty() const { return Pages.empty(); }

    uint32_t get(VertexId V) const {
      const PagePtr &P = Pages[V >> kPageBits];
      return P ? (*P)[V & (kPageSize - 1)] : kNoSlot;
    }

    void set(VertexId V, uint32_t S) {
      PagePtr &P = Pages[V >> kPageBits];
      if (!P) {
        P = std::make_shared<Page>();
        P->fill(kNoSlot);
      } else if (P.use_count() > 1) {
        P = std::make_shared<Page>(*P); // shared with a snapshot: clone
      }
      (*P)[V & (kPageSize - 1)] = S;
    }

  private:
    using Page = std::array<uint32_t, kPageSize>;
    using PagePtr = std::shared_ptr<Page>;
    std::vector<PagePtr> Pages;
  };

  Graph::NeighborRange rangeOf(const Patch &P) const {
    return Graph::NeighborRange{P.Ids.data(),
                                isWeighted() ? P.Ws.data() : nullptr,
                                static_cast<Count>(P.Ids.size())};
  }

  /// The *writable* patch list for \p V in the given direction: created by
  /// copying the current adjacency on first touch, cloned from the shared
  /// list on the first touch after a publish (copy-on-write).
  Patch &patchFor(VertexId V, bool Out);

  /// Applies one directed mutation to the out-adjacency (bumping NumEdges
  /// and the overlay counter) and mirrors it into the in-adjacency via
  /// mirrorIn(), which deliberately does not count — one logical directed
  /// edge, one count. \returns the transition, or kAbsentEdge/kAbsentEdge
  /// when nothing changed.
  AppliedUpdate applyDirected(VertexId Src, VertexId Dst, Weight W,
                              UpdateKind Kind);
  void mirrorIn(VertexId Src, VertexId Dst, Weight W, UpdateKind Kind);

  std::shared_ptr<const Graph> BasePtr;
  PagedSlots OutSlot; ///< per-vertex patch index or kNoSlot
  PagedSlots InSlot;  ///< directed graphs with in-edges only
  std::vector<std::shared_ptr<Patch>> OutPatches;
  std::vector<std::shared_ptr<Patch>> InPatches;
  Count NumEdges = 0;
  Count OverlayEdges = 0;
};

} // namespace graphit

#endif // GRAPHIT_GRAPH_DELTAGRAPH_H
