//===- graph/Reorder.h - Lightweight vertex reordering ----------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-conscious vertex reordering: cheap, parallel passes that renumber
/// vertices so the CSR rows touched together live together. GraphIt treats
/// data layout as a scheduling dimension; BOBA (Drescher & Porumbescu)
/// shows that *lightweight* reorderings — a single pass over the edge
/// stream — recover most of the locality benefit of heavyweight methods at
/// a tiny fraction of their cost. This header provides:
///
///  * `VertexMapping` — a bijection between *external* (original) and
///    *internal* (layout) vertex ids. Everything outside the engines keeps
///    speaking external ids; the service layer translates at its boundary.
///  * `makeOrdering` — the ordering passes:
///      - `Degree`: degree-descending counting sort (hub packing; the
///        classic win on skewed/RMAT graphs);
///      - `Bfs`: BFS/frontier order from a peripheral-ish source (bucket
///        wavefronts of Δ-stepping become contiguous id bands; the win on
///        road networks);
///      - `Push`: BOBA-style first-appearance-as-destination order over
///        the CSR edge stream (one O(E) pass, no traversal);
///      - `Random`: seeded shuffle — the adversarial layout, used by the
///        permutation-correctness property tests and as a bench baseline.
///  * `reorderGraph` — convenience: build the ordering and rebuild the CSR
///    (`Graph::permuted`).
///
/// All orderings are deterministic for a given graph and seed, independent
/// of thread count.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_GRAPH_REORDER_H
#define GRAPHIT_GRAPH_REORDER_H

#include "graph/Graph.h"

#include <string>
#include <vector>

namespace graphit {

/// Which reordering pass to run (None = keep the input layout).
enum class ReorderKind { None, Degree, Bfs, Push, Random };

/// Display/parse name ("none", "degree", "bfs", "push", "random").
const char *reorderKindName(ReorderKind Kind);

/// Inverse of reorderKindName; aborts on unknown spellings (they are
/// programmer errors in bench/CI scripts).
ReorderKind parseReorderKind(const std::string &Name);

/// Every kind, in enum order (bench sweeps).
std::vector<ReorderKind> allReorderKinds();

/// A bijection external-id <-> internal-id over the vertex universe the
/// mapping was built from, extended by an *identity tail*: ids at or past
/// `size()` (vertices inserted into a live store after the layout was
/// fixed) translate to themselves in both directions. Tail vertices are
/// appended at the end of both id spaces, so the passthrough is exact.
///
/// "External" ids are the caller's original vertex names; "internal" ids
/// index the reordered CSR the engines run on. An identity mapping is
/// represented without materializing the arrays, so `ReorderKind::None`
/// costs nothing.
class VertexMapping {
public:
  /// Identity over \p NumNodes vertices.
  explicit VertexMapping(Count N = 0) : NumNodes(N) {}

  /// Builds from the internal->external table (`NewToOld[n]` = the external
  /// id that becomes internal id n). Aborts unless it is a permutation.
  static VertexMapping fromInternalToExternal(std::vector<VertexId> NewToOld);

  /// Vertices covered by the materialized permutation (the universe at
  /// layout time); ids >= size() are identity-tail vertices.
  Count size() const { return NumNodes; }
  bool isIdentity() const { return ToExternal_.empty(); }

  /// External (original) id -> internal (layout) id.
  VertexId toInternal(VertexId External) const {
    return isIdentity() || static_cast<Count>(External) >= NumNodes
               ? External
               : ToInternal_[External];
  }
  /// Internal (layout) id -> external (original) id.
  VertexId toExternal(VertexId Internal) const {
    return isIdentity() || static_cast<Count>(Internal) >= NumNodes
               ? Internal
               : ToExternal_[Internal];
  }

  /// In-place translation helpers for id vectors (paths, frontiers).
  void mapToInternal(std::vector<VertexId> &Vs) const;
  void mapToExternal(std::vector<VertexId> &Vs) const;

  /// --- Freed-id recycling ------------------------------------------------
  ///
  /// A LIFO free list of *external* ids whose vertices were detached
  /// (service-layer `removeVertex`); `acquireVertex` pops from here before
  /// growing the universe, so ids recycle instead of leaking tail growth.
  /// The permutation tables above stay immutable — only this list mutates,
  /// and callers serialize access (the stores guard it with their read
  /// mutex).
  void recordFreed(VertexId External) { FreeIds_.push_back(External); }
  bool takeFreed(VertexId &Out) {
    if (FreeIds_.empty())
      return false;
    Out = FreeIds_.back();
    FreeIds_.pop_back();
    return true;
  }
  Count freeCount() const { return static_cast<Count>(FreeIds_.size()); }

private:
  Count NumNodes = 0;
  std::vector<VertexId> ToInternal_; ///< [external] -> internal
  std::vector<VertexId> ToExternal_; ///< [internal] -> external
  std::vector<VertexId> FreeIds_;    ///< freed external ids awaiting reuse
};

/// Builds the \p Kind ordering for \p G. \p Seed only affects
/// `ReorderKind::Random`. \p SourceHint roots the `Bfs` ordering: bands of
/// equal hop distance from the root become contiguous id ranges, so a
/// Δ-stepping wavefront *from that root* walks a sliding window of the
/// distance array. Align it with the dominant query source when one is
/// known (measured: root alignment is the difference between a speedup and
/// a slowdown on road networks); any vertex works correctly.
/// `None` returns the identity mapping.
VertexMapping makeOrdering(const Graph &G, ReorderKind Kind,
                           uint64_t Seed = 0x0EDE5, VertexId SourceHint = 0);

/// `makeOrdering` + `Graph::permuted` in one step. With `None` this still
/// copies the graph (callers holding only a reference should test the
/// kind themselves; callers that own the graph use `reorderLoadedGraph`).
/// When \p MapOut is non-null the mapping used is stored there.
Graph reorderGraph(const Graph &G, ReorderKind Kind,
                   VertexMapping *MapOut = nullptr, uint64_t Seed = 0x0EDE5,
                   VertexId SourceHint = 0);

/// By-value variant for freshly built or loaded graphs (the
/// reorder-on-load entry points): with `None` the input moves through
/// untouched — no O(V+E) copy — and \p MapOut receives the identity.
Graph reorderLoadedGraph(Graph G, ReorderKind Kind,
                         VertexMapping *MapOut = nullptr,
                         uint64_t Seed = 0x0EDE5, VertexId SourceHint = 0);

} // namespace graphit

#endif // GRAPHIT_GRAPH_REORDER_H
