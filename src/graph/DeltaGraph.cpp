//===- graph/DeltaGraph.cpp - Delta-CSR overlay over a base graph ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/DeltaGraph.h"

#include "graph/Builder.h"
#include "support/Abort.h"

#include <algorithm>

using namespace graphit;

DeltaGraph::DeltaGraph(std::shared_ptr<const Graph> Base)
    : BasePtr(std::move(Base)) {
  if (!BasePtr)
    fatalError("DeltaGraph: null base graph");
  NumEdges = BasePtr->numEdges();
  OutSlot.init(BasePtr->numNodes());
  if (!BasePtr->isSymmetric() && BasePtr->hasInEdges())
    InSlot.init(BasePtr->numNodes());
}

int64_t DeltaGraph::outDegreeSum(const VertexId *Vs, Count N) const {
  int64_t Sum = 0;
  for (Count I = 0; I < N; ++I)
    Sum += outDegree(Vs[I]);
  return Sum;
}

DeltaGraph::Patch &DeltaGraph::patchFor(VertexId V, bool Out) {
  PagedSlots &Slots = Out ? OutSlot : InSlot;
  std::vector<std::shared_ptr<Patch>> &Patches = Out ? OutPatches : InPatches;
  uint32_t Slot = Slots.get(V);
  if (Slot != kNoSlot) {
    std::shared_ptr<Patch> &P = Patches[Slot];
    // Copy-on-write: a published snapshot still references this list, so
    // the first mutation after a publish clones it. Only lists actually
    // dirtied between publishes are ever deep-copied.
    if (P.use_count() > 1)
      P = std::make_shared<Patch>(*P);
    return *P;
  }
  Slots.set(V, static_cast<uint32_t>(Patches.size()));
  Patches.push_back(std::make_shared<Patch>());
  Patch &P = *Patches.back();
  Graph::NeighborRange Range =
      Out ? BasePtr->outNeighbors(V) : BasePtr->inNeighbors(V);
  P.Ids.reserve(static_cast<size_t>(Range.size()) + 1);
  if (isWeighted())
    P.Ws.reserve(static_cast<size_t>(Range.size()) + 1);
  for (WNode E : Range) {
    P.Ids.push_back(E.V);
    if (isWeighted())
      P.Ws.push_back(E.W);
  }
  if (Out)
    OverlayEdges += static_cast<Count>(P.Ids.size());
  return P;
}

AppliedUpdate DeltaGraph::applyDirected(VertexId Src, VertexId Dst, Weight W,
                                        UpdateKind Kind) {
  AppliedUpdate Nothing{Src, Dst, kAbsentEdge, kAbsentEdge};
  Patch &P = patchFor(Src, /*Out=*/true);
  auto It = std::lower_bound(P.Ids.begin(), P.Ids.end(), Dst);
  size_t Idx = static_cast<size_t>(It - P.Ids.begin());
  bool Present = It != P.Ids.end() && *It == Dst;
  Weight OldW =
      Present ? (isWeighted() ? P.Ws[Idx] : Weight{1}) : kAbsentEdge;

  if (Kind == UpdateKind::Delete) {
    if (!Present)
      return Nothing; // deleting a missing edge is a no-op
    P.Ids.erase(It);
    if (isWeighted())
      P.Ws.erase(P.Ws.begin() + static_cast<ptrdiff_t>(Idx));
    --NumEdges;
    --OverlayEdges;
    mirrorIn(Src, Dst, W, Kind);
    return AppliedUpdate{Src, Dst, OldW, kAbsentEdge};
  }

  Weight NewW = isWeighted() ? W : Weight{1};
  if (Present) {
    if (OldW == NewW)
      return Nothing; // same weight: no transition
    if (isWeighted())
      P.Ws[Idx] = NewW;
    mirrorIn(Src, Dst, W, Kind);
    return AppliedUpdate{Src, Dst, OldW, NewW};
  }
  P.Ids.insert(It, Dst);
  if (isWeighted())
    P.Ws.insert(P.Ws.begin() + static_cast<ptrdiff_t>(Idx), NewW);
  ++NumEdges;
  ++OverlayEdges;
  mirrorIn(Src, Dst, W, Kind);
  return AppliedUpdate{Src, Dst, kAbsentEdge, NewW};
}

void DeltaGraph::mirrorIn(VertexId Src, VertexId Dst, Weight W,
                          UpdateKind Kind) {
  // Directed graphs carrying incoming adjacency keep it in sync so
  // DensePull traversal and repair's boundary scan see the same edges.
  if (InSlot.empty())
    return;
  Patch &P = patchFor(Dst, /*Out=*/false);
  auto It = std::lower_bound(P.Ids.begin(), P.Ids.end(), Src);
  size_t Idx = static_cast<size_t>(It - P.Ids.begin());
  bool Present = It != P.Ids.end() && *It == Src;
  if (Kind == UpdateKind::Delete) {
    if (!Present)
      return;
    P.Ids.erase(It);
    if (isWeighted())
      P.Ws.erase(P.Ws.begin() + static_cast<ptrdiff_t>(Idx));
    return;
  }
  Weight NewW = isWeighted() ? W : Weight{1};
  if (Present) {
    if (isWeighted())
      P.Ws[Idx] = NewW;
    return;
  }
  P.Ids.insert(It, Src);
  if (isWeighted())
    P.Ws.insert(P.Ws.begin() + static_cast<ptrdiff_t>(Idx), NewW);
}

std::vector<AppliedUpdate>
DeltaGraph::apply(const std::vector<EdgeUpdate> &Batch) {
  std::vector<AppliedUpdate> Applied;
  Applied.reserve(Batch.size() * (isSymmetric() ? 2 : 1));
  const Count N = numNodes();
  for (const EdgeUpdate &U : Batch) {
    if (static_cast<Count>(U.Src) >= N || static_cast<Count>(U.Dst) >= N ||
        U.Src == U.Dst)
      continue; // malformed write: skip, don't take the store down
    if (U.Kind == UpdateKind::Upsert && U.W < 0)
      continue; // ordered algorithms require non-negative weights
    AppliedUpdate A = applyDirected(U.Src, U.Dst, U.W, U.Kind);
    if (A.OldW != kAbsentEdge || A.NewW != kAbsentEdge)
      Applied.push_back(A);
    if (isSymmetric()) {
      AppliedUpdate B = applyDirected(U.Dst, U.Src, U.W, U.Kind);
      if (B.OldW != kAbsentEdge || B.NewW != kAbsentEdge)
        Applied.push_back(B);
    }
  }
  return Applied;
}

Graph DeltaGraph::compact() const {
  std::vector<Edge> Edges;
  Edges.reserve(static_cast<size_t>(isSymmetric() ? NumEdges / 2
                                                  : NumEdges));
  const Count N = numNodes();
  for (Count V = 0; V < N; ++V)
    for (WNode E : outNeighbors(static_cast<VertexId>(V))) {
      // Symmetric views store both directions; emit each undirected edge
      // once and let the builder re-symmetrize.
      if (isSymmetric() && E.V < static_cast<VertexId>(V))
        continue;
      Edges.push_back(Edge{static_cast<VertexId>(V), E.V, E.W});
    }
  BuildOptions Options;
  Options.Symmetrize = isSymmetric();
  Options.RemoveSelfLoops = false;
  Options.RemoveDuplicates = false;
  Options.Weighted = isWeighted();
  Options.BuildInEdges = hasInEdges();
  GraphBuilder Builder(Options);
  if (hasCoordinates())
    return Builder.build(N, std::move(Edges), coordinates());
  return Builder.build(N, std::move(Edges));
}
