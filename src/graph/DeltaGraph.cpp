//===- graph/DeltaGraph.cpp - Delta-CSR overlay over a base graph ---------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/DeltaGraph.h"

#include "graph/Builder.h"
#include "support/Abort.h"

#include <algorithm>
#include <unordered_map>

using namespace graphit;

DeltaGraph::DeltaGraph(std::shared_ptr<const Graph> Base)
    : BasePtr(std::move(Base)) {
  if (!BasePtr)
    fatalError("DeltaGraph: null base graph");
  NumEdges = BasePtr->numEdges();
  BaseNodes = BasePtr->numNodes();
  OutSlot.init(BaseNodes);
  SegSlot.init(BaseNodes);
  MirrorsIn = !BasePtr->isSymmetric() && BasePtr->hasInEdges();
  if (MirrorsIn)
    InSlot.init(BaseNodes);
}

void DeltaGraph::growUniverse(Count NewNumNodes,
                              const Coordinates *TailCoords) {
  const Count Old = numNodes();
  if (NewNumNodes <= Old)
    return;
  TailNodes = NewNumNodes - BaseNodes;
  OutSlot.grow(NewNumNodes);
  SegSlot.grow(NewNumNodes);
  if (MirrorsIn)
    InSlot.grow(NewNumNodes);
  if (hasCoordinates()) {
    // Copy-on-grow keeps published snapshots untouched; insertion is rare
    // enough that the O(V) copy beats shared-page bookkeeping here.
    auto Grown = std::make_shared<Coordinates>(coordinates());
    Grown->X.resize(static_cast<size_t>(NewNumNodes), 0.0);
    Grown->Y.resize(static_cast<size_t>(NewNumNodes), 0.0);
    if (TailCoords)
      for (Count I = 0; I < NewNumNodes - Old &&
                        I < static_cast<Count>(TailCoords->X.size());
           ++I) {
        Grown->X[static_cast<size_t>(Old + I)] =
            TailCoords->X[static_cast<size_t>(I)];
        Grown->Y[static_cast<size_t>(Old + I)] =
            TailCoords->Y[static_cast<size_t>(I)];
      }
    ExtCoords = std::move(Grown);
  }
}

VertexId DeltaGraph::addVertex() {
  VertexId Id = static_cast<VertexId>(numNodes());
  growUniverse(numNodes() + 1);
  return Id;
}

VertexId DeltaGraph::addVertex(double X, double Y) {
  VertexId Id = static_cast<VertexId>(numNodes());
  Coordinates C;
  C.X.push_back(X);
  C.Y.push_back(Y);
  growUniverse(numNodes() + 1, &C);
  return Id;
}

int64_t DeltaGraph::outDegreeSum(const VertexId *Vs, Count N) const {
  int64_t Sum = 0;
  for (Count I = 0; I < N; ++I)
    Sum += outDegree(Vs[I]);
  return Sum;
}

DeltaGraph::Patch &DeltaGraph::patchFor(VertexId V, bool Out) {
  PagedSlots &Slots = Out ? OutSlot : InSlot;
  std::vector<std::shared_ptr<Patch>> &Patches = Out ? OutPatches : InPatches;
  std::vector<uint32_t> &Free = Out ? FreeOutSlots : FreeInSlots;
  uint32_t Slot = Slots.get(V);
  if (Slot != kNoSlot) {
    std::shared_ptr<Patch> &P = Patches[Slot];
    // Copy-on-write: a published snapshot still references this list, so
    // the first mutation after a publish clones it. Only lists actually
    // dirtied between publishes are ever deep-copied.
    if (P.use_count() > 1)
      P = std::make_shared<Patch>(*P);
    return *P;
  }
  if (!Free.empty()) {
    Slot = Free.back();
    Free.pop_back();
    Patches[Slot] = std::make_shared<Patch>();
  } else {
    Slot = static_cast<uint32_t>(Patches.size());
    Patches.push_back(std::make_shared<Patch>());
  }
  Slots.set(V, Slot);
  Patch &P = *Patches[Slot];
  // First touch copies the current base-layer row — an installed segment's
  // row if the vertex was folded, the monolithic base CSR otherwise, empty
  // for never-folded tail vertices.
  Graph::NeighborRange Range = Out ? baseOutRow(V) : baseInRow(V);
  P.Ids.reserve(static_cast<size_t>(Range.size()) + 1);
  if (isWeighted())
    P.Ws.reserve(static_cast<size_t>(Range.size()) + 1);
  for (WNode E : Range) {
    P.Ids.push_back(E.V);
    if (isWeighted())
      P.Ws.push_back(E.W);
  }
  if (Out)
    OverlayEdges += static_cast<Count>(P.Ids.size());
  return P;
}

Count DeltaGraph::clearPatchSlot(VertexId V, bool Out) {
  PagedSlots &Slots = Out ? OutSlot : InSlot;
  uint32_t Slot = Slots.get(V);
  if (Slot == kNoSlot)
    return 0;
  std::vector<std::shared_ptr<Patch>> &Patches = Out ? OutPatches : InPatches;
  const Count Len = static_cast<Count>(Patches[Slot]->Ids.size());
  Patches[Slot].reset(); // snapshots sharing the list keep it alive
  (Out ? FreeOutSlots : FreeInSlots).push_back(Slot);
  Slots.set(V, kNoSlot);
  return Len;
}

std::shared_ptr<const BaseSegment> DeltaGraph::foldRange(Count First,
                                                         Count NumVerts)
    const {
  auto Seg = std::make_shared<BaseSegment>();
  Seg->First = First;
  Seg->NumVerts = NumVerts;
  Seg->OutOffsets.reserve(static_cast<size_t>(NumVerts) + 1);
  Seg->OutOffsets.push_back(0);
  const bool Weighted = isWeighted();
  for (Count V = First; V < First + NumVerts; ++V) {
    for (WNode E : outNeighbors(static_cast<VertexId>(V))) {
      Seg->OutIds.push_back(E.V);
      if (Weighted)
        Seg->OutWs.push_back(E.W);
    }
    Seg->OutOffsets.push_back(static_cast<uint64_t>(Seg->OutIds.size()));
  }
  if (MirrorsIn) {
    Seg->InOffsets.reserve(static_cast<size_t>(NumVerts) + 1);
    Seg->InOffsets.push_back(0);
    for (Count V = First; V < First + NumVerts; ++V) {
      for (WNode E : inNeighbors(static_cast<VertexId>(V))) {
        Seg->InIds.push_back(E.V);
        if (Weighted)
          Seg->InWs.push_back(E.W);
      }
      Seg->InOffsets.push_back(static_cast<uint64_t>(Seg->InIds.size()));
    }
  }
  return Seg;
}

void DeltaGraph::adoptSegment(std::shared_ptr<const BaseSegment> Seg) {
  if (!Seg || Seg->NumVerts == 0)
    return;
  if (Seg->First + Seg->NumVerts > numNodes())
    fatalError("adoptSegment: segment range exceeds the vertex universe");
  // Find-or-append by range start: re-folding a shard replaces its entry.
  // The Segs vector is per-copy, so published snapshots keep the segment
  // they were published with.
  uint32_t Idx = kNoSlot;
  for (size_t I = 0; I < Segs.size(); ++I)
    if (Segs[I]->First == Seg->First) {
      Idx = static_cast<uint32_t>(I);
      break;
    }
  if (Idx == kNoSlot) {
    Idx = static_cast<uint32_t>(Segs.size());
    Segs.push_back(std::move(Seg));
  } else {
    Segs[Idx] = std::move(Seg);
  }
  const BaseSegment &S = *Segs[Idx];
  // Adoption contract (see the header): the segment equals the current
  // adjacency over its range, so NumEdges is untouched; only the overlay
  // shrinks as folded patch rows are dropped.
  for (Count V = S.First; V < S.First + S.NumVerts; ++V) {
    const VertexId Id = static_cast<VertexId>(V);
    if (SegSlot.get(Id) != Idx)
      SegSlot.set(Id, Idx);
    const uint32_t OutPatch = OutSlot.get(Id);
    if (OutPatch != kNoSlot) {
      if (OutPatches[OutPatch]->Ids.empty())
        ++ReclaimedTombstones; // an isolated (deleted) vertex's row
      OverlayEdges -= clearPatchSlot(Id, /*Out=*/true);
    }
    if (MirrorsIn)
      clearPatchSlot(Id, /*Out=*/false);
  }
}

AppliedUpdate DeltaGraph::applyDirectedOut(VertexId Src, VertexId Dst,
                                           Weight W, UpdateKind Kind) {
  AppliedUpdate Nothing{Src, Dst, kAbsentEdge, kAbsentEdge};
  Patch &P = patchFor(Src, /*Out=*/true);
  auto It = std::lower_bound(P.Ids.begin(), P.Ids.end(), Dst);
  size_t Idx = static_cast<size_t>(It - P.Ids.begin());
  bool Present = It != P.Ids.end() && *It == Dst;
  Weight OldW =
      Present ? (isWeighted() ? P.Ws[Idx] : Weight{1}) : kAbsentEdge;

  if (Kind == UpdateKind::Delete) {
    if (!Present)
      return Nothing; // deleting a missing edge is a no-op
    P.Ids.erase(It);
    if (isWeighted())
      P.Ws.erase(P.Ws.begin() + static_cast<ptrdiff_t>(Idx));
    --NumEdges;
    --OverlayEdges;
    return AppliedUpdate{Src, Dst, OldW, kAbsentEdge};
  }

  Weight NewW = isWeighted() ? W : Weight{1};
  if (Present) {
    if (OldW == NewW)
      return Nothing; // same weight: no transition
    if (isWeighted())
      P.Ws[Idx] = NewW;
    return AppliedUpdate{Src, Dst, OldW, NewW};
  }
  P.Ids.insert(It, Dst);
  if (isWeighted())
    P.Ws.insert(P.Ws.begin() + static_cast<ptrdiff_t>(Idx), NewW);
  ++NumEdges;
  ++OverlayEdges;
  return AppliedUpdate{Src, Dst, kAbsentEdge, NewW};
}

AppliedUpdate DeltaGraph::applyDirected(VertexId Src, VertexId Dst, Weight W,
                                        UpdateKind Kind) {
  AppliedUpdate A = applyDirectedOut(Src, Dst, W, Kind);
  if (A.OldW != kAbsentEdge || A.NewW != kAbsentEdge)
    mirrorIn(Src, Dst, W, Kind);
  return A;
}

void DeltaGraph::mirrorIn(VertexId Src, VertexId Dst, Weight W,
                          UpdateKind Kind) {
  // Directed graphs carrying incoming adjacency keep it in sync so
  // DensePull traversal and repair's boundary scan see the same edges.
  if (!MirrorsIn)
    return;
  Patch &P = patchFor(Dst, /*Out=*/false);
  auto It = std::lower_bound(P.Ids.begin(), P.Ids.end(), Src);
  size_t Idx = static_cast<size_t>(It - P.Ids.begin());
  bool Present = It != P.Ids.end() && *It == Src;
  if (Kind == UpdateKind::Delete) {
    if (!Present)
      return;
    P.Ids.erase(It);
    if (isWeighted())
      P.Ws.erase(P.Ws.begin() + static_cast<ptrdiff_t>(Idx));
    return;
  }
  Weight NewW = isWeighted() ? W : Weight{1};
  if (Present) {
    if (isWeighted())
      P.Ws[Idx] = NewW;
    return;
  }
  P.Ids.insert(It, Src);
  if (isWeighted())
    P.Ws.insert(P.Ws.begin() + static_cast<ptrdiff_t>(Idx), NewW);
}

std::vector<AppliedUpdate>
DeltaGraph::apply(const std::vector<EdgeUpdate> &Batch) {
  std::vector<AppliedUpdate> Applied;
  Applied.reserve(Batch.size() * (isSymmetric() ? 2 : 1));
  const Count N = numNodes();
  for (const EdgeUpdate &U : Batch) {
    if (!validUpdate(U, N))
      continue; // malformed write: skip, don't take the store down
    AppliedUpdate A = applyDirected(U.Src, U.Dst, U.W, U.Kind);
    if (A.OldW != kAbsentEdge || A.NewW != kAbsentEdge)
      Applied.push_back(A);
    if (isSymmetric()) {
      AppliedUpdate B = applyDirected(U.Dst, U.Src, U.W, U.Kind);
      if (B.OldW != kAbsentEdge || B.NewW != kAbsentEdge)
        Applied.push_back(B);
    }
  }
  return Applied;
}

namespace {

/// Shared compaction core: folds any graph-view's adjacency into a fresh
/// immutable CSR (same deterministic layout as GraphBuilder output).
template <typename ViewT> Graph compactView(const ViewT &G) {
  std::vector<Edge> Edges;
  Edges.reserve(static_cast<size_t>(G.isSymmetric() ? G.numEdges() / 2
                                                    : G.numEdges()));
  const Count N = G.numNodes();
  for (Count V = 0; V < N; ++V)
    for (WNode E : G.outNeighbors(static_cast<VertexId>(V))) {
      // Symmetric views store both directions; emit each undirected edge
      // once and let the builder re-symmetrize.
      if (G.isSymmetric() && E.V < static_cast<VertexId>(V))
        continue;
      Edges.push_back(Edge{static_cast<VertexId>(V), E.V, E.W});
    }
  BuildOptions Options;
  Options.Symmetrize = G.isSymmetric();
  Options.RemoveSelfLoops = false;
  Options.RemoveDuplicates = false;
  Options.Weighted = G.isWeighted();
  Options.BuildInEdges = G.hasInEdges();
  GraphBuilder Builder(Options);
  if (G.hasCoordinates())
    return Builder.build(N, std::move(Edges), G.coordinates());
  return Builder.build(N, std::move(Edges));
}

} // namespace

Graph DeltaGraph::compact() const { return compactView(*this); }

Graph ShardedDeltaView::compact() const { return compactView(*this); }

std::vector<AppliedUpdate>
graphit::coalesceApplied(const std::vector<AppliedUpdate> &Raw) {
  std::unordered_map<uint64_t, size_t> Index;
  std::vector<AppliedUpdate> Out;
  Out.reserve(Raw.size());
  for (const AppliedUpdate &A : Raw) {
    uint64_t Key = (static_cast<uint64_t>(A.Src) << 32) | A.Dst;
    auto [It, Fresh] = Index.emplace(Key, Out.size());
    if (Fresh) {
      Out.push_back(A);
      continue;
    }
    Out[It->second].NewW = A.NewW; // keep the first OldW, take the last NewW
  }
  // Drop net no-ops (e.g. delete then re-insert at the old weight).
  size_t Keep = 0;
  for (const AppliedUpdate &A : Out)
    if (A.OldW != A.NewW)
      Out[Keep++] = A;
  Out.resize(Keep);
  return Out;
}
