//===- graph/Datasets.cpp - Paper dataset stand-ins -----------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Datasets.h"

#include "graph/Builder.h"
#include "graph/Generators.h"
#include "support/Abort.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace graphit;

namespace {

/// Generation recipe for one dataset.
struct Recipe {
  const char *Name;
  bool Road;
  // Social/web parameters.
  int Scale;     ///< log2(#vertices) at ScaleFactor 1
  int AvgDegree; ///< directed edges per vertex
  double SkewA;  ///< R-MAT `a` parameter (larger = more skew)
  // Road parameters.
  Count Rows, Cols;
  uint64_t Seed;
};

const Recipe &recipeFor(DatasetId Id) {
  // Vertex counts follow the relative ordering of Table 3 at ~1/64 the
  // paper's scale; degree targets keep the edge/vertex ratios of Table 3.
  static const Recipe Recipes[] = {
      {"LJ'", false, 18, 16, 0.57, 0, 0, 0xA001},
      {"OK'", false, 17, 32, 0.57, 0, 0, 0xA002},
      {"TW'", false, 19, 24, 0.65, 0, 0, 0xA003},
      {"FT'", false, 20, 28, 0.57, 0, 0, 0xA004},
      {"WB'", false, 19, 20, 0.70, 0, 0, 0xA005},
      {"MA'", true, 0, 0, 0.0, 448, 448, 0xB001},
      {"GE'", true, 0, 0, 0.0, 1448, 1448, 0xB002},
      {"RD'", true, 0, 0, 0.0, 2048, 2048, 0xB003},
  };
  return Recipes[static_cast<int>(Id)];
}

} // namespace

const char *graphit::datasetName(DatasetId Id) { return recipeFor(Id).Name; }

bool graphit::isRoadNetwork(DatasetId Id) { return recipeFor(Id).Road; }

double graphit::datasetScaleFromEnv() {
  // Read once at startup before any worker thread exists.
  const char *Env = std::getenv("GRAPHIT_SCALE"); // NOLINT(concurrency-mt-unsafe)
  if (!Env)
    return 1.0;
  double S = std::atof(Env);
  if (S <= 0.0)
    return 1.0;
  return std::clamp(S, 0.01, 64.0);
}

std::vector<DatasetId> graphit::allDatasets() {
  return {DatasetId::LJ, DatasetId::OK, DatasetId::TW, DatasetId::FT,
          DatasetId::WB, DatasetId::MA, DatasetId::GE, DatasetId::RD};
}

std::vector<DatasetId> graphit::socialDatasets() {
  return {DatasetId::LJ, DatasetId::OK, DatasetId::TW, DatasetId::FT,
          DatasetId::WB};
}

std::vector<DatasetId> graphit::roadDatasets() {
  return {DatasetId::MA, DatasetId::GE, DatasetId::RD};
}

Graph graphit::makeDataset(DatasetId Id, DatasetVariant Variant,
                           double ScaleFactor) {
  if (ScaleFactor <= 0.0)
    ScaleFactor = datasetScaleFromEnv();
  const Recipe &R = recipeFor(Id);

  if (R.Road) {
    double Side = std::sqrt(ScaleFactor);
    Count Rows = std::max<Count>(8, static_cast<Count>(R.Rows * Side));
    Count Cols = std::max<Count>(8, static_cast<Count>(R.Cols * Side));
    RoadNetwork Net = roadGrid(Rows, Cols, R.Seed);
    BuildOptions Options;
    Options.Symmetrize = true; // road arcs exist in both directions
    Options.Weighted = Variant != DatasetVariant::Symmetric;
    return GraphBuilder(Options).build(Net.NumNodes, std::move(Net.Edges),
                                       std::move(Net.Coords));
  }

  // Social/web graph: adjust the R-MAT scale by log2(ScaleFactor).
  int ScaleAdjust =
      static_cast<int>(std::lround(std::log2(std::max(0.01, ScaleFactor))));
  int Scale = std::clamp(R.Scale + ScaleAdjust, 10, 26);
  std::vector<Edge> Edges = rmatEdges(Scale, R.AvgDegree, R.Seed, R.SkewA,
                                      (1.0 - R.SkewA) / 2.3,
                                      (1.0 - R.SkewA) / 2.3);
  Count NumNodes = Count{1} << Scale;

  BuildOptions Options;
  switch (Variant) {
  case DatasetVariant::Directed:
    assignRandomWeights(Edges, 1, 1000, R.Seed ^ 0xFEED);
    break;
  case DatasetVariant::DirectedLogWeights: {
    Weight Hi = std::max<Weight>(2, static_cast<Weight>(std::log2(
                                        static_cast<double>(NumNodes))));
    assignRandomWeights(Edges, 1, Hi, R.Seed ^ 0xFEED);
    break;
  }
  case DatasetVariant::Symmetric:
    Options.Symmetrize = true;
    Options.Weighted = false;
    break;
  }
  return GraphBuilder(Options).build(NumNodes, std::move(Edges));
}

Graph graphit::makeDataset(DatasetId Id, DatasetVariant Variant,
                           ReorderKind Reorder, VertexMapping *MapOut,
                           double ScaleFactor, VertexId SourceHint) {
  return reorderLoadedGraph(makeDataset(Id, Variant, ScaleFactor), Reorder,
                            MapOut, /*Seed=*/0x0EDE5, SourceHint);
}

std::vector<VertexId> graphit::pickSources(const Graph &G, int HowMany,
                                           uint64_t Seed) {
  if (G.numNodes() == 0)
    fatalError("pickSources: empty graph");
  std::vector<VertexId> Sources;
  SplitMix64 Rng(Seed);
  int Attempts = 0;
  while (static_cast<int>(Sources.size()) < HowMany &&
         Attempts < 100000) {
    ++Attempts;
    auto V = static_cast<VertexId>(Rng.nextInt(0, G.numNodes()));
    if (G.outDegree(V) == 0)
      continue;
    Sources.push_back(V);
  }
  while (static_cast<int>(Sources.size()) < HowMany)
    Sources.push_back(Sources.empty() ? 0 : Sources.back());
  return Sources;
}
