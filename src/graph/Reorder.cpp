//===- graph/Reorder.cpp - Lightweight vertex reordering ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Reorder.h"

#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Parallel.h"
#include "support/Random.h"

#include <algorithm>
#include <limits>

using namespace graphit;

const char *graphit::reorderKindName(ReorderKind Kind) {
  switch (Kind) {
  case ReorderKind::None:
    return "none";
  case ReorderKind::Degree:
    return "degree";
  case ReorderKind::Bfs:
    return "bfs";
  case ReorderKind::Push:
    return "push";
  case ReorderKind::Random:
    return "random";
  }
  return "none";
}

ReorderKind graphit::parseReorderKind(const std::string &Name) {
  for (ReorderKind K : allReorderKinds())
    if (Name == reorderKindName(K))
      return K;
  fatalError(("parseReorderKind: unknown ordering '" + Name + "'").c_str());
}

std::vector<ReorderKind> graphit::allReorderKinds() {
  return {ReorderKind::None, ReorderKind::Degree, ReorderKind::Bfs,
          ReorderKind::Push, ReorderKind::Random};
}

VertexMapping
VertexMapping::fromInternalToExternal(std::vector<VertexId> NewToOld) {
  const Count N = static_cast<Count>(NewToOld.size());
  VertexMapping M(N);
  M.ToInternal_.assign(static_cast<size_t>(N), kInvalidVertex);
  for (Count I = 0; I < N; ++I) {
    VertexId Old = NewToOld[I];
    if (static_cast<Count>(Old) >= N ||
        M.ToInternal_[Old] != kInvalidVertex)
      fatalError("VertexMapping: table is not a permutation");
    M.ToInternal_[Old] = static_cast<VertexId>(I);
  }
  M.ToExternal_ = std::move(NewToOld);
  return M;
}

void VertexMapping::mapToInternal(std::vector<VertexId> &Vs) const {
  if (isIdentity())
    return;
  for (VertexId &V : Vs)
    V = toInternal(V);
}

void VertexMapping::mapToExternal(std::vector<VertexId> &Vs) const {
  if (isIdentity())
    return;
  for (VertexId &V : Vs)
    V = toExternal(V);
}

namespace {

/// Degree-descending stable counting sort, blocked for parallelism.
/// Degrees are clamped at kDegreeCap — every hub above the cap lands in the
/// front bucket (ordered by old id), which is all hub-packing needs.
std::vector<VertexId> degreeOrder(const Graph &G) {
  const Count N = G.numNodes();
  constexpr Count kDegreeCap = 4096;
  const Count K = kDegreeCap + 1;
  auto BucketOf = [&](Count V) {
    return kDegreeCap -
           std::min<Count>(G.outDegree(static_cast<VertexId>(V)), kDegreeCap);
  };

  const int NumBlocks = std::max(1, getNumWorkers() * 4);
  const Count BlockSize = (N + NumBlocks - 1) / NumBlocks;
  // Counts[Blk * K + B]: how many vertices of block Blk fall in bucket B.
  std::vector<int64_t> Counts(static_cast<size_t>(NumBlocks) * K, 0);
  parallelFor(
      0, NumBlocks,
      [&](Count Blk) {
        Count Lo = Blk * BlockSize, Hi = std::min(N, Lo + BlockSize);
        int64_t *C = Counts.data() + Blk * K;
        for (Count V = Lo; V < Hi; ++V)
          ++C[BucketOf(V)];
      },
      Parallelization::StaticVertexParallel);

  // Bucket-major exclusive prefix: bucket B of block Blk starts after every
  // lower bucket (all blocks) and bucket B of lower blocks — that order is
  // what makes the scatter stable by old id within a bucket.
  int64_t Running = 0;
  for (Count B = 0; B < K; ++B)
    for (int Blk = 0; Blk < NumBlocks; ++Blk) {
      int64_t C = Counts[static_cast<size_t>(Blk) * K + B];
      Counts[static_cast<size_t>(Blk) * K + B] = Running;
      Running += C;
    }

  std::vector<VertexId> NewToOld(static_cast<size_t>(N));
  parallelFor(
      0, NumBlocks,
      [&](Count Blk) {
        Count Lo = Blk * BlockSize, Hi = std::min(N, Lo + BlockSize);
        int64_t *C = Counts.data() + Blk * K;
        for (Count V = Lo; V < Hi; ++V)
          NewToOld[static_cast<size_t>(C[BucketOf(V)]++)] =
              static_cast<VertexId>(V);
      },
      Parallelization::StaticVertexParallel);
  return NewToOld;
}

/// One level-synchronous BFS from \p Source. Level membership is
/// deterministic (it is the hop distance), so sorting each level by id
/// yields a thread-count-independent order. \returns the visit order;
/// unreached vertices are *not* included.
std::vector<VertexId> bfsVisitOrder(const Graph &G, VertexId Source,
                                    std::vector<uint32_t> &Visited) {
  const Count N = G.numNodes();
  std::vector<VertexId> Order;
  Order.reserve(static_cast<size_t>(N));
  std::vector<VertexId> Frontier{Source}, Next;
  std::vector<VertexId> Scratch(static_cast<size_t>(N));
  Visited.assign(static_cast<size_t>(N), 0);
  Visited[Source] = 1;
  Order.push_back(Source);

  while (!Frontier.empty()) {
    Count Cursor = 0;
    parallelFor(0, static_cast<Count>(Frontier.size()), [&](Count I) {
      for (WNode E : G.outNeighbors(Frontier[I]))
        if (atomicLoadRelaxed(&Visited[E.V]) == 0 &&
            atomicExchange(&Visited[E.V], 1u) == 0)
          Scratch[static_cast<size_t>(fetchAdd(&Cursor, Count{1}))] = E.V;
    });
    Next.assign(Scratch.begin(), Scratch.begin() + Cursor);
    std::sort(Next.begin(), Next.end());
    Order.insert(Order.end(), Next.begin(), Next.end());
    std::swap(Frontier, Next);
  }
  return Order;
}

/// BFS/frontier order rooted at \p Source; every vertex the BFS missed
/// (other components, or unreachable under directed edges) is appended in
/// ascending old-id order. Root alignment matters: bands are contiguous
/// for wavefronts *from the root*, so an ordering rooted far from the
/// query source can be slower than the input layout.
std::vector<VertexId> bfsOrder(const Graph &G, VertexId Source) {
  const Count N = G.numNodes();
  std::vector<uint32_t> Visited;
  std::vector<VertexId> NewToOld = bfsVisitOrder(G, Source, Visited);
  NewToOld.reserve(static_cast<size_t>(N));
  for (Count V = 0; V < N; ++V)
    if (!Visited[V])
      NewToOld.push_back(static_cast<VertexId>(V));
  return NewToOld;
}

/// BOBA-style push order: vertices keyed by the position of their first
/// appearance as a *destination* in the CSR edge stream. Two O(E) parallel
/// passes (atomic-min the first position, then a blocked in-order collect);
/// no traversal, no sort over V.
std::vector<VertexId> pushOrder(const Graph &G) {
  const Count N = G.numNodes();
  constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

  // Reconstruct the out-offsets (global edge index = Off[u] + j).
  std::vector<int64_t> Off(static_cast<size_t>(N) + 1, 0);
  parallelFor(
      0, N,
      [&](Count V) { Off[V] = G.outDegree(static_cast<VertexId>(V)); },
      Parallelization::StaticVertexParallel);
  Off[N] = 0;
  exclusivePrefixSum(Off.data(), N + 1);

  std::vector<int64_t> FirstPos(static_cast<size_t>(N), kNever);
  parallelFor(0, N, [&](Count V) {
    Graph::NeighborRange R = G.outNeighbors(static_cast<VertexId>(V));
    int64_t Base = Off[V];
    for (Count J = 0; J < R.size(); ++J)
      atomicMin(&FirstPos[R.id(J)], Base + J);
  });

  // Blocked in-order collect: block boundaries are vertex ranges, so block
  // order == edge-stream order and the concatenation is sorted by first
  // position without ever sorting.
  const int NumBlocks = std::max(1, getNumWorkers() * 4);
  const Count BlockSize = (N + NumBlocks - 1) / NumBlocks;
  std::vector<std::vector<VertexId>> Lists(static_cast<size_t>(NumBlocks));
  parallelFor(
      0, NumBlocks,
      [&](Count Blk) {
        Count Lo = Blk * BlockSize, Hi = std::min(N, Lo + BlockSize);
        std::vector<VertexId> &L = Lists[static_cast<size_t>(Blk)];
        for (Count V = Lo; V < Hi; ++V) {
          Graph::NeighborRange R = G.outNeighbors(static_cast<VertexId>(V));
          int64_t Base = Off[V];
          for (Count J = 0; J < R.size(); ++J)
            if (FirstPos[R.id(J)] == Base + J)
              L.push_back(R.id(J));
        }
      },
      Parallelization::StaticVertexParallel);

  std::vector<VertexId> NewToOld;
  NewToOld.reserve(static_cast<size_t>(N));
  for (const std::vector<VertexId> &L : Lists)
    NewToOld.insert(NewToOld.end(), L.begin(), L.end());
  // Vertices that never appear as a destination (pure sources, isolated)
  // follow in ascending old-id order.
  for (Count V = 0; V < N; ++V)
    if (FirstPos[V] == kNever)
      NewToOld.push_back(static_cast<VertexId>(V));
  return NewToOld;
}

/// Seeded Fisher-Yates shuffle: the adversarial layout.
std::vector<VertexId> randomOrder(Count N, uint64_t Seed) {
  std::vector<VertexId> NewToOld(static_cast<size_t>(N));
  for (Count I = 0; I < N; ++I)
    NewToOld[I] = static_cast<VertexId>(I);
  SplitMix64 Rng(Seed);
  for (Count I = N - 1; I > 0; --I)
    std::swap(NewToOld[I], NewToOld[Rng.nextInt(0, I + 1)]);
  return NewToOld;
}

} // namespace

VertexMapping graphit::makeOrdering(const Graph &G, ReorderKind Kind,
                                    uint64_t Seed, VertexId SourceHint) {
  const Count N = G.numNodes();
  if (Kind == ReorderKind::None || N == 0)
    return VertexMapping(N);
  if (static_cast<Count>(SourceHint) >= N)
    SourceHint = 0;
  std::vector<VertexId> NewToOld;
  switch (Kind) {
  case ReorderKind::Degree:
    NewToOld = degreeOrder(G);
    break;
  case ReorderKind::Bfs:
    NewToOld = bfsOrder(G, SourceHint);
    break;
  case ReorderKind::Push:
    NewToOld = pushOrder(G);
    break;
  case ReorderKind::Random:
    NewToOld = randomOrder(N, Seed);
    break;
  case ReorderKind::None:
    break; // unreachable
  }
  return VertexMapping::fromInternalToExternal(std::move(NewToOld));
}

Graph graphit::reorderGraph(const Graph &G, ReorderKind Kind,
                            VertexMapping *MapOut, uint64_t Seed,
                            VertexId SourceHint) {
  VertexMapping Map = makeOrdering(G, Kind, Seed, SourceHint);
  Graph Result = G.permuted(Map);
  if (MapOut)
    *MapOut = std::move(Map);
  return Result;
}

Graph graphit::reorderLoadedGraph(Graph G, ReorderKind Kind,
                                  VertexMapping *MapOut, uint64_t Seed,
                                  VertexId SourceHint) {
  if (Kind == ReorderKind::None) {
    if (MapOut)
      *MapOut = VertexMapping(G.numNodes());
    return G;
  }
  return reorderGraph(G, Kind, MapOut, Seed, SourceHint);
}
