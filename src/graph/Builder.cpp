//===- graph/Builder.cpp - Edge-list to CSR construction ------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "graph/Builder.h"

#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Parallel.h"
#include "support/Random.h"

#include <algorithm>

using namespace graphit;

namespace {

/// Builds one CSR direction: offsets plus either a packed id array
/// (unweighted) or an interleaved (id, weight) array (weighted — one
/// stream per adjacency row instead of two).
struct CSRArrays {
  std::vector<int64_t> Offsets;
  std::vector<VertexId> Ids; ///< unweighted layout
  std::vector<WNode> Adj;    ///< weighted (interleaved) layout
};

CSRArrays buildDirection(Count NumNodes, const std::vector<Edge> &Edges,
                         bool Out, bool Weighted) {
  CSRArrays R;
  Count M = static_cast<Count>(Edges.size());
  R.Offsets.assign(NumNodes + 1, 0);
  // Count degrees (atomically; edge lists are unsorted).
  parallelFor(
      0, M,
      [&](Count I) {
        VertexId Key = Out ? Edges[I].Src : Edges[I].Dst;
        fetchAdd<int64_t>(&R.Offsets[Key], 1);
      },
      Parallelization::StaticVertexParallel);
  exclusivePrefixSum(R.Offsets.data(), NumNodes + 1);

  if (Weighted)
    R.Adj.resize(M);
  else
    R.Ids.resize(M);
  std::vector<int64_t> Cursor(R.Offsets.begin(), R.Offsets.end() - 1);
  parallelFor(
      0, M,
      [&](Count I) {
        VertexId Key = Out ? Edges[I].Src : Edges[I].Dst;
        VertexId Val = Out ? Edges[I].Dst : Edges[I].Src;
        int64_t Pos = fetchAdd<int64_t>(&Cursor[Key], 1);
        if (Weighted)
          R.Adj[Pos] = WNode{Val, Edges[I].W};
        else
          R.Ids[Pos] = Val;
      },
      Parallelization::StaticVertexParallel);

  // Sort each adjacency list by neighbor id (stable output independent of
  // thread interleaving above).
  parallelFor(0, NumNodes, [&](Count V) {
    int64_t Lo = R.Offsets[V], Hi = R.Offsets[V + 1];
    if (Hi - Lo < 2)
      return;
    if (!Weighted) {
      std::sort(R.Ids.begin() + Lo, R.Ids.begin() + Hi);
      return;
    }
    std::sort(R.Adj.begin() + Lo, R.Adj.begin() + Hi, adjacencyRowLess);
  });
  return R;
}

} // namespace

void graphit::assignRandomWeights(std::vector<Edge> &Edges, Weight Lo,
                                  Weight Hi, uint64_t Seed) {
  if (Lo >= Hi)
    fatalError("assignRandomWeights: empty weight range");
  Count M = static_cast<Count>(Edges.size());
  parallelFor(
      0, M,
      [&](Count I) {
        // Hash of (seed, endpoints) so the weight of an edge does not depend
        // on its position in the list.
        uint64_t H = hash64(Seed ^ hash64((static_cast<uint64_t>(
                                               Edges[I].Src)
                                           << 32) |
                                          Edges[I].Dst));
        Edges[I].W = static_cast<Weight>(Lo + H % (Hi - Lo));
      },
      Parallelization::StaticVertexParallel);
}

Graph GraphBuilder::build(Count NumNodes, std::vector<Edge> Edges,
                          Coordinates Coords) const {
  Graph G = build(NumNodes, std::move(Edges));
  if (!Coords.empty() && Coords.size() != NumNodes)
    fatalError("GraphBuilder: coordinate count != vertex count");
  G.Coords = std::move(Coords);
  return G;
}

Graph GraphBuilder::build(Count NumNodes, std::vector<Edge> Edges) const {
  for (const Edge &E : Edges)
    if (E.Src >= static_cast<VertexId>(NumNodes) ||
        E.Dst >= static_cast<VertexId>(NumNodes))
      fatalError("GraphBuilder: edge endpoint out of range");

  if (Options.Symmetrize) {
    size_t N = Edges.size();
    Edges.reserve(2 * N);
    for (size_t I = 0; I < N; ++I)
      Edges.push_back(Edge{Edges[I].Dst, Edges[I].Src, Edges[I].W});
  }

  if (Options.RemoveSelfLoops) {
    Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                               [](const Edge &E) { return E.Src == E.Dst; }),
                Edges.end());
  }

  if (Options.RemoveDuplicates) {
    std::sort(Edges.begin(), Edges.end(), [](const Edge &A, const Edge &B) {
      if (A.Src != B.Src)
        return A.Src < B.Src;
      if (A.Dst != B.Dst)
        return A.Dst < B.Dst;
      return A.W < B.W; // keep the minimum weight among parallel edges
    });
    Edges.erase(std::unique(Edges.begin(), Edges.end(),
                            [](const Edge &A, const Edge &B) {
                              return A.Src == B.Src && A.Dst == B.Dst;
                            }),
                Edges.end());
  }

  Graph G;
  G.NumNodes = NumNodes;
  G.NumEdges = static_cast<Count>(Edges.size());
  G.Symmetric = Options.Symmetrize;
  G.Weighted = Options.Weighted && !Edges.empty();

  CSRArrays OutDir =
      buildDirection(NumNodes, Edges, /*Out=*/true, G.Weighted);
  G.OutOffsets = std::move(OutDir.Offsets);
  G.OutIds = std::move(OutDir.Ids);
  G.OutAdj = std::move(OutDir.Adj);

  if (!Options.Symmetrize && Options.BuildInEdges) {
    CSRArrays InDir =
        buildDirection(NumNodes, Edges, /*Out=*/false, G.Weighted);
    G.InOffsets = std::move(InDir.Offsets);
    G.InIds = std::move(InDir.Ids);
    G.InAdj = std::move(InDir.Adj);
  }
  return G;
}
