//===- core/PriorityQueue.h - The priority-based programming model -*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing abstract priority queue of the paper's algorithm
/// language (Table 1): `dequeueReadySet`, `finished`, `finishedVertex`,
/// `getCurrentPriority`, and the three priority-update operators
/// `updatePriorityMin` / `updatePriorityMax` / `updatePrioritySum`.
///
/// This facade executes the `while (pq.finished() == false)` programming
/// pattern of Fig. 3 directly (library users and the DSL interpreter drive
/// it); the compiled/eager execution path instead lowers the whole loop to
/// `eagerOrderedProcess` (core/OrderedProcess.h), exactly as the compiler
/// transformation of §5.2 does.
///
/// Updates arriving from inside a parallel `applyUpdatePriority` are
/// buffered per thread and folded into the bucket structure lazily at the
/// next `dequeueReadySet`/`finished` call — i.e. the facade implements the
/// *lazy bucket update* semantics of §3.1, with one bucket move per updated
/// vertex per round.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_CORE_PRIORITYQUEUE_H
#define GRAPHIT_CORE_PRIORITYQUEUE_H

#include "core/Schedule.h"
#include "graph/Graph.h"
#include "runtime/Dedup.h"
#include "runtime/LazyBucketQueue.h"
#include "runtime/VertexSubset.h"

#include <vector>

namespace graphit {

/// Abstract priority queue over a user-owned priority vector.
class PriorityQueue {
public:
  /// Mirrors the paper's constructor (Table 1): whether priority
  /// coarsening is allowed (Δ is taken from \p S only if so), the
  /// processing direction ("lower_first"/"higher_first"), the priority
  /// vector backing store, and an optional start vertex. Without a start
  /// vertex, every vertex whose priority is not null is enqueued.
  PriorityQueue(bool AllowCoarsening, PriorityOrder Order,
                std::vector<Priority> &PriorityVector, const Schedule &S,
                VertexId StartVertex = kInvalidVertex);

  /// True when no bucket remains to process (pending updates are flushed
  /// first).
  bool finished();

  /// True when \p V's priority can no longer change, i.e. the current
  /// bucket's priority has passed it (PPSP/A* stop condition).
  bool finishedVertex(VertexId V) const;

  /// Priority value of the current bucket (its lower bound, ⌊key⌋·Δ).
  Priority getCurrentPriority() const { return CurrentPriority; }

  /// Extracts the next ready bucket as a vertexset. Returns an empty
  /// subset when finished.
  VertexSubset dequeueReadySet();

  /// Lowers the priority of \p V to \p NewVal if smaller (atomic).
  /// Thread-safe; usable inside parallel edge applies.
  void updatePriorityMin(VertexId V, Priority NewVal);

  /// Raises the priority of \p V to \p NewVal if larger (atomic).
  void updatePriorityMax(VertexId V, Priority NewVal);

  /// Adds \p SumDiff to the priority of \p V, clamping at
  /// \p MinThreshold (atomic). Values already at or below the threshold
  /// are frozen (the `priority > k` guard of Fig. 10) — that keeps
  /// finalized k-core vertices finalized.
  void updatePrioritySum(VertexId V, Priority SumDiff,
                         Priority MinThreshold);

  /// ⌊P / Δ⌋ — the bucket key of priority \p P.
  int64_t coarsen(Priority P) const { return P / Delta; }

  /// The coarsening factor in effect (1 when coarsening is disallowed).
  int64_t delta() const { return Delta; }

  /// Number of `dequeueReadySet` rounds so far (stats).
  int64_t rounds() const { return Rounds; }

private:
  /// Folds the per-thread changed-vertex buffers into the bucket queue.
  void flushPending();

  /// Records that \p V's priority changed (claims once per round).
  void notePriorityChange(VertexId V);

  std::vector<Priority> &Prio;
  LazyBucketQueue Queue;
  PriorityOrder Order;
  int64_t Delta;
  Priority CurrentPriority = kNullPriority;
  int64_t Rounds = 0;

  DedupFlags ChangedFlags;
  std::vector<std::vector<VertexId>> PendingPerThread;
  std::vector<VertexId> ScratchIds;
};

/// The `edges.from(bucket).applyUpdatePriority(f)` operator of the
/// algorithm language: applies \p EdgeFn(src, dst, weight) to every
/// out-edge of \p Bucket in parallel. \p EdgeFn typically calls the
/// priority-update operators on \p PQ.
template <typename EdgeFn>
void applyUpdatePriority(const Graph &G, VertexSubset &Bucket,
                         EdgeFn &&Body,
                         Parallelization Par =
                             Parallelization::DynamicVertexParallel) {
  const std::vector<VertexId> &Ids = Bucket.sparse();
  parallelFor(
      0, static_cast<Count>(Ids.size()),
      [&](Count I) {
        VertexId S = Ids[I];
        for (WNode E : G.outNeighbors(S))
          Body(S, E.V, E.W);
      },
      Par);
}

} // namespace graphit

#endif // GRAPHIT_CORE_PRIORITYQUEUE_H
