//===- core/PriorityQueue.cpp - The priority-based programming model ------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/PriorityQueue.h"

#include "support/Abort.h"
#include "support/Atomics.h"

#include <algorithm>
#include <omp.h>

using namespace graphit;

PriorityQueue::PriorityQueue(bool AllowCoarsening, PriorityOrder Ord,
                             std::vector<Priority> &PriorityVector,
                             const Schedule &S, VertexId StartVertex)
    : Prio(PriorityVector),
      Queue(static_cast<Count>(PriorityVector.size()), S.NumOpenBuckets,
            Ord),
      Order(Ord), Delta(AllowCoarsening ? S.Delta : 1),
      ChangedFlags(static_cast<Count>(PriorityVector.size())),
      PendingPerThread(static_cast<size_t>(omp_get_max_threads())) {
  Count N = static_cast<Count>(Prio.size());
  if (StartVertex != kInvalidVertex) {
    if (static_cast<Count>(StartVertex) >= N)
      fatalError("PriorityQueue: start vertex out of range");
    if (Prio[StartVertex] == kNullPriority)
      fatalError("PriorityQueue: start vertex has null priority");
    Queue.insert(StartVertex, coarsen(Prio[StartVertex]));
    return;
  }
  // No start vertex: enqueue everything with a non-null priority.
  ScratchIds.clear();
  for (Count V = 0; V < N; ++V) {
    if (Prio[V] == kNullPriority)
      continue;
    ScratchIds.push_back(static_cast<VertexId>(V));
  }
  Queue.updateBucketsWith(ScratchIds.data(),
                          static_cast<Count>(ScratchIds.size()),
                          [&](Count, VertexId V) { return coarsen(Prio[V]); });
}

void PriorityQueue::notePriorityChange(VertexId V) {
  if (!ChangedFlags.claim(V))
    return;
  PendingPerThread[static_cast<size_t>(omp_get_thread_num())].push_back(V);
}

void PriorityQueue::updatePriorityMin(VertexId V, Priority NewVal) {
  // Relaxed atomic reads in the CAS retry loops: update methods run
  // concurrently from parallel UDFs, and a plain read beside another
  // thread's CAS is a data race.
  Priority Current = atomicLoadRelaxed(&Prio[V]);
  // Null priorities behave as +inf for min updates.
  while (Current == kNullPriority || NewVal < Current) {
    if (atomicCAS(&Prio[V], Current, NewVal)) {
      notePriorityChange(V);
      return;
    }
    Current = atomicLoadRelaxed(&Prio[V]);
  }
}

void PriorityQueue::updatePriorityMax(VertexId V, Priority NewVal) {
  Priority Current = atomicLoadRelaxed(&Prio[V]);
  while (Current == kNullPriority || NewVal > Current) {
    if (atomicCAS(&Prio[V], Current, NewVal)) {
      notePriorityChange(V);
      return;
    }
    Current = atomicLoadRelaxed(&Prio[V]);
  }
}

void PriorityQueue::updatePrioritySum(VertexId V, Priority SumDiff,
                                      Priority MinThreshold) {
  while (true) {
    Priority Current = atomicLoadRelaxed(&Prio[V]);
    if (Current == kNullPriority)
      fatalError("updatePrioritySum on a null priority");
    // Values already at or past the threshold are frozen — this is the
    // `if (priority > k)` guard of the transformed function in Fig. 10,
    // and it is what keeps finalized k-core vertices finalized.
    if (Current <= MinThreshold)
      return;
    Priority Next = std::max(Current + SumDiff, MinThreshold);
    if (Next == Current)
      return;
    if (atomicCAS(&Prio[V], Current, Next)) {
      notePriorityChange(V);
      return;
    }
  }
}

void PriorityQueue::flushPending() {
  ScratchIds.clear();
  for (std::vector<VertexId> &List : PendingPerThread) {
    ScratchIds.insert(ScratchIds.end(), List.begin(), List.end());
    List.clear();
  }
  if (ScratchIds.empty())
    return;
  Count M = static_cast<Count>(ScratchIds.size());
  ChangedFlags.release(ScratchIds.data(), M);

  // Fused handoff: keys are computed inline from the priority vector as
  // the queue scatters, clamped at the current bucket so a vertex whose
  // priority already passed it is re-processed immediately rather than
  // violating monotonicity (relevant only to ε-inconsistent heuristics).
  bool HaveCurrent = CurrentPriority != kNullPriority;
  int64_t CurKey = HaveCurrent ? CurrentPriority / Delta : 0;
  Queue.updateBucketsWith(
      ScratchIds.data(), M, [&](Count, VertexId V) {
        int64_t Key = coarsen(Prio[V]);
        if (HaveCurrent)
          Key = Order == PriorityOrder::LowerFirst ? std::max(Key, CurKey)
                                                   : std::min(Key, CurKey);
        return Key;
      });
}

bool PriorityQueue::finished() {
  flushPending();
  return Queue.pendingEstimate() == 0;
}

bool PriorityQueue::finishedVertex(VertexId V) const {
  Priority P = Prio[V];
  if (P == kNullPriority || CurrentPriority == kNullPriority)
    return false;
  return Order == PriorityOrder::LowerFirst ? CurrentPriority >= P
                                            : CurrentPriority <= P;
}

VertexSubset PriorityQueue::dequeueReadySet() {
  flushPending();
  Count N = static_cast<Count>(Prio.size());
  if (!Queue.nextBucket())
    return VertexSubset::empty(N);
  ++Rounds;
  CurrentPriority = Queue.currentKey() * Delta;
  return VertexSubset::fromSparse(N, Queue.currentBucket());
}
