//===- core/Schedule.h - The scheduling language ----------------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling-language surface of the priority-based extension
/// (Table 2). A `Schedule` carries every tunable the paper exposes for an
/// `applyUpdatePriority` statement:
///
///   configApplyPriorityUpdate      eager_with_fusion | eager_no_fusion |
///                                  lazy | lazy_constant_sum
///   configApplyPriorityUpdateDelta priority-coarsening factor Δ
///   configBucketFusionThreshold    local-bucket size cap for fusion
///   configNumBuckets               materialized lazy buckets
///   configApplyDirection           SparsePush | DensePull | Hybrid
///   configApplyParallelization     serial | static | dynamic vertex
///
/// The fluent string API mirrors the paper's scheduling programs (Fig. 8);
/// typed setters exist for programmatic use (autotuner, benchmarks).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_CORE_SCHEDULE_H
#define GRAPHIT_CORE_SCHEDULE_H

#include "runtime/Histogram.h"
#include "runtime/Traversal.h"
#include "support/Parallel.h"

#include <string>

namespace graphit {

/// Bucket-update strategy (`configApplyPriorityUpdate`).
enum class UpdateStrategy {
  EagerWithFusion, ///< thread-local buckets + bucket fusion (paper default)
  EagerNoFusion,   ///< thread-local buckets, GAPBS-style
  Lazy,            ///< buffered bulk bucket updates, Julienne-style
  LazyConstantSum, ///< lazy + histogram reduction for constant-sum updates
};

/// Full optimization configuration for one ordered edge-apply statement.
struct Schedule {
  UpdateStrategy Update = UpdateStrategy::EagerWithFusion;
  Direction Dir = Direction::SparsePush;
  Parallelization Par = Parallelization::DynamicVertexParallel;
  HistogramMethod Histogram = HistogramMethod::LocalTables;
  int64_t Delta = 1;
  int64_t FusionThreshold = 1000;
  int NumOpenBuckets = 128;

  bool isEager() const {
    return Update == UpdateStrategy::EagerWithFusion ||
           Update == UpdateStrategy::EagerNoFusion;
  }

  /// Fluent setters named after the paper's scheduling functions. String
  /// arguments accept the exact spellings of Table 2; unknown strings
  /// abort (they are programmer errors in schedule scripts).
  Schedule &configApplyPriorityUpdate(const std::string &Option);
  Schedule &configApplyPriorityUpdateDelta(int64_t NewDelta);
  Schedule &configBucketFusionThreshold(int64_t Threshold);
  Schedule &configNumBuckets(int Buckets);
  Schedule &configApplyDirection(const std::string &Option);
  Schedule &configApplyParallelization(const std::string &Option);

  /// Parses a compact comma-separated form used by schedule files and the
  /// autotuner, e.g. "eager_with_fusion,delta=4,direction=SparsePush".
  static Schedule parse(const std::string &Spec);

  /// Inverse of parse(); stable round-trip for logging.
  std::string toString() const;
};

/// Spelling helpers shared with the DSL and benchmarks.
const char *updateStrategyName(UpdateStrategy S);
const char *directionName(Direction D);
const char *parallelizationName(Parallelization P);

} // namespace graphit

#endif // GRAPHIT_CORE_SCHEDULE_H
