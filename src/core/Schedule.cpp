//===- core/Schedule.cpp - The scheduling language -------------------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Schedule.h"

#include "support/Abort.h"

#include <cstdlib>
#include <sstream>

using namespace graphit;

Schedule &Schedule::configApplyPriorityUpdate(const std::string &Option) {
  if (Option == "eager_with_fusion")
    Update = UpdateStrategy::EagerWithFusion;
  else if (Option == "eager_no_fusion" || Option == "eager")
    Update = UpdateStrategy::EagerNoFusion;
  else if (Option == "lazy")
    Update = UpdateStrategy::Lazy;
  else if (Option == "lazy_constant_sum" || Option == "constant_sum_reduce")
    Update = UpdateStrategy::LazyConstantSum;
  else
    fatalError("configApplyPriorityUpdate: unknown option");
  return *this;
}

Schedule &Schedule::configApplyPriorityUpdateDelta(int64_t NewDelta) {
  if (NewDelta < 1)
    fatalError("configApplyPriorityUpdateDelta: delta must be >= 1");
  Delta = NewDelta;
  return *this;
}

Schedule &Schedule::configBucketFusionThreshold(int64_t Threshold) {
  if (Threshold < 1)
    fatalError("configBucketFusionThreshold: threshold must be >= 1");
  FusionThreshold = Threshold;
  return *this;
}

Schedule &Schedule::configNumBuckets(int Buckets) {
  if (Buckets < 1)
    fatalError("configNumBuckets: need at least one bucket");
  NumOpenBuckets = Buckets;
  return *this;
}

Schedule &Schedule::configApplyDirection(const std::string &Option) {
  if (Option == "SparsePush")
    Dir = Direction::SparsePush;
  else if (Option == "DensePull")
    Dir = Direction::DensePull;
  else if (Option == "DensePull-SparsePush" || Option == "Hybrid")
    Dir = Direction::Hybrid;
  else
    fatalError("configApplyDirection: unknown option");
  return *this;
}

Schedule &Schedule::configApplyParallelization(const std::string &Option) {
  if (Option == "serial")
    Par = Parallelization::Serial;
  else if (Option == "static-vertex-parallel")
    Par = Parallelization::StaticVertexParallel;
  else if (Option == "dynamic-vertex-parallel")
    Par = Parallelization::DynamicVertexParallel;
  else
    fatalError("configApplyParallelization: unknown option");
  return *this;
}

const char *graphit::updateStrategyName(UpdateStrategy S) {
  switch (S) {
  case UpdateStrategy::EagerWithFusion:
    return "eager_with_fusion";
  case UpdateStrategy::EagerNoFusion:
    return "eager_no_fusion";
  case UpdateStrategy::Lazy:
    return "lazy";
  case UpdateStrategy::LazyConstantSum:
    return "lazy_constant_sum";
  }
  GRAPHIT_UNREACHABLE("bad UpdateStrategy");
}

const char *graphit::directionName(Direction D) {
  switch (D) {
  case Direction::SparsePush:
    return "SparsePush";
  case Direction::DensePull:
    return "DensePull";
  case Direction::Hybrid:
    return "Hybrid";
  }
  GRAPHIT_UNREACHABLE("bad Direction");
}

const char *graphit::parallelizationName(Parallelization P) {
  switch (P) {
  case Parallelization::Serial:
    return "serial";
  case Parallelization::StaticVertexParallel:
    return "static-vertex-parallel";
  case Parallelization::DynamicVertexParallel:
    return "dynamic-vertex-parallel";
  }
  GRAPHIT_UNREACHABLE("bad Parallelization");
}

Schedule Schedule::parse(const std::string &Spec) {
  Schedule S;
  std::stringstream Stream(Spec);
  std::string Token;
  bool First = true;
  while (std::getline(Stream, Token, ',')) {
    if (Token.empty())
      continue;
    size_t Eq = Token.find('=');
    if (Eq == std::string::npos) {
      if (!First)
        fatalError("Schedule::parse: strategy must be the first token");
      S.configApplyPriorityUpdate(Token);
      First = false;
      continue;
    }
    First = false;
    std::string Key = Token.substr(0, Eq), Value = Token.substr(Eq + 1);
    if (Key == "delta")
      S.configApplyPriorityUpdateDelta(std::atoll(Value.c_str()));
    else if (Key == "threshold")
      S.configBucketFusionThreshold(std::atoll(Value.c_str()));
    else if (Key == "buckets")
      S.configNumBuckets(std::atoi(Value.c_str()));
    else if (Key == "direction")
      S.configApplyDirection(Value);
    else if (Key == "parallel")
      S.configApplyParallelization(Value);
    else if (Key == "histogram")
      S.Histogram = Value == "atomic" ? HistogramMethod::AtomicCounts
                                      : HistogramMethod::LocalTables;
    else
      fatalError("Schedule::parse: unknown key");
  }
  return S;
}

std::string Schedule::toString() const {
  std::stringstream Out;
  Out << updateStrategyName(Update) << ",delta=" << Delta
      << ",threshold=" << FusionThreshold << ",buckets=" << NumOpenBuckets
      << ",direction=" << directionName(Dir)
      << ",parallel=" << parallelizationName(Par);
  return Out.str();
}
