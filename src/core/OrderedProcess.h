//===- core/OrderedProcess.h - Eager engine with bucket fusion --*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered processing operator the compiler substitutes for the user's
/// `while (pq.finished() == false)` loop under eager schedules (§5.2), plus
/// the paper's new *bucket fusion* optimization (§3.3, Fig. 7).
///
/// Structure (one OpenMP parallel region for the whole run, Fig. 9(c)):
///
///   - each thread owns `LocalBins`, a vector of buckets indexed by
///     coarsened priority key;
///   - a round relaxes the shared frontier (`omp for nowait`), pushing
///     improved vertices into thread-local bins — no atomics on buckets;
///   - bucket fusion: while a thread's bin for the *current* key is
///     non-empty and below `FusionThreshold`, the thread drains it
///     immediately, with no global barrier (same-priority rounds fuse;
///     ordering is preserved because only equal-priority work is executed);
///   - threads then propose the minimum non-empty bin key; the winning
///     bucket is copied into the shared frontier with fetch-and-add.
///
/// The engine is generic over the relaxation: `Relax(U, CurrKey, Push)`
/// re-checks staleness and calls `Push(V, Key)` for every improved
/// neighbor. A `Stop` predicate evaluated at round boundaries supports the
/// early exits of PPSP and A* (it must read only round-stable state so all
/// threads decide identically).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_CORE_ORDEREDPROCESS_H
#define GRAPHIT_CORE_ORDEREDPROCESS_H

#include "core/Schedule.h"
#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Timer.h"
#include "support/Types.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <omp.h>
#include <vector>

namespace graphit {

/// Counters reported by the ordered engines. `Rounds` counts globally
/// synchronized rounds (each costs two barriers in the eager engine);
/// `FusedRounds` counts the extra rounds bucket fusion executed locally —
/// Table 6 reports `Rounds` with and without fusion.
struct OrderedStats {
  int64_t Rounds = 0;
  int64_t FusedRounds = 0;
  int64_t VerticesProcessed = 0;
  int64_t OverflowRebuckets = 0;
  double Seconds = 0.0;

  /// Total rounds the algorithm executed, local or global.
  int64_t totalRounds() const { return Rounds + FusedRounds; }
};

/// Sentinel key meaning "no bucket" inside the eager engine.
inline constexpr int64_t kMaxEagerKey =
    std::numeric_limits<int64_t>::max() / 2;

/// Runs the eager ordered processing loop (with or without bucket fusion,
/// per `S.Update`). Keys must be non-negative and monotonically
/// non-decreasing up to the tolerance handled by clamping in the caller.
///
/// \param NumNodes          vertex universe size (bins sanity checks)
/// \param FrontierCapacity  capacity of the shared frontier array; pushes
///                          beyond it abort (GAPBS sizes this at numEdges)
/// \param Source            initial frontier vertex
/// \param SourceKey         its initial bucket key (0 for SSSP; ⌊h(s)/Δ⌋
///                          for A*)
/// \param Relax             `(VertexId U, int64_t CurrKey, Push)`;
///                          `Push(VertexId V, int64_t Key)`
/// \param Stop              `(int64_t CurrKey) -> bool`, checked at round
///                          start on round-stable data
template <typename RelaxFn, typename StopFn>
void eagerOrderedProcess(Count NumNodes, Count FrontierCapacity,
                         VertexId Source, int64_t SourceKey,
                         const Schedule &S, RelaxFn &&Relax, StopFn &&Stop,
                         OrderedStats *Stats = nullptr) {
  assert(static_cast<Count>(Source) < NumNodes && "source out of range");
  (void)NumNodes;
  const bool Fuse = S.Update == UpdateStrategy::EagerWithFusion;
  const int64_t Threshold = S.FusionThreshold;

  Timer Clock;
  std::vector<VertexId> Frontier(
      static_cast<size_t>(std::max<Count>(FrontierCapacity, 1024)));
  Frontier[0] = Source;
  int64_t SharedKeys[2] = {SourceKey, kMaxEagerKey};
  int64_t FrontierTails[2] = {1, 0};

  int64_t Rounds = 0, FusedRounds = 0, VerticesProcessed = 0;

#pragma omp parallel
  {
    std::vector<std::vector<VertexId>> LocalBins;
    int64_t LocalFused = 0;
    int64_t LocalFusedVerts = 0;
    int64_t Iter = 0;

    auto Push = [&LocalBins](VertexId V, int64_t Key) {
      assert(Key >= 0 && Key < kMaxEagerKey && "bad bucket key");
      if (static_cast<size_t>(Key) >= LocalBins.size())
        LocalBins.resize(static_cast<size_t>(Key) + 1);
      LocalBins[static_cast<size_t>(Key)].push_back(V);
    };

    while (SharedKeys[Iter & 1] != kMaxEagerKey &&
           !Stop(SharedKeys[Iter & 1])) {
      int64_t &CurrKey = SharedKeys[Iter & 1];
      int64_t &NextKey = SharedKeys[(Iter + 1) & 1];
      int64_t &CurrTail = FrontierTails[Iter & 1];
      int64_t &NextTail = FrontierTails[(Iter + 1) & 1];

#pragma omp for nowait schedule(dynamic, kDynamicGrain)
      for (int64_t I = 0; I < CurrTail; ++I)
        Relax(Frontier[static_cast<size_t>(I)], CurrKey, Push);

      // Bucket fusion (Fig. 7 lines 14-21): drain the current local bucket
      // without synchronizing, as long as it stays below the threshold
      // (large buckets go to the global frontier for load balance).
      if (Fuse) {
        while (static_cast<size_t>(CurrKey) < LocalBins.size() &&
               !LocalBins[static_cast<size_t>(CurrKey)].empty() &&
               static_cast<int64_t>(
                   LocalBins[static_cast<size_t>(CurrKey)].size()) <
                   Threshold) {
          std::vector<VertexId> Drain =
              std::move(LocalBins[static_cast<size_t>(CurrKey)]);
          LocalBins[static_cast<size_t>(CurrKey)].clear();
          ++LocalFused;
          LocalFusedVerts += static_cast<int64_t>(Drain.size());
          for (VertexId U : Drain)
            Relax(U, CurrKey, Push);
        }
      }

      // Propose the smallest non-empty local bin as the next bucket. The
      // scan starts at 0 (not CurrKey) so the engine also tolerates
      // ε-inconsistent heuristics that push a key one bucket back.
      int64_t MyNext = kMaxEagerKey;
      for (size_t B = 0; B < LocalBins.size(); ++B) {
        if (!LocalBins[B].empty()) {
          MyNext = static_cast<int64_t>(B);
          break;
        }
      }
      if (MyNext != kMaxEagerKey) {
#pragma omp critical
        NextKey = std::min(NextKey, MyNext);
      }

#pragma omp barrier
#pragma omp single nowait
      {
        ++Rounds;
        VerticesProcessed += CurrTail;
        CurrKey = kMaxEagerKey;
        CurrTail = 0;
      }

      if (NextKey != kMaxEagerKey &&
          static_cast<size_t>(NextKey) < LocalBins.size() &&
          !LocalBins[static_cast<size_t>(NextKey)].empty()) {
        std::vector<VertexId> &Bin = LocalBins[static_cast<size_t>(NextKey)];
        int64_t CopyStart =
            fetchAdd(&NextTail, static_cast<int64_t>(Bin.size()));
        if (CopyStart + static_cast<int64_t>(Bin.size()) >
            static_cast<int64_t>(Frontier.size()))
          fatalError("eager frontier overflow; raise FrontierCapacity");
        std::copy(Bin.begin(), Bin.end(),
                  Frontier.begin() + static_cast<size_t>(CopyStart));
        Bin.clear();
      }
      ++Iter;
#pragma omp barrier
    }

    fetchAdd(&FusedRounds, LocalFused);
    fetchAdd(&VerticesProcessed, LocalFusedVerts);
  }

  if (Stats) {
    Stats->Rounds = Rounds;
    Stats->FusedRounds = FusedRounds;
    Stats->VerticesProcessed = VerticesProcessed;
    Stats->Seconds = Clock.seconds();
  }
}

} // namespace graphit

#endif // GRAPHIT_CORE_ORDEREDPROCESS_H
