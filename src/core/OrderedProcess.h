//===- core/OrderedProcess.h - Eager engine with bucket fusion --*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered processing operator the compiler substitutes for the user's
/// `while (pq.finished() == false)` loop under eager schedules (§5.2), plus
/// the paper's new *bucket fusion* optimization (§3.3, Fig. 7).
///
/// Structure (one OpenMP parallel region for the whole run, Fig. 9(c)):
///
///   - each thread owns a `LocalBinWindow`, a sliding circular window of
///     buckets keyed by coarsened priority (keys beyond the window go to a
///     per-thread overflow list that is migrated as the window slides);
///   - a round relaxes the shared frontier (`omp for nowait`), pushing
///     improved vertices into thread-local bins — no atomics on buckets;
///   - bucket fusion: while a thread's bin for the *current* key is
///     non-empty and below `FusionThreshold`, the thread drains it
///     immediately, with no global barrier (same-priority rounds fuse;
///     ordering is preserved because only equal-priority work is executed);
///   - threads then propose the minimum non-empty bin key — an O(1)
///     amortized resume from a tracked per-thread minimum, folded into the
///     shared next key with an atomic min (no critical section) — and the
///     winning bucket is copied into the shared frontier with
///     fetch-and-add. Drained bin storage is recycled in place: the window
///     is circular, so a slot whose key has passed is reused (still warm)
///     for the keys that slide into it.
///
/// The engine is generic over the relaxation: `Relax(U, CurrKey, Push)`
/// re-checks staleness and calls `Push(V, Key)` for every improved
/// neighbor. A `Stop` predicate evaluated at round boundaries supports the
/// early exits of PPSP and A* (it must read only round-stable state so all
/// threads decide identically).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_CORE_ORDEREDPROCESS_H
#define GRAPHIT_CORE_ORDEREDPROCESS_H

#include "core/Schedule.h"
#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/Cancellation.h"
#include "support/Prefetch.h"
#include "support/TSanAnnotate.h"
#include "support/Timer.h"
#include "support/Types.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <omp.h>
#include <vector>

namespace graphit {

/// Counters reported by the ordered engines. `Rounds` counts globally
/// synchronized rounds (each costs two barriers in the eager engine);
/// `FusedRounds` counts the extra rounds bucket fusion executed locally —
/// Table 6 reports `Rounds` with and without fusion.
struct OrderedStats {
  int64_t Rounds = 0;
  int64_t FusedRounds = 0;
  int64_t VerticesProcessed = 0;
  int64_t OverflowRebuckets = 0;
  double Seconds = 0.0;
  /// True when the run was interrupted by a CancelToken at a bucket-round
  /// boundary instead of running to quiescence.
  bool Cancelled = false;
  /// When Cancelled: the coarsened key of the first unprocessed bucket.
  /// Every priority strictly below `CancelKey * Delta` was settled when
  /// the run stopped (the classic Δ-stepping invariant), so callers can
  /// report that exact prefix of the final answer.
  int64_t CancelKey = 0;

  /// Total rounds the algorithm executed, local or global.
  int64_t totalRounds() const { return Rounds + FusedRounds; }

  /// Accumulates \p Other into this (used by the query service to report
  /// aggregate work across many per-query runs; Seconds adds up to total
  /// engine time, not wall clock).
  void merge(const OrderedStats &Other) {
    Rounds += Other.Rounds;
    FusedRounds += Other.FusedRounds;
    VerticesProcessed += Other.VerticesProcessed;
    OverflowRebuckets += Other.OverflowRebuckets;
    Seconds += Other.Seconds;
    Cancelled |= Other.Cancelled;
  }
};

/// Sentinel key meaning "no bucket" inside the eager engine.
inline constexpr int64_t kMaxEagerKey =
    std::numeric_limits<int64_t>::max() / 2;

/// Default (no-op) per-vertex prefetch hook for the eager engine's frontier
/// loops. Distance algorithms pass a hook that prefetches `Dist[V]` for the
/// frontier vertex a few slots ahead — the first scattered load `Relax`
/// performs — so the miss overlaps the current vertex's relaxation.
struct NoVertexPrefetch {
  void operator()(VertexId) const {}
};

namespace detail {

/// Per-thread bucket store of the eager engine: a sliding circular window
/// of `WindowSize` bins over coarsened keys plus an overflow list for keys
/// beyond it.
///
/// Invariants:
///  - all bins with keys below `Base` are empty (the global round key is
///    monotonically non-decreasing, and `advanceTo` only moves `Base` to a
///    key every thread agreed no earlier work exists for);
///  - `MinKey` is a lower bound on the smallest non-empty in-window key,
///    so `proposeMin` resumes where the previous scan stopped instead of
///    rescanning from key 0 — O(1) amortized per round;
///  - `OverflowMin` is the exact minimum valid key in `Overflow`.
///
/// Storage recycling: the window is circular (`slot = key % WindowSize`),
/// so bins for passed keys are reused, capacity intact, for the keys that
/// slide into their slot; the engine's memory is O(WindowSize + overflow)
/// instead of O(max key ever seen).
class LocalBinWindow {
public:
  explicit LocalBinWindow(int64_t WindowSize)
      : Slots(static_cast<size_t>(roundUpPow2(std::max<int64_t>(WindowSize,
                                                                2)))),
        Window(static_cast<int64_t>(Slots.size())) {}

  /// Files \p V under \p Key. Keys below the window base (possible only
  /// with ε-inconsistent A* heuristics) are clamped up to it, which
  /// re-processes the vertex in the current bucket — the same behavior the
  /// engine's callers implement by clamping pushed keys at `CurrKey`.
  void push(VertexId V, int64_t Key) {
    assert(Key >= 0 && Key < kMaxEagerKey && "bad bucket key");
    if (Key < Base)
      Key = Base;
    if (Key >= Base + Window) {
      Overflow.push_back({Key, V});
      OverflowMin = std::min(OverflowMin, Key);
      return;
    }
    Slots[slotOf(Key)].push_back(V);
    MinKey = std::min(MinKey, Key);
  }

  /// The bin for in-window key \p Key.
  std::vector<VertexId> &bin(int64_t Key) { return Slots[slotOf(Key)]; }

  /// True when \p Key is in-window and its bin is non-empty.
  bool nonEmptyAt(int64_t Key) const {
    return Key >= Base && Key < Base + Window && !Slots[slotOf(Key)].empty();
  }

  /// Smallest key with pending work, or kMaxEagerKey. Resumes the scan at
  /// `MinKey`; every empty slot is skipped at most once per window pass.
  int64_t proposeMin() {
    const int64_t End = Base + Window;
    while (MinKey < End && Slots[slotOf(MinKey)].empty())
      ++MinKey;
    return std::min(MinKey < End ? MinKey : kMaxEagerKey, OverflowMin);
  }

  /// Slides the window so it starts at \p NewBase (the key the round
  /// agreed to process next) and migrates overflow entries that now fall
  /// inside it.
  void advanceTo(int64_t NewBase) {
    if (NewBase >= kMaxEagerKey || NewBase <= Base)
      return;
    Base = NewBase;
    MinKey = std::max(MinKey, Base);
    if (OverflowMin < Base + Window)
      migrateOverflow();
  }

private:
  /// The window is sized to a power of two so the hot-path slot lookup
  /// (every push, every proposeMin scan step) is a mask, not a division.
  static int64_t roundUpPow2(int64_t X) {
    int64_t P = 1;
    while (P < X)
      P <<= 1;
    return P;
  }

  size_t slotOf(int64_t Key) const {
    return static_cast<size_t>(Key & (Window - 1));
  }

  void migrateOverflow() {
    size_t Keep = 0;
    int64_t NewMin = kMaxEagerKey;
    for (const auto &[Key, V] : Overflow) {
      // Keys below the new base cannot occur: the base is the global
      // minimum over every thread's bins *and* overflow.
      assert(Key >= Base && "overflow entry precedes the window");
      if (Key < Base + Window) {
        Slots[slotOf(Key)].push_back(V);
        MinKey = std::min(MinKey, Key);
      } else {
        Overflow[Keep++] = {Key, V};
        NewMin = std::min(NewMin, Key);
      }
    }
    Overflow.resize(Keep);
    OverflowMin = NewMin;
  }

  std::vector<std::vector<VertexId>> Slots;
  std::vector<std::pair<int64_t, VertexId>> Overflow;
  int64_t Window;
  int64_t Base = 0;
  int64_t MinKey = kMaxEagerKey;
  int64_t OverflowMin = kMaxEagerKey;
};

} // namespace detail

/// Runs the eager ordered processing loop (with or without bucket fusion,
/// per `S.Update`) from an arbitrary set of (vertex, key) seeds — the
/// multi-source entry incremental distance repair uses to resume from an
/// affected boundary instead of the single original source. Keys must be
/// non-negative and monotonically non-decreasing up to the tolerance
/// handled by clamping in the caller.
///
/// \param NumNodes          vertex universe size (bins sanity checks)
/// \param FrontierCapacity  capacity of the shared frontier array; pushes
///                          beyond it abort (GAPBS sizes this at numEdges)
/// \param Seeds             initial (vertex, bucket key) pairs; processing
///                          starts at the minimum seeded key
/// \param NumSeeds          number of seeds (0 is a no-op)
/// \param Relax             `(VertexId U, int64_t CurrKey, Push)`;
///                          `Push(VertexId V, int64_t Key)`
/// \param Stop              `(int64_t CurrKey) -> bool`, checked at round
///                          start on round-stable data
/// \param FrontierScratch   optional caller-owned storage for the shared
///                          frontier. A fresh run value-initializes O(E)
///                          elements — a real cost at query-serving rates —
///                          so pooled callers pass a buffer that is grown
///                          once and reused across runs (stale contents are
///                          harmless: only indices below the round tails
///                          are ever read).
/// \param Cancel            optional cooperative cancellation token. It is
///                          polled once per global round by the single
///                          bookkeeping thread and the verdict latched into
///                          shared state, so every thread observes the same
///                          decision at the same barrier (polling the clock
///                          in the loop condition would let threads disagree
///                          and deadlock). Zero cost when nullptr.
template <typename RelaxFn, typename StopFn,
          typename VPrefetchFn = NoVertexPrefetch>
void eagerOrderedProcessSeeds(Count NumNodes, Count FrontierCapacity,
                              const std::pair<VertexId, int64_t> *Seeds,
                              Count NumSeeds, const Schedule &S,
                              RelaxFn &&Relax, StopFn &&Stop,
                              OrderedStats *Stats = nullptr,
                              std::vector<VertexId> *FrontierScratch =
                                  nullptr,
                              VPrefetchFn &&VPrefetch = VPrefetchFn{},
                              const CancelToken *Cancel = nullptr) {
  (void)NumNodes;
  if (NumSeeds == 0) {
    if (Stats)
      *Stats = OrderedStats{};
    return;
  }
  const bool Fuse = S.Update == UpdateStrategy::EagerWithFusion;
  const int64_t Threshold = S.FusionThreshold;

  Timer Clock;
  std::vector<VertexId> OwnFrontier;
  std::vector<VertexId> &Frontier =
      FrontierScratch ? *FrontierScratch : OwnFrontier;
  const size_t NeededCapacity = static_cast<size_t>(
      std::max<Count>(std::max(FrontierCapacity, NumSeeds), 1024));
  if (Frontier.size() < NeededCapacity)
    Frontier.resize(NeededCapacity);
  // The round frontier holds the minimum seed key's vertices; later-keyed
  // seeds are filed into one thread's local bins inside the region (they
  // surface through the ordinary min-key proposal).
  int64_t MinSeedKey = kMaxEagerKey;
  for (Count I = 0; I < NumSeeds; ++I) {
    assert(static_cast<Count>(Seeds[I].first) < NumNodes &&
           "seed out of range");
    MinSeedKey = std::min(MinSeedKey, Seeds[I].second);
  }
  int64_t SeedTail = 0;
  for (Count I = 0; I < NumSeeds; ++I)
    if (Seeds[I].second == MinSeedKey)
      Frontier[static_cast<size_t>(SeedTail++)] = Seeds[I].first;
  int64_t SharedKeys[2] = {MinSeedKey, kMaxEagerKey};
  int64_t FrontierTails[2] = {SeedTail, 0};

  // A token that is already expired never enters the region: the run
  // reports the empty (but still correct) settled prefix below the first
  // seed key.
  if (Cancel && Cancel->expired()) {
    if (Stats) {
      *Stats = OrderedStats{};
      Stats->Cancelled = true;
      Stats->CancelKey = MinSeedKey;
      Stats->Seconds = Clock.seconds();
    }
    return;
  }

  int64_t Rounds = 0, FusedRounds = 0, VerticesProcessed = 0;
  // Written only inside the `omp single` bookkeeping block (between the
  // round's two barriers), read by every thread after the second barrier:
  // the latch that makes cancellation a round-stable, unanimous decision.
  bool CancelLatched = false;
  int64_t CancelStopKey = 0;

  int SyncTag = 0;
  GRAPHIT_OMP_REGION_ENTER(&SyncTag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&SyncTag);
    // The window size rides on the lazy engine's bucket-count knob: both
    // answer "how many coarsened keys ahead do we materialize?".
    detail::LocalBinWindow Bins(S.NumOpenBuckets);
    std::vector<VertexId> DrainBuf;
    int64_t LocalFused = 0;
    int64_t LocalFusedVerts = 0;
    int64_t Iter = 0;

    auto Push = [&Bins](VertexId V, int64_t Key) { Bins.push(V, Key); };

    // One thread files the seeds beyond the first round's key; they are
    // few (a repair's affected boundary), so load balance is unaffected.
    if (omp_get_thread_num() == 0)
      for (Count I = 0; I < NumSeeds; ++I)
        if (Seeds[I].second != MinSeedKey)
          Bins.push(Seeds[I].first, Seeds[I].second);

    while (!CancelLatched && SharedKeys[Iter & 1] != kMaxEagerKey &&
           !Stop(SharedKeys[Iter & 1])) {
      int64_t &CurrKey = SharedKeys[Iter & 1];
      int64_t &NextKey = SharedKeys[(Iter + 1) & 1];
      int64_t &CurrTail = FrontierTails[Iter & 1];
      int64_t &NextTail = FrontierTails[(Iter + 1) & 1];

      // All bins below CurrKey are globally empty (CurrKey won the round's
      // min-reduction): slide the window forward, migrating overflow.
      Bins.advanceTo(CurrKey);

#pragma omp for nowait schedule(dynamic, kDynamicGrain)
      for (int64_t I = 0; I < CurrTail; ++I) {
        // Look ahead in this round's frontier: the next vertices' distance
        // words are the first scattered loads their relaxation performs.
        if (I + kPrefetchDistance < CurrTail)
          VPrefetch(Frontier[static_cast<size_t>(I + kPrefetchDistance)]);
        Relax(Frontier[static_cast<size_t>(I)], CurrKey, Push);
      }

      // Bucket fusion (Fig. 7 lines 14-21): drain the current local bucket
      // without synchronizing, as long as it stays below the threshold
      // (large buckets go to the global frontier for load balance). The
      // swap recycles storage both ways: the slot inherits DrainBuf's
      // cleared capacity, DrainBuf inherits the slot's elements.
      if (Fuse) {
        while (Bins.nonEmptyAt(CurrKey) &&
               static_cast<int64_t>(Bins.bin(CurrKey).size()) < Threshold) {
          DrainBuf.clear();
          std::swap(DrainBuf, Bins.bin(CurrKey));
          ++LocalFused;
          const int64_t DrainSize = static_cast<int64_t>(DrainBuf.size());
          LocalFusedVerts += DrainSize;
          for (int64_t K = 0; K < DrainSize; ++K) {
            if (K + kPrefetchDistance < DrainSize)
              VPrefetch(DrainBuf[static_cast<size_t>(K + kPrefetchDistance)]);
            Relax(DrainBuf[static_cast<size_t>(K)], CurrKey, Push);
          }
        }
      }

      // Propose the smallest pending local key. The scan resumes from the
      // tracked per-thread minimum (O(1) amortized, not O(max key)), and
      // the reduction is a lock-free atomic min instead of a critical
      // section.
      int64_t MyNext = Bins.proposeMin();
      if (MyNext != kMaxEagerKey)
        atomicMin(&NextKey, MyNext);

      GRAPHIT_OMP_BARRIER(&SyncTag);
#pragma omp single nowait
      {
        ++Rounds;
        VerticesProcessed += CurrTail;
        CurrKey = kMaxEagerKey;
        CurrTail = 0;
        // NextKey is final after the barrier above, so one thread can
        // poll the token here and latch both the verdict and the key it
        // stopped before; the writes publish to every thread at the
        // barrier below. A run whose next key is the sentinel finished
        // on its own — completion beats cancellation.
        if (Cancel && NextKey != kMaxEagerKey && Cancel->expired()) {
          CancelLatched = true;
          CancelStopKey = NextKey;
        }
      }

      if (Bins.nonEmptyAt(NextKey)) {
        std::vector<VertexId> &Bin = Bins.bin(NextKey);
        int64_t CopyStart =
            fetchAdd(&NextTail, static_cast<int64_t>(Bin.size()));
        if (CopyStart + static_cast<int64_t>(Bin.size()) >
            static_cast<int64_t>(Frontier.size()))
          fatalError("eager frontier overflow; raise FrontierCapacity");
        std::copy(Bin.begin(), Bin.end(),
                  Frontier.begin() + static_cast<size_t>(CopyStart));
        Bin.clear();
      }
      ++Iter;
      GRAPHIT_OMP_BARRIER(&SyncTag);
    }

    fetchAdd(&FusedRounds, LocalFused);
    fetchAdd(&VerticesProcessed, LocalFusedVerts);
    GRAPHIT_OMP_REGION_END(&SyncTag);
  }
  GRAPHIT_OMP_REGION_EXIT(&SyncTag);

  if (Stats) {
    Stats->Rounds = Rounds;
    Stats->FusedRounds = FusedRounds;
    Stats->VerticesProcessed = VerticesProcessed;
    Stats->Seconds = Clock.seconds();
    Stats->Cancelled = CancelLatched;
    Stats->CancelKey = CancelStopKey;
  }
}

/// Single-source form: the classical entry point (SSSP and friends seed
/// one vertex — the source at key 0, or ⌊h(s)/Δ⌋ for A*).
template <typename RelaxFn, typename StopFn,
          typename VPrefetchFn = NoVertexPrefetch>
void eagerOrderedProcess(Count NumNodes, Count FrontierCapacity,
                         VertexId Source, int64_t SourceKey,
                         const Schedule &S, RelaxFn &&Relax, StopFn &&Stop,
                         OrderedStats *Stats = nullptr,
                         std::vector<VertexId> *FrontierScratch = nullptr,
                         VPrefetchFn &&VPrefetch = VPrefetchFn{},
                         const CancelToken *Cancel = nullptr) {
  const std::pair<VertexId, int64_t> Seed{Source, SourceKey};
  eagerOrderedProcessSeeds(NumNodes, FrontierCapacity, &Seed, 1, S,
                           std::forward<RelaxFn>(Relax),
                           std::forward<StopFn>(Stop), Stats,
                           FrontierScratch,
                           std::forward<VPrefetchFn>(VPrefetch), Cancel);
}

} // namespace graphit

#endif // GRAPHIT_CORE_ORDEREDPROCESS_H
