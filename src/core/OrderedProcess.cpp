//===- core/OrderedProcess.cpp - Eager engine with bucket fusion ----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
//
// The engine is a header template (core/OrderedProcess.h); this translation
// unit anchors the library and verifies the header is self-contained.
//
//===----------------------------------------------------------------------===//

#include "core/OrderedProcess.h"
