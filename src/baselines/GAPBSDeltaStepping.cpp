//===- baselines/GAPBSDeltaStepping.cpp - GAPBS comparison proxy ----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/GAPBSDeltaStepping.h"

#include "algorithms/AStar.h"
#include "support/Atomics.h"
#include "support/TSanAnnotate.h"
#include "support/Timer.h"

#include <algorithm>
#include <limits>
#include <omp.h>
#include <vector>

using namespace graphit;

namespace {

constexpr int64_t kMaxBin = std::numeric_limits<int64_t>::max() / 2;
constexpr int64_t kBinSizeThreshold = 1000; // GAPBS's kBinSizeThreshold

/// The GAPBS kernel, generalized only by an f-priority function and a stop
/// predicate so the PPSP/wBFS/A* rows reuse it. Structure and naming
/// deliberately mirror gapbs/src/sssp.cc.
template <typename HeurFn, typename StopFn>
void gapbsKernel(const Graph &G, VertexId Source,
                 std::vector<Priority> &Dist, int64_t Delta, HeurFn &&Heur,
                 StopFn &&Stop, OrderedStats *Stats) {
  Timer Clock;
  Dist[Source] = 0;
  std::vector<VertexId> Frontier(static_cast<size_t>(G.numEdges() + 1));
  Frontier[0] = Source;
  // Two-phase rotating indexes/tails, exactly as in GAPBS.
  int64_t SharedIndexes[2] = {Heur(Source) / Delta, kMaxBin};
  int64_t FrontierTails[2] = {1, 0};
  int64_t Rounds = 0, Processed = 0;

  int SyncTag = 0;
  GRAPHIT_OMP_REGION_ENTER(&SyncTag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&SyncTag);
    std::vector<std::vector<VertexId>> LocalBins;
    int64_t Iter = 0;
    while (SharedIndexes[Iter & 1] != kMaxBin &&
           !Stop(SharedIndexes[Iter & 1])) {
      int64_t &CurrBinIndex = SharedIndexes[Iter & 1];
      int64_t &NextBinIndex = SharedIndexes[(Iter + 1) & 1];
      int64_t &CurrFrontierTail = FrontierTails[Iter & 1];
      int64_t &NextFrontierTail = FrontierTails[(Iter + 1) & 1];

#pragma omp for nowait schedule(dynamic, 64)
      for (int64_t I = 0; I < CurrFrontierTail; ++I) {
        VertexId U = Frontier[static_cast<size_t>(I)];
        Priority DU = atomicLoadRelaxed(&Dist[U]);
        if ((DU + Heur(U)) / Delta < CurrBinIndex)
          continue; // settled in an earlier bin
        for (WNode E : G.outNeighbors(U)) {
          Priority OldDist = atomicLoadRelaxed(&Dist[E.V]);
          Priority NewDist = DU + E.W;
          while (NewDist < OldDist) { // GAPBS-style CAS retry loop
            if (atomicCAS(&Dist[E.V], OldDist, NewDist)) {
              size_t DestBin =
                  static_cast<size_t>((NewDist + Heur(E.V)) / Delta);
              if (DestBin >= LocalBins.size())
                LocalBins.resize(DestBin + 1);
              LocalBins[DestBin].push_back(E.V);
              break;
            }
            OldDist = atomicLoadRelaxed(&Dist[E.V]);
          }
        }
      }

      // Propose the next bin, scanning from the current bin (GAPBS).
      for (size_t B = static_cast<size_t>(std::max<int64_t>(
               CurrBinIndex, 0));
           B < LocalBins.size(); ++B) {
        if (!LocalBins[B].empty()) {
          // GAPBS folds proposals in a critical section; keep the lock
          // (its serialization is part of what this baseline measures)
          // but make the folded update itself atomic — libgomp's lock is
          // invisible to ThreadSanitizer.
#pragma omp critical
          atomicMin(&NextBinIndex, static_cast<int64_t>(B));
          break;
        }
      }

      GRAPHIT_OMP_BARRIER(&SyncTag);
#pragma omp single nowait
      {
        ++Rounds;
        Processed += CurrFrontierTail;
        CurrBinIndex = kMaxBin;
        CurrFrontierTail = 0;
      }

      if (NextBinIndex != kMaxBin &&
          static_cast<size_t>(NextBinIndex) < LocalBins.size() &&
          !LocalBins[static_cast<size_t>(NextBinIndex)].empty()) {
        std::vector<VertexId> &Bin =
            LocalBins[static_cast<size_t>(NextBinIndex)];
        int64_t CopyStart =
            fetchAdd(&NextFrontierTail, static_cast<int64_t>(Bin.size()));
        std::copy(Bin.begin(), Bin.end(),
                  Frontier.begin() + static_cast<size_t>(CopyStart));
        Bin.resize(0);
      }
      ++Iter;
      GRAPHIT_OMP_BARRIER(&SyncTag);
    }
    GRAPHIT_OMP_REGION_END(&SyncTag);
  }
  GRAPHIT_OMP_REGION_EXIT(&SyncTag);

  if (Stats) {
    Stats->Rounds = Rounds;
    Stats->VerticesProcessed = Processed;
    Stats->Seconds = Clock.seconds();
  }
}

Priority zeroHeur(VertexId) { return 0; }

} // namespace

SSSPResult graphit::gapbsSSSP(const Graph &G, VertexId Source,
                              int64_t Delta) {
  SSSPResult R;
  R.Dist.assign(static_cast<size_t>(G.numNodes()), kInfiniteDistance);
  gapbsKernel(G, Source, R.Dist, Delta, zeroHeur,
              [](int64_t) { return false; }, &R.Stats);
  return R;
}

SSSPResult graphit::gapbsWBFS(const Graph &G, VertexId Source) {
  return gapbsSSSP(G, Source, /*Delta=*/1);
}

PPSPResult graphit::gapbsPPSP(const Graph &G, VertexId Source,
                              VertexId Target, int64_t Delta) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  PPSPResult R;
  auto Stop = [&](int64_t CurrBin) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrBin * Delta >= Best;
  };
  gapbsKernel(G, Source, Dist, Delta, zeroHeur, Stop, &R.Stats);
  R.Dist = Dist[Target];
  return R;
}

PPSPResult graphit::gapbsAStar(const Graph &G, VertexId Source,
                               VertexId Target, int64_t Delta) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  PPSPResult R;
  auto Heur = [&](VertexId V) { return aStarHeuristic(G, V, Target); };
  auto Stop = [&](int64_t CurrBin) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrBin * Delta >= Best;
  };
  gapbsKernel(G, Source, Dist, Delta, Heur, Stop, &R.Stats);
  R.Dist = Dist[Target];
  return R;
}
