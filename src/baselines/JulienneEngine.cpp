//===- baselines/JulienneEngine.cpp - Julienne comparison proxy -----------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/JulienneEngine.h"

#include "algorithms/AStar.h"
#include "runtime/Histogram.h"
#include "runtime/LazyBucketQueue.h"
#include "runtime/Traversal.h"
#include "support/Atomics.h"
#include "support/Random.h"
#include "support/TSanAnnotate.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <omp.h>

using namespace graphit;

namespace {

/// Shared lazy loop for the distance-style algorithms, always paying the
/// two Julienne overheads (lambda-keyed buckets, hybrid direction).
template <typename HeurFn, typename StopFn>
OrderedStats julienneDistanceRun(const Graph &G, VertexId Source,
                                 std::vector<Priority> &Dist, int64_t Delta,
                                 HeurFn &&Heur, StopFn &&Stop) {
  OrderedStats Stats;
  Timer Clock;
  Dist[Source] = 0;

  // Julienne's original interface: bucket ids flow through an indirect
  // user function per vertex.
  LambdaBucketQueue Queue(
      G.numNodes(), 128, PriorityOrder::LowerFirst, [&](VertexId V) {
        Priority P = Dist[V];
        if (P == kInfiniteDistance)
          return LazyBucketQueue::kNoBucket;
        return (P + Heur(V)) / Delta;
      });
  Queue.insertAll(); // O(n) bucket construction over all identifiers

  TraversalBuffers Buffers(G);
  auto Push = [&](VertexId S, VertexId D, Weight W) {
    return atomicWriteMin(&Dist[D], atomicLoadRelaxed(&Dist[S]) + W);
  };
  auto Pull = [&](VertexId S, VertexId D, Weight W) {
    Priority ND = atomicLoad(&Dist[S]) + W;
    if (ND < Dist[D]) {
      // D is thread-owned in a pull round but read concurrently as a
      // source by other threads.
      atomicStoreRelaxed(&Dist[D], ND);
      return true;
    }
    return false;
  };

  while (Queue.nextBucket()) {
    if (Stop(Queue.currentKey()))
      break;
    ++Stats.Rounds;
    const std::vector<VertexId> &Bucket = Queue.currentBucket();
    Stats.VerticesProcessed += static_cast<int64_t>(Bucket.size());
    // Always-on direction optimization: Hybrid computes the frontier's
    // out-degree sum every round before traversing.
    const std::vector<VertexId> &Changed = edgeApplyOut(
        G, Bucket, Direction::Hybrid,
        Parallelization::DynamicVertexParallel, Buffers, Push, Pull);
    Queue.updateBuckets(Changed.data(), static_cast<Count>(Changed.size()));
  }
  Stats.Seconds = Clock.seconds();
  return Stats;
}

} // namespace

SSSPResult graphit::julienneSSSP(const Graph &G, VertexId Source,
                                 int64_t Delta) {
  SSSPResult R;
  R.Dist.assign(static_cast<size_t>(G.numNodes()), kInfiniteDistance);
  R.Stats = julienneDistanceRun(
      G, Source, R.Dist, Delta, [](VertexId) { return Priority{0}; },
      [](int64_t) { return false; });
  return R;
}

SSSPResult graphit::julienneWBFS(const Graph &G, VertexId Source) {
  return julienneSSSP(G, Source, /*Delta=*/1);
}

PPSPResult graphit::juliennePPSP(const Graph &G, VertexId Source,
                                 VertexId Target, int64_t Delta) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  PPSPResult R;
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrKey * Delta >= Best;
  };
  R.Stats = julienneDistanceRun(G, Source, Dist, Delta,
                                [](VertexId) { return Priority{0}; }, Stop);
  R.Dist = Dist[Target];
  return R;
}

PPSPResult graphit::julienneAStar(const Graph &G, VertexId Source,
                                  VertexId Target, int64_t Delta) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  PPSPResult R;
  auto Heur = [&](VertexId V) { return aStarHeuristic(G, V, Target); };
  auto Stop = [&](int64_t CurrKey) {
    Priority Best = atomicLoad(&Dist[Target]);
    return Best != kInfiniteDistance && CurrKey * Delta >= Best;
  };
  R.Stats = julienneDistanceRun(G, Source, Dist, Delta, Heur, Stop);
  R.Dist = Dist[Target];
  return R;
}

KCoreResult graphit::julienneKCore(const Graph &G) {
  Count N = G.numNodes();
  KCoreResult R;
  R.Coreness.assign(static_cast<size_t>(N), 0);
  Timer Clock;

  std::vector<Priority> Deg(static_cast<size_t>(N));
  std::vector<uint8_t> Done(static_cast<size_t>(N), 0);
  parallelFor(
      0, N,
      [&](Count V) { Deg[V] = G.outDegree(static_cast<VertexId>(V)); },
      Parallelization::StaticVertexParallel);

  LambdaBucketQueue Queue(N, 128, PriorityOrder::LowerFirst,
                          [&](VertexId V) {
                            if (Done[V])
                              return LazyBucketQueue::kNoBucket;
                            return Deg[V];
                          });
  Queue.insertAll();

  HistogramBuffer Hist(N);
  std::vector<int64_t> Offsets;
  std::vector<VertexId> Targets, Compact, UniqueIds;
  std::vector<uint32_t> Counts;

  while (Queue.nextBucket()) {
    int64_t K = Queue.currentKey();
    R.MaxCore = std::max<Priority>(R.MaxCore, K);
    ++R.Stats.Rounds;
    const std::vector<VertexId> &Bucket = Queue.currentBucket();
    Count B = static_cast<Count>(Bucket.size());
    R.Stats.VerticesProcessed += B;

    parallelFor(
        0, B,
        [&](Count I) {
          R.Coreness[Bucket[I]] = K;
          Done[Bucket[I]] = 1;
        },
        Parallelization::StaticVertexParallel);

    Offsets.resize(static_cast<size_t>(B) + 1);
    parallelFor(
        0, B, [&](Count I) { Offsets[I] = G.outDegree(Bucket[I]); },
        Parallelization::StaticVertexParallel);
    Offsets[B] = 0;
    int64_t Total = exclusivePrefixSum(Offsets.data(), B + 1);
    Targets.resize(static_cast<size_t>(Total));
    parallelFor(0, B, [&](Count I) {
      int64_t Pos = Offsets[I];
      for (WNode E : G.outNeighbors(Bucket[I]))
        Targets[static_cast<size_t>(Pos++)] =
            Done[E.V] ? kInvalidVertex : E.V;
    });
    Compact.resize(static_cast<size_t>(Total));
    Count M = parallelPack(Targets.data(), Total, Compact.data(),
                           [](VertexId V) { return V != kInvalidVertex; });

    Hist.reduce(Compact.data(), M, HistogramMethod::LocalTables, UniqueIds,
                Counts);
    Count U = static_cast<Count>(UniqueIds.size());
    parallelFor(
        0, U,
        [&](Count I) {
          VertexId V = UniqueIds[I];
          Deg[V] = std::max<Priority>(Deg[V] - Counts[I], K);
        },
        Parallelization::StaticVertexParallel);
    // Lambda interface: the queue re-derives each key via the function.
    Queue.updateBuckets(UniqueIds.data(), U);
  }
  R.Stats.Seconds = Clock.seconds();
  return R;
}

SetCoverResult graphit::julienneSetCover(const Graph &G, double Epsilon,
                                         uint64_t Seed) {
  Count N = G.numNodes();
  SetCoverResult R;
  if (N == 0)
    return R;
  Timer Clock;

  const double LogBase = std::log1p(Epsilon);
  auto BucketOf = [&](Count Coverage) -> int64_t {
    return static_cast<int64_t>(std::floor(
        std::log(static_cast<double>(Coverage)) / LogBase + 1e-12));
  };
  auto BucketFloor = [&](int64_t B) -> Count {
    return static_cast<Count>(
        std::ceil(std::pow(1.0 + Epsilon, static_cast<double>(B)) - 1e-9));
  };

  std::vector<uint8_t> Uncovered(static_cast<size_t>(N), 1);
  std::vector<uint64_t> Reserver(static_cast<size_t>(N),
                                 std::numeric_limits<uint64_t>::max());
  std::vector<Count> Coverage(static_cast<size_t>(N));
  std::vector<uint8_t> InCover(static_cast<size_t>(N), 0);
  parallelFor(
      0, N,
      [&](Count V) {
        Coverage[V] = G.outDegree(static_cast<VertexId>(V)) + 1;
      },
      Parallelization::StaticVertexParallel);
  Count NumUncovered = N;

  // Lambda-keyed buckets over cached coverage values.
  LambdaBucketQueue Queue(N, 128, PriorityOrder::HigherFirst,
                          [&](VertexId V) {
                            if (InCover[V] || Coverage[V] <= 0)
                              return LazyBucketQueue::kNoBucket;
                            return BucketOf(Coverage[V]);
                          });
  Queue.insertAll();

  auto CountUncovered = [&](VertexId V) {
    Count C = Uncovered[V] ? 1 : 0;
    for (WNode E : G.outNeighbors(V))
      C += Uncovered[E.V] ? 1 : 0;
    return C;
  };

  std::vector<std::vector<VertexId>> ChosenPerThread(
      static_cast<size_t>(omp_get_max_threads()));
  std::vector<VertexId> Requeue;
  int64_t RoundSalt = 0;
  auto RankOf = [&](VertexId V) {
    return (hash64(Seed ^ static_cast<uint64_t>(RoundSalt) ^ V) << 32) | V;
  };

  while (NumUncovered > 0 && Queue.nextBucket()) {
    ++R.Stats.Rounds;
    ++RoundSalt;
    int64_t B = Queue.currentKey();
    const std::vector<VertexId> &Cands = Queue.currentBucket();
    Count M = static_cast<Count>(Cands.size());
    R.Stats.VerticesProcessed += M;

    parallelFor(0, M, [&](Count I) {
      Coverage[Cands[I]] = CountUncovered(Cands[I]);
    });
    parallelFor(0, M, [&](Count I) {
      VertexId V = Cands[I];
      if (Coverage[V] <= 0 || BucketOf(Coverage[V]) != B)
        return;
      uint64_t Rank = RankOf(V);
      if (atomicLoadRelaxed(&Uncovered[V]))
        atomicWriteMin(&Reserver[V], Rank);
      for (WNode E : G.outNeighbors(V))
        if (atomicLoadRelaxed(&Uncovered[E.V]))
          atomicWriteMin(&Reserver[E.V], Rank);
    });

    Count NewlyCovered = 0;
    const Count Threshold = std::max<Count>(
        1, static_cast<Count>(std::ceil(
               (1.0 - Epsilon) * static_cast<double>(BucketFloor(B)))));
    int Tag = 0;
    GRAPHIT_OMP_REGION_ENTER(&Tag);
#pragma omp parallel
    {
      GRAPHIT_OMP_REGION_BEGIN(&Tag);
      std::vector<VertexId> &Mine =
          ChosenPerThread[static_cast<size_t>(omp_get_thread_num())];
      Count MyCovered = 0;
#pragma omp for schedule(dynamic, kDynamicGrain) nowait
      for (Count I = 0; I < M; ++I) {
        VertexId V = Cands[I];
        if (Coverage[V] <= 0 || BucketOf(Coverage[V]) != B)
          continue;
        uint64_t Rank = RankOf(V);
        Count Wins =
            (atomicLoadRelaxed(&Uncovered[V]) && Reserver[V] == Rank) ? 1
                                                                      : 0;
        for (WNode E : G.outNeighbors(V))
          if (atomicLoadRelaxed(&Uncovered[E.V]) && Reserver[E.V] == Rank)
            ++Wins;
        if (Wins < Threshold)
          continue;
        InCover[V] = 1;
        Mine.push_back(V);
        if (atomicLoadRelaxed(&Uncovered[V]) && Reserver[V] == Rank) {
          atomicStoreRelaxed(&Uncovered[V], uint8_t{0});
          ++MyCovered;
        }
        for (WNode E : G.outNeighbors(V))
          if (atomicLoadRelaxed(&Uncovered[E.V]) && Reserver[E.V] == Rank) {
            atomicStoreRelaxed(&Uncovered[E.V], uint8_t{0});
            ++MyCovered;
          }
      }
      fetchAdd(&NewlyCovered, MyCovered);
      GRAPHIT_OMP_REGION_END(&Tag);
    }
    GRAPHIT_OMP_REGION_EXIT(&Tag);
    NumUncovered -= NewlyCovered;

    parallelFor(0, M, [&](Count I) {
      VertexId V = Cands[I];
      atomicStoreRelaxed(&Reserver[V],
                         std::numeric_limits<uint64_t>::max());
      for (WNode E : G.outNeighbors(V))
        atomicStoreRelaxed(&Reserver[E.V],
                           std::numeric_limits<uint64_t>::max());
    });

    Requeue.clear();
    for (Count I = 0; I < M; ++I) {
      VertexId V = Cands[I];
      if (InCover[V] || Coverage[V] <= 0)
        continue;
      // Clamp the cached coverage so the lambda cannot produce a key
      // above the current bucket (monotonicity).
      Coverage[V] = std::min(Coverage[V], BucketFloor(B + 1) - 1);
      Requeue.push_back(V);
    }
    Queue.updateBuckets(Requeue.data(), static_cast<Count>(Requeue.size()));
  }

  for (const std::vector<VertexId> &L : ChosenPerThread)
    R.ChosenSets.insert(R.ChosenSets.end(), L.begin(), L.end());
  R.CoveredElements = N - NumUncovered;
  R.Stats.Seconds = Clock.seconds();
  return R;
}
