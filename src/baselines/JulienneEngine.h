//===- baselines/JulienneEngine.h - Julienne comparison proxy ---*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Julienne comparison system of Table 4/Fig. 4/Fig. 11, reproducing
/// the two overheads §6.2 attributes to it relative to GraphIt:
///
///  1. *lambda-keyed bucketing* — bucket ids are recomputed through an
///     indirect user function per touched vertex (Julienne's original
///     interface), instead of GraphIt's inlined priority-vector/Δ path;
///  2. *always-on direction optimization* — every round pays an
///     out-degree sum over the frontier to choose push vs pull ("on every
///     iteration, Julienne computes an out-degree sum ... which adds
///     significant runtime overhead").
///
/// All algorithms use lazy bucket updates only (Julienne has no eager
/// path, hence no bucket fusion).
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_BASELINES_JULIENNEENGINE_H
#define GRAPHIT_BASELINES_JULIENNEENGINE_H

#include "algorithms/KCore.h"
#include "algorithms/PPSP.h"
#include "algorithms/SetCover.h"
#include "algorithms/SSSP.h"

namespace graphit {

/// Julienne-style SSSP (lazy bucket updates + per-round direction choice).
SSSPResult julienneSSSP(const Graph &G, VertexId Source, int64_t Delta);

/// Julienne-style wBFS (Δ = 1).
SSSPResult julienneWBFS(const Graph &G, VertexId Source);

/// Julienne-style PPSP.
PPSPResult juliennePPSP(const Graph &G, VertexId Source, VertexId Target,
                        int64_t Delta);

/// Julienne-style A* (priority = dist + h through the lambda interface).
PPSPResult julienneAStar(const Graph &G, VertexId Source, VertexId Target,
                         int64_t Delta);

/// Julienne-style k-core (histogram reduction, lambda-keyed buckets).
KCoreResult julienneKCore(const Graph &G);

/// Julienne-style approximate set cover (lambda-keyed buckets).
SetCoverResult julienneSetCover(const Graph &G, double Epsilon = 0.01,
                                uint64_t Seed = 42);

} // namespace graphit

#endif // GRAPHIT_BASELINES_JULIENNEENGINE_H
