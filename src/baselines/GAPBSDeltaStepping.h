//===- baselines/GAPBSDeltaStepping.h - GAPBS comparison proxy --*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful port of the GAPBS `sssp.cc` Δ-stepping kernel — the
/// hand-optimized eager-bucket comparison system of Table 4 and Fig. 11.
/// It keeps GAPBS's exact structure: thread-local `local_bins`, an
/// `omp for nowait` frontier sweep, a critical-section min over proposed
/// next bins scanned *from the current bin*, and NO bucket fusion — the
/// paper's GraphIt-vs-GAPBS gap is exactly the fusion optimization.
///
/// PPSP/wBFS/A* variants apply the same early-exit/priority tweaks the
/// paper's GAPBS-based implementations use.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_BASELINES_GAPBSDELTASTEPPING_H
#define GRAPHIT_BASELINES_GAPBSDELTASTEPPING_H

#include "algorithms/PPSP.h"
#include "algorithms/SSSP.h"

namespace graphit {

/// GAPBS Δ-stepping SSSP.
SSSPResult gapbsSSSP(const Graph &G, VertexId Source, int64_t Delta);

/// GAPBS-style wBFS (Δ = 1).
SSSPResult gapbsWBFS(const Graph &G, VertexId Source);

/// GAPBS-style point-to-point query (Δ-stepping + early exit).
PPSPResult gapbsPPSP(const Graph &G, VertexId Source, VertexId Target,
                     int64_t Delta);

/// GAPBS-style A* (Δ-stepping on f = dist + h + early exit). Requires
/// coordinates.
PPSPResult gapbsAStar(const Graph &G, VertexId Source, VertexId Target,
                      int64_t Delta);

} // namespace graphit

#endif // GRAPHIT_BASELINES_GAPBSDELTASTEPPING_H
