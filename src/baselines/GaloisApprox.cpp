//===- baselines/GaloisApprox.cpp - Galois comparison proxy ---------------===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/GaloisApprox.h"

#include "algorithms/AStar.h"
#include "support/Abort.h"
#include "support/Atomics.h"
#include "support/TSanAnnotate.h"
#include "support/Timer.h"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <omp.h>
#include <thread>
#include <vector>

using namespace graphit;

namespace {

/// A lockable bucket of vertices (one priority level of the OBIM bag).
/// `SizeHint` mirrors `Items.size()` (updated under the lock, read
/// without it) so the work-stealing scan can skip empty bins with a
/// relaxed load instead of a tryLock per bin or a racy vector read.
struct Bin {
  std::atomic_flag Lock = ATOMIC_FLAG_INIT;
  std::atomic<size_t> SizeHint{0};
  std::vector<VertexId> Items;

  void lock() {
    while (Lock.test_and_set(std::memory_order_acquire))
      ;
  }
  bool tryLock() {
    return !Lock.test_and_set(std::memory_order_acquire);
  }
  void unlock() {
    SizeHint.store(Items.size(), std::memory_order_relaxed);
    Lock.clear(std::memory_order_release);
  }
};

/// Growable, pointer-stable table of bins indexed by priority key.
/// Segments are materialized lazily under a mutex; readers only touch
/// segments already published through the atomic pointers.
class BinTable {
public:
  static constexpr size_t kSegBits = 10;
  static constexpr size_t kSegSize = size_t{1} << kSegBits;
  static constexpr size_t kMaxSegments = size_t{1} << 13; // 8M keys

  BinTable() {
    for (auto &Slot : Segments)
      Slot.store(nullptr, std::memory_order_relaxed);
  }
  ~BinTable() {
    for (auto &Slot : Segments)
      delete Slot.load(std::memory_order_relaxed);
  }

  Bin &at(size_t Key) {
    size_t Seg = Key >> kSegBits;
    if (Seg >= kMaxSegments)
      fatalError("galois proxy: priority key out of range");
    std::array<Bin, kSegSize> *P =
        Segments[Seg].load(std::memory_order_acquire);
    if (!P) {
      std::lock_guard<std::mutex> Guard(GrowMutex);
      P = Segments[Seg].load(std::memory_order_relaxed);
      if (!P) {
        P = new std::array<Bin, kSegSize>();
        Segments[Seg].store(P, std::memory_order_release);
      }
    }
    return (*P)[Key & (kSegSize - 1)];
  }

  /// Null if the segment holding \p Key was never materialized.
  Bin *peek(size_t Key) {
    size_t Seg = Key >> kSegBits;
    if (Seg >= kMaxSegments)
      return nullptr;
    std::array<Bin, kSegSize> *P =
        Segments[Seg].load(std::memory_order_acquire);
    return P ? &(*P)[Key & (kSegSize - 1)] : nullptr;
  }

private:
  std::array<std::atomic<std::array<Bin, kSegSize> *>, kMaxSegments>
      Segments;
  std::mutex GrowMutex;
};

constexpr size_t kChunk = 64; ///< OBIM-style chunk size

/// Asynchronous approximate-priority engine shared by the three distance
/// algorithms. `Cutoff(f)` prunes pushes whose estimated total f cannot
/// improve the query result (PPSP/A*).
template <typename HeurFn, typename CutoffFn>
void galoisKernel(const Graph &G, VertexId Source,
                  std::vector<Priority> &Dist, int64_t Delta, HeurFn &&Heur,
                  CutoffFn &&Cutoff, OrderedStats *Stats) {
  Timer Clock;
  Dist[Source] = 0;

  BinTable Bins;
  std::atomic<int64_t> Pending{1};
  std::atomic<int64_t> MinHint{0};
  std::atomic<int64_t> MaxKeyUsed{0};
  std::atomic<int64_t> ProcessedTotal{0};

  int64_t SrcKey = Heur(Source) / Delta;
  Bin &SourceBin = Bins.at(static_cast<size_t>(SrcKey));
  SourceBin.Items.push_back(Source);
  // Seeded before the region, outside the lock/unlock path that normally
  // maintains the hint.
  SourceBin.SizeHint.store(1, std::memory_order_relaxed);
  MinHint.store(SrcKey, std::memory_order_relaxed);
  MaxKeyUsed.store(SrcKey, std::memory_order_relaxed);

  int SyncTag = 0;
  GRAPHIT_OMP_REGION_ENTER(&SyncTag);
#pragma omp parallel
  {
    GRAPHIT_OMP_REGION_BEGIN(&SyncTag);
    std::vector<std::vector<VertexId>> Local; // thread-local staging bins
    int64_t LocalProcessed = 0;
    std::vector<VertexId> Chunk;

    auto FlushLocalBin = [&](size_t Key) {
      std::vector<VertexId> &Mine = Local[Key];
      if (Mine.empty())
        return;
      Bin &B = Bins.at(Key);
      B.lock();
      B.Items.insert(B.Items.end(), Mine.begin(), Mine.end());
      B.unlock();
      Mine.clear();
      int64_t K = static_cast<int64_t>(Key);
      int64_t H = MinHint.load(std::memory_order_relaxed);
      while (K < H && !MinHint.compare_exchange_weak(H, K))
        ;
      int64_t M = MaxKeyUsed.load(std::memory_order_relaxed);
      while (K > M && !MaxKeyUsed.compare_exchange_weak(M, K))
        ;
    };

    auto PushLocal = [&](VertexId V, int64_t Key) {
      size_t K = static_cast<size_t>(Key);
      if (K >= Local.size())
        Local.resize(K + 1);
      Local[K].push_back(V);
      Pending.fetch_add(1, std::memory_order_relaxed);
      if (Local[K].size() >= kChunk)
        FlushLocalBin(K);
    };

    auto ProcessChunk = [&](int64_t BinKey) {
      for (VertexId U : Chunk) {
        ++LocalProcessed;
        Priority DU = atomicLoadRelaxed(&Dist[U]);
        // Skip entries already settled at a better priority.
        if ((DU + Heur(U)) / Delta < BinKey)
          continue;
        for (WNode E : G.outNeighbors(U)) {
          Priority ND = DU + E.W;
          Priority FD = ND + Heur(E.V);
          if (Cutoff(FD))
            continue;
          if (ND < atomicLoadRelaxed(&Dist[E.V]) &&
              atomicWriteMin(&Dist[E.V], ND))
            PushLocal(E.V, FD / Delta);
        }
      }
      Pending.fetch_sub(static_cast<int64_t>(Chunk.size()),
                        std::memory_order_acq_rel);
      Chunk.clear();
    };

    while (true) {
      // Prefer the smallest local staging bin at or below the global
      // hint; otherwise scan the global table from the hint.
      int64_t Hint = MinHint.load(std::memory_order_relaxed);
      int64_t TookKey = -1;

      int64_t LocalMin = -1;
      for (size_t K = 0; K < Local.size(); ++K) {
        if (!Local[K].empty()) {
          LocalMin = static_cast<int64_t>(K);
          break;
        }
      }
      if (LocalMin >= 0 && LocalMin <= Hint) {
        size_t Take = std::min(Local[LocalMin].size(), kChunk);
        Chunk.assign(Local[LocalMin].end() - Take,
                     Local[LocalMin].end());
        Local[LocalMin].resize(Local[LocalMin].size() - Take);
        TookKey = LocalMin;
      } else {
        int64_t MaxKey = MaxKeyUsed.load(std::memory_order_relaxed);
        for (int64_t K = Hint; K <= MaxKey && TookKey < 0; ++K) {
          Bin *B = Bins.peek(static_cast<size_t>(K));
          // The unlocked skip reads the atomic size hint, not the vector
          // (whose internals another thread may be resizing); emptiness
          // is re-verified under the lock before taking.
          if (!B || B->SizeHint.load(std::memory_order_relaxed) == 0 ||
              !B->tryLock())
            continue;
          if (!B->Items.empty()) {
            size_t Take = std::min(B->Items.size(), kChunk);
            Chunk.assign(B->Items.end() - Take, B->Items.end());
            B->Items.resize(B->Items.size() - Take);
            TookKey = K;
            MinHint.store(K, std::memory_order_relaxed);
          }
          B->unlock();
        }
        if (TookKey < 0 && LocalMin >= 0) {
          // Global looks empty; fall back to local work.
          size_t Take = std::min(Local[LocalMin].size(), kChunk);
          Chunk.assign(Local[LocalMin].end() - Take,
                       Local[LocalMin].end());
          Local[LocalMin].resize(Local[LocalMin].size() - Take);
          TookKey = LocalMin;
        }
      }

      if (TookKey >= 0) {
        ProcessChunk(TookKey);
        continue;
      }

      // Nothing to do: publish everything, reset the hint, then either
      // exit (all quiet) or retry.
      for (size_t K = 0; K < Local.size(); ++K)
        FlushLocalBin(K);
      MinHint.store(0, std::memory_order_relaxed);
      if (Pending.load(std::memory_order_acquire) == 0)
        break;
      std::this_thread::yield();
    }
    ProcessedTotal.fetch_add(LocalProcessed, std::memory_order_relaxed);
    GRAPHIT_OMP_REGION_END(&SyncTag);
  }
  GRAPHIT_OMP_REGION_EXIT(&SyncTag);

  if (Stats) {
    Stats->Rounds = 0; // asynchronous: no global rounds exist
    Stats->VerticesProcessed =
        ProcessedTotal.load(std::memory_order_relaxed);
    Stats->Seconds = Clock.seconds();
  }
}

} // namespace

SSSPResult graphit::galoisSSSP(const Graph &G, VertexId Source,
                               int64_t Delta) {
  SSSPResult R;
  R.Dist.assign(static_cast<size_t>(G.numNodes()), kInfiniteDistance);
  galoisKernel(G, Source, R.Dist, Delta,
               [](VertexId) { return Priority{0}; },
               [](Priority) { return false; }, &R.Stats);
  return R;
}

PPSPResult graphit::galoisPPSP(const Graph &G, VertexId Source,
                               VertexId Target, int64_t Delta) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  PPSPResult R;
  auto Cutoff = [&](Priority F) {
    return F >= atomicLoad(&Dist[Target]);
  };
  galoisKernel(G, Source, Dist, Delta,
               [](VertexId) { return Priority{0}; }, Cutoff, &R.Stats);
  R.Dist = Dist[Target];
  return R;
}

PPSPResult graphit::galoisAStar(const Graph &G, VertexId Source,
                                VertexId Target, int64_t Delta) {
  std::vector<Priority> Dist(static_cast<size_t>(G.numNodes()),
                             kInfiniteDistance);
  PPSPResult R;
  auto Heur = [&](VertexId V) { return aStarHeuristic(G, V, Target); };
  auto Cutoff = [&](Priority F) {
    return F >= atomicLoad(&Dist[Target]);
  };
  galoisKernel(G, Source, Dist, Delta, Heur, Cutoff, &R.Stats);
  R.Dist = Dist[Target];
  return R;
}
