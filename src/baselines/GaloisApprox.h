//===- baselines/GaloisApprox.h - Galois comparison proxy -------*- C++ -*-===//
//
// Part of graphit-ordered, an independent C++ reproduction of "Optimizing
// Ordered Graph Algorithms with GraphIt" (CGO 2020). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Galois comparison system of Table 4/Fig. 4/Fig. 11. Galois's
/// ordered-list abstraction provides *approximate* priority ordering
/// (§7, "Approximate Priority Ordering"): worker threads drain an
/// OBIM-style bag-of-bins structure asynchronously, with no global barrier
/// between priorities. That gains parallelism on high-diameter graphs but
/// sacrifices work-efficiency — threads may process vertices out of
/// priority order and redo work (the behavior §6.2 uses to explain
/// Galois's numbers).
///
/// The proxy keeps the essential OBIM mechanics: chunked per-bin bags with
/// per-bin locks, thread-local chunk buffering, a shared min-bin hint, and
/// an in-flight counter for termination detection. Only the distance
/// family is provided — Galois supports neither k-core nor SetCover
/// (Table 4 marks them "-"), because they need strict ordering.
///
//===----------------------------------------------------------------------===//

#ifndef GRAPHIT_BASELINES_GALOISAPPROX_H
#define GRAPHIT_BASELINES_GALOISAPPROX_H

#include "algorithms/PPSP.h"
#include "algorithms/SSSP.h"

namespace graphit {

/// Galois-style asynchronous Δ-stepping SSSP.
SSSPResult galoisSSSP(const Graph &G, VertexId Source, int64_t Delta);

/// Galois-style PPSP (asynchronous, with a best-distance cutoff instead of
/// a bucket-boundary stop; approximate ordering has no bucket boundaries).
PPSPResult galoisPPSP(const Graph &G, VertexId Source, VertexId Target,
                      int64_t Delta);

/// Galois-style A* search. Requires coordinates.
PPSPResult galoisAStar(const Graph &G, VertexId Source, VertexId Target,
                       int64_t Delta);

} // namespace graphit

#endif // GRAPHIT_BASELINES_GALOISAPPROX_H
